// Tests of the public facade: everything an external consumer does —
// building a machine, running instrumented code, merging, viewing — using
// only the dcprof package.
package dcprof_test

import (
	"path/filepath"
	"strings"
	"testing"

	"dcprof"
)

// buildRun executes a small profiled workload through the facade and
// returns the profiler and master thread.
func buildRun(t *testing.T) (*dcprof.Profiler, *dcprof.Thread) {
	t.Helper()
	node := dcprof.NewNode(dcprof.TinyTopology(), dcprof.DefaultCacheConfig())
	proc := dcprof.NewProcess(node, 0, 0, 4, nil)
	cfg := dcprof.DefaultProfilerConfig()
	cfg.Period = 32
	prof := dcprof.Attach(proc, cfg)

	exe := proc.LoadMap.Load("api")
	fnMain := exe.AddFunc("main", "api.c", 1)
	fnOL := exe.AddFunc("loop.omp_fn.0", "api.c", 10)

	th := proc.Start()
	th.Call(fnMain)
	th.At(3)
	prof.Label(th, "payload")
	buf := th.Malloc(64 * 1024)
	th.Memset(buf, 64*1024)
	proc.ParallelFor(th, fnOL, 4, 1024, func(w *dcprof.Thread, lo, hi int) {
		w.At(12)
		for i := lo; i < hi; i++ {
			w.Load(buf+dcprof.Addr(i*64), 8)
		}
	})
	th.Ret()
	proc.Finish()
	return prof, th
}

func TestFacadeEndToEnd(t *testing.T) {
	prof, th := buildRun(t)
	if th.Clock() == 0 {
		t.Fatal("no simulated time elapsed")
	}
	profiles := prof.Profiles()
	if len(profiles) != 4 {
		t.Fatalf("profiles = %d, want 4", len(profiles))
	}
	db := dcprof.Merge(profiles, 0)
	vars := dcprof.RankVariables(db.Merged, dcprof.MetricLatency)
	if len(vars) == 0 || vars[0].Name != "payload" {
		t.Fatalf("top variable = %v", vars)
	}
	if total := dcprof.MetricTotal(db.Merged, dcprof.MetricSamples); total == 0 {
		t.Error("no samples")
	}
	accs := dcprof.TopAccesses(&vars[0], dcprof.MetricLatency, dcprof.MetricTotal(db.Merged, dcprof.MetricLatency))
	if len(accs) == 0 {
		t.Fatal("no accesses for top variable")
	}
	out := dcprof.RenderTopDown(db.Merged, dcprof.ViewOptions{Metric: dcprof.MetricLatency})
	if !strings.Contains(out, "payload") {
		t.Errorf("top-down output missing the variable:\n%s", out)
	}
}

func TestFacadeMeasurementRoundTrip(t *testing.T) {
	prof, _ := buildRun(t)
	dir := filepath.Join(t.TempDir(), "m")
	n, err := dcprof.WriteMeasurements(dir, prof.Profiles())
	if err != nil {
		t.Fatal(err)
	}
	if n <= 0 {
		t.Error("no bytes written")
	}
	db, err := dcprof.LoadMeasurements(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if db.Threads != 4 {
		t.Errorf("threads = %d", db.Threads)
	}
	direct := dcprof.Merge(prof.Profiles(), 0)
	if db.Merged.Total() != direct.Merged.Total() {
		t.Error("round-tripped totals differ from in-memory merge")
	}
}

func TestFacadeMarkedEvents(t *testing.T) {
	node := dcprof.NewNode(dcprof.TinyTopology(), dcprof.DefaultCacheConfig())
	proc := dcprof.NewProcess(node, 0, 0, 2, nil)
	prof := dcprof.Attach(proc, dcprof.MarkedProfilerConfig(dcprof.MarkAllMem, 4))
	exe := proc.LoadMap.Load("api")
	fn := exe.AddFunc("main", "api.c", 1)
	th := proc.Start()
	th.Call(fn)
	th.At(2)
	b := th.Malloc(8 * 1024)
	th.Memset(b, 8*1024)
	th.Ret()
	proc.Finish()
	db := dcprof.Merge(prof.Profiles(), 1)
	if dcprof.MetricTotal(db.Merged, dcprof.MetricSamples) == 0 {
		t.Error("marked sampling produced no samples")
	}
	if !strings.Contains(db.Event, "PM_MRK") {
		t.Errorf("event = %q", db.Event)
	}
}

func TestFacadePolicies(t *testing.T) {
	// Interleave as a process-wide policy through the facade.
	node := dcprof.NewNode(dcprof.TinyTopology(), dcprof.DefaultCacheConfig())
	proc := dcprof.NewProcess(node, 0, 0, 1, dcprof.Interleave{})
	exe := proc.LoadMap.Load("api")
	fn := exe.AddFunc("main", "api.c", 1)
	th := proc.Start()
	th.Call(fn)
	th.At(2)
	b := th.Calloc(16*4096, 1)
	counts := make(map[int]int)
	for i := 0; i < 16; i++ {
		if d, ok := proc.Space.PT.Home(b + dcprof.Addr(i*4096)); ok {
			counts[d]++
		}
	}
	if len(counts) < 2 {
		t.Errorf("interleave policy left pages in %d domain(s)", len(counts))
	}
	th.Ret()
	proc.Finish()
}
