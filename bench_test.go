// Benchmarks that regenerate each of the paper's tables and figures (at
// quick scale; run `go run ./cmd/dcbench` for the full-scale versions).
// Each benchmark reports the wall time of one full regeneration — workload
// execution, measurement, post-mortem merge, and aggregation — plus a
// headline figure-of-merit as a custom metric where one exists.
package dcprof_test

import (
	"strconv"
	"strings"
	"testing"

	"dcprof/internal/experiments"
)

// regenerate runs one experiment per iteration with a fresh run cache.
func regenerate(b *testing.B, id string) *experiments.Table {
	b.Helper()
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	var last *experiments.Table
	for i := 0; i < b.N; i++ {
		last = e.Run(experiments.NewContext(), experiments.Quick)
	}
	if last == nil || len(last.Rows) == 0 {
		b.Fatalf("experiment %s produced no rows", id)
	}
	return last
}

// cellPct parses a "12.3%" cell into 12.3.
func cellPct(s string) (float64, bool) {
	s = strings.TrimSuffix(strings.TrimSpace(s), "%")
	v, err := strconv.ParseFloat(s, 64)
	return v, err == nil
}

// reportRowPct reports the first row whose first cell contains key.
func reportRowPct(b *testing.B, t *experiments.Table, key, metric string) {
	for _, row := range t.Rows {
		if strings.Contains(row[0], key) && len(row) > 1 {
			if v, ok := cellPct(row[1]); ok {
				b.ReportMetric(v, metric)
				return
			}
		}
	}
}

func BenchmarkFig1Decomposition(b *testing.B) {
	t := regenerate(b, "fig1")
	reportRowPct(b, t, "C[]", "C-share-%")
}

func BenchmarkFig2Coalescing(b *testing.B) {
	t := regenerate(b, "fig2")
	for _, row := range t.Rows {
		if strings.Contains(row[0], "variables in merged profile") {
			if v, err := strconv.ParseFloat(row[1], 64); err == nil {
				b.ReportMetric(v, "variables")
			}
		}
	}
}

func BenchmarkTable1Overhead(b *testing.B) {
	t := regenerate(b, "table1")
	// Report the AMG overhead column.
	for _, row := range t.Rows {
		if row[0] == "AMG2006" && len(row) > 5 {
			if v, ok := cellPct(row[5]); ok {
				b.ReportMetric(v, "amg-overhead-%")
			}
		}
	}
}

func BenchmarkAllocTrackingAblation(b *testing.B) {
	t := regenerate(b, "alloctrack")
	reportRowPct(b, t, "track all", "naive-overhead-%")
}

func BenchmarkFig4AMGTopDown(b *testing.B) {
	t := regenerate(b, "fig4")
	reportRowPct(b, t, "S_diag_j share", "sdiagj-share-%")
}

func BenchmarkFig5AMGBottomUp(b *testing.B) {
	t := regenerate(b, "fig5")
	b.ReportMetric(float64(len(t.Rows)), "alloc-sites")
}

func BenchmarkTable2AMGPhases(b *testing.B) {
	t := regenerate(b, "table2")
	if len(t.Rows) != 3 {
		b.Fatalf("table2 rows = %d", len(t.Rows))
	}
}

func BenchmarkFig6Sweep3DVariables(b *testing.B) {
	t := regenerate(b, "fig6")
	reportRowPct(b, t, "Flux", "flux-share-%")
}

func BenchmarkFig7Sweep3DTranspose(b *testing.B) {
	t := regenerate(b, "fig7")
	reportRowPct(b, t, "improvement", "transpose-gain-%")
}

func BenchmarkFig8LULESHHeap(b *testing.B) {
	t := regenerate(b, "fig8")
	reportRowPct(b, t, "heap share of latency", "heap-latency-%")
}

func BenchmarkFig9LULESHStatic(b *testing.B) {
	t := regenerate(b, "fig9")
	reportRowPct(b, t, "f_elem share", "felem-share-%")
}

func BenchmarkFig10Streamcluster(b *testing.B) {
	t := regenerate(b, "fig10")
	reportRowPct(b, t, "block share", "block-share-%")
}

func BenchmarkFig11NW(b *testing.B) {
	t := regenerate(b, "fig11")
	reportRowPct(b, t, "referrence share", "referrence-share-%")
}

func BenchmarkSpeedupSummary(b *testing.B) {
	t := regenerate(b, "speedups")
	if len(t.Rows) != 5 {
		b.Fatalf("speedups rows = %d", len(t.Rows))
	}
}

func BenchmarkScalingMergeCoalescing(b *testing.B) {
	t := regenerate(b, "scaling")
	if len(t.Rows) < 2 {
		b.Fatal("scaling rows missing")
	}
	// Report the streaming pipeline's peak decoded-profile residency at the
	// largest thread count (the "k/n" cell in the last column).
	last := t.Rows[len(t.Rows)-1]
	cell := last[len(last)-1]
	if i := strings.IndexByte(cell, '/'); i > 0 {
		if v, err := strconv.ParseFloat(cell[:i], 64); err == nil {
			b.ReportMetric(v, "peak-resident-profiles")
		}
	}
}

func BenchmarkTraceVsProfileSpace(b *testing.B) {
	t := regenerate(b, "tracecmp")
	// Report the final trace/profile ratio.
	last := t.Rows[len(t.Rows)-1]
	cell := strings.TrimSuffix(last[len(last)-1], "x")
	if v, err := strconv.ParseFloat(cell, 64); err == nil {
		b.ReportMetric(v, "trace/profile-ratio")
	}
}
