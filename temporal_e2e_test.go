// The temporal-profiling golden test: a two-phase synthetic application
// (streaming over local memory, then gathering from NUMA-remote memory)
// profiled with time-windowed sampling, checked end to end —
//
//   - the cumulative view ranks the streaming variable above the
//     remote-access one (it simply has more total latency), while
//     clipping to the second phase surfaces the remote variable the
//     whole-run ranking hides;
//   - phase detection finds the streaming -> numa-remote boundary
//     within one window width of the simulated transition;
//   - dcprofd's ?window= answer is byte-identical to the offline clip
//     rendered by the same writer `dcview -window -json` uses.
package dcprof_test

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"dcprof/internal/analysis"
	"dcprof/internal/cache"
	"dcprof/internal/cct"
	"dcprof/internal/machine"
	"dcprof/internal/mem"
	"dcprof/internal/metric"
	"dcprof/internal/profiler"
	"dcprof/internal/profio"
	"dcprof/internal/server"
	"dcprof/internal/sim"
	"dcprof/internal/temporal"
	"dcprof/internal/view"
)

// e2eWindow is the temporal window width for the run: small enough that
// each phase spans many windows, large enough that windows aggregate
// multiple samples.
const e2eWindow = 65536

// runTwoPhase simulates the two-phase app on the tiny topology
// (2 sockets x 2 cores, 2 NUMA domains) and returns the per-thread
// profiles plus the master's sim clock at the phase transition.
func runTwoPhase(t *testing.T) (profiles []*cct.Profile, boundary uint64) {
	t.Helper()
	// Small caches so the master's zeroed lines do not linger on socket 0
	// and turn the workers' remote-memory reads into L3 interventions; no
	// prefetch so the gather phase's sequential reads actually reach the
	// remote controller instead of riding next-line fills.
	ccfg := cache.DefaultConfig()
	ccfg.L1Sets, ccfg.L2Sets, ccfg.L3Sets = 16, 16, 16
	ccfg.PrefetchDegree = 0
	node := sim.NewNode(machine.Tiny(), ccfg)
	p := sim.NewProcess(node, 0, 0, 4, nil)

	cfg := profiler.DefaultConfig()
	cfg.Period = 64
	cfg.TemporalWindow = e2eWindow
	prof := profiler.Attach(p, cfg)

	exe := p.LoadMap.Load("twophase")
	fMain := exe.AddFunc("main", "tp.c", 1)
	fGather := exe.AddFunc("gather.omp_fn.0", "tp.c", 30)

	th := p.Start()
	th.Call(fMain)
	th.At(3)
	prof.Label(th, "stream_buf")
	streamBuf := th.Malloc(1 << 20)
	prof.Label(th, "remote_buf")
	remoteBuf := th.Calloc(1<<18, 1) // master first-touch: domain-0 pages

	// Phase 1: the master streams writes over stream_buf — sequential
	// local stores, lots of them.
	th.At(12)
	for pass := 0; pass < 8; pass++ {
		th.StoreSeq(streamBuf, 1<<14, 8, 64)
	}
	boundary = th.Clock()

	// Phase 2: domain-1 workers gather from the master-touched buffer —
	// every access crosses the NUMA interconnect. Each worker reads its
	// own half so no one is served from a sibling's cache.
	p.Parallel(th, fGather, 4, func(w *sim.Thread, tid int) {
		w.At(33)
		if w.Domain() == 1 {
			base := remoteBuf + mem.Addr((tid%2)*(1<<17))
			for i := 0; i < 4000; i++ {
				w.Load(base+mem.Addr((i%2048)*64), 8)
			}
		}
	})
	th.Ret()
	p.Finish()
	return prof.Profiles(), boundary
}

// varRank returns the position of the named variable in the ranking, or
// -1 when absent.
func varRank(vars []view.VarStat, name string) int {
	for i := range vars {
		if vars[i].Name == name {
			return i
		}
	}
	return -1
}

func TestTemporalTwoPhaseGolden(t *testing.T) {
	profiles, boundary := runTwoPhase(t)

	dir := filepath.Join(t.TempDir(), "m")
	if _, err := profio.WriteDir(dir, profiles); err != nil {
		t.Fatal(err)
	}
	db, _, err := analysis.LoadDirStreamingCtx(context.Background(), dir, analysis.LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if db.Temporal == nil {
		t.Fatal("measurement carried no temporal sidecars")
	}
	if db.Temporal.NumWindows() < 8 {
		t.Fatalf("only %d windows recorded; phases need resolution", db.Temporal.NumWindows())
	}
	_, end := db.Temporal.Span()
	if end <= boundary {
		t.Fatalf("temporal span ends at %d, before the phase boundary %d", end, boundary)
	}

	// Cumulative ranking: streaming above remote.
	cum := view.RankVariables(db.Merged, metric.Latency)
	sRank, rRank := varRank(cum, "stream_buf"), varRank(cum, "remote_buf")
	if sRank < 0 || rRank < 0 {
		t.Fatalf("cumulative ranking missing a variable: stream=%d remote=%d (%d vars)", sRank, rRank, len(cum))
	}
	if sRank >= rRank {
		t.Fatalf("cumulative ranking: stream_buf at %d, remote_buf at %d — want streaming on top", sRank, rRank)
	}

	// Clip to phase 2: the remote variable surfaces. Start one window
	// past the boundary so the transition window's streaming tail cannot
	// blur the ranking.
	t0 := boundary + e2eWindow
	clipped, err := analysis.Clip(db, t0, end)
	if err != nil {
		t.Fatal(err)
	}
	ph2 := view.RankVariables(clipped, metric.Latency)
	if len(ph2) == 0 {
		t.Fatal("phase-2 clip is empty")
	}
	if ph2[0].Name != "remote_buf" {
		t.Fatalf("phase-2 clip ranks %q on top, want remote_buf (full ranking: %v)", ph2[0].Name, names(ph2))
	}

	// Phase detection: some boundary lands within one window width of
	// the simulated transition, and the detected phase covering the
	// middle of phase 2 is the NUMA-remote one.
	phases, err := analysis.Phases(db)
	if err != nil {
		t.Fatal(err)
	}
	if len(phases) < 2 {
		t.Fatalf("detected %d phases, want at least 2: %+v", len(phases), phases)
	}
	bestOff := uint64(1 << 62)
	for _, ph := range phases[1:] {
		off := ph.Start - boundary
		if ph.Start < boundary {
			off = boundary - ph.Start
		}
		if off < bestOff {
			bestOff = off
		}
	}
	if bestOff > e2eWindow {
		t.Errorf("no detected phase boundary within one window (%d cycles) of the transition at %d: %+v",
			uint64(e2eWindow), boundary, phases)
	}
	mid := t0 + (end-t0)/2
	for _, ph := range phases {
		if ph.Start <= mid && mid < ph.End && ph.Label != "numa-remote" {
			t.Errorf("phase covering the remote half labeled %q, want numa-remote: %+v", ph.Label, phases)
		}
	}

	// Serve the same measurement through dcprofd and compare the
	// windowed answer byte-for-byte with the offline clip rendered by the
	// writer dcview -window -json uses.
	srv, err := server.New(server.Config{DataDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	for _, p := range profiles {
		var buf bytes.Buffer
		if err := profio.WriteProfile(&buf, p); err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(ts.URL+"/collections/run/profiles", "application/octet-stream", &buf)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("upload: status %d", resp.StatusCode)
		}
	}
	spec := temporal.FormatWindowSpec(t0, end)
	resp, err := http.Get(ts.URL + "/collections/run/topdown?window=" + spec)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var served bytes.Buffer
	if _, err := served.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("windowed query: status %d: %s", resp.StatusCode, served.Bytes())
	}
	var offline bytes.Buffer
	opts := view.Options{
		MaxRows:  view.DefaultMaxRows,
		MaxDepth: view.DefaultMaxDepth,
		MinShare: view.DefaultMinShare,
		Metric:   metric.Default(db.Event),
	}
	if err := view.WriteTopDownJSON(&offline, clipped, opts); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(served.Bytes(), offline.Bytes()) {
		t.Fatalf("served ?window= JSON differs from offline clip:\nserved: %s\noffline: %s",
			served.Bytes(), offline.Bytes())
	}
}

func names(vars []view.VarStat) []string {
	out := make([]string, len(vars))
	for i := range vars {
		out[i] = vars[i].Name
	}
	return out
}
