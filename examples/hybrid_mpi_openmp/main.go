// hybrid_mpi_openmp demonstrates the scalability pipeline on the public
// API: four MPI ranks on two nodes, each running an OpenMP region, all
// profiled; the per-thread profile files are written to disk and merged
// back by the post-mortem analyzer exactly as the paper's workflow
// (Figure 3) prescribes.
package main

import (
	"fmt"
	"os"
	"path/filepath"

	"dcprof"
)

const (
	ranks          = 4
	threadsPerRank = 8
	elems          = 1 << 15
)

func main() {
	// Two 48-core nodes, two ranks on each.
	n1 := dcprof.NewNode(dcprof.MagnyCours48(), dcprof.DefaultCacheConfig())
	n2 := dcprof.NewNode(dcprof.MagnyCours48(), dcprof.DefaultCacheConfig())
	world := dcprof.NewWorld([]*dcprof.Node{n1, n2}, ranks, threadsPerRank, nil)

	profs := make([]*dcprof.Profiler, ranks)
	for r, p := range world.Procs {
		profs[r] = dcprof.Attach(p, dcprof.MarkedProfilerConfig(dcprof.MarkDataFromRMEM, 8))
	}

	world.Run(func(p *dcprof.Process, th *dcprof.Thread) {
		exe := p.LoadMap.Load("hybrid")
		fnMain := exe.AddFunc("main", "hybrid.c", 1)
		fnOL := exe.AddFunc("stencil.omp_fn.0", "hybrid.c", 30)

		th.Call(fnMain)
		th.At(5)
		profs[p.Rank].Label(th, "halo_field")
		field := th.Calloc(elems, 8) // master-touch: the NUMA pathology

		// Halo exchange with the neighbouring rank.
		peer := p.Rank ^ 1
		world.Send(th, peer, 4096, 0)
		world.Recv(th, peer, 0)

		p.ParallelFor(th, fnOL, threadsPerRank, elems, func(t *dcprof.Thread, lo, hi int) {
			t.At(32)
			for i := lo; i < hi; i++ {
				t.Load(field+dcprof.Addr(i*8), 8)
			}
			t.Work(uint64(hi - lo))
		})
		world.Barrier(th)
		th.Ret()
	})

	// Gather every rank's thread profiles and write one file per thread.
	var all []*dcprof.Profile
	for _, pr := range profs {
		all = append(all, pr.Profiles()...)
	}
	dir := filepath.Join(os.TempDir(), "hybrid-measurements")
	bytes, err := dcprof.WriteMeasurements(dir, all)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d thread profiles (%d ranks) = %.1f KB to %s\n",
		len(all), ranks, float64(bytes)/1e3, dir)

	// Post-mortem: load and merge with the parallel reduction tree.
	db, err := dcprof.LoadMeasurements(dir, 0)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("merged %d profiles across %d ranks (event %s)\n\n", db.Threads, db.Ranks, db.Event)
	fmt.Println(dcprof.RenderVariables(db.Merged, dcprof.ViewOptions{Metric: dcprof.MetricFromRMEM, MaxRows: 5}))
}
