// numa_firsttouch demonstrates the paper's central NUMA pathology and its
// fix on the public API: an array initialized by the master thread lands
// entirely in one NUMA domain (Linux first touch), so every worker thread
// pays remote-access latency and queues on one memory controller. The
// data-centric profile pinpoints the guilty variable; initializing in
// parallel (or interleaving the allocation) fixes it.
package main

import (
	"fmt"

	"dcprof"
)

const (
	threads = 48
	elems   = 1 << 17 // 1 MiB array
	sweeps  = 4
)

// run executes the workload and returns elapsed cycles plus the share of
// remote-memory samples attributed to the array.
func run(parallelInit bool) (uint64, float64) {
	node := dcprof.NewNode(dcprof.MagnyCours48(), dcprof.DefaultCacheConfig())
	proc := dcprof.NewProcess(node, 0, 0, threads, nil)
	prof := dcprof.Attach(proc, dcprof.MarkedProfilerConfig(dcprof.MarkDataFromRMEM, 16))

	exe := proc.LoadMap.Load("firsttouch")
	fnMain := exe.AddFunc("main", "ft.c", 1)
	fnInit := exe.AddFunc("init.omp_fn.0", "ft.c", 10)
	fnSweep := exe.AddFunc("sweep.omp_fn.1", "ft.c", 20)

	th := proc.Start()
	th.Call(fnMain)

	th.At(4)
	prof.Label(th, "field")
	field := th.Malloc(elems * 8)

	if parallelInit {
		// First touch by each worker: pages spread across all domains.
		proc.ParallelFor(th, fnInit, threads, elems, func(t *dcprof.Thread, lo, hi int) {
			t.At(12)
			for i := lo; i < hi; i++ {
				t.Store(field+dcprof.Addr(i*8), 8)
			}
		})
	} else {
		// Master initializes: every page homed in the master's domain.
		th.At(12)
		th.Memset(field, elems*8)
	}

	for s := 0; s < sweeps; s++ {
		proc.ParallelFor(th, fnSweep, threads, elems, func(t *dcprof.Thread, lo, hi int) {
			t.At(22)
			for i := lo; i < hi; i++ {
				t.Load(field+dcprof.Addr(i*8), 8)
			}
			t.Work(uint64(hi - lo))
		})
	}
	th.Ret()
	proc.Finish()

	db := dcprof.Merge(prof.Profiles(), 0)
	var share float64
	for _, v := range dcprof.RankVariables(db.Merged, dcprof.MetricFromRMEM) {
		if v.Name == "field" {
			share = v.Share
		}
	}
	return th.Clock(), share
}

func main() {
	serialCycles, serialShare := run(false)
	parallelCycles, parallelShare := run(true)

	fmt.Println("master-thread init (first touch concentrates pages):")
	fmt.Printf("  %12d cycles; %.1f%% of remote-memory samples hit `field`\n",
		serialCycles, 100*serialShare)
	fmt.Println("parallel init (first touch distributes pages):")
	fmt.Printf("  %12d cycles; %.1f%% of remote-memory samples hit `field`\n",
		parallelCycles, 100*parallelShare)
	fmt.Printf("\nspeedup from fixing placement: %.1f%%\n",
		100*float64(serialCycles-parallelCycles)/float64(serialCycles))
}
