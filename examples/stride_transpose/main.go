// stride_transpose demonstrates the paper's Sweep3D finding on the public
// API: a column-major 3D array traversed with the wrong loop nesting
// strides by a full plane per iteration, defeating the cache lines, the
// prefetcher and the TLB. IBS latency profiling exposes the guilty array;
// transposing its dimensions gives the inner loop unit stride.
package main

import (
	"fmt"

	"dcprof"
)

const (
	nx, ny, nz = 32, 32, 64
	elem       = 8
)

// addr computes the address of (i,j,k) for a layout where `fastest` names
// the dimension with unit stride.
func addr(base dcprof.Addr, i, j, k int, kFastest bool) dcprof.Addr {
	if kFastest {
		return base + dcprof.Addr(((i*ny+j)*nz+k)*elem)
	}
	// Fortran-style: i fastest, k slowest — the k-inner loop below then
	// strides by nx*ny elements.
	return base + dcprof.Addr(((k*ny+j)*nx+i)*elem)
}

func run(transposed bool) (uint64, float64) {
	node := dcprof.NewNode(dcprof.MagnyCours48(), dcprof.DefaultCacheConfig())
	proc := dcprof.NewProcess(node, 0, 0, 1, nil)
	cfg := dcprof.DefaultProfilerConfig() // IBS
	cfg.Period = 128
	prof := dcprof.Attach(proc, cfg)

	exe := proc.LoadMap.Load("stride")
	fnMain := exe.AddFunc("main", "stride.f", 1)
	fnSweep := exe.AddFunc("sweep", "sweep.f", 470)

	th := proc.Start()
	th.Call(fnMain)
	th.At(3)
	prof.Label(th, "Flux")
	flux := th.Malloc(nx * ny * nz * elem)

	th.Call(fnSweep)
	for j := 0; j < ny; j++ {
		th.At(477)
		for i := 0; i < nx; i++ {
			th.At(478)
			for k := 0; k < nz; k++ {
				th.At(480)
				th.Load(addr(flux, i, j, k, transposed), elem)
				th.Store(addr(flux, i, j, k, transposed), elem)
				th.Work(12)
			}
		}
	}
	th.Ret()
	th.Ret()
	proc.Finish()

	db := dcprof.Merge(prof.Profiles(), 0)
	var share float64
	for _, v := range dcprof.RankVariables(db.Merged, dcprof.MetricLatency) {
		if v.Name == "Flux" {
			share = v.Share
		}
	}
	return th.Clock(), share
}

func main() {
	slowCycles, slowShare := run(false)
	fastCycles, fastShare := run(true)

	fmt.Println("original layout (inner k loop strides by a plane):")
	fmt.Printf("  %10d cycles; Flux carries %.1f%% of sampled latency\n", slowCycles, 100*slowShare)
	fmt.Println("transposed layout (inner k loop is unit-stride):")
	fmt.Printf("  %10d cycles; Flux carries %.1f%% of sampled latency\n", fastCycles, 100*fastShare)
	fmt.Printf("\nspeedup from the transpose: %.1f%% (the paper's Sweep3D fix gained 15%%)\n",
		100*float64(slowCycles-fastCycles)/float64(slowCycles))
}
