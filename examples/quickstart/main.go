// Quickstart: simulate a small program, profile it data-centrically, and
// print the three views — the whole measure → merge → present workflow in
// one file.
package main

import (
	"fmt"

	"dcprof"
)

func main() {
	// A tiny 4-thread NUMA node.
	node := dcprof.NewNode(dcprof.TinyTopology(), dcprof.DefaultCacheConfig())
	proc := dcprof.NewProcess(node, 0, 0, 4, nil)

	// Attach the profiler before starting any thread: IBS sampling with a
	// short period so this small run collects plenty of samples.
	cfg := dcprof.DefaultProfilerConfig()
	cfg.Period = 64
	prof := dcprof.Attach(proc, cfg)

	// Declare the program's "source code": one executable with two
	// functions, plus a static variable.
	exe := proc.LoadMap.Load("quickstart")
	fnMain := exe.AddFunc("main", "quickstart.c", 1)
	fnKernel := exe.AddFunc("kernel.omp_fn.0", "quickstart.c", 20)
	table := exe.AddStatic("lookup_table", 64*1024)

	th := proc.Start()
	th.Call(fnMain)

	// Allocate two heap arrays; label them so the views show source names.
	th.At(5)
	prof.Label(th, "data")
	data := th.Malloc(256 * 1024)
	th.At(6)
	prof.Label(th, "result")
	result := th.Malloc(256 * 1024)

	// The master initializes everything — first touch places all pages in
	// its NUMA domain (the classic pathology).
	th.At(8)
	th.Memset(data, 256*1024)
	th.Memset(result, 256*1024)

	// A parallel region streams data, consults the static lookup table
	// with an awkward stride, and writes result.
	proc.ParallelFor(th, fnKernel, 4, 4096, func(t *dcprof.Thread, lo, hi int) {
		for i := lo; i < hi; i++ {
			t.At(22)
			t.Load(data+dcprof.Addr(i*64), 8)
			t.At(23)
			t.Load(table.Lo+dcprof.Addr((i*7%1024)*64), 8)
			t.At(24)
			t.Store(result+dcprof.Addr(i*64), 8)
			t.Work(12)
		}
	})
	th.Ret()
	proc.Finish()

	// Post-mortem: merge the per-thread profiles and present.
	db := dcprof.Merge(prof.Profiles(), 0)
	fmt.Printf("simulated %d cycles on %s\n\n", th.Clock(), node.Topo)

	opts := dcprof.ViewOptions{Metric: dcprof.MetricLatency, MaxRows: 10, MaxDepth: 8, MinShare: 0.01}
	fmt.Println(dcprof.RenderVariables(db.Merged, opts))
	fmt.Println(dcprof.RenderTopDown(db.Merged, opts))
	fmt.Println(dcprof.RenderBottomUp(db.Merged, opts))
}
