// Command dcpush uploads a measurement directory's profiles to a
// dcprofd collection, retrying through server overload (429/503 with
// Retry-After), transient errors, and network faults. Uploads are
// idempotent server-side (keyed by content digest), so an interrupted
// batch is safe to re-run: dcpush first asks the collection which
// digests it already holds and skips those files.
//
// Usage:
//
//	dcpush -server http://localhost:8080 -collection amg-run1 measurements/
//
// Every attempt carries an X-Request-ID derived from the batch's ID
// (printed in the summary; settable with -request-id), and every
// retry/backoff/resume decision is logged as a structured JSON line on
// stderr — grep the ID in the server's access log to see the same
// request from the other side.
//
// The summary is printed as JSON on stdout; the exit status is 1 when
// any file could not be delivered.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dcprof/internal/push"
)

func main() {
	var (
		serverURL  = flag.String("server", "http://localhost:8080", "dcprofd base URL")
		collection = flag.String("collection", "", "target collection name (required)")
		attempts   = flag.Int("attempts", 8, "max attempts per file")
		base       = flag.Duration("backoff", 100*time.Millisecond, "initial retry backoff")
		maxBackoff = flag.Duration("max-backoff", 5*time.Second, "retry backoff ceiling")
		perFile    = flag.Duration("file-timeout", 2*time.Minute, "per-file deadline, retries included (0 = none)")
		total      = flag.Duration("timeout", 0, "whole-batch deadline (0 = none)")
		quiet      = flag.Bool("q", false, "suppress per-file progress on stderr")
		requestID  = flag.String("request-id", "", "batch request ID; per-file IDs derive from it (default: random)")
	)
	flag.Parse()
	if *collection == "" || flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: dcpush -collection NAME [-server URL] DIR")
		flag.PrintDefaults()
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	opt := push.Options{
		Server:         *serverURL,
		Collection:     *collection,
		MaxAttempts:    *attempts,
		BaseBackoff:    *base,
		MaxBackoff:     *maxBackoff,
		PerFileTimeout: *perFile,
		TotalTimeout:   *total,
		RequestID:      *requestID,
	}
	if !*quiet {
		opt.Logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	}

	sum, err := push.Push(ctx, flag.Arg(0), opt)
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	enc.Encode(sum)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dcpush: %v\n", err)
		os.Exit(1)
	}
}
