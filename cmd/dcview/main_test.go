package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"dcprof/internal/analysis"
	"dcprof/internal/analysis/statstest"
)

// TestStatsJSONGolden pins the -stats -json output format: downstream
// tooling parses these field names, so any change here is a contract
// change and must update the golden file deliberately
// (UPDATE_GOLDEN=1 go test ./cmd/dcview). Schema assertions live in the
// shared statstest.RoundTrip helper, which the dcprofd /stats endpoint
// test also uses — the two JSON surfaces cannot drift independently.
func TestStatsJSONGolden(t *testing.T) {
	st := analysis.MergeStats{
		Inputs:        128,
		InputNodes:    40960,
		MergedNodes:   512,
		Workers:       4,
		BytesRead:     1 << 20,
		DecodeWall:    1234567 * time.Microsecond,
		MergeWall:     1300000 * time.Microsecond,
		FoldWall:      1280000 * time.Microsecond,
		ReduceWall:    1500 * time.Microsecond,
		MaxResident:   9,
		DecodeFileP50: 2500 * time.Microsecond,
		DecodeFileP95: 9000 * time.Microsecond,
		DecodeFileP99: 48000 * time.Microsecond,
		Quarantined: []analysis.QuarantinedFile{
			{Path: "m/rank00002.dcprof", Reason: "section heap: checksum mismatch", SalvagedTrees: 3},
		},
	}

	var buf bytes.Buffer
	if err := analysis.WriteStatsReport(&buf, st); err != nil {
		t.Fatal(err)
	}

	rep := statstest.RoundTrip(t, buf.Bytes())
	if rep.Inputs != 128 || rep.MaxResident != 9 || len(rep.Quarantined) != 1 {
		t.Errorf("parsed report lost values: %+v", rep)
	}
	if rep.DecodeFileP50US != 2500 || rep.DecodeFileP99US != 48000 {
		t.Errorf("decode quantiles lost: p50 %d p99 %d", rep.DecodeFileP50US, rep.DecodeFileP99US)
	}

	golden := filepath.Join("testdata", "stats_golden.json")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("-stats -json output changed:\n--- got ---\n%s--- want ---\n%s", buf.Bytes(), want)
	}
}

// TestStatsJSONEmptyQuarantine: a clean load must render quarantined as an
// empty array, not null — consumers index it unconditionally.
func TestStatsJSONEmptyQuarantine(t *testing.T) {
	var buf bytes.Buffer
	if err := analysis.WriteStatsReport(&buf, analysis.MergeStats{Inputs: 1}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"quarantined": []`)) {
		t.Errorf("empty quarantine list not rendered as []:\n%s", buf.Bytes())
	}
	statstest.RoundTrip(t, buf.Bytes())
}
