// Command dcview is the text analogue of the paper's GUI: it loads a
// measurement directory written by dcprof, merges the per-thread profiles
// with the parallel reduction-tree analyzer, and prints the data-centric
// views.
//
// Usage:
//
//	dcview -d measurements/                      # all views, default metric
//	dcview -d m/ -metric LATENCY -view topdown   # one view
//	dcview -d m/ -view bottomup -rows 15
//	dcview -d m/ -quarantine -stats              # skip damaged files, report them
//	dcview -d m/ -stats -json                    # machine-readable merge stats
//	dcview -d m/ -view topdown -json             # top-down report as JSON
//	dcview -d m/ -view bottomup -json            # allocation-site report as JSON
//	dcview -d m/ -window 65536:1048576           # views clipped to a sim-cycle range
//	dcview -d m/ -phases                         # detected execution phases
//	dcview -d m/ -window-diff 3:12               # compare two time windows
//
// The -view topdown/-view bottomup JSON reports use the same serializers
// as dcprofd's query endpoints, so offline and served output for the same
// data are byte-identical.
//
// By default dcview is strict: one unreadable profile aborts the whole
// load. -quarantine instead skips damaged files (reporting each one), and
// -salvage additionally merges the intact, checksummed class trees that
// can be recovered from them.
//
// Exit codes: 0 success, 1 load/analysis failure, 2 usage error. All
// diagnostics go to stderr; stdout carries only report output, so JSON
// modes stay pipeable.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"dcprof/internal/analysis"
	"dcprof/internal/metric"
	"dcprof/internal/temporal"
	"dcprof/internal/view"
)

// Exit codes.
const (
	exitLoadError = 1
	exitUsage     = 2
)

// fatal is the single error-reporting path: dcview-prefixed message on
// stderr, then exit with the given code.
func fatal(code int, format string, args ...any) {
	fmt.Fprintf(os.Stderr, "dcview: "+format+"\n", args...)
	os.Exit(code)
}

func main() {
	var (
		dir        = flag.String("d", "measurements", "measurement directory")
		metName    = flag.String("metric", "", "ranking metric (default: FROM_RMEM for marked profiles, LATENCY(cy) for IBS)")
		which      = flag.String("view", "all", "view: topdown | bottomup | vars | advice | all")
		rows       = flag.Int("rows", 20, "max rows for table views")
		depth      = flag.Int("depth", 12, "max depth for the top-down tree")
		min        = flag.Float64("min", 0.005, "hide nodes below this share")
		diffDir    = flag.String("diff", "", "second measurement directory to compare against (before -> after)")
		asJSON     = flag.Bool("json", false, "dump the merged database as JSON and exit")
		workers    = flag.Int("workers", 0, "streaming ingest/merge workers (0 = GOMAXPROCS)")
		shards     = flag.Int("shards", 0, "fold shards per storage class (0 = derive from -workers); the merged result is identical for every value")
		sectionPar = flag.Int("section-parallel", 0, "decode each file's class-tree sections with up to this many goroutines (<= 1 = sequential)")
		stats      = flag.Bool("stats", false, "print streaming merge pipeline statistics")
		strict     = flag.Bool("strict", false, "abort on the first unreadable profile (the default)")
		quarantine = flag.Bool("quarantine", false, "skip unreadable profiles and report them instead of aborting")
		salvage    = flag.Bool("salvage", false, "like -quarantine, but also merge intact class trees recovered from damaged files")
		window     = flag.String("window", "", "restrict views to the sim-cycle range t0:t1 (requires temporal sidecars)")
		phases     = flag.Bool("phases", false, "print detected execution phases (requires temporal sidecars)")
		windowDiff = flag.String("window-diff", "", "compare two time windows w1:w2 (requires temporal sidecars)")
	)
	flag.Parse()

	// Every malformed flag value is a usage error (exit 2), diagnosed
	// before any loading starts.
	if *rows < 0 {
		fatal(exitUsage, "-rows must be >= 0 (got %d)", *rows)
	}
	if *depth < 0 {
		fatal(exitUsage, "-depth must be >= 0 (got %d)", *depth)
	}
	if *min < 0 || *min > 1 {
		fatal(exitUsage, "-min must be within [0, 1] (got %g)", *min)
	}
	var (
		winT0, winT1 uint64
		dw1, dw2     uint64
		err          error
	)
	if *window != "" {
		if winT0, winT1, err = temporal.ParseWindowSpec(*window); err != nil {
			fatal(exitUsage, "-window: %v", err)
		}
	}
	if *windowDiff != "" {
		if dw1, dw2, err = temporal.ParseWindowPair(*windowDiff); err != nil {
			fatal(exitUsage, "-window-diff: %v", err)
		}
	}
	temporalModes := 0
	for _, on := range []bool{*window != "", *phases, *windowDiff != "", *diffDir != ""} {
		if on {
			temporalModes++
		}
	}
	if temporalModes > 1 {
		fatal(exitUsage, "-window, -phases, -window-diff and -diff are mutually exclusive")
	}

	policy := analysis.PolicyStrict
	switch {
	case *quarantine && *salvage, *strict && *quarantine, *strict && *salvage:
		fatal(exitUsage, "-strict, -quarantine and -salvage are mutually exclusive")
	case *quarantine:
		policy = analysis.PolicyQuarantine
	case *salvage:
		policy = analysis.PolicySalvage
	}

	load := func(dir string) (*analysis.Database, analysis.MergeStats, error) {
		return analysis.LoadDirStreamingCtx(context.Background(), dir,
			analysis.LoadOptions{Workers: *workers, Shards: *shards, SectionParallel: *sectionPar, Policy: policy})
	}

	db, st, err := load(*dir)
	if err != nil {
		fatal(exitLoadError, "%v", err)
	}
	reportQuarantine(st)
	if *stats && *asJSON {
		// Machine-readable pipeline stats on stdout; quarantine warnings
		// already went to stderr above.
		if err := analysis.WriteStatsReport(os.Stdout, st); err != nil {
			fatal(exitLoadError, "%v", err)
		}
		return
	}
	if *stats {
		fmt.Printf("merge stats: %d profiles, %.2f MB read, %d -> %d nodes (%.1fx coalescing), decode %s, merge %s, %d workers, peak residency %d profiles\n",
			st.Inputs, float64(st.BytesRead)/1e6, st.InputNodes, st.MergedNodes,
			st.CoalescingFactor(), st.DecodeWall, st.MergeWall, st.Workers, st.MaxResident)
		fmt.Printf("merge stages: fold %s, reduce %s\n", st.FoldWall, st.ReduceWall)
		if st.DecodeFileP99 > 0 {
			fmt.Printf("decode latency per file: p50 %s, p95 %s, p99 %s\n",
				st.DecodeFileP50, st.DecodeFileP95, st.DecodeFileP99)
		}
		for _, q := range st.Quarantined {
			fmt.Printf("quarantined: %s (%d trees salvaged): %s\n", q.Path, q.SalvagedTrees, q.Reason)
		}
	}
	m := pickMetric(*metName, db.Event)
	opts := view.Options{Metric: m, MaxRows: *rows, MaxDepth: *depth, MinShare: *min}

	if *phases {
		ph, err := analysis.Phases(db)
		if err != nil {
			fatal(exitLoadError, "%v", err)
		}
		if *asJSON {
			if err := view.WritePhasesJSON(os.Stdout, db.Event, db.Temporal.Width(), ph); err != nil {
				fatal(exitLoadError, "%v", err)
			}
			return
		}
		fmt.Println(view.RenderPhases(db.Event, db.Temporal.Width(), ph))
		return
	}
	if *windowDiff != "" {
		wd, err := analysis.Diff(db, dw1, dw2)
		if err != nil {
			fatal(exitLoadError, "%v", err)
		}
		if *asJSON {
			if err := view.WriteDiffJSON(os.Stdout, wd.P1, wd.P2, m, *rows); err != nil {
				fatal(exitLoadError, "%v", err)
			}
			return
		}
		fmt.Printf("window diff: window %d -> window %d (width %d cycles)\n",
			wd.W1, wd.W2, wd.Width)
		fmt.Println(view.RenderDiff(wd.P1, wd.P2, m, *rows))
		return
	}
	if *window != "" {
		// Views below render the clipped profile; everything that reads
		// db.Merged — including `-json -view all` — sees only the windows
		// overlapping [t0, t1).
		clipped, err := analysis.Clip(db, winT0, winT1)
		if err != nil {
			fatal(exitLoadError, "%v", err)
		}
		db.Merged = clipped
	}

	if *asJSON {
		// -json with a specific view emits that view's report through the
		// same writers the dcprofd query endpoints use, so the offline and
		// served JSON surfaces are byte-identical for identical data.
		// -json alone (view "all") keeps the historical full-database dump.
		var err error
		switch {
		case *diffDir != "":
			after, ast, lerr := load(*diffDir)
			if lerr != nil {
				fatal(exitLoadError, "%v", lerr)
			}
			reportQuarantine(ast)
			err = view.WriteDiffJSON(os.Stdout, db.Merged, after.Merged, m, *rows)
		case *which == "topdown":
			err = view.WriteTopDownJSON(os.Stdout, db.Merged, opts)
		case *which == "bottomup":
			err = view.WriteBottomUpJSON(os.Stdout, db.Merged, opts)
		case *which == "all":
			err = analysis.WriteJSON(os.Stdout, db)
		default:
			fatal(exitUsage, "-json supports views topdown, bottomup, all (got %q)", *which)
		}
		if err != nil {
			fatal(exitLoadError, "%v", err)
		}
		return
	}
	fmt.Printf("measurement: %d profiles (%d ranks), event %s, %.2f MB on disk\n\n",
		db.Threads, db.Ranks, db.Event, float64(db.MeasurementBytes)/1e6)
	fmt.Println(view.RenderDerived(db.Merged))

	if *diffDir != "" {
		after, ast, err := load(*diffDir)
		if err != nil {
			fatal(exitLoadError, "%v", err)
		}
		reportQuarantine(ast)
		fmt.Println(view.RenderDiff(db.Merged, after.Merged, m, *rows))
		return
	}

	switch *which {
	case "topdown":
		fmt.Println(view.RenderTopDown(db.Merged, opts))
	case "bottomup":
		fmt.Println(view.RenderBottomUp(db.Merged, opts))
	case "vars":
		fmt.Println(view.RenderVariables(db.Merged, opts))
	case "advice":
		fmt.Println(view.RenderAdvice(db.Merged, *rows))
	case "all":
		fmt.Println(view.RenderVariables(db.Merged, opts))
		fmt.Println(view.RenderTopDown(db.Merged, opts))
		fmt.Println(view.RenderBottomUp(db.Merged, opts))
		fmt.Println(view.RenderAdvice(db.Merged, *rows))
	default:
		fatal(exitUsage, "unknown view %q", *which)
	}
}

// reportQuarantine warns on stderr when a degraded-policy load skipped
// files, so a clean-looking report can't silently hide missing data.
func reportQuarantine(st analysis.MergeStats) {
	if len(st.Quarantined) == 0 {
		return
	}
	fmt.Fprintf(os.Stderr, "dcview: warning: %d damaged profile(s) quarantined (run with -stats for details)\n",
		len(st.Quarantined))
}

func pickMetric(name, event string) metric.ID {
	if name == "" {
		return metric.Default(event)
	}
	if id, ok := metric.ByName(name); ok {
		return id
	}
	avail := make([]string, 0, len(metric.IDs()))
	for _, id := range metric.IDs() {
		avail = append(avail, id.Name())
	}
	fatal(exitUsage, "unknown metric %q; available: %s", name, strings.Join(avail, " "))
	return 0
}
