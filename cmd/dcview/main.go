// Command dcview is the text analogue of the paper's GUI: it loads a
// measurement directory written by dcprof, merges the per-thread profiles
// with the parallel reduction-tree analyzer, and prints the data-centric
// views.
//
// Usage:
//
//	dcview -d measurements/                      # all views, default metric
//	dcview -d m/ -metric LATENCY -view topdown   # one view
//	dcview -d m/ -view bottomup -rows 15
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dcprof/internal/analysis"
	"dcprof/internal/metric"
	"dcprof/internal/view"
)

func main() {
	var (
		dir     = flag.String("d", "measurements", "measurement directory")
		metName = flag.String("metric", "", "ranking metric (default: FROM_RMEM for marked profiles, LATENCY(cy) for IBS)")
		which   = flag.String("view", "all", "view: topdown | bottomup | vars | advice | all")
		rows    = flag.Int("rows", 20, "max rows for table views")
		depth   = flag.Int("depth", 12, "max depth for the top-down tree")
		min     = flag.Float64("min", 0.005, "hide nodes below this share")
		diffDir = flag.String("diff", "", "second measurement directory to compare against (before -> after)")
		asJSON  = flag.Bool("json", false, "dump the merged database as JSON and exit")
		workers = flag.Int("workers", 0, "streaming ingest/merge workers (0 = GOMAXPROCS)")
		stats   = flag.Bool("stats", false, "print streaming merge pipeline statistics")
	)
	flag.Parse()

	db, st, err := analysis.LoadDirStreaming(*dir, *workers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dcview:", err)
		os.Exit(1)
	}
	if *stats {
		fmt.Printf("merge stats: %d profiles, %.2f MB read, %d -> %d nodes (%.1fx coalescing), decode %s, merge %s, %d workers, peak residency %d profiles\n",
			st.Inputs, float64(st.BytesRead)/1e6, st.InputNodes, st.MergedNodes,
			st.CoalescingFactor(), st.DecodeWall, st.MergeWall, st.Workers, st.MaxResident)
	}
	if *asJSON {
		if err := analysis.WriteJSON(os.Stdout, db); err != nil {
			fmt.Fprintln(os.Stderr, "dcview:", err)
			os.Exit(1)
		}
		return
	}
	fmt.Printf("measurement: %d profiles (%d ranks), event %s, %.2f MB on disk\n\n",
		db.Threads, db.Ranks, db.Event, float64(db.MeasurementBytes)/1e6)
	fmt.Println(view.RenderDerived(db.Merged))

	m := pickMetric(*metName, db.Event)
	opts := view.Options{Metric: m, MaxRows: *rows, MaxDepth: *depth, MinShare: *min}

	if *diffDir != "" {
		after, err := analysis.LoadDir(*diffDir, *workers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dcview:", err)
			os.Exit(1)
		}
		fmt.Println(view.RenderDiff(db.Merged, after.Merged, m, *rows))
		return
	}

	switch *which {
	case "topdown":
		fmt.Println(view.RenderTopDown(db.Merged, opts))
	case "bottomup":
		fmt.Println(view.RenderBottomUp(db.Merged, opts))
	case "vars":
		fmt.Println(view.RenderVariables(db.Merged, opts))
	case "advice":
		fmt.Println(view.RenderAdvice(db.Merged, *rows))
	case "all":
		fmt.Println(view.RenderVariables(db.Merged, opts))
		fmt.Println(view.RenderTopDown(db.Merged, opts))
		fmt.Println(view.RenderBottomUp(db.Merged, opts))
		fmt.Println(view.RenderAdvice(db.Merged, *rows))
	default:
		fmt.Fprintf(os.Stderr, "dcview: unknown view %q\n", *which)
		os.Exit(1)
	}
}

func pickMetric(name, event string) metric.ID {
	if name == "" {
		if strings.HasPrefix(event, "IBS") {
			return metric.Latency
		}
		return metric.FromRMEM
	}
	for _, id := range metric.IDs() {
		if strings.EqualFold(id.Name(), name) {
			return id
		}
	}
	fmt.Fprintf(os.Stderr, "dcview: unknown metric %q; available:", name)
	for _, id := range metric.IDs() {
		fmt.Fprintf(os.Stderr, " %s", id.Name())
	}
	fmt.Fprintln(os.Stderr)
	os.Exit(1)
	return 0
}
