// Command dcbench regenerates the paper's tables and figures.
//
// Usage:
//
//	dcbench                  # run every experiment at full scale
//	dcbench -exp table2      # one experiment
//	dcbench -quick           # unit-test-sized runs
//	dcbench -list            # list experiment ids
//	dcbench -trace traces/   # also write <id>.trace.json per experiment
//
// -trace writes one Chrome trace-event file per experiment (open in
// chrome://tracing or https://ui.perfetto.dev): the experiment span, each
// benchmark run it triggered, and instants for runs served from the memo
// cache.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"dcprof/internal/experiments"
	"dcprof/internal/telemetry/spanlog"
)

func main() {
	var (
		exp      = flag.String("exp", "", "comma-separated experiment ids to run (default: all)")
		quick    = flag.Bool("quick", false, "use unit-test-sized configurations")
		list     = flag.Bool("list", false, "list experiment ids and exit")
		traceDir = flag.String("trace", "", "write a Chrome trace-event JSON file per experiment into this directory")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-11s %s\n            paper: %s\n", e.ID, e.Title, e.Paper)
		}
		return
	}

	scale := experiments.Full
	if *quick {
		scale = experiments.Quick
	}

	todo := experiments.All()
	if *exp != "" {
		todo = nil
		for _, id := range strings.Split(*exp, ",") {
			id = strings.TrimSpace(id)
			e, ok := experiments.ByID(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "dcbench: unknown experiment %q (try -list)\n", id)
				os.Exit(1)
			}
			todo = append(todo, e)
		}
	}

	if *traceDir != "" {
		if err := os.MkdirAll(*traceDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "dcbench:", err)
			os.Exit(1)
		}
	}

	ctx := experiments.NewContext()
	total := time.Now()
	for _, e := range todo {
		var spans *spanlog.Log
		if *traceDir != "" {
			spans = spanlog.New()
			ctx.SetSpans(spans)
		}
		start := time.Now()
		expDone := spans.Span("experiment "+e.ID, "experiment", 0, 0,
			map[string]any{"title": e.Title, "scale": scale.String()})
		table := e.Run(ctx, scale)
		expDone()
		fmt.Println(table.Render())
		fmt.Printf("paper reference: %s   [%s scale, %.1fs]\n\n",
			e.Paper, scale, time.Since(start).Seconds())
		if spans != nil {
			path := filepath.Join(*traceDir, e.ID+".trace.json")
			if err := writeTrace(path, spans); err != nil {
				fmt.Fprintln(os.Stderr, "dcbench:", err)
				os.Exit(1)
			}
			fmt.Printf("trace: %s (%d events)\n\n", path, spans.Len())
		}
	}
	if len(todo) > 1 {
		fmt.Printf("%d experiments in %.1fs\n", len(todo), time.Since(total).Seconds())
	}
}

// writeTrace dumps one experiment's span log as a trace-event document.
func writeTrace(path string, spans *spanlog.Log) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := spans.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
