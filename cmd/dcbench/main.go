// Command dcbench regenerates the paper's tables and figures.
//
// Usage:
//
//	dcbench                  # run every experiment at full scale
//	dcbench -exp table2      # one experiment
//	dcbench -quick           # unit-test-sized runs
//	dcbench -list            # list experiment ids
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"dcprof/internal/experiments"
)

func main() {
	var (
		exp   = flag.String("exp", "", "comma-separated experiment ids to run (default: all)")
		quick = flag.Bool("quick", false, "use unit-test-sized configurations")
		list  = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-11s %s\n            paper: %s\n", e.ID, e.Title, e.Paper)
		}
		return
	}

	scale := experiments.Full
	if *quick {
		scale = experiments.Quick
	}

	todo := experiments.All()
	if *exp != "" {
		todo = nil
		for _, id := range strings.Split(*exp, ",") {
			id = strings.TrimSpace(id)
			e, ok := experiments.ByID(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "dcbench: unknown experiment %q (try -list)\n", id)
				os.Exit(1)
			}
			todo = append(todo, e)
		}
	}

	ctx := experiments.NewContext()
	total := time.Now()
	for _, e := range todo {
		start := time.Now()
		table := e.Run(ctx, scale)
		fmt.Println(table.Render())
		fmt.Printf("paper reference: %s   [%s scale, %.1fs]\n\n",
			e.Paper, scale, time.Since(start).Seconds())
	}
	if len(todo) > 1 {
		fmt.Printf("%d experiments in %.1fs\n", len(todo), time.Since(total).Seconds())
	}
}
