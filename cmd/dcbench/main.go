// Command dcbench regenerates the paper's tables and figures.
//
// Usage:
//
//	dcbench                  # run every experiment at full scale
//	dcbench -exp table2      # one experiment
//	dcbench -quick           # unit-test-sized runs
//	dcbench -list            # list experiment ids
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"dcprof/internal/experiments"
)

func main() {
	var (
		exp   = flag.String("exp", "", "experiment id to run (default: all)")
		quick = flag.Bool("quick", false, "use unit-test-sized configurations")
		list  = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-11s %s\n            paper: %s\n", e.ID, e.Title, e.Paper)
		}
		return
	}

	scale := experiments.Full
	if *quick {
		scale = experiments.Quick
	}

	todo := experiments.All()
	if *exp != "" {
		e, ok := experiments.ByID(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "dcbench: unknown experiment %q (try -list)\n", *exp)
			os.Exit(1)
		}
		todo = []experiments.Experiment{e}
	}

	ctx := experiments.NewContext()
	for _, e := range todo {
		start := time.Now()
		table := e.Run(ctx, scale)
		fmt.Println(table.Render())
		fmt.Printf("paper reference: %s   [%s scale, %.1fs]\n\n",
			e.Paper, scale, time.Since(start).Seconds())
	}
}
