package main

// Self-observability for the measurement run itself (-telemetry FILE):
// dcprof profiles the simulated application, and the telemetry snapshot
// profiles dcprof. The snapshot spans all three instrumented layers —
// profiler.* (sampling and allocation tracking), profio.* (bytes and
// sections written, and read back during verification), and analysis.*
// (the verification reload's merge pipeline) — plus a self section with
// the real process's wall/CPU cost and the simulated overhead split the
// paper's Table 4 reports.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"syscall"
	"time"

	"dcprof/internal/analysis"
	"dcprof/internal/apps/bench"
	"dcprof/internal/telemetry"
)

// selfReport is the "who watches the profiler" section of the snapshot.
type selfReport struct {
	// Real-process cost of the whole measurement run.
	WallSeconds float64 `json:"wall_seconds"`
	CPUSeconds  float64 `json:"cpu_seconds"`
	// Simulated cost: total application cycles, the profiler-charged share,
	// and that share as the paper-style overhead percentage.
	SimulatedCycles uint64  `json:"simulated_cycles"`
	OverheadCycles  uint64  `json:"overhead_cycles"`
	OverheadPercent float64 `json:"overhead_percent"`
	// Space cost: bytes of measurement data on disk.
	MeasurementBytes int64 `json:"measurement_bytes"`
	ProfileFiles     int   `json:"profile_files"`
}

// telemetryReport is the document -telemetry writes.
type telemetryReport struct {
	App         string             `json:"app"`
	Variant     string             `json:"variant"`
	Event       string             `json:"event"`
	Self        selfReport         `json:"self"`
	Instruments telemetry.Snapshot `json:"instruments"`
}

// cpuSeconds returns user+system CPU time of this process.
func cpuSeconds() float64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	sec := func(tv syscall.Timeval) float64 {
		return float64(tv.Sec) + float64(tv.Usec)/1e6
	}
	return sec(ru.Utime) + sec(ru.Stime)
}

// writeTelemetry verifies the written measurement directory by reloading
// it through the streaming pipeline (populating analysis.* and profio
// read-side instruments), then writes the full snapshot to path.
func writeTelemetry(path, outDir string, res *bench.Result, bytes int64, wall time.Duration) error {
	reg := telemetry.Default()

	// Verification reload: proves the just-written directory is readable
	// and exercises the ingest pipeline under telemetry.
	if _, _, err := analysis.LoadDirStreamingCtx(context.Background(), outDir,
		analysis.LoadOptions{Telemetry: reg}); err != nil {
		return fmt.Errorf("verification reload of %s: %w", outDir, err)
	}

	event := ""
	if len(res.Profiles) > 0 {
		event = res.Profiles[0].Event
	}
	rep := telemetryReport{
		App:     res.App,
		Variant: res.Variant,
		Event:   event,
		Self: selfReport{
			WallSeconds:      wall.Seconds(),
			CPUSeconds:       cpuSeconds(),
			SimulatedCycles:  res.Cycles,
			OverheadCycles:   res.OverheadCycles,
			OverheadPercent:  100 * float64(res.OverheadCycles) / float64(res.Cycles),
			MeasurementBytes: bytes,
			ProfileFiles:     len(res.Profiles),
		},
		Instruments: reg.Snapshot(),
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
