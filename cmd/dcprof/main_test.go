package main

import (
	"strings"
	"testing"
)

func TestRunEveryAppQuick(t *testing.T) {
	for _, app := range []string{"amg", "sweep3d", "lulesh", "streamcluster", "nw"} {
		res, err := run(app, "original", "", 0, true, nil)
		if err != nil {
			t.Fatalf("%s: %v", app, err)
		}
		if res.Cycles == 0 {
			t.Errorf("%s: no simulated time", app)
		}
		if len(res.Profiles) == 0 {
			t.Errorf("%s: no profiles", app)
		}
	}
}

func TestRunOptimizedVariants(t *testing.T) {
	for app, variant := range map[string]string{
		"amg":           "libnuma",
		"sweep3d":       "transposed",
		"lulesh":        "both",
		"streamcluster": "parallel-init",
		"nw":            "optimized",
	} {
		if _, err := run(app, variant, "", 0, true, nil); err != nil {
			t.Errorf("%s/%s: %v", app, variant, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := run("", "original", "", 0, true, nil); err == nil {
		t.Error("missing app accepted")
	}
	if _, err := run("nosuch", "original", "", 0, true, nil); err == nil {
		t.Error("bogus app accepted")
	}
	if _, err := run("amg", "bogus-variant", "", 0, true, nil); err == nil {
		t.Error("bogus variant accepted")
	}
	if _, err := run("amg", "original", "bogus-event", 0, true, nil); err == nil {
		t.Error("bogus event accepted")
	}
}

func TestProfCfgDefaults(t *testing.T) {
	// Per-app event defaults follow Table 1.
	ibsApps := []string{"sweep3d", "lulesh"}
	for _, app := range ibsApps {
		cfg, err := profCfg(app, "", 0)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.HasPrefix(cfg.EventString(), "IBS") {
			t.Errorf("%s default event = %s, want IBS", app, cfg.EventString())
		}
	}
	cfg, err := profCfg("amg", "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(cfg.EventString(), "RMEM") {
		t.Errorf("amg default event = %s, want RMEM marked", cfg.EventString())
	}
	// Explicit period propagates.
	cfg, err = profCfg("amg", "l3", 777)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Period != 777 || !strings.Contains(cfg.EventString(), "L3") {
		t.Errorf("explicit config = %s", cfg.EventString())
	}
}
