// Command dcprof runs one of the benchmark reimplementations under the
// data-centric profiler and writes a measurement directory of per-thread
// profile files (one .dcprof per thread, as the real tool writes one file
// per thread), then prints a short summary.
//
// Profile files are written durably (write temp file, fsync, rename) in
// the checksummed v3 format, so a crash mid-measurement never leaves a
// corrupt file under a final profile name and any later at-rest damage is
// detected at read time.
//
// Usage:
//
//	dcprof -app streamcluster -o measurements/
//	dcprof -app amg -variant libnuma -event rmem -period 40 -o m/
//	dcprof -app lulesh -event ibs -quick -o m/
//
// Inspect the measurement directory with dcview.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"dcprof/internal/apps/amg"
	"dcprof/internal/apps/bench"
	"dcprof/internal/apps/lulesh"
	"dcprof/internal/apps/nw"
	"dcprof/internal/apps/streamcluster"
	"dcprof/internal/apps/sweep3d"
	"dcprof/internal/pmu"
	"dcprof/internal/profiler"
	"dcprof/internal/profio"
	"dcprof/internal/telemetry"
)

func main() {
	var (
		app     = flag.String("app", "", "benchmark: amg | sweep3d | lulesh | streamcluster | nw")
		variant = flag.String("variant", "original", "benchmark variant (original | optimized | numactl | libnuma | transposed | parallel-init)")
		event   = flag.String("event", "", "monitored event: ibs | rmem | lmem | l3 (default: per-app choice)")
		period  = flag.Uint64("period", 0, "sampling period (0: per-app default)")
		quick   = flag.Bool("quick", false, "use the unit-test-sized configuration")
		outDir  = flag.String("o", "measurements", "output measurement directory")
		telFile = flag.String("telemetry", "", "write a JSON self-observability snapshot (instruments + overhead) to this file on exit")
	)
	flag.Parse()

	start := time.Now()
	var tel *telemetry.Registry
	if *telFile != "" {
		tel = telemetry.Default()
	}

	res, err := run(*app, *variant, *event, *period, *quick, tel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dcprof:", err)
		os.Exit(1)
	}

	bytes, err := profio.WriteDir(*outDir, res.Profiles)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dcprof:", err)
		os.Exit(1)
	}
	fmt.Printf("%s/%s: %d simulated cycles, %d cycles of measurement overhead (%.2f%%)\n",
		res.App, res.Variant, res.Cycles, res.OverheadCycles,
		100*float64(res.OverheadCycles)/float64(res.Cycles))
	fmt.Printf("wrote %d thread profiles (%.2f MB, durable checksummed v3) to %s\n",
		len(res.Profiles), float64(bytes)/1e6, *outDir)

	if *telFile != "" {
		if err := writeTelemetry(*telFile, *outDir, res, bytes, time.Since(start)); err != nil {
			fmt.Fprintln(os.Stderr, "dcprof:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote telemetry snapshot to %s\n", *telFile)
	}
	fmt.Printf("view with: dcview -d %s\n", *outDir)
}

func profCfg(app, event string, period uint64) (profiler.Config, error) {
	// Per-app defaults follow the paper's Table 1.
	if event == "" {
		switch app {
		case "sweep3d", "lulesh":
			event = "ibs"
		default:
			event = "rmem"
		}
	}
	var cfg profiler.Config
	switch strings.ToLower(event) {
	case "ibs":
		cfg = profiler.DefaultConfig()
		if period == 0 {
			period = 4096
		}
	case "rmem":
		cfg = profiler.MarkedConfig(pmu.MarkDataFromRMEM, 40)
	case "lmem":
		cfg = profiler.MarkedConfig(pmu.MarkDataFromLMEM, 40)
	case "l3":
		cfg = profiler.MarkedConfig(pmu.MarkDataFromL3, 40)
	default:
		return cfg, fmt.Errorf("unknown event %q", event)
	}
	if period != 0 {
		cfg.Period = period
	}
	return cfg, nil
}

func run(app, variant, event string, period uint64, quick bool, tel *telemetry.Registry) (*bench.Result, error) {
	pc, err := profCfg(app, event, period)
	if err != nil {
		return nil, err
	}
	pc.Telemetry = tel
	if quick && period == 0 {
		// Unit-test-sized runs retire far fewer events; keep sample counts
		// usable by shortening the period proportionally.
		pc.Period = pc.Period / 8
		if pc.Period == 0 {
			pc.Period = 1
		}
	}
	switch app {
	case "amg":
		cfg := amg.DefaultConfig()
		if quick {
			cfg = amg.TestConfig()
		}
		switch variant {
		case "original":
			cfg.Variant = amg.Original
		case "numactl":
			cfg.Variant = amg.NumactlInterleave
		case "libnuma", "optimized":
			cfg.Variant = amg.LibnumaSelective
		default:
			return nil, fmt.Errorf("amg: unknown variant %q", variant)
		}
		cfg.Profile = &pc
		return amg.Run(cfg), nil
	case "sweep3d":
		cfg := sweep3d.DefaultConfig()
		if quick {
			cfg = sweep3d.TestConfig()
		}
		switch variant {
		case "original":
			cfg.Variant = sweep3d.Original
		case "transposed", "optimized":
			cfg.Variant = sweep3d.Transposed
		default:
			return nil, fmt.Errorf("sweep3d: unknown variant %q", variant)
		}
		cfg.Profile = &pc
		return sweep3d.Run(cfg), nil
	case "lulesh":
		cfg := lulesh.DefaultConfig()
		if quick {
			cfg = lulesh.TestConfig()
		}
		switch variant {
		case "original":
			cfg.Variant = lulesh.Original
		case "interleaved":
			cfg.Variant = lulesh.InterleavedHeap
		case "transposed":
			cfg.Variant = lulesh.FElemTransposed
		case "optimized", "both":
			cfg.Variant = lulesh.InterleavedHeap | lulesh.FElemTransposed
		default:
			return nil, fmt.Errorf("lulesh: unknown variant %q", variant)
		}
		cfg.Profile = &pc
		return lulesh.Run(cfg), nil
	case "streamcluster":
		cfg := streamcluster.DefaultConfig()
		if quick {
			cfg = streamcluster.TestConfig()
		}
		switch variant {
		case "original":
			cfg.Variant = streamcluster.Original
		case "parallel-init", "optimized":
			cfg.Variant = streamcluster.ParallelInit
		default:
			return nil, fmt.Errorf("streamcluster: unknown variant %q", variant)
		}
		cfg.Profile = &pc
		return streamcluster.Run(cfg), nil
	case "nw":
		cfg := nw.DefaultConfig()
		if quick {
			cfg = nw.TestConfig()
		}
		switch variant {
		case "original":
			cfg.Variant = nw.Original
		case "libnuma", "optimized":
			cfg.Variant = nw.LibnumaInterleave
		default:
			return nil, fmt.Errorf("nw: unknown variant %q", variant)
		}
		cfg.Profile = &pc
		return nw.Run(cfg), nil
	case "":
		return nil, fmt.Errorf("-app is required (amg | sweep3d | lulesh | streamcluster | nw)")
	default:
		return nil, fmt.Errorf("unknown app %q", app)
	}
}
