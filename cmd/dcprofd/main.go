// Command dcprofd is the continuous-profiling daemon: it accepts profile
// uploads over HTTP, organizes them into named collections under a data
// directory, and serves the data-centric views as JSON with an LRU cache
// of merged CCTs so repeat queries never re-merge.
//
// Usage:
//
//	dcprofd -addr :8080 -data ./collections
//
//	# upload a measurement's profiles into a collection (dcpush retries
//	# through overload and resumes interrupted batches; plain curl works
//	# too — uploads are idempotent by content digest either way)
//	dcpush -server http://localhost:8080 -collection amg-run1 measurements/
//
//	# liveness and readiness (429/503 shed responses carry Retry-After)
//	curl -sS http://localhost:8080/healthz
//	curl -sS http://localhost:8080/readyz
//
//	# query the merged views
//	curl -sS 'http://localhost:8080/collections/amg-run1/topdown?metric=LATENCY(cy)'
//	curl -sS 'http://localhost:8080/collections/amg-run1/bottomup?rows=10'
//	curl -sS 'http://localhost:8080/collections/amg-run2/diff?base=amg-run1'
//	curl -sS 'http://localhost:8080/collections/amg-run1/stats'
//	curl -sS 'http://localhost:8080/debug/telemetry?prefix=server.'
//
//	# fleet observability: Prometheus scrape target, rates view, the
//	# server's own recent history, and the last requests as a trace
//	curl -sS http://localhost:8080/metrics
//	curl -sS http://localhost:8080/debug/vars
//	curl -sS 'http://localhost:8080/debug/timeline?window=30s'
//	curl -sS http://localhost:8080/debug/trace > trace.json   # open in Perfetto
//
// Every request gets an X-Request-ID (propagated from the client when it
// sent one — dcpush always does) and one structured JSON access-log line
// on stderr; grep the ID to join a client-side failure to the exact
// server-side request.
//
// Shutdown is graceful: SIGINT/SIGTERM stop accepting connections and
// wait (bounded) for in-flight requests. All diagnostics go to stderr.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dcprof/internal/server"
	"dcprof/internal/telemetry/spanlog"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		data       = flag.String("data", "collections", "data directory holding the collections")
		entries    = flag.Int("cache-entries", 64, "max cached merged views (LRU)")
		workers    = flag.Int("workers", 0, "merge workers per load (0 = GOMAXPROCS); alias for -merge-workers")
		mergeWork  = flag.Int("merge-workers", 0, "merge workers per load (0 = GOMAXPROCS); takes precedence over -workers")
		mergeShard = flag.Int("merge-shards", 0, "per-class fold shards (0 = derived from workers)")
		sectionPar = flag.Int("merge-section-parallel", 0, "concurrent tree-section decodes per file (0/1 = sequential)")
		maxUp      = flag.Int64("max-upload-mb", 1024, "max accepted upload size in MiB")
		maxUploads = flag.Int("max-uploads", 64, "max concurrent uploads before shedding 429")
		maxMerges  = flag.Int("max-merges", 4, "max concurrent view merges before shedding 503")
		reqTimeout = flag.Duration("request-timeout", 0, "per-request deadline (0 = none)")
		colQuota   = flag.Int64("collection-quota-mb", 0, "per-collection disk quota in MiB (0 = unlimited)")
		totalQuota = flag.Int64("total-quota-mb", 0, "total disk quota in MiB across collections (0 = unlimited)")
		probeEvery = flag.Duration("probe-interval", 5*time.Second, "min interval between read-only recovery probes")
		accessLog  = flag.Bool("access-log", true, "emit one structured JSON access-log line per request on stderr")
		traceCap   = flag.Int("trace-events", 4096, "request spans retained for /debug/trace (0 disables tracing)")
		tlEvery    = flag.Duration("timeline-interval", time.Second, "self-telemetry snapshot interval for /debug/timeline (0 disables)")
		tlPoints   = flag.Int("timeline-points", 300, "self-telemetry snapshots retained")
	)
	flag.Parse()

	effWorkers := *workers
	if *mergeWork > 0 {
		effWorkers = *mergeWork
	}
	cfg := server.Config{
		DataDir:               *data,
		CacheEntries:          *entries,
		Workers:               effWorkers,
		Shards:                *mergeShard,
		SectionParallel:       *sectionPar,
		MaxUploadBytes:        *maxUp << 20,
		MaxInflightUploads:    *maxUploads,
		MaxConcurrentMerges:   *maxMerges,
		RequestTimeout:        *reqTimeout,
		MaxCollectionBytes:    *colQuota << 20,
		MaxTotalBytes:         *totalQuota << 20,
		ReadonlyProbeInterval: *probeEvery,
		TimelineInterval:      *tlEvery,
		TimelinePoints:        *tlPoints,
	}
	if *accessLog {
		cfg.AccessLog = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	}
	if *traceCap > 0 {
		cfg.Spans = spanlog.NewBounded(*traceCap)
	}
	srv, err := server.New(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dcprofd: %v\n", err)
		os.Exit(1)
	}
	defer srv.Close()

	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "dcprofd: serving %s on %s\n", *data, *addr)

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "dcprofd: %v\n", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		stop()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := hs.Shutdown(shutdownCtx); err != nil {
			fmt.Fprintf(os.Stderr, "dcprofd: shutdown: %v\n", err)
			os.Exit(1)
		}
	}
}
