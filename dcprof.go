// Package dcprof is the public API of the data-centric profiler
// reproduction: a simulated NUMA execution substrate, the data-centric
// call-path profiler that attaches to it, the post-mortem analyzer, and the
// presentation views — everything a program needs to reproduce the paper's
// workflow (measure → merge → view) or to build new studies on top.
//
// The package re-exports the stable surface of the internal packages as
// type aliases, so examples and downstream tools depend only on this one
// import:
//
//	node := dcprof.NewNode(dcprof.MagnyCours48(), dcprof.DefaultCacheConfig())
//	proc := dcprof.NewProcess(node, 0, 0, 48, nil)
//	prof := dcprof.Attach(proc, dcprof.DefaultProfilerConfig())
//	... declare a program, run threads ...
//	db := dcprof.Merge(prof.Profiles(), 0)
//	fmt.Println(dcprof.RenderTopDown(db.Merged, dcprof.ViewOptions{Metric: dcprof.MetricLatency}))
package dcprof

import (
	"context"

	"dcprof/internal/analysis"
	"dcprof/internal/cache"
	"dcprof/internal/cct"
	"dcprof/internal/machine"
	"dcprof/internal/mem"
	"dcprof/internal/metric"
	"dcprof/internal/pmu"
	"dcprof/internal/profiler"
	"dcprof/internal/profio"
	"dcprof/internal/sim"
	"dcprof/internal/telemetry"
	"dcprof/internal/telemetry/spanlog"
	"dcprof/internal/view"
)

// ---- Machine topology ----

// Topology describes a multi-socket NUMA node.
type Topology = machine.Topology

// Power7Node returns the paper's 128-hardware-thread POWER7 node.
func Power7Node() Topology { return machine.Power7Node() }

// MagnyCours48 returns the paper's 48-core AMD server.
func MagnyCours48() Topology { return machine.MagnyCours48() }

// TinyTopology returns a 4-thread, 2-domain node for experiments and tests.
func TinyTopology() Topology { return machine.Tiny() }

// ---- Memory hierarchy ----

// CacheConfig sets the simulated memory hierarchy's geometry and timing.
type CacheConfig = cache.Config

// DefaultCacheConfig returns realistic full-size cache parameters.
func DefaultCacheConfig() CacheConfig { return cache.DefaultConfig() }

// DataSource identifies the memory-hierarchy level that served an access.
type DataSource = cache.DataSource

// ---- Address space ----

// Addr is a simulated virtual address.
type Addr = mem.Addr

// Policy decides NUMA page placement; FirstTouch, Interleave and Bind are
// the concrete policies.
type (
	Policy     = mem.Policy
	FirstTouch = mem.FirstTouch
	Interleave = mem.Interleave
	Bind       = mem.Bind
)

// ---- Execution substrate ----

// Node is one simulated machine.
type Node = sim.Node

// NewNode builds a node from a topology and cache configuration.
func NewNode(t Topology, c CacheConfig) *Node { return sim.NewNode(t, c) }

// Process is one simulated process (MPI rank); Thread one of its threads.
type (
	Process = sim.Process
	Thread  = sim.Thread
)

// NewProcess creates a process with a hardware-thread reservation and a
// process-wide placement policy (nil = first touch).
func NewProcess(n *Node, rank, asid, hwThreads int, p Policy) *Process {
	return sim.NewProcess(n, rank, asid, hwThreads, p)
}

// World is an MPI-lite communicator over several processes.
type World = sim.World

// NewWorld creates `ranks` processes block-distributed over nodes.
func NewWorld(nodes []*Node, ranks, threadsPerRank int, p Policy) *World {
	return sim.NewWorld(nodes, ranks, threadsPerRank, p)
}

// ---- PMU ----

// MarkedEvent selects a POWER7-style marked event.
type MarkedEvent = pmu.MarkedEvent

// The marked events the profiler can monitor.
const (
	MarkDataFromRMEM = pmu.MarkDataFromRMEM
	MarkDataFromLMEM = pmu.MarkDataFromLMEM
	MarkDataFromL3   = pmu.MarkDataFromL3
	MarkDataFromL2   = pmu.MarkDataFromL2
	MarkAllMem       = pmu.MarkAllMem
)

// ---- Profiler (the paper's contribution) ----

// Profiler is the online data-centric call-path profiler.
type Profiler = profiler.Profiler

// ProfilerConfig controls measurement and the overhead model.
type ProfilerConfig = profiler.Config

// DefaultProfilerConfig returns IBS sampling with the paper's allocation
// tracking strategy (4 KiB threshold + trampoline).
func DefaultProfilerConfig() ProfilerConfig { return profiler.DefaultConfig() }

// MarkedProfilerConfig returns marked-event sampling for the given event.
func MarkedProfilerConfig(e MarkedEvent, period uint64) ProfilerConfig {
	return profiler.MarkedConfig(e, period)
}

// Attach wraps a process with profiler instrumentation. Call before
// Process.Start or World.Run.
func Attach(p *Process, cfg ProfilerConfig) *Profiler { return profiler.Attach(p, cfg) }

// ---- Profiles and analysis ----

// Profile is one thread's measurement (one CCT per storage class).
type Profile = cct.Profile

// Database is the merged analysis result.
type Database = analysis.Database

// MergeStats reports streaming merge pipeline observability (bytes read,
// node counts, per-stage wall times, peak decoded-profile residency,
// quarantined files).
type MergeStats = analysis.MergeStats

// ErrorPolicy selects how the streaming ingest treats unreadable files;
// QuarantinedFile records one file it could not (fully) use.
type (
	ErrorPolicy     = analysis.ErrorPolicy
	QuarantinedFile = analysis.QuarantinedFile
)

// The ingest error policies: abort on the first damaged file, skip damaged
// files (recording each), or additionally merge the intact class trees
// recoverable from them.
const (
	PolicyStrict     = analysis.PolicyStrict
	PolicyQuarantine = analysis.PolicyQuarantine
	PolicySalvage    = analysis.PolicySalvage
)

// LoadOptions configures LoadMeasurementsStreamingCtx.
type LoadOptions = analysis.LoadOptions

// Merge reduces per-thread profiles with the streaming channel-fed
// reduction (workers <= 0 uses GOMAXPROCS). The inputs are consumed; use
// MergePreserving to merge the same profiles more than once.
func Merge(profiles []*Profile, workers int) *Database { return analysis.Merge(profiles, workers) }

// MergePreserving is Merge without input consumption.
func MergePreserving(profiles []*Profile, workers int) *Database {
	return analysis.MergePreserving(profiles, workers)
}

// LoadMeasurements reads and merges a measurement directory.
func LoadMeasurements(dir string, workers int) (*Database, error) {
	return analysis.LoadDir(dir, workers)
}

// LoadMeasurementsStreaming reads and merges a measurement directory
// through the bounded-residency streaming pipeline, returning its
// statistics alongside the database. It is strict: one unreadable file
// fails the load. Use LoadMeasurementsStreamingCtx to choose a
// fault-tolerance policy or to cancel mid-merge.
func LoadMeasurementsStreaming(dir string, workers int) (*Database, MergeStats, error) {
	return analysis.LoadDirStreaming(dir, workers)
}

// LoadMeasurementsStreamingCtx is LoadMeasurementsStreaming with
// cancellation and per-file error policy (strict, quarantine, salvage).
// Files skipped or partially recovered under a non-strict policy are
// listed in MergeStats.Quarantined.
func LoadMeasurementsStreamingCtx(ctx context.Context, dir string, opt LoadOptions) (*Database, MergeStats, error) {
	return analysis.LoadDirStreamingCtx(ctx, dir, opt)
}

// WriteMeasurements durably writes one checksummed profile file per thread
// into dir (write temp, fsync, rename), returning total bytes (the
// measurement's space overhead). A crash mid-write can leave *.tmp debris
// but never a corrupt file under a final profile name.
func WriteMeasurements(dir string, profiles []*Profile) (int64, error) {
	return profio.WriteDir(dir, profiles)
}

// ---- Telemetry ----

// Telemetry is a concurrency-safe registry of counters, gauges and
// histograms. Attach one via ProfilerConfig.Telemetry (profiler
// instruments) or LoadOptions.Telemetry (merge pipeline instruments); a
// nil registry disables instrumentation at one branch per site.
type Telemetry = telemetry.Registry

// TelemetrySnapshot is a point-in-time copy of a registry's instruments,
// JSON-marshalable and mergeable into another registry with Absorb.
type TelemetrySnapshot = telemetry.Snapshot

// NewTelemetry creates an empty registry.
func NewTelemetry() *Telemetry { return telemetry.New() }

// DefaultTelemetry returns the process-wide registry. The profile I/O
// layer always accounts here (names under "profio.").
func DefaultTelemetry() *Telemetry { return telemetry.Default() }

// SpanLog collects timestamped spans and renders them as a Chrome
// trace-event JSON document (chrome://tracing, ui.perfetto.dev). Attach
// one via LoadOptions.Spans to trace the ingest/merge pipeline.
type SpanLog = spanlog.Log

// NewSpanLog creates an empty span log.
func NewSpanLog() *SpanLog { return spanlog.New() }

// ---- Metrics ----

// Metric identifies a performance metric.
type Metric = metric.ID

// The metric set.
const (
	MetricSamples  = metric.Samples
	MetricLatency  = metric.Latency
	MetricFromL1   = metric.FromL1
	MetricFromL2   = metric.FromL2
	MetricFromL3   = metric.FromL3
	MetricFromLMEM = metric.FromLMEM
	MetricFromRMEM = metric.FromRMEM
	MetricFromRL3  = metric.FromRL3
	MetricTLBMiss  = metric.TLBMiss
	MetricStores   = metric.Stores
)

// ---- Views ----

// ViewOptions controls view rendering.
type ViewOptions = view.Options

// VarStat ranks one variable; AccessStat one access statement.
type (
	VarStat    = view.VarStat
	AccessStat = view.AccessStat
)

// RankVariables lists heap and static variables by a metric.
func RankVariables(p *Profile, m Metric) []VarStat { return view.RankVariables(p, m) }

// TopAccesses ranks the statements accessing a variable.
func TopAccesses(v *VarStat, m Metric, grandTotal uint64) []AccessStat {
	return view.TopAccesses(v.Node, m, grandTotal)
}

// MetricTotal sums a metric across all storage classes.
func MetricTotal(p *Profile, m Metric) uint64 { return view.MetricTotal(p, m) }

// RenderTopDown renders the top-down data-centric pane.
func RenderTopDown(p *Profile, o ViewOptions) string { return view.RenderTopDown(p, o) }

// RenderBottomUp renders the allocation-site bottom-up pane.
func RenderBottomUp(p *Profile, o ViewOptions) string { return view.RenderBottomUp(p, o) }

// RenderVariables renders the ranked-variable table.
func RenderVariables(p *Profile, o ViewOptions) string { return view.RenderVariables(p, o) }
