GO ?= go

.PHONY: check lint vet build test race chaos-smoke fuzz-smoke bench-smoke bench-merge-scale

# check is the full pre-merge gate: static checks, the whole test suite
# (including the fault-injection suite), the race detector over the
# goroutine-heavy packages (the simulator's thread fan-out, the analyzer's
# streaming merge pipeline, and the fault-tolerant I/O layers), a short
# fuzz of the profile reader, salvager, and the daemon's upload ingest,
# and a one-iteration merge benchmark smoke to catch gross regressions.
check: lint build test race chaos-smoke fuzz-smoke bench-smoke bench-merge-scale

# lint: formatting drift is an error, then go vet.
lint:
	@unformatted="$$(gofmt -l .)"; \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
	$(GO) vet ./...

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/sim ./internal/analysis ./internal/profio ./internal/faultio ./internal/profiler ./internal/server ./internal/push ./internal/temporal ./internal/cct
	$(GO) test -race ./internal/telemetry/...

# Chaos smoke: the dcpush client through a scripted faulty transport
# (drops, shed 503s, timeouts, resets, lost responses) against a live
# dcprofd — every profile must land exactly once and the served view
# must match a cleanly-fed server byte for byte.
chaos-smoke:
	$(GO) test -race -run='^TestChaosPushSmoke$$' -count=1 ./internal/push

# Short fuzz of the reader and the salvage path (the fuzz engine accepts
# one target per run), on top of the always-run corpus regression pass.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzReadProfile -fuzztime=10s ./internal/profio
	$(GO) test -run='^$$' -fuzz=FuzzSalvageProfile -fuzztime=10s ./internal/profio
	$(GO) test -run='^$$' -fuzz=FuzzTemporalSection -fuzztime=10s ./internal/profio
	$(GO) test -run='^$$' -fuzz=FuzzReadV3Profile -fuzztime=10s ./internal/profio
	$(GO) test -run='^$$' -fuzz=FuzzHandleUpload -fuzztime=10s ./internal/server
	$(GO) test -run='^$$' -fuzz=FuzzUploadIdempotency -fuzztime=10s ./internal/server

bench-smoke:
	$(GO) test -run='^$$' -bench=Merge -benchtime=1x ./internal/analysis .
	DCPROF_BENCH_TELEMETRY="$(CURDIR)/BENCH_telemetry.json" \
		$(GO) test -run='^TestTelemetryOverheadGate$$' -count=1 ./internal/analysis
	DCPROF_BENCH_HOTPATH="$(CURDIR)/BENCH_hotpath.json" \
		$(GO) test -run='^TestHotPathBenchGate$$' -count=1 -timeout=30m ./internal/profiler
	DCPROF_BENCH_MIDDLEWARE="$(CURDIR)/BENCH_telemetry.json" \
		$(GO) test -run='^TestMiddlewareOverheadGate$$' -count=1 ./internal/server

# Merge-scale gate: sweep {1k, 10k} profiles x {1, 4, 8} workers through
# the sharded streaming merge, enforce the v3 size win and the scaling
# (or, on CPU-constrained hosts, overhead) bounds, and fail on >20%
# regression of 8-worker 1k-profile throughput vs the committed report.
bench-merge-scale:
	DCPROF_BENCH_MERGE_SCALE="$(CURDIR)/BENCH_merge_scale.json" \
		$(GO) test -run='^TestMergeScaleGate$$' -count=1 -timeout=30m ./internal/analysis
