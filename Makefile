GO ?= go

.PHONY: check vet build test race fuzz-smoke bench-smoke

# check is the full pre-merge gate: static checks, the whole test suite,
# the race detector over the goroutine-heavy packages (the simulator's
# thread fan-out and the analyzer's streaming merge pipeline), and a
# one-iteration merge benchmark smoke to catch gross regressions.
check: vet build test race bench-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/sim ./internal/analysis

# Run the fuzz corpus seeds (no fuzzing engine) — fast regression pass.
fuzz-smoke:
	$(GO) test -run=FuzzReadProfile ./internal/profio

bench-smoke:
	$(GO) test -run='^$$' -bench=Merge -benchtime=1x ./internal/analysis .
