#!/bin/sh
# Full pre-merge gate, for environments without make (see Makefile).
set -ex

# Lint: formatting drift is an error, then go vet.
test -z "$(gofmt -l .)"
go vet ./...
go build ./...
go test ./...
go test -race ./internal/sim ./internal/analysis ./internal/profio ./internal/faultio ./internal/profiler ./internal/server ./internal/push ./internal/temporal ./internal/cct
go test -race ./internal/telemetry/...
# Chaos smoke: dcpush through a scripted faulty transport against a live
# dcprofd — exactly-once delivery and byte-identical served views.
go test -race -run='^TestChaosPushSmoke$' -count=1 ./internal/push
go test -run='^$' -fuzz=FuzzReadProfile -fuzztime=10s ./internal/profio
go test -run='^$' -fuzz=FuzzSalvageProfile -fuzztime=10s ./internal/profio
go test -run='^$' -fuzz=FuzzTemporalSection -fuzztime=10s ./internal/profio
go test -run='^$' -fuzz=FuzzReadV3Profile -fuzztime=10s ./internal/profio
go test -run='^$' -fuzz=FuzzHandleUpload -fuzztime=10s ./internal/server
go test -run='^$' -fuzz=FuzzUploadIdempotency -fuzztime=10s ./internal/server
go test -run='^$' -bench=Merge -benchtime=1x ./internal/analysis .
# Telemetry must be near-free: merge throughput with instruments and spans
# attached is gated at <5% over uninstrumented, report in BENCH_telemetry.json.
DCPROF_BENCH_TELEMETRY="$(pwd)/BENCH_telemetry.json" \
	go test -run='^TestTelemetryOverheadGate$' -count=1 ./internal/analysis
# Sample-path perf gate: steady-state attribution must not allocate and must
# stay >= 1.5x over the string-keyed legacy replica (and within 10% of the
# committed speedup), report in BENCH_hotpath.json.
DCPROF_BENCH_HOTPATH="$(pwd)/BENCH_hotpath.json" \
	go test -run='^TestHotPathBenchGate$' -count=1 -timeout=30m ./internal/profiler
# Observability must be near-free on the serving hot path: the cached-query
# route through the full middleware chain (request IDs, access log, spans,
# instruments) is gated at <5% over the bare handler. Runs after the
# telemetry gate so both reports merge into BENCH_telemetry.json.
DCPROF_BENCH_MIDDLEWARE="$(pwd)/BENCH_telemetry.json" \
	go test -run='^TestMiddlewareOverheadGate$' -count=1 ./internal/server
# Merge-scale gate: {1k, 10k} profiles x {1, 4, 8} workers through the
# sharded streaming merge; enforces the v3 size win, the scaling (or
# CPU-constrained overhead) bounds, and <=20% regression of 8-worker
# 1k-profile throughput vs the committed BENCH_merge_scale.json.
DCPROF_BENCH_MERGE_SCALE="$(pwd)/BENCH_merge_scale.json" \
	go test -run='^TestMergeScaleGate$' -count=1 -timeout=30m ./internal/analysis
