#!/bin/sh
# Full pre-merge gate, for environments without make (see Makefile).
set -ex

go vet ./...
go build ./...
go test ./...
go test -race ./internal/sim ./internal/analysis ./internal/profio ./internal/faultio
go test -run='^$' -fuzz=FuzzReadProfile -fuzztime=10s ./internal/profio
go test -run='^$' -fuzz=FuzzSalvageProfile -fuzztime=10s ./internal/profio
go test -run='^$' -bench=Merge -benchtime=1x ./internal/analysis .
