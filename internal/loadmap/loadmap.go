// Package loadmap models load modules — the executable and dynamically
// loaded libraries — with the two tables the profiler consumes:
//
//   - a symbol table of static variables, each owning an address range in
//     the module's data segment (the paper tracks statics in the executable
//     *and* in dlopen'd shared libraries, at individual-variable grain);
//   - a line map associating synthetic instruction addresses with source
//     file/line, standing in for DWARF debug sections during post-mortem
//     attribution.
//
// Benchmarks declare their "source code" through this package: functions
// with files and line numbers, and static variables with sizes. Instruction
// addresses are synthesized deterministically so profiles are stable.
package loadmap

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"dcprof/internal/ivmap"
	"dcprof/internal/mem"
)

// textSpanPerModule separates the synthetic text ranges of modules.
const textSpanPerModule = 1 << 32

// staticAlign aligns static variables like a linker would.
const staticAlign = 64

// Module is one load module: an executable or shared library.
type Module struct {
	// Name is the module's file name, e.g. "amg2006" or "libhypre.so".
	Name string

	index    int
	dataBase mem.Addr
	textBase uint64

	mu        sync.Mutex
	funcs     []*Function
	statics   []*StaticVar
	staticMap ivmap.Map[*StaticVar]
	bssTop    mem.Addr
	ipToStmt  map[uint64]stmt
	nextIP    uint64
}

type stmt struct {
	fn   *Function
	line int
}

// Function is one function symbol within a module.
type Function struct {
	// Module is the owning load module.
	Module *Module
	// Name is the linker symbol, e.g. "hypre_CAlloc" or
	// "_Z7runTestiPPc.omp_fn.0" for an outlined OpenMP region.
	Name string
	// File and StartLine locate the definition in source.
	File      string
	StartLine int

	mu     sync.Mutex
	lineIP map[int]uint64
}

// StaticVar is one static variable symbol with its data-segment range.
type StaticVar struct {
	// Module is the owning load module.
	Module *Module
	// Name is the variable symbol, e.g. "f_elem".
	Name string
	// Lo and Hi delimit the variable's address range [Lo, Hi).
	Lo, Hi mem.Addr
}

// Size returns the variable's extent in bytes.
func (v *StaticVar) Size() uint64 { return uint64(v.Hi - v.Lo) }

// NewModule creates a module that will occupy the index-th static data slot
// and text span. Callers normally go through Map.Load instead.
func NewModule(name string, index int) *Module {
	base := mem.ModuleBase(index)
	return &Module{
		Name:     name,
		index:    index,
		dataBase: base,
		bssTop:   base,
		textBase: uint64(index+1) * textSpanPerModule,
		ipToStmt: make(map[uint64]stmt),
		nextIP:   uint64(index+1) * textSpanPerModule,
	}
}

// DataBase returns the module's static data segment base.
func (m *Module) DataBase() mem.Addr { return m.dataBase }

// AddFunc declares a function symbol.
func (m *Module) AddFunc(name, file string, startLine int) *Function {
	f := &Function{Module: m, Name: name, File: file, StartLine: startLine, lineIP: make(map[int]uint64)}
	m.mu.Lock()
	m.funcs = append(m.funcs, f)
	m.mu.Unlock()
	return f
}

// AddStatic declares a static variable of the given size, assigning it the
// next aligned range in the module's data segment.
func (m *Module) AddStatic(name string, size uint64) *StaticVar {
	if size == 0 {
		panic(fmt.Sprintf("loadmap: static %q has zero size", name))
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	lo := (m.bssTop + staticAlign - 1) &^ (staticAlign - 1)
	hi := lo + mem.Addr(size)
	if hi > m.dataBase+mem.StaticModuleSpan {
		panic(fmt.Sprintf("loadmap: module %s data segment overflow adding %q", m.Name, name))
	}
	v := &StaticVar{Module: m, Name: name, Lo: lo, Hi: hi}
	if err := m.staticMap.Insert(uint64(lo), uint64(hi), v); err != nil {
		panic("loadmap: static layout overlap: " + err.Error())
	}
	m.statics = append(m.statics, v)
	m.bssTop = hi
	return v
}

// FindStatic resolves a data address to the static variable containing it.
func (m *Module) FindStatic(addr mem.Addr) (*StaticVar, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.staticMap.Lookup(uint64(addr))
}

// Statics returns the module's static variables in declaration order.
func (m *Module) Statics() []*StaticVar {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*StaticVar, len(m.statics))
	copy(out, m.statics)
	return out
}

// Funcs returns the module's functions in declaration order.
func (m *Module) Funcs() []*Function {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Function, len(m.funcs))
	copy(out, m.funcs)
	return out
}

// IPFor returns the synthetic instruction address for a source line within
// the function, creating it on first use. Distinct (function, line) pairs
// get distinct addresses; repeated queries are stable.
func (f *Function) IPFor(line int) uint64 {
	f.mu.Lock()
	if ip, ok := f.lineIP[line]; ok {
		f.mu.Unlock()
		return ip
	}
	f.mu.Unlock()

	m := f.Module
	m.mu.Lock()
	ip := m.nextIP
	m.nextIP += 4
	m.ipToStmt[ip] = stmt{fn: f, line: line}
	m.mu.Unlock()

	f.mu.Lock()
	// Re-check: another thread may have won the race; prefer its mapping to
	// keep IPFor stable. The orphaned ip still resolves correctly.
	if existing, ok := f.lineIP[line]; ok {
		f.mu.Unlock()
		return existing
	}
	f.lineIP[line] = ip
	f.mu.Unlock()
	return ip
}

// Resolve maps an instruction address back to its function and source line.
func (m *Module) Resolve(ip uint64) (*Function, int, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.ipToStmt[ip]
	if !ok {
		return nil, 0, false
	}
	return s.fn, s.line, true
}

// ContainsIP reports whether ip falls in the module's text span.
func (m *Module) ContainsIP(ip uint64) bool {
	return ip >= m.textBase && ip < m.textBase+textSpanPerModule
}

// Map is one process's load map: the set of currently loaded modules. The
// profiler walks it to build static-variable lookup structures and the
// analyzer walks it to resolve symbols.
type Map struct {
	mu      sync.RWMutex
	modules []*Module
	nextIdx int
	// gen counts module-set changes (Load/Unload). Consumers caching IP
	// resolutions (which can go stale when a module is unloaded, or start
	// resolving when one is loaded) revalidate against it.
	gen atomic.Uint64
}

// Gen returns the module-set generation, bumped by every Load and Unload.
func (lm *Map) Gen() uint64 { return lm.gen.Load() }

// NewMap creates an empty load map.
func NewMap() *Map { return &Map{} }

// Load creates and registers a new module (executable first, then any
// dlopen'd libraries).
func (lm *Map) Load(name string) *Module {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	m := NewModule(name, lm.nextIdx)
	lm.nextIdx++
	lm.modules = append(lm.modules, m)
	lm.gen.Add(1)
	return m
}

// Unload removes a module (dlclose). Its statics stop resolving.
func (lm *Map) Unload(m *Module) bool {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	for i, mod := range lm.modules {
		if mod == m {
			lm.modules = append(lm.modules[:i], lm.modules[i+1:]...)
			lm.gen.Add(1)
			return true
		}
	}
	return false
}

// Modules returns the loaded modules in load order.
func (lm *Map) Modules() []*Module {
	lm.mu.RLock()
	defer lm.mu.RUnlock()
	out := make([]*Module, len(lm.modules))
	copy(out, lm.modules)
	return out
}

// FindStatic resolves a data address against every loaded module.
func (lm *Map) FindStatic(addr mem.Addr) (*StaticVar, bool) {
	lm.mu.RLock()
	defer lm.mu.RUnlock()
	// Modules own disjoint data spans; binary search by base.
	i := sort.Search(len(lm.modules), func(i int) bool {
		return lm.modules[i].dataBase > addr
	}) - 1
	if i < 0 {
		return nil, false
	}
	return lm.modules[i].FindStatic(addr)
}

// ResolveIP maps an instruction address to (module, function, line) across
// all loaded modules.
func (lm *Map) ResolveIP(ip uint64) (*Module, *Function, int, bool) {
	lm.mu.RLock()
	defer lm.mu.RUnlock()
	for _, m := range lm.modules {
		if m.ContainsIP(ip) {
			fn, line, ok := m.Resolve(ip)
			return m, fn, line, ok
		}
	}
	return nil, nil, 0, false
}
