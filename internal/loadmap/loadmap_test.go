package loadmap

import (
	"sync"
	"testing"

	"dcprof/internal/mem"
)

func TestStaticLayoutDisjointAligned(t *testing.T) {
	m := NewModule("exe", 0)
	a := m.AddStatic("a", 100)
	b := m.AddStatic("b", 200)
	if a.Lo%staticAlign != 0 || b.Lo%staticAlign != 0 {
		t.Error("statics not aligned")
	}
	if a.Hi > b.Lo {
		t.Error("statics overlap")
	}
	if a.Size() != 100 || b.Size() != 200 {
		t.Errorf("sizes = %d, %d", a.Size(), b.Size())
	}
	if mem.SegmentOf(a.Lo) != mem.SegStatic {
		t.Error("static placed outside static segment")
	}
}

func TestFindStatic(t *testing.T) {
	m := NewModule("exe", 0)
	v := m.AddStatic("f_elem", 4096)
	if got, ok := m.FindStatic(v.Lo); !ok || got != v {
		t.Error("FindStatic(Lo) failed")
	}
	if got, ok := m.FindStatic(v.Hi - 1); !ok || got != v {
		t.Error("FindStatic(Hi-1) failed")
	}
	if _, ok := m.FindStatic(v.Hi); ok {
		t.Error("FindStatic(Hi) should miss")
	}
}

func TestZeroSizeStaticPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewModule("exe", 0).AddStatic("empty", 0)
}

func TestIPForStableAndDistinct(t *testing.T) {
	m := NewModule("exe", 0)
	f := m.AddFunc("main", "main.c", 1)
	g := m.AddFunc("kernel", "kernel.c", 10)

	ip1 := f.IPFor(5)
	ip2 := f.IPFor(6)
	ip3 := g.IPFor(5)
	if ip1 == ip2 || ip1 == ip3 || ip2 == ip3 {
		t.Error("distinct statements share an IP")
	}
	if f.IPFor(5) != ip1 {
		t.Error("IPFor not stable")
	}
	if !m.ContainsIP(ip1) {
		t.Error("IP outside module text span")
	}
}

func TestResolveRoundTrip(t *testing.T) {
	m := NewModule("exe", 0)
	f := m.AddFunc("solve", "solver.c", 100)
	ip := f.IPFor(123)
	fn, line, ok := m.Resolve(ip)
	if !ok || fn != f || line != 123 {
		t.Errorf("Resolve = %v, %d, %v", fn, line, ok)
	}
	if _, _, ok := m.Resolve(ip + 2); ok {
		t.Error("bogus IP resolved")
	}
}

func TestMapLoadUnload(t *testing.T) {
	lm := NewMap()
	exe := lm.Load("exe")
	lib := lm.Load("libhypre.so")
	if len(lm.Modules()) != 2 {
		t.Fatal("expected 2 modules")
	}

	ve := exe.AddStatic("global_exe", 128)
	vl := lib.AddStatic("global_lib", 128)

	// Cross-module static resolution.
	if got, ok := lm.FindStatic(ve.Lo + 5); !ok || got != ve {
		t.Error("exe static not found via map")
	}
	if got, ok := lm.FindStatic(vl.Lo + 5); !ok || got != vl {
		t.Error("lib static not found via map")
	}

	// Unload drops the library's statics but not the executable's.
	if !lm.Unload(lib) {
		t.Fatal("Unload returned false")
	}
	if _, ok := lm.FindStatic(vl.Lo + 5); ok {
		t.Error("unloaded library's static still resolves")
	}
	if _, ok := lm.FindStatic(ve.Lo + 5); !ok {
		t.Error("executable static lost after library unload")
	}
	if lm.Unload(lib) {
		t.Error("double unload succeeded")
	}
}

func TestMapResolveIPAcrossModules(t *testing.T) {
	lm := NewMap()
	exe := lm.Load("exe")
	lib := lm.Load("lib.so")
	fe := exe.AddFunc("main", "main.c", 1)
	fl := lib.AddFunc("helper", "helper.c", 1)
	ipe, ipl := fe.IPFor(2), fl.IPFor(3)

	if mod, fn, line, ok := lm.ResolveIP(ipe); !ok || mod != exe || fn != fe || line != 2 {
		t.Error("exe IP resolution failed")
	}
	if mod, fn, line, ok := lm.ResolveIP(ipl); !ok || mod != lib || fn != fl || line != 3 {
		t.Error("lib IP resolution failed")
	}
	if _, _, _, ok := lm.ResolveIP(0xdeadbeef); ok {
		t.Error("unknown IP resolved")
	}
}

func TestModuleDataSegmentsDisjoint(t *testing.T) {
	lm := NewMap()
	m0 := lm.Load("a")
	m1 := lm.Load("b")
	v0 := m0.AddStatic("x", mem.PageSize)
	v1 := m1.AddStatic("x", mem.PageSize) // same name, different module
	if v0.Lo == v1.Lo {
		t.Error("modules share data addresses")
	}
	// Lookup disambiguates by address despite the shared name.
	if got, _ := lm.FindStatic(v0.Lo); got.Module != m0 {
		t.Error("wrong module for v0")
	}
	if got, _ := lm.FindStatic(v1.Lo); got.Module != m1 {
		t.Error("wrong module for v1")
	}
}

func TestConcurrentIPFor(t *testing.T) {
	m := NewModule("exe", 0)
	f := m.AddFunc("hot", "hot.c", 1)
	const workers = 16
	ips := make([]uint64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ips[w] = f.IPFor(42)
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		if ips[w] != ips[0] {
			t.Fatal("racing IPFor returned different addresses")
		}
	}
	if fn, line, ok := m.Resolve(ips[0]); !ok || fn != f || line != 42 {
		t.Error("racy IP does not resolve")
	}
}

func TestConcurrentLoadUnloadAndResolve(t *testing.T) {
	lm := NewMap()
	exe := lm.Load("exe")
	fn := exe.AddFunc("main", "main.c", 1)
	ip := fn.IPFor(3)
	v := exe.AddStatic("g", 4096)

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			lib := lm.Load("libtmp.so")
			lib.AddStatic("tmp", 128)
			lm.Unload(lib)
		}
	}()
	for i := 0; i < 2000; i++ {
		if _, _, _, ok := lm.ResolveIP(ip); !ok {
			t.Error("executable IP stopped resolving during library churn")
			break
		}
		if _, ok := lm.FindStatic(v.Lo); !ok {
			t.Error("executable static stopped resolving during library churn")
			break
		}
	}
	<-done
}
