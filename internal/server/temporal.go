package server

// Temporal query surface: the ?window= parameter on the view endpoints
// and the detected-phase endpoint. A windowed query resolves the
// collection's merged view as usual (cache, singleflight, admission),
// then derives the window-restricted database through a second cache
// entry keyed by collection + canonical window spec at the same content
// generation — repeated queries against one window are cache hits, and
// an upload invalidates windowed views exactly like whole-run views
// because the generation is part of the key. Deriving a window never
// takes a merge-admission token: the clip reads the already-merged
// temporal index, which is cheap next to a merge.

import (
	"context"
	"errors"
	"net/http"

	"dcprof/internal/analysis"
	"dcprof/internal/temporal"
	"dcprof/internal/view"
)

// temporalDB resolves the database a view query should render: the
// collection's merged view, window-restricted when the request carries
// ?window=t0:t1. On failure the error response is already written and
// nil is returned. Malformed specs are 400s diagnosed before any merge
// starts; a window query against a collection without temporal sidecars
// is a 400 as well — the parameter asks for data the collection cannot
// answer.
func (s *Server) temporalDB(w http.ResponseWriter, r *http.Request) *analysis.Database {
	spec := r.URL.Query().Get("window")
	var t0, t1 uint64
	if spec != "" {
		var err error
		t0, t1, err = temporal.ParseWindowSpec(spec)
		if err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return nil
		}
	}
	e, status, err := s.view(r.Context(), r.PathValue("name"))
	if err != nil {
		s.viewError(w, r, status, err)
		return nil
	}
	if spec == "" {
		return e.db
	}
	we, err := s.windowView(r.Context(), e, t0, t1)
	if err != nil {
		switch {
		case errors.Is(err, analysis.ErrNoTemporal):
			httpError(w, http.StatusBadRequest, "collection %q: %v", e.name, err)
		case errors.Is(err, context.DeadlineExceeded):
			httpError(w, http.StatusGatewayTimeout, "%v", err)
		case errors.Is(err, context.Canceled):
			httpError(w, 499, "%v", err)
		default:
			httpError(w, http.StatusInternalServerError, "%v", err)
		}
		return nil
	}
	return we.db
}

// windowView returns the window-restricted view derived from the base
// entry, through the cache. The derived key cannot collide with a
// collection name: ValidateName rejects '|', ':' and '='. The derived
// database shares everything with the base except Merged, which is the
// freshly clipped profile — the base entry is never mutated.
func (s *Server) windowView(ctx context.Context, base *viewEntry, t0, t1 uint64) (*viewEntry, error) {
	key := base.name + "|window=" + temporal.FormatWindowSpec(t0, t1)
	return s.cache.get(ctx, key, base.gen, nil, func(context.Context) (*analysis.Database, analysis.MergeStats, error) {
		clipped, err := analysis.Clip(base.db, t0, t1)
		if err != nil {
			return nil, analysis.MergeStats{}, err
		}
		db := *base.db
		db.Merged = clipped
		return &db, base.stats, nil
	})
}

// handlePhases serves the detected execution phases of the collection's
// current merged view, rendered by the same writer as `dcview -phases
// -json`. A collection whose profiles carried no temporal sidecars has
// no phase resource: 404.
func (s *Server) handlePhases(w http.ResponseWriter, r *http.Request) {
	e, status, err := s.view(r.Context(), r.PathValue("name"))
	if err != nil {
		s.viewError(w, r, status, err)
		return
	}
	ph, err := analysis.Phases(e.db)
	if err != nil {
		if errors.Is(err, analysis.ErrNoTemporal) {
			httpError(w, http.StatusNotFound, "collection %q: %v", e.name, err)
			return
		}
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	view.WritePhasesJSON(w, e.db.Event, e.db.Temporal.Width(), ph)
}
