// Package server is the continuous-profiling service: a long-running
// daemon that accepts profile uploads over HTTP, organizes them into
// named collections on durable storage, and serves the data-centric
// views (top-down, bottom-up, diff) plus merge statistics and telemetry
// as JSON — the refactor that turns the one-shot CLI library into a
// system many users query concurrently.
//
// The shape follows the schedviz storage/api split: a storage layer
// (collection.go — durable validated uploads over the profio FS seam)
// and a cache layer (cache.go — LRU of merged CCTs, singleflight misses)
// behind a thin request/response HTTP surface in this file. Query
// responses render through the same internal/view JSON writers dcview
// uses, so served and offline reports are byte-identical for the same
// data.
//
// Endpoints:
//
//	POST /collections/{name}/profiles     upload one v2 profile (body = file bytes)
//	GET  /collections                     list collections
//	GET  /collections/{name}              collection metadata (+ last merge's quarantine)
//	GET  /collections/{name}/topdown      top-down view JSON   (?metric=&depth=&min=&rows=)
//	GET  /collections/{name}/bottomup     bottom-up view JSON  (?metric=&rows=)
//	GET  /collections/{name}/diff?base=B  per-variable diff of collection B -> {name}
//	GET  /collections/{name}/stats        merge pipeline statistics JSON
//	GET  /debug/telemetry                 telemetry snapshot    (?prefix=server.)
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"dcprof/internal/analysis"
	"dcprof/internal/metric"
	"dcprof/internal/profio"
	"dcprof/internal/telemetry"
	"dcprof/internal/view"
)

// Config configures a Server.
type Config struct {
	// DataDir is the root under which collection directories live.
	DataDir string
	// CacheEntries bounds the merged-view LRU cache (<=0 uses 64).
	CacheEntries int
	// Workers is the merge concurrency per load (<=0 uses GOMAXPROCS).
	Workers int
	// MaxUploadBytes bounds one upload body (<=0 uses 1 GiB).
	MaxUploadBytes int64
	// FS overrides the filesystem the storage layer writes through (nil
	// uses the real one) — the seam fault-injection tests crash.
	FS profio.FS
	// Registry receives the server's instruments and every merge's
	// analysis accounting (nil creates a private registry). /debug/telemetry
	// snapshots it.
	Registry *telemetry.Registry
}

// Server is the continuous-profiling service.
type Server struct {
	cfg   Config
	store *store
	cache *viewCache
	reg   *telemetry.Registry

	uploadsAccepted *telemetry.Counter
	uploadsRejected *telemetry.Counter
	uploadBytes     *telemetry.Counter
}

// New opens (or creates) the data directory, adopts every collection
// already on disk, and returns the service.
func New(cfg Config) (*Server, error) {
	if cfg.MaxUploadBytes <= 0 {
		cfg.MaxUploadBytes = 1 << 30
	}
	reg := cfg.Registry
	if reg == nil {
		reg = telemetry.New()
	}
	st, err := openStore(cfg.DataDir, cfg.FS)
	if err != nil {
		return nil, err
	}
	return &Server{
		cfg:             cfg,
		store:           st,
		cache:           newViewCache(cfg.CacheEntries, reg),
		reg:             reg,
		uploadsAccepted: reg.Counter("server.uploads.accepted"),
		uploadsRejected: reg.Counter("server.uploads.rejected"),
		uploadBytes:     reg.Counter("server.uploads.bytes"),
	}, nil
}

// Registry returns the registry the server accounts into.
func (s *Server) Registry() *telemetry.Registry { return s.reg }

// Handler returns the service's HTTP surface.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /collections/{name}/profiles", s.instrument("upload", s.handleUpload))
	mux.HandleFunc("GET /collections", s.instrument("list", s.handleList))
	mux.HandleFunc("GET /collections/{name}", s.instrument("metadata", s.handleMetadata))
	mux.HandleFunc("GET /collections/{name}/topdown", s.instrument("topdown", s.handleTopDown))
	mux.HandleFunc("GET /collections/{name}/bottomup", s.instrument("bottomup", s.handleBottomUp))
	mux.HandleFunc("GET /collections/{name}/diff", s.instrument("diff", s.handleDiff))
	mux.HandleFunc("GET /collections/{name}/stats", s.instrument("stats", s.handleStats))
	mux.HandleFunc("GET /debug/telemetry", s.instrument("telemetry", s.handleTelemetry))
	return mux
}

// statusWriter remembers the status code for instrumentation.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with per-endpoint request, error, and
// latency instruments under "server.http.<endpoint>.*".
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	reqs := s.reg.Counter("server.http." + endpoint + ".requests")
	errs := s.reg.Counter("server.http." + endpoint + ".errors")
	// Power-of-two µs buckets up to ~4s cover sub-ms cache hits and
	// multi-second cold merges in one shape.
	lat := s.reg.Histogram("server.http."+endpoint+".latency_us", telemetry.Pow2Bounds(22))
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		h(sw, r)
		reqs.Inc()
		if sw.status >= 400 {
			errs.Inc()
		}
		lat.Observe(uint64(time.Since(start).Microseconds()))
	}
}

// httpError writes a JSON error document with the given status.
func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// handleUpload accepts one profile file as the request body. The payload
// is CRC-validated while it streams to a durable temp file; only a fully
// valid v2 profile is renamed into the collection (creating it on first
// upload) and advances its generation.
func (s *Server) handleUpload(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	col, err := s.store.getOrCreate(name)
	if err != nil {
		if ValidateName(name) != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
		} else {
			httpError(w, http.StatusInternalServerError, "%v", err)
		}
		return
	}
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxUploadBytes)
	res, err := col.upload(s.storeFS(), body)
	if err != nil {
		s.uploadsRejected.Inc()
		if isReject(err) {
			httpError(w, http.StatusBadRequest, "invalid profile: %v", err)
		} else {
			httpError(w, http.StatusInternalServerError, "%v", err)
		}
		return
	}
	s.uploadsAccepted.Inc()
	s.uploadBytes.Add(uint64(res.Bytes))
	writeJSON(w, http.StatusCreated, res)
}

func (s *Server) storeFS() profio.FS {
	if s.cfg.FS != nil {
		return s.cfg.FS
	}
	return profio.OSFS{}
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"collections": s.store.list()})
}

// metadataResponse is a collection's metadata plus the quarantine report
// of its most recent cached merge (if any) — the per-collection health
// surface.
type metadataResponse struct {
	Metadata
	// Quarantined lists files the last merge skipped; null when the
	// collection has not been merged since the entry was cached.
	Quarantined []analysis.QuarantinedReport `json:"quarantined,omitempty"`
	// MergedGeneration is the generation the quarantine report describes.
	MergedGeneration uint64 `json:"merged_generation,omitempty"`
}

func (s *Server) handleMetadata(w http.ResponseWriter, r *http.Request) {
	col := s.store.get(r.PathValue("name"))
	if col == nil {
		httpError(w, http.StatusNotFound, "no collection %q", r.PathValue("name"))
		return
	}
	resp := metadataResponse{Metadata: col.metadata()}
	if e := s.cache.peek(col.name); e != nil {
		resp.Quarantined = e.stats.Report().Quarantined
		resp.MergedGeneration = e.gen
	}
	writeJSON(w, http.StatusOK, resp)
}

// view resolves the collection and returns its merged database at the
// current content generation, through the cache (singleflight on miss).
func (s *Server) view(ctx context.Context, name string) (*viewEntry, int, error) {
	col := s.store.get(name)
	if col == nil {
		return nil, http.StatusNotFound, fmt.Errorf("no collection %q", name)
	}
	gen, files, err := col.snapshot()
	if err != nil {
		return nil, http.StatusInternalServerError, err
	}
	if len(files) == 0 {
		return nil, http.StatusNotFound, fmt.Errorf("collection %q has no profiles", name)
	}
	e, err := s.cache.get(name, gen, func() (*analysis.Database, analysis.MergeStats, error) {
		// Quarantine policy: ingest validation means on-disk damage is
		// at-rest corruption after acceptance; one rotten file must degrade
		// that file's contribution, not the collection's availability. The
		// quarantine report is surfaced in /stats and metadata.
		return analysis.LoadFilesStreamingCtx(ctx, "collection "+name, files, analysis.LoadOptions{
			Workers:   s.cfg.Workers,
			Policy:    analysis.PolicyQuarantine,
			Telemetry: s.reg,
		})
	})
	if err != nil {
		return nil, http.StatusInternalServerError, err
	}
	return e, http.StatusOK, nil
}

// queryOptions parses the shared view query parameters, defaulting to the
// same values dcview's flags default to.
func queryOptions(r *http.Request, event string) (view.Options, error) {
	o := view.Options{
		MaxRows:  view.DefaultMaxRows,
		MaxDepth: view.DefaultMaxDepth,
		MinShare: view.DefaultMinShare,
		Metric:   metric.Default(event),
	}
	q := r.URL.Query()
	if name := q.Get("metric"); name != "" {
		id, ok := metric.ByName(name)
		if !ok {
			return o, fmt.Errorf("unknown metric %q", name)
		}
		o.Metric = id
	}
	if v := q.Get("rows"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return o, fmt.Errorf("bad rows %q", v)
		}
		o.MaxRows = n
	}
	if v := q.Get("depth"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return o, fmt.Errorf("bad depth %q", v)
		}
		o.MaxDepth = n
	}
	if v := q.Get("min"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil || f < 0 || f > 1 {
			return o, fmt.Errorf("bad min %q", v)
		}
		o.MinShare = f
	}
	return o, nil
}

func (s *Server) handleTopDown(w http.ResponseWriter, r *http.Request) {
	e, status, err := s.view(r.Context(), r.PathValue("name"))
	if err != nil {
		httpError(w, status, "%v", err)
		return
	}
	o, err := queryOptions(r, e.db.Event)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	view.WriteTopDownJSON(w, e.db.Merged, o)
}

func (s *Server) handleBottomUp(w http.ResponseWriter, r *http.Request) {
	e, status, err := s.view(r.Context(), r.PathValue("name"))
	if err != nil {
		httpError(w, status, "%v", err)
		return
	}
	o, err := queryOptions(r, e.db.Event)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	view.WriteBottomUpJSON(w, e.db.Merged, o)
}

// handleDiff serves the per-variable comparison base -> {name}: "what
// moved after the optimization this collection holds profiles of".
func (s *Server) handleDiff(w http.ResponseWriter, r *http.Request) {
	base := r.URL.Query().Get("base")
	if base == "" {
		httpError(w, http.StatusBadRequest, "missing ?base= collection")
		return
	}
	before, status, err := s.view(r.Context(), base)
	if err != nil {
		httpError(w, status, "%v", err)
		return
	}
	after, status, err := s.view(r.Context(), r.PathValue("name"))
	if err != nil {
		httpError(w, status, "%v", err)
		return
	}
	o, err := queryOptions(r, after.db.Event)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	view.WriteDiffJSON(w, before.db.Merged, after.db.Merged, o.Metric, o.MaxRows)
}

// handleStats serves the merge pipeline statistics of the collection's
// current merged view — rendered by the same writer as `dcview -stats
// -json`, so the two surfaces share one schema.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	e, status, err := s.view(r.Context(), r.PathValue("name"))
	if err != nil {
		httpError(w, status, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	analysis.WriteStatsReport(w, e.stats)
}

// handleTelemetry snapshots the server's registry — server instruments
// plus the absorbed per-merge analysis accounting — optionally filtered
// to one name prefix.
func (s *Server) handleTelemetry(w http.ResponseWriter, r *http.Request) {
	snap := s.reg.Snapshot().Filter(r.URL.Query().Get("prefix"))
	w.Header().Set("Content-Type", "application/json")
	snap.WriteJSON(w)
}
