// Package server is the continuous-profiling service: a long-running
// daemon that accepts profile uploads over HTTP, organizes them into
// named collections on durable storage, and serves the data-centric
// views (top-down, bottom-up, diff) plus merge statistics and telemetry
// as JSON — the refactor that turns the one-shot CLI library into a
// system many users query concurrently.
//
// The shape follows the schedviz storage/api split: a storage layer
// (collection.go — durable validated uploads over the profio FS seam)
// and a cache layer (cache.go — LRU of merged CCTs, singleflight misses)
// behind a thin request/response HTTP surface in this file. Query
// responses render through the same internal/view JSON writers dcview
// uses, so served and offline reports are byte-identical for the same
// data.
//
// Endpoints:
//
//	POST /collections/{name}/profiles     upload one v2 profile (body = file bytes)
//	GET  /collections                     list collections
//	GET  /collections/{name}              collection metadata (+ last merge's quarantine)
//	GET  /collections/{name}/topdown      top-down view JSON   (?metric=&depth=&min=&rows=&window=t0:t1)
//	GET  /collections/{name}/bottomup     bottom-up view JSON  (?metric=&rows=&window=t0:t1)
//	GET  /collections/{name}/phases       detected execution phases JSON
//	GET  /collections/{name}/diff?base=B  per-variable diff of collection B -> {name}
//	GET  /collections/{name}/stats        merge pipeline statistics JSON
//	GET  /collections/{name}/digests      content digests (the dcpush resume surface)
//	GET  /healthz                         liveness (always 200 while the process serves)
//	GET  /readyz                          readiness (503 when read-only or saturated)
//	GET  /metrics                         Prometheus text exposition (the scrape target)
//	GET  /debug/telemetry                 telemetry snapshot    (?prefix=server.)
//	GET  /debug/vars                      totals + delta/rates since the previous request
//	GET  /debug/timeline                  self-telemetry time series (?window=30s)
//	GET  /debug/trace                     bounded request-span ring, trace-event JSON
//
// Every endpoint passes through the instrument middleware: requests get
// an X-Request-ID (client-supplied or generated), one structured
// access-log line, a trace span, and per-endpoint latency/error
// instruments — see middleware.go.
//
// Degradation contract: saturated admission sheds with 429 (uploads) or
// 503 (merges) plus Retry-After; a full disk flips the server read-only
// (uploads 503, queries fine) until a recovery probe sees writes work
// again; per-request deadlines cancel abandoned merges; and retried
// uploads are idempotent by content digest, answering 200 against the
// already-stored file.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"dcprof/internal/analysis"
	"dcprof/internal/metric"
	"dcprof/internal/profio"
	"dcprof/internal/telemetry"
	"dcprof/internal/telemetry/spanlog"
	"dcprof/internal/view"
)

// Config configures a Server.
type Config struct {
	// DataDir is the root under which collection directories live.
	DataDir string
	// CacheEntries bounds the merged-view LRU cache (<=0 uses 64).
	CacheEntries int
	// Workers is the merge concurrency per load (<=0 uses GOMAXPROCS).
	Workers int
	// Shards is the fold-shard count per storage class for cached merges
	// (<=0 derives from Workers; the merged result is identical for any
	// value — this is purely a throughput knob).
	Shards int
	// SectionParallel, when > 1, decodes each profile file's class-tree
	// sections concurrently during merges.
	SectionParallel int
	// MaxUploadBytes bounds one upload body (<=0 uses 1 GiB).
	MaxUploadBytes int64
	// MaxInflightUploads bounds concurrently-streaming upload bodies;
	// excess requests are shed with 429 + Retry-After (<=0 uses 64).
	MaxInflightUploads int
	// MaxConcurrentMerges bounds merges running at once; a query needing
	// a fresh merge past the bound is shed with 503 + Retry-After —
	// queries joining an in-flight merge are never shed (<=0 uses 4).
	MaxConcurrentMerges int
	// RequestTimeout is the per-request deadline, propagated through the
	// request context into the merge pipeline (<=0 disables).
	RequestTimeout time.Duration
	// MaxCollectionBytes bounds one collection's published bytes; an
	// upload that would cross it is rejected with 507 (<=0 unlimited).
	MaxCollectionBytes int64
	// MaxTotalBytes bounds published bytes across all collections
	// (<=0 unlimited).
	MaxTotalBytes int64
	// ReadonlyProbeInterval rate-limits recovery probes while the server
	// is read-only (0 uses 5s; negative probes on every check — tests).
	ReadonlyProbeInterval time.Duration
	// FS overrides the filesystem the storage layer writes through (nil
	// uses the real one) — the seam fault-injection tests crash or fill.
	FS profio.FS
	// OpenProfile overrides how merge reads profile files (nil uses
	// os.Open) — the seam chaos tests slow down or fail.
	OpenProfile func(path string) (io.ReadCloser, error)
	// Registry receives the server's instruments and every merge's
	// analysis accounting (nil creates a private registry). /debug/telemetry
	// snapshots it.
	Registry *telemetry.Registry
	// AccessLog receives one structured line per request (nil disables
	// access logging). dcprofd wires a JSON handler on stderr.
	AccessLog *slog.Logger
	// Spans receives one span per request (nil disables tracing). Use a
	// bounded log (spanlog.NewBounded) for long-running servers; /debug/trace
	// serves it.
	Spans *spanlog.Log
	// TimelineInterval is how often the self-telemetry timeline snapshots
	// the registry (<=0 disables the ticker; /debug/timeline then only
	// shows explicitly recorded points).
	TimelineInterval time.Duration
	// TimelinePoints bounds the timeline ring (<=0 uses 300).
	TimelinePoints int
}

// Server is the continuous-profiling service.
type Server struct {
	cfg    Config
	store  *store
	cache  *viewCache
	reg    *telemetry.Registry
	health *health

	uploadSem *semaphore
	mergeSem  *semaphore

	accessLog    *slog.Logger
	spans        *spanlog.Log
	timeline     *telemetry.Timeline
	timelineStop func()
	started      time.Time
	traceRow     atomic.Int64

	varsMu     sync.Mutex
	lastVars   telemetry.Snapshot
	lastVarsAt time.Time

	uploadsAccepted  *telemetry.Counter
	uploadsRejected  *telemetry.Counter
	uploadsDuplicate *telemetry.Counter
	uploadBytes      *telemetry.Counter
	shed             *telemetry.Counter
	shedUploads      *telemetry.Counter
	shedMerges       *telemetry.Counter
	shedReadonly     *telemetry.Counter
	quotaRejected    *telemetry.Counter
}

// New opens (or creates) the data directory, adopts every collection
// already on disk, and returns the service.
func New(cfg Config) (*Server, error) {
	if cfg.MaxUploadBytes <= 0 {
		cfg.MaxUploadBytes = 1 << 30
	}
	if cfg.MaxInflightUploads <= 0 {
		cfg.MaxInflightUploads = 64
	}
	if cfg.MaxConcurrentMerges <= 0 {
		cfg.MaxConcurrentMerges = 4
	}
	if cfg.ReadonlyProbeInterval == 0 {
		cfg.ReadonlyProbeInterval = 5 * time.Second
	}
	reg := cfg.Registry
	if reg == nil {
		reg = telemetry.New()
	}
	st, err := openStore(cfg.DataDir, cfg.FS, reg)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:              cfg,
		store:            st,
		cache:            newViewCache(cfg.CacheEntries, reg),
		reg:              reg,
		health:           newHealth(st.fs, cfg.DataDir, cfg.ReadonlyProbeInterval, reg),
		uploadSem:        newSemaphore(cfg.MaxInflightUploads, reg.Gauge("server.admission.uploads.inflight")),
		mergeSem:         newSemaphore(cfg.MaxConcurrentMerges, reg.Gauge("server.admission.merges.inflight")),
		accessLog:        cfg.AccessLog,
		spans:            cfg.Spans,
		timeline:         telemetry.NewTimeline(reg, cfg.TimelinePoints),
		started:          time.Now(),
		uploadsAccepted:  reg.Counter("server.uploads.accepted"),
		uploadsRejected:  reg.Counter("server.uploads.rejected"),
		uploadsDuplicate: reg.Counter("server.uploads.duplicates"),
		uploadBytes:      reg.Counter("server.uploads.bytes"),
		shed:             reg.Counter("server.shed"),
		shedUploads:      reg.Counter("server.shed.uploads"),
		shedMerges:       reg.Counter("server.shed.merges"),
		shedReadonly:     reg.Counter("server.shed.readonly"),
		quotaRejected:    reg.Counter("server.uploads.quota_rejected"),
	}
	if cfg.TimelineInterval > 0 {
		s.timelineStop = s.timeline.Start(cfg.TimelineInterval)
	}
	return s, nil
}

// Registry returns the registry the server accounts into.
func (s *Server) Registry() *telemetry.Registry { return s.reg }

// Timeline returns the server's self-telemetry timeline — tests and
// embedders can Record points explicitly when no ticker runs.
func (s *Server) Timeline() *telemetry.Timeline { return s.timeline }

// Close stops the server's background work (the timeline ticker). Safe
// to call more than once; the HTTP listener is the caller's to close.
func (s *Server) Close() {
	if s.timelineStop != nil {
		s.timelineStop()
	}
}

// Handler returns the service's HTTP surface.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /collections/{name}/profiles", s.instrument("upload", s.handleUpload))
	mux.HandleFunc("GET /collections", s.instrument("list", s.handleList))
	mux.HandleFunc("GET /collections/{name}", s.instrument("metadata", s.handleMetadata))
	mux.HandleFunc("GET /collections/{name}/topdown", s.instrument("topdown", s.handleTopDown))
	mux.HandleFunc("GET /collections/{name}/bottomup", s.instrument("bottomup", s.handleBottomUp))
	mux.HandleFunc("GET /collections/{name}/phases", s.instrument("phases", s.handlePhases))
	mux.HandleFunc("GET /collections/{name}/diff", s.instrument("diff", s.handleDiff))
	mux.HandleFunc("GET /collections/{name}/stats", s.instrument("stats", s.handleStats))
	mux.HandleFunc("GET /collections/{name}/digests", s.instrument("digests", s.handleDigests))
	mux.HandleFunc("GET /healthz", s.instrument("healthz", s.handleHealthz))
	mux.HandleFunc("GET /readyz", s.instrument("readyz", s.handleReadyz))
	mux.HandleFunc("GET /metrics", s.instrument("metrics", s.handleMetrics))
	mux.HandleFunc("GET /debug/telemetry", s.instrument("telemetry", s.handleTelemetry))
	mux.HandleFunc("GET /debug/vars", s.instrument("vars", s.handleVars))
	mux.HandleFunc("GET /debug/timeline", s.instrument("timeline", s.handleTimeline))
	mux.HandleFunc("GET /debug/trace", s.instrument("trace", s.handleTrace))
	return mux
}

// shedWith rejects the request with a Retry-After hint and counts the
// shed in both the per-reason counter and the total; tag names the shed
// reason in the access-log line.
func (s *Server) shedWith(w http.ResponseWriter, r *http.Request, tag string, reason *telemetry.Counter, status int, retryAfterSec int, format string, args ...any) {
	s.shed.Inc()
	reason.Inc()
	if info := infoFrom(r.Context()); info != nil {
		info.shed = tag
	}
	w.Header().Set("Retry-After", strconv.Itoa(retryAfterSec))
	httpError(w, status, format, args...)
}

// httpError writes a JSON error document with the given status.
func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// handleUpload accepts one profile file as the request body. Admission
// first: the in-flight-upload semaphore sheds excess concurrency with
// 429, and a read-only server (disk full) sheds with 503 — both carry
// Retry-After so dcpush backs off instead of hammering. The payload is
// then CRC-validated while it streams to a durable temp file under the
// remaining disk quota; only a fully valid v2 profile is renamed into
// the collection (creating it on first upload) and advances its
// generation. A payload the collection already holds (by content digest)
// is answered 200 against the existing file — retries are idempotent.
func (s *Server) handleUpload(w http.ResponseWriter, r *http.Request) {
	if !s.uploadSem.tryAcquire() {
		s.shedWith(w, r, "uploads", s.shedUploads, http.StatusTooManyRequests, 1, "upload capacity saturated (%d in flight)", s.cfg.MaxInflightUploads)
		return
	}
	defer s.uploadSem.release()
	if !s.health.writable() {
		s.shedWith(w, r, "readonly", s.shedReadonly, http.StatusServiceUnavailable, 5, "server is read-only (data dir not writable); uploads rejected, queries still served")
		return
	}

	name := r.PathValue("name")
	col, err := s.store.getOrCreate(name)
	if err != nil {
		switch {
		case ValidateName(name) != nil:
			httpError(w, http.StatusBadRequest, "%v", err)
		case isDiskFull(err):
			s.health.degrade()
			httpError(w, http.StatusInsufficientStorage, "%v", err)
		default:
			httpError(w, http.StatusInternalServerError, "%v", err)
		}
		return
	}

	quota := s.quotaRemaining(col)
	if quota == 0 {
		s.uploadsRejected.Inc()
		s.quotaRejected.Inc()
		httpError(w, http.StatusInsufficientStorage, "collection %s is at its disk quota", name)
		return
	}
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxUploadBytes)
	res, err := col.upload(s.storeFS(), body, quota)
	if err != nil {
		s.uploadsRejected.Inc()
		switch {
		case isReject(err):
			httpError(w, http.StatusBadRequest, "invalid profile: %v", err)
		case errors.Is(err, errOverQuota):
			s.quotaRejected.Inc()
			httpError(w, http.StatusInsufficientStorage, "%v", err)
		case isDiskFull(err):
			// The disk itself is full: degrade to read-only (recovery
			// probes will restore service) and tell the client storage is
			// the problem, not its payload.
			s.health.degrade()
			httpError(w, http.StatusInsufficientStorage, "%v", err)
		case r.Context().Err() != nil:
			httpError(w, http.StatusRequestTimeout, "request canceled or timed out: %v", err)
		default:
			httpError(w, http.StatusInternalServerError, "%v", err)
		}
		return
	}
	if res.Duplicate {
		s.uploadsDuplicate.Inc()
		writeJSON(w, http.StatusOK, res)
		return
	}
	s.uploadsAccepted.Inc()
	s.uploadBytes.Add(uint64(res.Bytes))
	s.store.total.Add(res.Bytes)
	writeJSON(w, http.StatusCreated, res)
}

// quotaRemaining computes how many more payload bytes the collection may
// accept under the per-collection and total quotas: -1 when unlimited,
// 0 when already at (or past) a quota.
func (s *Server) quotaRemaining(col *collection) int64 {
	remaining := int64(-1)
	if s.cfg.MaxCollectionBytes > 0 {
		remaining = max(s.cfg.MaxCollectionBytes-col.metadata().Bytes, 0)
	}
	if s.cfg.MaxTotalBytes > 0 {
		totalRem := max(s.cfg.MaxTotalBytes-s.store.total.Load(), 0)
		if remaining < 0 || totalRem < remaining {
			remaining = totalRem
		}
	}
	return remaining
}

// handleDigests lists the collection's content digests — what dcpush
// consults to skip files the server already holds when resuming an
// interrupted batch.
func (s *Server) handleDigests(w http.ResponseWriter, r *http.Request) {
	col := s.store.get(r.PathValue("name"))
	if col == nil {
		httpError(w, http.StatusNotFound, "no collection %q", r.PathValue("name"))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"collection": col.name,
		"digests":    col.digestList(),
	})
}

// handleHealthz is liveness: the process is up and serving HTTP. Always
// 200 — a read-only or saturated server is still alive.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz is readiness: 200 only when the server can do useful work
// for new traffic — data dir writable (not read-only; checking probes
// for recovery when due), and admission not saturated. 503 carries the
// reasons, so an orchestrator's probe log says why traffic was held.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	var reasons []string
	if !s.health.writable() {
		reasons = append(reasons, "read-only: data directory is not writable")
	}
	if s.uploadSem.saturated() {
		reasons = append(reasons, "upload admission saturated")
	}
	if s.mergeSem.saturated() {
		reasons = append(reasons, "merge admission saturated")
	}
	if len(reasons) > 0 {
		w.Header().Set("Retry-After", "5")
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"ready": false, "reasons": reasons})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"ready": true})
}

func (s *Server) storeFS() profio.FS {
	if s.cfg.FS != nil {
		return s.cfg.FS
	}
	return profio.OSFS{}
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"collections": s.store.list()})
}

// metadataResponse is a collection's metadata plus the quarantine report
// of its most recent cached merge (if any) — the per-collection health
// surface.
type metadataResponse struct {
	Metadata
	// Quarantined lists files the last merge skipped; null when the
	// collection has not been merged since the entry was cached.
	Quarantined []analysis.QuarantinedReport `json:"quarantined,omitempty"`
	// MergedGeneration is the generation the quarantine report describes.
	MergedGeneration uint64 `json:"merged_generation,omitempty"`
}

func (s *Server) handleMetadata(w http.ResponseWriter, r *http.Request) {
	col := s.store.get(r.PathValue("name"))
	if col == nil {
		httpError(w, http.StatusNotFound, "no collection %q", r.PathValue("name"))
		return
	}
	resp := metadataResponse{Metadata: col.metadata()}
	if e := s.cache.peek(col.name); e != nil {
		resp.Quarantined = e.stats.Report().Quarantined
		resp.MergedGeneration = e.gen
	}
	writeJSON(w, http.StatusOK, resp)
}

// view resolves the collection and returns its merged database at the
// current content generation, through the cache (singleflight on miss,
// admission on fresh merges, cancellation via the request context).
func (s *Server) view(ctx context.Context, name string) (*viewEntry, int, error) {
	col := s.store.get(name)
	if col == nil {
		return nil, http.StatusNotFound, fmt.Errorf("no collection %q", name)
	}
	gen, files, err := col.snapshot()
	if err != nil {
		return nil, http.StatusInternalServerError, err
	}
	if len(files) == 0 {
		return nil, http.StatusNotFound, fmt.Errorf("collection %q has no profiles", name)
	}
	e, err := s.cache.get(ctx, name, gen, s.mergeSem, func(mctx context.Context) (*analysis.Database, analysis.MergeStats, error) {
		// Quarantine policy: ingest validation means on-disk damage is
		// at-rest corruption after acceptance; one rotten file must degrade
		// that file's contribution, not the collection's availability. The
		// quarantine report is surfaced in /stats and metadata. mctx is the
		// merge's own context: it outlives this request while other queries
		// still wait, and dies when the last of them disconnects.
		return analysis.LoadFilesStreamingCtx(mctx, "collection "+name, files, analysis.LoadOptions{
			Workers:         s.cfg.Workers,
			Shards:          s.cfg.Shards,
			SectionParallel: s.cfg.SectionParallel,
			Policy:          analysis.PolicyQuarantine,
			Telemetry:       s.reg,
			Open:            s.cfg.OpenProfile,
		})
	})
	if err != nil {
		switch {
		case errors.Is(err, errMergeSaturated):
			return nil, http.StatusServiceUnavailable, err
		case errors.Is(err, context.DeadlineExceeded):
			return nil, http.StatusGatewayTimeout, fmt.Errorf("merge of %q timed out: %w", name, err)
		case errors.Is(err, context.Canceled):
			// 499: nginx's "client closed request" — nobody is listening,
			// but the status keeps the access log honest.
			return nil, 499, err
		default:
			return nil, http.StatusInternalServerError, err
		}
	}
	return e, http.StatusOK, nil
}

// viewError writes a query failure, attaching Retry-After and shed
// accounting when the failure is merge-admission saturation.
func (s *Server) viewError(w http.ResponseWriter, r *http.Request, status int, err error) {
	if status == http.StatusServiceUnavailable {
		s.shedWith(w, r, "merges", s.shedMerges, status, 2, "%v", err)
		return
	}
	httpError(w, status, "%v", err)
}

// queryOptions parses the shared view query parameters, defaulting to the
// same values dcview's flags default to.
func queryOptions(r *http.Request, event string) (view.Options, error) {
	o := view.Options{
		MaxRows:  view.DefaultMaxRows,
		MaxDepth: view.DefaultMaxDepth,
		MinShare: view.DefaultMinShare,
		Metric:   metric.Default(event),
	}
	q := r.URL.Query()
	if name := q.Get("metric"); name != "" {
		id, ok := metric.ByName(name)
		if !ok {
			return o, fmt.Errorf("unknown metric %q", name)
		}
		o.Metric = id
	}
	if v := q.Get("rows"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return o, fmt.Errorf("bad rows %q", v)
		}
		o.MaxRows = n
	}
	if v := q.Get("depth"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return o, fmt.Errorf("bad depth %q", v)
		}
		o.MaxDepth = n
	}
	if v := q.Get("min"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil || f < 0 || f > 1 {
			return o, fmt.Errorf("bad min %q", v)
		}
		o.MinShare = f
	}
	return o, nil
}

func (s *Server) handleTopDown(w http.ResponseWriter, r *http.Request) {
	db := s.temporalDB(w, r)
	if db == nil {
		return
	}
	o, err := queryOptions(r, db.Event)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	view.WriteTopDownJSON(w, db.Merged, o)
}

func (s *Server) handleBottomUp(w http.ResponseWriter, r *http.Request) {
	db := s.temporalDB(w, r)
	if db == nil {
		return
	}
	o, err := queryOptions(r, db.Event)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	view.WriteBottomUpJSON(w, db.Merged, o)
}

// handleDiff serves the per-variable comparison base -> {name}: "what
// moved after the optimization this collection holds profiles of".
func (s *Server) handleDiff(w http.ResponseWriter, r *http.Request) {
	base := r.URL.Query().Get("base")
	if base == "" {
		httpError(w, http.StatusBadRequest, "missing ?base= collection")
		return
	}
	before, status, err := s.view(r.Context(), base)
	if err != nil {
		s.viewError(w, r, status, err)
		return
	}
	after, status, err := s.view(r.Context(), r.PathValue("name"))
	if err != nil {
		s.viewError(w, r, status, err)
		return
	}
	o, err := queryOptions(r, after.db.Event)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	view.WriteDiffJSON(w, before.db.Merged, after.db.Merged, o.Metric, o.MaxRows)
}

// handleStats serves the merge pipeline statistics of the collection's
// current merged view — rendered by the same writer as `dcview -stats
// -json`, so the two surfaces share one schema.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	e, status, err := s.view(r.Context(), r.PathValue("name"))
	if err != nil {
		s.viewError(w, r, status, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	analysis.WriteStatsReport(w, e.stats)
}

// handleTelemetry snapshots the server's registry — server instruments
// plus the absorbed per-merge analysis accounting — optionally filtered
// to one name prefix.
func (s *Server) handleTelemetry(w http.ResponseWriter, r *http.Request) {
	snap := s.reg.Snapshot().Filter(r.URL.Query().Get("prefix"))
	w.Header().Set("Content-Type", "application/json")
	snap.WriteJSON(w)
}
