package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"dcprof/internal/analysis"
	"dcprof/internal/analysis/statstest"
	"dcprof/internal/cct"
	"dcprof/internal/metric"
	"dcprof/internal/profio"
	"dcprof/internal/view"
)

// defaultOptions mirrors what the server uses for a parameterless query.
func defaultOptions(event string) view.Options {
	return view.Options{
		MaxRows:  view.DefaultMaxRows,
		MaxDepth: view.DefaultMaxDepth,
		MinShare: view.DefaultMinShare,
		Metric:   metric.Default(event),
	}
}

// offlineMerge merges the profiles the way the CLI does: write them to a
// directory with the profiler's own writer, load with the streaming
// pipeline.
func offlineMerge(t testing.TB, profiles []*cct.Profile) *analysis.Database {
	t.Helper()
	dir := t.TempDir()
	if _, err := profio.WriteDir(dir, profiles); err != nil {
		t.Fatal(err)
	}
	db, _, err := analysis.LoadDirStreamingCtx(context.Background(), dir, analysis.LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// TestServerEndToEnd is the acceptance test: N profiles uploaded
// concurrently from goroutines, and the served /topdown must be
// byte-identical to an offline dcview-style merge of the same profiles.
// A repeat query must be served from the cache — server.cache.hits
// increments, and no second merge happens.
func TestServerEndToEnd(t *testing.T) {
	srv, ts := newTestServer(t, nil)

	var profiles []*cct.Profile
	for rank := 0; rank < 4; rank++ {
		for thread := 0; thread < 2; thread++ {
			profiles = append(profiles, synthProfile(rank, thread, uint64(100+10*rank+thread)))
		}
	}

	// Upload all of them concurrently — the paths the daemon sees in
	// production are racing collectors, not a polite sequence.
	var wg sync.WaitGroup
	for _, p := range profiles {
		wg.Add(1)
		go func(p *cct.Profile) {
			defer wg.Done()
			mustUpload(t, ts, "run1", encodeProfile(t, p))
		}(p)
	}
	wg.Wait()

	var meta Metadata
	if err := json.Unmarshal(mustGet(t, ts, "/collections/run1"), &meta); err != nil {
		t.Fatal(err)
	}
	if meta.Profiles != len(profiles) || meta.Generation != uint64(len(profiles)) {
		t.Fatalf("metadata after %d uploads: %+v", len(profiles), meta)
	}

	served := mustGet(t, ts, "/collections/run1/topdown")

	db := offlineMerge(t, profiles)
	var offline bytes.Buffer
	if err := view.WriteTopDownJSON(&offline, db.Merged, defaultOptions(db.Event)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(served, offline.Bytes()) {
		t.Errorf("served topdown differs from offline merge:\nserved:\n%s\noffline:\n%s", served, offline.Bytes())
	}
	if got := counter(srv, "server.merges"); got != 1 {
		t.Fatalf("merges after first query = %d, want 1", got)
	}

	// Repeat query: cache hit, same bytes, still exactly one merge.
	hits := counter(srv, "server.cache.hits")
	again := mustGet(t, ts, "/collections/run1/topdown")
	if !bytes.Equal(served, again) {
		t.Error("repeat query returned different bytes")
	}
	if got := counter(srv, "server.cache.hits"); got != hits+1 {
		t.Errorf("cache.hits = %d after repeat query, want %d", got, hits+1)
	}
	if got := counter(srv, "server.merges"); got != 1 {
		t.Errorf("merges after repeat query = %d, want 1 (served from cache)", got)
	}

	// Bottom-up goes through the same writer as the CLI too.
	servedBU := mustGet(t, ts, "/collections/run1/bottomup")
	var offlineBU bytes.Buffer
	if err := view.WriteBottomUpJSON(&offlineBU, db.Merged, defaultOptions(db.Event)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(servedBU, offlineBU.Bytes()) {
		t.Errorf("served bottomup differs from offline merge:\nserved:\n%s\noffline:\n%s", servedBU, offlineBU.Bytes())
	}
}

// TestServerStatsRoundTrip pins the served /stats document to the shared
// schema: it must strict-decode into analysis.StatsReport and re-encode
// losslessly — the same contract the dcview golden test enforces, so the
// two surfaces cannot drift apart.
func TestServerStatsRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, nil)
	for i := 0; i < 3; i++ {
		mustUpload(t, ts, "run", encodeProfile(t, synthProfile(0, i, 50)))
	}
	raw := mustGet(t, ts, "/collections/run/stats")
	rep := statstest.RoundTrip(t, raw)
	if rep.Inputs != 3 {
		t.Errorf("stats inputs = %d, want 3", rep.Inputs)
	}
	if rep.MergedNodes == 0 || rep.InputNodes == 0 {
		t.Errorf("stats node counts empty: %+v", rep)
	}
	if len(rep.Quarantined) != 0 {
		t.Errorf("unexpected quarantine on clean collection: %+v", rep.Quarantined)
	}
}

// TestUploadCorruptRejected flips one bit of a valid payload: the upload
// must come back 400, land nothing on disk, not advance the generation,
// and leave the collection fully queryable.
func TestUploadCorruptRejected(t *testing.T) {
	srv, ts := newTestServer(t, nil)
	good := []*cct.Profile{synthProfile(0, 0, 100), synthProfile(0, 1, 200)}
	for _, p := range good {
		mustUpload(t, ts, "run", encodeProfile(t, p))
	}

	corrupt := encodeProfile(t, synthProfile(1, 0, 300))
	corrupt[len(corrupt)/2] ^= 0x01
	resp := post(t, ts, "run", corrupt)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("corrupt upload: status %d, want 400", resp.StatusCode)
	}
	if got := counter(srv, "server.uploads.rejected"); got != 1 {
		t.Errorf("uploads.rejected = %d, want 1", got)
	}
	if n := fileCount(t, srv, "run"); n != len(good) {
		t.Fatalf("corrupt upload landed a file: %d files, want %d", n, len(good))
	}

	var meta Metadata
	if err := json.Unmarshal(mustGet(t, ts, "/collections/run"), &meta); err != nil {
		t.Fatal(err)
	}
	if meta.Generation != uint64(len(good)) {
		t.Errorf("generation = %d after rejected upload, want %d", meta.Generation, len(good))
	}

	// The collection still answers queries, identical to the intact subset.
	served := mustGet(t, ts, "/collections/run/topdown")
	db := offlineMerge(t, good)
	var offline bytes.Buffer
	if err := view.WriteTopDownJSON(&offline, db.Merged, defaultOptions(db.Event)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(served, offline.Bytes()) {
		t.Error("collection not intact after rejected upload")
	}
}

// TestUploadTruncatedRejected cuts the payload short; the record-count
// footer check must reject it at ingest.
func TestUploadTruncatedRejected(t *testing.T) {
	srv, ts := newTestServer(t, nil)
	body := encodeProfile(t, synthProfile(0, 0, 100))
	resp := post(t, ts, "run", body[:len(body)-7])
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("truncated upload: status %d, want 400", resp.StatusCode)
	}
	if n := fileCount(t, srv, "run"); n != 0 {
		t.Fatalf("truncated upload landed a file: %d files", n)
	}
}

// TestUploadBadCollectionName rejects path segments that could escape the
// data root or hide from directory scans.
func TestUploadBadCollectionName(t *testing.T) {
	_, ts := newTestServer(t, nil)
	for _, name := range []string{".hidden", "-flag", "a%2Fb"} {
		resp := post(t, ts, name, encodeProfile(t, synthProfile(0, 0, 1)))
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("upload to %q: status %d, want 400", name, resp.StatusCode)
		}
	}
}

// TestQueryMissing covers the 404 surface: unknown collection, and a
// created-but-empty collection.
func TestQueryMissing(t *testing.T) {
	_, ts := newTestServer(t, nil)
	if status, _ := get(t, ts, "/collections/nope/topdown"); status != http.StatusNotFound {
		t.Errorf("unknown collection: status %d, want 404", status)
	}
	if status, _ := get(t, ts, "/collections/nope"); status != http.StatusNotFound {
		t.Errorf("unknown collection metadata: status %d, want 404", status)
	}
}

// TestDiffMatchesOffline serves base -> after and compares with the CLI's
// diff writer over the same merged databases.
func TestDiffMatchesOffline(t *testing.T) {
	_, ts := newTestServer(t, nil)
	before := []*cct.Profile{synthProfile(0, 0, 400), synthProfile(0, 1, 400)}
	after := []*cct.Profile{synthProfile(0, 0, 100), synthProfile(0, 1, 150)}
	for _, p := range before {
		mustUpload(t, ts, "base", encodeProfile(t, p))
	}
	for _, p := range after {
		mustUpload(t, ts, "opt", encodeProfile(t, p))
	}

	served := mustGet(t, ts, "/collections/opt/diff?base=base")

	dbB, dbA := offlineMerge(t, before), offlineMerge(t, after)
	o := defaultOptions(dbA.Event)
	var offline bytes.Buffer
	if err := view.WriteDiffJSON(&offline, dbB.Merged, dbA.Merged, o.Metric, o.MaxRows); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(served, offline.Bytes()) {
		t.Errorf("served diff differs from offline:\nserved:\n%s\noffline:\n%s", served, offline.Bytes())
	}

	if status, _ := get(t, ts, "/collections/opt/diff"); status != http.StatusBadRequest {
		t.Errorf("diff without base: status %d, want 400", status)
	}
}

// TestQueryParameters exercises the parameter surface: explicit metric
// selection changes the report, bad parameters are 400s.
func TestQueryParameters(t *testing.T) {
	_, ts := newTestServer(t, nil)
	mustUpload(t, ts, "run", encodeProfile(t, synthProfile(0, 0, 100)))

	var rep view.TopDownReport
	if err := json.Unmarshal(mustGet(t, ts, "/collections/run/topdown?metric=SAMPLES"), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Metric != metric.Samples.Name() {
		t.Errorf("metric = %q, want %q", rep.Metric, metric.Samples.Name())
	}

	for _, q := range []string{"metric=bogus", "rows=x", "depth=-1", "min=2"} {
		if status, _ := get(t, ts, "/collections/run/topdown?"+q); status != http.StatusBadRequest {
			t.Errorf("query %q: status %d, want 400", q, status)
		}
	}
}

// TestListAndTelemetry covers the remaining read surface: the collection
// listing and the filtered telemetry snapshot.
func TestListAndTelemetry(t *testing.T) {
	_, ts := newTestServer(t, nil)
	mustUpload(t, ts, "alpha", encodeProfile(t, synthProfile(0, 0, 1)))
	mustUpload(t, ts, "beta", encodeProfile(t, synthProfile(0, 0, 2)))

	var listing struct {
		Collections []Metadata `json:"collections"`
	}
	if err := json.Unmarshal(mustGet(t, ts, "/collections"), &listing); err != nil {
		t.Fatal(err)
	}
	if len(listing.Collections) != 2 || listing.Collections[0].Name != "alpha" || listing.Collections[1].Name != "beta" {
		t.Fatalf("listing = %+v, want [alpha beta]", listing.Collections)
	}

	mustGet(t, ts, "/collections/alpha/topdown")
	var snap struct {
		Counters map[string]uint64 `json:"counters"`
	}
	if err := json.Unmarshal(mustGet(t, ts, "/debug/telemetry?prefix=server."), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["server.uploads.accepted"] != 2 {
		t.Errorf("telemetry uploads.accepted = %d, want 2", snap.Counters["server.uploads.accepted"])
	}
	if snap.Counters["server.merges"] != 1 {
		t.Errorf("telemetry merges = %d, want 1", snap.Counters["server.merges"])
	}
	for name := range snap.Counters {
		if len(name) < len("server.") || name[:len("server.")] != "server." {
			t.Errorf("prefix filter leaked counter %q", name)
		}
	}
}

// TestRestartAdoptsCollections restarts the service over the same data
// directory: collections, counts, and generations must survive, and the
// served view must be unchanged.
func TestRestartAdoptsCollections(t *testing.T) {
	dataDir := t.TempDir()
	profiles := []*cct.Profile{synthProfile(0, 0, 10), synthProfile(0, 1, 20), synthProfile(1, 0, 30)}

	srv1, err := New(Config{DataDir: dataDir})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(srv1.Handler())
	for _, p := range profiles {
		mustUpload(t, ts1, "run", encodeProfile(t, p))
	}
	first := mustGet(t, ts1, "/collections/run/topdown")
	ts1.Close()

	srv2, err := New(Config{DataDir: dataDir})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()

	var meta Metadata
	if err := json.Unmarshal(mustGet(t, ts2, "/collections/run"), &meta); err != nil {
		t.Fatal(err)
	}
	if meta.Profiles != len(profiles) || meta.Generation != uint64(len(profiles)) {
		t.Fatalf("adopted metadata = %+v, want %d profiles at generation %d", meta, len(profiles), len(profiles))
	}
	if got := mustGet(t, ts2, "/collections/run/topdown"); !bytes.Equal(got, first) {
		t.Error("served view changed across restart")
	}

	// A post-restart upload must get a fresh sequence number, not collide
	// with an adopted file.
	res := mustUpload(t, ts2, "run", encodeProfile(t, synthProfile(2, 0, 40)))
	if res.Generation != uint64(len(profiles))+1 {
		t.Errorf("post-restart upload generation = %d, want %d", res.Generation, len(profiles)+1)
	}
	if n := fileCount(t, srv2, "run"); n != len(profiles)+1 {
		t.Errorf("file count after post-restart upload = %d, want %d", n, len(profiles)+1)
	}
}
