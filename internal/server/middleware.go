package server

// Request-scoped observability: every routed endpoint passes through
// instrument, which gives the request an identity (X-Request-ID,
// generated here or propagated from the client), measures it
// (per-endpoint request/error counters and a latency histogram), logs it
// (one structured access-log line with everything an operator joins on),
// and traces it (a span per request into the server's bounded trace
// buffer). The request ID is the join key across all four surfaces and
// across machines: dcpush stamps the same ID on its retry log, so a
// failed upload is traceable from the client's backoff decisions to the
// exact server-side line and span that rejected it.

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"log/slog"
	"net/http"
	"time"

	"dcprof/internal/telemetry"
)

// RequestIDHeader carries the request identity in both directions:
// clients may supply one (dcpush does), and the server always echoes the
// effective ID on the response so a caller can quote it in a report.
const RequestIDHeader = "X-Request-ID"

// reqInfo accumulates per-request facts the access log wants but only
// deeper layers know: whether the view cache hit, and why admission shed.
// It rides the request context down and is read back after the handler
// returns — same goroutine, no lock needed.
type reqInfo struct {
	id         string
	cache      string // "hit" | "miss" | "" (endpoint doesn't touch the cache)
	shed       string // "uploads" | "merges" | "readonly" | ""
	collection string
}

type reqInfoKey struct{}

// infoFrom returns the request's reqInfo, or nil outside instrument —
// callers must nil-check (cache_test drives viewCache.get directly).
func infoFrom(ctx context.Context) *reqInfo {
	info, _ := ctx.Value(reqInfoKey{}).(*reqInfo)
	return info
}

// newRequestID returns a 16-hex-char random ID — short enough to quote
// in a bug report, random enough to never collide within a retention
// window.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is a broken platform; degrade to a fixed
		// marker rather than taking requests down with it.
		return "rand-unavailable"
	}
	return hex.EncodeToString(b[:])
}

// validRequestID accepts client-supplied IDs conservatively: 1..64 bytes
// of [A-Za-z0-9._-], so a hostile header can't inject log fields or blow
// up line length. Anything else is replaced, not rejected.
func validRequestID(id string) bool {
	if len(id) == 0 || len(id) > 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '.' || c == '_' || c == '-':
		default:
			return false
		}
	}
	return true
}

// statusWriter remembers the status code and body size for
// instrumentation and the access log.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// instrument wraps a handler with the full request-scoped observability
// stack: per-endpoint instruments under "server.http.<endpoint>.*",
// request-ID generation/propagation, one structured access-log line, and
// a trace span.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	reqs := s.reg.Counter("server.http." + endpoint + ".requests")
	errs := s.reg.Counter("server.http." + endpoint + ".errors")
	respBytes := s.reg.Counter("server.http." + endpoint + ".resp_bytes")
	// Power-of-two µs buckets up to ~4s cover sub-ms cache hits and
	// multi-second cold merges in one shape.
	lat := s.reg.Histogram("server.http."+endpoint+".latency_us", telemetry.Pow2Bounds(22))
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()

		info := &reqInfo{id: r.Header.Get(RequestIDHeader)}
		if !validRequestID(info.id) {
			info.id = newRequestID()
		}
		info.collection = r.PathValue("name")
		w.Header().Set(RequestIDHeader, info.id)

		ctx := context.WithValue(r.Context(), reqInfoKey{}, info)
		if s.cfg.RequestTimeout > 0 {
			// The deadline rides the request context into everything the
			// handler does — including, for queries, the merge pipeline.
			tctx, cancel := context.WithTimeout(ctx, s.cfg.RequestTimeout)
			defer cancel()
			ctx = tctx
		}
		r = r.WithContext(ctx)

		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		h(sw, r)
		dur := time.Since(start)

		reqs.Inc()
		if sw.status >= 400 {
			errs.Inc()
		}
		respBytes.Add(uint64(sw.bytes))
		lat.Observe(uint64(dur.Microseconds()))

		if s.accessLog != nil {
			attrs := []slog.Attr{
				slog.String("request_id", info.id),
				slog.String("method", r.Method),
				slog.String("route", endpoint),
				slog.String("path", r.URL.Path),
				slog.Int("status", sw.status),
				slog.Int64("bytes", sw.bytes),
				slog.Int64("latency_us", dur.Microseconds()),
			}
			if info.collection != "" {
				attrs = append(attrs, slog.String("collection", info.collection))
			}
			if info.cache != "" {
				attrs = append(attrs, slog.String("cache", info.cache))
			}
			if info.shed != "" {
				attrs = append(attrs, slog.String("shed", info.shed))
			}
			level := slog.LevelInfo
			switch {
			case sw.status >= 500:
				level = slog.LevelError
			case sw.status >= 400:
				level = slog.LevelWarn
			}
			s.accessLog.LogAttrs(r.Context(), level, "request", attrs...)
		}

		if s.spans != nil {
			args := map[string]any{
				"request_id": info.id,
				"method":     r.Method,
				"path":       r.URL.Path,
				"status":     sw.status,
			}
			if info.cache != "" {
				args["cache"] = info.cache
			}
			// Round-robin tid rows so concurrent requests render side by
			// side instead of stacking on one lane.
			row := int(s.traceRow.Add(1) % 8)
			s.spans.Complete(endpoint, "http", 0, row, start, dur, args)
		}
	}
}
