package server

// Collection storage: the durable side of the continuous-profiling
// service. A collection is a directory of validated v2 profile files plus
// a small metadata document; every mutation goes through the profio FS
// seam with the same temp+fsync+rename discipline the profiler's own
// writer uses, so a service killed at any point — including mid-upload —
// never leaves a partial profile under a final name, and a restart serves
// exactly the intact subset.

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dcprof/internal/profio"
	"dcprof/internal/telemetry"
)

// metaFile is the per-collection metadata document's name. It is not a
// .dcprof file, so profio.Files never lists it as a profile.
const metaFile = "collection.json"

// nameRE bounds collection names to one safe path segment: no separators,
// no dot-prefixed names, nothing the filesystem or URL layer could
// reinterpret.
var nameRE = regexp.MustCompile(`^[a-zA-Z0-9_][a-zA-Z0-9._-]{0,127}$`)

// uploadRE matches the file names the store assigns to accepted uploads:
// a monotone sequence number, then the producer identity from the
// validated header. The sequence prefix makes names collision-free even
// when many runs upload the same (rank, thread).
var uploadRE = regexp.MustCompile(`^u([0-9]{8})-rank[0-9]+-thread[0-9]+\.dcprof$`)

// ValidateName reports whether name is an acceptable collection name.
func ValidateName(name string) error {
	if !nameRE.MatchString(name) {
		return fmt.Errorf("invalid collection name %q (want [a-zA-Z0-9._-]{1,128}, not starting with . or -)", name)
	}
	return nil
}

// Metadata is a collection's queryable description.
type Metadata struct {
	Name    string    `json:"name"`
	Created time.Time `json:"created"`
	// Profiles and Bytes describe the durable content; Generation counts
	// content mutations since the collection was created and is what the
	// merged-view cache keys on (it also advances across restarts, because
	// it is derived from the highest assigned upload sequence number).
	Profiles   int    `json:"profiles"`
	Bytes      int64  `json:"bytes"`
	Generation uint64 `json:"generation"`
}

// collection is the in-memory state for one collection directory.
type collection struct {
	name string
	dir  string

	// attempt numbers upload attempts (accepted or not) within this
	// process, so concurrent uploads never share a temp file name.
	attempt atomic.Uint64

	mu       sync.Mutex
	created  time.Time
	seq      uint64 // next upload sequence number; also the generation
	profiles int
	bytes    int64
	// digests maps the SHA-256 of each published file's bytes to its
	// base name — the idempotency index. Rebuilt from the files at adopt
	// time, so a retried upload is a no-op across restarts too.
	digests map[string]string
}

// persistedMeta is what lands in collection.json: only what a directory
// scan cannot recover. Counts and generation are derived from the profile
// files themselves at startup, so the metadata file can never disagree
// with the durable content.
type persistedMeta struct {
	Name    string    `json:"name"`
	Created time.Time `json:"created"`
}

// store manages the collection directories under one data root.
type store struct {
	root string
	fs   profio.FS

	// total is the byte total of every published profile across all
	// collections — what the total disk quota is enforced against.
	total atomic.Int64

	tmpSwept *telemetry.Counter

	mu   sync.Mutex
	cols map[string]*collection
}

// openStore scans the data root, adopting every existing collection
// directory. The root is created if missing.
func openStore(root string, fsys profio.FS, reg *telemetry.Registry) (*store, error) {
	if fsys == nil {
		fsys = profio.OSFS{}
	}
	if err := fsys.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("server: creating data root: %w", err)
	}
	s := &store{root: root, fs: fsys, cols: map[string]*collection{}, tmpSwept: reg.Counter("server.tmp.swept")}
	entries, err := os.ReadDir(root)
	if err != nil {
		return nil, fmt.Errorf("server: scanning data root: %w", err)
	}
	s.sweepTmp(root)
	for _, e := range entries {
		if !e.IsDir() || ValidateName(e.Name()) != nil {
			continue
		}
		col, err := s.adopt(e.Name())
		if err != nil {
			return nil, err
		}
		s.cols[e.Name()] = col
		s.total.Add(col.bytes)
	}
	return s, nil
}

// sweepTmp removes orphaned temp files from dir — the litter a process
// killed mid-upload (or mid-metadata-write) leaves behind. Temp files
// are invisible to readers, but they hold disk the quota accounting
// cannot see, so startup reclaims them. Failures are ignored: a file
// that cannot be removed now stays invisible and is retried next start.
func (s *store) sweepTmp(dir string) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), profio.TmpSuffix) {
			continue
		}
		if s.fs.Remove(filepath.Join(dir, e.Name())) == nil {
			s.tmpSwept.Inc()
		}
	}
}

// adopt rebuilds one collection's in-memory state from its directory: the
// creation time from collection.json (or the present, for a bare
// directory of profiles), counts and byte totals from the intact profile
// files, the next sequence number from the highest assigned one — so
// names never collide across restarts and the generation keeps advancing —
// and the content-digest index that makes retried uploads no-ops. Orphaned
// temp files from a crash mid-upload are swept first.
func (s *store) adopt(name string) (*collection, error) {
	dir := filepath.Join(s.root, name)
	s.sweepTmp(dir)
	col := &collection{name: name, dir: dir, created: time.Now().UTC(), digests: map[string]string{}}
	if raw, err := os.ReadFile(filepath.Join(dir, metaFile)); err == nil {
		var m persistedMeta
		if jerr := json.Unmarshal(raw, &m); jerr == nil && !m.Created.IsZero() {
			col.created = m.Created
		}
	}
	files, err := profio.Files(dir)
	if err != nil {
		return nil, fmt.Errorf("server: scanning collection %s: %w", name, err)
	}
	for _, f := range files {
		col.profiles++
		if fi, err := os.Stat(f); err == nil {
			col.bytes += fi.Size()
		}
		if m := uploadRE.FindStringSubmatch(filepath.Base(f)); m != nil {
			if n, err := strconv.ParseUint(m[1], 10, 64); err == nil && n >= col.seq {
				col.seq = n + 1
			}
		}
		if d, err := fileDigest(f); err == nil {
			col.digests[d] = filepath.Base(f)
		}
	}
	return col, nil
}

// fileDigest hashes a published file's bytes — the same digest the
// upload path computes over the streamed body, since accepted bytes land
// verbatim.
func fileDigest(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// get returns the named collection, or nil.
func (s *store) get(name string) *collection {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cols[name]
}

// getOrCreate returns the named collection, creating its directory and
// metadata document on first use.
func (s *store) getOrCreate(name string) (*collection, error) {
	if err := ValidateName(name); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if col, ok := s.cols[name]; ok {
		return col, nil
	}
	dir := filepath.Join(s.root, name)
	if err := s.fs.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("server: creating collection %s: %w", name, err)
	}
	col := &collection{name: name, dir: dir, created: time.Now().UTC(), digests: map[string]string{}}
	if err := s.writeMeta(col); err != nil {
		return nil, err
	}
	s.cols[name] = col
	return col, nil
}

// list returns every collection's metadata, sorted by name.
func (s *store) list() []Metadata {
	s.mu.Lock()
	cols := make([]*collection, 0, len(s.cols))
	for _, c := range s.cols {
		cols = append(cols, c)
	}
	s.mu.Unlock()
	out := make([]Metadata, 0, len(cols))
	for _, c := range cols {
		out = append(out, c.metadata())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// writeMeta persists the collection's metadata document durably (temp +
// fsync + rename + dir sync), like every other file the service writes.
func (s *store) writeMeta(col *collection) error {
	raw, err := json.MarshalIndent(persistedMeta{Name: col.name, Created: col.created}, "", "  ")
	if err != nil {
		return err
	}
	final := filepath.Join(col.dir, metaFile)
	tmp := final + profio.TmpSuffix
	f, err := s.fs.Create(tmp)
	if err != nil {
		return fmt.Errorf("server: writing %s: %w", tmp, err)
	}
	cleanup := func(err error) error {
		f.Close()
		s.fs.Remove(tmp)
		return err
	}
	if _, err := f.Write(append(raw, '\n')); err != nil {
		return cleanup(fmt.Errorf("server: writing %s: %w", tmp, err))
	}
	if err := f.Sync(); err != nil {
		return cleanup(fmt.Errorf("server: syncing %s: %w", tmp, err))
	}
	if err := f.Close(); err != nil {
		s.fs.Remove(tmp)
		return fmt.Errorf("server: closing %s: %w", tmp, err)
	}
	if err := s.fs.Rename(tmp, final); err != nil {
		s.fs.Remove(tmp)
		return fmt.Errorf("server: publishing %s: %w", final, err)
	}
	return s.fs.SyncDir(col.dir)
}

// metadata snapshots the collection's current description.
func (c *collection) metadata() Metadata {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Metadata{
		Name:       c.name,
		Created:    c.created,
		Profiles:   c.profiles,
		Bytes:      c.bytes,
		Generation: c.seq,
	}
}

// snapshot pins the collection's durable content for a merge: its current
// generation and the profile files present at that generation. The pair
// is taken under the collection lock, so a concurrent upload either lands
// before the snapshot (and is in both) or after (and bumps the generation
// the cache will key on next time).
func (c *collection) snapshot() (uint64, []string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	files, err := profio.Files(c.dir)
	if err != nil {
		return 0, nil, err
	}
	return c.seq, files, nil
}

// UploadResult describes one accepted upload.
type UploadResult struct {
	Collection string `json:"collection"`
	File       string `json:"file"`
	Rank       int    `json:"rank"`
	Thread     int    `json:"thread"`
	Event      string `json:"event"`
	Nodes      int    `json:"nodes"`
	Bytes      int64  `json:"bytes"`
	Generation uint64 `json:"generation"`
	// Digest is the SHA-256 of the payload bytes — the idempotency key a
	// client can use to resume an interrupted batch.
	Digest string `json:"digest"`
	// Duplicate marks an upload whose bytes the collection already holds:
	// File names the existing file, nothing landed, and the generation
	// did not advance. The HTTP layer answers 200 instead of 201.
	Duplicate bool `json:"duplicate,omitempty"`
}

// errOverQuota marks an upload rejected because it would push the
// collection (or the server) past its configured disk quota. The HTTP
// layer maps it to 507 Insufficient Storage.
var errOverQuota = errors.New("server: disk quota exceeded")

// quotaReader delivers at most remaining bytes, then fails the read with
// errOverQuota and remembers it tripped — so the upload path can tell "a
// payload too big for the remaining quota" from a genuinely damaged one.
// A negative remaining means unlimited.
type quotaReader struct {
	r         io.Reader
	remaining int64
	exceeded  bool
}

func (q *quotaReader) Read(p []byte) (int, error) {
	if q.remaining < 0 {
		return q.r.Read(p)
	}
	if q.remaining == 0 {
		// Distinguish a payload that ends exactly at the quota (EOF here)
		// from one that crosses it (bytes remain).
		var probe [1]byte
		if n, _ := q.r.Read(probe[:]); n > 0 {
			q.exceeded = true
			return 0, errOverQuota
		}
		return 0, io.EOF
	}
	if int64(len(p)) > q.remaining {
		p = p[:q.remaining]
	}
	n, err := q.r.Read(p)
	q.remaining -= int64(n)
	return n, err
}

// errReject marks upload failures that are the client's fault (damaged or
// non-v2 payload) — the HTTP layer maps them to 400, everything else
// to 500.
type errReject struct{ err error }

func (e errReject) Error() string { return e.err.Error() }
func (e errReject) Unwrap() error { return e.err }

// trackingFile counts bytes written to the underlying file and remembers
// the first write error, so the upload path can tell a bad payload
// (validator failed, writes fine) from bad storage (writes failed).
type trackingFile struct {
	f       profio.File
	written int64
	err     error
}

func (t *trackingFile) Write(p []byte) (int, error) {
	n, err := t.f.Write(p)
	t.written += int64(n)
	if err != nil && t.err == nil {
		t.err = err
	}
	return n, err
}

// upload streams one profile payload into the collection. The body is
// validated (full v2 decode, every CRC checked) while it streams into a
// temp file and a SHA-256; only a payload that validates end-to-end is
// fsynced and renamed to a final .dcprof name, and only then does the
// collection's generation advance. A payload whose digest the collection
// already holds is a duplicate — the temp file is discarded and the
// existing file's identity returned, so a client retrying a lost
// response can never land the same samples twice. quotaRemaining bounds
// the accepted payload size (negative = unlimited); crossing it fails
// with errOverQuota. Rejections and storage failures leave at most a
// .tmp file behind, which readers ignore and startup sweeps.
func (c *collection) upload(fsys profio.FS, body io.Reader, quotaRemaining int64) (UploadResult, error) {
	// Reserve a distinct temp name per attempt: sequence numbers are only
	// claimed at publish time (a rejected upload must not consume one), so
	// the attempt counter is what keeps concurrent uploads' temp files
	// apart. The final name is chosen after validation, when the producer
	// identity is known.
	tmp := filepath.Join(c.dir, fmt.Sprintf("in%08d%s", c.attempt.Add(1), profio.TmpSuffix))
	f, err := fsys.Create(tmp)
	if err != nil {
		return UploadResult{}, fmt.Errorf("server: creating %s: %w", tmp, err)
	}
	qr := &quotaReader{r: body, remaining: quotaRemaining}
	tf := &trackingFile{f: f}
	hash := sha256.New()
	info, verr := profio.ValidateV2Profile(io.TeeReader(qr, io.MultiWriter(tf, hash)))
	if verr != nil || tf.err != nil {
		f.Close()
		fsys.Remove(tmp)
		switch {
		case tf.err != nil:
			// Storage, not payload: surface as an internal failure.
			return UploadResult{}, fmt.Errorf("server: writing %s: %w", tmp, tf.err)
		case qr.exceeded:
			return UploadResult{}, fmt.Errorf("%w (collection %s)", errOverQuota, c.name)
		default:
			return UploadResult{}, errReject{verr}
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return UploadResult{}, fmt.Errorf("server: syncing %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		fsys.Remove(tmp)
		return UploadResult{}, fmt.Errorf("server: closing %s: %w", tmp, err)
	}
	digest := hex.EncodeToString(hash.Sum(nil))

	// Claim the sequence number and publish. The rename is the commit
	// point: once it succeeds the collection's content has changed, so the
	// generation must advance even if the directory sync afterwards fails —
	// a cached view keyed on the old generation would otherwise be served
	// against the new content. The digest check shares the same critical
	// section, so two racing identical uploads serialize: the first
	// publishes, the second observes the digest and discards its temp.
	c.mu.Lock()
	if existing, ok := c.digests[digest]; ok {
		gen := c.seq
		c.mu.Unlock()
		fsys.Remove(tmp)
		return UploadResult{
			Collection: c.name,
			File:       existing,
			Rank:       info.Rank,
			Thread:     info.Thread,
			Event:      info.Event,
			Nodes:      info.Nodes,
			Bytes:      tf.written,
			Generation: gen,
			Digest:     digest,
			Duplicate:  true,
		}, nil
	}
	seq := c.seq
	final := filepath.Join(c.dir, fmt.Sprintf("u%08d-rank%05d-thread%05d.dcprof", seq, info.Rank, info.Thread))
	if err := fsys.Rename(tmp, final); err != nil {
		c.mu.Unlock()
		fsys.Remove(tmp)
		return UploadResult{}, fmt.Errorf("server: publishing %s: %w", final, err)
	}
	c.seq = seq + 1
	c.profiles++
	c.bytes += tf.written
	c.digests[digest] = filepath.Base(final)
	gen := c.seq
	c.mu.Unlock()
	if err := fsys.SyncDir(c.dir); err != nil {
		return UploadResult{}, fmt.Errorf("server: syncing %s: %w", c.dir, err)
	}

	return UploadResult{
		Collection: c.name,
		File:       filepath.Base(final),
		Rank:       info.Rank,
		Thread:     info.Thread,
		Event:      info.Event,
		Nodes:      info.Nodes,
		Bytes:      tf.written,
		Generation: gen,
		Digest:     digest,
	}, nil
}

// digestList returns the collection's content digests, sorted — the
// resume surface dcpush asks before re-sending a measurement directory.
func (c *collection) digestList() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.digests))
	for d := range c.digests {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}

// isReject reports whether err is a payload rejection (client fault).
func isReject(err error) bool {
	var r errReject
	return errors.As(err, &r)
}
