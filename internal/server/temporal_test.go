package server

// Temporal endpoint tests: ?window= on the view queries (byte identity
// with the offline clip, derived-entry caching, generation invalidation,
// rejection of malformed specs and windowless collections) and the
// phases endpoint.

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"testing"

	"dcprof/internal/analysis"
	"dcprof/internal/cct"
	"dcprof/internal/metric"
	"dcprof/internal/profio"
	"dcprof/internal/view"
)

// testWindowWidth is the sidecar window width the synthetic temporal
// profiles use.
const testWindowWidth = 4096

// synthTemporalProfile is synthProfile plus a two-window sidecar with
// deliberately different behavior per window: window 0 is heap-heavy,
// window 5 is static-heavy — so clipping to either window produces a
// view that differs from the cumulative one.
func synthTemporalProfile(rank, thread int) *cct.Profile {
	p := synthProfile(rank, thread, 100)
	var heapLeaf, staticLeaf *cct.Node
	p.Trees[cct.ClassHeap].Walk(func(n *cct.Node, _ int) bool {
		if n.NumChildren() == 0 {
			heapLeaf = n
		}
		return true
	})
	p.Trees[cct.ClassStatic].Walk(func(n *cct.Node, _ int) bool {
		if n.NumChildren() == 0 {
			staticLeaf = n
		}
		return true
	})
	mk := func(samples, lat, rmem uint64) metric.Vector {
		var v metric.Vector
		v[metric.Samples] = samples
		v[metric.Latency] = lat
		v[metric.FromRMEM] = rmem
		return v
	}
	p.Temporal = &cct.TimeSeries{
		Width: testWindowWidth,
		Windows: []cct.TimeWindow{
			{Index: 0, Deltas: []cct.TimeDelta{
				{Class: cct.ClassHeap, Node: heapLeaf, Metrics: mk(1, 60, 1)},
			}},
			{Index: 5, Deltas: []cct.TimeDelta{
				{Class: cct.ClassStatic, Node: staticLeaf, Metrics: mk(1, 40, 0)},
			}},
		},
	}
	return p
}

// offlineDB merges the collection's on-disk files through the same
// pipeline configuration the server uses, for byte-identity comparisons.
func offlineDB(t *testing.T, srv *Server, name string) *analysis.Database {
	t.Helper()
	col := srv.store.get(name)
	if col == nil {
		t.Fatalf("no collection %q", name)
	}
	files, err := profio.Files(col.dir)
	if err != nil {
		t.Fatal(err)
	}
	db, _, err := analysis.LoadFilesStreamingCtx(context.Background(), "test "+name, files,
		analysis.LoadOptions{Policy: analysis.PolicyQuarantine})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestWindowQueryMatchesOfflineClip(t *testing.T) {
	srv, ts := newTestServer(t, nil)
	mustUpload(t, ts, "tw", encodeProfile(t, synthTemporalProfile(0, 0)))
	mustUpload(t, ts, "tw", encodeProfile(t, synthTemporalProfile(0, 1)))

	spec := "0:4096" // exactly window 0 — the heap-heavy one
	whole := mustGet(t, ts, "/collections/tw/topdown")
	got := mustGet(t, ts, "/collections/tw/topdown?window="+spec)
	if bytes.Equal(whole, got) {
		t.Fatal("windowed top-down identical to cumulative view")
	}

	db := offlineDB(t, srv, "tw")
	clipped, err := analysis.Clip(db, 0, 4096)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := view.WriteTopDownJSON(&want, clipped, defaultOptions(db.Event)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatalf("served windowed JSON differs from offline clip:\nserved: %s\noffline: %s", got, want.Bytes())
	}

	// Bottom-up accepts the same parameter.
	gotBU := mustGet(t, ts, "/collections/tw/bottomup?window="+spec)
	var wantBU bytes.Buffer
	if err := view.WriteBottomUpJSON(&wantBU, clipped, defaultOptions(db.Event)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotBU, wantBU.Bytes()) {
		t.Fatal("served windowed bottom-up differs from offline clip")
	}
}

func TestWindowQueryCachedAndInvalidated(t *testing.T) {
	srv, ts := newTestServer(t, nil)
	mustUpload(t, ts, "twc", encodeProfile(t, synthTemporalProfile(0, 0)))

	first := mustGet(t, ts, "/collections/twc/topdown?window=0:4096")
	if srv.cache.len() != 2 {
		t.Fatalf("cache entries after windowed query: %d, want 2 (base + window)", srv.cache.len())
	}
	merges := counter(srv, "server.merges")
	second := mustGet(t, ts, "/collections/twc/topdown?window=0:4096")
	if got := counter(srv, "server.merges"); got != merges {
		t.Fatalf("repeated windowed query started %d new merges", got-merges)
	}
	if !bytes.Equal(first, second) {
		t.Fatal("cached windowed view differs from first answer")
	}

	// An upload advances the generation; both the base and the derived
	// entry must re-derive.
	mustUpload(t, ts, "twc", encodeProfile(t, synthTemporalProfile(0, 1)))
	third := mustGet(t, ts, "/collections/twc/topdown?window=0:4096")
	if got := counter(srv, "server.merges"); got != merges+2 {
		t.Fatalf("post-upload windowed query started %d merges, want 2 (base + window)", got-merges)
	}
	if bytes.Equal(first, third) {
		t.Fatal("windowed view not refreshed after upload")
	}
}

func TestWindowQueryRejectsBadSpec(t *testing.T) {
	_, ts := newTestServer(t, nil)
	mustUpload(t, ts, "twb", encodeProfile(t, synthTemporalProfile(0, 0)))
	for _, spec := range []string{"abc", "5", "5:5", "9:4", "1:x", ":"} {
		status, body := get(t, ts, "/collections/twb/topdown?window="+spec)
		if status != http.StatusBadRequest {
			t.Fatalf("window=%q: status %d, want 400 (%s)", spec, status, body)
		}
	}
}

func TestWindowQueryWithoutSidecars(t *testing.T) {
	_, ts := newTestServer(t, nil)
	mustUpload(t, ts, "plain", encodeProfile(t, synthProfile(0, 0, 100)))
	status, body := get(t, ts, "/collections/plain/topdown?window=0:4096")
	if status != http.StatusBadRequest {
		t.Fatalf("window query on windowless collection: status %d (%s), want 400", status, body)
	}
	// The plain query still works.
	mustGet(t, ts, "/collections/plain/topdown")
}

func TestPhasesEndpoint(t *testing.T) {
	srv, ts := newTestServer(t, nil)
	mustUpload(t, ts, "tph", encodeProfile(t, synthTemporalProfile(0, 0)))
	got := mustGet(t, ts, "/collections/tph/phases")

	var rep view.PhasesReport
	if err := json.Unmarshal(got, &rep); err != nil {
		t.Fatalf("phases response: %v\n%s", err, got)
	}
	if rep.Width != testWindowWidth {
		t.Fatalf("phases width %d, want %d", rep.Width, testWindowWidth)
	}
	if len(rep.Phases) == 0 {
		t.Fatal("no phases detected over a two-window series")
	}

	// Byte identity with the offline writer.
	db := offlineDB(t, srv, "tph")
	ph, err := analysis.Phases(db)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := view.WritePhasesJSON(&want, db.Event, db.Temporal.Width(), ph); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatalf("served phases differ from offline writer:\nserved: %s\noffline: %s", got, want.Bytes())
	}
}

func TestPhasesWithoutSidecars(t *testing.T) {
	_, ts := newTestServer(t, nil)
	mustUpload(t, ts, "plain2", encodeProfile(t, synthProfile(0, 0, 100)))
	if status, _ := get(t, ts, "/collections/plain2/phases"); status != http.StatusNotFound {
		t.Fatalf("phases on windowless collection: status %d, want 404", status)
	}
	if status, _ := get(t, ts, "/collections/nosuch/phases"); status != http.StatusNotFound {
		t.Fatalf("phases on missing collection: status %d, want 404", status)
	}
}
