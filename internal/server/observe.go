package server

// Operational read surfaces: the endpoints a fleet operator points
// machines (Prometheus) and humans (curl) at. /metrics is the scrape
// target; /debug/vars is the "what is it doing right now" rates view;
// /debug/timeline replays the server's own recent counter history as a
// windowed time series; /debug/trace dumps the bounded request-span ring
// in Chrome trace-event JSON.

import (
	"net/http"
	"time"

	"dcprof/internal/analysis"
	"dcprof/internal/telemetry"
)

// handleMetrics serves the registry in Prometheus text exposition format
// — the standard scrape surface, validated in-tree by the promtest
// parser so the encoder can't drift from what real scrapers accept.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", telemetry.PromContentType)
	telemetry.WritePromText(w, s.reg.Snapshot())
}

// varsResponse is the /debug/vars document: lifetime totals plus the
// delta and per-second rates since the previous /debug/vars request —
// rates without any scraper doing the subtraction.
type varsResponse struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	// WindowSeconds is the span the delta and rates cover: time since the
	// previous /debug/vars request, or since start on the first one.
	WindowSeconds float64            `json:"window_seconds"`
	Totals        telemetry.Snapshot `json:"totals"`
	Delta         telemetry.Snapshot `json:"delta"`
	// RatesPerSecond maps each counter to delta/window.
	RatesPerSecond map[string]float64 `json:"rates_per_second"`
	// MergeWorkers, MergeShards, and MergeSectionParallel are the
	// effective merge-concurrency settings cached merges run with — the
	// resolved values, not the raw (possibly zero) flags.
	MergeWorkers         int `json:"merge_workers"`
	MergeShards          int `json:"merge_shards"`
	MergeSectionParallel int `json:"merge_section_parallel"`
}

func (s *Server) handleVars(w http.ResponseWriter, r *http.Request) {
	now := time.Now()
	cur := s.reg.Snapshot()

	s.varsMu.Lock()
	prev, prevAt := s.lastVars, s.lastVarsAt
	s.lastVars, s.lastVarsAt = cur, now
	s.varsMu.Unlock()

	if prevAt.IsZero() {
		prev, prevAt = telemetry.Snapshot{}, s.started
	}
	window := now.Sub(prevAt).Seconds()
	delta := cur.Delta(prev)
	rates := make(map[string]float64, len(delta.Counters))
	for name, d := range delta.Counters {
		if window > 0 {
			rates[name] = float64(d) / window
		}
	}
	opts := analysis.LoadOptions{Workers: s.cfg.Workers, Shards: s.cfg.Shards}
	sectionPar := s.cfg.SectionParallel
	if sectionPar < 1 {
		sectionPar = 1
	}
	writeJSON(w, http.StatusOK, varsResponse{
		UptimeSeconds:        now.Sub(s.started).Seconds(),
		WindowSeconds:        window,
		Totals:               cur,
		Delta:                delta,
		RatesPerSecond:       rates,
		MergeWorkers:         opts.EffectiveWorkers(),
		MergeShards:          opts.EffectiveShards(),
		MergeSectionParallel: sectionPar,
	})
}

// timelineResponse is the /debug/timeline document: the retained
// snapshot points inside the requested window, plus the adjacent-point
// deltas that turn cumulative totals into a rate series.
type timelineResponse struct {
	WindowSeconds float64                   `json:"window_seconds"`
	Points        []telemetry.TimelinePoint `json:"points"`
	// Deltas[i] is Points[i+1] minus Points[i]; len(Points)-1 entries.
	Deltas []telemetry.TimelinePoint `json:"deltas"`
}

// handleTimeline serves the server's own recent history: registry
// snapshots recorded on a ticker, windowed by ?window= (default 60s) —
// the same window idiom the temporal subsystem gives application
// profiles, applied to the server's counters.
func (s *Server) handleTimeline(w http.ResponseWriter, r *http.Request) {
	window := time.Minute
	if spec := r.URL.Query().Get("window"); spec != "" {
		d, err := time.ParseDuration(spec)
		if err != nil || d <= 0 {
			httpError(w, http.StatusBadRequest, "bad window %q: want a positive Go duration like 30s", spec)
			return
		}
		window = d
	}
	pts := s.timeline.Window(time.Now().Add(-window))
	deltas := make([]telemetry.TimelinePoint, 0, max(len(pts)-1, 0))
	for i := 1; i < len(pts); i++ {
		deltas = append(deltas, telemetry.TimelinePoint{
			At:       pts[i].At,
			Snapshot: pts[i].Snapshot.Delta(pts[i-1].Snapshot),
		})
	}
	writeJSON(w, http.StatusOK, timelineResponse{
		WindowSeconds: window.Seconds(),
		Points:        pts,
		Deltas:        deltas,
	})
}

// handleTrace dumps the bounded request-span ring as Chrome trace-event
// JSON — load it in Perfetto and the fleet's last N requests render as a
// timeline. 404 when the server was started without a trace buffer.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if s.spans == nil {
		httpError(w, http.StatusNotFound, "tracing disabled (no trace buffer configured)")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	s.spans.WriteJSON(w)
}
