package server

// Merged-view cache: the reason the service is fast for the common case.
// Merging a collection is the expensive operation (linear in the
// collection's bytes); queries against an unchanged collection are the
// overwhelmingly common case, so merged databases are cached under an LRU
// bound and keyed by (collection, content generation). The generation
// advances on every accepted upload, which invalidates exactly that
// collection's entry — no TTLs, no global flushes, and a cached view can
// never be served against content it was not merged from.
//
// Misses are deduplicated singleflight-style: when N queries race on a
// cold (collection, generation), one performs the merge and the rest
// block on its result — a query storm after an upload costs one merge,
// not N. This is the schedviz storage-service shape (LRU-cached fs
// storage behind a thin request layer) applied to CCT merges.

import (
	"container/list"
	"strconv"
	"sync"

	"dcprof/internal/analysis"
	"dcprof/internal/telemetry"
)

// viewEntry is one cached merged view.
type viewEntry struct {
	name  string // collection name — the LRU/map key
	gen   uint64 // content generation the merge saw
	db    *analysis.Database
	stats analysis.MergeStats
}

// mergeCall is one in-flight merge other queries can wait on.
type mergeCall struct {
	done  chan struct{}
	entry *viewEntry
	err   error
}

// viewCache is the bounded (collection → merged view) cache.
type viewCache struct {
	mu       sync.Mutex
	max      int
	byName   map[string]*list.Element // of *viewEntry
	lru      *list.List               // front = most recent
	inflight map[string]*mergeCall    // keyed name@generation

	hits, misses, evictions, merges *telemetry.Counter
}

func newViewCache(max int, reg *telemetry.Registry) *viewCache {
	if max <= 0 {
		max = 64
	}
	return &viewCache{
		max:       max,
		byName:    map[string]*list.Element{},
		lru:       list.New(),
		inflight:  map[string]*mergeCall{},
		hits:      reg.Counter("server.cache.hits"),
		misses:    reg.Counter("server.cache.misses"),
		evictions: reg.Counter("server.cache.evictions"),
		merges:    reg.Counter("server.merges"),
	}
}

// get returns the merged view for the collection at exactly generation
// gen, merging (once, however many queries race here) when the cache has
// no current entry. merge runs without the cache lock held.
func (c *viewCache) get(name string, gen uint64, merge func() (*analysis.Database, analysis.MergeStats, error)) (*viewEntry, error) {
	key := flightKey(name, gen)
	c.mu.Lock()
	if elem, ok := c.byName[name]; ok {
		e := elem.Value.(*viewEntry)
		if e.gen == gen {
			c.lru.MoveToFront(elem)
			c.hits.Inc()
			c.mu.Unlock()
			return e, nil
		}
		// Stale generation: leave the entry in place — an in-flight query
		// against the old snapshot may still legitimately use it — and fall
		// through to the miss path; insert() will replace it.
	}
	c.misses.Inc()
	if call, ok := c.inflight[key]; ok {
		// Someone is already merging this exact (collection, generation):
		// wait for their result instead of merging again.
		c.mu.Unlock()
		<-call.done
		return call.entry, call.err
	}
	call := &mergeCall{done: make(chan struct{})}
	c.inflight[key] = call
	c.mu.Unlock()

	c.merges.Inc()
	db, stats, err := merge()
	if err == nil {
		call.entry = &viewEntry{name: name, gen: gen, db: db, stats: stats}
	}
	call.err = err

	c.mu.Lock()
	delete(c.inflight, key)
	if err == nil {
		c.insert(call.entry)
	}
	c.mu.Unlock()
	close(call.done)
	return call.entry, call.err
}

// insert stores the entry, replacing any entry for the same collection
// and evicting the least-recently-used entry past the bound. Called with
// the lock held.
func (c *viewCache) insert(e *viewEntry) {
	if elem, ok := c.byName[e.name]; ok {
		c.lru.Remove(elem)
		delete(c.byName, e.name)
	}
	c.byName[e.name] = c.lru.PushFront(e)
	for c.lru.Len() > c.max {
		oldest := c.lru.Back()
		old := oldest.Value.(*viewEntry)
		c.lru.Remove(oldest)
		delete(c.byName, old.name)
		c.evictions.Inc()
	}
}

// invalidate drops the collection's entry, whatever its generation. The
// upload path does not call this — generation keying already fences new
// queries off stale entries — but explicit deletion endpoints would.
func (c *viewCache) invalidate(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if elem, ok := c.byName[name]; ok {
		c.lru.Remove(elem)
		delete(c.byName, name)
	}
}

// peek returns the cached entry for the collection if one exists at any
// generation, without touching recency — metadata reporting uses it to
// attach the last merge's quarantine report.
func (c *viewCache) peek(name string) *viewEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	if elem, ok := c.byName[name]; ok {
		return elem.Value.(*viewEntry)
	}
	return nil
}

// len reports the number of cached entries.
func (c *viewCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

func flightKey(name string, gen uint64) string {
	// name cannot contain '@' (ValidateName), so the key is unambiguous.
	return name + "@" + strconv.FormatUint(gen, 10)
}
