package server

// Merged-view cache: the reason the service is fast for the common case.
// Merging a collection is the expensive operation (linear in the
// collection's bytes); queries against an unchanged collection are the
// overwhelmingly common case, so merged databases are cached under an LRU
// bound and keyed by (collection, content generation). The generation
// advances on every accepted upload, which invalidates exactly that
// collection's entry — no TTLs, no global flushes, and a cached view can
// never be served against content it was not merged from.
//
// Misses are deduplicated singleflight-style: when N queries race on a
// cold (collection, generation), one merge runs and the rest block on its
// result — a query storm after an upload costs one merge, not N. The
// merge runs on its own goroutine under its own context, reference-
// counted by the waiting requests: a waiter whose request context ends
// (client disconnect, per-request deadline) detaches immediately, and
// only when the LAST waiter detaches is the merge itself canceled. A
// canceled or failed merge is never cached and its in-flight slot is
// removed, so the next query starts a fresh merge — cancellation can
// neither poison the cache nor wedge the key. This is the schedviz
// storage-service shape (LRU-cached fs storage behind a thin request
// layer) applied to CCT merges, hardened for hostile clients.

import (
	"container/list"
	"context"
	"errors"
	"strconv"
	"sync"

	"dcprof/internal/analysis"
	"dcprof/internal/telemetry"
)

// errMergeSaturated is returned by get when a new merge would be needed
// but the merge admission semaphore has no free token. The HTTP layer
// maps it to 503 + Retry-After.
var errMergeSaturated = errors.New("server: merge capacity saturated")

// viewEntry is one cached merged view.
type viewEntry struct {
	name  string // collection name — the LRU/map key
	gen   uint64 // content generation the merge saw
	db    *analysis.Database
	stats analysis.MergeStats
}

// mergeCall is one in-flight merge queries wait on. refs counts the
// waiting requests (guarded by the cache mutex); cancel stops the merge
// and fires when refs drops to zero.
type mergeCall struct {
	done   chan struct{}
	cancel context.CancelFunc
	refs   int
	entry  *viewEntry
	err    error
}

// viewCache is the bounded (collection → merged view) cache.
type viewCache struct {
	mu       sync.Mutex
	max      int
	byName   map[string]*list.Element // of *viewEntry
	lru      *list.List               // front = most recent
	inflight map[string]*mergeCall    // keyed name@generation

	hits, misses, evictions, merges, canceled *telemetry.Counter
}

func newViewCache(max int, reg *telemetry.Registry) *viewCache {
	if max <= 0 {
		max = 64
	}
	return &viewCache{
		max:       max,
		byName:    map[string]*list.Element{},
		lru:       list.New(),
		inflight:  map[string]*mergeCall{},
		hits:      reg.Counter("server.cache.hits"),
		misses:    reg.Counter("server.cache.misses"),
		evictions: reg.Counter("server.cache.evictions"),
		merges:    reg.Counter("server.merges"),
		canceled:  reg.Counter("server.merges.canceled"),
	}
}

// get returns the merged view for the collection at exactly generation
// gen, merging (once, however many queries race here) when the cache has
// no current entry. A needed merge takes a token from adm (when non-nil)
// or fails fast with errMergeSaturated — joining an already-running merge
// never requires a token. The merge runs detached from any single
// request's context; ctx only governs how long this caller waits.
func (c *viewCache) get(ctx context.Context, name string, gen uint64, adm *semaphore, merge func(context.Context) (*analysis.Database, analysis.MergeStats, error)) (*viewEntry, error) {
	key := flightKey(name, gen)
	c.mu.Lock()
	if elem, ok := c.byName[name]; ok {
		e := elem.Value.(*viewEntry)
		if e.gen == gen {
			c.lru.MoveToFront(elem)
			c.hits.Inc()
			c.mu.Unlock()
			if info := infoFrom(ctx); info != nil {
				info.cache = "hit"
			}
			return e, nil
		}
		// Stale generation: leave the entry in place — an in-flight query
		// against the old snapshot may still legitimately use it — and fall
		// through to the miss path; insert() will replace it.
	}
	c.misses.Inc()
	if info := infoFrom(ctx); info != nil {
		info.cache = "miss"
	}
	call, ok := c.inflight[key]
	if !ok {
		// This request would start a new merge: admission applies.
		if adm != nil && !adm.tryAcquire() {
			c.mu.Unlock()
			return nil, errMergeSaturated
		}
		mctx, cancel := context.WithCancel(context.Background())
		call = &mergeCall{done: make(chan struct{}), cancel: cancel}
		c.inflight[key] = call
		c.merges.Inc()
		go func() {
			db, stats, err := merge(mctx)
			if adm != nil {
				adm.release()
			}
			cancel()
			c.mu.Lock()
			delete(c.inflight, key)
			call.err = err
			if err == nil {
				call.entry = &viewEntry{name: name, gen: gen, db: db, stats: stats}
				c.insert(call.entry)
			} else if errors.Is(err, context.Canceled) {
				c.canceled.Inc()
			}
			c.mu.Unlock()
			close(call.done)
		}()
	}
	call.refs++
	c.mu.Unlock()

	select {
	case <-call.done:
		c.mu.Lock()
		call.refs--
		c.mu.Unlock()
		return call.entry, call.err
	case <-ctx.Done():
		// This waiter is gone; the merge keeps running for the others and
		// is canceled only when the last one detaches. (A cancel racing
		// merge completion is harmless — the result still caches.)
		c.mu.Lock()
		call.refs--
		if call.refs == 0 {
			call.cancel()
		}
		c.mu.Unlock()
		return nil, ctx.Err()
	}
}

// insert stores the entry, replacing any entry for the same collection
// and evicting the least-recently-used entry past the bound. Called with
// the lock held.
func (c *viewCache) insert(e *viewEntry) {
	if elem, ok := c.byName[e.name]; ok {
		c.lru.Remove(elem)
		delete(c.byName, e.name)
	}
	c.byName[e.name] = c.lru.PushFront(e)
	for c.lru.Len() > c.max {
		oldest := c.lru.Back()
		old := oldest.Value.(*viewEntry)
		c.lru.Remove(oldest)
		delete(c.byName, old.name)
		c.evictions.Inc()
	}
}

// invalidate drops the collection's entry, whatever its generation. The
// upload path does not call this — generation keying already fences new
// queries off stale entries — but explicit deletion endpoints would.
func (c *viewCache) invalidate(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if elem, ok := c.byName[name]; ok {
		c.lru.Remove(elem)
		delete(c.byName, name)
	}
}

// peek returns the cached entry for the collection if one exists at any
// generation, without touching recency — metadata reporting uses it to
// attach the last merge's quarantine report.
func (c *viewCache) peek(name string) *viewEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	if elem, ok := c.byName[name]; ok {
		return elem.Value.(*viewEntry)
	}
	return nil
}

// len reports the number of cached entries.
func (c *viewCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

func flightKey(name string, gen uint64) string {
	// name cannot contain '@' (ValidateName), so the key is unambiguous.
	return name + "@" + strconv.FormatUint(gen, 10)
}
