package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"

	"dcprof/internal/analysis"
	"dcprof/internal/view"
)

// topDownTotal fetches /topdown and returns the report's metric total —
// the cheap fingerprint the cache tests use to tell merged contents apart.
func topDownTotal(t testing.TB, ts *httptest.Server, name string) uint64 {
	t.Helper()
	var rep view.TopDownReport
	if err := json.Unmarshal(mustGet(t, ts, "/collections/"+name+"/topdown"), &rep); err != nil {
		t.Fatal(err)
	}
	return rep.Total
}

// TestColdQueryStormSingleMerge is the singleflight test: many concurrent
// queries against a cold collection must perform exactly one merge, all
// observing identical bytes — asserted through the telemetry counters the
// cache maintains.
func TestColdQueryStormSingleMerge(t *testing.T) {
	srv, ts := newTestServer(t, nil)
	for i := 0; i < 4; i++ {
		mustUpload(t, ts, "storm", encodeProfile(t, synthProfile(0, i, uint64(100+i))))
	}

	const queries = 16
	bodies := make([][]byte, queries)
	var wg sync.WaitGroup
	for i := 0; i < queries; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			bodies[i] = mustGet(t, ts, "/collections/storm/topdown")
		}(i)
	}
	wg.Wait()

	for i := 1; i < queries; i++ {
		if string(bodies[i]) != string(bodies[0]) {
			t.Fatalf("query %d saw different bytes than query 0", i)
		}
	}
	if got := counter(srv, "server.merges"); got != 1 {
		t.Errorf("merges = %d for a %d-query storm, want exactly 1 (singleflight)", got, queries)
	}
	hits, misses := counter(srv, "server.cache.hits"), counter(srv, "server.cache.misses")
	if hits+misses != queries {
		t.Errorf("hits(%d) + misses(%d) = %d, want %d", hits, misses, hits+misses, queries)
	}
}

// TestGenerationInvalidation uploads into an already-cached collection:
// the next query must see the new profile (a fresh merge at the new
// generation), not the cached stale view.
func TestGenerationInvalidation(t *testing.T) {
	srv, ts := newTestServer(t, nil)
	mustUpload(t, ts, "gen", encodeProfile(t, synthProfile(0, 0, 100)))

	first := topDownTotal(t, ts, "gen")
	if got := counter(srv, "server.merges"); got != 1 {
		t.Fatalf("merges = %d after first query, want 1", got)
	}

	mustUpload(t, ts, "gen", encodeProfile(t, synthProfile(0, 1, 50)))
	second := topDownTotal(t, ts, "gen")
	if got := counter(srv, "server.merges"); got != 2 {
		t.Errorf("merges = %d after upload+query, want 2 (generation changed)", got)
	}
	// Each synthProfile contributes twice its latency (heap + static
	// sample), so the post-upload total must be the sum.
	if want := first + 2*50; second != want {
		t.Errorf("post-upload total = %d, want %d (stale view served?)", second, want)
	}
}

// TestLRUEvictionNeverStale runs three collections through a two-entry
// cache: the eviction must be observable, and a re-query of the evicted
// collection — after more uploads landed in it — must serve the new
// content, never a resurrected stale tree.
func TestLRUEvictionNeverStale(t *testing.T) {
	srv, ts := newTestServer(t, func(cfg *Config) { cfg.CacheEntries = 2 })
	for i, name := range []string{"a", "b", "c"} {
		mustUpload(t, ts, name, encodeProfile(t, synthProfile(0, 0, uint64(100*(i+1)))))
	}

	totals := map[string]uint64{}
	for _, name := range []string{"a", "b", "c"} {
		totals[name] = topDownTotal(t, ts, name)
	}
	if got := counter(srv, "server.cache.evictions"); got != 1 {
		t.Fatalf("evictions = %d after filling a 2-entry cache with 3 views, want 1", got)
	}
	if got := srv.cache.len(); got != 2 {
		t.Fatalf("cache holds %d entries, want 2", got)
	}
	if srv.cache.peek("a") != nil {
		t.Fatal("oldest entry (a) survived past the LRU bound")
	}

	// Upload into the evicted collection, then query it: the view must
	// include the new profile.
	mustUpload(t, ts, "a", encodeProfile(t, synthProfile(0, 1, 40)))
	if got, want := topDownTotal(t, ts, "a"), totals["a"]+2*40; got != want {
		t.Errorf("re-query of evicted collection = %d, want %d", got, want)
	}

	// Re-inserting "a" evicted the then-oldest entry ("b"); "c" is still
	// cached and must serve without a new merge.
	merges := counter(srv, "server.merges")
	if got := topDownTotal(t, ts, "c"); got != totals["c"] {
		t.Errorf("cached collection c total = %d, want %d", got, totals["c"])
	}
	if got := counter(srv, "server.merges"); got != merges {
		t.Errorf("querying cached collection merged again: %d -> %d", merges, got)
	}
	// And the evicted "b" still serves correct (freshly merged) content.
	if got := topDownTotal(t, ts, "b"); got != totals["b"] {
		t.Errorf("evicted collection b total = %d, want %d", got, totals["b"])
	}
}

// TestCacheStaleGenerationMiss drives the cache directly: an entry cached
// at generation g must not satisfy a get at generation g+1.
func TestCacheStaleGenerationMiss(t *testing.T) {
	srv, _ := newTestServer(t, nil)
	c := srv.cache
	ctx := context.Background()

	var calls atomic.Int64
	merge := func(context.Context) (*analysis.Database, analysis.MergeStats, error) {
		calls.Add(1)
		return &analysis.Database{}, analysis.MergeStats{}, nil
	}
	if _, err := c.get(ctx, "x", 1, nil, merge); err != nil || calls.Load() != 1 {
		t.Fatalf("cold get: calls=%d err=%v", calls.Load(), err)
	}
	if _, err := c.get(ctx, "x", 1, nil, merge); err != nil || calls.Load() != 1 {
		t.Fatalf("same-generation get merged again: calls=%d err=%v", calls.Load(), err)
	}
	if _, err := c.get(ctx, "x", 2, nil, merge); err != nil || calls.Load() != 2 {
		t.Fatalf("new-generation get did not merge: calls=%d err=%v", calls.Load(), err)
	}
	if e := c.peek("x"); e == nil || e.gen != 2 {
		t.Fatalf("cached entry = %+v, want generation 2", e)
	}
	if got := c.len(); got != 1 {
		t.Errorf("cache holds %d entries for one collection, want 1", got)
	}
}

// TestCacheCancellationNotPoisoned is the disconnect-mid-merge
// regression: a client abandoning a cold query must cancel the merge
// (once no one else waits on it), must NOT leave a poisoned cache entry
// or a wedged in-flight slot, and the next query must merge fresh and
// succeed immediately.
func TestCacheCancellationNotPoisoned(t *testing.T) {
	srv, _ := newTestServer(t, nil)
	c := srv.cache

	var calls atomic.Int64
	started := make(chan struct{})
	merge := func(mctx context.Context) (*analysis.Database, analysis.MergeStats, error) {
		if calls.Add(1) == 1 {
			close(started)
			// A slow merge: it finishes only by cancellation.
			<-mctx.Done()
			return nil, analysis.MergeStats{}, mctx.Err()
		}
		return &analysis.Database{}, analysis.MergeStats{}, nil
	}

	// The doomed client: starts the merge, then disconnects.
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := c.get(ctx, "x", 1, nil, merge)
		errc <- err
	}()
	<-started
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("abandoned get returned %v, want context.Canceled", err)
	}

	// The canceled merge must not have been cached...
	waitFor(t, func() bool { return counter(srv, "server.merges.canceled") == 1 })
	if e := c.peek("x"); e != nil {
		t.Fatalf("canceled merge left a cache entry: %+v", e)
	}
	// ...and the next query must not block or inherit the failure.
	e, err := c.get(context.Background(), "x", 1, nil, merge)
	if err != nil || e == nil {
		t.Fatalf("query after canceled merge: entry=%v err=%v", e, err)
	}
	if calls.Load() != 2 {
		t.Fatalf("merge ran %d times, want 2 (canceled + fresh)", calls.Load())
	}
	if c.len() != 1 {
		t.Fatalf("cache holds %d entries, want 1", c.len())
	}
}

// TestCacheCancelOneWaiterKeepsMerge checks reference counting: with two
// waiters on one in-flight merge, one disconnecting must not cancel the
// merge for the survivor.
func TestCacheCancelOneWaiterKeepsMerge(t *testing.T) {
	srv, _ := newTestServer(t, nil)
	c := srv.cache

	started := make(chan struct{})
	release := make(chan struct{})
	merge := func(mctx context.Context) (*analysis.Database, analysis.MergeStats, error) {
		close(started)
		select {
		case <-release:
			return &analysis.Database{}, analysis.MergeStats{}, nil
		case <-mctx.Done():
			return nil, analysis.MergeStats{}, mctx.Err()
		}
	}

	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderErr := make(chan error, 1)
	go func() {
		_, err := c.get(leaderCtx, "x", 1, nil, merge)
		leaderErr <- err
	}()
	<-started

	survivor := make(chan error, 1)
	go func() {
		e, err := c.get(context.Background(), "x", 1, nil, merge)
		if err == nil && e == nil {
			err = errors.New("nil entry without error")
		}
		survivor <- err
	}()
	// Wait until the survivor has joined the in-flight call, then kill
	// the leader.
	waitFor(t, func() bool {
		c.mu.Lock()
		defer c.mu.Unlock()
		call := c.inflight[flightKey("x", 1)]
		return call != nil && call.refs == 2
	})
	cancelLeader()
	if err := <-leaderErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("leader got %v, want context.Canceled", err)
	}
	// The merge must still be running for the survivor; release it.
	close(release)
	if err := <-survivor; err != nil {
		t.Fatalf("surviving waiter got %v, want the merged view", err)
	}
	if got := counter(srv, "server.merges.canceled"); got != 0 {
		t.Fatalf("merge canceled %d times despite a surviving waiter", got)
	}
}
