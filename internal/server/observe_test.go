package server

// Tests for the operational observability surface: the Prometheus scrape
// endpoint (validated through the independent promtest parser, under
// concurrent load), the request-ID contract, the structured access log,
// the delta/rates view, the self-telemetry timeline, and the trace ring.

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"dcprof/internal/telemetry"
	"dcprof/internal/telemetry/promtest"
	"dcprof/internal/telemetry/spanlog"
)

// syncBuffer is a bytes.Buffer safe for the server's handler goroutines
// to log into while the test reads.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// accessLines parses every complete JSON line the access log holds.
func (s *syncBuffer) accessLines(t testing.TB) []map[string]any {
	t.Helper()
	var out []map[string]any
	for _, line := range strings.Split(strings.TrimSpace(s.String()), "\n") {
		if line == "" {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("access log line is not JSON: %v\n%s", err, line)
		}
		out = append(out, m)
	}
	return out
}

// TestMetricsScrapeUnderLoad is the scrape-shaped e2e test: while query
// and health traffic hammers the server, /metrics is scraped twice and
// both bodies must parse as valid Prometheus text (types consistent,
// histogram buckets cumulative — the parser enforces both), with every
// counter monotone non-decreasing across the scrapes.
func TestMetricsScrapeUnderLoad(t *testing.T) {
	_, ts := newTestServer(t, nil)
	mustUpload(t, ts, "m", encodeProfile(t, synthProfile(0, 0, 100)))

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, path := range []string{"/collections/m/topdown", "/healthz", "/metrics"} {
					resp, err := http.Get(ts.URL + path)
					if err == nil {
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
					}
				}
			}
		}()
	}
	defer func() { close(stop); wg.Wait() }()

	scrape := func() *promtest.Doc {
		t.Helper()
		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if ct := resp.Header.Get("Content-Type"); ct != telemetry.PromContentType {
			t.Fatalf("content type %q, want %q", ct, telemetry.PromContentType)
		}
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		doc, err := promtest.Parse(raw)
		if err != nil {
			t.Fatalf("scrape does not parse: %v\n%s", err, raw)
		}
		return doc
	}

	doc1 := scrape()
	time.Sleep(20 * time.Millisecond) // let the load goroutines move the counters
	doc2 := scrape()

	// Every counter present in the first scrape must be monotone.
	names := doc1.CounterNames()
	if len(names) == 0 {
		t.Fatal("first scrape declared no counters")
	}
	for _, name := range names {
		v1, _ := doc1.Value(name)
		v2, ok := doc2.Value(name)
		if !ok {
			t.Errorf("counter %s vanished between scrapes", name)
			continue
		}
		if v2 < v1 {
			t.Errorf("counter %s went backwards: %v -> %v", name, v1, v2)
		}
	}

	// The expected families exist with the expected types and values.
	if v, ok := doc2.Value("server_uploads_accepted_total"); !ok || v != 1 {
		t.Errorf("server_uploads_accepted_total = %v (present %v), want 1", v, ok)
	}
	fam := doc2.Families["server_http_topdown_latency_us"]
	if fam == nil || fam.Type != "histogram" {
		t.Fatalf("topdown latency histogram missing or mistyped: %+v", fam)
	}
	if v, ok := doc2.Value("server_http_topdown_latency_us_count"); !ok || v < 1 {
		t.Errorf("topdown latency count = %v (present %v), want >= 1", v, ok)
	}
	if fam := doc2.Families["server_admission_merges_inflight"]; fam == nil || fam.Type != "gauge" {
		t.Errorf("merge admission gauge missing or mistyped: %+v", fam)
	}
}

// TestRequestIDContract: a valid client ID is echoed; an invalid or
// absent one is replaced by a generated hex ID — always present on the
// response.
func TestRequestIDContract(t *testing.T) {
	_, ts := newTestServer(t, nil)

	fetch := func(id string) string {
		t.Helper()
		req, _ := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
		if id != "" {
			req.Header.Set(RequestIDHeader, id)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		return resp.Header.Get(RequestIDHeader)
	}

	if got := fetch("push-abc123-0007"); got != "push-abc123-0007" {
		t.Errorf("valid client ID not echoed: %q", got)
	}
	if got := fetch("bad id!!"); got != "" && (strings.ContainsAny(got, " !") || len(got) != 16) {
		t.Errorf("invalid client ID not replaced by a generated one: %q", got)
	}
	if got := fetch(""); len(got) != 16 {
		t.Errorf("generated ID = %q, want 16 hex chars", got)
	}
	if got := fetch(strings.Repeat("x", 65)); len(got) != 16 {
		t.Errorf("over-long client ID not replaced: %q", got)
	}
}

// TestAccessLogLines: one structured line per request carrying route,
// status, latency, request ID, and — for queries — the cache verdict.
func TestAccessLogLines(t *testing.T) {
	logBuf := &syncBuffer{}
	_, ts := newTestServer(t, func(c *Config) {
		c.AccessLog = slog.New(slog.NewJSONHandler(logBuf, nil))
	})
	mustUpload(t, ts, "m", encodeProfile(t, synthProfile(0, 0, 100)))
	mustGet(t, ts, "/collections/m/topdown") // cold: miss
	mustGet(t, ts, "/collections/m/topdown") // warm: hit
	if status, _ := get(t, ts, "/collections/nope/topdown"); status != http.StatusNotFound {
		t.Fatalf("missing collection: status %d", status)
	}

	var lines []map[string]any
	waitFor(t, func() bool {
		lines = logBuf.accessLines(t)
		return len(lines) >= 4
	})

	find := func(route string, pred func(map[string]any) bool) map[string]any {
		for _, m := range lines {
			if m["route"] == route && (pred == nil || pred(m)) {
				return m
			}
		}
		return nil
	}
	up := find("upload", nil)
	if up == nil {
		t.Fatalf("no upload access line in:\n%s", logBuf.String())
	}
	if up["collection"] != "m" || up["status"].(float64) != 201 || up["method"] != "POST" {
		t.Errorf("upload line = %v", up)
	}
	if id, _ := up["request_id"].(string); len(id) != 16 {
		t.Errorf("upload line request_id = %v, want generated 16-hex", up["request_id"])
	}
	if _, ok := up["latency_us"].(float64); !ok {
		t.Errorf("upload line missing latency_us: %v", up)
	}
	if miss := find("topdown", func(m map[string]any) bool { return m["cache"] == "miss" }); miss == nil {
		t.Errorf("no topdown cache-miss line in:\n%s", logBuf.String())
	}
	if hit := find("topdown", func(m map[string]any) bool { return m["cache"] == "hit" }); hit == nil {
		t.Errorf("no topdown cache-hit line in:\n%s", logBuf.String())
	}
	if nf := find("topdown", func(m map[string]any) bool { return m["status"].(float64) == 404 }); nf == nil {
		t.Errorf("404 not logged (at WARN) in:\n%s", logBuf.String())
	} else if nf["level"] != "WARN" {
		t.Errorf("404 line level = %v, want WARN", nf["level"])
	}
}

// TestAccessLogShedReason: a shed request's line names why.
func TestAccessLogShedReason(t *testing.T) {
	logBuf := &syncBuffer{}
	srv, ts := newTestServer(t, func(c *Config) {
		c.AccessLog = slog.New(slog.NewJSONHandler(logBuf, nil))
	})
	// Exhaust upload admission directly, then try an upload.
	for srv.uploadSem.tryAcquire() {
	}
	resp := post(t, ts, "m", []byte("x"))
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	waitFor(t, func() bool {
		for _, m := range logBuf.accessLines(t) {
			if m["route"] == "upload" && m["shed"] == "uploads" {
				return true
			}
		}
		return false
	})
}

// TestVarsDelta: /debug/vars reports the delta and per-second rates
// since the previous /debug/vars request.
func TestVarsDelta(t *testing.T) {
	_, ts := newTestServer(t, nil)
	mustGet(t, ts, "/debug/vars") // establish the baseline
	for i := 0; i < 3; i++ {
		mustGet(t, ts, "/healthz")
	}
	var v struct {
		UptimeSeconds  float64            `json:"uptime_seconds"`
		WindowSeconds  float64            `json:"window_seconds"`
		Totals         telemetry.Snapshot `json:"totals"`
		Delta          telemetry.Snapshot `json:"delta"`
		RatesPerSecond map[string]float64 `json:"rates_per_second"`
	}
	if err := json.Unmarshal(mustGet(t, ts, "/debug/vars"), &v); err != nil {
		t.Fatal(err)
	}
	if got := v.Delta.Counters["server.http.healthz.requests"]; got != 3 {
		t.Errorf("healthz delta = %d, want exactly 3", got)
	}
	if got := v.Totals.Counters["server.http.healthz.requests"]; got != 3 {
		t.Errorf("healthz total = %d, want 3", got)
	}
	if v.WindowSeconds <= 0 || v.UptimeSeconds <= 0 {
		t.Errorf("window %v / uptime %v, want both > 0", v.WindowSeconds, v.UptimeSeconds)
	}
	if rate, ok := v.RatesPerSecond["server.http.healthz.requests"]; !ok || rate <= 0 {
		t.Errorf("healthz rate = %v (present %v), want > 0", rate, ok)
	}
}

// TestVarsMergeSettings: /debug/vars reports the effective merge
// concurrency — resolved values, so an operator sees what the server
// actually runs with, not the raw zero-valued flags.
func TestVarsMergeSettings(t *testing.T) {
	var v struct {
		MergeWorkers         int `json:"merge_workers"`
		MergeShards          int `json:"merge_shards"`
		MergeSectionParallel int `json:"merge_section_parallel"`
	}

	_, ts := newTestServer(t, func(c *Config) {
		c.Workers, c.Shards, c.SectionParallel = 6, 3, 2
	})
	if err := json.Unmarshal(mustGet(t, ts, "/debug/vars"), &v); err != nil {
		t.Fatal(err)
	}
	if v.MergeWorkers != 6 || v.MergeShards != 3 || v.MergeSectionParallel != 2 {
		t.Errorf("configured merge settings = %+v, want workers 6, shards 3, section parallel 2", v)
	}

	_, ts = newTestServer(t, nil)
	if err := json.Unmarshal(mustGet(t, ts, "/debug/vars"), &v); err != nil {
		t.Fatal(err)
	}
	if want := runtime.GOMAXPROCS(0); v.MergeWorkers != want {
		t.Errorf("default merge_workers = %d, want GOMAXPROCS %d", v.MergeWorkers, want)
	}
	if v.MergeShards < 1 || v.MergeSectionParallel != 1 {
		t.Errorf("default merge settings = %+v, want shards >= 1 and section parallel 1", v)
	}
}

// TestTimelineEndpoint drives the timeline without a ticker (explicit
// Record calls) and checks the windowed points and adjacent deltas.
func TestTimelineEndpoint(t *testing.T) {
	srv, ts := newTestServer(t, nil)
	mustGet(t, ts, "/healthz")
	srv.Timeline().Record(time.Now())
	mustGet(t, ts, "/healthz")
	srv.Timeline().Record(time.Now())

	var resp struct {
		WindowSeconds float64                   `json:"window_seconds"`
		Points        []telemetry.TimelinePoint `json:"points"`
		Deltas        []telemetry.TimelinePoint `json:"deltas"`
	}
	if err := json.Unmarshal(mustGet(t, ts, "/debug/timeline?window=1h"), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Points) != 2 || len(resp.Deltas) != 1 {
		t.Fatalf("points %d / deltas %d, want 2 / 1", len(resp.Points), len(resp.Deltas))
	}
	if got := resp.Deltas[0].Snapshot.Counters["server.http.healthz.requests"]; got != 1 {
		t.Errorf("healthz delta between points = %d, want 1", got)
	}
	if resp.WindowSeconds != 3600 {
		t.Errorf("window_seconds = %v, want 3600", resp.WindowSeconds)
	}

	for _, bad := range []string{"bogus", "-5s", "0s"} {
		if status, _ := get(t, ts, "/debug/timeline?window="+bad); status != http.StatusBadRequest {
			t.Errorf("window=%s: status %d, want 400", bad, status)
		}
	}
}

// TestTimelineTickerServesHistory: with an interval configured, the
// server records its own history without anyone asking.
func TestTimelineTickerServesHistory(t *testing.T) {
	srv, ts := newTestServer(t, func(c *Config) {
		c.TimelineInterval = 2 * time.Millisecond
		c.TimelinePoints = 8
	})
	waitFor(t, func() bool { return srv.Timeline().Len() >= 3 })
	var resp struct {
		Points []telemetry.TimelinePoint `json:"points"`
	}
	if err := json.Unmarshal(mustGet(t, ts, "/debug/timeline?window=1h"), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Points) < 3 {
		t.Errorf("ticker produced %d served points, want >= 3", len(resp.Points))
	}
	srv.Close()
	n := srv.Timeline().Len()
	time.Sleep(10 * time.Millisecond)
	if srv.Timeline().Len() != n {
		t.Error("timeline kept recording after Close")
	}
}

// TestTraceEndpoint: request spans land in the bounded ring and serve as
// trace-event JSON; without a configured buffer the endpoint 404s.
func TestTraceEndpoint(t *testing.T) {
	_, ts := newTestServer(t, func(c *Config) {
		c.Spans = spanlog.NewBounded(16)
	})
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
	req.Header.Set(RequestIDHeader, "trace-join-test")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	waitFor(t, func() bool {
		if err := json.Unmarshal(mustGet(t, ts, "/debug/trace"), &doc); err != nil {
			t.Fatal(err)
		}
		for _, e := range doc.TraceEvents {
			if e.Name == "healthz" && e.Ph == "X" && e.Args["request_id"] == "trace-join-test" {
				return true
			}
		}
		return false
	})

	_, bare := newTestServer(t, nil)
	if status, _ := get(t, bare, "/debug/trace"); status != http.StatusNotFound {
		t.Errorf("trace without buffer: status %d, want 404", status)
	}
}

// TestHealthEndpointsInstrumented: healthz/readyz ride the same
// middleware as every data endpoint — counters move and IDs are issued.
func TestHealthEndpointsInstrumented(t *testing.T) {
	srv, ts := newTestServer(t, nil)
	mustGet(t, ts, "/healthz")
	mustGet(t, ts, "/readyz")
	mustGet(t, ts, "/debug/telemetry")
	if got := counter(srv, "server.http.healthz.requests"); got != 1 {
		t.Errorf("healthz requests = %d, want 1", got)
	}
	if got := counter(srv, "server.http.readyz.requests"); got != 1 {
		t.Errorf("readyz requests = %d, want 1", got)
	}
	if got := counter(srv, "server.http.telemetry.requests"); got != 1 {
		t.Errorf("telemetry requests = %d, want 1", got)
	}
}
