package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

// FuzzHandleUpload throws arbitrary bodies at the ingest path. The
// invariants: the handler never panics, answers only 201 (valid v2
// payload) or 400 (rejected), and a rejected upload never lands a
// profile file in the collection.
func FuzzHandleUpload(f *testing.F) {
	valid := encodeProfile(f, synthProfile(0, 0, 100))
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/3] ^= 0x20
	f.Add(flipped)
	f.Add([]byte{})
	f.Add([]byte("definitely not a profile"))

	srv, err := New(Config{DataDir: f.TempDir()})
	if err != nil {
		f.Fatal(err)
	}
	h := srv.Handler()

	f.Fuzz(func(t *testing.T, data []byte) {
		before := fileCount(t, srv, "fuzz")
		req := httptest.NewRequest(http.MethodPost, "/collections/fuzz/profiles", bytes.NewReader(data))
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, req)

		after := fileCount(t, srv, "fuzz")
		switch rr.Code {
		case http.StatusCreated:
			if after != before+1 {
				t.Fatalf("201 but file count %d -> %d", before, after)
			}
		case http.StatusOK:
			// Idempotent replay: the engine re-sent bytes the collection
			// already holds. Nothing may land.
			if after != before {
				t.Fatalf("duplicate upload landed a file: %d -> %d", before, after)
			}
			var res UploadResult
			if err := json.Unmarshal(rr.Body.Bytes(), &res); err != nil || !res.Duplicate {
				t.Fatalf("200 without duplicate marker: %s", rr.Body.String())
			}
		case http.StatusBadRequest:
			if after != before {
				t.Fatalf("rejected upload landed a file: %d -> %d", before, after)
			}
		default:
			t.Fatalf("status %d for fuzzed upload: %s", rr.Code, rr.Body.String())
		}
	})
}

// FuzzUploadIdempotency is the digest-lookup fuzz: whatever bytes arrive,
// sending them twice must behave like sending them once. A valid payload
// answers 201 then 200-duplicate against the same file; an invalid one
// answers 400 twice; in neither case may the second POST land a file or
// advance the generation.
func FuzzUploadIdempotency(f *testing.F) {
	valid := encodeProfile(f, synthProfile(0, 0, 100))
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte("not a profile"))
	f.Add([]byte{})

	srv, err := New(Config{DataDir: f.TempDir()})
	if err != nil {
		f.Fatal(err)
	}
	h := srv.Handler()
	post := func(data []byte) *httptest.ResponseRecorder {
		req := httptest.NewRequest(http.MethodPost, "/collections/idem/profiles", bytes.NewReader(data))
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, req)
		return rr
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		first := post(data)
		mid := fileCount(t, srv, "idem")
		second := post(data)
		after := fileCount(t, srv, "idem")
		if after != mid {
			t.Fatalf("re-POST of identical bytes landed a file: %d -> %d", mid, after)
		}
		switch first.Code {
		case http.StatusCreated, http.StatusOK:
			// Valid bytes (201 fresh, or 200 if a previous iteration already
			// uploaded them): the retry must answer 200 against the same file.
			if second.Code != http.StatusOK {
				t.Fatalf("retry of accepted upload: status %d, want 200", second.Code)
			}
			var a, b UploadResult
			if err := json.Unmarshal(first.Body.Bytes(), &a); err != nil {
				t.Fatal(err)
			}
			if err := json.Unmarshal(second.Body.Bytes(), &b); err != nil {
				t.Fatal(err)
			}
			if !b.Duplicate || b.File != a.File || b.Digest != a.Digest {
				t.Fatalf("retry answered a different identity: first %+v, second %+v", a, b)
			}
			if b.Generation != a.Generation {
				t.Fatalf("duplicate advanced the generation: %d -> %d", a.Generation, b.Generation)
			}
		case http.StatusBadRequest:
			if second.Code != http.StatusBadRequest {
				t.Fatalf("rejected payload re-POST: status %d, want 400", second.Code)
			}
		default:
			t.Fatalf("status %d for fuzzed upload: %s", first.Code, first.Body.String())
		}
	})
}
