package server

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"testing"
)

// FuzzHandleUpload throws arbitrary bodies at the ingest path. The
// invariants: the handler never panics, answers only 201 (valid v2
// payload) or 400 (rejected), and a rejected upload never lands a
// profile file in the collection.
func FuzzHandleUpload(f *testing.F) {
	valid := encodeProfile(f, synthProfile(0, 0, 100))
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/3] ^= 0x20
	f.Add(flipped)
	f.Add([]byte{})
	f.Add([]byte("definitely not a profile"))

	srv, err := New(Config{DataDir: f.TempDir()})
	if err != nil {
		f.Fatal(err)
	}
	h := srv.Handler()

	f.Fuzz(func(t *testing.T, data []byte) {
		before := fileCount(t, srv, "fuzz")
		req := httptest.NewRequest(http.MethodPost, "/collections/fuzz/profiles", bytes.NewReader(data))
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, req)

		after := fileCount(t, srv, "fuzz")
		switch rr.Code {
		case http.StatusCreated:
			if after != before+1 {
				t.Fatalf("201 but file count %d -> %d", before, after)
			}
		case http.StatusBadRequest:
			if after != before {
				t.Fatalf("rejected upload landed a file: %d -> %d", before, after)
			}
		default:
			t.Fatalf("status %d for fuzzed upload: %s", rr.Code, rr.Body.String())
		}
	})
}
