package server

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"
	"time"

	"dcprof/internal/cct"
	"dcprof/internal/metric"
	"dcprof/internal/telemetry/spanlog"
)

// benchProfile builds one dense thread profile (~hundreds of distinct
// contexts), so the gated query renders a realistically sized topdown
// report instead of a toy one.
func benchProfile(thread int) *cct.Profile {
	p := cct.NewProfile(0, thread, "IBS@4096")
	for i := 0; i < 300; i++ {
		var v metric.Vector
		v[metric.Samples] = uint64(i%9 + 1)
		v[metric.Latency] = uint64(50 + i*7%900)
		fn := fmt.Sprintf("f%02d", i%40)
		p.Trees[cct.Class(i%cct.NumClasses)].AddSample([]cct.Frame{
			{Kind: cct.KindCall, Module: "exe", Name: "main", File: "main.c"},
			{Kind: cct.KindCall, Module: "exe", Name: fn, File: fn + ".c"},
			{Kind: cct.KindStmt, Module: "exe", Name: fn, File: fn + ".c", Line: i % 50},
		}, &v)
	}
	return p
}

// TestMiddlewareOverheadGate measures the cached-query hot path through
// the fully instrumented handler chain (request ID, access log to a
// discard JSON logger, span ring, counters, latency histogram) against
// the same handler with no middleware, and fails if observability costs
// more than the gate allows. Opt-in via DCPROF_BENCH_MIDDLEWARE=<report
// file> (check.sh sets it, pointing at the telemetry bench report so
// both gates land in one JSON document).
func TestMiddlewareOverheadGate(t *testing.T) {
	out := os.Getenv("DCPROF_BENCH_MIDDLEWARE")
	if out == "" {
		t.Skip("set DCPROF_BENCH_MIDDLEWARE=<report file> to run the middleware overhead gate")
	}

	const gate = 1.05 // instrumented must stay within 5% of bare

	srv, ts := newTestServer(t, func(c *Config) {
		c.AccessLog = slog.New(slog.NewJSONHandler(io.Discard, nil))
		c.Spans = spanlog.NewBounded(4096)
	})
	for th := 0; th < 8; th++ {
		mustUpload(t, ts, "bench", encodeProfile(t, benchProfile(th)))
	}
	mustGet(t, ts, "/collections/bench/topdown") // warm the view cache

	// Both variants dispatch to the same server, store, and warmed cache;
	// the only difference is the instrument() wrapper. ServeMux patterns
	// stay identical so PathValue("name") resolves in both.
	instrumented := srv.Handler()
	bare := http.NewServeMux()
	bare.HandleFunc("GET /collections/{name}/topdown", srv.handleTopDown)

	// Best-of-N over in-process recorder requests: no sockets, no client
	// allocation noise — just handler-path cost.
	const (
		rounds   = 7
		requests = 400
	)
	measure := func(h http.Handler) time.Duration {
		best := time.Duration(1<<63 - 1)
		for i := 0; i < rounds; i++ {
			t0 := time.Now()
			for j := 0; j < requests; j++ {
				req := httptest.NewRequest(http.MethodGet, "/collections/bench/topdown", nil)
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					t.Fatalf("status %d during measurement", rec.Code)
				}
			}
			if d := time.Since(t0); d < best {
				best = d
			}
		}
		return best
	}

	// Interleaved warmup so allocator and map steady-state hit both.
	measure(bare)
	measure(instrumented)
	off := measure(bare)
	on := measure(instrumented)
	ratio := float64(on) / float64(off)

	rep := map[string]any{
		"middleware_off_ns": off.Nanoseconds(),
		"middleware_on_ns":  on.Nanoseconds(),
		"ratio":             ratio,
		"gate":              gate,
		"pass":              ratio <= gate,
		"requests":          requests,
		"best_of":           rounds,
		"timestamp":         time.Now().UTC().Format(time.RFC3339),
	}

	// Merge under the "middleware" key of whatever report document is
	// already at the path (the telemetry gate writes a flat object there
	// first), so one file carries every perf gate.
	doc := map[string]any{}
	if raw, err := os.ReadFile(out); err == nil {
		if err := json.Unmarshal(raw, &doc); err != nil {
			t.Fatalf("existing report %s is not JSON: %v", out, err)
		}
	}
	doc["middleware"] = rep
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("bare %v, instrumented %v, ratio %.3f (gate %.2f), report %s", off, on, ratio, gate, out)
	if ratio > gate {
		t.Errorf("instrumented cached query is %.1f%% slower than bare (gate %.0f%%)", 100*(ratio-1), 100*(gate-1))
	}
}
