package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"dcprof/internal/cct"
	"dcprof/internal/metric"
	"dcprof/internal/profio"
)

// synthProfile builds one deterministic thread profile: a heap variable
// accessed from two statements and a static, with per-thread latency so
// merges are checkable by totals.
func synthProfile(rank, thread int, lat uint64) *cct.Profile {
	p := cct.NewProfile(rank, thread, "IBS@4096")
	var v metric.Vector
	v[metric.Samples] = 2
	v[metric.Latency] = lat
	v[metric.FromRMEM] = 1
	heap := []cct.Frame{
		{Kind: cct.KindCall, Module: "exe", Name: "main", File: "main.c"},
		{Kind: cct.KindStmt, Module: "exe", Name: "main", File: "main.c", Line: 10},
		{Kind: cct.KindCall, Module: "libc", Name: "malloc"},
		{Kind: cct.KindHeapData, Name: "grid"},
		{Kind: cct.KindStmt, Module: "exe", Name: "smooth", File: "sm.c", Line: 42 + thread%2},
	}
	p.Trees[cct.ClassHeap].AddSample(heap, &v)
	p.Trees[cct.ClassStatic].AddSample([]cct.Frame{
		{Kind: cct.KindStaticVar, Module: "exe", Name: "lut", File: "main.c"},
		{Kind: cct.KindStmt, Module: "exe", Name: "init", File: "main.c", Line: 3},
	}, &v)
	return p
}

// encodeProfile renders the profile in wire format v2.
func encodeProfile(t testing.TB, p *cct.Profile) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := profio.WriteProfile(&buf, p); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// newTestServer builds a server over a temp data dir and an httptest
// front end. Mutate cfg defaults through adjust (may be nil).
func newTestServer(t testing.TB, adjust func(*Config)) (*Server, *httptest.Server) {
	t.Helper()
	cfg := Config{DataDir: t.TempDir()}
	if adjust != nil {
		adjust(&cfg)
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(srv.Close)
	return srv, ts
}

// post uploads body to the collection and returns the response.
func post(t testing.TB, ts *httptest.Server, collection string, body []byte) *http.Response {
	t.Helper()
	resp, err := http.Post(ts.URL+"/collections/"+collection+"/profiles", "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// mustUpload uploads and asserts 201, returning the parsed result.
func mustUpload(t testing.TB, ts *httptest.Server, collection string, body []byte) UploadResult {
	t.Helper()
	resp := post(t, ts, collection, body)
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload to %s: status %d: %s", collection, resp.StatusCode, raw)
	}
	var res UploadResult
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatalf("upload response: %v\n%s", err, raw)
	}
	return res
}

// get fetches the path and returns status and body.
func get(t testing.TB, ts *httptest.Server, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, raw
}

// mustGet fetches the path and asserts 200.
func mustGet(t testing.TB, ts *httptest.Server, path string) []byte {
	t.Helper()
	status, raw := get(t, ts, path)
	if status != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", path, status, raw)
	}
	return raw
}

// counter reads one counter from the server's registry.
func counter(srv *Server, name string) uint64 {
	return srv.Registry().Snapshot().Counters[name]
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t testing.TB, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 5s")
		}
		time.Sleep(time.Millisecond)
	}
}

// fileCount counts published profile files in the collection's directory.
func fileCount(t testing.TB, srv *Server, collection string) int {
	t.Helper()
	col := srv.store.get(collection)
	if col == nil {
		return 0
	}
	files, err := profio.Files(col.dir)
	if err != nil {
		t.Fatal(err)
	}
	return len(files)
}
