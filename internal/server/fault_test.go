package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dcprof/internal/cct"
	"dcprof/internal/faultio"
	"dcprof/internal/profio"
	"dcprof/internal/view"
)

// TestCrashMidUploadLeavesNoPartial simulates the process dying while an
// upload streams to disk: the request fails as a storage error, no
// partial file lands under a final .dcprof name, and a restarted service
// over the same directory serves exactly the intact subset.
func TestCrashMidUploadLeavesNoPartial(t *testing.T) {
	dataDir := t.TempDir()
	good := []*cct.Profile{synthProfile(0, 0, 100), synthProfile(0, 1, 200)}

	// Phase 1: healthy service accepts two profiles.
	srv1, err := New(Config{DataDir: dataDir})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(srv1.Handler())
	for _, p := range good {
		mustUpload(t, ts1, "run", encodeProfile(t, p))
	}
	ts1.Close()

	// Phase 2: the filesystem "crashes" a few bytes into the next upload's
	// temp-file write. The budget is far smaller than one encoded profile,
	// so the tee write fails mid-stream.
	crashFS := faultio.NewCrashFS(profio.OSFS{}, 32)
	srv2, err := New(Config{DataDir: dataDir, FS: crashFS})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	resp := post(t, ts2, "run", encodeProfile(t, synthProfile(1, 0, 300)))
	resp.Body.Close()
	ts2.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("upload through crashed fs: status %d, want 500", resp.StatusCode)
	}

	// No partial profile may be visible under a final name; at worst an
	// ignored .tmp remains (the crashed fs also fails the cleanup Remove).
	files, err := profio.Files(filepath.Join(dataDir, "run"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != len(good) {
		t.Fatalf("after crashed upload: %d published profiles, want %d", len(files), len(good))
	}
	entries, err := os.ReadDir(filepath.Join(dataDir, "run"))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".dcprof") || e.Name() == metaFile || strings.HasSuffix(e.Name(), profio.TmpSuffix) {
			continue
		}
		t.Errorf("unexpected file after crash: %s", e.Name())
	}

	// Phase 3: restart over the same directory — the intact subset serves,
	// byte-identical to an offline merge of the two accepted profiles.
	srv3, err := New(Config{DataDir: dataDir})
	if err != nil {
		t.Fatal(err)
	}
	ts3 := httptest.NewServer(srv3.Handler())
	defer ts3.Close()

	var meta Metadata
	if err := json.Unmarshal(mustGet(t, ts3, "/collections/run"), &meta); err != nil {
		t.Fatal(err)
	}
	if meta.Profiles != len(good) {
		t.Fatalf("post-crash metadata: %d profiles, want %d", meta.Profiles, len(good))
	}

	served := mustGet(t, ts3, "/collections/run/topdown")
	db := offlineMerge(t, good)
	var offline bytes.Buffer
	if err := view.WriteTopDownJSON(&offline, db.Merged, defaultOptions(db.Event)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(served, offline.Bytes()) {
		t.Error("post-crash served view differs from offline merge of the intact subset")
	}
}

// TestCrashDuringCollectionCreate crashes inside the very first upload to
// a new collection — during directory/metadata creation — and verifies a
// restart does not adopt a half-created collection as queryable garbage.
func TestCrashDuringCollectionCreate(t *testing.T) {
	dataDir := t.TempDir()

	// Budget 0: the first metadata byte written crashes the fs.
	crashFS := faultio.NewCrashFS(profio.OSFS{}, 0)
	srv1, err := New(Config{DataDir: dataDir, FS: crashFS})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(srv1.Handler())
	resp := post(t, ts1, "fresh", encodeProfile(t, synthProfile(0, 0, 1)))
	resp.Body.Close()
	ts1.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("create through crashed fs: status %d, want 500", resp.StatusCode)
	}

	// Restart: whatever skeleton the crash left behind must adopt as an
	// empty collection (404 on queries) or not exist at all — never a
	// published profile.
	srv2, err := New(Config{DataDir: dataDir})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	if status, _ := get(t, ts2, "/collections/fresh/topdown"); status != http.StatusNotFound {
		t.Errorf("half-created collection serves views: status %d, want 404", status)
	}

	// And the directory is still usable: a healthy upload to the same name
	// succeeds and serves.
	mustUpload(t, ts2, "fresh", encodeProfile(t, synthProfile(0, 0, 5)))
	mustGet(t, ts2, "/collections/fresh/topdown")
}

// TestAtRestCorruptionQuarantined damages one published file after
// acceptance: the merge must quarantine it (PolicyQuarantine), keep
// serving the healthy remainder, and surface the quarantine in /stats
// and the collection metadata.
func TestAtRestCorruptionQuarantined(t *testing.T) {
	srv, ts := newTestServer(t, nil)
	good := []*cct.Profile{synthProfile(0, 0, 100), synthProfile(0, 1, 200)}
	for _, p := range good {
		mustUpload(t, ts, "run", encodeProfile(t, p))
	}
	victim := mustUpload(t, ts, "run", encodeProfile(t, synthProfile(1, 0, 300)))

	// Flip a bit in the victim's published bytes — at-rest damage, after
	// ingest validation passed.
	path := filepath.Join(srv.store.get("run").dir, victim.File)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x01
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	served := mustGet(t, ts, "/collections/run/topdown")
	db := offlineMerge(t, good)
	var offline bytes.Buffer
	if err := view.WriteTopDownJSON(&offline, db.Merged, defaultOptions(db.Event)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(served, offline.Bytes()) {
		t.Error("quarantined merge differs from offline merge of the healthy subset")
	}

	var meta metadataResponse
	if err := json.Unmarshal(mustGet(t, ts, "/collections/run"), &meta); err != nil {
		t.Fatal(err)
	}
	if len(meta.Quarantined) != 1 || filepath.Base(meta.Quarantined[0].Path) != victim.File {
		t.Errorf("metadata quarantine = %+v, want the damaged file %s", meta.Quarantined, victim.File)
	}
}
