package server

// Admission control and degraded-mode state: the pieces that keep the
// service answering — with bounded, observable degradation — when it is
// overloaded or its disk is full, instead of queueing unboundedly or
// erroring opaquely.
//
// Two token semaphores bound the expensive work: one over in-flight
// upload bodies, one over concurrent merges. Both are try-acquire only;
// when a token is unavailable the request is shed immediately with a
// Retry-After so well-behaved clients (dcpush) back off instead of
// piling onto a saturated server.
//
// The health tracker owns read-only mode. A write failing with ENOSPC
// (or EDQUOT) flips the server read-only: uploads are rejected with 503,
// queries keep serving from the intact on-disk state. Recovery is
// automatic: a rate-limited probe write runs whenever read-only state is
// consulted — every rejected upload and every /readyz poll — so the
// orchestrator's readiness polling doubles as the recovery clock and no
// background goroutine or restart is needed.

import (
	"errors"
	"path/filepath"
	"sync"
	"syscall"
	"time"

	"dcprof/internal/profio"
	"dcprof/internal/telemetry"
)

// semaphore is a counting try-acquire semaphore whose occupancy is
// mirrored in a telemetry gauge (Value = in-flight now, Max = high
// water).
type semaphore struct {
	tokens   chan struct{}
	inflight *telemetry.Gauge
}

func newSemaphore(n int, inflight *telemetry.Gauge) *semaphore {
	return &semaphore{tokens: make(chan struct{}, n), inflight: inflight}
}

// tryAcquire takes a token if one is free, never blocking.
func (s *semaphore) tryAcquire() bool {
	select {
	case s.tokens <- struct{}{}:
		s.inflight.Add(1)
		return true
	default:
		return false
	}
}

func (s *semaphore) release() {
	<-s.tokens
	s.inflight.Add(-1)
}

// saturated reports whether no token is currently free.
func (s *semaphore) saturated() bool { return len(s.tokens) == cap(s.tokens) }

// isDiskFull reports whether err is an out-of-space failure — the
// condition that flips the server read-only.
func isDiskFull(err error) bool {
	return errors.Is(err, syscall.ENOSPC) || errors.Is(err, syscall.EDQUOT)
}

// probeFile is written (and removed) in the data root to test
// writability during read-only recovery.
const probeFile = ".readyz-probe" + profio.TmpSuffix

// health tracks whether the data directory accepts writes.
type health struct {
	fs         profio.FS
	dir        string
	probeEvery time.Duration

	mu        sync.Mutex
	readonly  bool
	lastProbe time.Time

	entered   *telemetry.Counter
	recovered *telemetry.Counter
	probes    *telemetry.Counter
	gauge     *telemetry.Gauge // 1 while read-only
}

func newHealth(fs profio.FS, dir string, probeEvery time.Duration, reg *telemetry.Registry) *health {
	return &health{
		fs:         fs,
		dir:        dir,
		probeEvery: probeEvery,
		entered:    reg.Counter("server.readonly.entered"),
		recovered:  reg.Counter("server.readonly.recovered"),
		probes:     reg.Counter("server.readonly.probes"),
		gauge:      reg.Gauge("server.readonly"),
	}
}

// degrade flips the server read-only. Idempotent.
func (h *health) degrade() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if !h.readonly {
		h.readonly = true
		h.lastProbe = time.Now()
		h.entered.Inc()
		h.gauge.Set(1)
	}
}

// writable reports whether uploads may proceed, probing for recovery
// (at most once per probeEvery) when the server is read-only.
func (h *health) writable() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	if !h.readonly {
		return true
	}
	if h.probeEvery > 0 && time.Since(h.lastProbe) < h.probeEvery {
		return false
	}
	h.lastProbe = time.Now()
	h.probes.Inc()
	if h.probe() {
		h.readonly = false
		h.recovered.Inc()
		h.gauge.Set(0)
		return true
	}
	return false
}

// probe attempts one small durable write in the data root. Called with
// the lock held; the write is tiny and the probe is rate-limited, so
// holding the lock across it is fine.
func (h *health) probe() bool {
	path := filepath.Join(h.dir, probeFile)
	f, err := h.fs.Create(path)
	if err != nil {
		return false
	}
	_, werr := f.Write([]byte("probe\n"))
	serr := f.Sync()
	cerr := f.Close()
	h.fs.Remove(path)
	return werr == nil && serr == nil && cerr == nil
}

// readOnly reports the current mode without probing.
func (h *health) readOnly() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.readonly
}
