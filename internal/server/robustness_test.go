package server

// Robustness suite: drives the service through overload, slow and
// disconnecting clients, duplicate uploads, disk exhaustion, and quota
// pressure, and checks the degradation contract — bounded shed with
// Retry-After, read-only mode with automatic recovery, idempotent
// retries, and a merge cache that cancellation cannot poison.

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"dcprof/internal/cct"
	"dcprof/internal/faultio"
	"dcprof/internal/profio"
	"dcprof/internal/view"
)

// TestUploadAdmissionShed saturates the one-slot upload admission with a
// stalled body, then checks the next upload is shed with 429 and a
// Retry-After hint instead of queueing.
func TestUploadAdmissionShed(t *testing.T) {
	srv, ts := newTestServer(t, func(cfg *Config) { cfg.MaxInflightUploads = 1 })

	// A body that trickles: the handler accepts the request and blocks
	// reading, holding the admission token.
	pr, pw := io.Pipe()
	inflight := make(chan *http.Response, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/collections/slow/profiles", "application/octet-stream", pr)
		if err != nil {
			t.Error(err)
			inflight <- nil
			return
		}
		inflight <- resp
	}()
	// Wait until the stalled upload holds the token.
	waitFor(t, func() bool {
		return srv.Registry().Snapshot().Gauges["server.admission.uploads.inflight"].Value == 1
	})

	resp := post(t, ts, "other", encodeProfile(t, synthProfile(0, 0, 1)))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second upload while saturated: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("shed response missing Retry-After")
	}
	if counter(srv, "server.shed") != 1 || counter(srv, "server.shed.uploads") != 1 {
		t.Errorf("shed counters = %d/%d, want 1/1",
			counter(srv, "server.shed"), counter(srv, "server.shed.uploads"))
	}

	// Release the stalled upload (clean EOF: the truncated body is simply
	// rejected); the token frees and service resumes.
	pw.Close()
	if r := <-inflight; r != nil {
		r.Body.Close()
	}
	mustUpload(t, ts, "other", encodeProfile(t, synthProfile(0, 0, 1)))
}

// gatedOpen is an OpenProfile seam whose reads block until released —
// the controllable slow merge.
type gatedOpen struct {
	started chan struct{} // closed... no: signaled once per open
	release chan struct{}
}

func (g *gatedOpen) open(path string) (io.ReadCloser, error) {
	select {
	case g.started <- struct{}{}:
	default:
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	return faultio.WithCloser(&gatedReader{f: f, release: g.release}, f), nil
}

type gatedReader struct {
	f       *os.File
	release chan struct{}
}

func (r *gatedReader) Read(p []byte) (int, error) {
	<-r.release
	return r.f.Read(p)
}

// TestMergeAdmissionShed holds the single merge slot with a gated merge
// of one collection, then checks a query needing a second merge is shed
// with 503 + Retry-After while a query joining the in-flight merge is
// not.
func TestMergeAdmissionShed(t *testing.T) {
	gate := &gatedOpen{started: make(chan struct{}, 16), release: make(chan struct{})}
	srv, ts := newTestServer(t, func(cfg *Config) {
		cfg.MaxConcurrentMerges = 1
		cfg.OpenProfile = gate.open
	})
	mustUpload(t, ts, "a", encodeProfile(t, synthProfile(0, 0, 100)))
	mustUpload(t, ts, "b", encodeProfile(t, synthProfile(0, 0, 200)))

	leader := make(chan []byte, 1)
	go func() { leader <- mustGet(t, ts, "/collections/a/topdown") }()
	<-gate.started // the merge of "a" is running, holding the only slot

	// A different collection needs a fresh merge: shed.
	status, _ := get(t, ts, "/collections/b/topdown")
	if status != http.StatusServiceUnavailable {
		t.Fatalf("query needing second merge: status %d, want 503", status)
	}
	if counter(srv, "server.shed.merges") != 1 {
		t.Errorf("shed.merges = %d, want 1", counter(srv, "server.shed.merges"))
	}

	// The same collection joins the in-flight merge: NOT shed.
	joiner := make(chan []byte, 1)
	go func() { joiner <- mustGet(t, ts, "/collections/a/topdown") }()

	close(gate.release)
	a1, a2 := <-leader, <-joiner
	if !bytes.Equal(a1, a2) {
		t.Error("joiner saw different bytes than leader")
	}
	if got := counter(srv, "server.merges"); got != 1 {
		t.Errorf("merges = %d after leader+joiner, want 1 (singleflight)", got)
	}
	// Capacity freed: "b" now merges fine.
	mustGet(t, ts, "/collections/b/topdown")
}

// TestRequestDeadlineCancelsMerge sets a short per-request deadline over
// a merge slowed by the open seam: the query must fail with 504, the
// abandoned merge must be canceled (not left running or cached), and
// once the slowness clears the same query must succeed with a fresh
// merge — the cache unpoisoned by the timeout.
func TestRequestDeadlineCancelsMerge(t *testing.T) {
	gate := &gatedOpen{started: make(chan struct{}, 16), release: make(chan struct{})}
	srv, ts := newTestServer(t, func(cfg *Config) {
		cfg.RequestTimeout = 100 * time.Millisecond
		cfg.OpenProfile = gate.open
	})
	mustUpload(t, ts, "col", encodeProfile(t, synthProfile(0, 0, 100)))

	// The gate stays shut through the first query: its merge cannot make
	// progress, the request deadline expires.
	status, _ := get(t, ts, "/collections/col/topdown")
	if status != http.StatusGatewayTimeout {
		t.Fatalf("deadline query: status %d, want 504", status)
	}
	// Open the gate: the abandoned merge can now observe its canceled
	// context and must be torn down, not cached.
	close(gate.release)
	waitFor(t, func() bool { return counter(srv, "server.merges.canceled") == 1 })
	if srv.cache.len() != 0 {
		t.Fatal("canceled merge left a cache entry")
	}

	// Service recovers without restart: the next query merges fresh
	// (reads now flow) and serves the correct view.
	body := mustGet(t, ts, "/collections/col/topdown")
	db := offlineMerge(t, []*cct.Profile{synthProfile(0, 0, 100)})
	var offline bytes.Buffer
	if err := view.WriteTopDownJSON(&offline, db.Merged, defaultOptions(db.Event)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, offline.Bytes()) {
		t.Error("post-timeout view differs from offline merge")
	}
}

// TestENOSPCReadOnlyDegradeRecover fills the injected disk mid-service:
// the failing upload answers 507 and flips the server read-only; further
// uploads shed with 503 + Retry-After while queries keep serving;
// /readyz goes not-ready; clearing the disk recovers automatically —
// no restart — via the probe on the next writability check.
func TestENOSPCReadOnlyDegradeRecover(t *testing.T) {
	full := faultio.NewENOSPCFS(nil)
	srv, ts := newTestServer(t, func(cfg *Config) {
		cfg.FS = full
		cfg.ReadonlyProbeInterval = -1 // probe on every check
	})
	mustUpload(t, ts, "col", encodeProfile(t, synthProfile(0, 0, 100)))
	healthyView := mustGet(t, ts, "/collections/col/topdown")

	if status, _ := get(t, ts, "/readyz"); status != http.StatusOK {
		t.Fatalf("healthy /readyz: status %d, want 200", status)
	}

	full.SetFull(true)
	// The write fails with ENOSPC: storage's fault, not the payload's.
	resp := post(t, ts, "col", encodeProfile(t, synthProfile(0, 1, 200)))
	resp.Body.Close()
	if resp.StatusCode != http.StatusInsufficientStorage {
		t.Fatalf("upload onto full disk: status %d, want 507", resp.StatusCode)
	}
	if counter(srv, "server.readonly.entered") != 1 {
		t.Fatalf("readonly.entered = %d, want 1", counter(srv, "server.readonly.entered"))
	}

	// Read-only mode: uploads shed with Retry-After, queries still serve.
	resp = post(t, ts, "col", encodeProfile(t, synthProfile(0, 2, 300)))
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("upload while read-only: status %d Retry-After %q, want 503 + hint",
			resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	if counter(srv, "server.shed.readonly") == 0 {
		t.Error("shed.readonly not counted")
	}
	if got := mustGet(t, ts, "/collections/col/topdown"); !bytes.Equal(got, healthyView) {
		t.Error("read-only mode changed the served view")
	}
	status, body := get(t, ts, "/readyz")
	if status != http.StatusServiceUnavailable {
		t.Fatalf("/readyz while read-only: status %d, want 503", status)
	}
	if !strings.Contains(string(body), "read-only") {
		t.Errorf("/readyz reasons missing read-only: %s", body)
	}
	// Liveness is unaffected.
	if status, _ := get(t, ts, "/healthz"); status != http.StatusOK {
		t.Errorf("/healthz while read-only: status %d, want 200", status)
	}

	// Space frees: the next writability check probes and recovers.
	full.SetFull(false)
	if status, _ := get(t, ts, "/readyz"); status != http.StatusOK {
		t.Fatalf("/readyz after space freed: status %d, want 200 (probe should recover)", status)
	}
	if counter(srv, "server.readonly.recovered") != 1 {
		t.Fatalf("readonly.recovered = %d, want 1", counter(srv, "server.readonly.recovered"))
	}
	mustUpload(t, ts, "col", encodeProfile(t, synthProfile(0, 3, 400)))
}

// TestDiskQuota507 bounds a collection's bytes: an upload that would
// cross the quota is rejected with 507 and nothing lands; one that fits
// exactly is accepted. The total quota spans collections.
func TestDiskQuota507(t *testing.T) {
	payload := encodeProfile(t, synthProfile(0, 0, 100))
	srv, ts := newTestServer(t, func(cfg *Config) {
		cfg.MaxCollectionBytes = int64(len(payload)) // exactly one profile
	})

	// Exact fit: accepted.
	mustUpload(t, ts, "col", payload)

	// The collection is at quota: the next upload (different bytes, so
	// not a duplicate) is rejected before it can land.
	resp := post(t, ts, "col", encodeProfile(t, synthProfile(0, 1, 200)))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusInsufficientStorage {
		t.Fatalf("upload past quota: status %d, want 507", resp.StatusCode)
	}
	if got := fileCount(t, srv, "col"); got != 1 {
		t.Fatalf("quota-rejected upload landed: %d files, want 1", got)
	}
	if counter(srv, "server.uploads.quota_rejected") == 0 {
		t.Error("quota_rejected not counted")
	}
	// Another collection is unaffected by the per-collection quota.
	mustUpload(t, ts, "col2", payload)

	// Total quota: a fresh server bounded to one profile across ALL
	// collections rejects the second collection's upload.
	_, ts2 := newTestServer(t, func(cfg *Config) {
		cfg.MaxTotalBytes = int64(len(payload))
	})
	mustUpload(t, ts2, "a", payload)
	resp2 := post(t, ts2, "b", encodeProfile(t, synthProfile(0, 1, 200)))
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusInsufficientStorage {
		t.Fatalf("upload past total quota: status %d, want 507", resp2.StatusCode)
	}
}

// TestDuplicateUploadIdempotent is the double-count regression: an
// identical re-POST answers 200 against the existing file, advances
// nothing, and the merged view stays byte-identical — including when the
// retry happens against a restarted server that rebuilt its digest index
// from disk.
func TestDuplicateUploadIdempotent(t *testing.T) {
	dataDir := t.TempDir()
	payload := encodeProfile(t, synthProfile(0, 0, 100))

	srv1, err := New(Config{DataDir: dataDir})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(srv1.Handler())
	first := mustUpload(t, ts1, "col", payload)
	cleanView := mustGet(t, ts1, "/collections/col/topdown")

	// Same bytes again: 200, same file, no new file, generation frozen.
	resp := post(t, ts1, "col", payload)
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("duplicate upload: status %d, want 200: %s", resp.StatusCode, raw)
	}
	var dup UploadResult
	if err := json.Unmarshal(raw, &dup); err != nil {
		t.Fatal(err)
	}
	if !dup.Duplicate || dup.File != first.File || dup.Digest != first.Digest || dup.Generation != first.Generation {
		t.Fatalf("duplicate identity mismatch: first %+v, dup %+v", first, dup)
	}
	if got := fileCount(t, srv1, "col"); got != 1 {
		t.Fatalf("duplicate landed a file: %d files, want 1", got)
	}
	// Generation unchanged → the cached view still serves; and the bytes
	// are the single-upload bytes, not double-counted.
	if got := mustGet(t, ts1, "/collections/col/topdown"); !bytes.Equal(got, cleanView) {
		t.Error("view changed after duplicate upload (samples double-counted?)")
	}
	if counter(srv1, "server.uploads.duplicates") != 1 {
		t.Errorf("uploads.duplicates = %d, want 1", counter(srv1, "server.uploads.duplicates"))
	}
	ts1.Close()

	// Restart: the digest index is rebuilt from the files, so the retry
	// is still a no-op.
	srv2, err := New(Config{DataDir: dataDir})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	resp2 := post(t, ts2, "col", payload)
	raw2, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("duplicate upload after restart: status %d, want 200: %s", resp2.StatusCode, raw2)
	}
	if got := fileCount(t, srv2, "col"); got != 1 {
		t.Fatalf("post-restart duplicate landed a file: %d files, want 1", got)
	}
	if got := mustGet(t, ts2, "/collections/col/topdown"); !bytes.Equal(got, cleanView) {
		t.Error("post-restart view differs after duplicate upload")
	}
}

// TestTmpSweepAtStartup crashes the filesystem mid-upload so an orphaned
// temp file stays behind (the dead "process" cannot clean up), then
// checks a restart sweeps it, counts the sweep, and leaves the published
// profiles untouched.
func TestTmpSweepAtStartup(t *testing.T) {
	dataDir := t.TempDir()
	srv1, err := New(Config{DataDir: dataDir})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(srv1.Handler())
	mustUpload(t, ts1, "col", encodeProfile(t, synthProfile(0, 0, 100)))
	ts1.Close()

	// Crash a few bytes into the next upload: the temp file lands, the
	// cleanup Remove fails (the process is "dead").
	crash := faultio.NewCrashFS(profio.OSFS{}, 16)
	srv2, err := New(Config{DataDir: dataDir, FS: crash})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	resp := post(t, ts2, "col", encodeProfile(t, synthProfile(0, 1, 200)))
	resp.Body.Close()
	ts2.Close()
	orphans := tmpCount(t, filepath.Join(dataDir, "col"))
	if orphans == 0 {
		t.Fatal("crash left no orphaned tmp file; the sweep has nothing to prove")
	}

	// Restart: orphans swept, counted, published content intact.
	srv3, err := New(Config{DataDir: dataDir})
	if err != nil {
		t.Fatal(err)
	}
	ts3 := httptest.NewServer(srv3.Handler())
	defer ts3.Close()
	if got := tmpCount(t, filepath.Join(dataDir, "col")); got != 0 {
		t.Errorf("%d orphaned tmp files survived the sweep", got)
	}
	if got := counter(srv3, "server.tmp.swept"); got != uint64(orphans) {
		t.Errorf("tmp.swept = %d, want %d", got, orphans)
	}
	if got := fileCount(t, srv3, "col"); got != 1 {
		t.Errorf("published profiles after sweep = %d, want 1", got)
	}
	mustGet(t, ts3, "/collections/col/topdown")
}

// tmpCount counts TmpSuffix files in dir.
func tmpCount(t testing.TB, dir string) int {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), profio.TmpSuffix) {
			n++
		}
	}
	return n
}

// TestDigestsEndpoint checks the resume surface: digests of everything
// uploaded, 404 for unknown collections.
func TestDigestsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, nil)
	a := mustUpload(t, ts, "col", encodeProfile(t, synthProfile(0, 0, 100)))
	b := mustUpload(t, ts, "col", encodeProfile(t, synthProfile(0, 1, 200)))

	var got struct {
		Collection string   `json:"collection"`
		Digests    []string `json:"digests"`
	}
	if err := json.Unmarshal(mustGet(t, ts, "/collections/col/digests"), &got); err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{a.Digest: true, b.Digest: true}
	if got.Collection != "col" || len(got.Digests) != 2 || !want[got.Digests[0]] || !want[got.Digests[1]] {
		t.Fatalf("digests = %+v, want both of %v", got, want)
	}
	if status, _ := get(t, ts, "/collections/nope/digests"); status != http.StatusNotFound {
		t.Errorf("digests of unknown collection: status %d, want 404", status)
	}
}

// TestUploadClientDisconnect cancels an upload mid-body: the server must
// answer the (unseen) 408/400 class, land nothing, and keep the
// collection serviceable.
func TestUploadClientDisconnect(t *testing.T) {
	srv, ts := newTestServer(t, nil)
	mustUpload(t, ts, "col", encodeProfile(t, synthProfile(0, 0, 100)))

	ctx, cancel := context.WithCancel(context.Background())
	pr, pw := io.Pipe()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/collections/col/profiles", pr)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		close(done)
	}()
	pw.Write([]byte("partial"))
	cancel()
	pw.Close()
	<-done

	waitFor(t, func() bool { return fileCount(t, srv, "col") == 1 })
	mustUpload(t, ts, "col", encodeProfile(t, synthProfile(0, 1, 200)))
	mustGet(t, ts, "/collections/col/topdown")
}
