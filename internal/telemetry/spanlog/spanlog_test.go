package spanlog

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestCompleteAndWrite(t *testing.T) {
	l := New()
	start := time.Now()
	l.Complete("decode", "ingest", 1, 3, start, 5*time.Millisecond, map[string]any{"file": "a.dcprof"})
	l.Instant("quarantine", "ingest", 1, 3, nil)
	l.Counter("queue", 1, map[string]any{"depth": 4})

	var buf bytes.Buffer
	if err := l.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Dur  int64          `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid trace-event JSON: %v", err)
	}
	if len(doc.TraceEvents) != 3 || doc.DisplayTimeUnit != "ms" {
		t.Fatalf("doc = %+v", doc)
	}
	var sawX, sawI, sawC bool
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "X":
			sawX = true
			if e.Name != "decode" || e.Dur < 4000 || e.Pid != 1 || e.Tid != 3 {
				t.Errorf("complete event = %+v", e)
			}
			if e.Args["file"] != "a.dcprof" {
				t.Errorf("args = %v", e.Args)
			}
		case "i":
			sawI = true
		case "C":
			sawC = true
		}
	}
	if !sawX || !sawI || !sawC {
		t.Errorf("missing phases: X=%v i=%v C=%v", sawX, sawI, sawC)
	}
}

func TestSpanDefer(t *testing.T) {
	l := New()
	func() {
		defer l.Span("stage", "cat", 0, 1, nil)()
		time.Sleep(2 * time.Millisecond)
	}()
	events := l.Events()
	if len(events) != 1 || events[0].Ph != "X" || events[0].Dur < 1000 {
		t.Fatalf("events = %+v", events)
	}
}

func TestEventsSortedByTs(t *testing.T) {
	l := New()
	base := time.Now()
	l.Complete("late", "", 0, 0, base.Add(10*time.Millisecond), time.Millisecond, nil)
	l.Complete("early", "", 0, 0, base, time.Millisecond, nil)
	ev := l.Events()
	if len(ev) != 2 || ev[0].Name != "early" || ev[1].Name != "late" {
		t.Fatalf("events not sorted: %+v", ev)
	}
}

func TestNilLogNoops(t *testing.T) {
	var l *Log
	l.Complete("a", "", 0, 0, time.Now(), time.Second, nil)
	l.Instant("b", "", 0, 0, nil)
	l.Counter("c", 0, nil)
	l.Span("d", "", 0, 0, nil)()
	if l.Len() != 0 || l.Events() != nil {
		t.Error("nil log should record nothing")
	}
}

func TestEmptyLogWritesValidDocument(t *testing.T) {
	var buf bytes.Buffer
	if err := New().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if _, ok := doc["traceEvents"].([]any); !ok {
		t.Errorf("traceEvents missing or wrong type: %s", buf.String())
	}
}

func TestBoundedRing(t *testing.T) {
	l := NewBounded(4)
	for i := 0; i < 7; i++ {
		l.Range("e", "c", 0, 0, int64(i), 1, map[string]any{"i": i})
	}
	if l.Len() != 4 {
		t.Fatalf("len = %d, want ring capacity 4", l.Len())
	}
	ev := l.Events()
	if len(ev) != 4 {
		t.Fatalf("events = %d, want 4", len(ev))
	}
	// Oldest three overwritten: the survivors are ts 3..6 in order.
	for i, e := range ev {
		if e.Ts != int64(i+3) {
			t.Errorf("event %d ts = %d, want %d", i, e.Ts, i+3)
		}
	}

	// Unbounded default unaffected.
	u := NewBounded(0)
	for i := 0; i < 10; i++ {
		u.Instant("x", "", 0, 0, nil)
	}
	if u.Len() != 10 {
		t.Errorf("max<=0 should be unbounded, len = %d", u.Len())
	}
}

func TestBoundedConcurrentAppend(t *testing.T) {
	l := NewBounded(64)
	const goroutines, per = 8, 100
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				l.Complete("e", "c", 0, g, time.Now(), time.Microsecond, nil)
			}
		}(g)
	}
	wg.Wait()
	if l.Len() != 64 {
		t.Errorf("bounded len = %d, want 64", l.Len())
	}
	if got := len(l.Events()); got != 64 {
		t.Errorf("events = %d, want 64", got)
	}
}

func TestConcurrentAppend(t *testing.T) {
	l := New()
	const goroutines, per = 16, 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				l.Complete("e", "c", 0, g, time.Now(), time.Microsecond, nil)
			}
		}(g)
	}
	wg.Wait()
	if l.Len() != goroutines*per {
		t.Errorf("len = %d, want %d", l.Len(), goroutines*per)
	}
}
