// Package spanlog records pipeline stage spans and emits them in the
// Chrome trace-event JSON format, so any trace viewer that understands it
// (chrome://tracing, Perfetto, speedscope) can render the profiler's own
// timeline — which stage of an ingest ran when, on which worker, for how
// long. The schedviz lesson applies: a profiling tool that emits a
// standard timeline format gets a visualizer for free.
//
// Only the "X" (complete), "i" (instant), and "C" (counter) phases of the
// format are produced; that subset is enough for stage timelines and is
// accepted by every viewer. Timestamps are microseconds relative to the
// log's creation, so traces start near t=0 regardless of wall clock.
package spanlog

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"time"
)

// Event is one trace event in Chrome's JSON schema. Field names follow the
// format specification, not Go convention.
type Event struct {
	// Name labels the event; Cat groups related events ("decode", "merge").
	Name string `json:"name"`
	Cat  string `json:"cat,omitempty"`
	// Ph is the phase: "X" complete, "i" instant, "C" counter.
	Ph string `json:"ph"`
	// Ts is the start timestamp and Dur the duration, both in microseconds.
	Ts  int64 `json:"ts"`
	Dur int64 `json:"dur,omitempty"`
	// Pid and Tid place the event on the viewer's process/thread rows.
	Pid int `json:"pid"`
	Tid int `json:"tid"`
	// Args carries free-form metadata shown when the event is selected.
	Args map[string]any `json:"args,omitempty"`
}

// Log is a concurrency-safe trace-event accumulator. The zero value is not
// usable; call New. A nil *Log is a valid "tracing off" log: every method
// no-ops, so instrumented code needs no conditionals.
type Log struct {
	mu     sync.Mutex
	events []Event
	base   time.Time
	// max bounds the log when > 0: the ring keeps only the last max
	// events. next is the overwrite position once full.
	max  int
	next int
	full bool
}

// New creates an empty log whose timestamps are relative to now.
func New() *Log { return &Log{base: time.Now()} }

// NewBounded creates a log that retains only the last max events — the
// shape a long-running server wants: a trace of "the last N seconds",
// bounded in memory, always ready to dump, never needing rotation. A
// max <= 0 leaves the log unbounded.
func NewBounded(max int) *Log {
	l := New()
	l.max = max
	return l
}

// now returns the log-relative timestamp in microseconds.
func (l *Log) now() int64 { return time.Since(l.base).Microseconds() }

// Complete records a finished span from start to start+dur on the given
// pid/tid row. No-op on nil.
func (l *Log) Complete(name, cat string, pid, tid int, start time.Time, dur time.Duration, args map[string]any) {
	if l == nil {
		return
	}
	ts := start.Sub(l.base).Microseconds()
	if ts < 0 {
		ts = 0
	}
	us := dur.Microseconds()
	if us < 1 {
		us = 1 // zero-width spans vanish in viewers
	}
	l.append(Event{Name: name, Cat: cat, Ph: "X", Ts: ts, Dur: us, Pid: pid, Tid: tid, Args: args})
}

// Range records a span at an absolute log-relative position: startUS
// microseconds after the log's creation, durUS long. It exists for spans
// measured on a clock other than the host's — detected program phases in
// simulated time, mapped one simulated cycle to one microsecond — where
// Complete's wall-clock anchoring does not apply. No-op on nil.
func (l *Log) Range(name, cat string, pid, tid int, startUS, durUS int64, args map[string]any) {
	if l == nil {
		return
	}
	if startUS < 0 {
		startUS = 0
	}
	if durUS < 1 {
		durUS = 1 // zero-width spans vanish in viewers
	}
	l.append(Event{Name: name, Cat: cat, Ph: "X", Ts: startUS, Dur: durUS, Pid: pid, Tid: tid, Args: args})
}

// Span starts a span now and returns a function that completes it; use
// with defer. No-op on nil.
func (l *Log) Span(name, cat string, pid, tid int, args map[string]any) func() {
	if l == nil {
		return func() {}
	}
	start := time.Now()
	return func() { l.Complete(name, cat, pid, tid, start, time.Since(start), args) }
}

// Instant records a point-in-time marker (a quarantine decision, a CRC
// failure). No-op on nil.
func (l *Log) Instant(name, cat string, pid, tid int, args map[string]any) {
	if l == nil {
		return
	}
	l.append(Event{Name: name, Cat: cat, Ph: "i", Ts: l.now(), Pid: pid, Tid: tid, Args: args})
}

// Counter records a sampled counter value; viewers draw these as stacked
// area tracks (queue depths over time). No-op on nil.
func (l *Log) Counter(name string, pid int, values map[string]any) {
	if l == nil {
		return
	}
	l.append(Event{Name: name, Ph: "C", Ts: l.now(), Pid: pid, Args: values})
}

func (l *Log) append(e Event) {
	l.mu.Lock()
	if l.max > 0 && len(l.events) == l.max {
		l.events[l.next] = e
		l.next = (l.next + 1) % l.max
		l.full = true
	} else {
		l.events = append(l.events, e)
	}
	l.mu.Unlock()
}

// Len returns the number of recorded events.
func (l *Log) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.events)
}

// Events returns a copy of the recorded events sorted by timestamp (ties
// keep insertion order), the order WriteTo emits. On a bounded log the
// copy unrolls the ring so insertion order is preserved before the sort.
func (l *Log) Events() []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	out := make([]Event, 0, len(l.events))
	if l.full {
		out = append(out, l.events[l.next:]...)
		out = append(out, l.events[:l.next]...)
	} else {
		out = append(out, l.events...)
	}
	l.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].Ts < out[j].Ts })
	return out
}

// document is the top-level trace file shape viewers expect.
type document struct {
	TraceEvents     []Event `json:"traceEvents"`
	DisplayTimeUnit string  `json:"displayTimeUnit"`
}

// WriteJSON emits the log as one trace-event JSON document.
func (l *Log) WriteJSON(w io.Writer) error {
	events := l.Events()
	if events == nil {
		events = []Event{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(document{TraceEvents: events, DisplayTimeUnit: "ms"})
}
