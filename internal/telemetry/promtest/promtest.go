// Package promtest is a small, strict, hand-rolled parser for the
// Prometheus text exposition format (version 0.0.4) — the independent
// check on WritePromText's output. It is deliberately NOT the encoder
// run backwards: it re-derives the format rules from the specification
// (TYPE declarations, the metric-name charset, label syntax, histogram
// series suffixes) so an encoder bug cannot hide behind a mirrored
// decoder bug. The telemetry unit tests and the dcprofd scrape e2e test
// both validate through it.
//
// Beyond syntax, Parse enforces the semantic invariants a real scraper
// relies on: every sample belongs to a declared family of the right
// shape, histogram buckets are cumulative and non-decreasing with the
// le="+Inf" bucket equal to _count, and no family is declared twice.
package promtest

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Sample is one sample line.
type Sample struct {
	// Name is the full sample name as exposed (including _bucket/_sum/
	// _count suffixes for histogram series).
	Name string
	// Labels holds the label pairs ({} and none parse the same).
	Labels map[string]string
	Value  float64
}

// Family is one declared metric family and its samples.
type Family struct {
	Name    string // as declared on the # TYPE line
	Type    string // "counter", "gauge", "histogram", "summary", "untyped"
	Samples []Sample
}

// Doc is a parsed exposition document.
type Doc struct {
	Families map[string]*Family
}

// Parse parses and validates one exposition document.
func Parse(data []byte) (*Doc, error) {
	doc := &Doc{Families: map[string]*Family{}}
	for ln, line := range strings.Split(string(data), "\n") {
		line = strings.TrimRight(line, "\r")
		if line == "" {
			continue
		}
		fail := func(format string, args ...any) error {
			return fmt.Errorf("line %d: %s: %q", ln+1, fmt.Sprintf(format, args...), line)
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) < 2 {
				return nil, fail("bare comment marker")
			}
			switch fields[1] {
			case "HELP":
				if len(fields) < 3 || !validName(fields[2]) {
					return nil, fail("malformed HELP")
				}
			case "TYPE":
				if len(fields) != 4 || !validName(fields[2]) {
					return nil, fail("malformed TYPE")
				}
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return nil, fail("unknown metric type %q", fields[3])
				}
				if _, dup := doc.Families[fields[2]]; dup {
					return nil, fail("family %s declared twice", fields[2])
				}
				doc.Families[fields[2]] = &Family{Name: fields[2], Type: fields[3]}
			default:
				// Free-form comment: legal, ignored.
			}
			continue
		}

		s, err := parseSample(line)
		if err != nil {
			return nil, fail("%v", err)
		}
		fam := doc.familyOf(s.Name)
		if fam == nil {
			return nil, fail("sample %s has no declared family", s.Name)
		}
		if fam.Type == "histogram" {
			if s.Name == fam.Name {
				return nil, fail("histogram family %s sampled without a series suffix", fam.Name)
			}
		} else if s.Name != fam.Name {
			return nil, fail("sample %s does not match family %s", s.Name, fam.Name)
		}
		fam.Samples = append(fam.Samples, s)
	}
	for _, fam := range doc.Families {
		if fam.Type == "histogram" {
			if err := validateHistogram(fam); err != nil {
				return nil, fmt.Errorf("histogram %s: %w", fam.Name, err)
			}
		}
	}
	return doc, nil
}

// familyOf resolves a sample name to its declared family: an exact match
// for scalar families, or the _bucket/_sum/_count-stripped base when that
// base is a declared histogram.
func (d *Doc) familyOf(sample string) *Family {
	if fam, ok := d.Families[sample]; ok {
		return fam
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base, found := strings.CutSuffix(sample, suffix)
		if !found {
			continue
		}
		if fam, ok := d.Families[base]; ok && fam.Type == "histogram" {
			return fam
		}
	}
	return nil
}

// Value returns the value of the single unlabeled sample named name, and
// whether such a sample exists.
func (d *Doc) Value(name string) (float64, bool) {
	fam := d.familyOf(name)
	if fam == nil {
		return 0, false
	}
	for _, s := range fam.Samples {
		if s.Name == name && len(s.Labels) == 0 {
			return s.Value, true
		}
	}
	return 0, false
}

// CounterNames lists every declared counter family, sorted.
func (d *Doc) CounterNames() []string {
	var out []string
	for name, fam := range d.Families {
		if fam.Type == "counter" {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// validateHistogram checks the invariants scrapers assume: bucket counts
// cumulative and non-decreasing in le order, exactly one le="+Inf" bucket
// equal to _count, and _sum/_count present.
func validateHistogram(fam *Family) error {
	type bucket struct {
		le  float64
		n   float64
		inf bool
	}
	var (
		buckets    []bucket
		sum, count float64
		haveSum    bool
		haveCount  bool
	)
	for _, s := range fam.Samples {
		switch s.Name {
		case fam.Name + "_bucket":
			le, ok := s.Labels["le"]
			if !ok {
				return fmt.Errorf("bucket without le label")
			}
			if le == "+Inf" {
				buckets = append(buckets, bucket{le: math.Inf(1), n: s.Value, inf: true})
				continue
			}
			f, err := strconv.ParseFloat(le, 64)
			if err != nil {
				return fmt.Errorf("unparseable le %q", le)
			}
			buckets = append(buckets, bucket{le: f, n: s.Value})
		case fam.Name + "_sum":
			sum, haveSum = s.Value, true
		case fam.Name + "_count":
			count, haveCount = s.Value, true
		}
	}
	if !haveSum || !haveCount {
		return fmt.Errorf("missing _sum or _count")
	}
	if len(buckets) == 0 || !buckets[len(buckets)-1].inf {
		return fmt.Errorf("buckets must end with le=\"+Inf\"")
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i].le <= buckets[i-1].le {
			return fmt.Errorf("le bounds not strictly increasing at index %d", i)
		}
		if buckets[i].n < buckets[i-1].n {
			return fmt.Errorf("bucket counts not cumulative at le=%v: %v < %v",
				buckets[i].le, buckets[i].n, buckets[i-1].n)
		}
	}
	if inf := buckets[len(buckets)-1].n; inf != count {
		return fmt.Errorf("+Inf bucket %v != count %v", inf, count)
	}
	if count > 0 && sum < 0 {
		return fmt.Errorf("negative sum %v", sum)
	}
	return nil
}

// parseSample parses `name[{labels}] value [timestamp]`.
func parseSample(line string) (Sample, error) {
	s := Sample{Labels: map[string]string{}}
	i := 0
	for i < len(line) && isNameRune(line[i], i) {
		i++
	}
	if i == 0 {
		return s, fmt.Errorf("missing metric name")
	}
	s.Name = line[:i]
	rest := line[i:]
	if strings.HasPrefix(rest, "{") {
		end := strings.Index(rest, "}")
		if end < 0 {
			return s, fmt.Errorf("unterminated label set")
		}
		if err := parseLabels(rest[1:end], s.Labels); err != nil {
			return s, err
		}
		rest = rest[end+1:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return s, fmt.Errorf("want `value [timestamp]` after name, got %q", rest)
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return s, fmt.Errorf("unparseable value %q", fields[0])
	}
	s.Value = v
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return s, fmt.Errorf("unparseable timestamp %q", fields[1])
		}
	}
	return s, nil
}

// parseLabels parses `k1="v1",k2="v2"` (trailing comma tolerated, as the
// format allows).
func parseLabels(body string, into map[string]string) error {
	body = strings.TrimSuffix(strings.TrimSpace(body), ",")
	if body == "" {
		return nil
	}
	for len(body) > 0 {
		eq := strings.Index(body, "=")
		if eq <= 0 {
			return fmt.Errorf("malformed label pair in %q", body)
		}
		key := strings.TrimSpace(body[:eq])
		if !validName(key) {
			return fmt.Errorf("bad label name %q", key)
		}
		body = strings.TrimSpace(body[eq+1:])
		if !strings.HasPrefix(body, `"`) {
			return fmt.Errorf("label value for %s not quoted", key)
		}
		val, rest, err := scanQuoted(body)
		if err != nil {
			return err
		}
		into[key] = val
		body = strings.TrimPrefix(strings.TrimSpace(rest), ",")
		body = strings.TrimSpace(body)
	}
	return nil
}

// scanQuoted consumes a double-quoted string honoring \" \\ \n escapes.
func scanQuoted(s string) (val, rest string, err error) {
	var b strings.Builder
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if i+1 >= len(s) {
				return "", "", fmt.Errorf("dangling escape in %q", s)
			}
			i++
			switch s[i] {
			case 'n':
				b.WriteByte('\n')
			case '\\', '"':
				b.WriteByte(s[i])
			default:
				return "", "", fmt.Errorf("unknown escape \\%c", s[i])
			}
		case '"':
			return b.String(), s[i+1:], nil
		default:
			b.WriteByte(s[i])
		}
	}
	return "", "", fmt.Errorf("unterminated quoted string in %q", s)
}

func isNameRune(c byte, pos int) bool {
	return c == '_' || c == ':' ||
		(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
		(c >= '0' && c <= '9' && pos > 0)
}

func validName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		if !isNameRune(name[i], i) {
			return false
		}
	}
	return true
}
