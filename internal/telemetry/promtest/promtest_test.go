package promtest

import (
	"strings"
	"testing"
)

func TestParseValidDocument(t *testing.T) {
	doc, err := Parse([]byte(strings.Join([]string{
		`# HELP up whether the target is up`,
		`# TYPE up gauge`,
		`up 1`,
		`# TYPE requests_total counter`,
		`requests_total 42`,
		`# TYPE lat histogram`,
		`lat_bucket{le="10"} 2`,
		`lat_bucket{le="100"} 5`,
		`lat_bucket{le="+Inf"} 6`,
		`lat_sum 640`,
		`lat_count 6`,
		``,
	}, "\n")))
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := doc.Value("requests_total"); !ok || v != 42 {
		t.Errorf("requests_total = %v (%v)", v, ok)
	}
	if got := doc.CounterNames(); len(got) != 1 || got[0] != "requests_total" {
		t.Errorf("CounterNames = %v", got)
	}
	fam := doc.Families["lat"]
	if fam == nil || len(fam.Samples) != 5 {
		t.Fatalf("histogram samples = %+v", fam)
	}
}

func TestParseRejects(t *testing.T) {
	bad := map[string]string{
		"undeclared sample":     "nope 1\n",
		"duplicate family":      "# TYPE a counter\n# TYPE a counter\na 1\n",
		"unknown type":          "# TYPE a zebra\n",
		"bad value":             "# TYPE a gauge\na fish\n",
		"bucket without le":     "# TYPE h histogram\nh_bucket 1\nh_sum 1\nh_count 1\n",
		"non-cumulative":        "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n",
		"inf != count":          "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 9\n",
		"no inf bucket":         "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
		"missing sum":           "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_count 1\n",
		"descending le":         "# TYPE h histogram\nh_bucket{le=\"9\"} 1\nh_bucket{le=\"2\"} 1\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 1\n",
		"unquoted label":        "# TYPE a gauge\na{x=y} 1\n",
		"unterminated labels":   "# TYPE a gauge\na{x=\"y\" 1\n",
		"histogram bare sample": "# TYPE h histogram\nh 1\nh_bucket{le=\"+Inf\"} 0\nh_sum 0\nh_count 0\n",
		"scalar with suffix":    "# TYPE a gauge\na_bucket{le=\"1\"} 1\n",
	}
	for name, doc := range bad {
		if _, err := Parse([]byte(doc)); err == nil {
			t.Errorf("%s: parse accepted invalid document:\n%s", name, doc)
		}
	}
}

func TestParseLabelEscapes(t *testing.T) {
	doc, err := Parse([]byte("# TYPE a gauge\na{path=\"C:\\\\tmp\",msg=\"line\\nbreak \\\"quoted\\\"\"} 3\n"))
	if err != nil {
		t.Fatal(err)
	}
	s := doc.Families["a"].Samples[0]
	if s.Labels["path"] != `C:\tmp` || s.Labels["msg"] != "line\nbreak \"quoted\"" {
		t.Errorf("labels = %#v", s.Labels)
	}
	if s.Value != 3 {
		t.Errorf("value = %v", s.Value)
	}
}

func TestParseTimestampsAndInf(t *testing.T) {
	doc, err := Parse([]byte("# TYPE a gauge\na 1.5 1700000000000\n# TYPE b gauge\nb +Inf\n"))
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := doc.Value("a"); v != 1.5 {
		t.Errorf("a = %v", v)
	}
}
