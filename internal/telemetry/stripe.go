package telemetry

import "unsafe"

// pointerOf exposes a stack variable's address for stripe picking. This is
// the package's only use of unsafe, and nothing is ever dereferenced
// through it — the address is consumed as an integer entropy source only.
func pointerOf(b *byte) uintptr { return uintptr(unsafe.Pointer(b)) }
