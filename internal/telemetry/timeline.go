package telemetry

// Timeline is the profiler profiling itself over time: a fixed-capacity
// ring of registry snapshots taken on a ticker, so a long-running
// process (dcprofd) can serve its own recent history as a windowed time
// series — the same window/diff idiom the temporal subsystem applies to
// application profiles, applied to the server's own counters. The BSC
// tools lesson (Servat et al.): time-series views of a system's own
// counters are what turn raw telemetry into diagnosis — a cache
// stampede, a shed storm, or a merge spike is a shape in the series,
// invisible in a cumulative total.
//
// The ring holds points, not deltas: consumers diff adjacent points
// with Snapshot.Delta to recover rates over any sub-window. Memory is
// bounded by capacity x instruments; at the default 300 points / 1s
// interval the server carries its last five minutes.

import (
	"sync"
	"time"
)

// TimelinePoint is one timestamped registry snapshot.
type TimelinePoint struct {
	At       time.Time `json:"at"`
	Snapshot Snapshot  `json:"snapshot"`
}

// Timeline is a concurrency-safe ring buffer of registry snapshots. A
// nil *Timeline is a valid "history off" timeline: Record no-ops and
// the query methods return nothing.
type Timeline struct {
	reg *Registry

	mu   sync.Mutex
	pts  []TimelinePoint // ring storage, cap == capacity
	next int             // overwrite position once full
	full bool

	records *Counter
}

// NewTimeline creates a timeline over reg holding the last `capacity`
// snapshots (<=0 uses 300). Recording is self-accounted under
// "telemetry.timeline.records" in the same registry — the snapshot
// stream observes its own cost like every other subsystem.
func NewTimeline(reg *Registry, capacity int) *Timeline {
	if capacity <= 0 {
		capacity = 300
	}
	return &Timeline{
		reg:     reg,
		pts:     make([]TimelinePoint, 0, capacity),
		records: reg.Counter("telemetry.timeline.records"),
	}
}

// Record snapshots the registry and appends the point, overwriting the
// oldest once the ring is full. No-op on nil.
func (t *Timeline) Record(at time.Time) {
	if t == nil {
		return
	}
	t.records.Inc()
	pt := TimelinePoint{At: at, Snapshot: t.reg.Snapshot()}
	t.mu.Lock()
	if len(t.pts) < cap(t.pts) {
		t.pts = append(t.pts, pt)
	} else {
		t.pts[t.next] = pt
		t.next = (t.next + 1) % cap(t.pts)
		t.full = true
	}
	t.mu.Unlock()
}

// Start records on every tick of interval until the returned stop
// function is called. Stop is idempotent. On a nil timeline the returned
// stop is a no-op.
func (t *Timeline) Start(interval time.Duration) (stop func()) {
	if t == nil {
		return func() {}
	}
	done := make(chan struct{})
	go func() {
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case now := <-tick.C:
				t.Record(now)
			case <-done:
				return
			}
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(done) }) }
}

// Len reports how many points the ring currently holds.
func (t *Timeline) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.pts)
}

// Points returns every retained point in chronological order.
func (t *Timeline) Points() []TimelinePoint {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]TimelinePoint, 0, len(t.pts))
	if t.full {
		out = append(out, t.pts[t.next:]...)
		out = append(out, t.pts[:t.next]...)
	} else {
		out = append(out, t.pts...)
	}
	return out
}

// Window returns the retained points at or after since, chronological.
func (t *Timeline) Window(since time.Time) []TimelinePoint {
	pts := t.Points()
	for i, p := range pts {
		if !p.At.Before(since) {
			return pts[i:]
		}
	}
	return nil
}
