package telemetry

// Prometheus text exposition (format version 0.0.4): the encoder behind
// dcprofd's GET /metrics. The registry's instruments map directly onto
// the Prometheus data model — Counter -> counter, Gauge -> a pair of
// gauges (level and high-water), Histogram -> histogram with cumulative
// le-labeled buckets plus exact-extreme gauges — so any scrape stack
// (Prometheus, VictoriaMetrics, Grafana agent) can ingest the server's
// self-telemetry without an adapter. Instrument names use dots as layer
// separators ("server.cache.hits"); exposition sanitizes them to the
// metric-name charset ("server_cache_hits"). Families are emitted in
// sorted order and the whole document is a pure function of the
// snapshot, so two encodings of one snapshot are byte-identical — what
// lets the scrape tests diff text instead of parsing twice.

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// PromContentType is the Content-Type a /metrics response should carry.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// SanitizeMetricName maps an instrument name onto the Prometheus metric
// charset [a-zA-Z_:][a-zA-Z0-9_:]*: every other rune becomes '_', and a
// leading digit gets a '_' prefix. An empty name becomes "_".
func SanitizeMetricName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 1)
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if r >= '0' && r <= '9' && i == 0 {
			b.WriteByte('_')
			b.WriteRune(r)
			continue
		}
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

// WritePromText encodes the snapshot in the Prometheus text format.
//
//   - Counters are suffixed "_total" per convention.
//   - Gauges emit two series: the level and "<name>_max" (the tracked
//     high-water mark, which Prometheus cannot reconstruct from samples).
//   - Histograms emit cumulative "<name>_bucket{le=...}" series ending in
//     le="+Inf", plus "_sum" and "_count", and — when non-empty — the
//     exact "<name>_min"/"<name>_max" extremes as gauges.
func WritePromText(w io.Writer, s Snapshot) error {
	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}

	for _, name := range sortedKeys(s.Counters) {
		n := SanitizeMetricName(name) + "_total"
		p("# TYPE %s counter\n%s %s\n", n, n, strconv.FormatUint(s.Counters[name], 10))
	}
	for _, name := range sortedKeys(s.Gauges) {
		v := s.Gauges[name]
		n := SanitizeMetricName(name)
		p("# TYPE %s gauge\n%s %s\n", n, n, strconv.FormatInt(v.Value, 10))
		p("# TYPE %s_max gauge\n%s_max %s\n", n, n, strconv.FormatInt(v.Max, 10))
	}
	for _, name := range sortedKeys(s.Histograms) {
		v := s.Histograms[name]
		n := SanitizeMetricName(name)
		p("# TYPE %s histogram\n", n)
		cum := uint64(0)
		for b, c := range v.Counts {
			cum += c
			le := "+Inf"
			if b < len(v.Bounds) {
				le = strconv.FormatUint(v.Bounds[b], 10)
			}
			p("%s_bucket{le=%q} %d\n", n, le, cum)
		}
		p("%s_sum %d\n%s_count %d\n", n, v.Sum, n, v.Count)
		if v.Count > 0 {
			p("# TYPE %s_min gauge\n%s_min %d\n", n, n, v.Min)
			p("# TYPE %s_max gauge\n%s_max %d\n", n, n, v.Max)
		}
	}
	return err
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Delta returns the change from prev to s: counters and histogram
// buckets/sums/counts subtract (an instrument absent from prev, or one
// that went backwards — a restart — contributes its current value);
// gauges keep their current level and high-water, since a level has no
// meaningful difference. Histogram Min/Max stay the lifetime extremes
// (the bounded buckets cannot recover a windowed extreme), and the
// derived quantiles are recomputed over the delta'd buckets — the
// "activity since the previous snapshot" view /debug/vars and the
// timeline diffs serve.
func (s Snapshot) Delta(prev Snapshot) Snapshot {
	out := Snapshot{
		Counters:   make(map[string]uint64, len(s.Counters)),
		Gauges:     make(map[string]GaugeValue, len(s.Gauges)),
		Histograms: make(map[string]HistogramValue, len(s.Histograms)),
	}
	for name, cur := range s.Counters {
		if p, ok := prev.Counters[name]; ok && p <= cur {
			out.Counters[name] = cur - p
		} else {
			out.Counters[name] = cur
		}
	}
	for name, cur := range s.Gauges {
		out.Gauges[name] = cur
	}
	for name, cur := range s.Histograms {
		d := HistogramValue{
			Bounds: append([]uint64(nil), cur.Bounds...),
			Counts: append([]uint64(nil), cur.Counts...),
			Count:  cur.Count,
			Sum:    cur.Sum,
			Min:    cur.Min,
			Max:    cur.Max,
		}
		if p, ok := prev.Histograms[name]; ok && p.Count <= cur.Count && len(p.Counts) == len(cur.Counts) {
			for b := range d.Counts {
				if p.Counts[b] <= d.Counts[b] {
					d.Counts[b] -= p.Counts[b]
				}
			}
			d.Count = cur.Count - p.Count
			if p.Sum <= cur.Sum {
				d.Sum = cur.Sum - p.Sum
			}
		}
		d.refreshQuantiles()
		out.Histograms[name] = d
	}
	return out
}
