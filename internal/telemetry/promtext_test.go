package telemetry

import (
	"bytes"
	"testing"
	"time"

	"dcprof/internal/telemetry/promtest"
)

func TestSanitizeMetricName(t *testing.T) {
	cases := map[string]string{
		"server.cache.hits":      "server_cache_hits",
		"already_fine":           "already_fine",
		"weird-name with spaces": "weird_name_with_spaces",
		"7starts.with.digit":     "_7starts_with_digit",
		"":                       "_",
		"a:b":                    "a:b",
	}
	for in, want := range cases {
		if got := SanitizeMetricName(in); got != want {
			t.Errorf("SanitizeMetricName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestWritePromTextParses(t *testing.T) {
	r := New()
	r.Counter("server.uploads.accepted").Add(7)
	r.Counter("server.shed").Add(0)
	r.Gauge("server.admission.merges.inflight").Set(2)
	h := r.Histogram("server.http.topdown.latency_us", []uint64{10, 100, 1000})
	for _, v := range []uint64{3, 42, 97, 5000} {
		h.Observe(v)
	}

	var buf bytes.Buffer
	if err := WritePromText(&buf, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	doc, err := promtest.Parse(buf.Bytes())
	if err != nil {
		t.Fatalf("encoder output does not parse: %v\n%s", err, buf.Bytes())
	}

	if v, ok := doc.Value("server_uploads_accepted_total"); !ok || v != 7 {
		t.Errorf("counter = %v (present %v), want 7", v, ok)
	}
	if v, ok := doc.Value("server_admission_merges_inflight"); !ok || v != 2 {
		t.Errorf("gauge = %v (present %v), want 2", v, ok)
	}
	if v, ok := doc.Value("server_http_topdown_latency_us_count"); !ok || v != 4 {
		t.Errorf("histogram count = %v (present %v), want 4", v, ok)
	}
	if v, ok := doc.Value("server_http_topdown_latency_us_min"); !ok || v != 3 {
		t.Errorf("histogram min = %v (present %v), want 3", v, ok)
	}
	if v, ok := doc.Value("server_http_topdown_latency_us_max"); !ok || v != 5000 {
		t.Errorf("histogram max = %v (present %v), want 5000", v, ok)
	}
	fam := doc.Families["server_http_topdown_latency_us"]
	if fam == nil || fam.Type != "histogram" {
		t.Fatalf("histogram family missing or wrong type: %+v", fam)
	}

	// Determinism: one snapshot encodes byte-identically twice.
	var again bytes.Buffer
	if err := WritePromText(&again, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Error("encoding is not deterministic for an unchanged registry")
	}
}

func TestPromTextEmptySnapshot(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePromText(&buf, New().Snapshot()); err != nil {
		t.Fatal(err)
	}
	if _, err := promtest.Parse(buf.Bytes()); err != nil {
		t.Fatalf("empty exposition does not parse: %v", err)
	}
}

func TestHistogramMinMax(t *testing.T) {
	r := New()
	h := r.Histogram("h", []uint64{8, 64})
	for _, v := range []uint64{9, 3, 77, 12} {
		h.Observe(v)
	}
	hv := r.Snapshot().Histograms["h"]
	if hv.Min != 3 || hv.Max != 77 {
		t.Errorf("min/max = %d/%d, want 3/77", hv.Min, hv.Max)
	}

	empty := r.Histogram("empty", nil)
	_ = empty
	ev := r.Snapshot().Histograms["empty"]
	if ev.Min != 0 || ev.Max != 0 {
		t.Errorf("empty histogram min/max = %d/%d, want 0/0", ev.Min, ev.Max)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := New()
	h := r.Histogram("lat", []uint64{10, 100, 1000})
	// 100 observations of 5: every quantile must be pinned to [Min,Max],
	// not smeared across the first bucket's [0,10) span.
	for i := 0; i < 100; i++ {
		h.Observe(5)
	}
	hv := r.Snapshot().Histograms["lat"]
	if hv.P50 != 5 || hv.P99 != 5 {
		t.Errorf("constant series quantiles = p50 %v p99 %v, want 5", hv.P50, hv.P99)
	}

	// Overflow-bucket quantile must interpolate toward the exact Max, not
	// clamp at the last finite bound (1000).
	h2 := r.Histogram("over", []uint64{10})
	for i := 0; i < 10; i++ {
		h2.Observe(5000)
	}
	v2 := r.Snapshot().Histograms["over"]
	if v2.P99 <= 10 || v2.P99 > 5000 {
		t.Errorf("overflow p99 = %v, want in (10, 5000]", v2.P99)
	}
	if q := v2.Quantile(1); q != 5000 {
		t.Errorf("Quantile(1) = %v, want exact max 5000", q)
	}
	if q := v2.Quantile(0); q != 5000 {
		t.Errorf("Quantile(0) = %v, want exact min 5000", q)
	}

	// A spread distribution: quantiles are ordered and inside [Min, Max].
	h3 := r.Histogram("spread", Pow2Bounds(12))
	for v := uint64(1); v <= 1000; v++ {
		h3.Observe(v)
	}
	v3 := r.Snapshot().Histograms["spread"]
	if !(v3.P50 <= v3.P95 && v3.P95 <= v3.P99) {
		t.Errorf("quantiles out of order: %v %v %v", v3.P50, v3.P95, v3.P99)
	}
	if v3.P50 < float64(v3.Min) || v3.P99 > float64(v3.Max) {
		t.Errorf("quantiles escape [min,max]: p50 %v p99 %v min %d max %d",
			v3.P50, v3.P99, v3.Min, v3.Max)
	}
	// p50 of uniform 1..1000 must land near 500 (bucket interpolation is
	// coarse; pow-2 buckets put 500 in (256,512]).
	if v3.P50 < 256 || v3.P50 > 512 {
		t.Errorf("uniform p50 = %v, want within its (256,512] bucket", v3.P50)
	}

	if q := (HistogramValue{}).Quantile(0.5); q != 0 {
		t.Errorf("empty quantile = %v, want 0", q)
	}
}

func TestAbsorbCarriesMinMax(t *testing.T) {
	src := New()
	src.Histogram("h", []uint64{10}).Observe(3)
	src.Histogram("h", nil).Observe(500)

	dst := New()
	dst.Histogram("h", []uint64{10}).Observe(40)
	dst.Absorb(src.Snapshot())

	hv := dst.Snapshot().Histograms["h"]
	if hv.Min != 3 || hv.Max != 500 {
		t.Errorf("absorbed min/max = %d/%d, want 3/500", hv.Min, hv.Max)
	}
}

func TestSnapshotDelta(t *testing.T) {
	r := New()
	c := r.Counter("c")
	h := r.Histogram("h", []uint64{10})
	g := r.Gauge("g")
	c.Add(5)
	h.Observe(3)
	g.Set(7)
	prev := r.Snapshot()

	c.Add(2)
	h.Observe(40)
	g.Set(1)
	cur := r.Snapshot()

	d := cur.Delta(prev)
	if d.Counters["c"] != 2 {
		t.Errorf("counter delta = %d, want 2", d.Counters["c"])
	}
	if d.Gauges["g"].Value != 1 || d.Gauges["g"].Max != 7 {
		t.Errorf("gauge in delta = %+v, want current level 1 / max 7", d.Gauges["g"])
	}
	hd := d.Histograms["h"]
	if hd.Count != 1 || hd.Sum != 40 {
		t.Errorf("histogram delta count/sum = %d/%d, want 1/40", hd.Count, hd.Sum)
	}
	if hd.Counts[0] != 0 || hd.Counts[1] != 1 {
		t.Errorf("histogram delta buckets = %v, want [0 1]", hd.Counts)
	}

	// An instrument that went backwards (restart) falls back to current.
	reset := Snapshot{Counters: map[string]uint64{"c": 100}}
	if d := cur.Delta(reset); d.Counters["c"] != 7 {
		t.Errorf("reset counter delta = %d, want current total 7", d.Counters["c"])
	}
	// Delta against an empty snapshot is the current totals.
	if d := cur.Delta(Snapshot{}); d.Counters["c"] != 7 || d.Histograms["h"].Count != 2 {
		t.Errorf("delta vs empty lost totals: %+v", d)
	}
}

func TestTimelineRingAndWindow(t *testing.T) {
	r := New()
	c := r.Counter("ticks")
	tl := NewTimeline(r, 4)
	base := time.Now()
	for i := 0; i < 6; i++ {
		c.Inc()
		tl.Record(base.Add(time.Duration(i) * time.Second))
	}
	if tl.Len() != 4 {
		t.Fatalf("ring len = %d, want 4", tl.Len())
	}
	pts := tl.Points()
	// Oldest two dropped: points are t+2s..t+5s in order.
	for i, p := range pts {
		want := base.Add(time.Duration(i+2) * time.Second)
		if !p.At.Equal(want) {
			t.Errorf("point %d at %v, want %v", i, p.At, want)
		}
	}
	// Counters in the points are monotone — each snapshot saw one more tick.
	for i := 1; i < len(pts); i++ {
		if pts[i].Snapshot.Counters["ticks"] <= pts[i-1].Snapshot.Counters["ticks"] {
			t.Errorf("timeline counters not monotone at %d: %v", i, pts)
		}
	}
	if got := len(tl.Window(base.Add(4 * time.Second))); got != 2 {
		t.Errorf("window kept %d points, want 2", got)
	}
	if got := len(tl.Window(base.Add(time.Hour))); got != 0 {
		t.Errorf("future window kept %d points, want 0", got)
	}

	// Self-accounting: the registry counts its own timeline records.
	if n := r.Snapshot().Counters["telemetry.timeline.records"]; n != 6 {
		t.Errorf("timeline.records = %d, want 6", n)
	}

	var nilTL *Timeline
	nilTL.Record(time.Now())
	if nilTL.Len() != 0 || nilTL.Points() != nil {
		t.Error("nil timeline should no-op")
	}
	nilTL.Start(time.Second)()
}

func TestTimelineTicker(t *testing.T) {
	r := New()
	tl := NewTimeline(r, 16)
	stop := tl.Start(2 * time.Millisecond)
	defer stop()
	deadline := time.Now().Add(2 * time.Second)
	for tl.Len() < 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	stop()
	stop() // idempotent
	if tl.Len() < 3 {
		t.Fatalf("ticker recorded %d points in 2s, want >= 3", tl.Len())
	}
	n := tl.Len()
	time.Sleep(10 * time.Millisecond)
	if tl.Len() != n {
		t.Error("timeline kept recording after stop")
	}
}
