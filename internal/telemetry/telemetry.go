// Package telemetry is the profiler's self-observability layer: a
// dependency-free, concurrency-safe registry of counters, gauges, and
// bounded histograms that the measurement, ingestion, and I/O layers
// update on their hot paths and the tools snapshot on exit.
//
// The paper's headline claim is that data-centric profiling stays cheap
// (<3% time, ~7% space, §6); this package is what lets the reproduction
// measure its *own* cost rather than assert it. The design follows the
// same discipline the profiler itself uses:
//
//   - Write path: lock-free. Every instrument stripes its state over a
//     small array of cache-line-padded atomic cells; a writer picks a
//     stripe from a per-goroutine hint, so concurrent simulated threads
//     (goroutines) almost never contend on the same cache line.
//   - Read path: snapshot-on-read. Snapshot() folds the stripes into
//     plain values; readers never block writers.
//   - Registration: get-or-create under a mutex, intended to happen once
//     per instrument at attach/open time, never per event.
//
// All instrument methods are nil-receiver safe: a layer whose telemetry
// is not wired holds nil instruments and pays one predictable branch per
// site, which keeps "telemetry off" within noise of not having the calls
// at all (the BENCH_telemetry gate in scripts/check.sh enforces <5%).
package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// stripes is the number of independent cells each instrument's write path
// is spread over. A power of two a little above typical core counts keeps
// the stripe-pick mask cheap and false sharing rare without bloating every
// instrument (each stripe is one cache line).
var stripes = nextPow2(runtime.GOMAXPROCS(0))

func nextPow2(n int) int {
	p := 4
	for p < n {
		p <<= 1
	}
	if p > 64 {
		p = 64
	}
	return p
}

// cell is one padded stripe: the value plus enough padding to keep two
// stripes out of one 64-byte cache line.
type cell struct {
	v atomic.Uint64
	_ [7]uint64
}

// stripeHint derives a stable-ish per-goroutine stripe index from the
// address of a stack variable. Goroutine stacks are disjoint, so distinct
// goroutines land on distinct stripes with high probability; the hint is
// allowed to change (stack growth moves it), correctness never depends on
// it — any stripe is valid, the hint only spreads contention.
func stripeHint() int {
	var b byte
	p := pointerOf(&b)
	return int((p>>6)^(p>>16)) & (stripes - 1)
}

// Counter is a monotonically increasing striped counter.
type Counter struct {
	name  string
	cells []cell
}

// Add increments the counter by n. Safe for concurrent use; no-op on nil.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.cells[stripeHint()].v.Add(n)
}

// Inc is Add(1).
func (c *Counter) Inc() { c.Add(1) }

// Value folds the stripes into the counter's current total.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	var t uint64
	for i := range c.cells {
		t += c.cells[i].v.Load()
	}
	return t
}

// Gauge is an instantaneous level (queue depth, live blocks) that also
// tracks the maximum level it ever reached — the number capacity planning
// wants — without the reader having to poll.
type Gauge struct {
	name string
	v    atomic.Int64
	max  atomic.Int64
}

// Add moves the gauge by delta (negative to decrease) and updates the
// tracked maximum. No-op on nil.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	now := g.v.Add(delta)
	for {
		m := g.max.Load()
		if now <= m || g.max.CompareAndSwap(m, now) {
			return
		}
	}
}

// Set replaces the gauge's level, updating the maximum.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
	for {
		m := g.max.Load()
		if v <= m || g.max.CompareAndSwap(m, v) {
			return
		}
	}
}

// Value returns the current level.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Max returns the highest level observed since creation.
func (g *Gauge) Max() int64 {
	if g == nil {
		return 0
	}
	return g.max.Load()
}

// Histogram is a bounded histogram over explicit upper bounds: an
// observation lands in the first bucket whose bound is >= the value, or in
// the implicit overflow bucket. Bucket counts and the running sum are
// striped like counters, so Observe is lock-free. The exact minimum and
// maximum ever observed ride alongside the buckets: after warm-up they are
// two atomic loads per Observe, and they are what keeps quantile estimates
// honest at the edges — a p99 in the +Inf bucket interpolates toward the
// true maximum instead of clamping to the last finite bound.
type Histogram struct {
	name   string
	bounds []uint64
	// counts is laid out bucket-major: counts[b*stripes+s].
	counts []cell
	sum    []cell
	n      []cell
	// minv starts at ^uint64(0) so the first observation always wins.
	minv atomic.Uint64
	maxv atomic.Uint64
}

// Observe records one value. Safe for concurrent use; no-op on nil.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	s := stripeHint()
	b := sort.Search(len(h.bounds), func(i int) bool { return h.bounds[i] >= v })
	h.counts[b*stripes+s].v.Add(1)
	h.sum[s].v.Add(v)
	h.n[s].v.Add(1)
	atomicMin(&h.minv, v)
	atomicMax(&h.maxv, v)
}

// atomicMin lowers m to v if v is smaller (CAS loop; usually a single
// load after warm-up, since extremes stop moving).
func atomicMin(m *atomic.Uint64, v uint64) {
	for {
		cur := m.Load()
		if v >= cur || m.CompareAndSwap(cur, v) {
			return
		}
	}
}

// atomicMax raises m to v if v is larger.
func atomicMax(m *atomic.Uint64, v uint64) {
	for {
		cur := m.Load()
		if v <= cur || m.CompareAndSwap(cur, v) {
			return
		}
	}
}

// HistogramValue is a folded histogram snapshot.
type HistogramValue struct {
	// Bounds are the bucket upper bounds; Counts has len(Bounds)+1 entries,
	// the last being the overflow bucket.
	Bounds []uint64 `json:"bounds"`
	Counts []uint64 `json:"counts"`
	// Count and Sum aggregate every observation (Mean = Sum/Count).
	Count uint64 `json:"count"`
	Sum   uint64 `json:"sum"`
	// Min and Max are the exact extreme observations (both 0 when empty).
	// They bound quantile interpolation in the first and overflow buckets.
	Min uint64 `json:"min"`
	Max uint64 `json:"max"`
	// P50, P95, and P99 are bucket-interpolated quantile estimates,
	// derived by Quantile at fold time (0 when empty).
	P50 float64 `json:"p50"`
	P95 float64 `json:"p95"`
	P99 float64 `json:"p99"`
}

// Mean returns the average observed value (0 when empty).
func (v HistogramValue) Mean() float64 {
	if v.Count == 0 {
		return 0
	}
	return float64(v.Sum) / float64(v.Count)
}

// Quantile estimates the q-quantile (q in [0,1]) by linear interpolation
// inside the bucket holding the q*Count-th observation. The exact Min and
// Max tighten the edge buckets: an estimate in the first bucket starts at
// Min rather than 0, and one in the overflow bucket interpolates toward
// Max instead of clamping to the last finite bound. Returns 0 when empty.
func (v HistogramValue) Quantile(q float64) float64 {
	if v.Count == 0 {
		return 0
	}
	if q <= 0 {
		return float64(v.Min)
	}
	if q >= 1 {
		return float64(v.Max)
	}
	rank := q * float64(v.Count)
	cum := 0.0
	for b, n := range v.Counts {
		if n == 0 {
			continue
		}
		next := cum + float64(n)
		if rank > next {
			cum = next
			continue
		}
		lo, hi := float64(v.Min), float64(v.Max)
		if b > 0 && float64(v.Bounds[b-1]) > lo {
			lo = float64(v.Bounds[b-1])
		}
		if b < len(v.Bounds) && float64(v.Bounds[b]) < hi {
			hi = float64(v.Bounds[b])
		}
		if hi < lo {
			hi = lo
		}
		return lo + (hi-lo)*(rank-cum)/float64(n)
	}
	return float64(v.Max)
}

// refreshQuantiles recomputes the derived P50/P95/P99 fields from the
// bucket counts — called wherever a HistogramValue is built or rewritten
// (fold, Delta) so the derived fields never go stale.
func (v *HistogramValue) refreshQuantiles() {
	v.P50 = v.Quantile(0.50)
	v.P95 = v.Quantile(0.95)
	v.P99 = v.Quantile(0.99)
}

// value folds the stripes.
func (h *Histogram) value() HistogramValue {
	out := HistogramValue{
		Bounds: append([]uint64(nil), h.bounds...),
		Counts: make([]uint64, len(h.bounds)+1),
	}
	for b := range out.Counts {
		for s := 0; s < stripes; s++ {
			out.Counts[b] += h.counts[b*stripes+s].v.Load()
		}
	}
	for s := 0; s < stripes; s++ {
		out.Sum += h.sum[s].v.Load()
		out.Count += h.n[s].v.Load()
	}
	if out.Count > 0 {
		out.Min = h.minv.Load()
		out.Max = h.maxv.Load()
	}
	out.refreshQuantiles()
	return out
}

// GaugeValue is a folded gauge snapshot.
type GaugeValue struct {
	Value int64 `json:"value"`
	Max   int64 `json:"max"`
}

// Registry is a named set of instruments. The zero value is not usable;
// call New. A nil *Registry is a valid "telemetry off" registry: its
// lookup methods return nil instruments, whose methods no-op.
type Registry struct {
	mu    sync.Mutex
	ctrs  map[string]*Counter
	gaugs map[string]*Gauge
	hists map[string]*Histogram
}

// New creates an empty registry.
func New() *Registry {
	return &Registry{
		ctrs:  map[string]*Counter{},
		gaugs: map[string]*Gauge{},
		hists: map[string]*Histogram{},
	}
}

// defaultRegistry is the process-wide registry free functions (package
// profio's always-on accounting) and the CLIs share.
var defaultRegistry = New()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }

// Counter returns the named counter, creating it on first use. Returns nil
// on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.ctrs[name]
	if !ok {
		c = &Counter{name: name, cells: make([]cell, stripes)}
		r.ctrs[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gaugs[name]
	if !ok {
		g = &Gauge{name: name}
		r.gaugs[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// upper bounds on first use (later calls may pass nil bounds). Bounds must
// be sorted ascending.
func (r *Registry) Histogram(name string, bounds []uint64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		if !sort.SliceIsSorted(bounds, func(i, j int) bool { return bounds[i] < bounds[j] }) {
			panic(fmt.Sprintf("telemetry: histogram %q bounds not sorted", name))
		}
		h = &Histogram{
			name:   name,
			bounds: append([]uint64(nil), bounds...),
			counts: make([]cell, (len(bounds)+1)*stripes),
			sum:    make([]cell, stripes),
			n:      make([]cell, stripes),
		}
		h.minv.Store(^uint64(0))
		r.hists[name] = h
	}
	return h
}

// Pow2Bounds returns n power-of-two bucket bounds starting at 1 (1, 2, 4,
// ...), the natural shape for depth and size distributions.
func Pow2Bounds(n int) []uint64 {
	out := make([]uint64, n)
	b := uint64(1)
	for i := range out {
		out[i] = b
		b <<= 1
	}
	return out
}

// Snapshot is a point-in-time fold of every instrument, stable under JSON
// (maps marshal with sorted keys).
type Snapshot struct {
	Counters   map[string]uint64         `json:"counters,omitempty"`
	Gauges     map[string]GaugeValue     `json:"gauges,omitempty"`
	Histograms map[string]HistogramValue `json:"histograms,omitempty"`
}

// Snapshot folds every registered instrument. Writers may keep writing
// concurrently; each instrument's fold is internally consistent enough for
// reporting (counters monotone, histogram count >= sum of any prefix seen).
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]uint64{},
		Gauges:     map[string]GaugeValue{},
		Histograms: map[string]HistogramValue{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	ctrs := make([]*Counter, 0, len(r.ctrs))
	for _, c := range r.ctrs {
		ctrs = append(ctrs, c)
	}
	gaugs := make([]*Gauge, 0, len(r.gaugs))
	for _, g := range r.gaugs {
		gaugs = append(gaugs, g)
	}
	hists := make([]*Histogram, 0, len(r.hists))
	for _, h := range r.hists {
		hists = append(hists, h)
	}
	r.mu.Unlock()
	for _, c := range ctrs {
		s.Counters[c.name] = c.Value()
	}
	for _, g := range gaugs {
		s.Gauges[g.name] = GaugeValue{Value: g.Value(), Max: g.Max()}
	}
	for _, h := range hists {
		s.Histograms[h.name] = h.value()
	}
	return s
}

// Filter returns the subset of the snapshot whose instrument names start
// with prefix — how a snapshot endpoint scopes its answer to one layer
// ("server.", "analysis.", "profio.") without the registry having to keep
// per-layer registries. An empty prefix returns the snapshot unchanged.
func (s Snapshot) Filter(prefix string) Snapshot {
	if prefix == "" {
		return s
	}
	out := Snapshot{
		Counters:   map[string]uint64{},
		Gauges:     map[string]GaugeValue{},
		Histograms: map[string]HistogramValue{},
	}
	for name, v := range s.Counters {
		if strings.HasPrefix(name, prefix) {
			out.Counters[name] = v
		}
	}
	for name, v := range s.Gauges {
		if strings.HasPrefix(name, prefix) {
			out.Gauges[name] = v
		}
	}
	for name, v := range s.Histograms {
		if strings.HasPrefix(name, prefix) {
			out.Histograms[name] = v
		}
	}
	return out
}

// NumInstruments returns how many distinct instruments the snapshot holds.
func (s Snapshot) NumInstruments() int {
	return len(s.Counters) + len(s.Gauges) + len(s.Histograms)
}

// Absorb folds another snapshot into r: counters add, gauges take the
// other's value as a delta-less Set (max merges), histograms add
// bucket-wise. It is how a per-operation registry (one streaming load, one
// benchmark run) publishes into a process-wide one without the hot path
// ever writing to two registries.
func (r *Registry) Absorb(s Snapshot) {
	if r == nil {
		return
	}
	for name, v := range s.Counters {
		r.Counter(name).Add(v)
	}
	for name, v := range s.Gauges {
		g := r.Gauge(name)
		g.Set(v.Value)
		// Carry the absorbed maximum even if the level since dropped.
		for {
			m := g.max.Load()
			if v.Max <= m || g.max.CompareAndSwap(m, v.Max) {
				break
			}
		}
	}
	for name, v := range s.Histograms {
		h := r.Histogram(name, v.Bounds)
		for b, n := range v.Counts {
			if n == 0 || b*stripes >= len(h.counts) {
				continue
			}
			h.counts[b*stripes].v.Add(n)
		}
		h.sum[0].v.Add(v.Sum)
		h.n[0].v.Add(v.Count)
		if v.Count > 0 {
			atomicMin(&h.minv, v.Min)
			atomicMax(&h.maxv, v.Max)
		}
	}
}

// WriteJSON writes the snapshot as indented, key-sorted JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
