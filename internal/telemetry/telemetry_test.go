package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	r := New()
	c := r.Counter("x.y")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Errorf("counter = %d, want 42", got)
	}
	if r.Counter("x.y") != c {
		t.Error("same name should return the same counter")
	}
}

func TestCounterConcurrentExact(t *testing.T) {
	r := New()
	c := r.Counter("c")
	const goroutines, per = 32, 10000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*per {
		t.Errorf("counter = %d, want %d (striped adds lost updates)", got, goroutines*per)
	}
}

func TestGaugeTracksMax(t *testing.T) {
	r := New()
	g := r.Gauge("depth")
	g.Add(3)
	g.Add(4)
	g.Add(-5)
	if g.Value() != 2 || g.Max() != 7 {
		t.Errorf("gauge = %d max %d, want 2 max 7", g.Value(), g.Max())
	}
	g.Set(1)
	if g.Value() != 1 || g.Max() != 7 {
		t.Errorf("after Set: gauge = %d max %d, want 1 max 7", g.Value(), g.Max())
	}
}

func TestGaugeConcurrentMax(t *testing.T) {
	r := New()
	g := r.Gauge("g")
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				g.Add(1)
				g.Add(-1)
			}
		}()
	}
	wg.Wait()
	if g.Value() != 0 {
		t.Errorf("gauge = %d, want 0", g.Value())
	}
	if g.Max() < 1 || g.Max() > 16 {
		t.Errorf("max = %d, want within [1,16]", g.Max())
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := New()
	h := r.Histogram("h", []uint64{1, 2, 4, 8})
	for _, v := range []uint64{0, 1, 2, 3, 5, 100} {
		h.Observe(v)
	}
	s := r.Snapshot()
	hv := s.Histograms["h"]
	want := []uint64{2, 1, 1, 1, 1} // <=1:{0,1} <=2:{2} <=4:{3} <=8:{5} over:{100}
	if len(hv.Counts) != len(want) {
		t.Fatalf("counts len = %d, want %d", len(hv.Counts), len(want))
	}
	for i := range want {
		if hv.Counts[i] != want[i] {
			t.Errorf("bucket %d = %d, want %d", i, hv.Counts[i], want[i])
		}
	}
	if hv.Count != 6 || hv.Sum != 111 {
		t.Errorf("count/sum = %d/%d, want 6/111", hv.Count, hv.Sum)
	}
	if m := hv.Mean(); m < 18 || m > 19 {
		t.Errorf("mean = %v, want 111/6", m)
	}
}

func TestHistogramConcurrentExact(t *testing.T) {
	r := New()
	h := r.Histogram("h", Pow2Bounds(10))
	const goroutines, per = 16, 5000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(uint64(i % 7))
			}
		}(g)
	}
	wg.Wait()
	hv := r.Snapshot().Histograms["h"]
	if hv.Count != goroutines*per {
		t.Errorf("count = %d, want %d", hv.Count, goroutines*per)
	}
	var total uint64
	for _, c := range hv.Counts {
		total += c
	}
	if total != hv.Count {
		t.Errorf("bucket sum %d != count %d", total, hv.Count)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	r.Counter("a").Add(1)
	r.Counter("a").Inc()
	r.Gauge("b").Add(1)
	r.Gauge("b").Set(2)
	r.Histogram("c", Pow2Bounds(4)).Observe(9)
	if r.Counter("a").Value() != 0 || r.Gauge("b").Value() != 0 || r.Gauge("b").Max() != 0 {
		t.Error("nil instruments should read zero")
	}
	if n := r.Snapshot().NumInstruments(); n != 0 {
		t.Errorf("nil registry snapshot has %d instruments", n)
	}
	r.Absorb(Snapshot{Counters: map[string]uint64{"x": 1}})
}

func TestSnapshotJSONStable(t *testing.T) {
	r := New()
	r.Counter("b.second").Add(2)
	r.Counter("a.first").Add(1)
	r.Gauge("g").Set(5)
	r.Histogram("h", []uint64{10}).Observe(3)
	var buf1, buf2 bytes.Buffer
	if err := r.Snapshot().WriteJSON(&buf1); err != nil {
		t.Fatal(err)
	}
	if err := r.Snapshot().WriteJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf1.String() != buf2.String() {
		t.Error("snapshot JSON not deterministic")
	}
	if !strings.Contains(buf1.String(), `"a.first": 1`) {
		t.Errorf("unexpected JSON: %s", buf1.String())
	}
	var round Snapshot
	if err := json.Unmarshal(buf1.Bytes(), &round); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v", err)
	}
	if round.Counters["b.second"] != 2 || round.Gauges["g"].Value != 5 {
		t.Errorf("round-trip mismatch: %+v", round)
	}
}

func TestAbsorb(t *testing.T) {
	src := New()
	src.Counter("c").Add(10)
	src.Gauge("g").Set(4)
	src.Gauge("g").Set(2)
	src.Histogram("h", []uint64{1, 4}).Observe(3)
	src.Histogram("h", nil).Observe(100)

	dst := New()
	dst.Counter("c").Add(5)
	dst.Absorb(src.Snapshot())
	dst.Absorb(src.Snapshot()) // absorbing twice doubles counters

	s := dst.Snapshot()
	if s.Counters["c"] != 25 {
		t.Errorf("absorbed counter = %d, want 25", s.Counters["c"])
	}
	if s.Gauges["g"].Max != 4 {
		t.Errorf("absorbed gauge max = %d, want 4", s.Gauges["g"].Max)
	}
	h := s.Histograms["h"]
	if h.Count != 4 || h.Sum != 206 {
		t.Errorf("absorbed histogram count/sum = %d/%d, want 4/206", h.Count, h.Sum)
	}
	if h.Counts[1] != 2 || h.Counts[2] != 2 {
		t.Errorf("absorbed buckets = %v", h.Counts)
	}
}

func TestPow2Bounds(t *testing.T) {
	b := Pow2Bounds(5)
	want := []uint64{1, 2, 4, 8, 16}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("Pow2Bounds(5) = %v", b)
		}
	}
}

func BenchmarkCounterAdd(b *testing.B) {
	c := New().Counter("bench")
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
	if c.Value() == 0 {
		b.Fatal("no adds")
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := New().Histogram("bench", Pow2Bounds(16))
	b.RunParallel(func(pb *testing.PB) {
		i := uint64(0)
		for pb.Next() {
			h.Observe(i % 1000)
			i++
		}
	})
}

func TestSnapshotFilter(t *testing.T) {
	r := New()
	r.Counter("server.cache.hits").Add(3)
	r.Counter("analysis.profiles.merged").Add(7)
	r.Gauge("server.cache.entries").Set(2)
	r.Histogram("server.http.topdown.latency_us", Pow2Bounds(4)).Observe(5)
	s := r.Snapshot()

	f := s.Filter("server.")
	if len(f.Counters) != 1 || f.Counters["server.cache.hits"] != 3 {
		t.Errorf("filtered counters = %v", f.Counters)
	}
	if len(f.Gauges) != 1 || f.Gauges["server.cache.entries"].Value != 2 {
		t.Errorf("filtered gauges = %v", f.Gauges)
	}
	if len(f.Histograms) != 1 {
		t.Errorf("filtered histograms = %v", f.Histograms)
	}
	if got := s.Filter(""); got.NumInstruments() != s.NumInstruments() {
		t.Errorf("empty prefix dropped instruments: %d != %d", got.NumInstruments(), s.NumInstruments())
	}
	if got := s.Filter("nomatch."); got.NumInstruments() != 0 {
		t.Errorf("nomatch prefix kept %d instruments", got.NumInstruments())
	}
}
