package experiments

import (
	"fmt"

	"dcprof/internal/apps/amg"
	"dcprof/internal/apps/bench"
	"dcprof/internal/apps/lulesh"
	"dcprof/internal/apps/micro"
	"dcprof/internal/apps/nw"
	"dcprof/internal/apps/streamcluster"
	"dcprof/internal/apps/sweep3d"
	"dcprof/internal/cct"
	"dcprof/internal/metric"
	"dcprof/internal/pmu"
	"dcprof/internal/profiler"
	"dcprof/internal/view"
)

// Per-app scale selection and PMU configuration for profiled runs. Sampling
// periods are chosen per app so that Table 1's measurement overhead lands in
// the paper's single-digit range at full scale.

func amgCfg(s Scale) amg.Config {
	if s == Full {
		return amg.DefaultConfig()
	}
	return amg.TestConfig()
}

func amgProfile(s Scale) profiler.Config {
	period := uint64(40)
	if s == Quick {
		period = 8
	}
	return profiler.MarkedConfig(pmu.MarkDataFromRMEM, period)
}

func sweepCfg(s Scale) sweep3d.Config {
	if s == Full {
		return sweep3d.DefaultConfig()
	}
	return sweep3d.TestConfig()
}

func sweepProfile(s Scale) profiler.Config {
	c := profiler.DefaultConfig() // IBS, as on the paper's AMD machine
	c.Period = 8192
	if s == Quick {
		c.Period = 64
	}
	return c
}

func luleshCfg(s Scale) lulesh.Config {
	if s == Full {
		return lulesh.DefaultConfig()
	}
	return lulesh.TestConfig()
}

func luleshProfile(s Scale) profiler.Config {
	c := profiler.DefaultConfig() // IBS
	c.Period = 320
	if s == Quick {
		c.Period = 64
	}
	return c
}

func scCfg(s Scale) streamcluster.Config {
	if s == Full {
		return streamcluster.DefaultConfig()
	}
	c := streamcluster.TestConfig()
	c.Points = 2048
	c.Dim = 16
	return c
}

func scProfile(s Scale) profiler.Config {
	period := uint64(2)
	if s == Quick {
		period = 8
	}
	return profiler.MarkedConfig(pmu.MarkDataFromRMEM, period)
}

func nwCfg(s Scale) nw.Config {
	if s == Full {
		return nw.DefaultConfig()
	}
	return nw.TestConfig()
}

func nwProfile(s Scale) profiler.Config {
	period := uint64(2)
	if s == Quick {
		period = 8
	}
	return profiler.MarkedConfig(pmu.MarkDataFromRMEM, period)
}

// Memoized runs.

func (c *Context) amgRun(s Scale, v amg.Variant, profiled bool) *bench.Result {
	key := fmt.Sprintf("amg/%v/%v/%v", s, v, profiled)
	return c.memo(key, func() *bench.Result {
		cfg := amgCfg(s)
		cfg.Variant = v
		if profiled {
			pc := amgProfile(s)
			cfg.Profile = &pc
		}
		return amg.Run(cfg)
	})
}

func (c *Context) sweepRun(s Scale, v sweep3d.Variant, profiled bool) *bench.Result {
	key := fmt.Sprintf("sweep3d/%v/%v/%v", s, v, profiled)
	return c.memo(key, func() *bench.Result {
		cfg := sweepCfg(s)
		cfg.Variant = v
		if profiled {
			pc := sweepProfile(s)
			cfg.Profile = &pc
		}
		return sweep3d.Run(cfg)
	})
}

func (c *Context) luleshRun(s Scale, v lulesh.Variant, profiled bool) *bench.Result {
	key := fmt.Sprintf("lulesh/%v/%v/%v", s, v, profiled)
	return c.memo(key, func() *bench.Result {
		cfg := luleshCfg(s)
		cfg.Variant = v
		if profiled {
			pc := luleshProfile(s)
			cfg.Profile = &pc
		}
		return lulesh.Run(cfg)
	})
}

func (c *Context) scRun(s Scale, v streamcluster.Variant, profiled bool) *bench.Result {
	key := fmt.Sprintf("streamcluster/%v/%v/%v", s, v, profiled)
	return c.memo(key, func() *bench.Result {
		cfg := scCfg(s)
		cfg.Variant = v
		if profiled {
			pc := scProfile(s)
			cfg.Profile = &pc
		}
		return streamcluster.Run(cfg)
	})
}

func (c *Context) nwRun(s Scale, v nw.Variant, profiled bool) *bench.Result {
	key := fmt.Sprintf("nw/%v/%v/%v", s, v, profiled)
	return c.memo(key, func() *bench.Result {
		cfg := nwCfg(s)
		cfg.Variant = v
		if profiled {
			pc := nwProfile(s)
			cfg.Profile = &pc
		}
		return nw.Run(cfg)
	})
}

// ---- Figure 1 ----

func fig1(ctx *Context, s Scale) *Table {
	cfg := micro.DefaultFig1Config()
	if s == Quick {
		cfg.Elems = 1 << 14
		cfg.Iters = 2
	}
	r := micro.RunFig1(cfg)
	t := &Table{ID: "fig1", Title: "per-variable decomposition of the kernel line's latency",
		Header: []string{"variable", "measured share", "paper"}}
	t.AddRow("A[]", pctCell(r.ShareA), "10%")
	t.AddRow("B[]", pctCell(r.ShareB), "5%")
	t.AddRow("C[] (indirect)", pctCell(r.ShareC), "85%")
	t.AddNote("code-centric profiling reports only: line 4 = %s of latency", cyCell(r.LineLatency))
	return t
}

// ---- Figure 2 ----

func fig2(ctx *Context, s Scale) *Table {
	count := 100
	r := micro.RunFig2(count, 8192)
	t := &Table{ID: "fig2", Title: "allocation coalescing by allocation call path",
		Header: []string{"quantity", "value"}}
	t.AddRow("allocations executed", fmt.Sprintf("%d", r.Allocations))
	t.AddRow("allocations tracked", fmt.Sprintf("%d", r.TrackedAllocations))
	t.AddRow("variables in merged profile", fmt.Sprintf("%d", r.VariablesInProfile))
	t.AddRow("samples on coalesced variable", fmt.Sprintf("%d", r.SamplesOnVariable))
	t.AddNote("a trace-based tool records one entry per allocation; the CCT records one per call path")
	return t
}

// ---- Table 1 ----

func table1(ctx *Context, s Scale) *Table {
	t := &Table{ID: "table1", Title: "measurement configuration and overhead",
		Header: []string{"code", "configuration", "monitored events", "exec", "exec+prof", "overhead", "paper", "profile size"}}

	type entry struct {
		name, conf, paper string
		base, prof        *bench.Result
	}
	entries := []entry{}

	amgBase := ctx.amgRun(s, amg.Original, false)
	amgProf := ctx.amgRun(s, amg.Original, true)
	cfgA := amgCfg(s)
	entries = append(entries, entry{"AMG2006",
		fmt.Sprintf("%d MPI x %d thr", cfgA.NodesCount, cfgA.Threads), "+9.6%", amgBase, amgProf})

	swBase := ctx.sweepRun(s, sweep3d.Original, false)
	swProf := ctx.sweepRun(s, sweep3d.Original, true)
	cfgS := sweepCfg(s)
	entries = append(entries, entry{"Sweep3D",
		fmt.Sprintf("%d MPI, no thr", cfgS.RanksX*cfgS.RanksY), "+2.3%", swBase, swProf})

	luBase := ctx.luleshRun(s, lulesh.Original, false)
	luProf := ctx.luleshRun(s, lulesh.Original, true)
	entries = append(entries, entry{"LULESH",
		fmt.Sprintf("%d threads", luleshCfg(s).Threads), "+12%", luBase, luProf})

	scBase := ctx.scRun(s, streamcluster.Original, false)
	scProf := ctx.scRun(s, streamcluster.Original, true)
	entries = append(entries, entry{"Streamcluster",
		fmt.Sprintf("%d threads", scCfg(s).Threads), "+8.0%", scBase, scProf})

	nwBase := ctx.nwRun(s, nw.Original, false)
	nwProf := ctx.nwRun(s, nw.Original, true)
	entries = append(entries, entry{"NW",
		fmt.Sprintf("%d threads", nwCfg(s).Threads), "+3.9%", nwBase, nwProf})

	for _, e := range entries {
		event := "-"
		if len(e.prof.Profiles) > 0 {
			event = e.prof.Profiles[0].Event
		}
		bytes, _ := e.prof.MeasurementBytes()
		t.AddRow(e.name, e.conf, event,
			cyCell(e.base.Cycles), cyCell(e.prof.Cycles),
			pctCell(overheadVs(e.prof, e.base)),
			e.paper,
			fmt.Sprintf("%.2f MB", float64(bytes)/1e6))
	}
	return t
}

// ---- Allocation-tracking ablation ----

func allocTrack(ctx *Context, s Scale) *Table {
	base := ctx.amgRun(s, amg.Original, false)
	run := func(threshold uint64, trampoline, cheapCtx bool) *bench.Result {
		cfg := amgCfg(s)
		pc := profiler.DefaultConfig()
		pc.Period = 1 << 30 // isolate tracking cost from sampling cost
		pc.SizeThreshold = threshold
		pc.UseTrampoline = trampoline
		pc.CheapContext = cheapCtx
		cfg.Profile = &pc
		return amg.Run(cfg)
	}
	t := &Table{ID: "alloctrack", Title: "allocation-tracking overhead on AMG2006 (sampling off)",
		Header: []string{"strategy", "exec", "overhead vs base"}}
	t.AddRow("no profiling", cyCell(base.Cycles), "-")
	naive := run(0, false, false)
	t.AddRow("track all, full unwinds, getcontext", cyCell(naive.Cycles), pctCell(overheadVs(naive, base)))
	thr := run(4096, false, false)
	t.AddRow("+ 4KiB size threshold", cyCell(thr.Cycles), pctCell(overheadVs(thr, base)))
	tramp := run(4096, true, false)
	t.AddRow("+ trampoline suffix unwinds", cyCell(tramp.Cycles), pctCell(overheadVs(tramp, base)))
	all := run(4096, true, true)
	t.AddRow("+ cheap context (all of §4.1.3)", cyCell(all.Cycles), pctCell(overheadVs(all, base)))
	t.AddNote("paper: 150%% with naive tracking, under 10%% with the full strategy")
	return t
}

func overheadVs(prof, base *bench.Result) float64 {
	if base.Cycles == 0 {
		return 0
	}
	return float64(int64(prof.Cycles)-int64(base.Cycles)) / float64(base.Cycles)
}

// ---- Figure 4 ----

func fig4(ctx *Context, s Scale) *Table {
	res := ctx.amgRun(s, amg.Original, true)
	db := res.Merged(0)
	t := &Table{ID: "fig4", Title: "AMG2006 top-down: remote-access attribution",
		Header: []string{"item", "measured", "paper"}}
	shares := view.ClassShares(db.Merged, metric.FromRMEM)
	t.AddRow("heap data share of remote accesses", pctCell(shares[cct.ClassHeap]), "94.9%")

	vars := view.RankVariables(db.Merged, metric.FromRMEM)
	grand := view.MetricTotal(db.Merged, metric.FromRMEM)
	for _, v := range vars {
		if v.Name == "S_diag_j" {
			t.AddRow("S_diag_j share", pctCell(v.Share), "22.2%")
			accs := view.TopAccesses(v.Node, metric.FromRMEM, grand)
			if len(accs) > 0 {
				t.AddRow(fmt.Sprintf("  top access (%s:%d)", accs[0].File, accs[0].Line),
					pctCell(accs[0].Share), "19.3%")
			}
			if len(accs) > 1 {
				t.AddRow(fmt.Sprintf("  2nd access (%s:%d)", accs[1].File, accs[1].Line),
					pctCell(accs[1].Share), "2.9%")
			}
		}
	}
	t.AddNote("event %s; %d thread profiles merged across %d ranks", db.Event, db.Threads, db.Ranks)
	return t
}

// ---- Figure 5 ----

func fig5(ctx *Context, s Scale) *Table {
	res := ctx.amgRun(s, amg.Original, true)
	db := res.Merged(0)
	t := &Table{ID: "fig5", Title: "AMG2006 bottom-up: hypre allocation call sites by remote accesses",
		Header: []string{"call site", "variables", "share"}}
	sites := view.BottomUpCallers(db.Merged, metric.FromRMEM)
	over7 := 0
	for i, site := range sites {
		if i >= 10 {
			break
		}
		name := fmt.Sprintf("%s -> %s @%s:%d", site.Caller, site.Wrapper, site.File, site.Line)
		if len(site.Names) > 0 {
			name += fmt.Sprintf(" (%v)", site.Names)
		}
		t.AddRow(name, fmt.Sprintf("%d", site.Variables), pctCell(site.Share))
		if site.Share > 0.07 {
			over7++
		}
	}
	t.AddNote("sites above 7%%: %d (paper: 7)", over7)
	return t
}

// ---- Table 2 ----

func table2(ctx *Context, s Scale) *Table {
	t := &Table{ID: "table2", Title: "AMG2006 phase times under three placements (simulated cycles)",
		Header: []string{"phases", "initialization", "setup", "solver", "whole program"}}
	rows := []struct {
		label string
		v     amg.Variant
		paper string
	}{
		{"original", amg.Original, "26/420/105 = 551s"},
		{"numactl", amg.NumactlInterleave, "52/426/87 = 565s"},
		{"libnuma", amg.LibnumaSelective, "28/421/80 = 529s"},
	}
	for _, r := range rows {
		res := ctx.amgRun(s, r.v, false)
		t.AddRow(r.label,
			cyCell(res.Phase("initialization")),
			cyCell(res.Phase("setup")),
			cyCell(res.Phase("solver")),
			cyCell(res.Cycles))
	}
	t.AddNote("paper (seconds): original 26/420/105; numactl 52/426/87; libnuma 28/421/80")
	return t
}

// ---- Figure 6 ----

func fig6(ctx *Context, s Scale) *Table {
	res := ctx.sweepRun(s, sweep3d.Original, true)
	db := res.Merged(0)
	t := &Table{ID: "fig6", Title: "Sweep3D: variables by data-fetch latency",
		Header: []string{"variable", "measured share", "paper"}}
	shares := view.ClassShares(db.Merged, metric.Latency)
	t.AddRow("[heap data]", pctCell(shares[cct.ClassHeap]), "97.4%")
	paper := map[string]string{"Flux": "39.4%", "Src": "39.1%", "Face": "14.6%"}
	for _, v := range view.RankVariables(db.Merged, metric.Latency) {
		if p, ok := paper[v.Name]; ok {
			t.AddRow(v.Name, pctCell(v.Share), p)
		}
	}
	return t
}

// ---- Figure 7 ----

func fig7(ctx *Context, s Scale) *Table {
	res := ctx.sweepRun(s, sweep3d.Original, true)
	db := res.Merged(0)
	t := &Table{ID: "fig7", Title: "Sweep3D: hot Flux access and dimension transpose",
		Header: []string{"item", "measured", "paper"}}
	for _, v := range view.RankVariables(db.Merged, metric.Latency) {
		if v.Name != "Flux" {
			continue
		}
		accs := view.TopAccesses(v.Node, metric.Latency, view.MetricTotal(db.Merged, metric.Latency))
		if len(accs) > 0 {
			t.AddRow(fmt.Sprintf("hot access %s:%d share of latency", accs[0].File, accs[0].Line),
				pctCell(accs[0].Share), "28.6%")
		}
	}
	orig := ctx.sweepRun(s, sweep3d.Original, false)
	opt := ctx.sweepRun(s, sweep3d.Transposed, false)
	t.AddRow("run-time improvement from transposes", pctCell(improvement(orig.Cycles, opt.Cycles)), "15%")
	return t
}

// ---- Figure 8 ----

func fig8(ctx *Context, s Scale) *Table {
	res := ctx.luleshRun(s, lulesh.Original, true)
	db := res.Merged(0)
	t := &Table{ID: "fig8", Title: "LULESH: heap variables by latency and remote accesses",
		Header: []string{"item", "measured", "paper"}}
	lat := view.ClassShares(db.Merged, metric.Latency)
	rem := view.ClassShares(db.Merged, metric.FromRMEM)
	t.AddRow("heap share of latency", pctCell(lat[cct.ClassHeap]), "66.8%")
	t.AddRow("heap share of remote accesses", pctCell(rem[cct.ClassHeap]), "94.2%")
	count := 0
	for _, v := range view.RankVariables(db.Merged, metric.Latency) {
		if v.Class != cct.ClassHeap || count >= 7 {
			continue
		}
		t.AddRow("  "+v.Name, pctCell(v.Share), "3.0-9.4%")
		count++
	}
	orig := ctx.luleshRun(s, lulesh.Original, false)
	opt := ctx.luleshRun(s, lulesh.InterleavedHeap, false)
	t.AddRow("interleaved allocation improvement", pctCell(improvement(orig.Cycles, opt.Cycles)), "13%")
	return t
}

// ---- Figure 9 ----

func fig9(ctx *Context, s Scale) *Table {
	res := ctx.luleshRun(s, lulesh.Original, true)
	db := res.Merged(0)
	t := &Table{ID: "fig9", Title: "LULESH: static variable f_elem and its transpose",
		Header: []string{"item", "measured", "paper"}}
	lat := view.ClassShares(db.Merged, metric.Latency)
	t.AddRow("static share of latency", pctCell(lat[cct.ClassStatic]), "23.6%")
	for _, v := range view.RankVariables(db.Merged, metric.Latency) {
		if v.Class == cct.ClassStatic && v.Name == "f_elem" {
			t.AddRow("f_elem share of latency", pctCell(v.Share), "17%")
			break
		}
	}
	orig := ctx.luleshRun(s, lulesh.Original, false)
	opt := ctx.luleshRun(s, lulesh.FElemTransposed, false)
	t.AddRow("f_elem transpose improvement", pctCell(improvement(orig.Cycles, opt.Cycles)), "2.2%")
	return t
}

// ---- Figure 10 ----

func fig10(ctx *Context, s Scale) *Table {
	res := ctx.scRun(s, streamcluster.Original, true)
	db := res.Merged(0)
	t := &Table{ID: "fig10", Title: "Streamcluster: remote accesses and parallel first touch",
		Header: []string{"item", "measured", "paper"}}
	rem := view.ClassShares(db.Merged, metric.FromRMEM)
	t.AddRow("heap share of remote accesses", pctCell(rem[cct.ClassHeap]), "98.2%")
	for _, v := range view.RankVariables(db.Merged, metric.FromRMEM) {
		switch v.Name {
		case "block":
			t.AddRow("block share", pctCell(v.Share), "92.6%")
		case "point.p":
			t.AddRow("point.p share", pctCell(v.Share), "5.5%")
		}
	}
	orig := ctx.scRun(s, streamcluster.Original, false)
	opt := ctx.scRun(s, streamcluster.ParallelInit, false)
	t.AddRow("parallel-init improvement", pctCell(improvement(orig.Cycles, opt.Cycles)), "28%")
	return t
}

// ---- Figure 11 ----

func fig11(ctx *Context, s Scale) *Table {
	res := ctx.nwRun(s, nw.Original, true)
	db := res.Merged(0)
	t := &Table{ID: "fig11", Title: "Needleman-Wunsch: hot variables and interleaving",
		Header: []string{"item", "measured", "paper"}}
	rem := view.ClassShares(db.Merged, metric.FromRMEM)
	t.AddRow("heap share of remote accesses", pctCell(rem[cct.ClassHeap]), "90.9%")
	for _, v := range view.RankVariables(db.Merged, metric.FromRMEM) {
		switch v.Name {
		case "referrence":
			t.AddRow("referrence share", pctCell(v.Share), "61.4%")
		case "input_itemsets":
			t.AddRow("input_itemsets share", pctCell(v.Share), "29.5%")
		}
	}
	orig := ctx.nwRun(s, nw.Original, false)
	opt := ctx.nwRun(s, nw.LibnumaInterleave, false)
	t.AddRow("libnuma interleave improvement", pctCell(improvement(orig.Cycles, opt.Cycles)), "53%")
	return t
}

// ---- Speedups summary ----

func speedups(ctx *Context, s Scale) *Table {
	t := &Table{ID: "speedups", Title: "optimization summary (original vs optimized variants)",
		Header: []string{"benchmark", "optimization", "measured", "paper"}}
	type row struct {
		name, opt, paper string
		orig, best       *bench.Result
	}
	rows := []row{
		{"AMG2006", "selective libnuma interleave", "4%",
			ctx.amgRun(s, amg.Original, false), ctx.amgRun(s, amg.LibnumaSelective, false)},
		{"Sweep3D", "array dimension transposes", "15%",
			ctx.sweepRun(s, sweep3d.Original, false), ctx.sweepRun(s, sweep3d.Transposed, false)},
		{"LULESH", "interleave + f_elem transpose", "13% + 2.2%",
			ctx.luleshRun(s, lulesh.Original, false),
			ctx.luleshRun(s, lulesh.InterleavedHeap|lulesh.FElemTransposed, false)},
		{"Streamcluster", "parallel first-touch init", "28%",
			ctx.scRun(s, streamcluster.Original, false), ctx.scRun(s, streamcluster.ParallelInit, false)},
		{"NW", "libnuma interleaved allocation", "53%",
			ctx.nwRun(s, nw.Original, false), ctx.nwRun(s, nw.LibnumaInterleave, false)},
	}
	for _, r := range rows {
		t.AddRow(r.name, r.opt, pctCell(improvement(r.orig.Cycles, r.best.Cycles)), r.paper)
	}
	return t
}
