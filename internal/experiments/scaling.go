package experiments

import (
	"fmt"
	"os"

	"dcprof/internal/analysis"
	"dcprof/internal/apps/streamcluster"
	"dcprof/internal/cct"
	"dcprof/internal/machine"
	"dcprof/internal/pmu"
	"dcprof/internal/profiler"
	"dcprof/internal/profio"
)

// streamWorkers fixes the streaming-ingest concurrency so the residency
// column is comparable across rows and machines.
const streamWorkers = 4

// scaling quantifies the paper's §2.2 scalability claims directly: as the
// thread count grows, per-thread profiles stay compact (size tracks
// distinct calling contexts, not execution volume), merged databases stay
// near single-thread size (cross-thread CCT coalescing), the
// reduction-tree merge parallelizes, and the streaming ingest pipeline
// holds only a bounded number of decoded profiles resident no matter how
// many files the measurement has.
func scaling(ctx *Context, s Scale) *Table {
	t := &Table{ID: "scaling", Title: "measurement and analysis scalability vs thread count",
		Header: []string{"threads", "profile bytes/thread", "input CCT nodes", "merged nodes",
			"coalescing", "merge seq", "merge par", "stream ingest+merge", "peak resident"}}

	counts := []int{8, 32, 128}
	if s == Quick {
		counts = []int{2, 4}
	}
	for _, threads := range counts {
		cfg := streamcluster.DefaultConfig()
		cfg.Topo = machine.Power7Node()
		cfg.Threads = threads
		cfg.Points = 4096
		cfg.Dim = 16
		cfg.Iters = 1
		if s == Quick {
			cfg = streamcluster.TestConfig()
			cfg.Threads = threads
		}
		pc := profiler.MarkedConfig(pmu.MarkAllMem, 64)
		cfg.Profile = &pc
		res := streamcluster.Run(cfg)

		var bytes int64
		for _, p := range res.Profiles {
			n, err := profio.EncodedSize(p)
			if err == nil {
				bytes += n
			}
		}
		st := analysis.MeasureMerge(res.Profiles)
		streamCell, residentCell := measureStreaming(res.Profiles, threads)
		t.AddRow(
			fmt.Sprintf("%d", threads),
			fmt.Sprintf("%d", bytes/int64(len(res.Profiles))),
			fmt.Sprintf("%d", st.InputNodes),
			fmt.Sprintf("%d", st.MergedNodes),
			fmt.Sprintf("%.1fx", st.CoalescingFactor()),
			st.SequentialMerge.Round(10_000).String(),
			st.ParallelMerge.Round(10_000).String(),
			streamCell,
			residentCell,
		)
	}
	t.AddNote("per-thread size and merged nodes stay flat as threads grow: the compactness the paper needs at Sequoia scale")
	t.AddNote("streaming ingest (%d workers) decodes and merges concurrently; peak resident profiles stay bounded by ~2x workers while thread count grows", streamWorkers)
	return t
}

// measureStreaming writes the profiles to a scratch measurement directory
// and ingests it with the streaming pipeline, reporting its end-to-end
// wall time and peak decoded-profile residency.
func measureStreaming(profiles []*cct.Profile, threads int) (string, string) {
	dir, err := os.MkdirTemp("", "dcprof-scaling")
	if err != nil {
		return "n/a", "n/a"
	}
	defer os.RemoveAll(dir)
	if _, err := profio.WriteDir(dir, profiles); err != nil {
		return "n/a", "n/a"
	}
	_, st, err := analysis.LoadDirStreaming(dir, streamWorkers)
	if err != nil {
		return "n/a", "n/a"
	}
	return st.MergeWall.Round(10_000).String(),
		fmt.Sprintf("%d/%d", st.MaxResident, threads)
}
