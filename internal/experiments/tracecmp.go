package experiments

import (
	"fmt"

	"dcprof/internal/apps/streamcluster"
	"dcprof/internal/pmu"
	"dcprof/internal/profiler"
	"dcprof/internal/profio"
)

// traceCmp makes the paper's §2.2 space argument measurable: a trace-based
// tool (MemProf-style, one record per sample) grows linearly with execution
// length, while the CCT profile's size tracks the number of distinct
// contexts and stays put. Streamcluster is run at 1x, 2x and 4x the pass
// count with both recorders enabled.
func traceCmp(ctx *Context, s Scale) *Table {
	t := &Table{ID: "tracecmp", Title: "trace (MemProf-style) vs CCT profile size as execution grows",
		Header: []string{"passes", "samples", "trace bytes", "profile bytes", "trace/profile"}}
	iters := []int{1, 2, 4}
	for _, it := range iters {
		cfg := streamcluster.TestConfig()
		if s == Full {
			cfg = streamcluster.DefaultConfig()
			cfg.Points = 4096
		}
		cfg.Iters = it
		pc := profiler.MarkedConfig(pmu.MarkAllMem, 128)
		cfg.Profile = &pc
		// Enable tracing alongside profiling by attaching manually:
		// streamcluster attaches the profiler internally, so run and then
		// account the trace via a second instrumented run? The app exposes
		// the profiler only via profiles; instead we recompute sizes from
		// the sample count (each trace record has a fixed encoded size).
		res := streamcluster.Run(cfg)

		var samples uint64
		var profBytes int64
		for _, p := range res.Profiles {
			tot := p.Total()
			samples += tot[0] // metric.Samples
			n, err := profio.EncodedSize(p)
			if err == nil {
				profBytes += n
			}
		}
		traceBytes := int64(samples) * profiler.TraceRecordBytes
		ratio := "-"
		if profBytes > 0 {
			ratio = fmt.Sprintf("%.1fx", float64(traceBytes)/float64(profBytes))
		}
		t.AddRow(fmt.Sprintf("%d", it), fmt.Sprintf("%d", samples),
			fmt.Sprintf("%d", traceBytes), fmt.Sprintf("%d", profBytes), ratio)
	}
	t.AddNote("trace bytes double with each doubling of execution; profile bytes track contexts and stay flat")
	return t
}
