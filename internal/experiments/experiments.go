// Package experiments regenerates every table and figure of the paper's
// evaluation. Each experiment runs the relevant benchmark(s) under the
// appropriate PMU configuration, post-processes the merged profile with the
// same aggregations the paper's GUI screenshots show, and returns a table
// whose rows pair measured values with the paper's reported ones.
//
// Absolute numbers are not expected to match (the substrate is a scaled
// simulator, not the authors' POWER7/Magny-Cours testbeds); the *shape* —
// who wins, by roughly what factor, where crossovers fall — is what each
// experiment checks and what EXPERIMENTS.md records.
package experiments

import (
	"fmt"
	"strings"
	"sync"

	"dcprof/internal/apps/bench"
	"dcprof/internal/telemetry/spanlog"
)

// Scale selects run sizes.
type Scale int

const (
	// Quick uses unit-test-sized configurations (sub-second runs).
	Quick Scale = iota
	// Full uses the case-study configurations (seconds per run).
	Full
)

// String names the scale.
func (s Scale) String() string {
	if s == Full {
		return "full"
	}
	return "quick"
}

// Table is one regenerated table or figure.
type Table struct {
	// ID is the experiment id ("table1", "fig4", ...).
	ID string
	// Title describes the content.
	Title string
	// Header names the columns.
	Header []string
	// Rows hold the cells.
	Rows [][]string
	// Notes carry the paper-vs-measured commentary.
	Notes []string
}

// AddRow appends a row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddNote appends a commentary line.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render formats the table as aligned text.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s — %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			fmt.Fprintf(&b, "%-*s  ", w, c)
		}
		b.WriteString("\n")
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Experiment is one runnable table/figure generator.
type Experiment struct {
	// ID and Title identify it; Paper cites what the paper reported.
	ID, Title, Paper string
	// Run regenerates the table at the given scale using the context's
	// run cache.
	Run func(ctx *Context, s Scale) *Table
}

// Context memoizes benchmark runs so experiments sharing a run (e.g. fig4
// and fig5 both profile AMG) execute it once.
type Context struct {
	mu    sync.Mutex
	runs  map[string]*bench.Result
	spans *spanlog.Log
}

// NewContext creates an empty run cache.
func NewContext() *Context {
	return &Context{runs: make(map[string]*bench.Result)}
}

// SetSpans attaches (or detaches, with nil) a span log: each memoized
// benchmark run is recorded as a complete span, each cache hit as an
// instant, so a trace of one experiment shows which runs it paid for and
// which it inherited.
func (c *Context) SetSpans(l *spanlog.Log) {
	c.mu.Lock()
	c.spans = l
	c.mu.Unlock()
}

// log returns the current span log (possibly nil; spanlog no-ops on nil).
func (c *Context) log() *spanlog.Log {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.spans
}

// memo runs fn once per key.
func (c *Context) memo(key string, fn func() *bench.Result) *bench.Result {
	c.mu.Lock()
	if r, ok := c.runs[key]; ok {
		l := c.spans
		c.mu.Unlock()
		l.Instant("memo "+key, "bench", 0, 0, nil)
		return r
	}
	l := c.spans
	c.mu.Unlock()
	done := l.Span("run "+key, "bench", 0, 0, nil)
	r := fn()
	done()
	c.mu.Lock()
	c.runs[key] = r
	c.mu.Unlock()
	return r
}

// All returns every experiment in presentation order.
func All() []Experiment {
	return []Experiment{
		{ID: "fig1", Title: "data-centric latency decomposition of one source line",
			Paper: "A 10%, B 5%, C 85% of line 4's latency", Run: fig1},
		{ID: "fig2", Title: "allocation coalescing by call path",
			Paper: "100 loop allocations appear as one variable", Run: fig2},
		{ID: "table1", Title: "measurement configuration and overhead",
			Paper: "runtime overhead 2.3-12%, profiles 8-33 MB", Run: table1},
		{ID: "alloctrack", Title: "allocation-tracking overhead ablation (AMG2006, §4.1.3)",
			Paper: "naive +150%; threshold+trampoline <10%", Run: allocTrack},
		{ID: "fig4", Title: "AMG2006 top-down data-centric view (remote accesses)",
			Paper: "heap 94.9%; S_diag_j 22.2% with accesses 19.3%/2.9%", Run: fig4},
		{ID: "fig5", Title: "AMG2006 bottom-up view (allocation call sites)",
			Paper: "7 sites above 7% of remote accesses", Run: fig5},
		{ID: "table2", Title: "AMG2006 phase times under three placements",
			Paper: "orig 26/420/105s; numactl 52/426/87; libnuma 28/421/80", Run: table2},
		{ID: "fig6", Title: "Sweep3D variables by data-fetch latency",
			Paper: "heap 97.4%; Flux 39.4%, Src 39.1%, Face 14.6%", Run: fig6},
		{ID: "fig7", Title: "Sweep3D hot Flux access and layout transpose",
			Paper: "one access 28.6% of latency; transpose −15% run time", Run: fig7},
		{ID: "fig8", Title: "LULESH heap variables (latency and remote accesses)",
			Paper: "heap 66.8% latency / 94.2% remote; top vars 3.0-9.4%; interleave −13%", Run: fig8},
		{ID: "fig9", Title: "LULESH static f_elem and middle-dimension transpose",
			Paper: "statics 23.6% latency, f_elem 17%; transpose −2.2%", Run: fig9},
		{ID: "fig10", Title: "Streamcluster block variable and parallel first touch",
			Paper: "heap 98.2% remote; block 92.6%; parallel init −28%", Run: fig10},
		{ID: "fig11", Title: "Needleman-Wunsch hot variables and interleaving",
			Paper: "heap 90.9% remote; referrence 61.4%, input_itemsets 29.5%; −53%", Run: fig11},
		{ID: "speedups", Title: "optimization summary across the five benchmarks",
			Paper: "improvements of 13-53%", Run: speedups},
		{ID: "scaling", Title: "measurement/analysis scalability vs thread count (§2.2)",
			Paper: "low space overhead; scalable MPI-based reduction-tree merge", Run: scaling},
		{ID: "tracecmp", Title: "trace-based recording vs compact CCT profiles (§2.2, §6)",
			Paper: "traces grow with execution time and thread count; profiles stay compact", Run: traceCmp},
	}
}

// ByID returns the experiment with the given id.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// helpers

func pctCell(f float64) string { return fmt.Sprintf("%.1f%%", 100*f) }

func cyCell(c uint64) string {
	switch {
	case c >= 10_000_000:
		return fmt.Sprintf("%.1fMcy", float64(c)/1e6)
	case c >= 10_000:
		return fmt.Sprintf("%.1fkcy", float64(c)/1e3)
	default:
		return fmt.Sprintf("%dcy", c)
	}
}

func improvement(orig, opt uint64) float64 {
	if orig == 0 {
		return 0
	}
	return float64(int64(orig)-int64(opt)) / float64(orig)
}
