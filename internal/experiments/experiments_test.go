package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func pct(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "%"), 64)
	if err != nil {
		t.Fatalf("cell %q is not a percentage", cell)
	}
	return v
}

func findRow(tab *Table, key string) []string {
	for _, row := range tab.Rows {
		if strings.Contains(row[0], key) {
			return row
		}
	}
	return nil
}

func TestAllExperimentsHaveUniqueIDs(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range All() {
		if e.ID == "" || seen[e.ID] {
			t.Errorf("experiment id %q empty or duplicate", e.ID)
		}
		seen[e.ID] = true
		if e.Title == "" || e.Paper == "" {
			t.Errorf("%s: missing title or paper reference", e.ID)
		}
		if e.Run == nil {
			t.Errorf("%s: no Run function", e.ID)
		}
	}
	if _, ok := ByID("fig4"); !ok {
		t.Error("ByID(fig4) failed")
	}
	if _, ok := ByID("nope"); ok {
		t.Error("ByID accepted a bogus id")
	}
}

func TestTableRender(t *testing.T) {
	tab := &Table{ID: "x", Title: "demo", Header: []string{"a", "bee"}}
	tab.AddRow("1", "2")
	tab.AddNote("hello %d", 7)
	out := tab.Render()
	for _, want := range []string{"== x — demo ==", "a", "bee", "hello 7"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

// The quick-scale shape checks below run every experiment end-to-end: the
// workload, the profiler, the analyzer and the aggregation. They assert the
// paper's qualitative findings, not absolute values.

func TestFig1Shape(t *testing.T) {
	tab := fig1(NewContext(), Quick)
	c := findRow(tab, "C[]")
	if c == nil {
		t.Fatal("C row missing")
	}
	if pct(t, c[1]) < 50 {
		t.Errorf("C share %s; want dominant", c[1])
	}
}

func TestTable1Shape(t *testing.T) {
	ctx := NewContext()
	tab := table1(ctx, Quick)
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d, want 5 benchmarks", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		ov := pct(t, row[5])
		if ov < -2 || ov > 400 {
			t.Errorf("%s: overhead %s out of sane band", row[0], row[5])
		}
	}
}

func TestAllocTrackShape(t *testing.T) {
	tab := allocTrack(NewContext(), Quick)
	naive := findRow(tab, "track all")
	full := findRow(tab, "cheap context")
	if naive == nil || full == nil {
		t.Fatal("ablation rows missing")
	}
	if pct(t, naive[2]) <= pct(t, full[2]) {
		t.Errorf("naive tracking (%s) should cost more than the full strategy (%s)",
			naive[2], full[2])
	}
}

func TestTable2Shape(t *testing.T) {
	tab := table2(NewContext(), Quick)
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Column order: label, init, setup, solver, total. Parse "1234.5kcy".
	cy := func(cell string) float64 {
		cell = strings.TrimSuffix(cell, "cy")
		mult := 1.0
		if strings.HasSuffix(cell, "k") {
			mult, cell = 1e3, strings.TrimSuffix(cell, "k")
		} else if strings.HasSuffix(cell, "M") {
			mult, cell = 1e6, strings.TrimSuffix(cell, "M")
		}
		v, err := strconv.ParseFloat(cell, 64)
		if err != nil {
			t.Fatalf("bad cycle cell %q", cell)
		}
		return v * mult
	}
	origInit, origSolve := cy(tab.Rows[0][1]), cy(tab.Rows[0][3])
	numaInit, numaSolve := cy(tab.Rows[1][1]), cy(tab.Rows[1][3])
	libnInit, libnSolve := cy(tab.Rows[2][1]), cy(tab.Rows[2][3])
	if numaInit <= origInit {
		t.Error("numactl should slow initialization")
	}
	if numaSolve >= origSolve || libnSolve >= origSolve {
		t.Error("both placements should speed the solver")
	}
	if libnInit > numaInit*1.05 {
		t.Error("libnuma init should not exceed numactl init")
	}
}

func TestFig10Shape(t *testing.T) {
	tab := fig10(NewContext(), Quick)
	blk := findRow(tab, "block share")
	if blk == nil {
		t.Fatal("block row missing")
	}
	if pct(t, blk[1]) < 50 {
		t.Errorf("block share %s; want dominant", blk[1])
	}
	imp := findRow(tab, "improvement")
	if imp == nil || pct(t, imp[1]) <= 0 {
		t.Error("parallel init should improve the run")
	}
}

func TestSpeedupsShape(t *testing.T) {
	tab := speedups(NewContext(), Quick)
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	positives := 0
	for _, row := range tab.Rows {
		if pct(t, row[2]) > 0 {
			positives++
		}
	}
	if positives < 4 {
		t.Errorf("only %d of 5 optimizations improved at quick scale", positives)
	}
}

func TestContextMemoizes(t *testing.T) {
	ctx := NewContext()
	a := ctx.scRun(Quick, 0, false)
	b := ctx.scRun(Quick, 0, false)
	if a != b {
		t.Error("context re-ran a memoized benchmark")
	}
}

func TestFig2Shape(t *testing.T) {
	tab := fig2(NewContext(), Quick)
	row := findRow(tab, "variables in merged profile")
	if row == nil || row[1] != "1" {
		t.Errorf("coalescing row = %v, want 1 variable", row)
	}
}

func TestFig4Fig5Shape(t *testing.T) {
	ctx := NewContext() // shared: fig4/fig5 reuse the same AMG run
	f4 := fig4(ctx, Quick)
	sdj := findRow(f4, "S_diag_j share")
	if sdj == nil || pct(t, sdj[1]) < 5 {
		t.Errorf("S_diag_j share row = %v", sdj)
	}
	f5 := fig5(ctx, Quick)
	if len(f5.Rows) < 4 {
		t.Errorf("bottom-up sites = %d", len(f5.Rows))
	}
}

func TestFig6Fig7Shape(t *testing.T) {
	ctx := NewContext()
	f6 := fig6(ctx, Quick)
	var flux, src, face float64
	for _, row := range f6.Rows {
		switch row[0] {
		case "Flux":
			flux = pct(t, row[1])
		case "Src":
			src = pct(t, row[1])
		case "Face":
			face = pct(t, row[1])
		}
	}
	if flux == 0 || src == 0 || face == 0 {
		t.Fatalf("missing array rows: flux=%v src=%v face=%v", flux, src, face)
	}
	if face >= flux || face >= src {
		t.Error("Face should trail Flux and Src")
	}
	f7 := fig7(ctx, Quick)
	imp := findRow(f7, "improvement")
	if imp == nil || pct(t, imp[1]) <= 0 {
		t.Error("transpose should improve Sweep3D")
	}
}

func TestFig8Fig9Shape(t *testing.T) {
	ctx := NewContext()
	f8 := fig8(ctx, Quick)
	if row := findRow(f8, "interleaved allocation improvement"); row == nil || pct(t, row[1]) <= 0 {
		t.Error("interleave should improve LULESH")
	}
	f9 := fig9(ctx, Quick)
	if row := findRow(f9, "f_elem share"); row == nil || pct(t, row[1]) <= 0 {
		t.Error("f_elem missing from static attribution")
	}
}

func TestFig11Shape(t *testing.T) {
	tab := fig11(NewContext(), Quick)
	ref := findRow(tab, "referrence share")
	if ref == nil || pct(t, ref[1]) < 10 {
		t.Errorf("referrence row = %v", ref)
	}
	if row := findRow(tab, "heap share"); row == nil || pct(t, row[1]) < 50 {
		t.Error("heap should dominate NW remote accesses")
	}
}

func TestScalingShape(t *testing.T) {
	tab := scaling(NewContext(), Quick)
	if len(tab.Rows) < 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Merged node counts stay flat as threads grow.
	first := tab.Rows[0][3]
	last := tab.Rows[len(tab.Rows)-1][3]
	if first != last {
		t.Errorf("merged nodes changed with thread count: %s -> %s", first, last)
	}
}
