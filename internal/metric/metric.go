// Package metric defines the performance metrics the profiler attributes to
// calling-context-tree nodes and the fixed-width vector they are stored in.
//
// Each PMU sample contributes to several metrics at once: the sample count,
// the measured latency, one per-data-source counter (the marked-event
// families on POWER7, the load/store response on AMD IBS), and flags like
// TLB misses. Keeping them in one dense vector makes CCT merging a plain
// element-wise add, which is what lets the post-mortem analyzer coalesce
// millions of thread profiles cheaply.
package metric

import (
	"fmt"
	"strings"
)

// ID indexes a metric within a Vector.
type ID int

// The metric set. Order is part of the profile file format; append only.
const (
	// Samples counts delivered PMU samples.
	Samples ID = iota
	// Latency accumulates measured access latency in cycles.
	Latency
	// FromL1..FromRL3 count samples by serving memory-hierarchy level
	// (FromRL3 = another socket's L3 via cache intervention).
	FromL1
	FromL2
	FromL3
	FromLMEM
	FromRMEM
	FromRL3
	// TLBMiss counts samples whose access missed the D-TLB.
	TLBMiss
	// Stores counts sampled writes (the rest were loads).
	Stores
	// NumMetrics is the vector width.
	NumMetrics
)

// Name returns the metric's display name.
func (id ID) Name() string {
	switch id {
	case Samples:
		return "SAMPLES"
	case Latency:
		return "LATENCY(cy)"
	case FromL1:
		return "FROM_L1"
	case FromL2:
		return "FROM_L2"
	case FromL3:
		return "FROM_L3"
	case FromLMEM:
		return "FROM_LMEM"
	case FromRMEM:
		return "FROM_RMEM"
	case FromRL3:
		return "FROM_RL3"
	case TLBMiss:
		return "TLB_MISS"
	case Stores:
		return "STORES"
	default:
		return fmt.Sprintf("METRIC(%d)", int(id))
	}
}

// ByName resolves a display name (case-insensitive) back to its ID — the
// shared lookup behind dcview's -metric flag and the serving layer's
// ?metric= query parameter.
func ByName(name string) (ID, bool) {
	for _, id := range IDs() {
		if strings.EqualFold(id.Name(), name) {
			return id, true
		}
	}
	return 0, false
}

// Default picks the conventional ranking metric for a monitored event:
// measured latency for IBS-style sampling, remote-memory accesses for
// marked-event profiles.
func Default(event string) ID {
	if strings.HasPrefix(event, "IBS") {
		return Latency
	}
	return FromRMEM
}

// IDs returns all metric ids in order.
func IDs() []ID {
	out := make([]ID, NumMetrics)
	for i := range out {
		out[i] = ID(i)
	}
	return out
}

// Vector is one node's metric values.
type Vector [NumMetrics]uint64

// Add accumulates o into v.
func (v *Vector) Add(o *Vector) {
	for i := range v {
		v[i] += o[i]
	}
}

// IsZero reports whether every metric is zero.
func (v *Vector) IsZero() bool {
	for _, x := range v {
		if x != 0 {
			return false
		}
	}
	return true
}

// String renders the non-zero metrics compactly.
func (v *Vector) String() string {
	s := "{"
	first := true
	for i, x := range v {
		if x == 0 {
			continue
		}
		if !first {
			s += " "
		}
		first = false
		s += fmt.Sprintf("%s=%d", ID(i).Name(), x)
	}
	return s + "}"
}
