package metric

import (
	"strings"
	"testing"
)

func TestNamesDistinct(t *testing.T) {
	seen := map[string]bool{}
	for _, id := range IDs() {
		n := id.Name()
		if n == "" || seen[n] {
			t.Errorf("metric %d name %q empty or duplicated", id, n)
		}
		seen[n] = true
	}
	if len(IDs()) != int(NumMetrics) {
		t.Errorf("IDs() returned %d, want %d", len(IDs()), NumMetrics)
	}
}

func TestVectorAdd(t *testing.T) {
	var a, b Vector
	a[Samples] = 3
	a[Latency] = 100
	b[Samples] = 4
	b[FromRMEM] = 2
	a.Add(&b)
	if a[Samples] != 7 || a[Latency] != 100 || a[FromRMEM] != 2 {
		t.Errorf("add result = %v", a.String())
	}
}

func TestIsZero(t *testing.T) {
	var v Vector
	if !v.IsZero() {
		t.Error("zero vector not zero")
	}
	v[TLBMiss] = 1
	if v.IsZero() {
		t.Error("nonzero vector reported zero")
	}
}

func TestStringShowsOnlyNonzero(t *testing.T) {
	var v Vector
	v[Samples] = 5
	v[Stores] = 2
	s := v.String()
	if !strings.Contains(s, "SAMPLES=5") || !strings.Contains(s, "STORES=2") {
		t.Errorf("String = %q", s)
	}
	if strings.Contains(s, "LATENCY") {
		t.Errorf("String shows zero metric: %q", s)
	}
}

func TestUnknownMetricName(t *testing.T) {
	if !strings.Contains(ID(99).Name(), "99") {
		t.Error("unknown metric name unhelpful")
	}
}
