// Package faultio injects deterministic, scriptable faults into the
// profiler's measurement and ingestion I/O paths. The failure-mode test
// suite uses it to prove every degradation path in profio and analysis:
// torn writes from killed ranks (crash-after-write-M via FS), truncated
// and bit-damaged files (Truncate, FlipBit and their reader-level
// counterparts), transient device errors (FailingReader's EIO on read k),
// and slow media (SlowReader, for cancellation tests).
//
// Everything here is deterministic: faults fire at scripted byte offsets
// or call counts, never at random, so a failing test replays exactly.
package faultio

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"dcprof/internal/profio"
)

// ErrInjected is returned by injected read failures, standing in for the
// EIO a dying device or network filesystem produces.
var ErrInjected = errors.New("faultio: injected I/O error")

// ErrCrashed is returned by every filesystem operation after a simulated
// crash point: the writing process is "dead", so nothing it would have
// done afterward — further writes, fsyncs, renames, or cleanup removes —
// can happen.
var ErrCrashed = errors.New("faultio: simulated crash")

// ---- Reader faults ----

// TruncatedReader delivers only the first n bytes of r, then reports EOF —
// a file whose writer died mid-write.
func TruncatedReader(r io.Reader, n int64) io.Reader { return io.LimitReader(r, n) }

// FlipBitReader passes r through, flipping bit (bit mod 8) of the byte at
// stream offset off — in-flight or at-rest single-bit corruption.
func FlipBitReader(r io.Reader, off int64, bit uint) io.Reader {
	return &flipBitReader{r: r, off: off, bit: bit % 8}
}

type flipBitReader struct {
	r   io.Reader
	off int64
	bit uint
	pos int64
}

func (f *flipBitReader) Read(p []byte) (int, error) {
	n, err := f.r.Read(p)
	if f.off >= f.pos && f.off < f.pos+int64(n) {
		p[f.off-f.pos] ^= 1 << f.bit
	}
	f.pos += int64(n)
	return n, err
}

// FailingReader passes r through until the k-th Read call (1-based), which
// fails with ErrInjected — a transient or permanent device error partway
// through a file.
func FailingReader(r io.Reader, k int) io.Reader { return &failingReader{r: r, k: k} }

type failingReader struct {
	r     io.Reader
	k     int
	calls int
}

func (f *failingReader) Read(p []byte) (int, error) {
	f.calls++
	if f.calls >= f.k {
		return 0, fmt.Errorf("%w (read %d)", ErrInjected, f.calls)
	}
	return f.r.Read(p)
}

// SlowReader sleeps d before every Read — slow media or a congested
// parallel filesystem, the scenario cancellation must cut short.
func SlowReader(r io.Reader, d time.Duration) io.Reader { return &slowReader{r: r, d: d} }

type slowReader struct {
	r io.Reader
	d time.Duration
}

func (s *slowReader) Read(p []byte) (int, error) {
	time.Sleep(s.d)
	return s.r.Read(p)
}

// PanicReader panics on the first Read — a stand-in for a decoder bug the
// ingest pipeline must convert into a per-file quarantine rather than a
// crashed process.
func PanicReader() io.Reader { return panicReader{} }

type panicReader struct{}

func (panicReader) Read([]byte) (int, error) { panic("faultio: injected reader panic") }

// WithCloser bundles a fault-wrapped reader with the closer of the
// underlying resource, for APIs that take io.ReadCloser.
func WithCloser(r io.Reader, c io.Closer) io.ReadCloser {
	return struct {
		io.Reader
		io.Closer
	}{r, c}
}

// ---- At-rest corruption ----

// Truncate cuts the file at path to n bytes, as a killed writer without a
// durable-write protocol would leave it.
func Truncate(path string, n int64) error { return os.Truncate(path, n) }

// FlipBit flips bit (bit mod 8) of the byte at offset off in the file at
// path — deterministic at-rest corruption.
func FlipBit(path string, off int64, bit uint) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		return err
	}
	b[0] ^= 1 << (bit % 8)
	if _, err := f.WriteAt(b[:], off); err != nil {
		return err
	}
	return f.Close()
}

// Overwrite replaces the file's contents wholesale (e.g. with garbage from
// a misdirected write).
func Overwrite(path string, data []byte) error { return os.WriteFile(path, data, 0o644) }

// ---- Writer crash simulation ----

// FS wraps an inner profio.FS and simulates the writing process dying
// after a scripted number of payload bytes: writes land normally until the
// budget is exhausted, the write that crosses it lands only partially
// (a torn write), and every operation after that — writes, syncs, renames,
// removes — fails with ErrCrashed, exactly as if the process were gone.
// Files and directory entries created before the crash stay behind for the
// reader side to cope with.
type FS struct {
	inner profio.FS

	mu        sync.Mutex
	remaining int64
	crashed   bool
}

// NewCrashFS returns an FS that crashes after crashAfterBytes total bytes
// written across all files. A negative budget never crashes.
func NewCrashFS(inner profio.FS, crashAfterBytes int64) *FS {
	return &FS{inner: inner, remaining: crashAfterBytes}
}

// Crashed reports whether the simulated crash point has been reached.
func (s *FS) Crashed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.crashed
}

// consume grants up to n bytes of write budget, crashing when it runs out.
func (s *FS) consume(n int) (granted int, crashedNow bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.crashed {
		return 0, true
	}
	if s.remaining < 0 {
		return n, false
	}
	if int64(n) <= s.remaining {
		s.remaining -= int64(n)
		return n, false
	}
	granted = int(s.remaining)
	s.remaining = 0
	s.crashed = true
	return granted, true
}

func (s *FS) alive() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.crashed {
		return ErrCrashed
	}
	return nil
}

// MkdirAll implements profio.FS.
func (s *FS) MkdirAll(path string, perm os.FileMode) error {
	if err := s.alive(); err != nil {
		return err
	}
	return s.inner.MkdirAll(path, perm)
}

// Create implements profio.FS.
func (s *FS) Create(path string) (profio.File, error) {
	if err := s.alive(); err != nil {
		return nil, err
	}
	f, err := s.inner.Create(path)
	if err != nil {
		return nil, err
	}
	return &crashFile{f: f, fs: s}, nil
}

// Rename implements profio.FS.
func (s *FS) Rename(oldpath, newpath string) error {
	if err := s.alive(); err != nil {
		return err
	}
	return s.inner.Rename(oldpath, newpath)
}

// Remove implements profio.FS.
func (s *FS) Remove(path string) error {
	if err := s.alive(); err != nil {
		return err
	}
	return s.inner.Remove(path)
}

// SyncDir implements profio.FS.
func (s *FS) SyncDir(path string) error {
	if err := s.alive(); err != nil {
		return err
	}
	return s.inner.SyncDir(path)
}

type crashFile struct {
	f  profio.File
	fs *FS
}

func (c *crashFile) Write(b []byte) (int, error) {
	granted, crashed := c.fs.consume(len(b))
	if granted > 0 {
		n, err := c.f.Write(b[:granted])
		if err != nil {
			return n, err
		}
	}
	if crashed {
		return granted, ErrCrashed
	}
	return granted, nil
}

func (c *crashFile) Sync() error {
	if err := c.fs.alive(); err != nil {
		return err
	}
	return c.f.Sync()
}

// Close always releases the real file descriptor — the OS does that even
// for dead processes — but reports the crash so callers cannot mistake a
// post-crash close for a durable one.
func (c *crashFile) Close() error {
	err := c.f.Close()
	if cerr := c.fs.alive(); cerr != nil {
		return cerr
	}
	return err
}
