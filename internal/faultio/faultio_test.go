package faultio_test

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"dcprof/internal/cct"
	"dcprof/internal/faultio"
	"dcprof/internal/metric"
	"dcprof/internal/profio"
)

func sampleProfile(rank, thread int) *cct.Profile {
	p := cct.NewProfile(rank, thread, "IBS@4096")
	var v metric.Vector
	v[metric.Samples] = 3
	v[metric.Latency] = 900
	p.Trees[cct.ClassHeap].AddSample([]cct.Frame{
		{Kind: cct.KindCall, Module: "exe", Name: "main", File: "main.c"},
		{Kind: cct.KindStmt, Module: "exe", Name: "main", File: "main.c", Line: 5},
	}, &v)
	var v2 metric.Vector
	v2[metric.Samples] = 1
	p.Trees[cct.ClassNonMem].AddSample([]cct.Frame{
		{Kind: cct.KindCall, Module: "exe", Name: "spin", File: "spin.c"},
	}, &v2)
	return p
}

func encode(t *testing.T, p *cct.Profile) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := profio.WriteProfile(&buf, p); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestTruncatedReader(t *testing.T) {
	data := []byte("0123456789")
	got, err := io.ReadAll(faultio.TruncatedReader(bytes.NewReader(data), 4))
	if err != nil || string(got) != "0123" {
		t.Fatalf("got %q, %v", got, err)
	}
}

func TestFlipBitReader(t *testing.T) {
	data := []byte{0x00, 0x00, 0x00}
	got, err := io.ReadAll(faultio.FlipBitReader(bytes.NewReader(data), 1, 3))
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 0 || got[1] != 1<<3 || got[2] != 0 {
		t.Fatalf("flip landed wrong: %v", got)
	}
	// The fault must fire even when the target byte is mid-buffer of a
	// short read.
	r := faultio.FlipBitReader(iotest(data), 2, 0)
	got, err = io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if got[2] != 1 {
		t.Fatalf("flip missed under 1-byte reads: %v", got)
	}
}

// iotest returns a reader that delivers one byte per Read call.
func iotest(b []byte) io.Reader { return &oneByteReader{b: b} }

type oneByteReader struct{ b []byte }

func (o *oneByteReader) Read(p []byte) (int, error) {
	if len(o.b) == 0 {
		return 0, io.EOF
	}
	p[0] = o.b[0]
	o.b = o.b[1:]
	return 1, nil
}

func TestFailingReader(t *testing.T) {
	r := faultio.FailingReader(bytes.NewReader(make([]byte, 1<<20)), 3)
	buf := make([]byte, 16)
	for i := 0; i < 2; i++ {
		if _, err := r.Read(buf); err != nil {
			t.Fatalf("read %d failed early: %v", i+1, err)
		}
	}
	_, err := r.Read(buf)
	if !errors.Is(err, faultio.ErrInjected) {
		t.Fatalf("read 3: got %v, want ErrInjected", err)
	}
}

func TestSlowReader(t *testing.T) {
	start := time.Now()
	_, err := io.ReadAll(faultio.SlowReader(bytes.NewReader([]byte("ab")), 10*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if time.Since(start) < 10*time.Millisecond {
		t.Error("SlowReader did not slow down")
	}
}

// TestReaderFaultsAgainstProfiles drives each reader fault through the
// actual profile decoder: every fault must surface as an error, never a
// panic or a silently wrong profile.
func TestReaderFaultsAgainstProfiles(t *testing.T) {
	img := encode(t, sampleProfile(0, 0))
	cases := map[string]io.Reader{
		"truncate": faultio.TruncatedReader(bytes.NewReader(img), int64(len(img)/2)),
		"flip":     faultio.FlipBitReader(bytes.NewReader(img), int64(len(img)/2), 5),
		"eio":      faultio.FailingReader(bytes.NewReader(img), 1),
	}
	for name, r := range cases {
		if _, err := profio.ReadProfile(r); err == nil {
			t.Errorf("%s: fault-injected profile decoded without error", name)
		}
	}
}

// TestCrashLeavesNoPartialFinalFile is the crash-after-write-M sweep: for
// crash points across the whole measurement write, every .dcprof file that
// exists under a final name must be complete and readable — the durable
// write protocol's whole point.
func TestCrashLeavesNoPartialFinalFile(t *testing.T) {
	profiles := []*cct.Profile{sampleProfile(0, 0), sampleProfile(0, 1), sampleProfile(1, 0)}
	var fullSize int64
	for _, p := range profiles {
		n, err := profio.EncodedSize(p)
		if err != nil {
			t.Fatal(err)
		}
		fullSize += n
	}

	for m := int64(0); m <= fullSize; m += 7 {
		dir := filepath.Join(t.TempDir(), "m")
		fs := faultio.NewCrashFS(profio.OSFS{}, m)
		_, err := profio.WriteDirFS(fs, dir, profiles)
		if m < fullSize {
			if !errors.Is(err, faultio.ErrCrashed) {
				t.Fatalf("crash at %d: err = %v, want ErrCrashed", m, err)
			}
		} else if err != nil {
			t.Fatalf("budget %d ≥ total %d: err = %v", m, fullSize, err)
		}

		// Every file under a final profile name must parse completely.
		files, ferr := profio.Files(dir)
		if ferr != nil {
			if os.IsNotExist(ferr) {
				continue // crashed before MkdirAll
			}
			t.Fatal(ferr)
		}
		for _, f := range files {
			r, err := os.Open(f)
			if err != nil {
				t.Fatal(err)
			}
			_, err = profio.ReadProfile(r)
			r.Close()
			if err != nil {
				t.Fatalf("crash at %d: final-name file %s is partial/corrupt: %v", m, filepath.Base(f), err)
			}
		}

		// Torn temp files may remain (the "process" died before cleanup),
		// but they must be invisible to ingestion.
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			if strings.HasSuffix(e.Name(), profio.TmpSuffix) {
				for _, f := range files {
					if filepath.Base(f) == e.Name() {
						t.Fatalf("crash at %d: temp file %s listed by Files", m, e.Name())
					}
				}
			}
		}
	}
}

// TestCrashFSPostCrashOpsFail locks in the "process is dead" semantics:
// after the crash point, every filesystem operation fails.
func TestCrashFSPostCrashOpsFail(t *testing.T) {
	dir := t.TempDir()
	fs := faultio.NewCrashFS(profio.OSFS{}, 0)
	f, err := fs.Create(filepath.Join(dir, "x"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("abc")); !errors.Is(err, faultio.ErrCrashed) {
		t.Fatalf("write after crash: %v", err)
	}
	if !fs.Crashed() {
		t.Fatal("FS not crashed after budget exhausted")
	}
	if err := f.Sync(); !errors.Is(err, faultio.ErrCrashed) {
		t.Fatalf("sync after crash: %v", err)
	}
	if err := fs.Rename("a", "b"); !errors.Is(err, faultio.ErrCrashed) {
		t.Fatalf("rename after crash: %v", err)
	}
	if err := fs.Remove("a"); !errors.Is(err, faultio.ErrCrashed) {
		t.Fatalf("remove after crash: %v", err)
	}
	if err := fs.SyncDir(dir); !errors.Is(err, faultio.ErrCrashed) {
		t.Fatalf("syncdir after crash: %v", err)
	}
}

func TestAtRestCorruptionHelpers(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	if err := os.WriteFile(path, []byte{0xff, 0xff, 0xff, 0xff}, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := faultio.FlipBit(path, 2, 0); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if b[2] != 0xfe {
		t.Fatalf("FlipBit: got %x", b)
	}
	if err := faultio.Truncate(path, 2); err != nil {
		t.Fatal(err)
	}
	if b, _ = os.ReadFile(path); len(b) != 2 {
		t.Fatalf("Truncate: %d bytes remain", len(b))
	}
	if err := faultio.Overwrite(path, []byte("zz")); err != nil {
		t.Fatal(err)
	}
	if b, _ = os.ReadFile(path); string(b) != "zz" {
		t.Fatalf("Overwrite: %q", b)
	}
}
