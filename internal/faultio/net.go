package faultio

// Network-fault injection for HTTP clients. FlakyTransport wraps an
// http.RoundTripper with a deterministic script of per-request faults —
// connection drops before and after the server acts, synthesized 5xx
// shed responses, resets mid request body, and client-side timeouts —
// so an upload client's retry loop can be driven through every failure
// mode a flaky network produces, replayably. The nastiest case for an
// uploader, FaultDropResponse, lets the request reach the server and
// take effect but loses the response: a client that blindly re-sends
// will double-count unless the server deduplicates.

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
)

// HTTPFault is one scripted behavior for one request.
type HTTPFault int

const (
	// FaultPass forwards the request untouched.
	FaultPass HTTPFault = iota
	// FaultDrop fails the request before it reaches the server — a
	// connection refused or dropped during dialing. The server never
	// observes the request.
	FaultDrop
	// FaultDropResponse forwards the request — the server fully processes
	// it — then loses the response. The client cannot tell this from
	// FaultDrop, which is the whole point: only an idempotent server makes
	// the retry safe.
	FaultDropResponse
	// Fault5xx synthesizes a 503 with a Retry-After header without
	// contacting the server — a load balancer or the server's own
	// admission control shedding the request.
	Fault5xx
	// FaultResetMidBody lets the request start, then resets the
	// connection partway through the request body: the server sees a
	// truncated payload, the client an aborted request.
	FaultResetMidBody
	// FaultTimeout fails the request with a timeout-flavored net error
	// without contacting the server.
	FaultTimeout
)

// FlakyTransport applies a scripted fault sequence to successive
// requests: request i suffers script[i]; requests past the script pass
// through cleanly. Safe for concurrent use; requests consume script
// entries in arrival order.
type FlakyTransport struct {
	// RetryAfterSeconds is the Retry-After value on Fault5xx responses.
	RetryAfterSeconds int

	inner http.RoundTripper

	mu       sync.Mutex
	script   []HTTPFault
	requests int
	faults   int
}

// NewFlakyTransport wraps inner (nil uses http.DefaultTransport) with
// the given fault script.
func NewFlakyTransport(inner http.RoundTripper, script ...HTTPFault) *FlakyTransport {
	if inner == nil {
		inner = http.DefaultTransport
	}
	return &FlakyTransport{inner: inner, script: script, RetryAfterSeconds: 1}
}

// Requests reports how many requests have been attempted through the
// transport; Faults how many of them were faulted.
func (t *FlakyTransport) Requests() int { t.mu.Lock(); defer t.mu.Unlock(); return t.requests }

// Faults reports how many requests were injected with a fault.
func (t *FlakyTransport) Faults() int { t.mu.Lock(); defer t.mu.Unlock(); return t.faults }

// next consumes the fault scripted for this request.
func (t *FlakyTransport) next() HTTPFault {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.requests++
	if len(t.script) == 0 {
		return FaultPass
	}
	f := t.script[0]
	t.script = t.script[1:]
	if f != FaultPass {
		t.faults++
	}
	return f
}

// timeoutError is a net.Error with Timeout() true, the shape
// http.Client deadline failures have.
type timeoutError struct{}

func (timeoutError) Error() string   { return "faultio: injected client timeout" }
func (timeoutError) Timeout() bool   { return true }
func (timeoutError) Temporary() bool { return true }

// RoundTrip implements http.RoundTripper.
func (t *FlakyTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	switch t.next() {
	case FaultDrop:
		if req.Body != nil {
			req.Body.Close()
		}
		return nil, fmt.Errorf("%w (connection dropped)", ErrInjected)
	case FaultTimeout:
		if req.Body != nil {
			req.Body.Close()
		}
		return nil, timeoutError{}
	case Fault5xx:
		if req.Body != nil {
			io.Copy(io.Discard, req.Body)
			req.Body.Close()
		}
		h := http.Header{}
		h.Set("Retry-After", strconv.Itoa(t.RetryAfterSeconds))
		return &http.Response{
			Status:     "503 Service Unavailable",
			StatusCode: http.StatusServiceUnavailable,
			Proto:      req.Proto,
			ProtoMajor: req.ProtoMajor,
			ProtoMinor: req.ProtoMinor,
			Header:     h,
			Body:       http.NoBody,
			Request:    req,
		}, nil
	case FaultResetMidBody:
		if req.Body == nil {
			return nil, fmt.Errorf("%w (connection reset)", ErrInjected)
		}
		// The second Read of the body fails, so the server receives at
		// most one buffer's worth of the payload before the "reset".
		clone := req.Clone(req.Context())
		clone.Body = WithCloser(FailingReader(req.Body, 2), req.Body)
		resp, err := t.inner.RoundTrip(clone)
		if err == nil {
			// The truncated request went through anyway (tiny body fit in
			// one read); surface the reset the client would still see.
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		return nil, fmt.Errorf("%w (connection reset mid-body)", ErrInjected)
	case FaultDropResponse:
		resp, err := t.inner.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return nil, fmt.Errorf("%w (connection dropped awaiting response)", ErrInjected)
	default:
		return t.inner.RoundTrip(req)
	}
}
