package faultio

import (
	"bytes"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"syscall"
	"testing"

	"dcprof/internal/profio"
)

// TestFlakyTransportScript drives one request per scripted fault against
// a counting server and checks each fault's contract: who saw the
// request, what the client got back.
func TestFlakyTransportScript(t *testing.T) {
	var hits atomic.Int64
	var lastBody atomic.Value // string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		raw, _ := io.ReadAll(r.Body)
		lastBody.Store(string(raw))
		w.WriteHeader(http.StatusOK)
	}))
	defer ts.Close()

	ft := NewFlakyTransport(nil, FaultDrop, Fault5xx, FaultTimeout, FaultDropResponse, FaultPass)
	client := &http.Client{Transport: ft}
	post := func() (*http.Response, error) {
		return client.Post(ts.URL, "application/octet-stream", strings.NewReader("payload"))
	}

	// FaultDrop: client error, server untouched.
	if _, err := post(); !errors.Is(err, ErrInjected) {
		t.Fatalf("drop: err = %v, want ErrInjected", err)
	}
	if hits.Load() != 0 {
		t.Fatalf("drop reached the server")
	}

	// Fault5xx: synthesized 503 with Retry-After, server untouched.
	resp, err := post()
	if err != nil {
		t.Fatalf("5xx: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") != "1" {
		t.Fatalf("5xx: status %d Retry-After %q", resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	if hits.Load() != 0 {
		t.Fatalf("5xx reached the server")
	}

	// FaultTimeout: a net.Error with Timeout() true, server untouched.
	_, err = post()
	var nerr net.Error
	if !errors.As(err, &nerr) || !nerr.Timeout() {
		t.Fatalf("timeout: err = %v, want net.Error with Timeout()", err)
	}
	if hits.Load() != 0 {
		t.Fatalf("timeout reached the server")
	}

	// FaultDropResponse: the server fully processes the request, the
	// client still sees an error — the retry-hazard case.
	if _, err := post(); !errors.Is(err, ErrInjected) {
		t.Fatalf("drop-response: err = %v, want ErrInjected", err)
	}
	if hits.Load() != 1 || lastBody.Load() != "payload" {
		t.Fatalf("drop-response: server saw %d requests, body %q", hits.Load(), lastBody.Load())
	}

	// FaultPass and script exhaustion: clean requests.
	for i := 0; i < 2; i++ {
		resp, err := post()
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("pass %d: %v %v", i, err, resp)
		}
		resp.Body.Close()
	}
	if hits.Load() != 3 {
		t.Fatalf("server hits = %d, want 3", hits.Load())
	}
	if ft.Requests() != 6 || ft.Faults() != 4 {
		t.Fatalf("transport counted %d requests / %d faults, want 6 / 4", ft.Requests(), ft.Faults())
	}
}

// TestFlakyTransportResetMidBody checks the reset delivers at most a
// truncated body to the server and an error to the client.
func TestFlakyTransportResetMidBody(t *testing.T) {
	var got atomic.Value
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		raw, _ := io.ReadAll(r.Body)
		got.Store(len(raw))
	}))
	defer ts.Close()

	client := &http.Client{Transport: NewFlakyTransport(nil, FaultResetMidBody)}
	full := bytes.Repeat([]byte("x"), 1<<20)
	_, err := client.Post(ts.URL, "application/octet-stream", bytes.NewReader(full))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("reset: err = %v, want ErrInjected", err)
	}
	if n, ok := got.Load().(int); ok && n >= len(full) {
		t.Fatalf("server received the full %d-byte body through a reset", n)
	}
}

// TestENOSPCFS checks the disk-full seam: writes and creates fail with
// an error satisfying errors.Is(err, syscall.ENOSPC) while full, cleanup
// renames/removes keep working, and clearing the state restores service.
func TestENOSPCFS(t *testing.T) {
	dir := t.TempDir()
	fs := NewENOSPCFS(nil)

	// Healthy: a file writes and publishes.
	f, err := fs.Create(dir + "/a.tmp")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("ok")); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	fs.SetFull(true)
	if _, err := fs.Create(dir + "/b.tmp"); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("create while full: %v, want ENOSPC", err)
	}
	if err := fs.MkdirAll(dir+"/sub", 0o755); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("mkdir while full: %v, want ENOSPC", err)
	}
	// A file created before the disk filled fails its writes too.
	g, err := profio.OSFS{}.Create(dir + "/pre.tmp")
	if err != nil {
		t.Fatal(err)
	}
	g.Close()
	// Rename and remove still work — they free or relink, not allocate.
	if err := fs.Rename(dir+"/a.tmp", dir+"/a.final"); err != nil {
		t.Fatalf("rename while full: %v", err)
	}
	if err := fs.Remove(dir + "/pre.tmp"); err != nil {
		t.Fatalf("remove while full: %v", err)
	}

	fs.SetFull(false)
	h, err := fs.Create(dir + "/c.tmp")
	if err != nil {
		t.Fatalf("create after recovery: %v", err)
	}
	if _, err := h.Write([]byte("ok")); err != nil {
		t.Fatalf("write after recovery: %v", err)
	}
	if err := h.Sync(); err != nil {
		t.Fatal(err)
	}
	h.Close()
}

// TestENOSPCFileWhileFull checks a file handle created healthy starts
// failing once the disk fills — the mid-upload ENOSPC case.
func TestENOSPCFileWhileFull(t *testing.T) {
	dir := t.TempDir()
	fs := NewENOSPCFS(nil)
	f, err := fs.Create(dir + "/mid.tmp")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Write([]byte("first")); err != nil {
		t.Fatal(err)
	}
	fs.SetFull(true)
	if _, err := f.Write([]byte("second")); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("write while full: %v, want ENOSPC", err)
	}
	if err := f.Sync(); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("sync while full: %v, want ENOSPC", err)
	}
}
