package faultio

// Disk-exhaustion injection. Unlike the crash FS (the writer dies), a
// full disk leaves the process alive but failing every allocation of new
// blocks — creates and writes return ENOSPC while renames, removes, and
// reads keep working, which is exactly the regime a long-running service
// must degrade through (reject uploads, keep serving queries) and recover
// from once space frees up.

import (
	"fmt"
	"os"
	"sync/atomic"
	"syscall"

	"dcprof/internal/profio"
)

// errDiskFull wraps syscall.ENOSPC so errors.Is(err, syscall.ENOSPC)
// holds on every injected failure, the same check real write errors
// satisfy through *os.PathError.
func errDiskFull(op, path string) error {
	return fmt.Errorf("faultio: %s %s: %w", op, path, syscall.ENOSPC)
}

// ENOSPCFS wraps an inner profio.FS with a toggleable "disk full" state.
// While full, operations that need new blocks — MkdirAll, Create, and
// every Write/Sync on files created through it — fail with an error
// wrapping syscall.ENOSPC. Rename and Remove still succeed (they release
// or relink existing blocks), so cleanup paths behave as they do on a
// really-full filesystem. Clearing the state restores normal service:
// the seam a recovery-probe test flips both ways.
type ENOSPCFS struct {
	inner profio.FS
	full  atomic.Bool
}

// NewENOSPCFS returns an ENOSPCFS over inner (nil uses the real
// filesystem), initially not full.
func NewENOSPCFS(inner profio.FS) *ENOSPCFS {
	if inner == nil {
		inner = profio.OSFS{}
	}
	return &ENOSPCFS{inner: inner}
}

// SetFull flips the injected disk-full state.
func (s *ENOSPCFS) SetFull(full bool) { s.full.Store(full) }

// Full reports the injected state.
func (s *ENOSPCFS) Full() bool { return s.full.Load() }

// MkdirAll implements profio.FS.
func (s *ENOSPCFS) MkdirAll(path string, perm os.FileMode) error {
	if s.full.Load() {
		return errDiskFull("mkdir", path)
	}
	return s.inner.MkdirAll(path, perm)
}

// Create implements profio.FS.
func (s *ENOSPCFS) Create(path string) (profio.File, error) {
	if s.full.Load() {
		return nil, errDiskFull("create", path)
	}
	f, err := s.inner.Create(path)
	if err != nil {
		return nil, err
	}
	return &enospcFile{f: f, fs: s, path: path}, nil
}

// Rename implements profio.FS. Renames relink existing blocks, so they
// succeed even while the disk is full.
func (s *ENOSPCFS) Rename(oldpath, newpath string) error { return s.inner.Rename(oldpath, newpath) }

// Remove implements profio.FS. Removes free space, so they always work.
func (s *ENOSPCFS) Remove(path string) error { return s.inner.Remove(path) }

// SyncDir implements profio.FS.
func (s *ENOSPCFS) SyncDir(path string) error {
	if s.full.Load() {
		return errDiskFull("syncdir", path)
	}
	return s.inner.SyncDir(path)
}

type enospcFile struct {
	f    profio.File
	fs   *ENOSPCFS
	path string
}

func (e *enospcFile) Write(p []byte) (int, error) {
	if e.fs.full.Load() {
		return 0, errDiskFull("write", e.path)
	}
	return e.f.Write(p)
}

func (e *enospcFile) Sync() error {
	if e.fs.full.Load() {
		return errDiskFull("sync", e.path)
	}
	return e.f.Sync()
}

func (e *enospcFile) Close() error { return e.f.Close() }
