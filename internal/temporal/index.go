package temporal

import (
	"errors"
	"fmt"
	"sort"

	"dcprof/internal/cct"
	"dcprof/internal/metric"
)

// ErrWidthMismatch reports a series whose window width disagrees with the
// width the index adopted from the first series folded into it. Mixed
// widths would make window indices incomparable, so the series is dropped
// (the caller decides whether that is a quarantine note or a hard error).
var ErrWidthMismatch = errors.New("temporal: window width mismatch")

// windowAgg is one window's merged view across every folded series.
type windowAgg struct {
	// profile holds the window-restricted CCTs: each delta's calling
	// context reconstituted into fresh trees, so the window can be viewed
	// (or diffed) exactly like a cumulative profile.
	profile *cct.Profile
	// total is the window's aggregate metric vector across all classes —
	// the feature source for phase detection, kept incrementally so
	// Phases never walks trees.
	total metric.Vector
}

// Index merges the temporal sidecars of a measurement's profiles into
// per-window partial profiles. It is built single-threaded during the
// analyzer's split stage (one AddSeries per decoded profile) and is
// read-only afterwards; Clip, WindowProfile, and Phases are safe for
// concurrent readers once folding is done.
type Index struct {
	width   uint64
	windows map[uint64]*windowAgg

	// Identity of the reconstituted window profiles: lowest (rank, thread)
	// seen, same rule the cumulative merge uses, so results are
	// deterministic regardless of fold order.
	rank, thread int
	event        string
	haveIdent    bool

	// Series counts sidecars folded in; Dropped counts sidecars rejected
	// (width mismatch, or window indices past the sim-clock range).
	Series  int
	Dropped int
}

// NewIndex creates an empty index. The window width is adopted from the
// first series folded in.
func NewIndex() *Index {
	return &Index{windows: make(map[uint64]*windowAgg)}
}

// Width returns the adopted window width in sim cycles (0 until the first
// series is folded).
func (ix *Index) Width() uint64 { return ix.width }

// NumWindows returns the number of distinct non-empty windows.
func (ix *Index) NumWindows() int { return len(ix.windows) }

// AddSeries folds one profile's temporal sidecar into the index. Profiles
// without a sidecar are ignored. A width mismatch drops the series and
// returns ErrWidthMismatch (wrapped); the index is unchanged.
func (ix *Index) AddSeries(p *cct.Profile) error {
	ts := p.Temporal
	if ts == nil || len(ts.Windows) == 0 {
		return nil
	}
	if ts.Width == 0 {
		return fmt.Errorf("temporal: profile rank %d thread %d: series has zero window width", p.Rank, p.Thread)
	}
	// Reject windows whose start cycle would overflow the uint64 sim
	// clock — no real run reaches there, and rejecting before folding
	// keeps every Span/Clip/Phases cycle computation overflow-free.
	// Validated before any index mutation so a bad series changes nothing.
	for wi := range ts.Windows {
		if ts.Windows[wi].Index >= ^uint64(0)/ts.Width {
			ix.Dropped++
			return fmt.Errorf("temporal: profile rank %d thread %d: window %d start overflows the sim clock at width %d",
				p.Rank, p.Thread, ts.Windows[wi].Index, ts.Width)
		}
	}
	if ix.width == 0 {
		ix.width = ts.Width
	} else if ts.Width != ix.width {
		ix.Dropped++
		return fmt.Errorf("temporal: profile rank %d thread %d: width %d vs index width %d: %w",
			p.Rank, p.Thread, ts.Width, ix.width, ErrWidthMismatch)
	}
	if !ix.haveIdent || p.Rank < ix.rank || (p.Rank == ix.rank && p.Thread < ix.thread) {
		ix.rank, ix.thread, ix.event, ix.haveIdent = p.Rank, p.Thread, p.Event, true
	}
	var path []cct.FrameID // scratch, reused across deltas
	for wi := range ts.Windows {
		w := &ts.Windows[wi]
		wa := ix.windows[w.Index]
		if wa == nil {
			wa = &windowAgg{profile: cct.NewProfile(0, 0, "")}
			ix.windows[w.Index] = wa
		}
		for di := range w.Deltas {
			d := &w.Deltas[di]
			if int(d.Class) >= cct.NumClasses || d.Node == nil {
				continue // defensive; the decoder validates these
			}
			path = idPath(d.Node, path[:0])
			wa.profile.Trees[d.Class].AddSampleIDs(path, &d.Metrics)
			wa.total.Add(&d.Metrics)
		}
	}
	ix.Series++
	return nil
}

// idPath collects n's root-to-node frame IDs into buf (reused) by climbing
// parents and reversing — the inverse of InsertPathIDs.
func idPath(n *cct.Node, buf []cct.FrameID) []cct.FrameID {
	for cur := n; cur != nil && cur.Frame.Kind != cct.KindRoot; cur = cur.Parent() {
		buf = append(buf, cur.ID())
	}
	for i, j := 0, len(buf)-1; i < j; i, j = i+1, j-1 {
		buf[i], buf[j] = buf[j], buf[i]
	}
	return buf
}

// WindowIndices returns the non-empty window indices in ascending order.
func (ix *Index) WindowIndices() []uint64 {
	out := make([]uint64, 0, len(ix.windows))
	for w := range ix.windows {
		out = append(out, w)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Span returns the covered sim-time range [start, end) in cycles, from the
// first non-empty window's start to the last one's end. Zero when empty.
func (ix *Index) Span() (start, end uint64) {
	if len(ix.windows) == 0 {
		return 0, 0
	}
	first, last := false, uint64(0)
	var lo uint64
	for w := range ix.windows {
		if !first || w < lo {
			lo = w
		}
		if !first || w > last {
			last = w
		}
		first = true
	}
	return lo * ix.width, (last + 1) * ix.width
}

// Clip merges every window overlapping the sim-time range [t0, t1) into a
// fresh profile — clipping is at window granularity, so a partially
// overlapped window contributes in full. The result aliases nothing in the
// index and may be mutated freely. An empty overlap yields an empty
// profile (identity fields still set).
func (ix *Index) Clip(t0, t1 uint64) *cct.Profile {
	out := cct.NewProfile(ix.rank, ix.thread, ix.event)
	if t1 <= t0 || len(ix.windows) == 0 {
		return out
	}
	w0 := t0 / ix.width
	w1 := (t1 - 1) / ix.width
	for _, w := range ix.WindowIndices() {
		if w < w0 || w > w1 {
			continue
		}
		out.Merge(ix.windows[w].profile)
	}
	return out
}

// WindowProfile returns a fresh merged copy of the single window w, or an
// empty profile when the window recorded nothing.
func (ix *Index) WindowProfile(w uint64) *cct.Profile {
	if ix.width == 0 {
		return cct.NewProfile(ix.rank, ix.thread, ix.event)
	}
	return ix.Clip(w*ix.width, (w+1)*ix.width)
}

// WindowTotal returns window w's aggregate metric vector across all
// classes (zero when the window recorded nothing).
func (ix *Index) WindowTotal(w uint64) metric.Vector {
	if wa := ix.windows[w]; wa != nil {
		return wa.total
	}
	return metric.Vector{}
}
