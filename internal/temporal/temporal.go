// Package temporal adds the time axis to data-centric profiles.
//
// The cumulative CCT answers "where did the latency go over the whole
// run"; a NUMA storm confined to one phase disappears into that average.
// This package keeps "when" alongside "where" at three points of the
// pipeline:
//
//   - Recorder buckets each sample's metric vector into fixed-width
//     windows of the sampled thread's sim clock, on the profiler hot
//     path, without allocating in steady state. The result rides on the
//     profile as cct.TimeSeries and is persisted by profio as an
//     optional trailing v2 section older readers skip.
//   - Index merges the per-thread series of a measurement into
//     per-window partial profiles (window-restricted CCTs rebuilt from
//     each delta's calling context), the substrate for analysis.Clip
//     and analysis.WindowDiff.
//   - Phases runs a change-point scan over per-window aggregate
//     features (sample volume, latency per sample, remote-access
//     fraction, store fraction) and labels the segments — the
//     folding-style phase view of Servat et al., reduced to a robust
//     heuristic.
//
// Thread clocks in one measurement are mutually coherent (parallel
// regions synchronize participants at barriers), so window indices are
// directly comparable across threads and files.
package temporal

import (
	"dcprof/internal/cct"
	"dcprof/internal/metric"
)

// slot tracks one node touched in the current window: the node plus its
// cumulative metric vector as of first touch. The window's delta is
// computed at flush time as current-minus-base, so per-sample recording
// never copies or adds a vector.
type slot struct {
	node  *cct.Node
	class cct.Class
	base  metric.Vector
}

// Recorder buckets per-node metric deltas into fixed-width sim-time
// windows. It is single-threaded by design — one Recorder per profiled
// thread, living in the profiler's per-thread state.
//
// The design keeps the sample hot path to a few compares: Record is
// called BEFORE the sample's vector is added to the node, and only marks
// the node as touched in the current window, snapshotting the node's
// cumulative metrics on first touch. The per-window delta is recovered
// at window flush as (cumulative now) − (cumulative at first touch).
// "Already touched this window" is tracked in the node's scratch word
// (stamped with a counter that bumps every flush, so windows never need
// un-stamping), and "still the same window" is a subtract-and-compare
// against the window's start cycle — so the steady-state case is two
// compares and a return: no division, no map, no vector copy, and the
// whole path inlines into the profiler's record loop. Allocation happens
// only when a window flushes, which amortizes to 0 allocs/op at any
// realistic samples-per-window ratio; the hot-path bench gate enforces
// both the alloc and the ns/op budget.
type Recorder struct {
	width   uint64
	windows []cct.TimeWindow

	// Current-window accumulation state. curStart is curIdx*width, kept
	// so the fast path tests window membership without dividing. stamp
	// identifies the current window in node scratch words; flush bumps
	// it, instantly invalidating every stamped node. Starts above zero so
	// fresh nodes (scratch 0) never read as stamped.
	cur      []slot
	curIdx   uint64
	curStart uint64
	open     bool
	stamp    uint64
}

// NewRecorder creates a recorder with the given window width in sim
// cycles. Width must be positive.
func NewRecorder(width uint64) *Recorder {
	if width == 0 {
		panic("temporal: window width must be positive")
	}
	return &Recorder{width: width, stamp: 1}
}

// Width returns the window width in sim cycles.
func (r *Recorder) Width() uint64 { return r.width }

// Record marks node n of class tree `class` as sampled at sim time now.
// It MUST be called before the sample's metric vector is added to
// n.Metrics — the recorder snapshots cumulative metrics at first touch
// per window and recovers the window delta by subtraction at flush.
//
// The recorder must be the sole scratch-word user of the profile's trees
// while recording (true for per-thread profiles under the profiler).
func (r *Recorder) Record(now uint64, class cct.Class, n *cct.Node) {
	// now-curStart wraps huge when now < curStart, failing the compare;
	// a stale in-range curStart after Series is harmless because flush
	// bumped stamp, so the scratch compare fails.
	if now-r.curStart < r.width && n.Scratch() == r.stamp {
		return // steady state: node already snapshotted in this window
	}
	r.record(now, class, n)
}

// record is the slow path: window advance and/or first touch of a node.
func (r *Recorder) record(now uint64, class cct.Class, n *cct.Node) {
	idx := now / r.width
	if !r.open || idx != r.curIdx {
		r.flush()
		r.curIdx = idx
		r.curStart = idx * r.width
		r.open = true
	}
	if n.Scratch() != r.stamp {
		n.SetScratch(r.stamp)
		r.cur = append(r.cur, slot{node: n, class: class, base: n.Metrics})
	}
}

// flush materializes the current window: each touched node contributes
// its cumulative metrics minus the first-touch snapshot. Slots whose
// delta is all-zero are dropped (a Record not followed by a metric add).
func (r *Recorder) flush() {
	if r.open && len(r.cur) > 0 {
		var deltas []cct.TimeDelta
		for i := range r.cur {
			s := &r.cur[i]
			var d metric.Vector
			nonzero := false
			for j := range d {
				d[j] = s.node.Metrics[j] - s.base[j]
				if d[j] != 0 {
					nonzero = true
				}
			}
			if nonzero {
				deltas = append(deltas, cct.TimeDelta{Class: s.class, Node: s.node, Metrics: d})
			}
		}
		if len(deltas) > 0 {
			r.windows = append(r.windows, cct.TimeWindow{Index: r.curIdx, Deltas: deltas})
		}
		r.cur = r.cur[:0]
	}
	r.stamp++ // invalidate every node stamped in the closed window
}

// Series returns the recorded sidecar, flushing the in-progress window,
// or nil when nothing was recorded. Recording may continue afterwards; a
// later Series call returns the extended history (a re-opened window
// appears as a second entry with the same index, which the profio
// encoder coalesces).
func (r *Recorder) Series() *cct.TimeSeries {
	r.flush()
	r.open = false
	if len(r.windows) == 0 {
		return nil
	}
	return &cct.TimeSeries{Width: r.width, Windows: r.windows}
}
