package temporal

import (
	"errors"
	"testing"

	"dcprof/internal/cct"
	"dcprof/internal/metric"
)

func frame(name string) cct.Frame {
	return cct.Frame{Kind: cct.KindCall, Module: "m", Name: name}
}

func sampleVec(samples, latency uint64) metric.Vector {
	var v metric.Vector
	v[metric.Samples] = samples
	v[metric.Latency] = latency
	return v
}

// buildProfile makes a profile with one static-tree node per name and a
// recorder-produced series assigning each node one delta per window.
func buildProfile(rank, thread int, width uint64, names ...string) (*cct.Profile, []*cct.Node) {
	p := cct.NewProfile(rank, thread, "IBS@4096")
	nodes := make([]*cct.Node, len(names))
	for i, nm := range names {
		v := sampleVec(1, 10)
		nodes[i] = p.Trees[cct.ClassStatic].AddSample([]cct.Frame{frame(nm)}, &v)
	}
	return p, nodes
}

// addSample mirrors the profiler's sample ordering: mark the node in the
// recorder first, then add the vector to the node's cumulative metrics.
func addSample(r *Recorder, now uint64, class cct.Class, n *cct.Node, v metric.Vector) {
	r.Record(now, class, n)
	n.Metrics.Add(&v)
}

func TestRecorderWindowsAndFastPath(t *testing.T) {
	p, nodes := buildProfile(0, 0, 100, "a", "b")
	r := NewRecorder(100)
	v := sampleVec(1, 5)
	// Window 0: a, a (fast path), b. Window 2 (gap at 1): a.
	addSample(r, 10, cct.ClassStatic, nodes[0], v)
	addSample(r, 20, cct.ClassStatic, nodes[0], v)
	addSample(r, 30, cct.ClassStatic, nodes[1], v)
	addSample(r, 250, cct.ClassStatic, nodes[0], v)
	ts := r.Series()
	if ts == nil || len(ts.Windows) != 2 {
		t.Fatalf("want 2 windows, got %+v", ts)
	}
	if ts.Width != 100 {
		t.Fatalf("width = %d, want 100", ts.Width)
	}
	w0, w2 := ts.Windows[0], ts.Windows[1]
	if w0.Index != 0 || w2.Index != 2 {
		t.Fatalf("window indices = %d, %d; want 0, 2", w0.Index, w2.Index)
	}
	if len(w0.Deltas) != 2 {
		t.Fatalf("window 0 has %d deltas, want 2 (a coalesced)", len(w0.Deltas))
	}
	if got := w0.Deltas[0].Metrics[metric.Samples]; got != 2 {
		t.Fatalf("node a window-0 samples = %d, want 2", got)
	}
	if w0.Deltas[0].Node != nodes[0] || w0.Deltas[1].Node != nodes[1] {
		t.Fatalf("window 0 delta nodes wrong")
	}
	if len(w2.Deltas) != 1 || w2.Deltas[0].Node != nodes[0] {
		t.Fatalf("window 2 deltas wrong: %+v", w2.Deltas)
	}
	if ts.NumDeltas() != 3 {
		t.Fatalf("NumDeltas = %d, want 3", ts.NumDeltas())
	}
	if s, e := ts.Span(); s != 0 || e != 300 {
		t.Fatalf("Span = [%d, %d), want [0, 300)", s, e)
	}
	_ = p
}

func TestRecorderEmptySeriesNil(t *testing.T) {
	if got := NewRecorder(64).Series(); got != nil {
		t.Fatalf("empty recorder Series = %+v, want nil", got)
	}
}

func TestRecorderContinuesAfterSeries(t *testing.T) {
	_, nodes := buildProfile(0, 0, 100, "a")
	r := NewRecorder(100)
	v := sampleVec(1, 0)
	addSample(r, 10, cct.ClassStatic, nodes[0], v)
	first := r.Series()
	if len(first.Windows) != 1 {
		t.Fatalf("first Series windows = %d", len(first.Windows))
	}
	addSample(r, 20, cct.ClassStatic, nodes[0], v)
	second := r.Series()
	// Re-opened window 0 appears as a duplicate-index entry; the encoder
	// coalesces, the recorder only guarantees ascending flush order.
	total := uint64(0)
	for _, w := range second.Windows {
		if w.Index != 0 {
			t.Fatalf("unexpected window index %d", w.Index)
		}
		for _, d := range w.Deltas {
			total += d.Metrics[metric.Samples]
		}
	}
	if total != 2 {
		t.Fatalf("total samples after resume = %d, want 2", total)
	}
}

func TestIndexFoldClip(t *testing.T) {
	// Two threads; thread 0 samples "a" in window 0, thread 1 samples
	// "a" in window 0 and "b" in window 1.
	p0, n0 := buildProfile(0, 0, 0, "a")
	r0 := NewRecorder(100)
	v := sampleVec(1, 10)
	addSample(r0, 5, cct.ClassStatic, n0[0], v)
	p0.Temporal = r0.Series()

	p1, n1 := buildProfile(0, 1, 0, "a", "b")
	r1 := NewRecorder(100)
	addSample(r1, 50, cct.ClassStatic, n1[0], v)
	addSample(r1, 150, cct.ClassStatic, n1[1], v)
	p1.Temporal = r1.Series()

	ix := NewIndex()
	if err := ix.AddSeries(p1); err != nil {
		t.Fatal(err)
	}
	if err := ix.AddSeries(p0); err != nil {
		t.Fatal(err)
	}
	if ix.Series != 2 || ix.NumWindows() != 2 || ix.Width() != 100 {
		t.Fatalf("index state: series=%d windows=%d width=%d", ix.Series, ix.NumWindows(), ix.Width())
	}
	if got := ix.WindowIndices(); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("WindowIndices = %v", got)
	}

	// Window 0 holds two "a" samples merged across threads.
	w0 := ix.WindowProfile(0)
	if w0.Rank != 0 || w0.Thread != 0 || w0.Event != "IBS@4096" {
		t.Fatalf("identity = %d/%d/%q", w0.Rank, w0.Thread, w0.Event)
	}
	tot := w0.Total()
	if tot[metric.Samples] != 2 || tot[metric.Latency] != 20 {
		t.Fatalf("window 0 total = %v", tot.String())
	}
	a, ok := w0.Trees[cct.ClassStatic].Root.Lookup(frame("a"))
	if !ok || a.Metrics[metric.Samples] != 2 {
		t.Fatalf("window 0 node a missing or wrong: %v, %v", ok, a)
	}
	if _, ok := w0.Trees[cct.ClassStatic].Root.Lookup(frame("b")); ok {
		t.Fatal("window 0 must not contain b")
	}

	// Clip across both windows sees all three samples.
	all := ix.Clip(0, 200)
	if got := all.Total()[metric.Samples]; got != 3 {
		t.Fatalf("full clip samples = %d, want 3", got)
	}
	// Clip with a partial overlap still includes the whole window.
	part := ix.Clip(150, 160)
	if got := part.Total()[metric.Samples]; got != 1 {
		t.Fatalf("partial clip samples = %d, want 1", got)
	}
	// Empty and inverted ranges yield empty profiles.
	if got := ix.Clip(10_000, 20_000).Total(); !got.IsZero() {
		t.Fatalf("out-of-range clip not empty: %v", got.String())
	}
	if got := ix.Clip(100, 100).Total(); !got.IsZero() {
		t.Fatalf("empty-range clip not empty: %v", got.String())
	}

	// Clipped profiles alias nothing: mutating the clip leaves the index
	// unchanged.
	a.Metrics[metric.Samples] = 999
	if got := ix.WindowProfile(0).Total()[metric.Samples]; got != 2 {
		t.Fatalf("index mutated through clip: samples = %d", got)
	}
}

func TestIndexWidthMismatch(t *testing.T) {
	p0, n0 := buildProfile(0, 0, 0, "a")
	r0 := NewRecorder(100)
	v := sampleVec(1, 0)
	addSample(r0, 5, cct.ClassStatic, n0[0], v)
	p0.Temporal = r0.Series()

	p1, n1 := buildProfile(0, 1, 0, "a")
	r1 := NewRecorder(200)
	addSample(r1, 5, cct.ClassStatic, n1[0], v)
	p1.Temporal = r1.Series()

	ix := NewIndex()
	if err := ix.AddSeries(p0); err != nil {
		t.Fatal(err)
	}
	err := ix.AddSeries(p1)
	if !errors.Is(err, ErrWidthMismatch) {
		t.Fatalf("err = %v, want ErrWidthMismatch", err)
	}
	if ix.Dropped != 1 || ix.Series != 1 {
		t.Fatalf("dropped=%d series=%d", ix.Dropped, ix.Series)
	}
	if got := ix.Clip(0, 1000).Total()[metric.Samples]; got != 1 {
		t.Fatalf("index changed by rejected series: samples = %d", got)
	}
}

func TestIndexIgnoresProfilesWithoutSidecar(t *testing.T) {
	p, _ := buildProfile(0, 0, 0, "a")
	ix := NewIndex()
	if err := ix.AddSeries(p); err != nil {
		t.Fatal(err)
	}
	if ix.Series != 0 || ix.NumWindows() != 0 {
		t.Fatalf("series=%d windows=%d, want 0/0", ix.Series, ix.NumWindows())
	}
	if ix.Phases() != nil {
		t.Fatal("empty index must have nil phases")
	}
}

// remoteVec builds a vector with the given remote fraction.
func remoteVec(samples, remote uint64) metric.Vector {
	var v metric.Vector
	v[metric.Samples] = samples
	v[metric.FromRMEM] = remote
	v[metric.FromLMEM] = samples - remote
	v[metric.Latency] = samples * 10
	return v
}

func TestPhasesTwoPhase(t *testing.T) {
	// 16 windows: 8 local then 8 remote-dominated. The detector must cut
	// within one window of the true boundary at window 8 and label both
	// sides.
	p, nodes := buildProfile(0, 0, 0, "a")
	r := NewRecorder(100)
	for w := uint64(0); w < 16; w++ {
		v := remoteVec(100, 0)
		if w >= 8 {
			v = remoteVec(100, 80)
		}
		addSample(r, w*100+50, cct.ClassStatic, nodes[0], v)
	}
	p.Temporal = r.Series()
	ix := NewIndex()
	if err := ix.AddSeries(p); err != nil {
		t.Fatal(err)
	}
	phases := ix.Phases()
	if len(phases) != 2 {
		t.Fatalf("got %d phases (%+v), want 2", len(phases), phases)
	}
	cut := phases[1].StartWindow
	if cut < 7 || cut > 9 {
		t.Fatalf("boundary at window %d, want 8±1", cut)
	}
	if phases[0].Label != "local" || phases[1].Label != "numa-remote" {
		t.Fatalf("labels = %q, %q", phases[0].Label, phases[1].Label)
	}
	if phases[0].Start != 0 || phases[1].End != 1600 {
		t.Fatalf("phase cycle bounds: %+v", phases)
	}
	if phases[0].End != phases[1].Start {
		t.Fatal("phases must tile the span")
	}
	if phases[0].Samples+phases[1].Samples != 1600 {
		t.Fatalf("phase samples don't sum: %+v", phases)
	}
}

func TestPhasesUniformSinglePhase(t *testing.T) {
	p, nodes := buildProfile(0, 0, 0, "a")
	r := NewRecorder(100)
	for w := uint64(0); w < 12; w++ {
		v := remoteVec(100, 10)
		addSample(r, w*100, cct.ClassStatic, nodes[0], v)
	}
	p.Temporal = r.Series()
	ix := NewIndex()
	if err := ix.AddSeries(p); err != nil {
		t.Fatal(err)
	}
	phases := ix.Phases()
	if len(phases) != 1 {
		t.Fatalf("uniform run split into %d phases: %+v", len(phases), phases)
	}
	if phases[0].Label != "local" {
		t.Fatalf("label = %q", phases[0].Label)
	}
}

func TestPhasesIdleGap(t *testing.T) {
	// Active, idle gap, active: the gap must surface as an idle phase.
	p, nodes := buildProfile(0, 0, 0, "a")
	r := NewRecorder(100)
	for w := uint64(0); w < 18; w++ {
		if w >= 6 && w < 12 {
			continue // idle
		}
		v := remoteVec(100, 0)
		addSample(r, w*100, cct.ClassStatic, nodes[0], v)
	}
	p.Temporal = r.Series()
	ix := NewIndex()
	if err := ix.AddSeries(p); err != nil {
		t.Fatal(err)
	}
	phases := ix.Phases()
	var idle *Phase
	for i := range phases {
		if phases[i].Label == "idle" {
			idle = &phases[i]
		}
	}
	if idle == nil {
		t.Fatalf("no idle phase in %+v", phases)
	}
	if idle.Samples != 0 {
		t.Fatalf("idle phase has %d samples", idle.Samples)
	}
	if idle.StartWindow > 7 || idle.EndWindow < 10 {
		t.Fatalf("idle phase [%d, %d] misses the gap", idle.StartWindow, idle.EndWindow)
	}
}

func TestPhasesSparseSpanIsCheap(t *testing.T) {
	// Two bursts separated by an astronomically long idle gap. The scan
	// must cost O(recorded windows), never O(span): before the sparse
	// table this densified ~2^45 windows — a makeslice panic or OOM —
	// and the gap was remotely reachable via uploaded sidecars, whose
	// span guard is only relative to each file's own first window.
	p, nodes := buildProfile(0, 0, 0, "a")
	const far = uint64(1) << 45
	ts := &cct.TimeSeries{Width: 100}
	for w := uint64(0); w < 8; w++ {
		ts.Windows = append(ts.Windows, cct.TimeWindow{Index: w, Deltas: []cct.TimeDelta{
			{Class: cct.ClassStatic, Node: nodes[0], Metrics: remoteVec(100, 0)},
		}})
	}
	for w := far; w < far+8; w++ {
		ts.Windows = append(ts.Windows, cct.TimeWindow{Index: w, Deltas: []cct.TimeDelta{
			{Class: cct.ClassStatic, Node: nodes[0], Metrics: remoteVec(100, 80)},
		}})
	}
	p.Temporal = ts
	ix := NewIndex()
	if err := ix.AddSeries(p); err != nil {
		t.Fatal(err)
	}
	phases := ix.Phases()
	if len(phases) != 3 {
		t.Fatalf("got %d phases (%+v), want local/idle/numa-remote", len(phases), phases)
	}
	if phases[0].Label != "local" || phases[1].Label != "idle" || phases[2].Label != "numa-remote" {
		t.Fatalf("labels = %q, %q, %q", phases[0].Label, phases[1].Label, phases[2].Label)
	}
	// Phases still tile the whole span, compressed gap included.
	if phases[0].Start != 0 || phases[2].End != (far+8)*100 {
		t.Fatalf("span bounds: %+v", phases)
	}
	for i := 1; i < len(phases); i++ {
		if phases[i].Start != phases[i-1].End || phases[i].StartWindow != phases[i-1].EndWindow+1 {
			t.Fatalf("phases %d and %d don't tile: %+v", i-1, i, phases)
		}
	}
	if phases[0].Samples+phases[2].Samples != 1600 || phases[1].Samples != 0 {
		t.Fatalf("phase samples: %+v", phases)
	}
}

func TestAddSeriesRejectsSimClockOverflow(t *testing.T) {
	// A window whose start cycle exceeds uint64 would wrap every Span,
	// Clip, and Phases computation; AddSeries must drop the series whole.
	p, nodes := buildProfile(0, 0, 0, "a")
	p.Temporal = &cct.TimeSeries{Width: 100, Windows: []cct.TimeWindow{
		{Index: ^uint64(0) / 100, Deltas: []cct.TimeDelta{
			{Class: cct.ClassStatic, Node: nodes[0], Metrics: sampleVec(1, 10)},
		}},
	}}
	ix := NewIndex()
	if err := ix.AddSeries(p); err == nil {
		t.Fatal("sim-clock-overflowing series accepted")
	}
	if ix.Dropped != 1 || ix.Series != 0 || ix.NumWindows() != 0 {
		t.Fatalf("dropped=%d series=%d windows=%d, want 1/0/0", ix.Dropped, ix.Series, ix.NumWindows())
	}
}

func TestParseWindowSpec(t *testing.T) {
	t0, t1, err := ParseWindowSpec("100:6400")
	if err != nil || t0 != 100 || t1 != 6400 {
		t.Fatalf("got %d, %d, %v", t0, t1, err)
	}
	for _, bad := range []string{"", "100", ":", "a:b", "100:", ":200", "200:100", "100:100", "-1:5", "1:2:3"} {
		if _, _, err := ParseWindowSpec(bad); err == nil {
			t.Errorf("ParseWindowSpec(%q) accepted", bad)
		}
	}
	if got := FormatWindowSpec(100, 6400); got != "100:6400" {
		t.Fatalf("FormatWindowSpec = %q", got)
	}
}

func TestParseWindowPair(t *testing.T) {
	w1, w2, err := ParseWindowPair("3:3")
	if err != nil || w1 != 3 || w2 != 3 {
		t.Fatalf("got %d, %d, %v", w1, w2, err)
	}
	if _, _, err := ParseWindowPair("9:2"); err != nil {
		t.Fatalf("descending pair rejected: %v", err)
	}
	for _, bad := range []string{"", "3", "x:y", "3:"} {
		if _, _, err := ParseWindowPair(bad); err == nil {
			t.Errorf("ParseWindowPair(%q) accepted", bad)
		}
	}
}
