package temporal

// Phase detection: a change-point scan over per-window aggregate features.
//
// Per the folding idea of Servat et al., phase structure shows up in the
// coarse shape of a few per-window aggregates long before any per-node
// detail is needed. We build a small feature vector per window — sample
// volume, latency per sample, remote-access fraction, store fraction —
// normalize each feature to [0, 1] over the run, and mark a boundary
// wherever the L1 distance between the mean feature vectors of the k
// windows before and after a point is a local maximum above a threshold.
// Segments between boundaries are labeled from their aggregate mix.
//
// One deliberate deviation from the issue's sketch: the model carries no
// per-access byte counts, so "bytes" is stood in for by the store
// fraction, which separates streaming-write phases from read phases just
// as well on the workloads we model.

import "dcprof/internal/metric"

// Phase is one detected phase: a contiguous run of windows with similar
// aggregate behavior.
type Phase struct {
	// Start and End bound the phase in sim cycles: [Start, End).
	Start uint64 `json:"start"`
	End   uint64 `json:"end"`
	// StartWindow and EndWindow are the inclusive window-index bounds.
	StartWindow uint64 `json:"start_window"`
	EndWindow   uint64 `json:"end_window"`
	// Label classifies the phase's dominant behavior: "idle" (no
	// samples), "numa-remote" (remote-access heavy), "streaming"
	// (store heavy), or "local".
	Label string `json:"label"`
	// Samples is the total sample count inside the phase.
	Samples uint64 `json:"samples"`
}

// Tunables of the detector. Fixed rather than configurable: the scan is a
// presentation heuristic, and stable output across invocations matters
// more than per-run knobs.
const (
	// phaseThreshold is the minimum normalized L1 distance (averaged over
	// features, so itself in [0, 1]) for a boundary.
	phaseThreshold = 0.25
	// phaseMaxK caps the comparison half-window.
	phaseMaxK = 3
	// remoteFrac labels a phase numa-remote when at least this fraction
	// of its samples were served by remote memory or a remote L3.
	remoteFrac = 0.25
	// storeFrac labels a phase streaming when at least this fraction of
	// its samples were stores.
	storeFrac = 0.4
	// phaseGapLimit bounds how many idle windows a gap between two
	// recorded windows materializes in the scan table. A gap longer than
	// this keeps phaseGapLimit/2 idle windows at each edge — enough, with
	// k ≤ phaseMaxK, that the scan sees the same scores and local maxima
	// it would over the full run of identical idle windows — so the table
	// stays O(recorded windows) no matter how sparse the indices are.
	phaseGapLimit = 4 * phaseMaxK
)

const numFeatures = 4

// features computes one window's normalized-later feature vector.
func features(v *metric.Vector) [numFeatures]float64 {
	s := float64(v[metric.Samples])
	var f [numFeatures]float64
	f[0] = s
	if s > 0 {
		f[1] = float64(v[metric.Latency]) / s
		f[2] = float64(v[metric.FromRMEM]+v[metric.FromRL3]) / s
		f[3] = float64(v[metric.Stores]) / s
	}
	return f
}

// Phases segments the run into phases. Gaps between recorded windows
// count as idle windows with zero features, so a computation pause is
// itself a detectable phase — but the scan table is built from the sparse
// sorted window list with long gaps compressed (see phaseGapLimit), never
// densified over the span: window indices come from decoded sidecars, so
// two far-apart indices must cost what they hold, not what they claim.
// Returns nil when the index holds no windows.
func (ix *Index) Phases() []Phase {
	if len(ix.windows) == 0 {
		return nil
	}

	// Scan table: one entry per recorded window plus the (possibly
	// compressed) idle windows between them. win holds each entry's
	// absolute window index; entries are strictly ascending.
	wins := ix.WindowIndices()
	win := make([]uint64, 0, len(wins))
	totals := make([]metric.Vector, 0, len(wins))
	idle := func(w uint64) {
		win = append(win, w)
		totals = append(totals, metric.Vector{})
	}
	for i, w := range wins {
		if i > 0 {
			prev := wins[i-1]
			if gap := w - prev - 1; gap <= phaseGapLimit {
				for g := prev + 1; g < w; g++ {
					idle(g)
				}
			} else {
				// Long gap: idle edges only. Interior idle windows all
				// score zero, so dropping them changes no boundary.
				const half = uint64(phaseGapLimit / 2)
				for g := prev + 1; g <= prev+half; g++ {
					idle(g)
				}
				for g := w - half; g < w; g++ {
					idle(g)
				}
			}
		}
		win = append(win, w)
		totals = append(totals, ix.WindowTotal(w))
	}
	n := len(win)

	// Per-entry feature table, then per-feature max-normalization so
	// every feature contributes on the same [0, 1] scale.
	feat := make([][numFeatures]float64, n)
	for i := 0; i < n; i++ {
		feat[i] = features(&totals[i])
	}
	var max [numFeatures]float64
	for i := range feat {
		for j, x := range feat[i] {
			if x > max[j] {
				max[j] = x
			}
		}
	}
	for i := range feat {
		for j := range feat[i] {
			if max[j] > 0 {
				feat[i][j] /= max[j]
			}
		}
	}

	boundaries := changePoints(feat)

	// Cut the table at the boundaries and label each segment. Window
	// bounds come from the entries' absolute indices, so phases still
	// tile the whole span: a segment ends where the next one starts,
	// compressed gap interiors included.
	var phases []Phase
	segStart := 0
	for _, b := range append(boundaries, n) {
		if b == segStart {
			continue
		}
		var agg metric.Vector
		for i := segStart; i < b; i++ {
			agg.Add(&totals[i])
		}
		endWindow := win[n-1]
		if b < n {
			endWindow = win[b] - 1
		}
		phases = append(phases, Phase{
			Start:       win[segStart] * ix.width,
			End:         (endWindow + 1) * ix.width,
			StartWindow: win[segStart],
			EndWindow:   endWindow,
			Label:       labelPhase(&agg),
			Samples:     agg[metric.Samples],
		})
		segStart = b
	}
	return phases
}

// changePoints returns the indices (into feat) where a new segment
// starts, in ascending order. A point b scores the L1 distance between
// the mean feature vectors of feat[b-k:b] and feat[b:b+k]; boundaries are
// local maxima above phaseThreshold, at least k apart.
func changePoints(feat [][numFeatures]float64) []int {
	n := len(feat)
	k := n / 4
	if k > phaseMaxK {
		k = phaseMaxK
	}
	if k < 1 {
		return nil // too short to segment
	}
	score := make([]float64, n)
	for b := k; b+k <= n; b++ {
		var d float64
		for j := 0; j < numFeatures; j++ {
			var left, right float64
			for i := b - k; i < b; i++ {
				left += feat[i][j]
			}
			for i := b; i < b+k; i++ {
				right += feat[i][j]
			}
			diff := (left - right) / float64(k)
			if diff < 0 {
				diff = -diff
			}
			d += diff
		}
		score[b] = d / numFeatures
	}
	var out []int
	last := -k // allow a boundary at index k
	for b := k; b+k <= n; b++ {
		if score[b] < phaseThreshold || b-last < k {
			continue
		}
		// Local maximum: no strictly higher score within k on either side.
		peak := true
		for o := 1; o <= k && peak; o++ {
			if b-o >= 0 && score[b-o] > score[b] {
				peak = false
			}
			if b+o < n && score[b+o] > score[b] {
				peak = false
			}
		}
		if peak {
			out = append(out, b)
			last = b
		}
	}
	return out
}

// labelPhase classifies a segment from its aggregate metric mix.
func labelPhase(v *metric.Vector) string {
	s := float64(v[metric.Samples])
	if s == 0 {
		return "idle"
	}
	if float64(v[metric.FromRMEM]+v[metric.FromRL3])/s >= remoteFrac {
		return "numa-remote"
	}
	if float64(v[metric.Stores])/s >= storeFrac {
		return "streaming"
	}
	return "local"
}
