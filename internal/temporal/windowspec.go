package temporal

// Window-spec parsing shared by the dcview flags (-window, -window-diff)
// and the server's ?window= query parameter, so both surfaces accept and
// reject exactly the same strings.

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseWindowSpec parses a "t0:t1" sim-cycle range (decimal, t1 > t0),
// e.g. "0:65536".
func ParseWindowSpec(s string) (t0, t1 uint64, err error) {
	t0, t1, err = parsePair(s)
	if err != nil {
		return 0, 0, fmt.Errorf("window spec %q: %w (want t0:t1 in sim cycles)", s, err)
	}
	if t1 <= t0 {
		return 0, 0, fmt.Errorf("window spec %q: end %d not after start %d", s, t1, t0)
	}
	return t0, t1, nil
}

// ParseWindowPair parses a "w1:w2" pair of window indices for diffing
// (decimal; any two indices, equal allowed — diffing a window against
// itself is a valid no-op query).
func ParseWindowPair(s string) (w1, w2 uint64, err error) {
	w1, w2, err = parsePair(s)
	if err != nil {
		return 0, 0, fmt.Errorf("window pair %q: %w (want w1:w2 window indices)", s, err)
	}
	return w1, w2, nil
}

// FormatWindowSpec renders the canonical spec for a range, the inverse of
// ParseWindowSpec — used to derive stable cache keys.
func FormatWindowSpec(t0, t1 uint64) string {
	return strconv.FormatUint(t0, 10) + ":" + strconv.FormatUint(t1, 10)
}

func parsePair(s string) (a, b uint64, err error) {
	lhs, rhs, ok := strings.Cut(s, ":")
	if !ok {
		return 0, 0, fmt.Errorf("missing ':'")
	}
	a, err = strconv.ParseUint(lhs, 10, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("bad start %q", lhs)
	}
	b, err = strconv.ParseUint(rhs, 10, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("bad end %q", rhs)
	}
	return a, b, nil
}
