// Package machine models the topology of a multi-socket NUMA node: sockets,
// cores, SMT hardware threads, and NUMA locality domains.
//
// The paper evaluates on two platforms: a POWER7 cluster node (four sockets,
// 128 hardware threads, four NUMA domains — one per socket) and a four-socket
// AMD Magny-Cours server (48 cores, eight NUMA domains — Magny-Cours packages
// hold two dies, each die being its own locality domain). Both are available
// as presets.
package machine

import "fmt"

// Topology describes the static shape of one node.
//
// Hardware threads are numbered 0..NumHWThreads()-1 in socket-major order:
// all SMT threads of core 0 of socket 0, then core 1 of socket 0, and so on.
// NUMA domains partition the sockets' dies evenly.
type Topology struct {
	// Name identifies the preset (for reports).
	Name string
	// Sockets is the number of processor packages.
	Sockets int
	// CoresPerSocket is the number of physical cores per package.
	CoresPerSocket int
	// ThreadsPerCore is the SMT degree (1 = no SMT).
	ThreadsPerCore int
	// NUMADomains is the number of memory locality domains. It must be a
	// multiple of Sockets (each socket holds NUMADomains/Sockets dies, each
	// with its own memory controller).
	NUMADomains int
}

// Validate reports whether the topology is internally consistent.
func (t Topology) Validate() error {
	switch {
	case t.Sockets <= 0:
		return fmt.Errorf("machine: %s: sockets must be positive, got %d", t.Name, t.Sockets)
	case t.CoresPerSocket <= 0:
		return fmt.Errorf("machine: %s: cores per socket must be positive, got %d", t.Name, t.CoresPerSocket)
	case t.ThreadsPerCore <= 0:
		return fmt.Errorf("machine: %s: threads per core must be positive, got %d", t.Name, t.ThreadsPerCore)
	case t.NUMADomains <= 0:
		return fmt.Errorf("machine: %s: NUMA domains must be positive, got %d", t.Name, t.NUMADomains)
	case t.NUMADomains%t.Sockets != 0:
		return fmt.Errorf("machine: %s: NUMA domains (%d) must be a multiple of sockets (%d)",
			t.Name, t.NUMADomains, t.Sockets)
	case t.CoresPerSocket%(t.NUMADomains/t.Sockets) != 0:
		return fmt.Errorf("machine: %s: cores per socket (%d) must divide evenly into %d dies",
			t.Name, t.CoresPerSocket, t.NUMADomains/t.Sockets)
	}
	return nil
}

// NumCores returns the total number of physical cores on the node.
func (t Topology) NumCores() int { return t.Sockets * t.CoresPerSocket }

// NumHWThreads returns the total number of hardware threads on the node.
func (t Topology) NumHWThreads() int { return t.NumCores() * t.ThreadsPerCore }

// DiesPerSocket returns the number of NUMA domains contributed by one socket.
func (t Topology) DiesPerSocket() int { return t.NUMADomains / t.Sockets }

// CoresPerDomain returns the number of physical cores in one NUMA domain.
func (t Topology) CoresPerDomain() int { return t.NumCores() / t.NUMADomains }

// CoreOf returns the physical core a hardware thread runs on.
func (t Topology) CoreOf(hwThread int) int {
	t.mustContainThread(hwThread)
	return hwThread / t.ThreadsPerCore
}

// SocketOf returns the socket a hardware thread belongs to.
func (t Topology) SocketOf(hwThread int) int {
	return t.CoreOf(hwThread) / t.CoresPerSocket
}

// SocketOfCore returns the socket a physical core belongs to.
func (t Topology) SocketOfCore(core int) int {
	t.mustContainCore(core)
	return core / t.CoresPerSocket
}

// DomainOf returns the NUMA domain a hardware thread's core belongs to.
func (t Topology) DomainOf(hwThread int) int {
	return t.DomainOfCore(t.CoreOf(hwThread))
}

// DomainOfCore returns the NUMA domain of a physical core.
func (t Topology) DomainOfCore(core int) int {
	t.mustContainCore(core)
	return core / t.CoresPerDomain()
}

// ThreadsOfDomain returns the hardware-thread ids whose cores live in the
// given NUMA domain, in ascending order.
func (t Topology) ThreadsOfDomain(domain int) []int {
	if domain < 0 || domain >= t.NUMADomains {
		panic(fmt.Sprintf("machine: domain %d out of range [0,%d)", domain, t.NUMADomains))
	}
	perDomain := t.CoresPerDomain() * t.ThreadsPerCore
	ids := make([]int, perDomain)
	base := domain * perDomain
	for i := range ids {
		ids[i] = base + i
	}
	return ids
}

// IsLocal reports whether an access from the given hardware thread to memory
// homed in the given domain is NUMA-local.
func (t Topology) IsLocal(hwThread, domain int) bool {
	return t.DomainOf(hwThread) == domain
}

// DomainDistance returns the interconnect hop count between two NUMA
// domains: 0 for the same domain, 1 for two dies in one package (the
// Magny-Cours on-package HT link), 2 across packages. Single-die-per-socket
// machines (POWER7) see only 0 or 2.
func (t Topology) DomainDistance(a, b int) int {
	if a < 0 || a >= t.NUMADomains || b < 0 || b >= t.NUMADomains {
		panic(fmt.Sprintf("machine: domain pair (%d,%d) out of range [0,%d)", a, b, t.NUMADomains))
	}
	switch {
	case a == b:
		return 0
	case a/t.DiesPerSocket() == b/t.DiesPerSocket():
		return 1
	default:
		return 2
	}
}

func (t Topology) mustContainThread(hw int) {
	if hw < 0 || hw >= t.NumHWThreads() {
		panic(fmt.Sprintf("machine: hardware thread %d out of range [0,%d)", hw, t.NumHWThreads()))
	}
}

func (t Topology) mustContainCore(core int) {
	if core < 0 || core >= t.NumCores() {
		panic(fmt.Sprintf("machine: core %d out of range [0,%d)", core, t.NumCores()))
	}
}

// String renders a compact one-line description.
func (t Topology) String() string {
	return fmt.Sprintf("%s: %d sockets x %d cores x %d SMT = %d HW threads, %d NUMA domains",
		t.Name, t.Sockets, t.CoresPerSocket, t.ThreadsPerCore, t.NumHWThreads(), t.NUMADomains)
}

// Power7Node is the paper's first test platform: one node of the POWER7
// cluster — four POWER7 processors, 128 hardware threads total, one NUMA
// domain per socket.
func Power7Node() Topology {
	return Topology{
		Name:           "power7",
		Sockets:        4,
		CoresPerSocket: 8,
		ThreadsPerCore: 4,
		NUMADomains:    4,
	}
}

// MagnyCours48 is the paper's second test platform: a single-node server
// with four AMD Magny-Cours packages, 48 cores and 8 NUMA locality domains
// (each package carries two six-core dies).
func MagnyCours48() Topology {
	return Topology{
		Name:           "magny-cours",
		Sockets:        4,
		CoresPerSocket: 12,
		ThreadsPerCore: 1,
		NUMADomains:    8,
	}
}

// Tiny returns a small topology convenient for unit tests: two sockets, two
// cores each, no SMT, two NUMA domains.
func Tiny() Topology {
	return Topology{
		Name:           "tiny",
		Sockets:        2,
		CoresPerSocket: 2,
		ThreadsPerCore: 1,
		NUMADomains:    2,
	}
}
