package machine

import (
	"testing"
	"testing/quick"
)

func TestPresetsValidate(t *testing.T) {
	for _, top := range []Topology{Power7Node(), MagnyCours48(), Tiny()} {
		if err := top.Validate(); err != nil {
			t.Errorf("%s: unexpected validation error: %v", top.Name, err)
		}
	}
}

func TestValidateRejectsBadShapes(t *testing.T) {
	cases := []Topology{
		{Name: "zero-sockets", Sockets: 0, CoresPerSocket: 2, ThreadsPerCore: 1, NUMADomains: 1},
		{Name: "zero-cores", Sockets: 2, CoresPerSocket: 0, ThreadsPerCore: 1, NUMADomains: 2},
		{Name: "zero-smt", Sockets: 2, CoresPerSocket: 2, ThreadsPerCore: 0, NUMADomains: 2},
		{Name: "zero-domains", Sockets: 2, CoresPerSocket: 2, ThreadsPerCore: 1, NUMADomains: 0},
		{Name: "domains-not-multiple", Sockets: 2, CoresPerSocket: 2, ThreadsPerCore: 1, NUMADomains: 3},
		{Name: "cores-dont-split", Sockets: 1, CoresPerSocket: 3, ThreadsPerCore: 1, NUMADomains: 2},
	}
	for _, c := range cases {
		if err := c.Validate(); err == nil {
			t.Errorf("%s: expected validation error, got nil", c.Name)
		}
	}
}

func TestPower7Shape(t *testing.T) {
	p := Power7Node()
	if got := p.NumHWThreads(); got != 128 {
		t.Errorf("NumHWThreads() = %d, want 128", got)
	}
	if got := p.NumCores(); got != 32 {
		t.Errorf("NumCores() = %d, want 32", got)
	}
	if got := p.CoresPerDomain(); got != 8 {
		t.Errorf("CoresPerDomain() = %d, want 8", got)
	}
	// Thread 0 is on core 0, socket 0, domain 0.
	if d := p.DomainOf(0); d != 0 {
		t.Errorf("DomainOf(0) = %d, want 0", d)
	}
	// Last thread is on the last core of the last socket, domain 3.
	if d := p.DomainOf(127); d != 3 {
		t.Errorf("DomainOf(127) = %d, want 3", d)
	}
	if c := p.CoreOf(127); c != 31 {
		t.Errorf("CoreOf(127) = %d, want 31", c)
	}
	if s := p.SocketOf(127); s != 3 {
		t.Errorf("SocketOf(127) = %d, want 3", s)
	}
}

func TestMagnyCoursShape(t *testing.T) {
	m := MagnyCours48()
	if got := m.NumCores(); got != 48 {
		t.Errorf("NumCores() = %d, want 48", got)
	}
	if got := m.NUMADomains; got != 8 {
		t.Errorf("NUMADomains = %d, want 8", got)
	}
	if got := m.CoresPerDomain(); got != 6 {
		t.Errorf("CoresPerDomain() = %d, want 6", got)
	}
	if got := m.DiesPerSocket(); got != 2 {
		t.Errorf("DiesPerSocket() = %d, want 2", got)
	}
	// Cores 0-5 in domain 0, 6-11 in domain 1 (second die of socket 0).
	if d := m.DomainOfCore(5); d != 0 {
		t.Errorf("DomainOfCore(5) = %d, want 0", d)
	}
	if d := m.DomainOfCore(6); d != 1 {
		t.Errorf("DomainOfCore(6) = %d, want 1", d)
	}
	if s := m.SocketOfCore(6); s != 0 {
		t.Errorf("SocketOfCore(6) = %d, want 0", s)
	}
}

func TestThreadsOfDomainPartition(t *testing.T) {
	for _, top := range []Topology{Power7Node(), MagnyCours48(), Tiny()} {
		seen := make(map[int]int)
		for d := 0; d < top.NUMADomains; d++ {
			for _, hw := range top.ThreadsOfDomain(d) {
				seen[hw]++
				if got := top.DomainOf(hw); got != d {
					t.Errorf("%s: thread %d listed in domain %d but DomainOf = %d", top.Name, hw, d, got)
				}
			}
		}
		if len(seen) != top.NumHWThreads() {
			t.Errorf("%s: domains cover %d threads, want %d", top.Name, len(seen), top.NumHWThreads())
		}
		for hw, n := range seen {
			if n != 1 {
				t.Errorf("%s: thread %d appears in %d domains", top.Name, hw, n)
			}
		}
	}
}

func TestIsLocal(t *testing.T) {
	top := Tiny()
	// Tiny: threads 0,1 in domain 0; threads 2,3 in domain 1.
	if !top.IsLocal(0, 0) {
		t.Error("thread 0 should be local to domain 0")
	}
	if top.IsLocal(0, 1) {
		t.Error("thread 0 should not be local to domain 1")
	}
	if !top.IsLocal(3, 1) {
		t.Error("thread 3 should be local to domain 1")
	}
}

func TestOutOfRangePanics(t *testing.T) {
	top := Tiny()
	for name, fn := range map[string]func(){
		"CoreOf-negative":     func() { top.CoreOf(-1) },
		"CoreOf-too-big":      func() { top.CoreOf(top.NumHWThreads()) },
		"DomainOfCore-big":    func() { top.DomainOfCore(top.NumCores()) },
		"ThreadsOfDomain-big": func() { top.ThreadsOfDomain(top.NUMADomains) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

// TestDomainMappingConsistency checks, by exhaustive property, that the
// thread→core→socket/domain maps agree on every valid preset thread.
func TestDomainMappingConsistency(t *testing.T) {
	for _, top := range []Topology{Power7Node(), MagnyCours48(), Tiny()} {
		for hw := 0; hw < top.NumHWThreads(); hw++ {
			core := top.CoreOf(hw)
			if got, want := top.DomainOf(hw), top.DomainOfCore(core); got != want {
				t.Fatalf("%s thread %d: DomainOf=%d DomainOfCore=%d", top.Name, hw, got, want)
			}
			if got, want := top.SocketOf(hw), top.SocketOfCore(core); got != want {
				t.Fatalf("%s thread %d: SocketOf=%d SocketOfCore=%d", top.Name, hw, got, want)
			}
			// A domain never spans sockets.
			if top.SocketOf(hw) != top.DomainOf(hw)/top.DiesPerSocket() {
				t.Fatalf("%s thread %d: domain %d not contained in socket %d",
					top.Name, hw, top.DomainOf(hw), top.SocketOf(hw))
			}
		}
	}
}

// Property: for any valid small topology, every hardware thread maps to a
// core within range and a domain within range, and locality is reflexive
// with respect to the thread's own domain.
func TestQuickThreadMapsInRange(t *testing.T) {
	f := func(s, c, smt, dies uint8) bool {
		top := Topology{
			Name:           "quick",
			Sockets:        int(s%4) + 1,
			CoresPerSocket: int(c%8) + 1,
			ThreadsPerCore: int(smt%4) + 1,
		}
		d := int(dies%2) + 1
		if top.CoresPerSocket%d != 0 {
			return true // shape not constructible; skip
		}
		top.NUMADomains = top.Sockets * d
		if err := top.Validate(); err != nil {
			return false
		}
		for hw := 0; hw < top.NumHWThreads(); hw++ {
			core := top.CoreOf(hw)
			if core < 0 || core >= top.NumCores() {
				return false
			}
			dom := top.DomainOf(hw)
			if dom < 0 || dom >= top.NUMADomains {
				return false
			}
			if !top.IsLocal(hw, dom) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDomainDistance(t *testing.T) {
	m := MagnyCours48()
	if d := m.DomainDistance(0, 0); d != 0 {
		t.Errorf("same-domain distance = %d", d)
	}
	// Domains 0 and 1 are the two dies of socket 0.
	if d := m.DomainDistance(0, 1); d != 1 {
		t.Errorf("on-package distance = %d, want 1", d)
	}
	if d := m.DomainDistance(0, 2); d != 2 {
		t.Errorf("cross-package distance = %d, want 2", d)
	}
	p := Power7Node() // one die per socket: everything remote is 2 hops
	if d := p.DomainDistance(0, 3); d != 2 {
		t.Errorf("POWER7 remote distance = %d, want 2", d)
	}
	// Symmetry.
	for a := 0; a < m.NUMADomains; a++ {
		for b := 0; b < m.NUMADomains; b++ {
			if m.DomainDistance(a, b) != m.DomainDistance(b, a) {
				t.Fatalf("distance not symmetric at (%d,%d)", a, b)
			}
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("out-of-range distance should panic")
		}
	}()
	m.DomainDistance(0, 99)
}
