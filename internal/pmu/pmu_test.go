package pmu

import (
	"testing"

	"dcprof/internal/cache"
)

func collect(samples *[]Sample) Handler {
	return func(s *Sample) { *samples = append(*samples, *s) }
}

func TestIBSPeriodWork(t *testing.T) {
	var got []Sample
	p := NewIBS(100, collect(&got))
	p.RetireWork(0x1000, 1000)
	p.Flush()
	if len(got) != 10 {
		t.Fatalf("delivered %d samples for 1000 instructions at period 100, want 10", len(got))
	}
	for _, s := range got {
		if s.IsMem {
			t.Error("work sample marked as memory op")
		}
		if s.PreciseIP != 0x1000 {
			t.Errorf("PreciseIP = %#x, want 0x1000", s.PreciseIP)
		}
	}
	if p.Samples() != 10 {
		t.Errorf("Samples() = %d", p.Samples())
	}
}

func TestIBSSamplesMemOps(t *testing.T) {
	var got []Sample
	p := NewIBS(3, collect(&got))
	mi := MemInfo{EA: 0xdead00, Latency: 200, Source: cache.SrcLocalDRAM}
	for i := 0; i < 9; i++ {
		p.RetireMem(uint64(0x400000+i*4), mi)
	}
	p.Flush()
	if len(got) != 3 {
		t.Fatalf("delivered %d samples for 9 mem ops at period 3, want 3", len(got))
	}
	for _, s := range got {
		if !s.IsMem {
			t.Error("mem sample not marked as memory op")
		}
		if s.Mem.EA != 0xdead00 || s.Mem.Latency != 200 {
			t.Errorf("mem info not propagated: %+v", s.Mem)
		}
	}
	// Sampled instructions are every third: ips 0x400008, 0x400014, 0x400020.
	wantIPs := []uint64{0x400008, 0x400014, 0x400020}
	for i, s := range got {
		if s.PreciseIP != wantIPs[i] {
			t.Errorf("sample %d PreciseIP = %#x, want %#x", i, s.PreciseIP, wantIPs[i])
		}
	}
}

func TestIBSSkidDelivery(t *testing.T) {
	var got []Sample
	p := NewIBS(2, collect(&got))
	p.RetireMem(0x100, MemInfo{EA: 1}) // countdown 2->1
	p.RetireMem(0x104, MemInfo{EA: 2}) // triggers sample, delivery pending
	if len(got) != 0 {
		t.Fatal("sample delivered without skid")
	}
	p.RetireWork(0x108, 1) // next retirement delivers with its IP
	if len(got) != 1 {
		t.Fatal("sample not delivered on next retirement")
	}
	if got[0].PreciseIP != 0x104 || got[0].SkidIP != 0x108 {
		t.Errorf("precise=%#x skid=%#x, want 0x104/0x108", got[0].PreciseIP, got[0].SkidIP)
	}
}

func TestIBSFlushDeliversPendingWithoutSkid(t *testing.T) {
	var got []Sample
	p := NewIBS(1, collect(&got))
	p.RetireMem(0x200, MemInfo{})
	p.Flush()
	if len(got) != 1 {
		t.Fatal("flush lost the pending sample")
	}
	if got[0].SkidIP != got[0].PreciseIP {
		t.Errorf("flush skid=%#x, want precise %#x", got[0].SkidIP, got[0].PreciseIP)
	}
}

func TestIBSWorkMixedWithMem(t *testing.T) {
	var got []Sample
	p := NewIBS(10, collect(&got))
	for i := 0; i < 5; i++ {
		p.RetireWork(0x300, 9)
		p.RetireMem(0x304, MemInfo{EA: 42})
	}
	p.Flush()
	// 50 instructions, period 10 -> 5 samples.
	if len(got) != 5 {
		t.Fatalf("delivered %d samples, want 5", len(got))
	}
	// The 10th instruction of each group is the mem op.
	for i, s := range got {
		if !s.IsMem {
			t.Errorf("sample %d should be the mem op at position 10", i)
		}
	}
}

func TestIBSZeroPeriodPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewIBS(0, nil)
}

func TestMarkedCountsOnlyMatchingEvents(t *testing.T) {
	var got []Sample
	p := NewMarked(MarkDataFromRMEM, 2, collect(&got))
	remote := MemInfo{Source: cache.SrcRemoteDRAM, Remote: true}
	local := MemInfo{Source: cache.SrcLocalDRAM}
	for i := 0; i < 10; i++ {
		p.RetireMem(0x500, local) // never matches
		p.RetireMem(0x504, remote)
	}
	p.Flush()
	if p.Occurrences() != 10 {
		t.Errorf("occurrences = %d, want 10", p.Occurrences())
	}
	if len(got) != 5 {
		t.Fatalf("delivered %d samples for 10 remote events at period 2, want 5", len(got))
	}
	for _, s := range got {
		if s.Mem.Source != cache.SrcRemoteDRAM {
			t.Error("sampled a non-matching access")
		}
		if s.PreciseIP != 0x504 {
			t.Errorf("SIAR = %#x, want 0x504", s.PreciseIP)
		}
	}
}

func TestMarkedWorkDoesNotCount(t *testing.T) {
	var got []Sample
	p := NewMarked(MarkAllMem, 1, collect(&got))
	p.RetireWork(0x100, 1000000)
	p.Flush()
	if len(got) != 0 {
		t.Errorf("work instructions triggered %d marked samples", len(got))
	}
}

func TestMarkedEventMatching(t *testing.T) {
	cases := []struct {
		ev   MarkedEvent
		src  cache.DataSource
		want bool
	}{
		{MarkDataFromRMEM, cache.SrcRemoteDRAM, true},
		{MarkDataFromRMEM, cache.SrcLocalDRAM, false},
		{MarkDataFromLMEM, cache.SrcLocalDRAM, true},
		{MarkDataFromL3, cache.SrcL3, true},
		{MarkDataFromL3, cache.SrcL2, false},
		{MarkDataFromL2, cache.SrcL2, true},
		{MarkAllMem, cache.SrcL1, true},
	}
	for _, c := range cases {
		mi := MemInfo{Source: c.src}
		if got := c.ev.Matches(&mi); got != c.want {
			t.Errorf("%v.Matches(%v) = %v, want %v", c.ev, c.src, got, c.want)
		}
	}
}

func TestMarkedEventNames(t *testing.T) {
	if MarkDataFromRMEM.String() != "PM_MRK_DATA_FROM_RMEM" {
		t.Errorf("unexpected mnemonic %q", MarkDataFromRMEM.String())
	}
	if MarkDataFromL3.String() != "PM_MRK_DATA_FROM_L3" {
		t.Errorf("unexpected mnemonic %q", MarkDataFromL3.String())
	}
}

func TestPendingOverrunDeliversBoth(t *testing.T) {
	// Period 1: every mem op samples; a pending sample must not be lost when
	// the next sample triggers before delivery.
	var got []Sample
	p := NewIBS(1, collect(&got))
	p.RetireMem(0x10, MemInfo{EA: 1})
	p.RetireMem(0x14, MemInfo{EA: 2})
	p.RetireMem(0x18, MemInfo{EA: 3})
	p.Flush()
	if len(got) != 3 {
		t.Fatalf("delivered %d samples, want 3 (none dropped)", len(got))
	}
}

func TestNopSampler(t *testing.T) {
	var n Nop
	n.RetireWork(1, 100)
	n.RetireMem(2, MemInfo{})
	n.Flush()
}

func BenchmarkIBSRetireMem(b *testing.B) {
	p := NewIBS(4096, func(*Sample) {})
	mi := MemInfo{EA: 0x1000, Latency: 4, Source: cache.SrcL1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.RetireMem(uint64(i), mi)
	}
}

func BenchmarkMarkedRetireMem(b *testing.B) {
	p := NewMarked(MarkDataFromRMEM, 4096, func(*Sample) {})
	mi := MemInfo{EA: 0x1000, Latency: 300, Source: cache.SrcRemoteDRAM, Remote: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.RetireMem(uint64(i), mi)
	}
}
