// Package pmu simulates the two per-hardware-thread performance monitoring
// unit mechanisms the paper builds on (§3):
//
//   - Instruction-based sampling (IBS), as on AMD family 10h: every
//     `period` retired instructions, the next instruction is monitored. For
//     a memory operation the PMU captures the effective address, latency and
//     memory-hierarchy response; either way it records the precise
//     instruction pointer of the monitored instruction.
//
//   - Marked-event sampling, as on IBM POWER5+: the PMU counts occurrences
//     of one marked event (e.g. PM_MRK_DATA_FROM_RMEM, "demand load served
//     from remote memory") and raises a sample every `period` occurrences,
//     exposing the precise sampled-instruction address (SIAR) and sampled
//     data address (SDAR).
//
// Out-of-order pipelines deliver the sampling interrupt several instructions
// after the monitored one retires ("skid"). The simulation reproduces this:
// a sample is delivered to the handler on the *next* retirement, carrying
// both the precise IP and the skidded interrupt IP, so the profiler's
// skid-correction step (§4.1.2) has real work to do.
package pmu

import (
	"fmt"

	"dcprof/internal/cache"
	"dcprof/internal/mem"
)

// MemInfo is the hardware-captured description of one monitored memory
// operation.
type MemInfo struct {
	// EA is the effective (virtual) data address.
	EA mem.Addr
	// Write distinguishes stores from loads.
	Write bool
	// Latency is the measured load-to-use latency in cycles.
	Latency uint64
	// Source is the memory-hierarchy level that served the access.
	Source cache.DataSource
	// TLBMiss reports a D-TLB miss during translation.
	TLBMiss bool
	// Remote reports the access was served by another NUMA domain.
	Remote bool
	// HomeDomain is the NUMA domain owning the data's page (-1 unknown).
	HomeDomain int
}

// Sample is what the interrupt handler can read from PMU registers.
type Sample struct {
	// PreciseIP is the address of the monitored instruction (IBS op
	// address / POWER SIAR).
	PreciseIP uint64
	// SkidIP is the interrupt IP — where execution had advanced to when the
	// signal was delivered. Naive attribution uses this and smears metrics
	// past the true instruction.
	SkidIP uint64
	// IsMem reports whether the monitored instruction accessed memory.
	IsMem bool
	// Mem holds the memory details when IsMem is true.
	Mem MemInfo
}

// Handler receives delivered samples. Handlers run on the simulated thread
// that triggered the sample, mirroring signal delivery.
type Handler func(*Sample)

// Sampler is the interface the execution substrate drives. Exactly one of
// the two concrete samplers (IBS, Marked) is armed per monitored thread.
//
// RetireWork reports n consecutive non-memory instructions retiring at
// instruction pointer ip. RetireMem reports one memory instruction. Flush
// delivers any pending sample at thread teardown.
type Sampler interface {
	RetireWork(ip uint64, n uint64)
	RetireMem(ip uint64, mi MemInfo)
	Flush()
}

// delivery holds the skid machinery shared by both samplers. The pending
// sample is stored by value and handlers receive a pointer into the
// sampler's own scratch slot: queuing and delivering a sample performs no
// heap allocation, keeping the steady-state sample path at 0 allocs/op.
// Handlers must not retain the *Sample past the call.
type delivery struct {
	handler    Handler
	pending    Sample
	hasPending bool
	// Samples counts delivered samples.
	samples uint64
	// scratch is the slot handed to the handler.
	scratch Sample
}

// deliverLater queues s for delivery at the next retirement.
func (d *delivery) deliverLater(s Sample) {
	// If a sample is already pending (period shorter than the skid window),
	// deliver it immediately rather than losing it.
	if d.hasPending {
		d.deliver(d.pending.PreciseIP)
	}
	d.pending = s
	d.hasPending = true
}

// deliver fires the pending sample, stamping the interrupt IP.
func (d *delivery) deliver(skidIP uint64) {
	if !d.hasPending {
		return
	}
	d.scratch = d.pending
	d.hasPending = false
	d.scratch.SkidIP = skidIP
	d.samples++
	if d.handler != nil {
		d.handler(&d.scratch)
	}
}

func (d *delivery) observe(ip uint64) { d.deliver(ip) }

func (d *delivery) flush() {
	if d.hasPending {
		d.deliver(d.pending.PreciseIP)
	}
}

// IBS is an instruction-based sampler: it monitors one instruction every
// `period` retired instructions, memory or not.
type IBS struct {
	delivery
	period    uint64
	countdown uint64
}

// NewIBS creates an IBS sampler with the given period (in retired
// instructions) and handler.
func NewIBS(period uint64, h Handler) *IBS {
	if period == 0 {
		panic("pmu: IBS period must be positive")
	}
	return &IBS{delivery: delivery{handler: h}, period: period, countdown: period}
}

// RetireWork implements Sampler for a run of non-memory instructions.
func (p *IBS) RetireWork(ip uint64, n uint64) {
	if n == 0 {
		return
	}
	p.observe(ip)
	for n >= p.countdown {
		n -= p.countdown
		p.countdown = p.period
		p.deliverLater(Sample{PreciseIP: ip, IsMem: false})
	}
	p.countdown -= n
}

// RetireMem implements Sampler for one memory instruction.
func (p *IBS) RetireMem(ip uint64, mi MemInfo) {
	p.observe(ip)
	if p.countdown <= 1 {
		p.countdown = p.period
		p.deliverLater(Sample{PreciseIP: ip, IsMem: true, Mem: mi})
		return
	}
	p.countdown--
}

// Flush implements Sampler.
func (p *IBS) Flush() { p.flush() }

// Samples returns the number of samples delivered so far.
func (p *IBS) Samples() uint64 { return p.samples }

// MarkedEvent selects which event a Marked sampler counts. The names follow
// POWER7's PM_MRK_DATA_FROM_* mnemonics.
type MarkedEvent uint8

const (
	// MarkDataFromRMEM counts demand loads/stores served from a remote NUMA
	// domain's memory.
	MarkDataFromRMEM MarkedEvent = iota
	// MarkDataFromLMEM counts accesses served from local memory.
	MarkDataFromLMEM
	// MarkDataFromL3 counts accesses served from the shared L3.
	MarkDataFromL3
	// MarkDataFromL2 counts accesses served from the private L2.
	MarkDataFromL2
	// MarkDataFromRL3 counts accesses served from a remote socket's L3
	// (cache intervention).
	MarkDataFromRL3
	// MarkAllMem counts every memory operation.
	MarkAllMem
)

// String returns the POWER-style mnemonic.
func (e MarkedEvent) String() string {
	switch e {
	case MarkDataFromRMEM:
		return "PM_MRK_DATA_FROM_RMEM"
	case MarkDataFromLMEM:
		return "PM_MRK_DATA_FROM_LMEM"
	case MarkDataFromL3:
		return "PM_MRK_DATA_FROM_L3"
	case MarkDataFromL2:
		return "PM_MRK_DATA_FROM_L2"
	case MarkDataFromRL3:
		return "PM_MRK_DATA_FROM_RL3"
	case MarkAllMem:
		return "PM_MRK_INST_LOADSTORE"
	default:
		return fmt.Sprintf("MarkedEvent(%d)", uint8(e))
	}
}

// Matches reports whether a memory operation triggers the event. The
// PM_MRK_DATA_FROM_* family are *load* data-source events: they describe
// where demand-load data came from, so stores never trigger them.
func (e MarkedEvent) Matches(mi *MemInfo) bool {
	if e == MarkAllMem {
		return true
	}
	if mi.Write {
		return false
	}
	switch e {
	case MarkDataFromRMEM:
		return mi.Source == cache.SrcRemoteDRAM
	case MarkDataFromLMEM:
		return mi.Source == cache.SrcLocalDRAM
	case MarkDataFromL3:
		return mi.Source == cache.SrcL3
	case MarkDataFromL2:
		return mi.Source == cache.SrcL2
	case MarkDataFromRL3:
		return mi.Source == cache.SrcRemoteL3
	default:
		return false
	}
}

// Marked is a marked-event sampler: every `period` occurrences of the event
// it samples the triggering instruction (SIAR = precise IP, SDAR = EA).
type Marked struct {
	delivery
	event     MarkedEvent
	period    uint64
	countdown uint64
	// occurrences counts matching events regardless of sampling.
	occurrences uint64
}

// NewMarked creates a marked-event sampler.
func NewMarked(event MarkedEvent, period uint64, h Handler) *Marked {
	if period == 0 {
		panic("pmu: marked-event period must be positive")
	}
	return &Marked{delivery: delivery{handler: h}, event: event, period: period, countdown: period}
}

// RetireWork implements Sampler; non-memory instructions only advance skid
// delivery — they cannot trigger marked data events.
func (p *Marked) RetireWork(ip uint64, n uint64) {
	if n == 0 {
		return
	}
	p.observe(ip)
}

// RetireMem implements Sampler.
func (p *Marked) RetireMem(ip uint64, mi MemInfo) {
	p.observe(ip)
	if !p.event.Matches(&mi) {
		return
	}
	p.occurrences++
	if p.countdown <= 1 {
		p.countdown = p.period
		p.deliverLater(Sample{PreciseIP: ip, IsMem: true, Mem: mi})
		return
	}
	p.countdown--
}

// Flush implements Sampler.
func (p *Marked) Flush() { p.flush() }

// Samples returns the number of samples delivered so far.
func (p *Marked) Samples() uint64 { return p.samples }

// Occurrences returns how many times the marked event fired.
func (p *Marked) Occurrences() uint64 { return p.occurrences }

// Event returns the configured marked event.
func (p *Marked) Event() MarkedEvent { return p.event }

// Nop is a Sampler that does nothing; used for unmonitored runs so the
// execution substrate has no nil checks on its hot path.
type Nop struct{}

// RetireWork implements Sampler.
func (Nop) RetireWork(uint64, uint64) {}

// RetireMem implements Sampler.
func (Nop) RetireMem(uint64, MemInfo) {}

// Flush implements Sampler.
func (Nop) Flush() {}
