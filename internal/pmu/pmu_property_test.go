package pmu

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dcprof/internal/cache"
)

// Property: for any mix of work batches and memory ops, IBS delivers
// exactly floor(totalInstructions/period) samples after a flush, and no
// sample is ever lost or duplicated.
func TestQuickIBSSampleCount(t *testing.T) {
	f := func(seed int64, period8 uint8) bool {
		period := uint64(period8%200) + 1
		rng := rand.New(rand.NewSource(seed))
		var delivered uint64
		p := NewIBS(period, func(*Sample) { delivered++ })
		var instrs uint64
		for op := 0; op < 200; op++ {
			if rng.Intn(2) == 0 {
				n := uint64(rng.Intn(500))
				p.RetireWork(uint64(op)*4, n)
				instrs += n
			} else {
				p.RetireMem(uint64(op)*4, MemInfo{EA: 1})
				instrs++
			}
		}
		p.Flush()
		return delivered == instrs/period
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: marked-event sampling delivers floor(matching/period) samples
// regardless of how non-matching events interleave.
func TestQuickMarkedSampleCount(t *testing.T) {
	f := func(seed int64, period8 uint8) bool {
		period := uint64(period8%50) + 1
		rng := rand.New(rand.NewSource(seed))
		var delivered uint64
		p := NewMarked(MarkDataFromRMEM, period, func(s *Sample) {
			if s.Mem.Source != cache.SrcRemoteDRAM {
				panic("non-matching access sampled")
			}
			delivered++
		})
		var matching uint64
		for op := 0; op < 400; op++ {
			src := cache.SrcLocalDRAM
			if rng.Intn(3) == 0 {
				src = cache.SrcRemoteDRAM
				matching++
			}
			p.RetireMem(uint64(op)*4, MemInfo{Source: src})
		}
		p.Flush()
		return delivered == matching/period && p.Occurrences() == matching
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: the precise IP of every delivered sample is an IP that was
// actually retired, and skid IPs never precede their precise IPs in
// retirement order.
func TestQuickSkidOrdering(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		retireOrder := map[uint64]int{}
		var samples []Sample
		p := NewIBS(3, func(s *Sample) { samples = append(samples, *s) })
		for op := 0; op < 300; op++ {
			ip := uint64(0x1000 + op*4)
			retireOrder[ip] = op
			if rng.Intn(2) == 0 {
				p.RetireWork(ip, uint64(rng.Intn(3)+1))
			} else {
				p.RetireMem(ip, MemInfo{EA: 7})
			}
		}
		p.Flush()
		for _, s := range samples {
			pi, ok1 := retireOrder[s.PreciseIP]
			si, ok2 := retireOrder[s.SkidIP]
			if !ok1 || !ok2 {
				return false
			}
			if si < pi {
				return false // interrupt delivered before the instruction?!
			}
		}
		return len(samples) > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
