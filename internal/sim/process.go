package sim

import (
	"fmt"
	"sync"

	"dcprof/internal/loadmap"
	"dcprof/internal/mem"
)

// barrierBaseCycles is the cost of an OpenMP region fork/join barrier.
const barrierBaseCycles = 300

// Process is one simulated process (MPI rank): a private address space and
// load map, a pool of OpenMP-style threads pinned to a reserved range of the
// node's hardware threads, and the profiler hooks wrapped around its
// runtime events.
type Process struct {
	// Node is the machine the process runs on.
	Node *Node
	// Rank is the process's MPI rank (0 for single-process runs).
	Rank int
	// ASID is the globally unique address-space id.
	ASID int
	// Space is the process's memory.
	Space *mem.Space
	// LoadMap lists the process's load modules.
	LoadMap *loadmap.Map

	world   *World
	hooks   Hooks
	hwBase  int
	hwCount int

	mu      sync.Mutex
	threads []*Thread
	started bool
}

// NewProcess creates a process on node with hwCount hardware threads
// reserved for it. policy is the process-wide page placement policy (nil =
// first-touch; Interleave{} models launching under `numactl --interleave`).
func NewProcess(node *Node, rank, asid, hwCount int, policy mem.Policy) *Process {
	if hwCount <= 0 {
		panic("sim: process needs at least one hardware thread")
	}
	return &Process{
		Node:    node,
		Rank:    rank,
		ASID:    asid,
		Space:   mem.NewSpace(node.Topo.NUMADomains, policy),
		LoadMap: loadmap.NewMap(),
		hooks:   NopHooks{},
		hwBase:  node.reserveHW(hwCount),
		hwCount: hwCount,
	}
}

// SetHooks attaches profiler instrumentation. Must be called before Start.
func (p *Process) SetHooks(h Hooks) {
	if p.started {
		panic("sim: SetHooks after Start")
	}
	if h == nil {
		h = NopHooks{}
	}
	p.hooks = h
}

// Hooks returns the attached instrumentation.
func (p *Process) Hooks() Hooks { return p.hooks }

// MaxThreads returns the size of the process's hardware-thread reservation.
func (p *Process) MaxThreads() int { return p.hwCount }

// Start creates and returns the master thread (tid 0), marking it active
// on its core.
func (p *Process) Start() *Thread {
	p.started = true
	t := p.thread(0)
	p.Node.activate(t.Core)
	return t
}

// thread returns the pooled thread with the given id, creating it (and
// firing ThreadStart) on first use.
func (p *Process) thread(tid int) *Thread {
	if tid < 0 || tid >= p.hwCount {
		panic(fmt.Sprintf("sim: thread id %d outside reservation of %d", tid, p.hwCount))
	}
	p.mu.Lock()
	for len(p.threads) <= tid {
		p.threads = append(p.threads, nil)
	}
	t := p.threads[tid]
	if t == nil {
		t = newThread(p, tid, p.hwBase+tid)
		p.threads[tid] = t
		p.mu.Unlock()
		p.hooks.ThreadStart(t)
		return t
	}
	p.mu.Unlock()
	return t
}

// Threads returns the threads created so far, densest first.
func (p *Process) Threads() []*Thread {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]*Thread, 0, len(p.threads))
	for _, t := range p.threads {
		if t != nil {
			out = append(out, t)
		}
	}
	return out
}

// Finish flushes samplers and fires ThreadEnd for every thread. Call once
// when the process's main returns.
func (p *Process) Finish() {
	for _, t := range p.Threads() {
		t.sampler.Flush()
		p.hooks.ThreadEnd(t)
	}
	if len(p.threads) > 0 && p.threads[0] != nil {
		p.Node.deactivate(p.threads[0].Core)
	}
}

// Parallel runs an OpenMP-style parallel region of nThreads threads
// executing the outlined function fn. The master (the calling thread)
// participates as tid 0; workers come from the persistent pool, inherit the
// master's calling context (so their samples carry the full call path into
// the region), and the implicit end-of-region barrier synchronizes all
// participants' clocks to the slowest.
func (p *Process) Parallel(master *Thread, fn *loadmap.Function, nThreads int, body func(t *Thread, tid int)) {
	if nThreads < 1 {
		panic("sim: parallel region needs at least one thread")
	}
	if nThreads > p.hwCount {
		panic(fmt.Sprintf("sim: region of %d threads exceeds reservation of %d", nThreads, p.hwCount))
	}
	if master != p.thread(0) {
		panic("sim: parallel regions must be entered by the master thread")
	}

	start := master.clock
	ctx := make([]Frame, len(master.stack))
	copy(ctx, master.stack)
	ctxLine, ctxIP := master.curLine, master.curIP

	workers := make([]*Thread, 0, nThreads-1)
	// Mark every participant active before any body runs, so SMT
	// contention is in effect for the whole region.
	for tid := 1; tid < nThreads; tid++ {
		t := p.thread(tid)
		t.resetFor(ctx, ctxLine, ctxIP, start)
		workers = append(workers, t)
		p.Node.activate(t.Core)
	}
	var wg sync.WaitGroup
	for i := range workers {
		t := workers[i]
		wg.Add(1)
		go func(t *Thread, tid int) {
			defer wg.Done()
			t.Call(fn)
			body(t, tid)
			t.Ret()
		}(t, i+1)
	}

	master.Call(fn)
	body(master, 0)
	master.Ret()
	wg.Wait()
	for _, t := range workers {
		p.Node.deactivate(t.Core)
	}

	// Implicit barrier: everyone leaves at the slowest participant's time.
	maxClock := master.clock
	for _, t := range workers {
		if t.clock > maxClock {
			maxClock = t.clock
		}
	}
	maxClock += barrierBaseCycles
	master.clock = maxClock
	for _, t := range workers {
		t.clock = maxClock
	}
}

// ParallelFor splits iterations [0, n) statically among nThreads threads
// (OpenMP static schedule) inside a parallel region running fn. body
// receives the thread and its contiguous iteration range.
func (p *Process) ParallelFor(master *Thread, fn *loadmap.Function, nThreads, n int, body func(t *Thread, lo, hi int)) {
	p.Parallel(master, fn, nThreads, func(t *Thread, tid int) {
		lo := tid * n / nThreads
		hi := (tid + 1) * n / nThreads
		if lo < hi {
			body(t, lo, hi)
		}
	})
}
