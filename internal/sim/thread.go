package sim

import (
	"fmt"

	"dcprof/internal/cache"
	"dcprof/internal/loadmap"
	"dcprof/internal/mem"
	"dcprof/internal/pmu"
)

// Default cycle charges for runtime events that are not loads/stores.
const (
	// allocatorCycles is the compute cost of one malloc/free call itself
	// (bookkeeping inside the allocator, excluding any profiler wrapping).
	allocatorCycles = 150
	// callCycles covers call/return linkage.
	callCycles = 2
)

// Frame is one procedure frame on a simulated call stack.
type Frame struct {
	// Fn is the function this frame executes.
	Fn *loadmap.Function
	// CallLine is the source line in the caller at the call site (0 for the
	// thread root).
	CallLine int

	// Saved caller statement state, restored on return.
	savedLine int
	savedIP   uint64
}

// Thread is one simulated thread of execution. All methods must be invoked
// from the single goroutine animating the thread; distinct threads run
// concurrently.
type Thread struct {
	// Proc is the owning process.
	Proc *Process
	// ID is the thread id within the process (0 = master).
	ID int
	// HW and Core locate the thread on the node.
	HW   int
	Core int

	clock    uint64
	instrs   uint64
	overhead uint64
	memOps   uint64

	sampler pmu.Sampler
	stack   []Frame
	curLine int
	curIP   uint64

	// trampDepth is the number of bottom stack frames known unchanged since
	// the profiler last marked the stack with its trampoline (§4.1.3). Ret
	// lowers it; the profiler raises it after an unwind.
	trampDepth int
	// convDepth tracks the same invalidation rule for the profiler's
	// host-side converted-frame cache. It is kept separate from trampDepth
	// so the profiler can refresh its conversion cache on every sample
	// without touching the simulated trampoline state (whose depth feeds
	// the charged-cycle model).
	convDepth int
}

func newThread(p *Process, id, hw int) *Thread {
	return &Thread{
		Proc:    p,
		ID:      id,
		HW:      hw,
		Core:    p.Node.Topo.CoreOf(hw),
		sampler: pmu.Nop{},
	}
}

// Clock returns the thread's simulated time in cycles.
func (t *Thread) Clock() uint64 { return t.clock }

// Instructions returns the number of retired simulated instructions.
func (t *Thread) Instructions() uint64 { return t.instrs }

// MemOps returns the number of retired memory instructions.
func (t *Thread) MemOps() uint64 { return t.memOps }

// Overhead returns the cycles charged by the profiler (included in Clock).
func (t *Thread) Overhead() uint64 { return t.overhead }

// ChargeOverhead adds profiler-induced cycles to the thread's clock.
func (t *Thread) ChargeOverhead(cycles uint64) {
	t.clock += cycles
	t.overhead += cycles
}

// SetSampler installs the PMU sampler monitoring this thread.
func (t *Thread) SetSampler(s pmu.Sampler) {
	if s == nil {
		s = pmu.Nop{}
	}
	t.sampler = s
}

// Sampler returns the installed PMU sampler.
func (t *Thread) Sampler() pmu.Sampler { return t.sampler }

// Domain returns the NUMA domain of the thread's core.
func (t *Thread) Domain() int { return t.Proc.Node.Topo.DomainOfCore(t.Core) }

// Frames exposes the live call stack for the profiler's unwinder. The slice
// is only valid until the thread executes further; callers on the thread's
// own goroutine (sample handlers, allocation hooks) may read it directly.
func (t *Thread) Frames() []Frame { return t.stack }

// Depth returns the current call-stack depth.
func (t *Thread) Depth() int { return len(t.stack) }

// TrampolineDepth returns how many bottom frames are covered by the
// profiler's trampoline marker.
func (t *Thread) TrampolineDepth() int { return t.trampDepth }

// SetTrampolineDepth marks the bottom d frames as known to the profiler.
func (t *Thread) SetTrampolineDepth(d int) {
	if d < 0 || d > len(t.stack) {
		panic(fmt.Sprintf("sim: trampoline depth %d outside stack of %d frames", d, len(t.stack)))
	}
	t.trampDepth = d
}

// ConvCacheDepth returns how many bottom frames the profiler's converted
// stack cache still covers (lowered by Ret exactly like the trampoline).
func (t *Thread) ConvCacheDepth() int { return t.convDepth }

// SetConvCacheDepth marks the bottom d frames as converted by the profiler.
func (t *Thread) SetConvCacheDepth(d int) {
	if d < 0 || d > len(t.stack) {
		panic(fmt.Sprintf("sim: conversion cache depth %d outside stack of %d frames", d, len(t.stack)))
	}
	t.convDepth = d
}

// Call enters fn. The current statement becomes fn's first line.
func (t *Thread) Call(fn *loadmap.Function) {
	if len(t.stack) > 0 {
		t.sampler.RetireWork(t.curIP, 1) // the call instruction itself
	}
	t.stack = append(t.stack, Frame{
		Fn:        fn,
		CallLine:  t.curLine,
		savedLine: t.curLine,
		savedIP:   t.curIP,
	})
	t.clock += callCycles
	t.instrs++
	t.At(fn.StartLine)
}

// Ret leaves the current function, restoring the caller's statement.
func (t *Thread) Ret() {
	if len(t.stack) == 0 {
		panic("sim: Ret with empty call stack")
	}
	t.sampler.RetireWork(t.curIP, 1) // the return instruction (in the callee)
	f := t.stack[len(t.stack)-1]
	t.stack = t.stack[:len(t.stack)-1]
	if t.trampDepth > len(t.stack) {
		t.trampDepth = len(t.stack)
	}
	if t.convDepth > len(t.stack) {
		t.convDepth = len(t.stack)
	}
	t.curLine = f.savedLine
	t.curIP = f.savedIP
	t.clock += callCycles
	t.instrs++
}

// At moves the thread to a source line of the current function; subsequent
// work and memory accesses are attributed to this statement.
func (t *Thread) At(line int) {
	if len(t.stack) == 0 {
		panic("sim: At outside any function; Call first")
	}
	t.curLine = line
	t.curIP = t.stack[len(t.stack)-1].Fn.IPFor(line)
}

// IP returns the synthetic instruction address of the current statement.
func (t *Thread) IP() uint64 { return t.curIP }

// Line returns the current source line.
func (t *Thread) Line() int { return t.curLine }

// Func returns the function the thread is currently executing.
func (t *Thread) Func() *loadmap.Function {
	if len(t.stack) == 0 {
		return nil
	}
	return t.stack[len(t.stack)-1].Fn
}

// Work retires n non-memory instructions at the current statement. With
// SMT siblings active on the same core, the instructions take
// proportionally longer (shared issue slots).
func (t *Thread) Work(n uint64) {
	t.clock += n * t.Proc.Node.smtFactor(t.Core) / 10
	t.instrs += n
	t.sampler.RetireWork(t.curIP, n)
}

// Load performs a read of size bytes at addr. Accesses spanning multiple
// cache lines are split into one memory instruction per line.
func (t *Thread) Load(addr mem.Addr, size uint64) { t.access(addr, size, false) }

// Store performs a write of size bytes at addr.
func (t *Thread) Store(addr mem.Addr, size uint64) { t.access(addr, size, true) }

func (t *Thread) access(addr mem.Addr, size uint64, write bool) {
	if size == 0 {
		return
	}
	p := t.Proc
	first := uint64(addr) &^ (cache.LineSize - 1)
	last := (uint64(addr) + size - 1) &^ (cache.LineSize - 1)
	for line := first; line <= last; line += cache.LineSize {
		a := addr
		if uint64(a) < line {
			a = mem.Addr(line)
		}
		res := p.Node.Mem.Access(t.Core, p.ASID, a, write, p.Space.PT, t.clock)
		t.clock += res.Latency
		t.instrs++
		t.memOps++
		t.sampler.RetireMem(t.curIP, pmu.MemInfo{
			EA:         a,
			Write:      write,
			Latency:    res.Latency,
			Source:     res.Source,
			TLBMiss:    res.TLBMiss,
			Remote:     res.Remote,
			HomeDomain: res.HomeDomain,
		})
	}
}

// LoadSeq reads count elements of elemSize bytes starting at base with the
// given byte stride, as one convenience loop.
func (t *Thread) LoadSeq(base mem.Addr, count int, elemSize, stride uint64) {
	for i := 0; i < count; i++ {
		t.Load(base+mem.Addr(uint64(i)*stride), elemSize)
	}
}

// StoreSeq writes count elements of elemSize bytes with the given stride.
func (t *Thread) StoreSeq(base mem.Addr, count int, elemSize, stride uint64) {
	for i := 0; i < count; i++ {
		t.Store(base+mem.Addr(uint64(i)*stride), elemSize)
	}
}

// Malloc allocates size bytes on the process heap without touching pages.
func (t *Thread) Malloc(size uint64) mem.Addr {
	return t.allocate(size, AllocMalloc)
}

// Calloc allocates n*elemSize bytes and zeroes them through normal stores,
// so the allocating thread first-touches every page — the behaviour behind
// the paper's NUMA pathologies.
func (t *Thread) Calloc(n, elemSize uint64) mem.Addr {
	return t.CallocWith(n, elemSize, nil)
}

// CallocWith behaves like Calloc but invokes place on the block before the
// zeroing stores — modelling allocators (like libnuma's
// numa_alloc_interleaved) that install a placement policy before the first
// touch.
func (t *Thread) CallocWith(n, elemSize uint64, place func(mem.Addr)) mem.Addr {
	size := n * elemSize
	addr := t.allocate(size, AllocCalloc)
	if place != nil {
		place(addr)
	}
	t.zero(addr, size)
	return addr
}

// Memset writes size bytes line by line at the current statement.
func (t *Thread) Memset(addr mem.Addr, size uint64) { t.zero(addr, size) }

func (t *Thread) allocate(size uint64, kind AllocKind) mem.Addr {
	t.Work(allocatorCycles)
	addr, err := t.Proc.Space.Malloc(size)
	if err != nil {
		panic(fmt.Sprintf("sim: rank %d: %v", t.Proc.Rank, err))
	}
	t.Proc.hooks.OnAlloc(t, addr, size, kind)
	return addr
}

// zero writes the block line by line at the current statement.
func (t *Thread) zero(addr mem.Addr, size uint64) {
	for off := uint64(0); off < size; off += cache.LineSize {
		n := uint64(cache.LineSize)
		if size-off < n {
			n = size - off
		}
		t.Store(addr+mem.Addr(off), n)
	}
}

// Realloc resizes a block, copying the smaller of the two sizes through
// normal loads and stores like the C library would.
func (t *Thread) Realloc(addr mem.Addr, newSize uint64) mem.Addr {
	oldSize, ok := t.Proc.Space.Heap.SizeOf(addr)
	if !ok {
		panic(fmt.Sprintf("sim: realloc of non-allocated address %#x", addr))
	}
	newAddr := t.allocate(newSize, AllocRealloc)
	n := oldSize
	if newSize < n {
		n = newSize
	}
	for off := uint64(0); off < n; off += cache.LineSize {
		sz := uint64(cache.LineSize)
		if n-off < sz {
			sz = n - off
		}
		t.Load(addr+mem.Addr(off), sz)
		t.Store(newAddr+mem.Addr(off), sz)
	}
	t.free(addr)
	return newAddr
}

// Free releases a heap block.
func (t *Thread) Free(addr mem.Addr) {
	t.Work(allocatorCycles)
	t.free(addr)
}

func (t *Thread) free(addr mem.Addr) {
	size, ok := t.Proc.Space.Heap.SizeOf(addr)
	if !ok {
		panic(fmt.Sprintf("sim: rank %d: free of non-allocated address %#x", t.Proc.Rank, addr))
	}
	t.Proc.hooks.OnFree(t, addr, size)
	if _, err := t.Proc.Space.Free(addr); err != nil {
		panic(fmt.Sprintf("sim: rank %d: %v", t.Proc.Rank, err))
	}
}

// Sbrk allocates from the untracked brk region ("unknown data").
func (t *Thread) Sbrk(size uint64) mem.Addr {
	t.Work(allocatorCycles)
	addr, err := t.Proc.Space.Sbrk(size)
	if err != nil {
		panic(fmt.Sprintf("sim: rank %d: %v", t.Proc.Rank, err))
	}
	return addr
}

// StackAddr returns an address within the thread's stack, offset bytes below
// the stack base (for modelling stack-variable accesses).
func (t *Thread) StackAddr(offset uint64) mem.Addr {
	return mem.StackBase(t.ID) - mem.Addr(offset)
}

// resetFor prepares a pooled worker thread to join a parallel region: its
// logical calling context becomes a copy of the master's, its clock jumps
// to the region start (idle workers don't accumulate time), and any
// trampoline marker is dropped.
func (t *Thread) resetFor(stack []Frame, line int, ip uint64, clock uint64) {
	t.stack = t.stack[:0]
	t.stack = append(t.stack, stack...)
	t.curLine = line
	t.curIP = ip
	t.trampDepth = 0
	t.convDepth = 0
	if t.clock < clock {
		t.clock = clock
	}
}
