package sim

import "dcprof/internal/mem"

// AllocKind distinguishes the malloc-family entry point used, because the
// paper's calloc→malloc optimization hinges on it: calloc zeroes (and
// therefore first-touches) the block at allocation time, malloc leaves the
// pages untouched for the eventual initializer.
type AllocKind uint8

const (
	// AllocMalloc is a plain malloc.
	AllocMalloc AllocKind = iota
	// AllocCalloc is a zeroing calloc.
	AllocCalloc
	// AllocRealloc is a resize of an existing block.
	AllocRealloc
)

// String returns the libc entry-point name.
func (k AllocKind) String() string {
	switch k {
	case AllocCalloc:
		return "calloc"
	case AllocRealloc:
		return "realloc"
	default:
		return "malloc"
	}
}

// Hooks is the interception surface the profiler attaches to a process —
// the analogue of LD_PRELOAD wrappers around the malloc family plus
// per-thread monitoring setup. All callbacks run on the simulated thread's
// goroutine.
type Hooks interface {
	// ThreadStart fires when a simulated thread is created, before it
	// executes anything. The hook may install a PMU sampler via
	// Thread.SetSampler and charge setup cost via Thread.ChargeOverhead.
	ThreadStart(t *Thread)
	// ThreadEnd fires when the process shuts the thread down.
	ThreadEnd(t *Thread)
	// OnAlloc fires after a successful malloc/calloc/realloc, before the
	// block is returned to the program (for calloc: before zeroing).
	OnAlloc(t *Thread, addr mem.Addr, size uint64, kind AllocKind)
	// OnFree fires before a block is released.
	OnFree(t *Thread, addr mem.Addr, size uint64)
}

// NopHooks is the default no-profiler instrumentation.
type NopHooks struct{}

// ThreadStart implements Hooks.
func (NopHooks) ThreadStart(*Thread) {}

// ThreadEnd implements Hooks.
func (NopHooks) ThreadEnd(*Thread) {}

// OnAlloc implements Hooks.
func (NopHooks) OnAlloc(*Thread, mem.Addr, uint64, AllocKind) {}

// OnFree implements Hooks.
func (NopHooks) OnFree(*Thread, mem.Addr, uint64) {}
