// Package sim is the execution substrate the benchmarks run on: simulated
// processes (MPI ranks) and threads (OpenMP workers) that execute work,
// loads and stores against the simulated memory hierarchy, in simulated
// time.
//
// Time is counted in per-thread cycles. Compute instructions cost one cycle
// each; a memory access costs the latency the hierarchy reports (including
// NUMA interconnect hops and DRAM-controller queueing). A parallel region's
// elapsed time is the maximum over its participants — all the paper's
// optimization effects (interleaving beating first-touch-by-master, layout
// transposes fixing strides) show up as changes in these cycle counts.
//
// Every retired instruction is also offered to the thread's PMU sampler,
// and allocation events are surfaced through Hooks, which is how the
// profiler (package profiler) attaches without the substrate knowing about
// it.
package sim

import (
	"fmt"
	"sync/atomic"

	"dcprof/internal/cache"
	"dcprof/internal/machine"
)

// Node is one machine: a topology plus its memory hierarchy. Several
// processes (ranks) can share a node; each gets a disjoint range of
// hardware threads.
type Node struct {
	Topo machine.Topology
	Mem  *cache.Hierarchy

	nextHW int // next unassigned hardware thread

	// coreActive counts the simulated threads currently executing on each
	// physical core. SMT siblings share a core's issue slots: compute
	// throughput per thread degrades as siblings activate (see
	// Thread.Work). One thread per core (no SMT, or idle siblings) runs at
	// full speed.
	coreActive []atomic.Int32
}

// NewNode builds a node with the given topology and cache configuration.
func NewNode(topo machine.Topology, cfg cache.Config) *Node {
	return &Node{
		Topo:       topo,
		Mem:        cache.NewHierarchy(topo, cfg),
		coreActive: make([]atomic.Int32, topo.NumCores()),
	}
}

// activate/deactivate maintain the per-core active-thread counts.
func (n *Node) activate(core int)   { n.coreActive[core].Add(1) }
func (n *Node) deactivate(core int) { n.coreActive[core].Add(-1) }

// smtFactor returns the per-thread compute slowdown on a core with the
// current number of active SMT siblings, in tenths: 10 = full speed. Each
// additional sibling costs 60% of a thread's width (SMT4 at full occupancy
// yields ~1.4x the single-thread core throughput, roughly POWER7's
// behaviour).
func (n *Node) smtFactor(core int) uint64 {
	active := int64(n.coreActive[core].Load())
	if active <= 1 {
		return 10
	}
	return uint64(10 + 6*(active-1))
}

// reserveHW hands out a contiguous range of `n` hardware threads.
func (n *Node) reserveHW(count int) (base int) {
	if n.nextHW+count > n.Topo.NumHWThreads() {
		panic(fmt.Sprintf("sim: node %s oversubscribed: %d+%d hardware threads",
			n.Topo.Name, n.nextHW, count))
	}
	base = n.nextHW
	n.nextHW += count
	return base
}
