package sim

import (
	"testing"

	"dcprof/internal/mem"
	"dcprof/internal/pmu"
)

// countingSampler tallies retirements offered to the PMU.
type countingSampler struct {
	work, memOps uint64
}

func (c *countingSampler) RetireWork(_ uint64, n uint64) { c.work += n }
func (c *countingSampler) RetireMem(uint64, pmu.MemInfo) { c.memOps++ }
func (c *countingSampler) Flush()                        {}

func threadFixture(t *testing.T) (*Process, *Thread) {
	t.Helper()
	p := NewProcess(testNode(), 0, 0, 4, nil)
	exe := p.LoadMap.Load("exe")
	f := exe.AddFunc("main", "main.c", 1)
	th := p.Start()
	th.Call(f)
	return p, th
}

func TestLoadSeqStoreSeq(t *testing.T) {
	_, th := threadFixture(t)
	buf := th.Malloc(4096)
	m0 := th.MemOps()
	th.LoadSeq(buf, 16, 8, 8) // 16 contiguous 8-byte loads
	if th.MemOps()-m0 != 16 {
		t.Errorf("LoadSeq issued %d ops", th.MemOps()-m0)
	}
	m1 := th.MemOps()
	th.StoreSeq(buf, 8, 8, 64) // strided stores
	if th.MemOps()-m1 != 8 {
		t.Errorf("StoreSeq issued %d ops", th.MemOps()-m1)
	}
}

func TestMemsetTouchesWholeBlock(t *testing.T) {
	p, th := threadFixture(t)
	buf := th.Malloc(4 * mem.PageSize)
	th.Memset(buf, 4*mem.PageSize)
	for i := 0; i < 4; i++ {
		if _, ok := p.Space.PT.Home(buf + mem.Addr(i*mem.PageSize)); !ok {
			t.Errorf("page %d untouched by Memset", i)
		}
	}
}

func TestCallocWithPlacesBeforeZeroing(t *testing.T) {
	p, th := threadFixture(t)
	var placedAt mem.Addr
	buf := th.CallocWith(4*mem.PageSize, 1, func(a mem.Addr) {
		placedAt = a
		p.Space.BindRange(a, 4*mem.PageSize, 1)
	})
	if placedAt != buf {
		t.Fatalf("place callback got %#x, block at %#x", placedAt, buf)
	}
	// Zeroing happened after the bind: pages homed in domain 1 even though
	// the master runs in domain 0.
	for i := 0; i < 4; i++ {
		if d, ok := p.Space.PT.Home(buf + mem.Addr(i*mem.PageSize)); !ok || d != 1 {
			t.Errorf("page %d homed in %d (ok=%v), want bound domain 1", i, d, ok)
		}
	}
}

func TestReallocCopiesAndFrees(t *testing.T) {
	p, th := threadFixture(t)
	a := th.Malloc(1024)
	m0 := th.MemOps()
	b := th.Realloc(a, 4096)
	copyOps := th.MemOps() - m0
	// Copy is min(old,new) = 1024 bytes = 16 lines, load+store each.
	if copyOps != 32 {
		t.Errorf("realloc issued %d mem ops, want 32", copyOps)
	}
	if _, ok := p.Space.Heap.SizeOf(a); ok && a != b {
		t.Error("old block still live after realloc")
	}
	if s, ok := p.Space.Heap.SizeOf(b); !ok || s != 4096 {
		t.Errorf("new block size = %d, ok=%v", s, ok)
	}
	// Shrinking realloc copies only the new size.
	m1 := th.MemOps()
	c := th.Realloc(b, 128)
	if got := th.MemOps() - m1; got != 4 {
		t.Errorf("shrink copy issued %d ops, want 4", got)
	}
	th.Free(c)
}

func TestSamplerSeesAllRetirements(t *testing.T) {
	_, th := threadFixture(t)
	cs := &countingSampler{}
	th.SetSampler(cs)
	th.Work(100)
	buf := th.Malloc(4096) // allocatorCycles of Work + no mem ops
	th.Load(buf, 8)
	th.Store(buf, 8)
	if cs.memOps != 2 {
		t.Errorf("sampler saw %d mem ops, want 2", cs.memOps)
	}
	if cs.work < 100 {
		t.Errorf("sampler saw %d work instructions, want >= 100", cs.work)
	}
	th.SetSampler(nil) // resets to Nop without panicking
	th.Work(1)
}

func TestInstructionAccounting(t *testing.T) {
	_, th := threadFixture(t)
	i0 := th.Instructions()
	th.Work(50)
	buf := th.Malloc(4096) // + allocator work
	th.Load(buf, 8)
	if got := th.Instructions() - i0; got < 51 {
		t.Errorf("instructions = %d, want >= 51", got)
	}
	if th.MemOps() == 0 {
		t.Error("mem ops not counted")
	}
}

func TestDomainOfThread(t *testing.T) {
	p, th := threadFixture(t)
	if th.Domain() != 0 {
		t.Errorf("master domain = %d", th.Domain())
	}
	exe := p.LoadMap.Modules()[0]
	fOL := exe.AddFunc("ol", "main.c", 9)
	domains := make([]int, 4)
	p.Parallel(th, fOL, 4, func(w *Thread, tid int) {
		domains[tid] = w.Domain()
	})
	// Tiny topology: threads 0,1 in domain 0; threads 2,3 in domain 1.
	if domains[1] != 0 || domains[2] != 1 || domains[3] != 1 {
		t.Errorf("worker domains = %v", domains)
	}
}

func TestZeroSizeAccessesIgnored(t *testing.T) {
	_, th := threadFixture(t)
	m0 := th.MemOps()
	th.Load(mem.HeapBase, 0)
	th.Store(mem.HeapBase, 0)
	if th.MemOps() != m0 {
		t.Error("zero-size access issued mem ops")
	}
}
