package sim

import (
	"sync"
	"testing"

	"dcprof/internal/cache"
	"dcprof/internal/machine"
)

func testWorld(ranks, threadsPerRank int) *World {
	node := NewNode(machine.MagnyCours48(), cache.DefaultConfig())
	return NewWorld([]*Node{node}, ranks, threadsPerRank, nil)
}

func TestWorldRunAllRanks(t *testing.T) {
	w := testWorld(4, 1)
	var mu sync.Mutex
	seen := map[int]bool{}
	w.Run(func(p *Process, th *Thread) {
		mu.Lock()
		seen[p.Rank] = true
		mu.Unlock()
		th.Work(10)
	})
	if len(seen) != 4 {
		t.Errorf("ran %d ranks, want 4", len(seen))
	}
}

func TestSendRecvClockPropagation(t *testing.T) {
	w := testWorld(2, 1)
	var recvClock, sendClock uint64
	w.Run(func(p *Process, th *Thread) {
		exe := p.LoadMap.Load("exe")
		f := exe.AddFunc("main", "main.c", 1)
		th.Call(f)
		switch p.Rank {
		case 0:
			th.Work(100000) // sender is far ahead
			w.Send(th, 1, 1024, 7)
			sendClock = th.Clock()
		case 1:
			w.Recv(th, 0, 7)
			recvClock = th.Clock()
		}
		th.Ret()
	})
	if recvClock <= 100000 {
		t.Errorf("receiver clock %d did not advance past sender's send time", recvClock)
	}
	if recvClock < sendClock {
		t.Errorf("receiver clock %d below sender's %d + latency", recvClock, sendClock)
	}
}

func TestRecvDoesNotRewindClock(t *testing.T) {
	w := testWorld(2, 1)
	var recvClock uint64
	w.Run(func(p *Process, th *Thread) {
		exe := p.LoadMap.Load("exe")
		f := exe.AddFunc("main", "main.c", 1)
		th.Call(f)
		switch p.Rank {
		case 0:
			w.Send(th, 1, 8, 0) // sent at ~t=400
		case 1:
			th.Work(10_000_000) // receiver is far ahead; message already waiting
			before := th.Clock()
			w.Recv(th, 0, 0)
			recvClock = th.Clock() - before
		}
		th.Ret()
	})
	if recvClock > 2*recvOverheadCycles {
		t.Errorf("late recv cost %d cycles, want only CPU overhead", recvClock)
	}
}

func TestTagMismatchPanics(t *testing.T) {
	w := testWorld(2, 1)
	panicked := make(chan bool, 1)
	w.Run(func(p *Process, th *Thread) {
		exe := p.LoadMap.Load("exe")
		f := exe.AddFunc("main", "main.c", 1)
		th.Call(f)
		switch p.Rank {
		case 0:
			w.Send(th, 1, 8, 1)
		case 1:
			func() {
				defer func() { panicked <- recover() != nil }()
				w.Recv(th, 0, 2)
			}()
		}
		th.Ret()
	})
	if !<-panicked {
		t.Error("tag mismatch did not panic")
	}
}

func TestBarrierSyncsToSlowest(t *testing.T) {
	w := testWorld(4, 1)
	clocks := make([]uint64, 4)
	w.Run(func(p *Process, th *Thread) {
		exe := p.LoadMap.Load("exe")
		f := exe.AddFunc("main", "main.c", 1)
		th.Call(f)
		th.Work(uint64(1000 * (p.Rank + 1)))
		w.Barrier(th)
		clocks[p.Rank] = th.Clock()
		th.Ret()
	})
	for r := 1; r < 4; r++ {
		if clocks[r] != clocks[0] {
			t.Fatalf("clocks diverge after barrier: %v", clocks)
		}
	}
	if clocks[0] < 4000 {
		t.Errorf("barrier exit %d below slowest rank's 4000", clocks[0])
	}
}

func TestAllreduceCostsMoreThanBarrier(t *testing.T) {
	runCollective := func(allreduce bool) uint64 {
		w := testWorld(4, 1)
		var out uint64
		w.Run(func(p *Process, th *Thread) {
			exe := p.LoadMap.Load("exe")
			f := exe.AddFunc("main", "main.c", 1)
			th.Call(f)
			if allreduce {
				w.Allreduce(th, 1<<20)
			} else {
				w.Barrier(th)
			}
			if p.Rank == 0 {
				out = th.Clock()
			}
			th.Ret()
		})
		return out
	}
	if runCollective(true) <= runCollective(false) {
		t.Error("megabyte allreduce not costlier than empty barrier")
	}
}

func TestWorldBlockDistribution(t *testing.T) {
	nodeA := NewNode(machine.Tiny(), cache.DefaultConfig())
	nodeB := NewNode(machine.Tiny(), cache.DefaultConfig())
	w := NewWorld([]*Node{nodeA, nodeB}, 4, 2, nil)
	if w.Procs[0].Node != nodeA || w.Procs[1].Node != nodeA {
		t.Error("ranks 0,1 should land on node A")
	}
	if w.Procs[2].Node != nodeB || w.Procs[3].Node != nodeB {
		t.Error("ranks 2,3 should land on node B")
	}
	// Distinct ASIDs.
	if w.Procs[0].ASID == w.Procs[1].ASID {
		t.Error("ranks share an ASID")
	}
}

// TestMessageFIFOProperty: messages between one (sender, receiver) pair are
// delivered in send order, regardless of payload sizes.
func TestMessageFIFOProperty(t *testing.T) {
	w := testWorld(2, 1)
	const n = 200
	var got []int
	w.Run(func(p *Process, th *Thread) {
		exe := p.LoadMap.Load("exe")
		f := exe.AddFunc("main", "main.c", 1)
		th.Call(f)
		switch p.Rank {
		case 0:
			for i := 0; i < n; i++ {
				w.Send(th, 1, uint64(i%977+1), i)
			}
		case 1:
			for i := 0; i < n; i++ {
				w.Recv(th, 0, i) // tag check enforces order
				got = append(got, i)
			}
		}
		th.Ret()
	})
	if len(got) != n {
		t.Fatalf("received %d messages, want %d", len(got), n)
	}
}

// TestClockMonotonicThroughCollectives: a rank's clock never goes backwards
// across sends, receives and barriers.
func TestClockMonotonicThroughCollectives(t *testing.T) {
	w := testWorld(4, 1)
	violations := make([]bool, 4)
	w.Run(func(p *Process, th *Thread) {
		exe := p.LoadMap.Load("exe")
		f := exe.AddFunc("main", "main.c", 1)
		th.Call(f)
		prev := th.Clock()
		check := func() {
			if th.Clock() < prev {
				violations[p.Rank] = true
			}
			prev = th.Clock()
		}
		for i := 0; i < 10; i++ {
			th.Work(uint64(100 * (p.Rank + 1)))
			check()
			peer := p.Rank ^ 1
			w.Send(th, peer, 64, i)
			check()
			w.Recv(th, peer, i)
			check()
			w.Barrier(th)
			check()
		}
		th.Ret()
	})
	for r, v := range violations {
		if v {
			t.Errorf("rank %d clock went backwards", r)
		}
	}
}
