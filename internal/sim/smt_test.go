package sim

import (
	"testing"

	"dcprof/internal/cache"
	"dcprof/internal/machine"
)

// smtTopo: one socket, one core, 4 SMT threads.
func smtTopo() machine.Topology {
	return machine.Topology{
		Name: "smt4", Sockets: 1, CoresPerSocket: 1, ThreadsPerCore: 4, NUMADomains: 1,
	}
}

func TestSMTContentionSlowsCompute(t *testing.T) {
	run := func(threads int) uint64 {
		p := NewProcess(NewNode(smtTopo(), cache.DefaultConfig()), 0, 0, 4, nil)
		exe := p.LoadMap.Load("exe")
		f := exe.AddFunc("main", "main.c", 1)
		ol := exe.AddFunc("ol", "main.c", 5)
		th := p.Start()
		th.Call(f)
		start := th.Clock()
		p.Parallel(th, ol, threads, func(w *Thread, tid int) {
			w.Work(100_000)
		})
		elapsed := th.Clock() - start
		th.Ret()
		p.Finish()
		return elapsed
	}
	solo := run(1)
	full := run(4)
	// Four SMT siblings on one core: each thread's 100k instructions take
	// (10+6*3)/10 = 2.8x longer.
	if full < 2*solo {
		t.Errorf("SMT4 region (%d cy) not clearly slower than solo (%d cy)", full, solo)
	}
	if full > 4*solo {
		t.Errorf("SMT4 region (%d cy) slower than serialized execution (%d cy)", full, 4*solo)
	}
}

func TestNoSMTNoEffect(t *testing.T) {
	// Tiny topology has one thread per core: parallel compute scales fully.
	p := NewProcess(NewNode(machine.Tiny(), cache.DefaultConfig()), 0, 0, 4, nil)
	exe := p.LoadMap.Load("exe")
	f := exe.AddFunc("main", "main.c", 1)
	ol := exe.AddFunc("ol", "main.c", 5)
	th := p.Start()
	th.Call(f)
	start := th.Clock()
	p.Parallel(th, ol, 4, func(w *Thread, tid int) { w.Work(100_000) })
	elapsed := th.Clock() - start
	if elapsed > 100_000+2*barrierBaseCycles+200 {
		t.Errorf("one-thread-per-core region took %d cy, want ~100000", elapsed)
	}
	th.Ret()
	p.Finish()
}

func TestSMTSerialMasterFullSpeed(t *testing.T) {
	// Outside parallel regions the master has the core to itself, even on
	// an SMT topology.
	p := NewProcess(NewNode(smtTopo(), cache.DefaultConfig()), 0, 0, 4, nil)
	exe := p.LoadMap.Load("exe")
	f := exe.AddFunc("main", "main.c", 1)
	th := p.Start()
	th.Call(f)
	c0 := th.Clock()
	th.Work(50_000)
	if got := th.Clock() - c0; got != 50_000 {
		t.Errorf("serial master work cost %d cy, want 50000", got)
	}
	th.Ret()
	p.Finish()
}
