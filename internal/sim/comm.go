package sim

import (
	"fmt"
	"sync"

	"dcprof/internal/mem"
)

// MPI-lite cost model, in cycles. The paper's hybrid benchmarks are
// node-level memory-bound studies, so communication only needs plausible
// magnitudes for wavefront and collective synchronization.
const (
	// msgLatencyCycles is the point-to-point injection-to-delivery latency.
	msgLatencyCycles = 2000
	// msgCyclesPerByte is the inverse network bandwidth.
	msgCyclesPerByte = 0.25
	// sendOverheadCycles / recvOverheadCycles are CPU-side costs.
	sendOverheadCycles = 400
	recvOverheadCycles = 400
)

type envelope struct {
	sendClock uint64
	bytes     uint64
	tag       int
}

// World is an MPI-lite communicator over a set of processes, which may be
// spread across several nodes. Point-to-point messages are FIFO per
// (sender, receiver) pair; collectives synchronize simulated clocks.
type World struct {
	// Procs lists the ranks in order.
	Procs []*Process

	chans   [][]chan envelope
	barrier *clockBarrier
}

// NewWorld creates `ranks` processes block-distributed over the nodes, each
// reserving threadsPerRank hardware threads, with the given process-wide
// placement policy.
func NewWorld(nodes []*Node, ranks, threadsPerRank int, policy mem.Policy) *World {
	if len(nodes) == 0 || ranks <= 0 {
		panic("sim: world needs nodes and ranks")
	}
	w := &World{barrier: newClockBarrier(ranks)}
	for r := 0; r < ranks; r++ {
		node := nodes[r*len(nodes)/ranks]
		p := NewProcess(node, r, r, threadsPerRank, policy)
		p.world = w
		w.Procs = append(w.Procs, p)
	}
	w.chans = make([][]chan envelope, ranks)
	for i := range w.chans {
		w.chans[i] = make([]chan envelope, ranks)
		for j := range w.chans[i] {
			w.chans[i][j] = make(chan envelope, 4096)
		}
	}
	return w
}

// Size returns the number of ranks.
func (w *World) Size() int { return len(w.Procs) }

// Run starts every rank's main on its own goroutine and waits for all of
// them; each rank gets its master thread. Hooks must already be attached.
func (w *World) Run(main func(p *Process, t *Thread)) {
	var wg sync.WaitGroup
	for _, p := range w.Procs {
		wg.Add(1)
		go func(p *Process) {
			defer wg.Done()
			t := p.Start()
			main(p, t)
			p.Finish()
		}(p)
	}
	wg.Wait()
}

// transferCycles is the wire time for a message of the given size.
func transferCycles(bytes uint64) uint64 {
	return msgLatencyCycles + uint64(float64(bytes)*msgCyclesPerByte)
}

// Send posts a message of `bytes` payload bytes to rank dst.
func (w *World) Send(t *Thread, dst int, bytes uint64, tag int) {
	if dst < 0 || dst >= len(w.Procs) {
		panic(fmt.Sprintf("sim: send to invalid rank %d", dst))
	}
	t.Work(sendOverheadCycles)
	w.chans[t.Proc.Rank][dst] <- envelope{sendClock: t.clock, bytes: bytes, tag: tag}
}

// Recv consumes the next message from rank src, which must carry the
// expected tag (messages between a pair are FIFO, as in MPI with one comm).
// The receiver's clock advances to the message's arrival time if it was
// waiting. Returns the payload size.
func (w *World) Recv(t *Thread, src int, tag int) uint64 {
	if src < 0 || src >= len(w.Procs) {
		panic(fmt.Sprintf("sim: recv from invalid rank %d", src))
	}
	env := <-w.chans[src][t.Proc.Rank]
	if env.tag != tag {
		panic(fmt.Sprintf("sim: rank %d expected tag %d from %d, got %d", t.Proc.Rank, tag, src, env.tag))
	}
	arrival := env.sendClock + transferCycles(env.bytes)
	if t.clock < arrival {
		t.clock = arrival
	}
	t.Work(recvOverheadCycles)
	return env.bytes
}

// Barrier synchronizes all ranks: every caller leaves at the slowest rank's
// clock plus the collective's cost.
func (w *World) Barrier(t *Thread) {
	t.clock = w.barrier.wait(t.clock) + collectiveCost(len(w.Procs), 0)
}

// Allreduce models a reduction+broadcast of `bytes` per rank.
func (w *World) Allreduce(t *Thread, bytes uint64) {
	t.clock = w.barrier.wait(t.clock) + collectiveCost(len(w.Procs), bytes)
}

// collectiveCost is a log-tree cost for an n-rank collective.
func collectiveCost(n int, bytes uint64) uint64 {
	steps := uint64(0)
	for v := 1; v < n; v <<= 1 {
		steps++
	}
	if steps == 0 {
		steps = 1
	}
	return steps * transferCycles(bytes)
}

// clockBarrier is a reusable barrier that also computes the max of the
// participants' clocks.
type clockBarrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	n       int
	arrived int
	gen     uint64
	max     uint64
	result  uint64
}

func newClockBarrier(n int) *clockBarrier {
	b := &clockBarrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// wait blocks until all n participants have arrived and returns the maximum
// clock among them.
func (b *clockBarrier) wait(clock uint64) uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	gen := b.gen
	if clock > b.max {
		b.max = clock
	}
	b.arrived++
	if b.arrived == b.n {
		b.arrived = 0
		b.result = b.max
		b.max = 0
		b.gen++
		b.cond.Broadcast()
		return b.result
	}
	for gen == b.gen {
		b.cond.Wait()
	}
	return b.result
}
