package sim

import (
	"sync"
	"testing"

	"dcprof/internal/cache"
	"dcprof/internal/machine"
	"dcprof/internal/mem"
)

func testNode() *Node {
	return NewNode(machine.Tiny(), cache.DefaultConfig())
}

func TestCallStackMechanics(t *testing.T) {
	node := testNode()
	p := NewProcess(node, 0, 0, 1, nil)
	exe := p.LoadMap.Load("exe")
	fMain := exe.AddFunc("main", "main.c", 1)
	fKern := exe.AddFunc("kernel", "kernel.c", 10)

	th := p.Start()
	th.Call(fMain)
	if th.Func() != fMain || th.Line() != 1 {
		t.Fatalf("after Call(main): fn=%v line=%d", th.Func().Name, th.Line())
	}
	th.At(5)
	ipAtCall := th.IP()
	th.Call(fKern)
	if th.Depth() != 2 {
		t.Fatalf("depth = %d, want 2", th.Depth())
	}
	if th.Frames()[1].CallLine != 5 {
		t.Errorf("callee frame CallLine = %d, want 5", th.Frames()[1].CallLine)
	}
	if th.Line() != 10 {
		t.Errorf("entered kernel at line %d, want StartLine 10", th.Line())
	}
	th.Ret()
	if th.Func() != fMain || th.Line() != 5 || th.IP() != ipAtCall {
		t.Error("Ret did not restore caller statement")
	}
	th.Ret()
	if th.Depth() != 0 {
		t.Error("stack not empty after final Ret")
	}
}

func TestRetEmptyPanics(t *testing.T) {
	p := NewProcess(testNode(), 0, 0, 1, nil)
	th := p.Start()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	th.Ret()
}

func TestTrampolineDepthMaintenance(t *testing.T) {
	p := NewProcess(testNode(), 0, 0, 1, nil)
	exe := p.LoadMap.Load("exe")
	a := exe.AddFunc("a", "f.c", 1)
	b := exe.AddFunc("b", "f.c", 10)
	c := exe.AddFunc("c", "f.c", 20)

	th := p.Start()
	th.Call(a)
	th.Call(b)
	th.Call(c)
	th.SetTrampolineDepth(3)
	th.Ret() // pops c: marker must drop to 2
	if th.TrampolineDepth() != 2 {
		t.Errorf("trampoline depth = %d after Ret, want 2", th.TrampolineDepth())
	}
	th.Call(c) // re-entering does not raise the marker
	if th.TrampolineDepth() != 2 {
		t.Errorf("trampoline depth = %d after re-Call, want 2", th.TrampolineDepth())
	}
}

func TestWorkAndAccessAdvanceClock(t *testing.T) {
	p := NewProcess(testNode(), 0, 0, 1, nil)
	exe := p.LoadMap.Load("exe")
	f := exe.AddFunc("main", "main.c", 1)
	th := p.Start()
	th.Call(f)

	c0 := th.Clock()
	th.Work(100)
	if th.Clock()-c0 != 100 {
		t.Errorf("Work(100) advanced clock by %d", th.Clock()-c0)
	}
	if th.Instructions() < 100 {
		t.Error("instructions not counted")
	}

	buf := th.Malloc(4096)
	c1 := th.Clock()
	th.Load(buf, 8)
	dramCost := th.Clock() - c1
	if dramCost < cache.DefaultConfig().MemLat {
		t.Errorf("cold load cost %d below DRAM latency", dramCost)
	}
	c2 := th.Clock()
	th.Load(buf, 8)
	if hit := th.Clock() - c2; hit >= dramCost {
		t.Errorf("hit cost %d not below miss cost %d", hit, dramCost)
	}
}

func TestAccessSplitsCacheLines(t *testing.T) {
	p := NewProcess(testNode(), 0, 0, 1, nil)
	exe := p.LoadMap.Load("exe")
	f := exe.AddFunc("main", "main.c", 1)
	th := p.Start()
	th.Call(f)
	buf := th.Malloc(4096)

	m0 := th.MemOps()
	th.Load(buf, 8) // one line
	if th.MemOps()-m0 != 1 {
		t.Errorf("8-byte load issued %d mem ops", th.MemOps()-m0)
	}
	m1 := th.MemOps()
	th.Load(buf, 256) // four lines
	if th.MemOps()-m1 != 4 {
		t.Errorf("256-byte load issued %d mem ops, want 4", th.MemOps()-m1)
	}
	m2 := th.MemOps()
	th.Load(buf+60, 8) // straddles a line boundary
	if th.MemOps()-m2 != 2 {
		t.Errorf("straddling load issued %d mem ops, want 2", th.MemOps()-m2)
	}
}

func TestCallocFirstTouchByAllocator(t *testing.T) {
	p := NewProcess(testNode(), 0, 0, 4, nil) // tiny: threads 0,1 dom0; 2,3 dom1
	exe := p.LoadMap.Load("exe")
	f := exe.AddFunc("main", "main.c", 1)
	th := p.Start() // tid 0 -> hw 0 -> domain 0
	th.Call(f)

	const pages = 8
	addr := th.Calloc(pages*mem.PageSize, 1)
	for i := 0; i < pages; i++ {
		d, ok := p.Space.PT.Home(addr + mem.Addr(i*mem.PageSize))
		if !ok {
			t.Fatalf("page %d not placed by calloc zeroing", i)
		}
		if d != 0 {
			t.Errorf("page %d homed in %d, want allocator's domain 0", i, d)
		}
	}
}

func TestMallocLeavesPagesForWorkers(t *testing.T) {
	p := NewProcess(testNode(), 0, 0, 4, nil)
	exe := p.LoadMap.Load("exe")
	fMain := exe.AddFunc("main", "main.c", 1)
	fOL := exe.AddFunc("init.omp_fn.0", "main.c", 20)
	th := p.Start()
	th.Call(fMain)

	const pages = 4
	addr := th.Malloc(pages * mem.PageSize)
	if _, ok := p.Space.PT.Home(addr); ok {
		t.Fatal("malloc touched pages")
	}
	// Parallel first-touch: each thread initializes its block.
	p.ParallelFor(th, fOL, 4, pages, func(w *Thread, lo, hi int) {
		for i := lo; i < hi; i++ {
			w.Store(addr+mem.Addr(i*mem.PageSize), 8)
		}
	})
	// Pages 0,1 by threads 0,1 (domain 0); pages 2,3 by threads 2,3 (dom 1).
	for i := 0; i < pages; i++ {
		d, ok := p.Space.PT.Home(addr + mem.Addr(i*mem.PageSize))
		if !ok {
			t.Fatalf("page %d unplaced", i)
		}
		want := 0
		if i >= 2 {
			want = 1
		}
		if d != want {
			t.Errorf("page %d homed in %d, want %d", i, d, want)
		}
	}
}

func TestParallelContextInheritance(t *testing.T) {
	p := NewProcess(testNode(), 0, 0, 4, nil)
	exe := p.LoadMap.Load("exe")
	fMain := exe.AddFunc("main", "main.c", 1)
	fSolve := exe.AddFunc("solve", "solve.c", 50)
	fOL := exe.AddFunc("solve.omp_fn.0", "solve.c", 60)

	th := p.Start()
	th.Call(fMain)
	th.At(3)
	th.Call(fSolve)
	th.At(55)

	type obs struct {
		depth    int
		rootFn   string
		leafFn   string
		callLine int
	}
	var mu sync.Mutex
	seen := map[int]obs{}
	p.Parallel(th, fOL, 4, func(w *Thread, tid int) {
		fr := w.Frames()
		mu.Lock()
		seen[tid] = obs{
			depth:    len(fr),
			rootFn:   fr[0].Fn.Name,
			leafFn:   fr[len(fr)-1].Fn.Name,
			callLine: fr[len(fr)-1].CallLine,
		}
		mu.Unlock()
	})
	for tid := 0; tid < 4; tid++ {
		o := seen[tid]
		if o.depth != 3 {
			t.Errorf("tid %d depth = %d, want 3 (main/solve/omp)", tid, o.depth)
		}
		if o.rootFn != "main" || o.leafFn != "solve.omp_fn.0" {
			t.Errorf("tid %d path = %s..%s", tid, o.rootFn, o.leafFn)
		}
		if o.callLine != 55 {
			t.Errorf("tid %d region call line = %d, want 55", tid, o.callLine)
		}
	}
	// Master's stack is restored after the region.
	if th.Func() != fSolve || th.Line() != 55 {
		t.Error("master context clobbered by region")
	}
}

func TestParallelClockJoin(t *testing.T) {
	p := NewProcess(testNode(), 0, 0, 4, nil)
	exe := p.LoadMap.Load("exe")
	fMain := exe.AddFunc("main", "main.c", 1)
	fOL := exe.AddFunc("ol", "main.c", 5)
	th := p.Start()
	th.Call(fMain)

	start := th.Clock()
	p.Parallel(th, fOL, 4, func(w *Thread, tid int) {
		w.Work(uint64(1000 * (tid + 1))) // slowest does 4000
	})
	elapsed := th.Clock() - start
	if elapsed < 4000 {
		t.Errorf("region elapsed %d, want >= slowest worker's 4000", elapsed)
	}
	if elapsed > 4000+2*barrierBaseCycles+100 {
		t.Errorf("region elapsed %d, want close to 4000", elapsed)
	}
	// All pool threads left at the same time.
	for _, w := range p.Threads() {
		if w.Clock() != th.Clock() {
			t.Errorf("thread %d clock %d != master %d", w.ID, w.Clock(), th.Clock())
		}
	}
}

func TestHooksFire(t *testing.T) {
	rec := &recordingHooks{}
	p := NewProcess(testNode(), 0, 0, 2, nil)
	p.SetHooks(rec)
	exe := p.LoadMap.Load("exe")
	f := exe.AddFunc("main", "main.c", 1)
	fOL := exe.AddFunc("ol", "main.c", 2)

	th := p.Start()
	th.Call(f)
	a := th.Malloc(100)
	b := th.Calloc(10, 8)
	b2 := th.Realloc(b, 200)
	th.Free(a)
	th.Free(b2)
	p.Parallel(th, fOL, 2, func(w *Thread, tid int) { w.Work(1) })
	th.Ret()
	p.Finish()

	rec.mu.Lock()
	defer rec.mu.Unlock()
	if rec.starts != 2 || rec.ends != 2 {
		t.Errorf("thread hooks: %d starts, %d ends; want 2,2", rec.starts, rec.ends)
	}
	wantKinds := []AllocKind{AllocMalloc, AllocCalloc, AllocRealloc}
	if len(rec.allocs) != 3 {
		t.Fatalf("allocs = %d, want 3", len(rec.allocs))
	}
	for i, k := range wantKinds {
		if rec.allocs[i] != k {
			t.Errorf("alloc %d kind = %v, want %v", i, rec.allocs[i], k)
		}
	}
	// Frees: realloc frees b internally, plus explicit frees of a and b2.
	if rec.frees != 3 {
		t.Errorf("frees = %d, want 3", rec.frees)
	}
}

type recordingHooks struct {
	mu     sync.Mutex
	starts int
	ends   int
	allocs []AllocKind
	frees  int
}

func (r *recordingHooks) ThreadStart(*Thread) {
	r.mu.Lock()
	r.starts++
	r.mu.Unlock()
}
func (r *recordingHooks) ThreadEnd(*Thread) {
	r.mu.Lock()
	r.ends++
	r.mu.Unlock()
}
func (r *recordingHooks) OnAlloc(_ *Thread, _ mem.Addr, _ uint64, k AllocKind) {
	r.mu.Lock()
	r.allocs = append(r.allocs, k)
	r.mu.Unlock()
}
func (r *recordingHooks) OnFree(*Thread, mem.Addr, uint64) {
	r.mu.Lock()
	r.frees++
	r.mu.Unlock()
}

func TestChargeOverheadTracked(t *testing.T) {
	p := NewProcess(testNode(), 0, 0, 1, nil)
	th := p.Start()
	c0 := th.Clock()
	th.ChargeOverhead(1234)
	if th.Clock()-c0 != 1234 || th.Overhead() != 1234 {
		t.Errorf("clock +%d overhead %d, want 1234/1234", th.Clock()-c0, th.Overhead())
	}
}

func TestOversubscriptionPanics(t *testing.T) {
	node := testNode() // 4 HW threads
	NewProcess(node, 0, 0, 3, nil)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewProcess(node, 1, 1, 2, nil)
}

func TestAllocKindStrings(t *testing.T) {
	if AllocMalloc.String() != "malloc" || AllocCalloc.String() != "calloc" || AllocRealloc.String() != "realloc" {
		t.Error("AllocKind names wrong")
	}
}
