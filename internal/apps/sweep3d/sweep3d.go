// Package sweep3d reimplements the access pattern of the ASCI Sweep3D
// benchmark (§5.2): a discrete-ordinates neutron-transport sweep over a 3D
// Cartesian grid, MPI-parallel (no threads) with pipelined wavefronts across
// a 2D rank grid.
//
// The paper's finding: the hot arrays Flux, Src and Face are Fortran
// column-major, but the two inner-most loops traverse them so that
// consecutive iterations stride by a full plane — defeating spatial
// locality, the hardware prefetcher and the TLB. Transposing the arrays'
// dimensions (inserting the last dimension between the first and second)
// gives the inner loop unit stride and cuts execution time by 15%. Because
// each MPI rank allocates and touches only its own arrays, there is no NUMA
// pathology — data-fetch *latency*, not remoteness, is the signal (the
// paper samples it with AMD IBS).
package sweep3d

import (
	"dcprof/internal/apps/appkit"
	"dcprof/internal/apps/bench"
	"dcprof/internal/cache"
	"dcprof/internal/machine"
	"dcprof/internal/profiler"
	"dcprof/internal/sim"
)

// Variant selects the array layouts.
type Variant int

const (
	// Original uses the upstream layout: the inner compute loops stride by
	// a plane.
	Original Variant = iota
	// Transposed permutes Flux/Src/Face dimensions so the inner loop is
	// unit-stride.
	Transposed
)

// String names the variant.
func (v Variant) String() string {
	if v == Transposed {
		return "transposed"
	}
	return "original"
}

// Config sizes the run.
type Config struct {
	// Topo is the node (default: the 48-core AMD server).
	Topo machine.Topology
	// RanksX, RanksY shape the 2D rank grid (RanksX*RanksY MPI ranks).
	RanksX, RanksY int
	// NX, NY, NZ are the per-rank grid extents.
	NX, NY, NZ int
	// Octants is the number of sweep directions per iteration (8 in the
	// real code; 2 suffices for the access pattern).
	Octants int
	// Iters is the number of timesteps.
	Iters int
	// Variant selects the layout.
	Variant Variant
	// Profile attaches the profiler to every rank when non-nil.
	Profile *profiler.Config
	// Cache sets the memory-hierarchy parameters (zero value: scaled
	// defaults).
	Cache cache.Config
}

// DefaultConfig returns the case-study configuration: 48 ranks on the AMD
// node.
func DefaultConfig() Config {
	return Config{
		Topo:   machine.MagnyCours48(),
		RanksX: 8,
		RanksY: 6,
		NX:     24, NY: 24, NZ: 32,
		Octants: 2,
		Iters:   1,
	}
}

// TestConfig returns a small configuration for unit tests.
func TestConfig() Config {
	return Config{
		Topo:   machine.Tiny(),
		RanksX: 2,
		RanksY: 2,
		// NY*NZ*8 must clear the profiler's 4 KiB tracking threshold, or
		// Face ends up (correctly) untracked.
		NX: 12, NY: 16, NZ: 32,
		Octants: 2,
		Iters:   1,
		Cache:   appkit.TinyCacheConfig(),
	}
}

// Run executes the benchmark.
func Run(cfg Config) *bench.Result {
	cacheCfg := cfg.Cache
	if cacheCfg.L1Sets == 0 {
		cacheCfg = appkit.ScaledCacheConfig()
	}
	node := sim.NewNode(cfg.Topo, cacheCfg)
	ranks := cfg.RanksX * cfg.RanksY
	world := sim.NewWorld([]*sim.Node{node}, ranks, 1, nil)

	profs := make([]*profiler.Profiler, ranks)
	if cfg.Profile != nil {
		for r, p := range world.Procs {
			profs[r] = profiler.Attach(p, *cfg.Profile)
		}
	}

	done := make([]uint64, ranks)

	world.Run(func(p *sim.Process, th *sim.Thread) {
		in := appkit.Instr{P: profs[p.Rank]}
		exe := p.LoadMap.Load("sweep3d")
		fMain := exe.AddFunc("driver", "driver.f", 1)
		fSweep := exe.AddFunc("sweep", "sweep.f", 440)
		fSource := exe.AddFunc("source", "source.f", 90)

		th.Call(fMain)

		// Per-rank allocations (local first touch, as in real MPI runs).
		th.At(20)
		in.Label(th, "Flux")
		fluxBase := th.Malloc(uint64(cfg.NX*cfg.NY*cfg.NZ) * 8)
		th.At(21)
		in.Label(th, "Src")
		srcBase := th.Malloc(uint64(cfg.NX*cfg.NY*cfg.NZ) * 8)
		th.At(22)
		in.Label(th, "Face")
		faceBase := th.Malloc(uint64(cfg.NY*cfg.NZ) * 8)

		dims := []int{cfg.NX, cfg.NY, cfg.NZ}
		// Fortran column-major: logical dim 0 (i) fastest. The compute
		// loops below run k inner — a plane-sized stride. The transposed
		// variant moves k to the fastest position, matching the loops.
		order := []int{2, 1, 0} // slowest..fastest = k, j, i
		if cfg.Variant == Transposed {
			order = []int{0, 1, 2} // slowest..fastest = i, j, k
		}
		flux := appkit.NewArrayOrder(fluxBase, 8, dims, order)
		src := appkit.NewArrayOrder(srcBase, 8, dims, order)
		// Face holds one incoming i-face of the block: dims (j, k).
		faceOrder := []int{1, 0}
		if cfg.Variant == Transposed {
			faceOrder = []int{0, 1}
		}
		face := appkit.NewArrayOrder(faceBase, 8, []int{cfg.NY, cfg.NZ}, faceOrder)

		// Initialize Src locally (source term).
		th.Call(fSource)
		th.At(95)
		for i := 0; i < cfg.NX; i++ {
			for j := 0; j < cfg.NY; j++ {
				for k := 0; k < cfg.NZ; k++ {
					src.Store(th, i, j, k)
				}
			}
		}
		th.Ret()

		px, py := p.Rank%cfg.RanksX, p.Rank/cfg.RanksX
		planeBytes := uint64(cfg.NY*cfg.NZ) * 8

		for it := 0; it < cfg.Iters; it++ {
			for oct := 0; oct < cfg.Octants; oct++ {
				// Sweep direction alternates across octants.
				reverse := oct%2 == 1
				th.At(450)
				th.Call(fSweep)

				// Pipelined wavefront: receive upstream faces, sweep the
				// local block, send downstream.
				if !reverse {
					if px > 0 {
						world.Recv(th, p.Rank-1, oct)
					}
					if py > 0 {
						world.Recv(th, p.Rank-cfg.RanksX, 100+oct)
					}
				} else {
					if px < cfg.RanksX-1 {
						world.Recv(th, p.Rank+1, oct)
					}
					if py < cfg.RanksY-1 {
						world.Recv(th, p.Rank+cfg.RanksX, 100+oct)
					}
				}

				// The i/j loops at lines 477-478 with the recursion over k
				// at line 480: in the original layout the k loop (inner)
				// strides by a full i-j plane.
				for j := 0; j < cfg.NY; j++ {
					th.At(477)
					for i := 0; i < cfg.NX; i++ {
						th.At(478)
						for k := 0; k < cfg.NZ; k++ {
							th.At(479)
							src.Load(th, i, j, k)
							th.At(480)
							flux.Load(th, i, j, k)
							flux.Store(th, i, j, k)
							th.At(481)
							face.Load(th, j, k)
							face.Store(th, j, k)
							th.Work(10)
						}
					}
				}

				if !reverse {
					if px < cfg.RanksX-1 {
						world.Send(th, p.Rank+1, planeBytes, oct)
					}
					if py < cfg.RanksY-1 {
						world.Send(th, p.Rank+cfg.RanksX, planeBytes, 100+oct)
					}
				} else {
					if px > 0 {
						world.Send(th, p.Rank-1, planeBytes, oct)
					}
					if py > 0 {
						world.Send(th, p.Rank-cfg.RanksX, planeBytes, 100+oct)
					}
				}
				th.Ret()
			}
			world.Allreduce(th, 8) // global flux error check
		}

		th.Ret()
		done[p.Rank] = th.Clock()
	})

	var maxClock uint64
	for _, c := range done {
		if c > maxClock {
			maxClock = c
		}
	}
	res := &bench.Result{App: "sweep3d", Variant: cfg.Variant.String(), Cycles: maxClock}
	for r, p := range world.Procs {
		for _, t := range p.Threads() {
			res.OverheadCycles += t.Overhead()
		}
		if profs[r] != nil {
			res.Profiles = append(res.Profiles, profs[r].Profiles()...)
		}
	}
	return res
}
