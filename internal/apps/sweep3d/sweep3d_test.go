package sweep3d

import (
	"testing"

	"dcprof/internal/cct"
	"dcprof/internal/metric"
	"dcprof/internal/profiler"
	"dcprof/internal/view"
)

func TestTransposeFaster(t *testing.T) {
	cfg := TestConfig()
	orig := Run(cfg)
	cfg.Variant = Transposed
	opt := Run(cfg)
	if opt.Cycles >= orig.Cycles {
		t.Errorf("transposed (%d cy) not faster than original (%d cy)", opt.Cycles, orig.Cycles)
	}
	t.Logf("improvement: %.1f%% (paper: 15%%)",
		100*float64(orig.Cycles-opt.Cycles)/float64(orig.Cycles))
}

func TestLatencyAttributedToThreeArrays(t *testing.T) {
	cfg := TestConfig()
	pc := profiler.DefaultConfig() // IBS, as in the paper's AMD runs
	pc.Period = 32
	cfg.Profile = &pc
	res := Run(cfg)
	if len(res.Profiles) != cfg.RanksX*cfg.RanksY {
		t.Fatalf("profiles = %d, want one per rank", len(res.Profiles))
	}
	db := res.Merged(4)
	if db.Ranks != cfg.RanksX*cfg.RanksY {
		t.Errorf("merged ranks = %d", db.Ranks)
	}

	shares := view.ClassShares(db.Merged, metric.Latency)
	if shares[cct.ClassHeap] < 0.7 {
		t.Errorf("heap latency share = %.3f, paper reports 0.974", shares[cct.ClassHeap])
	}
	vars := view.RankVariables(db.Merged, metric.Latency)
	got := map[string]float64{}
	for _, v := range vars {
		got[v.Name] = v.Share
	}
	// Paper: Flux 39.4%, Src 39.1%, Face 14.6%.
	if got["Flux"] == 0 || got["Src"] == 0 || got["Face"] == 0 {
		t.Fatalf("hot arrays missing from profile: %v", got)
	}
	if got["Face"] >= got["Flux"] || got["Face"] >= got["Src"] {
		t.Errorf("Face (%.3f) should trail Flux (%.3f) and Src (%.3f)",
			got["Face"], got["Flux"], got["Src"])
	}
	t.Logf("Flux=%.1f%% Src=%.1f%% Face=%.1f%% (paper: 39.4/39.1/14.6)",
		100*got["Flux"], 100*got["Src"], 100*got["Face"])

	// NUMA cleanliness: pure-MPI ranks touch their own data, so remote
	// accesses are a negligible fraction of samples.
	tot := db.Merged.Total()
	if tot[metric.FromRMEM] > tot[metric.Samples]/20 {
		t.Errorf("remote accesses = %d of %d samples; MPI ranks should be NUMA-local",
			tot[metric.FromRMEM], tot[metric.Samples])
	}
}

func TestHotLineIsFluxAccess(t *testing.T) {
	cfg := TestConfig()
	pc := profiler.DefaultConfig()
	pc.Period = 32
	cfg.Profile = &pc
	res := Run(cfg)
	db := res.Merged(4)
	vars := view.RankVariables(db.Merged, metric.Latency)
	var flux *view.VarStat
	for i := range vars {
		if vars[i].Name == "Flux" {
			flux = &vars[i]
		}
	}
	if flux == nil {
		t.Fatal("Flux not found")
	}
	accs := view.TopAccesses(flux.Node, metric.Latency, view.MetricTotal(db.Merged, metric.Latency))
	if len(accs) == 0 {
		t.Fatal("no accesses under Flux")
	}
	// The paper's Figure 7: the dominant access is the sweep statement at
	// line 480, deep in the call chain.
	if accs[0].Line != 480 || accs[0].File != "sweep.f" {
		t.Errorf("top Flux access = %s:%d, want sweep.f:480", accs[0].File, accs[0].Line)
	}
}
