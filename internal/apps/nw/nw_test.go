package nw

import (
	"testing"

	"dcprof/internal/apps/appkit"
	"dcprof/internal/cct"
	"dcprof/internal/metric"
	"dcprof/internal/pmu"
	"dcprof/internal/profiler"
	"dcprof/internal/view"
)

func TestInterleaveFaster(t *testing.T) {
	cfg := TestConfig()
	cfg.Cache = appkit.TinyCacheConfig()
	// The 4-thread test topology needs a slower controller to reproduce the
	// saturation that 128 threads cause at full scale.
	cfg.Cache.DRAMService = 256
	orig := Run(cfg)
	cfg.Variant = LibnumaInterleave
	opt := Run(cfg)
	if opt.Cycles >= orig.Cycles {
		t.Errorf("interleave (%d cy) not faster than original (%d cy)", opt.Cycles, orig.Cycles)
	}
	t.Logf("improvement: %.1f%% (paper: 53%%)",
		100*float64(orig.Cycles-opt.Cycles)/float64(orig.Cycles))
}

func TestTwoHotVariables(t *testing.T) {
	cfg := TestConfig()
	cfg.Cache = appkit.TinyCacheConfig()
	pc := profiler.MarkedConfig(pmu.MarkDataFromRMEM, 4)
	cfg.Profile = &pc
	res := Run(cfg)
	db := res.Merged(4)

	shares := view.ClassShares(db.Merged, metric.FromRMEM)
	if shares[cct.ClassHeap] < 0.8 {
		t.Errorf("heap share = %.3f, paper reports 0.909", shares[cct.ClassHeap])
	}
	vars := view.RankVariables(db.Merged, metric.FromRMEM)
	if len(vars) < 2 {
		t.Fatalf("variables = %d, want >= 2", len(vars))
	}
	names := map[string]float64{}
	for _, v := range vars {
		names[v.Name] = v.Share
	}
	if names["referrence"] == 0 || names["input_itemsets"] == 0 {
		t.Fatalf("hot variables missing: %v", names)
	}
	// Paper: referrence 61.4%, input_itemsets 29.5% — referrence dominates.
	if names["referrence"] <= names["input_itemsets"] {
		t.Errorf("referrence (%.3f) should outweigh input_itemsets (%.3f)",
			names["referrence"], names["input_itemsets"])
	}
	t.Logf("referrence=%.1f%% input_itemsets=%.1f%% (paper: 61.4%% / 29.5%%)",
		100*names["referrence"], 100*names["input_itemsets"])
}

func TestWavefrontCoversAllBlocks(t *testing.T) {
	// The DP result is access-pattern only, but the wavefront must at least
	// touch every cell: run tiny and check the simulated memory system saw
	// roughly N^2 * 6 accesses (init 2N^2 + compute ~5N^2, line-granular).
	cfg := TestConfig()
	cfg.N = 64
	res := Run(cfg)
	if res.Cycles == 0 {
		t.Fatal("no work simulated")
	}
}
