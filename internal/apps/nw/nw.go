// Package nw reimplements the access pattern of the Rodinia
// Needleman-Wunsch benchmark (§5.5): dynamic-programming DNA sequence
// alignment over two (n+1)² integer arrays — `referrence` (sic, the
// Rodinia spelling), the scoring matrix, and `input_itemsets`, the DP
// table. Anti-diagonals of blocks are processed in parallel; every cell
// reads its reference score and three DP neighbours.
//
// Both arrays are allocated and initialized by the master thread, so all
// their pages land in one NUMA domain and the 128-thread wavefront hammers
// one memory controller remotely. The paper's fix distributes both arrays
// across NUMA domains with libnuma's interleaved allocation, speeding the
// program up by 53%.
package nw

import (
	"dcprof/internal/apps/appkit"
	"dcprof/internal/apps/bench"
	"dcprof/internal/cache"
	"dcprof/internal/machine"
	"dcprof/internal/profiler"
	"dcprof/internal/sim"
)

// Variant selects original or optimized allocation.
type Variant int

const (
	// Original allocates with malloc and initializes from the master.
	Original Variant = iota
	// LibnumaInterleave allocates both hot arrays with numa_alloc_interleaved.
	LibnumaInterleave
)

// String names the variant.
func (v Variant) String() string {
	if v == LibnumaInterleave {
		return "libnuma-interleave"
	}
	return "original"
}

// Config sizes the run.
type Config struct {
	// Topo is the node (default POWER7, 128 threads).
	Topo machine.Topology
	// Threads is the OpenMP thread count.
	Threads int
	// N is the sequence length; the arrays are (N+1)².
	N int
	// BlockSize is the wavefront tile edge.
	BlockSize int
	// Variant selects allocation placement.
	Variant Variant
	// Profile attaches the profiler when non-nil.
	Profile *profiler.Config
	// Cache sets the memory-hierarchy parameters (zero value: scaled
	// defaults via appkit.ScaledCacheConfig).
	Cache cache.Config
}

// DefaultConfig returns the case-study configuration. The DRAM service
// time is scaled up so that the wavefront's demand saturates a memory
// controller the way the full-size problem saturates POWER7's — NW at
// paper scale is bandwidth-bound in its compute phase, not dominated by
// its (serial, local) initialization.
func DefaultConfig() Config {
	c := appkit.ScaledCacheConfig()
	c.DRAMService = 96
	return Config{
		Topo:      machine.Power7Node(),
		Threads:   128,
		N:         2048,
		BlockSize: 16,
		Variant:   Original,
		Cache:     c,
	}
}

// TestConfig returns a small configuration for unit tests.
func TestConfig() Config {
	return Config{
		Topo:      machine.Tiny(),
		Threads:   4,
		N:         192,
		BlockSize: 16,
		Variant:   Original,
		Cache:     appkit.TinyCacheConfig(),
	}
}

// Run executes the benchmark.
func Run(cfg Config) *bench.Result {
	cacheCfg := cfg.Cache
	if cacheCfg.L1Sets == 0 {
		cacheCfg = appkit.ScaledCacheConfig()
	}
	node := sim.NewNode(cfg.Topo, cacheCfg)
	proc := sim.NewProcess(node, 0, 0, cfg.Threads, nil)
	var in appkit.Instr
	if cfg.Profile != nil {
		in.P = profiler.Attach(proc, *cfg.Profile)
	}

	exe := proc.LoadMap.Load("needle")
	fMain := exe.AddFunc("main", "needle.cpp", 1)
	fRunTest := exe.AddFunc("runTest", "needle.cpp", 100)
	fRegion := exe.AddFunc("_Z7runTestiPPc.omp_fn.0", "needle.cpp", 150)
	fMaximum := exe.AddFunc("maximum", "needle.cpp", 60)

	n := cfg.N + 1
	th := proc.Start()
	th.Call(fMain)
	th.At(5)
	th.Call(fRunTest)

	// Allocations (the problematic variables).
	th.At(110)
	in.Label(th, "referrence")
	refBase := th.Malloc(uint64(n) * uint64(n) * 4)
	th.At(111)
	in.Label(th, "input_itemsets")
	inputBase := th.Malloc(uint64(n) * uint64(n) * 4)
	if cfg.Variant == LibnumaInterleave {
		proc.Space.InterleaveRange(refBase, uint64(n)*uint64(n)*4)
		proc.Space.InterleaveRange(inputBase, uint64(n)*uint64(n)*4)
	}
	ref := appkit.NewArray(refBase, 4, n, n)
	input := appkit.NewArray(inputBase, 4, n, n)

	initStart := th.Clock()
	// Master-thread initialization (first touch under the original
	// variant; under libnuma the pages follow the interleave override).
	// The init loops are simple enough that the compiler vectorizes them:
	// model the stores at cache-line granularity.
	th.At(120)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j += 16 {
			th.Store(ref.Addr(i, j), 64)
		}
	}
	th.At(125)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j += 16 {
			th.Store(input.Addr(i, j), 64)
		}
	}

	initCycles := th.Clock() - initStart
	computeStart := th.Clock()

	// Wavefront over anti-diagonals of BlockSize tiles.
	nb := cfg.N / cfg.BlockSize
	processBlock := func(t *sim.Thread, bi, bj int) {
		t.At(160)
		for ii := 0; ii < cfg.BlockSize; ii++ {
			i := 1 + bi*cfg.BlockSize + ii
			for jj := 0; jj < cfg.BlockSize; jj++ {
				j := 1 + bj*cfg.BlockSize + jj
				t.At(163)
				ref.Load(t, i, j) // referrence[i][j]
				t.At(164)
				input.Load(t, i-1, j-1)
				input.Load(t, i, j-1)
				input.Load(t, i-1, j)
				t.Call(fMaximum)
				t.At(62)
				t.Work(14)
				t.Ret()
				t.At(165)
				input.Store(t, i, j)
			}
		}
	}

	// Forward sweep: diagonals 0..2*nb-2.
	for d := 0; d < 2*nb-1; d++ {
		loBi := 0
		if d >= nb {
			loBi = d - nb + 1
		}
		hiBi := d
		if hiBi > nb-1 {
			hiBi = nb - 1
		}
		count := hiBi - loBi + 1
		thr := cfg.Threads
		if thr > count {
			thr = count
		}
		th.At(155)
		proc.ParallelFor(th, fRegion, thr, count, func(t *sim.Thread, lo, hi int) {
			for k := lo; k < hi; k++ {
				bi := loBi + k
				bj := d - bi
				processBlock(t, bi, bj)
			}
		})
	}

	th.Ret() // runTest
	th.Ret() // main
	proc.Finish()

	res := &bench.Result{App: "nw", Variant: cfg.Variant.String(), Cycles: th.Clock()}
	res.Phases = []bench.Phase{
		{Name: "init", Cycles: initCycles},
		{Name: "compute", Cycles: th.Clock() - computeStart},
	}
	for _, t := range proc.Threads() {
		res.OverheadCycles += t.Overhead()
	}
	if in.P != nil {
		res.Profiles = in.P.Profiles()
	}
	return res
}
