// Package lulesh reimplements the access pattern of LLNL's LULESH proxy
// application (§5.3): an Arbitrary Lagrangian-Eulerian shock-hydrodynamics
// code, OpenMP-parallel over elements and nodes.
//
// Two of the paper's findings are modelled:
//
//   - All of LULESH's nodal heap arrays (coordinates, velocities, forces)
//     are allocated and initialized by the master thread, so first touch
//     homes them in one NUMA domain whose memory bandwidth then bottlenecks
//     all 48 threads; libnuma interleaved allocation of the hot arrays
//     recovers 13%.
//
//   - The static array f_elem[elem][3][corner] is accessed with an indirect
//     first index, the middle index covering 0..2, and a computed last
//     index; transposing the middle dimension to be last lets each triple
//     of accesses share a cache line (C is row-major), recovering 2.2%.
package lulesh

import (
	"dcprof/internal/apps/appkit"
	"dcprof/internal/apps/bench"
	"dcprof/internal/cache"
	"dcprof/internal/machine"
	"dcprof/internal/mem"
	"dcprof/internal/profiler"
	"dcprof/internal/sim"
)

// Variant is a bitmask of the paper's two optimizations.
type Variant int

const (
	// Original is the highly-tuned upstream OpenMP implementation.
	Original Variant = 0
	// InterleavedHeap applies libnuma interleaved allocation to the hot
	// nodal arrays.
	InterleavedHeap Variant = 1 << iota
	// FElemTransposed moves f_elem's length-3 dimension last.
	FElemTransposed
)

// String names the variant.
func (v Variant) String() string {
	switch v {
	case Original:
		return "original"
	case InterleavedHeap:
		return "libnuma-interleave"
	case FElemTransposed:
		return "felem-transposed"
	case InterleavedHeap | FElemTransposed:
		return "both"
	default:
		return "variant?"
	}
}

// Config sizes the run.
type Config struct {
	// Topo is the node (default: the 48-core AMD Magny-Cours server).
	Topo machine.Topology
	// Threads is the OpenMP thread count.
	Threads int
	// Elems is the element count (nodes ≈ elems).
	Elems int
	// Iters is the number of Lagrange leapfrog time steps.
	Iters int
	// Variant selects the optimizations applied.
	Variant Variant
	// Profile attaches the profiler when non-nil.
	Profile *profiler.Config
	// Cache sets the memory-hierarchy parameters (zero value: scaled
	// defaults via appkit.ScaledCacheConfig).
	Cache cache.Config
}

// DefaultConfig returns the case-study configuration.
func DefaultConfig() Config {
	return Config{
		Topo:    machine.MagnyCours48(),
		Threads: 48,
		Elems:   49152,
		Iters:   2,
	}
}

// TestConfig returns a small configuration for unit tests.
func TestConfig() Config {
	return Config{
		Topo:    machine.Tiny(),
		Threads: 4,
		Elems:   4096,
		Iters:   1,
		Cache:   appkit.TinyCacheConfig(),
	}
}

// hotArrays is the set of nodal arrays the paper's Figure 8 lists, plus the
// elemental state arrays the EOS phase streams.
var hotArrays = []string{
	"m_x", "m_y", "m_z", // nodal coordinates
	"m_xd", "m_yd", "m_zd", // nodal velocities
	"m_fx", "m_fy", "m_fz", // nodal forces
	"m_e", "m_p", "m_q", "m_v", // elemental energy/pressure/viscosity/volume
}

// Run executes the benchmark.
func Run(cfg Config) *bench.Result {
	cacheCfg := cfg.Cache
	if cacheCfg.L1Sets == 0 {
		cacheCfg = appkit.ScaledCacheConfig()
	}
	node := sim.NewNode(cfg.Topo, cacheCfg)
	proc := sim.NewProcess(node, 0, 0, cfg.Threads, nil)
	var in appkit.Instr
	if cfg.Profile != nil {
		in.P = profiler.Attach(proc, *cfg.Profile)
	}

	exe := proc.LoadMap.Load("lulesh")
	fMain := exe.AddFunc("main", "lulesh.cc", 1)
	fLeap := exe.AddFunc("LagrangeLeapFrog", "lulesh.cc", 700)
	fForceOL := exe.AddFunc("CalcForceForElems.omp_fn.0", "lulesh.cc", 760)
	fEOSOL := exe.AddFunc("EvalEOSForElems.omp_fn.3", "lulesh.cc", 780)
	fAccumOL := exe.AddFunc("CalcFAccumForNodes.omp_fn.1", "lulesh.cc", 795)
	fFindPos := exe.AddFunc("Find_Pos", "lulesh.cc", 640)
	fPosOL := exe.AddFunc("CalcPositionForNodes.omp_fn.2", "lulesh.cc", 850)

	nelem := cfg.Elems
	nnode := cfg.Elems // unit-cube mesh approximation

	// Static data: f_elem[elem][3][8] doubles plus the corner list.
	felemDims := []int{nelem, 3, 8}
	felemOrder := []int{0, 1, 2} // original layout: length-3 dim in the middle
	if cfg.Variant&FElemTransposed != 0 {
		felemOrder = []int{0, 2, 1} // length-3 dim last (the paper's fix)
	}
	felemVar := exe.AddStatic("f_elem", uint64(nelem*3*8)*8)
	felem := appkit.NewArrayOrder(felemVar.Lo, 8, felemDims, felemOrder)
	cornerVar := exe.AddStatic("nodeElemCornerList", uint64(nnode*8)*4)

	th := proc.Start()
	th.Call(fMain)

	// Heap allocation and master-thread initialization of the nodal arrays.
	arrays := make(map[string]mem.Addr, len(hotArrays))
	th.At(40)
	for i, name := range hotArrays {
		th.At(40 + i)
		in.Label(th, name)
		a := th.Malloc(uint64(nnode) * 8)
		if cfg.Variant&InterleavedHeap != 0 {
			proc.Space.InterleaveRange(a, uint64(nnode)*8)
		}
		arrays[name] = a
	}
	th.At(60)
	for _, name := range hotArrays {
		a := arrays[name]
		for i := 0; i < nnode; i++ {
			th.Store(a+mem.Addr(i*8), 8)
		}
	}
	// Initialize the (static) corner list too.
	th.At(65)
	for i := 0; i < nnode*8; i++ {
		th.Store(cornerVar.Lo+mem.Addr(i*4), 4)
	}

	// The corner list has mesh locality: the elements touching node n are a
	// small neighbourhood around it (plus the mesh-row/plane offsets), so
	// f_elem lines see some reuse between adjacent nodes, as on a real
	// unstructured mesh.
	edge := 1
	for edge*edge*edge < nelem {
		edge++
	}
	cornerOff := [6]int{0, 1, edge, edge + 1, edge * edge, edge*edge + 1}
	elemOfCorner := func(n, c int) int {
		if c < 6 {
			// Local neighbours: good reuse between adjacent nodes.
			return (n + cornerOff[c]) % nelem
		}
		// Irregular neighbours (mesh boundary/reordering): scattered.
		return (n*7 + c*2503 + 11) % nelem
	}
	nodeOfElem := func(e, c int) int { return (e*37 + c*1511 + 3) % nnode }
	posOf := func(n, c int) int { return (n + 3*c) % 8 }

	for it := 0; it < cfg.Iters; it++ {
		th.At(701)
		th.Call(fLeap)

		// Phase 1: element-centric force calculation: gather the eight
		// corner coordinates and velocities (hourglass/Q terms), compute,
		// scatter into f_elem.
		th.At(710)
		proc.ParallelFor(th, fForceOL, cfg.Threads, nelem, func(t *sim.Thread, lo, hi int) {
			for e := lo; e < hi; e++ {
				t.At(762)
				for c := 0; c < 8; c++ {
					n := nodeOfElem(e, c)
					t.Load(arrays["m_x"]+mem.Addr(n*8), 8)
					t.Load(arrays["m_y"]+mem.Addr(n*8), 8)
					t.Load(arrays["m_z"]+mem.Addr(n*8), 8)
				}
				t.At(764)
				for c := 0; c < 8; c++ {
					n := nodeOfElem(e, c)
					t.Load(arrays["m_xd"]+mem.Addr(n*8), 8)
					t.Load(arrays["m_yd"]+mem.Addr(n*8), 8)
					t.Load(arrays["m_zd"]+mem.Addr(n*8), 8)
				}
				t.Work(400)
				t.At(770)
				pos := posOf(e, 1)
				for c := 0; c < 3; c++ {
					felem.Store(t, e, c, pos)
				}
			}
		})

		// Phase 1b: elemental EOS/state update streaming the element
		// arrays (several passes, as EvalEOSForElems re-reads its inputs).
		th.At(712)
		proc.ParallelFor(th, fEOSOL, cfg.Threads, nelem, func(t *sim.Thread, lo, hi int) {
			for e := lo; e < hi; e++ {
				off := mem.Addr(e * 8)
				t.At(782)
				t.Load(arrays["m_e"]+off, 8)
				t.Load(arrays["m_p"]+off, 8)
				t.Load(arrays["m_q"]+off, 8)
				t.Load(arrays["m_v"]+off, 8)
				t.Work(180)
				t.At(786)
				t.Store(arrays["m_e"]+off, 8)
				t.Store(arrays["m_p"]+off, 8)
				t.Store(arrays["m_q"]+off, 8)
			}
		})

		// Phase 2: node-centric force accumulation — the Figure 9 loop:
		// indirect first index via nodeElemCornerList (line 801), computed
		// last index via Find_Pos (line 802), middle index 0..2.
		th.At(715)
		proc.ParallelFor(th, fAccumOL, cfg.Threads, nnode, func(t *sim.Thread, lo, hi int) {
			for n := lo; n < hi; n++ {
				for c := 0; c < 8; c++ {
					t.At(801)
					t.Load(cornerVar.Lo+mem.Addr((n*8+c)*4), 4)
					e := elemOfCorner(n, c)
					t.Call(fFindPos)
					t.At(642)
					t.Work(4)
					t.Ret()
					pos := posOf(n, c)
					t.At(802)
					felem.Load(t, e, 0, pos)
					felem.Load(t, e, 1, pos)
					felem.Load(t, e, 2, pos)
				}
				t.At(805)
				t.Store(arrays["m_fx"]+mem.Addr(n*8), 8)
				t.Store(arrays["m_fy"]+mem.Addr(n*8), 8)
				t.Store(arrays["m_fz"]+mem.Addr(n*8), 8)
			}
		})

		// Phase 3: node-centric position/velocity update (streaming).
		th.At(720)
		proc.ParallelFor(th, fPosOL, cfg.Threads, nnode, func(t *sim.Thread, lo, hi int) {
			t.At(852)
			for n := lo; n < hi; n++ {
				off := mem.Addr(n * 8)
				t.Load(arrays["m_fx"]+off, 8)
				t.Load(arrays["m_fy"]+off, 8)
				t.Load(arrays["m_fz"]+off, 8)
				t.Load(arrays["m_xd"]+off, 8)
				t.Store(arrays["m_xd"]+off, 8)
				t.Load(arrays["m_yd"]+off, 8)
				t.Store(arrays["m_yd"]+off, 8)
				t.Load(arrays["m_zd"]+off, 8)
				t.Store(arrays["m_zd"]+off, 8)
				t.Load(arrays["m_x"]+off, 8)
				t.Store(arrays["m_x"]+off, 8)
				t.Load(arrays["m_y"]+off, 8)
				t.Store(arrays["m_y"]+off, 8)
				t.Load(arrays["m_z"]+off, 8)
				t.Store(arrays["m_z"]+off, 8)
				t.Work(20)
			}
		})

		th.Ret() // LagrangeLeapFrog
	}

	th.Ret() // main
	proc.Finish()

	res := &bench.Result{App: "lulesh", Variant: cfg.Variant.String(), Cycles: th.Clock()}
	for _, t := range proc.Threads() {
		res.OverheadCycles += t.Overhead()
	}
	if in.P != nil {
		res.Profiles = in.P.Profiles()
	}
	return res
}
