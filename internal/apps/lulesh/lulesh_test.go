package lulesh

import (
	"testing"

	"dcprof/internal/cct"
	"dcprof/internal/metric"
	"dcprof/internal/profiler"
	"dcprof/internal/view"
)

func TestInterleaveFaster(t *testing.T) {
	cfg := TestConfig()
	orig := Run(cfg)
	cfg.Variant = InterleavedHeap
	opt := Run(cfg)
	if opt.Cycles >= orig.Cycles {
		t.Errorf("interleaved heap (%d cy) not faster than original (%d cy)", opt.Cycles, orig.Cycles)
	}
	t.Logf("heap interleave improvement: %.1f%% (paper: 13%%)",
		100*float64(orig.Cycles-opt.Cycles)/float64(orig.Cycles))
}

func TestFElemTransposeFaster(t *testing.T) {
	// Single-threaded: the transpose is a small spatial-locality effect
	// that parallel contention jitter would otherwise swamp.
	cfg := TestConfig()
	cfg.Threads = 1
	orig := Run(cfg)
	cfg.Variant = FElemTransposed
	opt := Run(cfg)
	if opt.Cycles >= orig.Cycles {
		t.Errorf("f_elem transpose (%d cy) not faster than original (%d cy)", opt.Cycles, orig.Cycles)
	}
	t.Logf("f_elem transpose improvement: %.1f%% (paper: 2.2%%)",
		100*float64(orig.Cycles-opt.Cycles)/float64(orig.Cycles))
}

func TestBothVariantName(t *testing.T) {
	if (InterleavedHeap | FElemTransposed).String() != "both" {
		t.Error("variant naming")
	}
}

func TestAttribution(t *testing.T) {
	cfg := TestConfig()
	pc := profiler.DefaultConfig() // IBS, like the paper's AMD runs
	pc.Period = 64
	cfg.Profile = &pc
	res := Run(cfg)
	db := res.Merged(4)

	// Heap variables carry the majority of latency; statics a visible
	// minority with f_elem as the single hottest static (paper: heap 66.8%,
	// statics 23.6%, f_elem 17%).
	shares := view.ClassShares(db.Merged, metric.Latency)
	if shares[cct.ClassHeap] < 0.3 {
		t.Errorf("heap latency share = %.3f, expected the biggest chunk", shares[cct.ClassHeap])
	}
	if shares[cct.ClassStatic] < 0.05 {
		t.Errorf("static latency share = %.3f, expected visible", shares[cct.ClassStatic])
	}
	t.Logf("latency shares: heap=%.1f%% static=%.1f%% (paper: 66.8%% / 23.6%%)",
		100*shares[cct.ClassHeap], 100*shares[cct.ClassStatic])

	vars := view.RankVariables(db.Merged, metric.Latency)
	var topStatic *view.VarStat
	heapSeen := map[string]bool{}
	for i := range vars {
		v := &vars[i]
		if v.Class == cct.ClassStatic && topStatic == nil {
			topStatic = v
		}
		if v.Class == cct.ClassHeap {
			heapSeen[v.Name] = true
		}
	}
	if topStatic == nil || topStatic.Name != "f_elem" {
		t.Errorf("hottest static = %v, want f_elem", topStatic)
	}
	// All nine nodal arrays appear as distinct variables.
	for _, name := range hotArrays {
		if !heapSeen[name] {
			t.Errorf("heap variable %s missing from the profile", name)
		}
	}
}
