package streamcluster

import (
	"testing"

	"dcprof/internal/apps/appkit"
	"dcprof/internal/cct"
	"dcprof/internal/metric"
	"dcprof/internal/pmu"
	"dcprof/internal/profiler"
	"dcprof/internal/view"
)

func TestParallelInitFaster(t *testing.T) {
	cfg := TestConfig()
	cfg.Cache = appkit.TinyCacheConfig()
	cfg.Points = 2048
	cfg.Dim = 16
	orig := Run(cfg)
	cfg.Variant = ParallelInit
	opt := Run(cfg)
	if opt.Cycles >= orig.Cycles {
		t.Errorf("parallel init (%d cy) not faster than original (%d cy)", opt.Cycles, orig.Cycles)
	}
	speedup := float64(orig.Cycles-opt.Cycles) / float64(orig.Cycles)
	t.Logf("improvement: %.1f%% (paper: 28%%)", 100*speedup)
	if speedup < 0.05 {
		t.Errorf("improvement %.1f%% too small to be the NUMA effect", 100*speedup)
	}
}

func TestRemoteAccessesAttributedToBlock(t *testing.T) {
	cfg := TestConfig()
	cfg.Cache = appkit.TinyCacheConfig()
	cfg.Points = 2048
	cfg.Dim = 16
	pc := profiler.MarkedConfig(pmu.MarkDataFromRMEM, 8)
	cfg.Profile = &pc
	res := Run(cfg)
	if len(res.Profiles) != cfg.Threads {
		t.Fatalf("profiles = %d, want %d", len(res.Profiles), cfg.Threads)
	}
	db := res.Merged(4)
	shares := view.ClassShares(db.Merged, metric.FromRMEM)
	if shares[cct.ClassHeap] < 0.9 {
		t.Errorf("heap share of remote accesses = %.3f, paper reports 0.982", shares[cct.ClassHeap])
	}
	vars := view.RankVariables(db.Merged, metric.FromRMEM)
	if len(vars) == 0 {
		t.Fatal("no variables found")
	}
	if vars[0].Name != "block" {
		t.Errorf("top remote variable = %q, want block", vars[0].Name)
	}
	if vars[0].Share < 0.5 {
		t.Errorf("block share = %.3f, paper reports 0.926", vars[0].Share)
	}
}

func TestUnprofiledRunHasNoProfiles(t *testing.T) {
	res := Run(TestConfig())
	if len(res.Profiles) != 0 || res.OverheadCycles != 0 {
		t.Error("unprofiled run produced measurement artifacts")
	}
	if res.App != "streamcluster" || res.Variant != "original" {
		t.Errorf("identification: %s/%s", res.App, res.Variant)
	}
}
