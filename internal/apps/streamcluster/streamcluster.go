// Package streamcluster reimplements the access pattern of the Rodinia
// Streamcluster benchmark (§5.4): online k-median clustering of a stream of
// points. The hot data is `block`, one large array holding every point's
// coordinates, plus a per-point weight array `point.p`.
//
// In the original code the master thread allocates and initializes block,
// so Linux first-touch homes every page in the master's NUMA domain; all
// worker threads then compute point-to-center distances against remote
// memory, contending for one memory controller. The paper's fix initializes
// block in parallel so first touch distributes pages near their readers,
// cutting execution time by 28%.
package streamcluster

import (
	"dcprof/internal/apps/appkit"
	"dcprof/internal/apps/bench"
	"dcprof/internal/cache"
	"dcprof/internal/machine"
	"dcprof/internal/mem"
	"dcprof/internal/profiler"
	"dcprof/internal/sim"
)

// Variant selects the original code or the paper's optimization.
type Variant int

const (
	// Original: master-thread initialization (first touch concentrates all
	// pages in the master's domain).
	Original Variant = iota
	// ParallelInit: each worker initializes (and therefore first-touches)
	// its own chunk of block and of the weights.
	ParallelInit
)

// String names the variant.
func (v Variant) String() string {
	if v == ParallelInit {
		return "parallel-init"
	}
	return "original"
}

// Config sizes the run.
type Config struct {
	// Topo is the node (default: the paper's 128-thread POWER7 node).
	Topo machine.Topology
	// Threads is the OpenMP thread count.
	Threads int
	// Points and Dim size the point block.
	Points, Dim int
	// Centers is the number of candidate medians per pass.
	Centers int
	// Iters is the number of clustering passes.
	Iters int
	// Variant selects original or optimized behaviour.
	Variant Variant
	// Profile attaches the profiler when non-nil.
	Profile *profiler.Config
	// Cache sets the memory-hierarchy parameters (zero value: scaled
	// defaults via appkit.ScaledCacheConfig).
	Cache cache.Config
}

// DefaultConfig returns the case-study configuration (scaled to simulate in
// seconds rather than the paper's minutes).
func DefaultConfig() Config {
	return Config{
		Topo:    machine.Power7Node(),
		Threads: 128,
		Points:  6144,
		Dim:     32,
		Centers: 8,
		Iters:   2,
	}
}

// TestConfig returns a small configuration for unit tests.
func TestConfig() Config {
	return Config{
		Topo:    machine.Tiny(),
		Threads: 4,
		Points:  2048,
		Dim:     16,
		Centers: 4,
		Iters:   1,
		Cache:   appkit.TinyCacheConfig(),
	}
}

// Run executes the benchmark and returns its result.
func Run(cfg Config) *bench.Result {
	cacheCfg := cfg.Cache
	if cacheCfg.L1Sets == 0 {
		cacheCfg = appkit.ScaledCacheConfig()
	}
	node := sim.NewNode(cfg.Topo, cacheCfg)
	proc := sim.NewProcess(node, 0, 0, cfg.Threads, nil)
	var in appkit.Instr
	if cfg.Profile != nil {
		in.P = profiler.Attach(proc, *cfg.Profile)
	}

	exe := proc.LoadMap.Load("streamcluster")
	fMain := exe.AddFunc("main", "streamcluster.cpp", 1)
	fStream := exe.AddFunc("streamCluster", "streamcluster.cpp", 120)
	fInitOL := exe.AddFunc("streamCluster.omp_fn.2", "streamcluster.cpp", 140)
	fPgain := exe.AddFunc("pgain", "streamcluster.cpp", 160)
	fAssignOL := exe.AddFunc("pgain.omp_fn.0", "streamcluster.cpp", 170)
	fUpdateOL := exe.AddFunc("pgain.omp_fn.1", "streamcluster.cpp", 190)
	fDist := exe.AddFunc("dist", "streamcluster.cpp", 172)

	elemsPerPoint := uint64(cfg.Dim) * 8

	th := proc.Start()
	th.Call(fMain)
	th.At(3)
	th.Call(fStream)

	// Allocate block and weights (malloc: pages placed on first touch).
	th.At(130)
	in.Label(th, "block")
	block := th.Malloc(uint64(cfg.Points) * elemsPerPoint)
	th.At(131)
	in.Label(th, "point.p")
	weights := th.Malloc(uint64(cfg.Points) * 8)

	coordAddr := func(point, d int) mem.Addr {
		return block + mem.Addr(uint64(point)*elemsPerPoint+uint64(d)*8)
	}

	initRange := func(t *sim.Thread, lo, hi int) {
		t.At(141)
		for i := lo; i < hi; i++ {
			for d := 0; d < cfg.Dim; d++ {
				t.Store(coordAddr(i, d), 8)
			}
			t.At(142)
			t.Store(weights+mem.Addr(i*8), 8)
			t.At(141)
		}
	}

	// Initialization: the variant under study.
	th.At(140)
	if cfg.Variant == ParallelInit {
		proc.ParallelFor(th, fInitOL, cfg.Threads, cfg.Points, initRange)
	} else {
		initRange(th, 0, cfg.Points)
	}

	// Clustering passes: two parallel regions per pass, as in pgain().
	centerOf := func(c int) int { return (c*7919 + 13) % cfg.Points }
	distTo := func(t *sim.Thread, i, c int) {
		t.Call(fDist)
		t.At(175)
		for d := 0; d < cfg.Dim; d++ {
			t.Load(coordAddr(i, d), 8)           // p1.coord
			t.Load(coordAddr(centerOf(c), d), 8) // p2.coord
		}
		t.Work(uint64(14 * cfg.Dim)) // subtract/square/accumulate/compare
		t.Ret()
	}

	for it := 0; it < cfg.Iters; it++ {
		th.At(161)
		th.Call(fPgain)
		// Region 0: assign each point to its closest candidate center
		// (the 55.5% context: Centers distance evaluations per point).
		th.At(170)
		proc.ParallelFor(th, fAssignOL, cfg.Threads, cfg.Points, func(t *sim.Thread, lo, hi int) {
			for i := lo; i < hi; i++ {
				for c := 0; c < cfg.Centers; c++ {
					distTo(t, i, c)
					t.At(176)
					t.Load(weights+mem.Addr(i*8), 8) // * p[i].weight
					t.Work(8)
				}
			}
		})
		// Region 1: evaluate reassignment gains (the 37% context: fewer
		// distance evaluations).
		th.At(190)
		proc.ParallelFor(th, fUpdateOL, cfg.Threads, cfg.Points, func(t *sim.Thread, lo, hi int) {
			for i := lo; i < hi; i++ {
				for c := 0; c < (cfg.Centers+1)/2; c++ {
					distTo(t, i, c)
					t.At(196)
					t.Load(weights+mem.Addr(i*8), 8)
					t.Work(8)
				}
			}
		})
		th.Ret()
	}

	th.Ret() // streamCluster
	th.Ret() // main
	proc.Finish()

	res := &bench.Result{
		App:     "streamcluster",
		Variant: cfg.Variant.String(),
		Cycles:  th.Clock(),
	}
	for _, t := range proc.Threads() {
		res.OverheadCycles += t.Overhead()
	}
	if in.P != nil {
		res.Profiles = in.P.Profiles()
	}
	return res
}
