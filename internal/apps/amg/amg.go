// Package amg reimplements the structure and access pattern of the LLNL
// Sequoia AMG2006 benchmark (§5.1): a hybrid MPI+OpenMP algebraic-multigrid
// solver with three phases — initialization, setup and solve.
//
// Everything heap-allocated goes through the hypre allocator wrapper
// (hypre_CAlloc), whose calloc zeroes — and therefore first-touches — every
// page from the master thread. In the solve phase, OpenMP worker threads
// across all NUMA domains stream the CSR arrays (S_diag_j and friends) out
// of the master's domain, contending for its memory controller. The paper
// compares three placements (Table 2):
//
//   - original: first-touch (all matrix pages in the master's domain);
//   - numactl --interleave=all: everything interleaved — the solve phase
//     speeds up but initialization doubles, because the master's zeroing
//     now touches 3 of 4 domains remotely;
//   - selective libnuma: only the problematic matrix arrays are interleaved
//     and the thread-initialized vectors switch from calloc to malloc so
//     parallel first touch places them locally — best of both.
//
// The setup phase also performs many small, short-lived allocations in deep
// call chains, the workload behind the paper's §4.1.3 tracking-overhead
// ablation (+150% naive, <10% with the threshold and trampoline).
package amg

import (
	"dcprof/internal/apps/appkit"
	"dcprof/internal/apps/bench"
	"dcprof/internal/cache"
	"dcprof/internal/loadmap"
	"dcprof/internal/machine"
	"dcprof/internal/mem"
	"dcprof/internal/profiler"
	"dcprof/internal/sim"
)

// Variant selects the NUMA placement strategy.
type Variant int

const (
	// Original uses calloc + first touch by the master thread.
	Original Variant = iota
	// NumactlInterleave launches with `numactl --interleave=all`.
	NumactlInterleave
	// LibnumaSelective interleaves only the hot matrix arrays (libnuma) and
	// switches the parallel-initialized vectors from calloc to malloc.
	LibnumaSelective
)

// String names the variant.
func (v Variant) String() string {
	switch v {
	case NumactlInterleave:
		return "numactl-interleave"
	case LibnumaSelective:
		return "libnuma-selective"
	default:
		return "original"
	}
}

// Config sizes the run.
type Config struct {
	// NodesCount is the number of cluster nodes; one MPI rank runs per node
	// (the paper: 4 POWER7 nodes, 128 threads each).
	NodesCount int
	// Topo is each node's topology.
	Topo machine.Topology
	// Threads is the OpenMP thread count per rank.
	Threads int
	// Rows is the fine-level matrix rows per rank; NnzPerRow the row degree.
	Rows, NnzPerRow int
	// Levels is the multigrid hierarchy depth; VCycles the solve iterations.
	Levels, VCycles int
	// SmallAllocs is the number of short-lived descriptor allocations per
	// setup level (the tracking-overhead driver).
	SmallAllocs int
	// SetupWork is extra compute per setup level (cycles), calibrating the
	// phase balance of Table 2.
	SetupWork uint64
	// Variant selects the placement strategy.
	Variant Variant
	// Profile attaches the profiler to every rank when non-nil.
	Profile *profiler.Config
	// Cache sets the memory-hierarchy parameters (zero: scaled defaults).
	Cache cache.Config
}

// DefaultConfig returns the case-study configuration.
func DefaultConfig() Config {
	return Config{
		NodesCount:  4,
		Topo:        machine.Power7Node(),
		Threads:     128,
		Rows:        8192,
		NnzPerRow:   9,
		Levels:      4,
		VCycles:     48,
		SmallAllocs: 26000,
		SetupWork:   13_000_000,
	}
}

// TestConfig returns a small configuration for unit tests.
func TestConfig() Config {
	return Config{
		NodesCount:  2,
		Topo:        machine.Tiny(),
		Threads:     4,
		Rows:        4096,
		NnzPerRow:   5,
		Levels:      2,
		VCycles:     2,
		SmallAllocs: 50,
		SetupWork:   400_000,
		Cache:       appkit.TinyCacheConfig(),
	}
}

// program bundles a rank's declared functions.
type program struct {
	main, build, calloc, setup, setupHelper, descend *loadmap.Function
	solve, matvecOL, relaxOL, initVecOL              *loadmap.Function
}

func declare(p *sim.Process) *program {
	exe := p.LoadMap.Load("amg2006")
	lib := p.LoadMap.Load("libHYPRE.so")
	return &program{
		main:        exe.AddFunc("main", "amg2006.c", 1),
		build:       exe.AddFunc("BuildIJLaplacian27pt", "laplacian.c", 200),
		calloc:      lib.AddFunc("hypre_CAlloc", "hypre_memory.c", 170),
		setup:       lib.AddFunc("hypre_BoomerAMGSetup", "par_amg_setup.c", 300),
		setupHelper: lib.AddFunc("hypre_BoomerAMGCoarsen", "par_coarsen.c", 120),
		descend:     lib.AddFunc("hypre_CreateSStructGrid", "sstruct_grid.c", 60),
		solve:       lib.AddFunc("hypre_BoomerAMGSolve", "par_amg_solve.c", 250),
		matvecOL:    lib.AddFunc("hypre_ParCSRMatrixMatvec.omp_fn.0", "par_csr_matvec.c", 430),
		relaxOL:     lib.AddFunc("hypre_BoomerAMGRelax.omp_fn.1", "par_relax.c", 620),
		initVecOL:   lib.AddFunc("hypre_ParVectorInit.omp_fn.2", "par_vector.c", 150),
	}
}

// hypreCAlloc allocates through the hypre wrapper: full call path ends at
// hypre_memory.c:175 inside hypre_CAlloc, then calloc — matching the
// paper's Figure 4. With useMalloc the zeroing is skipped (the libnuma
// variant's calloc→malloc change); with interleave the block gets a
// libnuma interleaved range policy before any touch.
func hypreCAlloc(th *sim.Thread, in appkit.Instr, pr *program, label string,
	bytes uint64, useMalloc, interleave bool) mem.Addr {
	th.Call(pr.calloc)
	th.At(175)
	in.Label(th, label)
	var addr mem.Addr
	if useMalloc {
		addr = th.Malloc(bytes)
	} else {
		addr = th.CallocWith(bytes, 1, func(a mem.Addr) {
			if interleave {
				th.Proc.Space.InterleaveRange(a, bytes)
			}
		})
	}
	th.Ret()
	return addr
}

// Run executes the benchmark, returning phase times (initialization, setup,
// solver) along with the total.
func Run(cfg Config) *bench.Result {
	cacheCfg := cfg.Cache
	if cacheCfg.L1Sets == 0 {
		cacheCfg = appkit.ScaledCacheConfig()
	}
	nodes := make([]*sim.Node, cfg.NodesCount)
	for i := range nodes {
		nodes[i] = sim.NewNode(cfg.Topo, cacheCfg)
	}
	var policy mem.Policy
	if cfg.Variant == NumactlInterleave {
		policy = mem.Interleave{}
	}
	world := sim.NewWorld(nodes, cfg.NodesCount, cfg.Threads, policy)

	profs := make([]*profiler.Profiler, cfg.NodesCount)
	if cfg.Profile != nil {
		for r, p := range world.Procs {
			profs[r] = profiler.Attach(p, *cfg.Profile)
		}
	}

	type phaseClocks struct{ init, setup, solve uint64 }
	perRank := make([]phaseClocks, cfg.NodesCount)

	world.Run(func(p *sim.Process, th *sim.Thread) {
		in := appkit.Instr{P: profs[p.Rank]}
		pr := declare(p)
		nnz := cfg.Rows * cfg.NnzPerRow
		selective := cfg.Variant == LibnumaSelective

		th.Call(pr.main)

		// ---------------- Phase 1: initialization ----------------
		start := th.Clock()
		th.At(12)
		th.Call(pr.build)

		alloc := func(line int, label string, bytes uint64, vector bool) mem.Addr {
			th.At(line)
			// Under selective libnuma: matrix arrays are interleaved;
			// vectors (initialized in parallel) switch to malloc.
			return hypreCAlloc(th, in, pr, label, bytes,
				selective && vector, selective && !vector)
		}
		aDiagI := alloc(205, "A_diag_i", uint64(cfg.Rows+1)*8, false)
		aDiagJ := alloc(206, "A_diag_j", uint64(nnz)*8, false)
		aDiagD := alloc(207, "A_diag_data", uint64(nnz)*8, false)
		sDiagI := alloc(210, "S_diag_i", uint64(cfg.Rows+1)*8, false)
		sDiagJ := alloc(211, "S_diag_j", uint64(nnz)*8, false)
		u := alloc(215, "u", uint64(cfg.Rows)*8, true)
		f := alloc(216, "f", uint64(cfg.Rows)*8, true)

		// Grid-construction workspace: thread-local/temporary data that the
		// paper's selective approach deliberately does NOT interleave
		// ("we avoid interleaved allocation for thread local data") but
		// numactl's process-wide interleaving drags remote.
		th.At(220)
		workspace := hypreCAlloc(th, in, pr, "workspace", uint64(6*nnz)*8, false, false)

		// Master fills the matrix structure (sequential stores).
		th.At(230)
		for r := 0; r < cfg.Rows; r++ {
			th.Store(aDiagI+mem.Addr(r*8), 8)
			th.Store(sDiagI+mem.Addr(r*8), 8)
		}
		th.At(233)
		for i := 0; i < nnz; i++ {
			th.Store(aDiagJ+mem.Addr(i*8), 8)
			th.Store(aDiagD+mem.Addr(i*8), 8)
			th.Store(sDiagJ+mem.Addr(i*8), 8)
		}
		// Grid construction sweeps the workspace twice, then releases it.
		th.At(236)
		for i := 0; i < 6*nnz; i++ {
			th.Load(workspace+mem.Addr(i*8), 8)
			th.Store(workspace+mem.Addr(i*8), 8)
		}
		th.At(238)
		th.Free(workspace)
		th.Ret() // build

		// Vectors are initialized in parallel (first touch by workers under
		// the selective variant's malloc change).
		th.At(14)
		world.Procs[p.Rank].ParallelFor(th, pr.initVecOL, cfg.Threads, cfg.Rows,
			func(t *sim.Thread, lo, hi int) {
				t.At(152)
				for r := lo; r < hi; r++ {
					t.Store(u+mem.Addr(r*8), 8)
					t.Store(f+mem.Addr(r*8), 8)
				}
			})
		world.Barrier(th)
		perRank[p.Rank].init = th.Clock() - start

		// ---------------- Phase 2: setup ----------------
		start = th.Clock()
		th.At(16)
		th.Call(pr.setup)
		rows := cfg.Rows
		for lvl := 0; lvl < cfg.Levels; lvl++ {
			// Short-lived descriptor allocations in a deep call chain.
			th.At(310 + lvl)
			th.Call(pr.setupHelper)
			for a := 0; a < cfg.SmallAllocs; a++ {
				th.At(130)
				th.Call(pr.descend)
				th.At(64)
				th.Call(pr.descend)
				th.At(68)
				d := hypreCAlloc(th, in, pr, "", 128, false, false)
				th.At(70)
				th.Free(d)
				th.Ret()
				th.Ret()
			}
			// Coarsening pass: stream the strength matrix once, then the
			// (compute-dominated) Galerkin product.
			th.At(140)
			for r := 0; r < rows; r++ {
				th.Load(sDiagI+mem.Addr((r%cfg.Rows)*8), 8)
			}
			th.At(144)
			for i := 0; i < rows*cfg.NnzPerRow; i++ {
				th.Load(sDiagJ+mem.Addr((i%nnz)*8), 8)
			}
			th.Work(cfg.SetupWork)
			th.Ret() // setupHelper
			world.Allreduce(th, 64)
			rows /= 4
			if rows < 64 {
				rows = 64
			}
		}
		th.Ret() // setup
		world.Barrier(th)
		perRank[p.Rank].setup = th.Clock() - start

		// ---------------- Phase 3: solve ----------------
		start = th.Clock()
		th.At(18)
		th.Call(pr.solve)
		// Per-thread scratch vectors, allocated and first-touched by each
		// worker (thread-local data: local under first touch and libnuma,
		// but interleaved - and so mostly remote - under numactl).
		const scratchElems = 512
		scratch := make([]mem.Addr, cfg.Threads)
		th.At(252)
		world.Procs[p.Rank].Parallel(th, pr.initVecOL, cfg.Threads, func(t *sim.Thread, tid int) {
			t.At(154)
			a := t.Malloc(scratchElems * 8)
			t.Memset(a, scratchElems*8)
			scratch[tid] = a
		})
		for cyc := 0; cyc < cfg.VCycles; cyc++ {
			rows := cfg.Rows
			for lvl := 0; lvl < cfg.Levels; lvl++ {
				// Relaxation sweep: the dominant S_diag_j access (the
				// paper's 19.3% statement at line 622) plus A arrays.
				th.At(260)
				world.Procs[p.Rank].ParallelFor(th, pr.relaxOL, cfg.Threads, rows,
					func(t *sim.Thread, lo, hi int) {
						t.At(620)
						for i := 0; i < scratchElems; i += 8 {
							t.Load(scratch[t.ID]+mem.Addr(i*8), 8)
						}
						for r := lo; r < hi; r++ {
							t.At(621)
							t.Load(aDiagI+mem.Addr((r%cfg.Rows)*8), 8)
							for k := 0; k < cfg.NnzPerRow; k++ {
								idx := (r*cfg.NnzPerRow + k) % nnz
								t.At(622)
								t.Load(sDiagJ+mem.Addr(idx*8), 8)
								t.At(623)
								t.Load(aDiagJ+mem.Addr(idx*8), 8)
								t.Load(aDiagD+mem.Addr(idx*8), 8)
								// 27-pt Laplacian columns cluster near the
								// row, so the u gather has good locality.
								col := (r + k*17) % cfg.Rows
								t.At(624)
								t.Load(u+mem.Addr(col*8), 8)
								t.Work(4)
							}
							t.At(626)
							t.Load(f+mem.Addr((r%cfg.Rows)*8), 8)
							t.Store(u+mem.Addr((r%cfg.Rows)*8), 8)
						}
					})
				// Interpolation pass: the secondary S_diag_j access (2.9%).
				th.At(264)
				world.Procs[p.Rank].ParallelFor(th, pr.matvecOL, cfg.Threads, rows/4,
					func(t *sim.Thread, lo, hi int) {
						for r := lo; r < hi; r++ {
							t.At(434)
							t.Load(sDiagJ+mem.Addr(((r*11)%nnz)*8), 8)
							t.At(435)
							t.Load(u+mem.Addr((r%cfg.Rows)*8), 8)
							t.Work(3)
						}
					})
				rows /= 4
				if rows < 64 {
					rows = 64
				}
			}
			world.Allreduce(th, 8) // residual norm
		}
		th.Ret() // solve
		world.Barrier(th)
		perRank[p.Rank].solve = th.Clock() - start

		th.Ret() // main
	})

	var res bench.Result
	res.App = "amg2006"
	res.Variant = cfg.Variant.String()
	var maxInit, maxSetup, maxSolve uint64
	for _, pc := range perRank {
		if pc.init > maxInit {
			maxInit = pc.init
		}
		if pc.setup > maxSetup {
			maxSetup = pc.setup
		}
		if pc.solve > maxSolve {
			maxSolve = pc.solve
		}
	}
	res.Phases = []bench.Phase{
		{Name: "initialization", Cycles: maxInit},
		{Name: "setup", Cycles: maxSetup},
		{Name: "solver", Cycles: maxSolve},
	}
	res.Cycles = maxInit + maxSetup + maxSolve
	for r, p := range world.Procs {
		for _, t := range p.Threads() {
			res.OverheadCycles += t.Overhead()
		}
		if profs[r] != nil {
			res.Profiles = append(res.Profiles, profs[r].Profiles()...)
		}
	}
	return &res
}
