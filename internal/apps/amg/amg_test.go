package amg

import (
	"testing"

	"dcprof/internal/cct"
	"dcprof/internal/metric"
	"dcprof/internal/pmu"
	"dcprof/internal/profiler"
	"dcprof/internal/view"
)

func TestTable2PhaseShape(t *testing.T) {
	cfg := TestConfig()
	orig := Run(cfg)
	cfg.Variant = NumactlInterleave
	numactl := Run(cfg)
	cfg.Variant = LibnumaSelective
	libnuma := Run(cfg)

	oInit, oSolve := orig.Phase("initialization"), orig.Phase("solver")
	nInit, nSolve := numactl.Phase("initialization"), numactl.Phase("solver")
	lInit, lSolve := libnuma.Phase("initialization"), libnuma.Phase("solver")

	t.Logf("init:  orig=%d numactl=%d libnuma=%d (paper 26/52/28 s)", oInit, nInit, lInit)
	t.Logf("solve: orig=%d numactl=%d libnuma=%d (paper 105/87/80 s)", oSolve, nSolve, lSolve)

	// Shape assertions from Table 2:
	// numactl hurts initialization (paper: 2x), libnuma barely does.
	if nInit <= oInit {
		t.Error("numactl interleave should slow initialization")
	}
	if float64(lInit) > 1.4*float64(oInit) {
		t.Error("libnuma initialization should stay near the original's")
	}
	// Both placements speed the solver; libnuma at least as much.
	if nSolve >= oSolve {
		t.Error("numactl interleave should speed the solver")
	}
	if lSolve >= oSolve {
		t.Error("libnuma should speed the solver")
	}
	if lSolve > nSolve+nSolve/10 {
		t.Error("libnuma solver should be at least comparable to numactl's")
	}
}

func TestFig4RemoteAttributionToSDiagJ(t *testing.T) {
	cfg := TestConfig()
	pc := profiler.MarkedConfig(pmu.MarkDataFromRMEM, 4)
	cfg.Profile = &pc
	res := Run(cfg)
	if len(res.Profiles) == 0 {
		t.Fatal("no profiles")
	}
	db := res.Merged(4)
	if db.Ranks != cfg.NodesCount {
		t.Errorf("merged %d ranks, want %d", db.Ranks, cfg.NodesCount)
	}

	shares := view.ClassShares(db.Merged, metric.FromRMEM)
	t.Logf("heap share of remote accesses: %.1f%% (paper 94.9%%)", 100*shares[cct.ClassHeap])
	if shares[cct.ClassHeap] < 0.8 {
		t.Errorf("heap share = %.3f, want > 0.8", shares[cct.ClassHeap])
	}

	vars := view.RankVariables(db.Merged, metric.FromRMEM)
	if len(vars) == 0 {
		t.Fatal("no variables")
	}
	shareOf := map[string]float64{}
	for _, v := range vars {
		shareOf[v.Name] = v.Share
	}
	t.Logf("S_diag_j=%.1f%% (paper 22.2%%); top=%s %.1f%%",
		100*shareOf["S_diag_j"], vars[0].Name, 100*vars[0].Share)
	if shareOf["S_diag_j"] < 0.10 {
		t.Errorf("S_diag_j share = %.3f, want a leading chunk", shareOf["S_diag_j"])
	}

	// Figure 4's two accesses: relax line 622 dominates matvec line 434.
	var sdj *view.VarStat
	for i := range vars {
		if vars[i].Name == "S_diag_j" {
			sdj = &vars[i]
		}
	}
	if sdj == nil {
		t.Fatal("S_diag_j missing")
	}
	accs := view.TopAccesses(sdj.Node, metric.FromRMEM, view.MetricTotal(db.Merged, metric.FromRMEM))
	if len(accs) < 2 {
		t.Fatalf("S_diag_j has %d access sites, want >= 2", len(accs))
	}
	if accs[0].Line != 622 {
		t.Errorf("dominant access line = %d, want 622 (relax)", accs[0].Line)
	}
	found434 := false
	for _, a := range accs {
		if a.Line == 434 {
			found434 = true
		}
	}
	if !found434 {
		t.Error("secondary access (line 434) missing")
	}
}

func TestFig5BottomUpCallers(t *testing.T) {
	cfg := TestConfig()
	pc := profiler.MarkedConfig(pmu.MarkDataFromRMEM, 4)
	cfg.Profile = &pc
	res := Run(cfg)
	db := res.Merged(4)

	sites := view.BottomUpCallers(db.Merged, metric.FromRMEM)
	if len(sites) < 4 {
		t.Fatalf("bottom-up sites = %d, want several distinct hypre_CAlloc call sites", len(sites))
	}
	for _, s := range sites[:3] {
		if s.Wrapper != "hypre_CAlloc" {
			t.Errorf("top site wrapper = %q, want hypre_CAlloc", s.Wrapper)
		}
		if s.Caller != "BuildIJLaplacian27pt" {
			t.Errorf("top site caller = %q, want BuildIJLaplacian27pt", s.Caller)
		}
	}
	// Distinct call lines (205..216) must stay distinct rows.
	lines := map[int]bool{}
	for _, s := range sites {
		lines[s.Line] = true
	}
	if len(lines) < 4 {
		t.Errorf("bottom-up collapsed call sites: lines %v", lines)
	}
}

func TestAllocationTrackingOverheadAblation(t *testing.T) {
	run := func(mutate func(*profiler.Config)) *benchResult {
		cfg := TestConfig()
		cfg.VCycles = 1 // emphasize the allocation-heavy setup phase
		cfg.SmallAllocs = 400
		pc := profiler.DefaultConfig()
		pc.Period = 1 << 30 // sampling off: isolate tracking cost
		mutate(&pc)
		cfg.Profile = &pc
		r := Run(cfg)
		return &benchResult{cycles: r.Cycles, overhead: r.OverheadCycles}
	}
	baselineCfg := TestConfig()
	baselineCfg.VCycles = 1
	baselineCfg.SmallAllocs = 400
	base := Run(baselineCfg)

	naive := run(func(c *profiler.Config) {
		c.SizeThreshold = 0
		c.UseTrampoline = false
		c.CheapContext = false
	})
	optimized := run(func(c *profiler.Config) {}) // defaults: threshold+trampoline

	naiveOH := float64(naive.cycles-base.Cycles) / float64(base.Cycles)
	optOH := float64(optimized.cycles-base.Cycles) / float64(base.Cycles)
	t.Logf("tracking overhead: naive=%.1f%% optimized=%.1f%% (paper: 150%% -> <10%%)",
		100*naiveOH, 100*optOH)
	if naive.overhead <= optimized.overhead {
		t.Error("naive tracking not costlier than optimized")
	}
	if optOH >= naiveOH {
		t.Error("optimizations did not reduce end-to-end overhead")
	}
}

type benchResult struct {
	cycles   uint64
	overhead uint64
}
