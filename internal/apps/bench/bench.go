// Package bench defines the common result type the benchmark
// reimplementations return, bridging app runs to the experiment harness.
package bench

import (
	"fmt"

	"dcprof/internal/analysis"
	"dcprof/internal/cct"
	"dcprof/internal/profio"
)

// Phase is one named program phase and its simulated duration.
type Phase struct {
	// Name is the phase label ("initialization", "setup", "solver", ...).
	Name string
	// Cycles is the phase's elapsed simulated time on the critical path.
	Cycles uint64
}

// Result is the outcome of one benchmark run.
type Result struct {
	// App and Variant identify the run.
	App, Variant string
	// Cycles is the whole program's elapsed simulated time (the slowest
	// rank's master clock).
	Cycles uint64
	// Phases optionally breaks the run into phases.
	Phases []Phase
	// Profiles holds the per-thread profiles when measurement was on.
	Profiles []*cct.Profile
	// OverheadCycles sums profiler-charged cycles across all threads.
	OverheadCycles uint64
}

// Phase returns the named phase's duration (0 if absent).
func (r *Result) Phase(name string) uint64 {
	for _, p := range r.Phases {
		if p.Name == name {
			return p.Cycles
		}
	}
	return 0
}

// Merged runs the post-mortem analyzer over the run's profiles. It merges
// preservingly: Results are memoized and shared across experiments (fig4
// and fig5 both analyze the same AMG run), so the profiles must survive
// being merged more than once without double-counting.
func (r *Result) Merged(workers int) *analysis.Database {
	return analysis.MergePreserving(r.Profiles, workers)
}

// MeasurementBytes returns the encoded size of all profiles — the space
// overhead Table 1 reports.
func (r *Result) MeasurementBytes() (int64, error) {
	var total int64
	for _, p := range r.Profiles {
		n, err := profio.EncodedSize(p)
		if err != nil {
			return 0, err
		}
		total += n
	}
	return total, nil
}

// String summarizes the run.
func (r *Result) String() string {
	return fmt.Sprintf("%s/%s: %d cycles, %d profiles, %d overhead cycles",
		r.App, r.Variant, r.Cycles, len(r.Profiles), r.OverheadCycles)
}
