package bench

import (
	"strings"
	"testing"

	"dcprof/internal/cct"
	"dcprof/internal/metric"
)

func TestPhaseLookup(t *testing.T) {
	r := &Result{
		App: "x", Variant: "orig", Cycles: 100,
		Phases: []Phase{{Name: "init", Cycles: 30}, {Name: "solve", Cycles: 70}},
	}
	if r.Phase("init") != 30 || r.Phase("solve") != 70 {
		t.Error("phase lookup wrong")
	}
	if r.Phase("missing") != 0 {
		t.Error("missing phase should be 0")
	}
}

func TestMergedAndBytes(t *testing.T) {
	p1 := cct.NewProfile(0, 0, "e")
	p2 := cct.NewProfile(0, 1, "e")
	var v metric.Vector
	v[metric.Samples] = 3
	path := []cct.Frame{{Kind: cct.KindCall, Module: "m", Name: "f", File: "f.c"}}
	p1.Trees[cct.ClassHeap].AddSample(path, &v)
	p2.Trees[cct.ClassHeap].AddSample(path, &v)

	r := &Result{App: "x", Variant: "o", Profiles: []*cct.Profile{p1, p2}}
	db := r.Merged(0)
	if got := db.Merged.Total()[metric.Samples]; got != 6 {
		t.Errorf("merged samples = %d", got)
	}
	n, err := r.MeasurementBytes()
	if err != nil || n <= 0 {
		t.Errorf("bytes = %d, %v", n, err)
	}
	if s := r.String(); !strings.Contains(s, "x/o") {
		t.Errorf("String = %q", s)
	}
}

// Results are memoized and shared across experiments, so merging the same
// Result twice (as fig4 and fig5 do with one AMG run) must not
// double-count metrics — the bug the consuming analysis.Merge would cause
// here if Merged did not merge preservingly.
func TestMergedTwiceNoDoubleCount(t *testing.T) {
	p1 := cct.NewProfile(0, 0, "e")
	p2 := cct.NewProfile(0, 1, "e")
	var v metric.Vector
	v[metric.Samples] = 3
	path := []cct.Frame{{Kind: cct.KindCall, Module: "m", Name: "f", File: "f.c"}}
	p1.Trees[cct.ClassHeap].AddSample(path, &v)
	p2.Trees[cct.ClassHeap].AddSample(path, &v)

	r := &Result{App: "x", Variant: "o", Profiles: []*cct.Profile{p1, p2}}
	for round := 1; round <= 3; round++ {
		db := r.Merged(0)
		if got := db.Merged.Total()[metric.Samples]; got != 6 {
			t.Fatalf("merge round %d: samples = %d, want 6 (inputs were consumed)", round, got)
		}
	}
	if p1.Total()[metric.Samples] != 3 || p2.Total()[metric.Samples] != 3 {
		t.Error("Merged mutated the Result's profiles")
	}
}
