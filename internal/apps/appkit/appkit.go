// Package appkit holds helpers shared by the benchmark reimplementations:
// multi-dimensional array descriptors with explicit memory layouts (so the
// paper's transpose optimizations are one-line layout changes), and a
// nil-safe instrumentation handle for labelling allocations when a profiler
// is attached.
package appkit

import (
	"fmt"

	"dcprof/internal/cache"
	"dcprof/internal/mem"
	"dcprof/internal/profiler"
	"dcprof/internal/sim"
)

// ScaledCacheConfig returns the memory-hierarchy parameters the benchmark
// reimplementations use by default. Problem sizes are scaled down from the
// paper's (so runs simulate in seconds), and capacity-dependent behaviour —
// which data stays resident where — only matches the full-size runs if the
// cache capacities scale down with them. L1/L2 keep realistic sizes (inner
// loops have real footprints); the L3 shrinks to 1 MiB per socket.
func ScaledCacheConfig() cache.Config {
	c := cache.DefaultConfig()
	c.L3Sets = 256 // 256 KiB per socket (16-way, 64 B lines)
	c.L2Sets = 128 // 64 KiB per core
	return c
}

// TinyCacheConfig returns further-shrunk caches for unit tests running on
// tiny problem sizes and thread counts. The DRAM service time is scaled up
// so that a handful of threads can saturate one memory controller the way
// 48-128 threads saturate a real one.
func TinyCacheConfig() cache.Config {
	c := cache.DefaultConfig()
	c.L3Sets = 64 // 64 KiB per socket
	c.L2Sets = 64 // 32 KiB per core
	c.L1Sets = 16 // 8 KiB per core
	c.DRAMService = 64
	return c
}

// Array is an N-dimensional array over a simulated memory block.
//
// Dims are the logical extents, indexed logically everywhere in app code.
// Order is the layout permutation: Order[0] is the logical dimension that
// varies slowest in memory and Order[len-1] the one that varies fastest
// (stride = element size). A C row-major array of logical dims (i, j, k)
// has Order {0, 1, 2}; Fortran column-major has Order {2, 1, 0}; the
// paper's Sweep3D fix — "insert the last dimension between the first and
// second" — is just a different permutation.
type Array struct {
	// Base is the first element's address.
	Base mem.Addr
	// Elem is the element size in bytes.
	Elem uint64
	// Dims are the logical extents.
	Dims []int
	// Order is the layout permutation (slowest first).
	Order []int

	// strides[d] is the byte stride of logical dimension d.
	strides []uint64
}

// NewArray describes an array at base with C row-major layout.
func NewArray(base mem.Addr, elem uint64, dims ...int) *Array {
	order := make([]int, len(dims))
	for i := range order {
		order[i] = i
	}
	return NewArrayOrder(base, elem, dims, order)
}

// NewArrayOrder describes an array with an explicit layout permutation.
func NewArrayOrder(base mem.Addr, elem uint64, dims, order []int) *Array {
	if len(dims) == 0 || len(order) != len(dims) {
		panic("appkit: dims/order mismatch")
	}
	seen := make([]bool, len(dims))
	for _, d := range order {
		if d < 0 || d >= len(dims) || seen[d] {
			panic(fmt.Sprintf("appkit: order %v is not a permutation of %d dims", order, len(dims)))
		}
		seen[d] = true
	}
	a := &Array{Base: base, Elem: elem, Dims: append([]int{}, dims...), Order: append([]int{}, order...)}
	a.strides = make([]uint64, len(dims))
	stride := elem
	for i := len(order) - 1; i >= 0; i-- {
		d := order[i]
		a.strides[d] = stride
		stride *= uint64(dims[d])
	}
	return a
}

// ColMajor describes a Fortran column-major array (first index fastest).
func ColMajor(base mem.Addr, elem uint64, dims ...int) *Array {
	order := make([]int, len(dims))
	for i := range order {
		order[i] = len(dims) - 1 - i
	}
	return NewArrayOrder(base, elem, dims, order)
}

// Size returns the array's total bytes.
func (a *Array) Size() uint64 {
	n := a.Elem
	for _, d := range a.Dims {
		n *= uint64(d)
	}
	return n
}

// Addr returns the address of the element at the logical index.
func (a *Array) Addr(idx ...int) mem.Addr {
	if len(idx) != len(a.Dims) {
		panic(fmt.Sprintf("appkit: %d indices for %d dims", len(idx), len(a.Dims)))
	}
	off := uint64(0)
	for d, i := range idx {
		if i < 0 || i >= a.Dims[d] {
			panic(fmt.Sprintf("appkit: index %d out of range [0,%d) in dim %d", i, a.Dims[d], d))
		}
		off += uint64(i) * a.strides[d]
	}
	return a.Base + mem.Addr(off)
}

// Stride returns the byte stride of a logical dimension.
func (a *Array) Stride(dim int) uint64 { return a.strides[dim] }

// Load reads the element at the logical index on thread t.
func (a *Array) Load(t *sim.Thread, idx ...int) { t.Load(a.Addr(idx...), a.Elem) }

// Store writes the element at the logical index on thread t.
func (a *Array) Store(t *sim.Thread, idx ...int) { t.Store(a.Addr(idx...), a.Elem) }

// Instr is a nil-safe handle to the attached profiler; apps use it to label
// allocations with source-level variable names when measurement is on.
type Instr struct {
	// P is the attached profiler, nil when running unprofiled.
	P *profiler.Profiler
}

// Label names the thread's next allocation if a profiler is attached.
func (in Instr) Label(t *sim.Thread, name string) {
	if in.P != nil {
		in.P.Label(t, name)
	}
}
