package appkit

import (
	"testing"
	"testing/quick"

	"dcprof/internal/mem"
)

func TestRowMajorLayout(t *testing.T) {
	a := NewArray(0x1000, 8, 4, 3, 2) // C order: dim2 fastest
	if a.Size() != 4*3*2*8 {
		t.Errorf("Size = %d", a.Size())
	}
	if got := a.Addr(0, 0, 0); got != 0x1000 {
		t.Errorf("origin = %#x", got)
	}
	if got := a.Addr(0, 0, 1) - a.Addr(0, 0, 0); got != 8 {
		t.Errorf("dim2 stride = %d, want 8", got)
	}
	if got := a.Addr(0, 1, 0) - a.Addr(0, 0, 0); got != 16 {
		t.Errorf("dim1 stride = %d, want 16", got)
	}
	if got := a.Addr(1, 0, 0) - a.Addr(0, 0, 0); got != 48 {
		t.Errorf("dim0 stride = %d, want 48", got)
	}
}

func TestColMajorLayout(t *testing.T) {
	a := ColMajor(0x1000, 8, 4, 3, 2) // Fortran: dim0 fastest
	if got := a.Addr(1, 0, 0) - a.Addr(0, 0, 0); got != 8 {
		t.Errorf("dim0 stride = %d, want 8", got)
	}
	if got := a.Addr(0, 1, 0) - a.Addr(0, 0, 0); got != 32 {
		t.Errorf("dim1 stride = %d, want 4*8", got)
	}
	if got := a.Addr(0, 0, 1) - a.Addr(0, 0, 0); got != 96 {
		t.Errorf("dim2 stride = %d, want 12*8", got)
	}
	if a.Stride(0) != 8 {
		t.Errorf("Stride(0) = %d", a.Stride(0))
	}
}

func TestCustomOrder(t *testing.T) {
	// The paper's Sweep3D fix: insert the last dimension between the first
	// and second — order (0, 2, 1).
	a := NewArrayOrder(0, 4, []int{5, 6, 7}, []int{0, 2, 1})
	// Fastest-varying is logical dim 1.
	if got := a.Addr(0, 1, 0) - a.Addr(0, 0, 0); got != 4 {
		t.Errorf("dim1 stride = %d, want 4", got)
	}
	if got := a.Addr(0, 0, 1) - a.Addr(0, 0, 0); got != 4*6 {
		t.Errorf("dim2 stride = %d, want 24", got)
	}
}

func TestBadOrderPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"dup":      func() { NewArrayOrder(0, 8, []int{2, 2}, []int{0, 0}) },
		"range":    func() { NewArrayOrder(0, 8, []int{2, 2}, []int{0, 5}) },
		"len":      func() { NewArrayOrder(0, 8, []int{2, 2}, []int{0}) },
		"empty":    func() { NewArrayOrder(0, 8, nil, nil) },
		"idxcount": func() { NewArray(0, 8, 2, 2).Addr(1) },
		"idxrange": func() { NewArray(0, 8, 2, 2).Addr(1, 5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

// Property: for any layout permutation, distinct logical indices map to
// distinct, in-bounds addresses (the layout is a bijection).
func TestQuickLayoutBijection(t *testing.T) {
	f := func(permSeed uint8, d0, d1, d2 uint8) bool {
		dims := []int{int(d0%4) + 1, int(d1%4) + 1, int(d2%4) + 1}
		perms := [][]int{{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}}
		order := perms[int(permSeed)%len(perms)]
		a := NewArrayOrder(0x4000, 8, dims, order)
		seen := map[mem.Addr]bool{}
		for i := 0; i < dims[0]; i++ {
			for j := 0; j < dims[1]; j++ {
				for k := 0; k < dims[2]; k++ {
					addr := a.Addr(i, j, k)
					if addr < 0x4000 || addr >= 0x4000+mem.Addr(a.Size()) {
						return false
					}
					if seen[addr] {
						return false
					}
					seen[addr] = true
				}
			}
		}
		return len(seen) == dims[0]*dims[1]*dims[2]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestCacheConfigsValid(t *testing.T) {
	if err := ScaledCacheConfig().Validate(); err != nil {
		t.Error(err)
	}
	if err := TinyCacheConfig().Validate(); err != nil {
		t.Error(err)
	}
}

func TestInstrNilSafe(t *testing.T) {
	var in Instr
	in.Label(nil, "x") // must not panic with a nil profiler
}
