// Package micro implements the paper's two motivating micro-examples:
//
//   - Figure 1: a kernel `A[i] = B[i] + C[idx[i]]` where code-centric
//     profiling can only say "line 4 is slow", while data-centric profiling
//     decomposes line 4's latency per variable and exposes the indirectly
//     accessed C as the real problem (the paper's inset: A 10%, B 5%,
//     C 85%).
//
//   - Figure 2: a loop executing `var[i] = malloc(size)` 100 times. A
//     trace-based tool records 100 allocations (millions at scale); the
//     CCT's allocation-path identity coalesces them into one logical
//     variable.
package micro

import (
	"dcprof/internal/apps/appkit"
	"dcprof/internal/apps/bench"
	"dcprof/internal/cache"
	"dcprof/internal/cct"
	"dcprof/internal/machine"
	"dcprof/internal/mem"
	"dcprof/internal/metric"
	"dcprof/internal/profiler"
	"dcprof/internal/sim"
	"dcprof/internal/view"
)

// Fig1Result is the per-variable decomposition of the kernel line's latency.
type Fig1Result struct {
	// LineLatency is the total latency attributed to the kernel line
	// (everything a code-centric profiler can report).
	LineLatency uint64
	// ShareA, ShareB, ShareC decompose it per variable.
	ShareA, ShareB, ShareC float64
	// Run metadata.
	Result *bench.Result
}

// Fig1Config sizes the Figure 1 kernel.
type Fig1Config struct {
	// Elems is the array length.
	Elems int
	// Iters repeats the kernel.
	Iters int
	// Period is the IBS sampling period.
	Period uint64
}

// DefaultFig1Config returns the standard size.
func DefaultFig1Config() Fig1Config {
	return Fig1Config{Elems: 1 << 16, Iters: 4, Period: 16}
}

// RunFig1 executes the kernel under IBS and decomposes the kernel line's
// latency by variable.
func RunFig1(cfg Fig1Config) *Fig1Result {
	ccfg := appkit.TinyCacheConfig()
	ccfg.DRAMService = cache.DefaultConfig().DRAMService
	node := sim.NewNode(machine.Tiny(), ccfg)
	proc := sim.NewProcess(node, 0, 0, 1, nil)
	pc := profiler.DefaultConfig()
	pc.Period = cfg.Period
	prof := profiler.Attach(proc, pc)

	exe := proc.LoadMap.Load("fig1")
	fMain := exe.AddFunc("main", "fig1.c", 1)

	th := proc.Start()
	th.Call(fMain)

	n := cfg.Elems
	th.At(2)
	prof.Label(th, "A")
	a := th.Malloc(uint64(n) * 8)
	prof.Label(th, "B")
	b := th.Malloc(uint64(n) * 8)
	prof.Label(th, "C")
	c := th.Malloc(uint64(n) * 8)

	// idx is an indirection table with a cache-hostile permutation.
	idx := func(i int) int { return (i * 40503) % n }

	for it := 0; it < cfg.Iters; it++ {
		th.At(4) // the kernel line: A[i] = B[i] + C[idx[i]]
		for i := 0; i < n; i++ {
			th.Load(b+mem.Addr(i*8), 8)
			th.Load(c+mem.Addr(idx(i)*8), 8)
			th.Store(a+mem.Addr(i*8), 8)
			th.Work(2)
		}
	}
	th.Ret()
	proc.Finish()

	res := &bench.Result{App: "fig1", Variant: "kernel", Cycles: th.Clock(), Profiles: prof.Profiles()}
	db := res.Merged(1)

	out := &Fig1Result{Result: res}
	var perVar [3]uint64
	names := []string{"A", "B", "C"}
	for _, v := range view.RankVariables(db.Merged, metric.Latency) {
		accs := view.TopAccesses(v.Node, metric.Latency, 1)
		var onLine uint64
		for _, acc := range accs {
			if acc.Line == 4 {
				onLine += acc.Value
			}
		}
		for k, name := range names {
			if v.Name == name {
				perVar[k] = onLine
			}
		}
	}
	total := perVar[0] + perVar[1] + perVar[2]
	out.LineLatency = total
	if total > 0 {
		out.ShareA = float64(perVar[0]) / float64(total)
		out.ShareB = float64(perVar[1]) / float64(total)
		out.ShareC = float64(perVar[2]) / float64(total)
	}
	return out
}

// Fig2Result reports the allocation-coalescing behaviour.
type Fig2Result struct {
	// Allocations is how many heap blocks the loop allocated.
	Allocations int
	// TrackedAllocations is how many the profiler tracked.
	TrackedAllocations uint64
	// VariablesInProfile is how many logical variables the merged profile
	// contains — 1, because all allocations share one call path.
	VariablesInProfile int
	// SamplesOnVariable counts the samples attributed to it.
	SamplesOnVariable uint64
	// Result carries the run.
	Result *bench.Result
}

// RunFig2 allocates `count` blocks in a loop (all from one call path),
// touches them from several threads, and reports how the profile
// represents them.
func RunFig2(count int, blockBytes uint64) *Fig2Result {
	node := sim.NewNode(machine.Tiny(), appkit.TinyCacheConfig())
	proc := sim.NewProcess(node, 0, 0, 4, nil)
	pc := profiler.DefaultConfig()
	pc.Period = 8
	prof := profiler.Attach(proc, pc)

	exe := proc.LoadMap.Load("fig2")
	fMain := exe.AddFunc("main", "fig2.c", 1)
	fOL := exe.AddFunc("touch.omp_fn.0", "fig2.c", 10)

	th := proc.Start()
	th.Call(fMain)

	blocks := make([]mem.Addr, count)
	th.At(3) // for (i = 0; i < 100; i++) var[i] = malloc(size);
	for i := range blocks {
		blocks[i] = th.Malloc(blockBytes)
	}

	// Touch all blocks from an OpenMP region (as the paper's scaled
	// scenario: the loop runs in every thread of every process).
	proc.ParallelFor(th, fOL, 4, count, func(t *sim.Thread, lo, hi int) {
		t.At(12)
		for i := lo; i < hi; i++ {
			for off := uint64(0); off < blockBytes; off += 64 {
				t.Load(blocks[i]+mem.Addr(off), 8)
			}
		}
	})
	th.Ret()
	proc.Finish()

	res := &bench.Result{App: "fig2", Variant: "alloc-loop", Cycles: th.Clock(), Profiles: prof.Profiles()}
	db := res.Merged(1)

	out := &Fig2Result{Allocations: count, Result: res}
	tracked, _, _ := prof.Stats()
	out.TrackedAllocations = tracked
	db.Merged.Trees[cct.ClassHeap].Walk(func(n *cct.Node, _ int) bool {
		if n.Frame.Kind == cct.KindHeapData {
			out.VariablesInProfile++
			inc := n.Inclusive()
			out.SamplesOnVariable += inc[metric.Samples]
			return false
		}
		return true
	})
	return out
}
