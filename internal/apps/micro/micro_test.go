package micro

import "testing"

func TestFig1Decomposition(t *testing.T) {
	cfg := DefaultFig1Config()
	cfg.Elems = 1 << 14
	cfg.Iters = 2
	r := RunFig1(cfg)
	if r.LineLatency == 0 {
		t.Fatal("no latency attributed to the kernel line")
	}
	t.Logf("A=%.1f%% B=%.1f%% C=%.1f%% (paper inset: 10/5/85)",
		100*r.ShareA, 100*r.ShareB, 100*r.ShareC)
	// The indirectly accessed C dominates; the streamed A and B are minor.
	if r.ShareC < 0.5 {
		t.Errorf("C share = %.3f, want the dominant share", r.ShareC)
	}
	if r.ShareA >= r.ShareC || r.ShareB >= r.ShareC {
		t.Error("A or B outweighed C")
	}
	sum := r.ShareA + r.ShareB + r.ShareC
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("shares sum to %.3f", sum)
	}
}

func TestFig2Coalescing(t *testing.T) {
	r := RunFig2(100, 8192)
	if r.Allocations != 100 || r.TrackedAllocations != 100 {
		t.Fatalf("allocated %d, tracked %d; want 100/100", r.Allocations, r.TrackedAllocations)
	}
	if r.VariablesInProfile != 1 {
		t.Errorf("profile contains %d variables for 100 same-path allocations, want 1", r.VariablesInProfile)
	}
	if r.SamplesOnVariable == 0 {
		t.Error("no samples on the coalesced variable")
	}
}

func TestFig2DistinctPathsStayDistinct(t *testing.T) {
	// Sanity inverse: two different block sizes through the same loop are
	// still one variable (same path); the coalescing key is the path, not
	// the block identity.
	r := RunFig2(7, 4096)
	if r.VariablesInProfile != 1 {
		t.Errorf("variables = %d, want 1", r.VariablesInProfile)
	}
}
