// Package heapmap provides an interval map from non-overlapping half-open
// address ranges to values, optimized for the profiler's read/write
// asymmetry: every memory sample performs one lookup, while mutation only
// happens on malloc/free — orders of magnitude rarer.
//
// Readers never block and never see a lock: Lookup binary-searches an
// immutable snapshot published through an atomic pointer. Writers copy the
// sorted entry slice under a mutex and republish it (copy-on-write), so a
// mutation costs O(n) in live ranges — the same bound the previous
// RWMutex-guarded ivmap paid — but samplers on other threads are never
// serialized against it, and snapshot identity gives per-thread caches a
// free invalidation rule: any mutation republishes, so a cache that still
// holds the current snapshot pointer is provably current (no stale hit
// after a free or an address-reusing realloc).
package heapmap

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// entry is one [lo, hi) range and its value.
type entry[V any] struct {
	lo, hi uint64
	v      V
}

// snapshot is one immutable published state: entries sorted by lo,
// pairwise disjoint.
type snapshot[V any] struct {
	entries []entry[V]
}

// lookup returns the entry containing addr.
func (s *snapshot[V]) lookup(addr uint64) (entry[V], bool) {
	es := s.entries
	i := sort.Search(len(es), func(i int) bool { return es[i].lo > addr }) - 1
	if i >= 0 && addr < es[i].hi {
		return es[i], true
	}
	return entry[V]{}, false
}

// Map maps non-overlapping half-open intervals to values. The zero value
// is an empty map ready for use. Reads are lock-free; mutations serialize
// on an internal mutex.
type Map[V any] struct {
	mu       sync.Mutex
	snap     atomic.Pointer[snapshot[V]]
	rebuilds atomic.Uint64
}

// Insert adds [lo, hi) -> v, rebuilding and republishing the snapshot. It
// returns an error if the interval is empty or overlaps an existing one.
func (m *Map[V]) Insert(lo, hi uint64, v V) error {
	if lo >= hi {
		return fmt.Errorf("heapmap: empty interval [%#x, %#x)", lo, hi)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	var cur []entry[V]
	if s := m.snap.Load(); s != nil {
		cur = s.entries
	}
	i := sort.Search(len(cur), func(i int) bool { return cur[i].lo > lo })
	if i > 0 && cur[i-1].hi > lo {
		p := cur[i-1]
		return fmt.Errorf("heapmap: [%#x, %#x) overlaps existing [%#x, %#x)", lo, hi, p.lo, p.hi)
	}
	if i < len(cur) && cur[i].lo < hi {
		nx := cur[i]
		return fmt.Errorf("heapmap: [%#x, %#x) overlaps existing [%#x, %#x)", lo, hi, nx.lo, nx.hi)
	}
	next := make([]entry[V], 0, len(cur)+1)
	next = append(next, cur[:i]...)
	next = append(next, entry[V]{lo: lo, hi: hi, v: v})
	next = append(next, cur[i:]...)
	m.snap.Store(&snapshot[V]{entries: next})
	m.rebuilds.Add(1)
	return nil
}

// RemoveAt removes the interval whose lower bound is exactly lo, returning
// its value. It reports false (and republishes nothing) if no interval
// starts at lo.
func (m *Map[V]) RemoveAt(lo uint64) (V, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var zero V
	s := m.snap.Load()
	if s == nil {
		return zero, false
	}
	cur := s.entries
	i := sort.Search(len(cur), func(i int) bool { return cur[i].lo > lo }) - 1
	if i < 0 || cur[i].lo != lo {
		return zero, false
	}
	v := cur[i].v
	next := make([]entry[V], 0, len(cur)-1)
	next = append(next, cur[:i]...)
	next = append(next, cur[i+1:]...)
	m.snap.Store(&snapshot[V]{entries: next})
	m.rebuilds.Add(1)
	return v, true
}

// Lookup returns the value of the interval containing addr. Lock-free.
func (m *Map[V]) Lookup(addr uint64) (V, bool) {
	s := m.snap.Load()
	if s == nil {
		var zero V
		return zero, false
	}
	e, ok := s.lookup(addr)
	return e.v, ok
}

// Cache is a 1-entry per-reader lookup cache exploiting sample locality:
// consecutive samples usually land in the same block. It is validated by
// snapshot identity, so any Insert/RemoveAt anywhere invalidates every
// cache automatically. Each reader owns its Cache; it must not be shared.
type Cache[V any] struct {
	snap   *snapshot[V]
	lo, hi uint64
	v      V
}

// LookupCached is Lookup through the reader's cache. The third result
// reports whether the hit came from the cache (for telemetry).
func (m *Map[V]) LookupCached(addr uint64, c *Cache[V]) (V, bool, bool) {
	s := m.snap.Load()
	if s == nil {
		var zero V
		return zero, false, false
	}
	if c.snap == s && c.lo <= addr && addr < c.hi {
		return c.v, true, true
	}
	e, ok := s.lookup(addr)
	if !ok {
		var zero V
		return zero, false, false
	}
	c.snap, c.lo, c.hi, c.v = s, e.lo, e.hi, e.v
	return e.v, true, false
}

// Len returns the number of live intervals. Lock-free.
func (m *Map[V]) Len() int {
	s := m.snap.Load()
	if s == nil {
		return 0
	}
	return len(s.entries)
}

// Rebuilds returns how many times the snapshot has been rebuilt and
// republished (one per successful mutation).
func (m *Map[V]) Rebuilds() uint64 { return m.rebuilds.Load() }

// Each calls fn on every interval in ascending order against the current
// snapshot. fn returning false stops the iteration.
func (m *Map[V]) Each(fn func(lo, hi uint64, v V) bool) {
	s := m.snap.Load()
	if s == nil {
		return
	}
	for _, e := range s.entries {
		if !fn(e.lo, e.hi, e.v) {
			return
		}
	}
}
