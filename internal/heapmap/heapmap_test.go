package heapmap

import (
	"strings"
	"sync"
	"testing"
)

func TestInsertLookupBoundaries(t *testing.T) {
	var m Map[int]
	if err := m.Insert(100, 200, 1); err != nil {
		t.Fatal(err)
	}
	if err := m.Insert(200, 300, 2); err != nil {
		t.Fatal(err) // adjacent ranges are legal: [lo, hi) half-open
	}
	if err := m.Insert(50, 60, 3); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		addr uint64
		want int
		ok   bool
	}{
		{100, 1, true}, {199, 1, true}, {200, 2, true}, {299, 2, true},
		{300, 0, false}, {99, 0, false}, {50, 3, true}, {60, 0, false}, {0, 0, false},
	}
	for _, c := range cases {
		v, ok := m.Lookup(c.addr)
		if ok != c.ok || v != c.want {
			t.Errorf("Lookup(%d) = %d,%v, want %d,%v", c.addr, v, ok, c.want, c.ok)
		}
	}
	if m.Len() != 3 {
		t.Fatalf("Len = %d, want 3", m.Len())
	}
}

func TestInsertErrors(t *testing.T) {
	var m Map[int]
	if err := m.Insert(10, 10, 0); err == nil || !strings.Contains(err.Error(), "empty") {
		t.Fatalf("empty interval: got %v", err)
	}
	if err := m.Insert(100, 200, 1); err != nil {
		t.Fatal(err)
	}
	for _, c := range [][2]uint64{{150, 160}, {90, 101}, {199, 250}, {100, 200}, {50, 300}} {
		if err := m.Insert(c[0], c[1], 9); err == nil || !strings.Contains(err.Error(), "overlaps") {
			t.Fatalf("Insert(%d,%d): want overlap error, got %v", c[0], c[1], err)
		}
	}
	// Failed mutations must not republish (caches stay valid).
	if m.Rebuilds() != 1 {
		t.Fatalf("Rebuilds = %d, want 1 (failed inserts must not rebuild)", m.Rebuilds())
	}
}

func TestRemoveAt(t *testing.T) {
	var m Map[string]
	m.Insert(10, 20, "a")
	m.Insert(30, 40, "b")
	if v, ok := m.RemoveAt(30); !ok || v != "b" {
		t.Fatalf("RemoveAt(30) = %q,%v", v, ok)
	}
	if _, ok := m.Lookup(35); ok {
		t.Fatal("removed range still found")
	}
	if _, ok := m.RemoveAt(30); ok {
		t.Fatal("double remove reported ok")
	}
	if _, ok := m.RemoveAt(15); ok {
		t.Fatal("RemoveAt mid-range must require the exact lower bound")
	}
	if m.Len() != 1 {
		t.Fatalf("Len = %d, want 1", m.Len())
	}
}

// TestLookupCached covers the per-reader cache: a repeat hit is served from
// the cache, and any mutation — including a free+realloc reusing the same
// address for a different block — invalidates it via snapshot identity.
func TestLookupCached(t *testing.T) {
	var m Map[string]
	var c Cache[string]
	m.Insert(100, 200, "old")

	v, ok, cached := m.LookupCached(150, &c)
	if !ok || cached || v != "old" {
		t.Fatalf("first lookup = %q,%v,cached=%v", v, ok, cached)
	}
	v, ok, cached = m.LookupCached(150, &c)
	if !ok || !cached || v != "old" {
		t.Fatalf("repeat lookup = %q,%v,cached=%v, want cache hit", v, ok, cached)
	}

	// Realloc address reuse: same range, new identity.
	m.RemoveAt(100)
	m.Insert(100, 200, "new")
	v, ok, cached = m.LookupCached(150, &c)
	if !ok || cached || v != "new" {
		t.Fatalf("post-realloc lookup = %q,%v,cached=%v, want fresh %q", v, ok, cached, "new")
	}

	// Plain free: the cached range is gone; the cache must not resurrect it.
	m.RemoveAt(100)
	if _, ok, _ := m.LookupCached(150, &c); ok {
		t.Fatal("cache served a freed block")
	}

	if m.Rebuilds() != 4 {
		t.Fatalf("Rebuilds = %d, want 4", m.Rebuilds())
	}
}

func TestEach(t *testing.T) {
	var m Map[int]
	m.Insert(30, 40, 3)
	m.Insert(10, 20, 1)
	m.Insert(20, 30, 2)
	var got []int
	m.Each(func(lo, hi uint64, v int) bool { got = append(got, v); return true })
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("Each order = %v, want ascending [1 2 3]", got)
	}
	got = got[:0]
	m.Each(func(lo, hi uint64, v int) bool { got = append(got, v); return v != 2 })
	if len(got) != 2 {
		t.Fatalf("Each early stop visited %d, want 2", len(got))
	}
}

// TestConcurrentReadersDuringMutation runs cached lookups from several
// goroutines while a writer continuously churns ranges (run under -race).
// Readers must only ever observe values consistent with the range they hit.
func TestConcurrentReadersDuringMutation(t *testing.T) {
	var m Map[uint64]
	const ranges = 64
	for i := uint64(0); i < ranges; i++ {
		if err := m.Insert(i*100, i*100+100, i); err != nil {
			t.Fatal(err)
		}
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var c Cache[uint64]
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				addr := uint64((i*7+g)%ranges)*100 + 50
				if v, ok, _ := m.LookupCached(addr, &c); ok && v != addr/100 {
					panic("reader observed a value from the wrong range")
				}
			}
		}(g)
	}
	// Writer: churn the odd ranges.
	for round := 0; round < 200; round++ {
		for i := uint64(1); i < ranges; i += 2 {
			if _, ok := m.RemoveAt(i * 100); !ok {
				t.Fatal("remove lost a range")
			}
			if err := m.Insert(i*100, i*100+100, i); err != nil {
				t.Fatal(err)
			}
		}
	}
	close(stop)
	wg.Wait()
	if m.Len() != ranges {
		t.Fatalf("Len = %d, want %d", m.Len(), ranges)
	}
}
