package profiler

// This file implements the extensions the paper's §7 sketches as future
// work:
//
//   - sampling small heap allocations instead of ignoring everything under
//     the size threshold, so data structures built from many small blocks
//     still get data-centric feedback;
//   - attributing samples to registered stack-allocated variables.

import (
	"dcprof/internal/cct"
	"dcprof/internal/mem"
	"dcprof/internal/sim"
)

// RegisterStackVar names a live stack range of the calling thread so that
// samples on it are attributed to a variable instead of anonymous unknown
// data (§7: "associate data-centric measurements with stack-allocated
// variables"). Registration costs one wrap charge, like an allocation.
// Stack variables are thread-local: only the owning thread's samples
// resolve them.
func (p *Profiler) RegisterStackVar(t *sim.Thread, name string, addr mem.Addr, size uint64) {
	p.charge(t, p.cfg.WrapCycles)
	ts := p.state(t)
	fn := t.Func()
	module := ""
	if fn != nil {
		module = fn.Module.Name
	}
	prefix := []cct.FrameID{cct.InternFrame(cct.Frame{Kind: cct.KindStackVar, Module: module, Name: name})}
	// Ranges may be re-registered as frames come and go; replace quietly.
	ts.stackVars.RemoveContaining(uint64(addr))
	if err := ts.stackVars.Insert(uint64(addr), uint64(addr)+size, prefix); err != nil {
		// Overlap with a different live registration: drop the new one, as
		// a real tool must when debug info is ambiguous.
		return
	}
}

// UnregisterStackVar removes a registration when the frame dies.
func (p *Profiler) UnregisterStackVar(t *sim.Thread, addr mem.Addr) {
	p.charge(t, p.cfg.WrapCycles)
	ts := p.state(t)
	ts.stackVars.RemoveContaining(uint64(addr))
}

// stackVarPrefix resolves an effective address against the thread's own
// registered stack variables.
func (ts *tstate) stackVarPrefix(ea mem.Addr) ([]cct.FrameID, bool) {
	if ts.stackVars.Len() == 0 {
		return nil, false
	}
	return ts.stackVars.Lookup(uint64(ea))
}

// trackSmallAlloc decides whether a below-threshold allocation should be
// tracked anyway under the small-allocation sampling extension (§7:
// "monitoring some of them"): every SmallAllocSamplePeriod-th small
// allocation is tracked, amortizing the unwind cost across the rest. The
// counter is atomic, so concurrent small allocations on many threads never
// serialize on a lock just to be skipped.
func (p *Profiler) trackSmallAlloc() bool {
	if p.cfg.SmallAllocSamplePeriod == 0 {
		return false
	}
	return p.smallAllocSeen.Add(1)%p.cfg.SmallAllocSamplePeriod == 0
}
