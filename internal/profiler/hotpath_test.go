package profiler

// Hot-path cache correctness: the last-block and last-node caches must make
// steady-state sampling cheap WITHOUT ever changing attribution — every
// test here drives a workload where a stale cache entry would visibly
// misattribute, and checks both the profile and the telemetry counters that
// prove the caches actually engaged.

import (
	"testing"

	"dcprof/internal/cct"
	"dcprof/internal/mem"
	"dcprof/internal/metric"
	"dcprof/internal/telemetry"
)

// TestBlockCacheServesRepeatsAndInvalidatesOnFree: consecutive samples in
// the same block are served by the thread's 1-entry cache; freeing the
// block republishes the snapshot, so the very next sample at the same
// address must classify as unknown data, never as the dead block.
func TestBlockCacheServesRepeatsAndInvalidatesOnFree(t *testing.T) {
	reg := telemetry.New()
	cfg := DefaultConfig()
	cfg.Period = 1
	cfg.Telemetry = reg
	f := newFixture(t, cfg)

	f.th.At(5)
	big := f.th.Malloc(64 * 1024)
	const loads = 20
	for i := 0; i < loads; i++ {
		f.th.Load(big+64, 8)
	}
	f.th.Free(big)
	// Same address, block gone: must land in unknown data. A stale cache
	// hit would charge the freed heap variable instead.
	for i := 0; i < loads; i++ {
		f.th.Load(big+64, 8)
	}
	f.finish()

	prof := f.mergedProfile()
	heapN := prof.Trees[cct.ClassHeap].Total()[metric.Samples]
	unkN := prof.Trees[cct.ClassUnknown].Total()[metric.Samples]
	if heapN > loads {
		t.Errorf("heap samples = %d, want <= %d (post-free samples leaked into heap tree)", heapN, loads)
	}
	if unkN < loads-2 {
		t.Errorf("unknown samples = %d, want >= %d (post-free loads)", unkN, loads-2)
	}

	s := reg.Snapshot()
	if got := s.Counters["profiler.heapmap.cache_hits"]; got < loads/2 {
		t.Errorf("heapmap.cache_hits = %d, want >= %d (repeat samples in one block)", got, loads/2)
	}
	// One tracked alloc + one tracked free = exactly two snapshot rebuilds.
	if got := s.Counters["profiler.heapmap.snapshot_rebuilds"]; got != 2 {
		t.Errorf("heapmap.snapshot_rebuilds = %d, want 2", got)
	}
	if got := s.Gauges["profiler.cct.interner_frames"]; got.Value == 0 {
		t.Error("cct.interner_frames gauge never set")
	}
}

// TestLastNodeCacheCoalescesSteadyState: a run of identical samples must be
// attributed through the last-node cache (telemetry proves it) and produce
// exactly the same single-node profile a cache-free insert would.
func TestLastNodeCacheCoalescesSteadyState(t *testing.T) {
	reg := telemetry.New()
	cfg := DefaultConfig()
	cfg.Period = 1
	cfg.Telemetry = reg
	f := newFixture(t, cfg)

	f.th.At(5)
	big := f.th.Malloc(64 * 1024)
	const loads = 64
	for i := 0; i < loads; i++ {
		f.th.Load(big+mem.Addr(i%8)*64, 8)
	}
	f.finish()

	s := reg.Snapshot()
	hits := s.Counters["profiler.sample.lastnode_hits"]
	misses := s.Counters["profiler.sample.lastnode_misses"]
	if hits < loads/2 {
		t.Errorf("lastnode_hits = %d, want >= %d for a steady-state run", hits, loads/2)
	}
	// Every recorded sample is either a hit or a miss; none may vanish.
	taken, dropped := s.Counters["profiler.samples.taken"], s.Counters["profiler.samples.dropped"]
	if hits+misses != taken-dropped {
		t.Errorf("lastnode hits+misses = %d, want taken-dropped = %d", hits+misses, taken-dropped)
	}

	// All loads were issued at one (context, statement): they must coalesce
	// onto a single leaf holding every heap sample.
	heap := f.mergedProfile().Trees[cct.ClassHeap]
	var leaves int
	var leafSamples uint64
	heap.Walk(func(n *cct.Node, _ int) bool {
		if n.Frame.Kind == cct.KindStmt && !n.Metrics.IsZero() {
			leaves++
			leafSamples = n.Metrics[metric.Samples]
		}
		return true
	})
	if leaves != 1 {
		t.Fatalf("distinct sampled leaves = %d, want 1 (cache must not split attribution)", leaves)
	}
	if leafSamples < loads-1 {
		t.Errorf("leaf samples = %d, want >= %d", leafSamples, loads-1)
	}
}

// TestLastNodeCacheAcrossContextChanges alternates calling contexts and
// storage classes mid-run: the cache must invalidate on every switch and
// attribution must stay exactly separated per (context, class).
func TestLastNodeCacheAcrossContextChanges(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Period = 1
	f := newFixture(t, cfg)

	f.th.At(5)
	big := f.th.Malloc(64 * 1024)
	for round := 0; round < 4; round++ {
		f.th.At(5)
		f.th.Load(big, 8) // heap sample from main
		f.th.Call(f.work)
		f.th.At(12)
		f.th.Load(big, 8) // heap sample from main→work: deeper context
		f.th.Work(2)      // non-mem samples from main→work
		f.th.Ret()
	}
	f.finish()

	heap := f.mergedProfile().Trees[cct.ClassHeap]
	// Two distinct statement leaves under the one heap variable: main:5 and
	// work:12, each with its own sample count.
	counts := map[string]uint64{}
	heap.Walk(func(n *cct.Node, _ int) bool {
		if n.Frame.Kind == cct.KindStmt && !n.Metrics.IsZero() {
			counts[n.Frame.Name] += n.Metrics[metric.Samples]
		}
		return true
	})
	if len(counts) != 2 {
		t.Fatalf("sampled heap leaves = %v, want separate main and work leaves", counts)
	}
	if counts["main"] < 3 || counts["work"] < 3 {
		t.Errorf("per-context heap samples = %v, want >= 3 each", counts)
	}
	if got := f.mergedProfile().Trees[cct.ClassNonMem].Total()[metric.Samples]; got == 0 {
		t.Error("non-mem samples lost across class switches")
	}
}

// TestLeafMemoInvalidatedByUnload: leafID memoizes IP→statement, but a
// dlclose changes what an IP means. Samples taken inside a module, then
// again at the same IP after the module unloads, must be dropped — a stale
// memo entry would keep attributing them to the dead module.
func TestLeafMemoInvalidatedByUnload(t *testing.T) {
	reg := telemetry.New()
	cfg := DefaultConfig()
	cfg.Period = 1
	cfg.Telemetry = reg
	f := newFixture(t, cfg)

	lib := f.proc.LoadMap.Load("libplugin.so")
	fnPlug := lib.AddFunc("plugin_work", "plugin.c", 10)
	f.th.Call(fnPlug)
	f.th.At(12)
	big := f.th.Malloc(64 * 1024)
	f.th.Load(big, 8) // memoizes this IP as plugin.c:12

	if !f.proc.LoadMap.Unload(lib) {
		t.Fatal("unload failed")
	}
	dropBefore := reg.Snapshot().Counters["profiler.samples.dropped"]
	plugBefore := moduleStmtSamples(f.prof.Profiles(), "libplugin.so")
	f.th.Load(big, 8) // same IP, module gone: must drop, not reuse the memo
	f.th.Load(big, 8)
	f.th.Ret()
	f.finish()

	if dropAfter := reg.Snapshot().Counters["profiler.samples.dropped"]; dropAfter <= dropBefore {
		t.Errorf("samples.dropped = %d -> %d, want post-unload samples dropped", dropBefore, dropAfter)
	}
	// Samples taken while the module was loaded stay; but the dead module's
	// leaves must not grow afterwards (allowing one in-flight skid sample).
	plugAfter := moduleStmtSamples(f.prof.Profiles(), "libplugin.so")
	if plugAfter > plugBefore+1 {
		t.Errorf("unloaded-module samples grew %d -> %d; stale leaf memo", plugBefore, plugAfter)
	}
}

// moduleStmtSamples sums samples on statement leaves of the named module.
func moduleStmtSamples(profs []*cct.Profile, module string) uint64 {
	var total uint64
	for _, p := range profs {
		for _, tree := range p.Trees {
			tree.Walk(func(n *cct.Node, _ int) bool {
				if n.Frame.Kind == cct.KindStmt && n.Frame.Module == module {
					total += n.Metrics[metric.Samples]
				}
				return true
			})
		}
	}
	return total
}
