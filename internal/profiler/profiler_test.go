package profiler

import (
	"strings"
	"testing"

	"dcprof/internal/cache"
	"dcprof/internal/cct"
	"dcprof/internal/loadmap"
	"dcprof/internal/machine"
	"dcprof/internal/mem"
	"dcprof/internal/metric"
	"dcprof/internal/pmu"
	"dcprof/internal/sim"
)

// fixture builds a single-process environment with a tiny program.
type fixture struct {
	proc *sim.Process
	prof *Profiler
	th   *sim.Thread
	main *funcDecl
	work *funcDecl
}

type funcDecl = loadmap.Function

func newFixture(t *testing.T, cfg Config) *fixture {
	t.Helper()
	node := sim.NewNode(machine.Tiny(), cache.DefaultConfig())
	p := sim.NewProcess(node, 0, 0, 4, nil)
	prof := Attach(p, cfg)
	exe := p.LoadMap.Load("exe")
	fMain := exe.AddFunc("main", "main.c", 1)
	fWork := exe.AddFunc("work", "work.c", 10)
	th := p.Start()
	th.Call(fMain)
	return &fixture{proc: p, prof: prof, th: th, main: fMain, work: fWork}
}

func (f *fixture) finish() {
	for f.th.Depth() > 0 {
		f.th.Ret()
	}
	f.proc.Finish()
}

// mergedProfile returns all thread profiles merged into one.
func (f *fixture) mergedProfile() *cct.Profile {
	ps := f.prof.Profiles()
	out := ps[0]
	for _, p := range ps[1:] {
		out.Merge(p)
	}
	return out
}

func TestHeapAttributionUnderAllocationPath(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Period = 1 // sample everything for exactness
	f := newFixture(t, cfg)

	f.th.At(5)
	f.prof.Label(f.th, "bigbuf")
	buf := f.th.Malloc(64 * 1024)
	f.th.Call(f.work)
	f.th.At(12)
	for i := 0; i < 100; i++ {
		f.th.Load(buf+mem.Addr(i*64), 8)
	}
	f.th.Ret()
	f.finish()

	prof := f.mergedProfile()
	heap := prof.Trees[cct.ClassHeap]
	total := heap.Total()
	if total[metric.Samples] < 100 {
		t.Fatalf("heap samples = %d, want >= 100", total[metric.Samples])
	}

	// Expected structure: root -> main(call) -> stmt main.c:5 -> malloc ->
	// heap-data<bigbuf> -> main(call) -> work(call) -> stmt work.c:12.
	n := heap.Root
	step := func(want cct.Frame) {
		t.Helper()
		c, ok := n.Lookup(want)
		if !ok {
			for _, ch := range n.Children() {
				t.Logf("  have child: %v", ch.Frame)
			}
			t.Fatalf("missing frame %v under %v", want, n.Frame)
		}
		n = c
	}
	step(cct.Frame{Kind: cct.KindCall, Module: "exe", Name: "main", File: "main.c", Line: 0})
	step(cct.Frame{Kind: cct.KindStmt, Module: "exe", Name: "main", File: "main.c", Line: 5})
	step(cct.Frame{Kind: cct.KindCall, Module: "libc", Name: "malloc", File: "stdlib.h"})
	step(cct.Frame{Kind: cct.KindHeapData, Name: "bigbuf"})
	step(cct.Frame{Kind: cct.KindCall, Module: "exe", Name: "main", File: "main.c", Line: 0})
	step(cct.Frame{Kind: cct.KindCall, Module: "exe", Name: "work", File: "work.c", Line: 5})
	step(cct.Frame{Kind: cct.KindStmt, Module: "exe", Name: "work", File: "work.c", Line: 12})
	if n.Metrics[metric.Samples] < 100 {
		t.Errorf("leaf samples = %d", n.Metrics[metric.Samples])
	}
}

func TestStaticAttribution(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Period = 1
	f := newFixture(t, cfg)
	exe := f.proc.LoadMap.Modules()[0]
	g := exe.AddStatic("f_elem", 64*1024)

	f.th.At(7)
	for i := 0; i < 50; i++ {
		f.th.Store(g.Lo+mem.Addr(i*64), 8)
	}
	f.finish()

	prof := f.mergedProfile()
	static := prof.Trees[cct.ClassStatic]
	if got := static.Total()[metric.Samples]; got < 50 {
		t.Fatalf("static samples = %d, want >= 50", got)
	}
	varNode, ok := static.Root.Lookup(cct.Frame{Kind: cct.KindStaticVar, Module: "exe", Name: "f_elem"})
	if !ok {
		t.Fatal("static variable dummy node missing")
	}
	inc := varNode.Inclusive()
	if inc[metric.Samples] < 50 || inc[metric.Stores] < 50 {
		t.Errorf("variable inclusive = %v", inc.String())
	}
}

func TestUnknownData(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Period = 1
	f := newFixture(t, cfg)

	// Stack accesses and brk accesses are unknown data.
	f.th.At(3)
	f.th.Store(f.th.StackAddr(128), 8)
	brk := f.th.Sbrk(4096)
	f.th.Store(brk, 8)
	// A small untracked heap block is unknown too (below threshold).
	small := f.th.Malloc(64)
	f.th.Store(small, 8)
	f.finish()

	prof := f.mergedProfile()
	if got := prof.Trees[cct.ClassUnknown].Total()[metric.Samples]; got < 3 {
		t.Errorf("unknown samples = %d, want >= 3", got)
	}
	if got := prof.Trees[cct.ClassHeap].Total()[metric.Samples]; got != 0 {
		t.Errorf("heap samples = %d for untracked-only traffic", got)
	}
}

func TestSizeThreshold(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Period = 1
	f := newFixture(t, cfg)

	f.th.At(5)
	small := f.th.Malloc(100)    // below 4K: untracked
	big := f.th.Malloc(8 * 1024) // tracked
	f.th.Load(small, 8)
	f.th.Load(big, 8)
	tracked, skipped, live := f.prof.Stats()
	if tracked != 1 || skipped != 1 || live != 1 {
		t.Errorf("stats = %d tracked, %d skipped, %d live; want 1,1,1", tracked, skipped, live)
	}
	f.finish()

	prof := f.mergedProfile()
	if prof.Trees[cct.ClassHeap].Total()[metric.Samples] == 0 {
		t.Error("big block not attributed to heap")
	}
	if prof.Trees[cct.ClassUnknown].Total()[metric.Samples] == 0 {
		t.Error("small block not attributed to unknown")
	}
}

func TestThresholdZeroTracksEverything(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SizeThreshold = 0
	f := newFixture(t, cfg)
	f.th.At(5)
	f.th.Malloc(16)
	tracked, skipped, _ := f.prof.Stats()
	if tracked != 1 || skipped != 0 {
		t.Errorf("tracked=%d skipped=%d, want 1,0", tracked, skipped)
	}
	f.finish()
}

func TestFreeStopsAttribution(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Period = 1
	f := newFixture(t, cfg)

	f.th.At(5)
	a := f.th.Malloc(8 * 1024)
	f.th.Load(a, 8)
	f.th.Free(a)
	// Reuse the same address range via a fresh small (untracked) block.
	b := f.th.Malloc(8*1024 - 64)
	if b != a {
		t.Skip("allocator did not recycle the range; scenario not exercised")
	}
	// Drop tracking for the new block by pretending it's small: instead,
	// free it and touch the stale address through the brk region test is
	// complex; simply verify the live map is empty after frees.
	f.th.Free(b)
	if _, _, live := f.prof.Stats(); live != 0 {
		t.Errorf("live tracked blocks = %d after frees", live)
	}
	f.finish()
}

func TestNonMemSamples(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Period = 100
	f := newFixture(t, cfg)
	f.th.At(2)
	f.th.Work(10_000)
	f.finish()

	prof := f.mergedProfile()
	got := prof.Trees[cct.ClassNonMem].Total()[metric.Samples]
	if got < 90 || got > 110 {
		t.Errorf("non-mem samples = %d, want ~100", got)
	}
}

func TestSkidCorrectionAblation(t *testing.T) {
	// Skid shifts each sample to the instruction where the interrupt lands,
	// so measured *latency* gets attributed to compute statements that
	// perform no loads. The precise-IP adjustment (§4.1.2) keeps all
	// latency on the load's line. Compare the latency metric per line.
	run := func(useSkid bool) (lat12, lat13 uint64) {
		cfg := DefaultConfig()
		cfg.Period = 3 // co-prime with the 2-instruction loop body: rotates
		cfg.UseSkidIP = useSkid
		f := newFixture(t, cfg)
		buf := f.th.Malloc(8 * 1024)
		f.th.Call(f.work)
		for i := 0; i < 300; i++ {
			f.th.At(12)
			f.th.Load(buf+mem.Addr((i%1000)*8), 8) // memory op at line 12
			f.th.At(13)
			f.th.Work(1) // compute at line 13 (skid lands here)
		}
		f.th.Ret()
		f.finish()
		prof := f.mergedProfile()
		for _, tree := range prof.Trees {
			tree.Walk(func(n *cct.Node, _ int) bool {
				if n.Frame.Kind == cct.KindStmt && n.Frame.File == "work.c" {
					switch n.Frame.Line {
					case 12:
						lat12 += n.Metrics[metric.Latency]
					case 13:
						lat13 += n.Metrics[metric.Latency]
					}
				}
				return true
			})
		}
		return lat12, lat13
	}
	p12, p13 := run(false)
	s12, s13 := run(true)
	if p12 == 0 {
		t.Fatal("precise mode attributed no latency to the load line")
	}
	if p13 != 0 {
		t.Errorf("precise mode leaked %d cycles of latency to the compute line", p13)
	}
	if s13 == 0 {
		t.Error("skid mode attributed no latency to the compute line; ablation has no teeth")
	}
	if s12 != 0 {
		t.Errorf("skid mode kept %d cycles on the load line; expected full smear (loads are always followed by compute)", s12)
	}
}

func TestSameAllocationPathCoalesces(t *testing.T) {
	// Figure 2: many blocks allocated at one call path are one variable.
	cfg := DefaultConfig()
	cfg.Period = 1
	f := newFixture(t, cfg)

	var bufs []mem.Addr
	f.th.At(5)
	for i := 0; i < 20; i++ {
		bufs = append(bufs, f.th.Malloc(8*1024))
	}
	f.th.At(7)
	for _, b := range bufs {
		f.th.Load(b, 8)
	}
	f.finish()

	heap := f.mergedProfile().Trees[cct.ClassHeap]
	marks := 0
	heap.Walk(func(n *cct.Node, _ int) bool {
		if n.Frame.Kind == cct.KindHeapData {
			marks++
		}
		return true
	})
	if marks != 1 {
		t.Errorf("heap-data marks = %d, want 1 (all 20 blocks coalesced)", marks)
	}
}

func TestDistinctAllocationSitesStayDistinct(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Period = 1
	f := newFixture(t, cfg)

	f.th.At(5)
	a := f.th.Malloc(8 * 1024)
	f.th.At(6) // different allocation line
	b := f.th.Malloc(8 * 1024)
	f.th.At(8)
	f.th.Load(a, 8)
	f.th.Load(b, 8)
	f.finish()

	heap := f.mergedProfile().Trees[cct.ClassHeap]
	marks := 0
	heap.Walk(func(n *cct.Node, _ int) bool {
		if n.Frame.Kind == cct.KindHeapData {
			marks++
		}
		return true
	})
	if marks != 2 {
		t.Errorf("heap-data marks = %d, want 2", marks)
	}
}

func TestOverheadScalesWithTracking(t *testing.T) {
	run := func(track, trampoline bool, threshold uint64) uint64 {
		cfg := DefaultConfig()
		cfg.Period = 1 << 20 // sampling negligible
		cfg.TrackAllocations = track
		cfg.UseTrampoline = trampoline
		cfg.SizeThreshold = threshold
		f := newFixture(t, cfg)
		deep := make([]*loadmap.Function, 8)
		exe := f.proc.LoadMap.Modules()[0]
		for i := range deep {
			deep[i] = exe.AddFunc("lvl", "deep.c", 10*(i+1))
		}
		for i := 0; i < 500; i++ {
			for _, fn := range deep {
				f.th.Call(fn)
			}
			f.th.At(99)
			addr := f.th.Malloc(16) // small
			f.th.Free(addr)
			addr = f.th.Malloc(8192) // big
			f.th.Free(addr)
			for range deep {
				f.th.Ret()
			}
		}
		ov := f.th.Overhead()
		f.finish()
		return ov
	}
	off := run(false, false, 4096)
	naive := run(true, false, 0) // track everything, full unwinds
	thresholded := run(true, false, 4096)
	full := run(true, true, 4096) // threshold + trampoline
	if !(off < full && full < thresholded && thresholded < naive) {
		t.Errorf("overhead ordering wrong: off=%d full=%d thresholded=%d naive=%d",
			off, full, thresholded, naive)
	}
}

func TestEventStrings(t *testing.T) {
	c := DefaultConfig()
	if !strings.HasPrefix(c.EventString(), "IBS@") {
		t.Errorf("EventString = %q", c.EventString())
	}
	m := MarkedConfig(pmu.MarkDataFromRMEM, 1000)
	if m.EventString() != "PM_MRK_DATA_FROM_RMEM@1000" {
		t.Errorf("EventString = %q", m.EventString())
	}
}

func TestMarkedModeOnlyCountsMatching(t *testing.T) {
	cfg := MarkedConfig(pmu.MarkDataFromRMEM, 1)
	// Shrink the L3 so the master's calloc-zeroed lines do not linger on
	// socket 0 (which would turn the workers' accesses into cross-socket L3
	// interventions rather than remote-memory events).
	ccfg := cache.DefaultConfig()
	ccfg.L3Sets = 16
	ccfg.L2Sets = 16
	ccfg.L1Sets = 16
	node := sim.NewNode(machine.Tiny(), ccfg)
	p := sim.NewProcess(node, 0, 0, 4, nil)
	prof := Attach(p, cfg)
	exe := p.LoadMap.Load("exe")
	fMain := exe.AddFunc("main", "main.c", 1)
	fOL := exe.AddFunc("init.omp_fn.0", "main.c", 20)

	th := p.Start()
	th.Call(fMain)
	th.At(5)
	buf := th.Calloc(64*1024, 1) // master (domain 0) first-touches all pages

	// A thread in domain 1 reads: remote accesses.
	p.Parallel(th, fOL, 4, func(w *sim.Thread, tid int) {
		w.At(22)
		if w.Domain() == 1 {
			for i := 0; i < 200; i++ {
				w.Load(buf+mem.Addr(i*64), 8)
			}
		}
	})
	th.Ret()
	p.Finish()

	merged := prof.Profiles()[0]
	for _, pr := range prof.Profiles()[1:] {
		merged.Merge(pr)
	}
	tot := merged.Total()
	if tot[metric.Samples] == 0 {
		t.Fatal("no marked samples")
	}
	if tot[metric.FromRMEM] != tot[metric.Samples] {
		t.Errorf("marked RMEM profile contains non-remote samples: %v", tot.String())
	}
	// All samples land on heap data.
	if merged.Trees[cct.ClassHeap].Total()[metric.Samples] != tot[metric.Samples] {
		t.Error("remote samples not all attributed to the heap variable")
	}
}
