package profiler

import (
	"bytes"
	"testing"

	"dcprof/internal/mem"
	"dcprof/internal/sim"
)

// TestTraceConcurrentWritersExact drives one traced profiler from a real
// parallel region (each sim thread on its own goroutine, as
// Process.Parallel runs them) and checks exactness, not just absence of
// crashes: every thread's loads appear in the trace exactly once, and the
// encoded size is exactly records × record-size. Run under -race this is
// the concurrency proof for the Trace writer path.
func TestTraceConcurrentWritersExact(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Period = 1 // sample every instruction: per-thread load counts are exact
	f := newFixture(t, cfg)
	tr := f.prof.EnableTrace()

	const (
		nThreads = 4
		loads    = 200
		blockSz  = 64 * 1024
	)
	var (
		blocks [nThreads]mem.Addr
		ids    [nThreads]int
	)
	f.th.At(5)
	f.proc.Parallel(f.th, f.work, nThreads, func(th *sim.Thread, tid int) {
		th.At(12)
		b := th.Malloc(blockSz)
		blocks[tid] = b
		ids[tid] = th.ID
		for i := 0; i < loads; i++ {
			th.Load(b+mem.Addr((i%512)*64), 8)
		}
		// No Free here: freed ranges can be reallocated to another thread
		// mid-region, which would make the disjoint-blocks accounting below
		// ambiguous. Blocks die with the process.
	})
	f.finish()

	recs := tr.Records()
	if tr.Len() != len(recs) {
		t.Fatalf("Len() = %d but Records() returned %d", tr.Len(), len(recs))
	}

	// Exact per-thread accounting: each thread's block is private, so the
	// records landing in blocks[tid] must be exactly that thread's loads,
	// recorded under that thread's id.
	perThread := make(map[int]int, nThreads)
	for _, r := range recs {
		for tid := 0; tid < nThreads; tid++ {
			if r.EA >= blocks[tid] && r.EA < blocks[tid]+blockSz {
				perThread[tid]++
				if r.Thread != ids[tid] {
					t.Fatalf("record in thread %d's block attributed to thread %d", ids[tid], r.Thread)
				}
			}
		}
	}
	for tid := 0; tid < nThreads; tid++ {
		if perThread[tid] != loads {
			t.Errorf("thread %d: %d records in its block, want exactly %d", tid, perThread[tid], loads)
		}
	}

	// Exact encoded size: Bytes(), WriteTo's return, and the actual output
	// length must all agree.
	var sink bytes.Buffer
	n, err := tr.WriteTo(&sink)
	if err != nil {
		t.Fatal(err)
	}
	want := int64(len(recs)) * TraceRecordBytes
	if tr.Bytes() != want || n != want || int64(sink.Len()) != want {
		t.Errorf("encoded sizes disagree: Bytes()=%d WriteTo=%d sink=%d want=%d",
			tr.Bytes(), n, sink.Len(), want)
	}
}
