package profiler

import (
	"bytes"
	"testing"

	"dcprof/internal/cct"
	"dcprof/internal/mem"
	"dcprof/internal/metric"
	"dcprof/internal/profio"
	"dcprof/internal/sim"
)

func TestSmallAllocSampling(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Period = 1
	cfg.SmallAllocSamplePeriod = 10 // track every 10th small allocation
	f := newFixture(t, cfg)

	f.th.At(5)
	var addrs []mem.Addr
	for i := 0; i < 100; i++ {
		addrs = append(addrs, f.th.Malloc(64)) // all below the 4K threshold
	}
	tracked, skipped, _ := f.prof.Stats()
	if tracked != 10 || skipped != 90 {
		t.Fatalf("tracked=%d skipped=%d, want 10/90", tracked, skipped)
	}
	// Touch all blocks: only tracked ones attribute to heap data.
	f.th.At(7)
	for _, a := range addrs {
		f.th.Load(a, 8)
	}
	f.finish()
	prof := f.mergedProfile()
	heap := prof.Trees[cct.ClassHeap].Total()[metric.Samples]
	unknown := prof.Trees[cct.ClassUnknown].Total()[metric.Samples]
	if heap == 0 {
		t.Error("sampled small allocations got no heap attribution")
	}
	if unknown == 0 {
		t.Error("unsampled small allocations should stay unknown")
	}
	if heap > unknown {
		t.Errorf("heap=%d unknown=%d; only ~10%% of blocks are tracked", heap, unknown)
	}
}

func TestSmallAllocSamplingOffByDefault(t *testing.T) {
	cfg := DefaultConfig()
	f := newFixture(t, cfg)
	f.th.At(5)
	for i := 0; i < 50; i++ {
		f.th.Malloc(64)
	}
	tracked, skipped, _ := f.prof.Stats()
	if tracked != 0 || skipped != 50 {
		t.Errorf("tracked=%d skipped=%d, want 0/50", tracked, skipped)
	}
	f.finish()
}

func TestStackVarAttribution(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Period = 1
	f := newFixture(t, cfg)

	base := f.th.StackAddr(4096)
	f.prof.RegisterStackVar(f.th, "local_buf", base, 1024)

	f.th.At(9)
	for i := 0; i < 32; i++ {
		f.th.Store(base+mem.Addr(i*32), 8)
	}
	// An unregistered stack address stays anonymous.
	f.th.Store(f.th.StackAddr(64*1024), 8)
	f.finish()

	prof := f.mergedProfile()
	unknown := prof.Trees[cct.ClassUnknown]
	varNode, ok := unknown.Root.Lookup(cct.Frame{Kind: cct.KindStackVar, Module: "exe", Name: "local_buf"})
	if !ok {
		for _, c := range unknown.Root.Children() {
			t.Logf("unknown child: %v", c.Frame)
		}
		t.Fatal("stack variable dummy node missing")
	}
	inc := varNode.Inclusive()
	if inc[metric.Samples] < 32 {
		t.Errorf("stack var samples = %d, want >= 32", inc[metric.Samples])
	}
	// The anonymous access is outside the variable subtree.
	if got := unknown.Total()[metric.Samples]; got <= inc[metric.Samples] {
		t.Errorf("anonymous stack access missing: total=%d var=%d", got, inc[metric.Samples])
	}
}

func TestStackVarUnregister(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Period = 1
	f := newFixture(t, cfg)
	base := f.th.StackAddr(4096)
	f.prof.RegisterStackVar(f.th, "tmp", base, 512)
	f.th.At(4)
	f.th.Load(base, 8)
	f.th.Work(1) // drain the skid window before unregistering
	f.prof.UnregisterStackVar(f.th, base)
	f.th.Load(base, 8) // now anonymous
	f.finish()

	unknown := f.mergedProfile().Trees[cct.ClassUnknown]
	varNode, ok := unknown.Root.Lookup(cct.Frame{Kind: cct.KindStackVar, Module: "exe", Name: "tmp"})
	if !ok {
		t.Fatal("stack var node missing")
	}
	if got := varNode.Inclusive()[metric.Samples]; got != 1 {
		t.Errorf("samples after unregister = %d, want 1", got)
	}
}

func TestStackVarReregisterReplaces(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Period = 1
	f := newFixture(t, cfg)
	base := f.th.StackAddr(4096)
	f.prof.RegisterStackVar(f.th, "first", base, 512)
	f.prof.RegisterStackVar(f.th, "second", base+8, 256) // overlapping frame reuse
	f.th.At(4)
	f.th.Load(base+16, 8)
	f.finish()
	unknown := f.mergedProfile().Trees[cct.ClassUnknown]
	if _, ok := unknown.Root.Lookup(cct.Frame{Kind: cct.KindStackVar, Module: "exe", Name: "second"}); !ok {
		t.Error("re-registration did not take effect")
	}
}

func TestStackVarsAreThreadLocal(t *testing.T) {
	// Another thread touching the registered range must not resolve it.
	cfg := DefaultConfig()
	cfg.Period = 1
	f := newFixture(t, cfg)
	exe := f.proc.LoadMap.Modules()[0]
	fOL := exe.AddFunc("ol", "main.c", 30)

	base := f.th.StackAddr(4096)
	f.prof.RegisterStackVar(f.th, "mine", base, 1024)
	f.proc.Parallel(f.th, fOL, 2, func(w *sim.Thread, tid int) {
		w.At(31)
		w.Load(base, 8)
	})
	f.finish()
	unknown := f.mergedProfile().Trees[cct.ClassUnknown]
	varNode, ok := unknown.Root.Lookup(cct.Frame{Kind: cct.KindStackVar, Module: "exe", Name: "mine"})
	if !ok {
		t.Fatal("var node missing")
	}
	inc := varNode.Inclusive()
	// Only the owner (tid 0, the master) resolved its accesses.
	if inc[metric.Samples] != 1 {
		t.Errorf("samples = %d, want exactly the owner's 1", inc[metric.Samples])
	}
}

func TestTraceRecordsSamples(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Period = 1
	f := newFixture(t, cfg)
	tr := f.prof.EnableTrace()

	f.th.At(5)
	buf := f.th.Malloc(8192)
	for i := 0; i < 50; i++ {
		f.th.Load(buf+mem.Addr(i*64), 8)
	}
	f.finish()

	if tr.Len() < 50 {
		t.Fatalf("trace records = %d, want >= 50", tr.Len())
	}
	recs := tr.Records()
	for _, r := range recs[:5] {
		if r.EA < buf || r.EA >= buf+8192 {
			t.Errorf("trace EA %#x outside block", r.EA)
		}
	}
	var sink bytes.Buffer
	n, err := tr.WriteTo(&sink)
	if err != nil {
		t.Fatal(err)
	}
	if n != tr.Bytes() || int64(sink.Len()) != n {
		t.Errorf("WriteTo = %d bytes, Bytes() = %d, sink = %d", n, tr.Bytes(), sink.Len())
	}
}

func TestTraceGrowsWhereProfileDoesNot(t *testing.T) {
	// The paper's space argument: double the execution, the trace doubles,
	// the profile stays put (same contexts).
	run := func(iters int) (traceBytes, profileBytes int64) {
		cfg := DefaultConfig()
		cfg.Period = 1
		// The space argument is about the cumulative CCT; the temporal
		// sidecar grows (slowly) with execution time by design.
		cfg.TemporalWindow = 0
		f := newFixture(t, cfg)
		tr := f.prof.EnableTrace()
		f.th.At(5)
		buf := f.th.Malloc(64 * 1024)
		f.th.At(7)
		for i := 0; i < iters; i++ {
			f.th.Load(buf+mem.Addr((i%1024)*64), 8)
		}
		f.finish()
		pb, err := profio.EncodedSize(f.mergedProfile())
		if err != nil {
			t.Fatal(err)
		}
		return tr.Bytes(), pb
	}
	t1, p1 := run(2000)
	t2, p2 := run(4000)
	if t2 < t1*18/10 {
		t.Errorf("trace did not grow with execution: %d -> %d", t1, t2)
	}
	if p2 > p1*11/10 {
		t.Errorf("profile grew with execution length: %d -> %d", p1, p2)
	}
}
