package profiler

// Hot-path benchmark gate (ISSUE 5 satellite): opt-in via
// DCPROF_BENCH_HOTPATH=<output file> (check.sh sets it), because wall-clock
// gates are too noisy for the default `go test ./...` tier. It measures the
// interned sample path against an in-test replica of the pre-interning
// implementation (string-keyed CCT descent, per-sample frame conversion,
// RWMutex-guarded heap map — exactly what the seed's handler did per
// sample), writes BENCH_hotpath.json, and fails if:
//
//   - steady-state sample attribution allocates (> 0 allocs/op), or
//   - the attribution speedup over the legacy replica is < 1.5x, or
//   - the speedup regressed > 10% against the committed report.
//
// The gate compares within one run on one machine — absolute ns/op are
// recorded for the report but never gated, so the check is portable.

import (
	"encoding/json"
	"math/rand"
	"os"
	"sync"
	"testing"
	"time"

	"dcprof/internal/analysis"
	"dcprof/internal/cct"
	"dcprof/internal/ivmap"
	"dcprof/internal/mem"
	"dcprof/internal/metric"
)

// benchSimOnlyLoad is BenchmarkSamplePath's loop with sampling off: the
// pure simulator cost of a load, subtracted out so the gate compares
// attribution work against attribution work.
func benchSimOnlyLoad(b *testing.B) {
	cfg := DefaultConfig()
	cfg.Period = 1 << 30
	_, th := benchSetup(cfg, 12)
	var bufs []mem.Addr
	for i := 0; i < 512; i++ {
		bufs = append(bufs, th.Malloc(8192))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		th.Load(bufs[i%len(bufs)], 8)
	}
}

// legacyNode replicates the seed's string-keyed CCT node: children in a
// map[cct.Frame]*Node, every descent hashing three strings.
type legacyNode struct {
	metrics  metric.Vector
	children map[cct.Frame]*legacyNode
}

func (n *legacyNode) child(f cct.Frame) *legacyNode {
	if c, ok := n.children[f]; ok {
		return c
	}
	c := &legacyNode{children: make(map[cct.Frame]*legacyNode)}
	n.children[f] = c
	return c
}

// benchLegacyAttribution replays the seed's per-sample attribution against
// a live thread: resolve the IP, take the heap-map read lock, look the
// address up in the flat interval map, convert every unwound frame to a
// cct.Frame, and insert the string-keyed path. This is the work the
// interning refactor removed from the sample path.
func benchLegacyAttribution(b *testing.B) {
	cfg := DefaultConfig()
	cfg.Period = 1 << 30 // the real profiler stays quiet; we drive the replica
	_, th := benchSetup(cfg, 12)

	var mu sync.RWMutex
	var blocks ivmap.Map[[]cct.Frame]
	var bufs []mem.Addr
	allocPrefix := []cct.Frame{
		{Kind: cct.KindCall, Module: "exe", Name: "fn", File: "f.c", Line: 1},
		{Kind: cct.KindStmt, Module: "exe", Name: "fn", File: "f.c", Line: 5},
		{Kind: cct.KindCall, Module: "libc", Name: "malloc", File: "stdlib.h"},
		{Kind: cct.KindHeapData},
	}
	for i := 0; i < 512; i++ {
		a := th.Malloc(8192)
		bufs = append(bufs, a)
		if err := blocks.Insert(uint64(a), uint64(a)+8192, allocPrefix); err != nil {
			b.Fatal(err)
		}
	}
	root := &legacyNode{children: make(map[cct.Frame]*legacyNode)}
	lm := th.Proc.LoadMap
	ip := th.IP()
	var v metric.Vector
	v[metric.Samples] = 1
	var pathBuf []cct.Frame
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		frames := th.Frames()
		mod, fn, line, ok := lm.ResolveIP(ip)
		if !ok {
			b.Fatal("bench IP unresolvable")
		}
		mu.RLock()
		prefix, ok := blocks.Lookup(uint64(bufs[i%len(bufs)]))
		mu.RUnlock()
		if !ok {
			b.Fatal("bench block missing")
		}
		buf := pathBuf[:0]
		buf = append(buf, prefix...)
		for _, f := range frames {
			buf = append(buf, cct.Frame{
				Kind: cct.KindCall, Module: f.Fn.Module.Name,
				Name: f.Fn.Name, File: f.Fn.File, Line: f.CallLine,
			})
		}
		buf = append(buf, cct.Frame{
			Kind: cct.KindStmt, Module: mod.Name, Name: fn.Name, File: fn.File, Line: line,
		})
		pathBuf = buf
		n := root
		for _, f := range buf {
			n = n.child(f)
		}
		n.metrics.Add(&v)
	}
}

func benchAddSampleString(b *testing.B) {
	tr := cct.New()
	path := []cct.Frame{
		{Kind: cct.KindCall, Module: "exe", Name: "main", File: "main.c", Line: 0},
		{Kind: cct.KindCall, Module: "exe", Name: "solve", File: "solve.c", Line: 10},
		{Kind: cct.KindCall, Module: "exe", Name: "kernel", File: "kernel.c", Line: 20},
		{Kind: cct.KindStmt, Module: "exe", Name: "kernel", File: "kernel.c", Line: 25},
	}
	var v metric.Vector
	v[metric.Samples] = 1
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.AddSample(path, &v)
	}
}

func benchAddSampleIDs(b *testing.B) {
	tr := cct.New()
	path := []cct.Frame{
		{Kind: cct.KindCall, Module: "exe", Name: "main", File: "main.c", Line: 0},
		{Kind: cct.KindCall, Module: "exe", Name: "solve", File: "solve.c", Line: 10},
		{Kind: cct.KindCall, Module: "exe", Name: "kernel", File: "kernel.c", Line: 20},
		{Kind: cct.KindStmt, Module: "exe", Name: "kernel", File: "kernel.c", Line: 25},
	}
	ids := make([]cct.FrameID, len(path))
	for i, f := range path {
		ids[i] = cct.InternFrame(f)
	}
	var v metric.Vector
	v[metric.Samples] = 1
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.AddSampleIDs(ids, &v)
	}
}

// gateProfiles mirrors the analysis package's 128-thread merge input.
func gateProfiles(seed int64, threads int) []*cct.Profile {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*cct.Profile, 0, threads)
	for th := 0; th < threads; th++ {
		p := cct.NewProfile(0, th, "IBS@4096")
		for i := 0; i < 200; i++ {
			var v metric.Vector
			v[metric.Samples] = uint64(rng.Intn(10) + 1)
			v[metric.Latency] = uint64(rng.Intn(1000))
			fns := []string{"main", "a", "b", "c", "d"}
			fn := fns[rng.Intn(len(fns))]
			path := []cct.Frame{
				{Kind: cct.KindCall, Module: "exe", Name: "main", File: "main.c"},
				{Kind: cct.KindCall, Module: "exe", Name: fn, File: fn + ".c", Line: rng.Intn(5)},
				{Kind: cct.KindStmt, Module: "exe", Name: fn, File: fn + ".c", Line: rng.Intn(40)},
			}
			p.Trees[cct.Class(rng.Intn(cct.NumClasses))].AddSample(path, &v)
		}
		out = append(out, p)
	}
	return out
}

func benchMerge128(b *testing.B) {
	ps := gateProfiles(42, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		analysis.Merge(ps, 8)
	}
}

// bestOf runs a benchmark rounds times and keeps the fastest result — the
// least-noise estimate of its true cost on this machine.
func bestOf(rounds int, fn func(*testing.B)) testing.BenchmarkResult {
	var best testing.BenchmarkResult
	for i := 0; i < rounds; i++ {
		r := testing.Benchmark(fn)
		if i == 0 || r.NsPerOp() < best.NsPerOp() {
			best = r
		}
	}
	return best
}

// bestOfPair interleaves two benchmarks (A, B, A, B, …) and keeps the
// fastest result of each. Tight ratio gates (the 5% temporal-overhead
// check) compare these two numbers, so each round of A must run back to
// back with a round of B: two separate bestOf blocks would let a
// frequency or load shift between the blocks masquerade as a regression.
func bestOfPair(rounds int, fnA, fnB func(*testing.B)) (bestA, bestB testing.BenchmarkResult) {
	for i := 0; i < rounds; i++ {
		a := testing.Benchmark(fnA)
		if i == 0 || a.NsPerOp() < bestA.NsPerOp() {
			bestA = a
		}
		b := testing.Benchmark(fnB)
		if i == 0 || b.NsPerOp() < bestB.NsPerOp() {
			bestB = b
		}
	}
	return bestA, bestB
}

type hotpathReport struct {
	SamplePathNS         int64 `json:"sample_path_ns"`
	SamplePathAllocs     int64 `json:"sample_path_allocs"`
	SamplePathParallelNS int64 `json:"sample_path_parallel_ns"`
	// SamplePathNoTemporalNS is the sample path with the temporal
	// recorder off; the gate bounds the temporal overhead (on vs off,
	// measured within one run) to 5% and 0 extra allocs.
	SamplePathNoTemporalNS int64   `json:"sample_path_no_temporal_ns"`
	TemporalOverheadPct    float64 `json:"temporal_overhead_pct"`
	SimOnlyNS              int64   `json:"sim_only_ns"`
	SampleAttrNS           int64   `json:"sample_attr_ns"`
	LegacyAttrNS           int64   `json:"legacy_attr_ns"`
	AttrSpeedup            float64 `json:"attr_speedup"`
	GateMinSpeedup         float64 `json:"gate_min_speedup"`
	ClassifyNS             int64   `json:"classify_ns"`
	ClassifyParallelNS     int64   `json:"classify_parallel_ns"`
	AddSampleStringNS      int64   `json:"add_sample_string_ns"`
	AddSampleIDsNS         int64   `json:"add_sample_ids_ns"`
	Merge128ThreadsNS      int64   `json:"merge_128_threads_ns"`
	Pass                   bool    `json:"pass"`
	Timestamp              string  `json:"timestamp"`
}

// TestHotPathBenchGate is the perf regression gate for the interned sample
// path. See the file comment for what it enforces.
func TestHotPathBenchGate(t *testing.T) {
	out := os.Getenv("DCPROF_BENCH_HOTPATH")
	if out == "" {
		t.Skip("set DCPROF_BENCH_HOTPATH=<output file> to run the hot-path benchmark gate")
	}
	const (
		rounds = 3
		// overheadRounds runs the interleaved on/off temporal pair more
		// times than the portable-ratio benches: the 5% gate is much
		// tighter than the 1.5x speedup gate, so its best-of estimates
		// get more samples to converge.
		overheadRounds = 5
		minSpeedup     = 1.5
	)

	// A committed report, when present, is the regression baseline: the
	// machine-portable speedup ratio must not decay by more than 10%.
	var baseline *hotpathReport
	if raw, err := os.ReadFile(out); err == nil {
		var prev hotpathReport
		if json.Unmarshal(raw, &prev) == nil && prev.AttrSpeedup > 0 {
			baseline = &prev
		}
	}

	sample, noTemporal := bestOfPair(overheadRounds, BenchmarkSamplePath, BenchmarkSamplePathNoTemporal)
	simOnly := bestOf(rounds, benchSimOnlyLoad)
	legacy := bestOf(rounds, benchLegacyAttribution)

	attrNS := sample.NsPerOp() - simOnly.NsPerOp()
	if attrNS < 1 {
		attrNS = 1 // attribution vanished below sim noise; avoid div-by-zero
	}
	speedup := float64(legacy.NsPerOp()) / float64(attrNS)

	temporalPct := 100 * (float64(sample.NsPerOp()) - float64(noTemporal.NsPerOp())) /
		float64(noTemporal.NsPerOp())

	rep := hotpathReport{
		SamplePathNS:           sample.NsPerOp(),
		SamplePathAllocs:       sample.AllocsPerOp(),
		SamplePathParallelNS:   bestOf(rounds, BenchmarkSamplePathParallel).NsPerOp(),
		SamplePathNoTemporalNS: noTemporal.NsPerOp(),
		TemporalOverheadPct:    temporalPct,
		SimOnlyNS:              simOnly.NsPerOp(),
		SampleAttrNS:           attrNS,
		LegacyAttrNS:           legacy.NsPerOp(),
		AttrSpeedup:            speedup,
		GateMinSpeedup:         minSpeedup,
		ClassifyNS:             bestOf(rounds, BenchmarkClassify).NsPerOp(),
		ClassifyParallelNS:     bestOf(rounds, BenchmarkClassifyParallel).NsPerOp(),
		AddSampleStringNS:      bestOf(rounds, benchAddSampleString).NsPerOp(),
		AddSampleIDsNS:         bestOf(rounds, benchAddSampleIDs).NsPerOp(),
		Merge128ThreadsNS:      bestOf(rounds, benchMerge128).NsPerOp(),
		Timestamp:              time.Now().UTC().Format(time.RFC3339),
	}

	pass := true
	if rep.SamplePathAllocs > 0 {
		// BenchmarkSamplePath runs DefaultConfig, temporal recorder
		// included — so this is also the "timestamping adds 0 allocs"
		// assertion.
		pass = false
		t.Errorf("steady-state sample path allocates: %d allocs/op, want 0", rep.SamplePathAllocs)
	}
	if rep.SamplePathAllocs > noTemporal.AllocsPerOp() {
		pass = false
		t.Errorf("temporal recorder adds allocs: %d with vs %d without",
			rep.SamplePathAllocs, noTemporal.AllocsPerOp())
	}
	if temporalPct > 5 {
		pass = false
		t.Errorf("temporal recorder adds %.1f%% to the sample path (%dns vs %dns), gate allows 5%%",
			temporalPct, rep.SamplePathNS, rep.SamplePathNoTemporalNS)
	}
	if speedup < minSpeedup {
		pass = false
		t.Errorf("attribution speedup %.2fx (legacy %dns vs interned %dns), gate requires >= %.1fx",
			speedup, rep.LegacyAttrNS, rep.SampleAttrNS, minSpeedup)
	}
	if baseline != nil && speedup < 0.9*baseline.AttrSpeedup {
		pass = false
		t.Errorf("attribution speedup regressed > 10%%: %.2fx now vs %.2fx in committed report",
			speedup, baseline.AttrSpeedup)
	}
	rep.Pass = pass

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("sample %dns (%d allocs), sim-only %dns, attribution %dns vs legacy %dns = %.2fx; report %s",
		rep.SamplePathNS, rep.SamplePathAllocs, rep.SimOnlyNS, rep.SampleAttrNS, rep.LegacyAttrNS, speedup, out)
}
