package profiler

import (
	"testing"

	"dcprof/internal/cache"
	"dcprof/internal/heapmap"
	"dcprof/internal/machine"
	"dcprof/internal/mem"
	"dcprof/internal/sim"
)

// benchSetup builds a profiled single-thread environment with a deep call
// stack, the worst case for the sample and allocation paths.
func benchSetup(cfg Config, depth int) (*Profiler, *sim.Thread) {
	node := sim.NewNode(machine.Tiny(), cache.DefaultConfig())
	p := sim.NewProcess(node, 0, 0, 1, nil)
	prof := Attach(p, cfg)
	exe := p.LoadMap.Load("exe")
	th := p.Start()
	for i := 0; i < depth; i++ {
		th.Call(exe.AddFunc("fn", "f.c", 10*i+1))
	}
	th.At(5)
	return prof, th
}

// BenchmarkSamplePath measures the full per-sample cost: PMU delivery,
// unwind, classification against a populated heap map, CCT insertion.
// Steady state must run at 0 allocs/op (the hot-path gate enforces it).
func BenchmarkSamplePath(b *testing.B) {
	cfg := DefaultConfig()
	cfg.Period = 1 // every access samples
	benchSamplePath(b, cfg)
}

// BenchmarkSamplePathNoTemporal is BenchmarkSamplePath with the temporal
// recorder off — the baseline the hot-path gate compares against to bound
// what timestamping adds to the sample path.
func BenchmarkSamplePathNoTemporal(b *testing.B) {
	cfg := DefaultConfig()
	cfg.Period = 1
	cfg.TemporalWindow = 0
	benchSamplePath(b, cfg)
}

func benchSamplePath(b *testing.B, cfg Config) {
	prof, th := benchSetup(cfg, 12)
	var bufs []mem.Addr
	for i := 0; i < 512; i++ {
		bufs = append(bufs, th.Malloc(8192))
	}
	_ = prof
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		th.Load(bufs[i%len(bufs)], 8)
	}
}

// BenchmarkSamplePathParallel drives N concurrent sampling threads — each
// animating its own simulated thread inside one parallel region — against
// a large shared live-heap map. Before the copy-on-write heap map, every
// sample serialized on the process-global blocksMu; now the only shared
// state on the path is read via atomic snapshots, so threads scale.
func BenchmarkSamplePathParallel(b *testing.B) {
	const nThreads = 8
	cfg := DefaultConfig()
	cfg.Period = 1
	node := sim.NewNode(machine.Power7Node(), cache.DefaultConfig())
	p := sim.NewProcess(node, 0, 0, nThreads, nil)
	prof := Attach(p, cfg)
	exe := p.LoadMap.Load("exe")
	fMain := exe.AddFunc("main", "main.c", 1)
	fRegion := exe.AddFunc("region", "main.c", 40)
	th := p.Start()
	th.Call(fMain)
	th.At(5)
	var bufs []mem.Addr
	for i := 0; i < 2048; i++ {
		bufs = append(bufs, th.Malloc(8192))
	}
	_ = prof
	perThread := b.N/nThreads + 1
	b.ReportAllocs()
	b.ResetTimer()
	p.Parallel(th, fRegion, nThreads, func(t *sim.Thread, tid int) {
		t.At(42)
		for i := 0; i < perThread; i++ {
			t.Load(bufs[(i*nThreads+tid)%len(bufs)], 8)
		}
	})
}

// BenchmarkAllocPathTrampoline vs NoTrampoline: the §4.1.3 unwind
// optimization, measured in host time AND reported in charged simulated
// cycles per allocation.
func benchAllocPath(b *testing.B, trampoline bool) {
	cfg := DefaultConfig()
	cfg.Period = 1 << 30
	cfg.UseTrampoline = trampoline
	cfg.SizeThreshold = 0 // track everything
	_, th := benchSetup(cfg, 24)
	before := th.Overhead()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := th.Malloc(64)
		th.Free(a)
	}
	b.StopTimer()
	if b.N > 0 {
		b.ReportMetric(float64(th.Overhead()-before)/float64(b.N), "sim-cycles/alloc")
	}
}

func BenchmarkAllocPathTrampoline(b *testing.B)   { benchAllocPath(b, true) }
func BenchmarkAllocPathNoTrampoline(b *testing.B) { benchAllocPath(b, false) }

// classifyBench populates a profiler with a large live heap.
func classifyBench(b *testing.B) (*Profiler, []mem.Addr) {
	cfg := DefaultConfig()
	cfg.Period = 1 << 30
	prof, th := benchSetup(cfg, 4)
	var bufs []mem.Addr
	for i := 0; i < 4096; i++ {
		bufs = append(bufs, th.Malloc(8192))
	}
	return prof, bufs
}

// BenchmarkClassify measures address classification against a large live
// heap map — the per-sample lookup the paper keeps on the fast path.
func BenchmarkClassify(b *testing.B) {
	prof, bufs := classifyBench(b)
	var c heapmap.Cache[*heapBlock]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prof.classify(bufs[i%len(bufs)]+16, &c)
	}
}

// BenchmarkClassifyParallel runs the classification path from GOMAXPROCS
// goroutines at once. With the lock-free snapshot map this scales near
// linearly; with the old RWMutex-guarded map every goroutine serialized on
// the read lock's shared cache line.
func BenchmarkClassifyParallel(b *testing.B) {
	prof, bufs := classifyBench(b)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		var c heapmap.Cache[*heapBlock]
		i := 0
		for pb.Next() {
			prof.classify(bufs[i%len(bufs)]+16, &c)
			i++
		}
	})
}
