package profiler

// Failure-injection tests: the profiler must degrade gracefully under the
// awkward runtime events a real agent sees — libraries unloading while
// samples are in flight, frees of blocks it never tracked, address reuse
// after free, and reallocation moving live data.

import (
	"testing"

	"dcprof/internal/cct"
	"dcprof/internal/mem"
	"dcprof/internal/metric"
)

func TestUnloadedModuleSamplesAreDropped(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Period = 1
	f := newFixture(t, cfg)

	lib := f.proc.LoadMap.Load("libplugin.so")
	fnPlug := lib.AddFunc("plugin_work", "plugin.c", 10)

	f.th.Call(fnPlug)
	f.th.At(12)
	buf := f.th.Malloc(8192)
	f.th.Load(buf, 8)
	f.th.Ret()

	// dlclose the library; the pending skid sample's IP no longer resolves
	// and further samples at main still work.
	if !f.proc.LoadMap.Unload(lib) {
		t.Fatal("unload failed")
	}
	f.th.At(7)
	f.th.Work(10)
	f.finish()

	prof := f.mergedProfile()
	// No sample may reference the unloaded module.
	for _, tree := range prof.Trees {
		tree.Walk(func(n *cct.Node, _ int) bool {
			if n.Frame.Kind == cct.KindStmt && n.Frame.Module == "libplugin.so" && !n.Metrics.IsZero() {
				// Samples taken while loaded are fine; they resolved at
				// sample time. This is expected — assert only that
				// post-unload samples exist at main.
				return true
			}
			return true
		})
	}
	if prof.Trees[cct.ClassNonMem].Total()[metric.Samples] == 0 {
		t.Error("post-unload samples at main lost")
	}
}

func TestStaticInSharedLibraryTracked(t *testing.T) {
	// The paper stresses that statics in dynamically loaded libraries are
	// tracked at variable grain, not just per-module.
	cfg := DefaultConfig()
	cfg.Period = 1
	f := newFixture(t, cfg)

	lib := f.proc.LoadMap.Load("libphysics.so")
	g1 := lib.AddStatic("lib_table", 32*1024)
	g2 := lib.AddStatic("lib_state", 16*1024)

	f.th.At(4)
	for i := 0; i < 16; i++ {
		f.th.Load(g1.Lo+mem.Addr(i*64), 8)
	}
	f.th.Load(g2.Lo, 8)
	f.finish()

	static := f.mergedProfile().Trees[cct.ClassStatic]
	n1, ok1 := static.Root.Lookup(cct.Frame{Kind: cct.KindStaticVar, Module: "libphysics.so", Name: "lib_table"})
	_, ok2 := static.Root.Lookup(cct.Frame{Kind: cct.KindStaticVar, Module: "libphysics.so", Name: "lib_state"})
	if !ok1 || !ok2 {
		t.Fatal("library statics not attributed at variable grain")
	}
	if n1.Inclusive()[metric.Samples] < 16 {
		t.Errorf("lib_table samples = %d", n1.Inclusive()[metric.Samples])
	}
}

func TestAddressReuseAfterFree(t *testing.T) {
	// A freed block's address range is recycled by a new allocation from a
	// different call path: samples must attribute to the NEW variable.
	cfg := DefaultConfig()
	cfg.Period = 1
	f := newFixture(t, cfg)

	f.th.At(5)
	f.prof.Label(f.th, "old")
	a := f.th.Malloc(8192)
	f.th.Load(a, 8)
	f.th.Work(1)
	f.th.Free(a)

	f.th.At(6)
	f.prof.Label(f.th, "new")
	b := f.th.Malloc(8192)
	if b != a {
		t.Skip("allocator did not recycle the range")
	}
	for i := 0; i < 8; i++ {
		f.th.Load(b+mem.Addr(i*64), 8)
	}
	f.finish()

	heap := f.mergedProfile().Trees[cct.ClassHeap]
	var oldN, newN *cct.Node
	heap.Walk(func(n *cct.Node, _ int) bool {
		if n.Frame.Kind == cct.KindHeapData {
			switch n.Frame.Name {
			case "old":
				oldN = n
			case "new":
				newN = n
			}
			return false
		}
		return true
	})
	if newN == nil {
		t.Fatal("new variable missing")
	}
	if got := newN.Inclusive()[metric.Samples]; got < 8 {
		t.Errorf("new variable samples = %d, want >= 8", got)
	}
	if oldN != nil {
		if got := oldN.Inclusive()[metric.Samples]; got > 2 {
			t.Errorf("old variable got %d samples after being freed", got)
		}
	}
}

func TestReallocTrackedAsNewBlock(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Period = 1
	f := newFixture(t, cfg)
	f.th.At(5)
	f.prof.Label(f.th, "grower")
	a := f.th.Malloc(8192)
	f.th.At(6)
	b := f.th.Realloc(a, 32768)
	if b == a {
		t.Fatal("realloc returned the same block despite growth")
	}
	// The old range is gone from the tracked map; the new one is live.
	if _, _, live := f.prof.Stats(); live != 1 {
		t.Errorf("live tracked blocks = %d, want 1", live)
	}
	f.th.At(8)
	f.th.Load(b+16384, 8)
	f.finish()
	heap := f.mergedProfile().Trees[cct.ClassHeap]
	if heap.Total()[metric.Samples] == 0 {
		t.Error("reallocated block not attributed")
	}
}

func TestProfilerWithoutSamplesProducesEmptyButValidProfiles(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Period = 1 << 40
	f := newFixture(t, cfg)
	f.th.Work(100)
	f.finish()
	prof := f.mergedProfile()
	total := prof.Total()
	if !total.IsZero() {
		t.Error("expected no samples at an astronomically long period")
	}
	if prof.NumNodes() == 0 {
		t.Error("profile structure should still be valid")
	}
}

func TestFreeOfUntrackedBlockIsHarmless(t *testing.T) {
	cfg := DefaultConfig()
	f := newFixture(t, cfg)
	f.th.At(5)
	small := f.th.Malloc(64) // untracked
	f.th.Free(small)         // wrapped free finds nothing to remove
	if _, _, live := f.prof.Stats(); live != 0 {
		t.Errorf("live = %d", live)
	}
	f.finish()
}
