package profiler

import (
	"testing"

	"dcprof/internal/mem"
	"dcprof/internal/telemetry"
)

// TestTelemetryInstruments drives a deterministic workload through an
// instrumented profiler and checks the registry against ground truth the
// workload makes exact.
func TestTelemetryInstruments(t *testing.T) {
	reg := telemetry.New()
	cfg := DefaultConfig()
	cfg.Period = 1 // sample every instruction for exact counts
	cfg.Telemetry = reg
	f := newFixture(t, cfg)

	f.th.At(5)
	big := f.th.Malloc(64 * 1024) // tracked: above the 4 KiB threshold
	f.th.Malloc(128)              // skipped: below threshold
	f.th.Call(f.work)
	f.th.At(12)
	const loads = 50
	for i := 0; i < loads; i++ {
		f.th.Load(big+mem.Addr(i*64), 8)
	}
	f.th.Ret()
	f.th.Free(big)
	f.finish()

	s := reg.Snapshot()
	if got := s.Counters["profiler.samples.taken"]; got < loads {
		t.Errorf("samples.taken = %d, want >= %d", got, loads)
	}
	if got := s.Counters["profiler.alloc.tracked"]; got != 1 {
		t.Errorf("alloc.tracked = %d, want 1", got)
	}
	if got := s.Counters["profiler.alloc.skipped_small"]; got != 1 {
		t.Errorf("alloc.skipped_small = %d, want 1", got)
	}
	if got := s.Counters["profiler.heapmap.lookups"]; got < loads {
		t.Errorf("heapmap.lookups = %d, want >= %d", got, loads)
	}
	if got := s.Counters["profiler.heapmap.hits"]; got < loads {
		t.Errorf("heapmap.hits = %d, want >= %d (every load hit the block)", got, loads)
	}
	if lb := s.Gauges["profiler.heapmap.live_blocks"]; lb.Value != 0 || lb.Max != 1 {
		t.Errorf("live_blocks = %d (max %d), want 0 (max 1)", lb.Value, lb.Max)
	}
	h, ok := s.Histograms["profiler.unwind.depth"]
	if !ok || h.Count == 0 {
		t.Fatalf("unwind.depth histogram missing or empty: %+v", h)
	}
	if h.Count != s.Counters["profiler.samples.taken"] {
		t.Errorf("unwind.depth count %d != samples.taken %d", h.Count, s.Counters["profiler.samples.taken"])
	}
	if got := s.Counters["profiler.overhead.cycles"]; got == 0 {
		t.Error("overhead.cycles = 0, want the charged cycle mirror to be nonzero")
	}
}

// TestTelemetryOverheadMirrorsCharges: the overhead.cycles counter must
// equal the simulated cycles actually charged to application threads, so
// the paper's overhead table can be recomputed from telemetry alone.
func TestTelemetryOverheadMirrorsCharges(t *testing.T) {
	reg := telemetry.New()
	cfg := DefaultConfig()
	cfg.Period = 3
	cfg.Telemetry = reg
	f := newFixture(t, cfg)

	f.th.At(5)
	b := f.th.Malloc(32 * 1024)
	for i := 0; i < 200; i++ {
		f.th.Load(b+mem.Addr(i*32), 8)
	}
	f.th.Free(b)
	f.finish()

	var charged uint64
	for _, th := range f.proc.Threads() {
		charged += th.Overhead()
	}
	got := reg.Snapshot().Counters["profiler.overhead.cycles"]
	if got != charged {
		t.Errorf("overhead.cycles = %d, threads were charged %d", got, charged)
	}
}

// TestTelemetryTrampoline: with the trampoline on, repeated allocations at
// the same depth must shorten unwinds and count hits.
func TestTelemetryTrampoline(t *testing.T) {
	reg := telemetry.New()
	cfg := DefaultConfig()
	cfg.Period = 1 << 30 // no PMU samples; isolate allocation unwinds
	cfg.Telemetry = reg
	f := newFixture(t, cfg)

	f.th.At(5)
	f.th.Call(f.work)
	f.th.At(12)
	for i := 0; i < 10; i++ {
		f.th.Malloc(8 * 1024)
	}
	f.finish()

	s := reg.Snapshot()
	if hits := s.Counters["profiler.trampoline.hits"]; hits == 0 {
		t.Errorf("trampoline.hits = 0 after 10 same-path allocations")
	}
	if saved := s.Counters["profiler.trampoline.frames_saved"]; saved == 0 {
		t.Errorf("trampoline.frames_saved = 0, want > 0")
	}
}

// TestTelemetryNilConfigIsInert: with Config.Telemetry nil, profiling must
// work and record nothing anywhere.
func TestTelemetryNilConfigIsInert(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Period = 1
	f := newFixture(t, cfg)
	f.th.At(5)
	b := f.th.Malloc(16 * 1024)
	f.th.Load(b, 8)
	f.finish()
	if got := f.mergedProfile(); got == nil {
		t.Fatal("nil profile from uninstrumented profiler")
	}
}
