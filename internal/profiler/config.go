// Package profiler implements the paper's contribution: an online
// data-centric call-path profiler. It attaches to a simulated process the
// way HPCToolkit attaches to a real one (malloc-family wrappers plus
// per-thread PMU configuration) and, on every PMU sample:
//
//  1. unwinds the thread's call stack into a calling context,
//  2. replaces the context's leaf with the PMU's precise IP (undoing
//     interrupt skid),
//  3. classifies the sampled effective address against tracked heap blocks
//     and static-variable symbol ranges,
//  4. and records the sample in the per-thread CCT for that storage class —
//     for heap data, under the block's allocation call path, so blocks
//     allocated at the same path coalesce into one logical variable.
//
// Every profiler action charges simulated cycles to the thread it runs on,
// reproducing the paper's overhead mechanics: sample handling costs grow
// with stack depth and sampling frequency; allocation tracking costs are
// bounded by the 4 KiB size threshold and the trampoline that limits
// unwinding to the call-path suffix that changed since the previous
// allocation (§4.1.3).
package profiler

import (
	"fmt"

	"dcprof/internal/pmu"
	"dcprof/internal/telemetry"
)

// Mode selects the PMU mechanism.
type Mode uint8

const (
	// ModeIBS uses instruction-based sampling (AMD-style): every Period
	// retired instructions, one is monitored.
	ModeIBS Mode = iota
	// ModeMarked uses marked-event sampling (POWER7-style): every Period
	// occurrences of Marked, the triggering instruction is sampled.
	ModeMarked
)

// Config controls measurement and the overhead model.
type Config struct {
	// Mode selects IBS or marked-event sampling.
	Mode Mode
	// Marked is the monitored event for ModeMarked.
	Marked pmu.MarkedEvent
	// Period is the sampling period (instructions for IBS, event
	// occurrences for marked events).
	Period uint64

	// TrackAllocations enables the malloc-family wrappers' bookkeeping.
	TrackAllocations bool
	// SizeThreshold skips tracking of heap blocks smaller than this many
	// bytes (0 tracks everything). The paper uses 4 KiB: small blocks
	// rarely matter for locality but dominate wrapping cost.
	SizeThreshold uint64
	// UseTrampoline limits each allocation unwind to the call-path suffix
	// changed since the previous one, using a marker frame (§4.1.3).
	UseTrampoline bool
	// CheapContext reads the execution context with inlined assembly
	// instead of libc's getcontext, a fixed-cost saving per unwind.
	CheapContext bool

	// UseSkidIP attributes samples to the skidded interrupt IP instead of
	// the PMU's precise IP — the naive behaviour the paper's leaf
	// adjustment fixes. For ablation only.
	UseSkidIP bool

	// TemporalWindow, when nonzero, buckets every sample's metrics into
	// fixed-width windows of the thread's sim clock (width in cycles) in
	// addition to the cumulative CCT, producing the temporal sidecar
	// (Profile.Temporal) that analysis windows/phases are computed from.
	// Zero disables temporal profiling. The bucketing runs on the sample
	// hot path but charges no simulated cycles: on real hardware it is a
	// clock read and a vector add, lost in the handler's fixed cost.
	TemporalWindow uint64

	// SmallAllocSamplePeriod, when nonzero, tracks every Nth allocation
	// below SizeThreshold instead of none of them — the paper's §7
	// extension for programs whose data structures are built from many
	// small allocations. The unwind cost is paid only on tracked ones.
	SmallAllocSamplePeriod uint64

	// Telemetry, when non-nil, receives the profiler's self-observability
	// instruments (names under "profiler."): samples taken/dropped, skid
	// corrections, the unwind-depth histogram, trampoline hit rate,
	// heap-map lookups, and allocation-tracking decisions. Nil disables
	// instrument updates entirely; the remaining cost is one nil check per
	// site, which the BENCH_telemetry gate keeps within noise.
	Telemetry *telemetry.Registry

	// Overhead model, in cycles.
	SampleBaseCycles  uint64 // per-sample fixed handler cost
	UnwindFrameCycles uint64 // per stack frame unwound
	AllocUnwindBase   uint64 // fixed cost of one allocation unwind
	WrapCycles        uint64 // per wrapped malloc/calloc/realloc/free call
	ContextCheap      uint64 // register-read context cost
	ContextGetcontext uint64 // libc getcontext cost
	ThreadSetupCycles uint64 // PMU programming at thread start
}

// DefaultConfig returns the paper-faithful configuration: IBS at a 64K
// instruction period, allocation tracking with the 4 KiB threshold,
// trampoline-assisted unwinding and cheap context reads.
func DefaultConfig() Config {
	return Config{
		Mode:             ModeIBS,
		Period:           65536,
		TrackAllocations: true,
		SizeThreshold:    4096,
		UseTrampoline:    true,
		CheapContext:     true,
		TemporalWindow:   65536,

		SampleBaseCycles:  1200,
		UnwindFrameCycles: 60,
		AllocUnwindBase:   150,
		WrapCycles:        30,
		ContextCheap:      40,
		ContextGetcontext: 450,
		ThreadSetupCycles: 3000,
	}
}

// MarkedConfig returns a marked-event configuration for the given event and
// period, with the rest of the defaults.
func MarkedConfig(event pmu.MarkedEvent, period uint64) Config {
	c := DefaultConfig()
	c.Mode = ModeMarked
	c.Marked = event
	c.Period = period
	return c
}

// EventString describes the monitored event for profile metadata, e.g.
// "IBS@65536" or "PM_MRK_DATA_FROM_RMEM@1000".
func (c Config) EventString() string {
	if c.Mode == ModeMarked {
		return fmt.Sprintf("%s@%d", c.Marked, c.Period)
	}
	return fmt.Sprintf("IBS@%d", c.Period)
}

// contextCost returns the per-unwind execution-context read cost.
func (c Config) contextCost() uint64 {
	if c.CheapContext {
		return c.ContextCheap
	}
	return c.ContextGetcontext
}
