package profiler

import (
	"sort"
	"sync"
	"sync/atomic"

	"dcprof/internal/cache"
	"dcprof/internal/cct"
	"dcprof/internal/heapmap"
	"dcprof/internal/ivmap"
	"dcprof/internal/loadmap"
	"dcprof/internal/mem"
	"dcprof/internal/metric"
	"dcprof/internal/pmu"
	"dcprof/internal/sim"
	"dcprof/internal/temporal"
)

// heapBlock is the tracked state of one live heap allocation: its
// allocation call path (ending in the allocation statement, the allocator
// entry point, and the "heap data accesses" mark), pre-interned so the
// sample hot path can prepend it with a single slice reference and no
// string hashing.
type heapBlock struct {
	prefix []cct.FrameID // immutable once created
	size   uint64
}

// Profiler attaches data-centric measurement to one simulated process.
type Profiler struct {
	cfg  Config
	proc *sim.Process

	// blocks maps live tracked heap ranges to their allocation contexts.
	// Written by allocating threads, read by every sampling thread;
	// lookups are lock-free against a copy-on-write snapshot, so samplers
	// never block behind an allocating thread (or each other).
	blocks heapmap.Map[*heapBlock]

	// states holds per-thread profiler state (thread-local CCTs; no locks
	// on the sample path, as in the paper).
	statesMu sync.Mutex
	states   map[*sim.Thread]*tstate

	// staticPrefix caches the one-frame interned prefix per static symbol.
	// sync.Map: read-mostly, written once per distinct symbol.
	staticPrefix sync.Map // *loadmap.StaticVar -> []cct.FrameID

	// trackedAllocs / skippedAllocs count tracking decisions (stats);
	// atomics, so allocation wrappers never serialize on unrelated locks.
	trackedAllocs atomic.Uint64
	skippedAllocs atomic.Uint64
	// smallAllocSeen counts below-threshold allocations for the sampling
	// extension.
	smallAllocSeen atomic.Uint64

	// allocKindIDs holds the interned allocator-entry frames (malloc,
	// calloc, realloc), resolved once at Attach.
	allocKindIDs [3]cct.FrameID
	// plainHeapMark is the interned unlabeled heap-data separator.
	plainHeapMark cct.FrameID

	// trace, when non-nil, records every memory sample MemProf-style (see
	// EnableTrace and the tracecmp experiment).
	trace *Trace

	// tel holds the self-observability instruments (all nil when
	// Config.Telemetry is nil — every update degrades to one branch).
	tel instruments
}

// tstate is the per-thread measurement state.
type tstate struct {
	prof    *Profiler
	t       *sim.Thread
	profile *cct.Profile

	pendingLabel string
	// stackVars maps registered stack-variable ranges to their dummy-node
	// prefixes (§7 extension). Thread-local: no locking.
	stackVars ivmap.Map[[]cct.FrameID]

	// stackIDs mirrors the thread's live stack as interned FrameIDs; the
	// bottom ConvCacheDepth frames are known current (same invalidation
	// rule as the trampoline, tracked separately so refreshing on samples
	// does not perturb the simulated trampoline state or its charges).
	stackIDs []cct.FrameID
	// stackEpoch increments whenever stackIDs changes; the last-node cache
	// keys on it to prove the calling context is unchanged.
	stackEpoch uint64

	// frameIDs memoizes live-frame -> FrameID conversion per (function,
	// call line). Function symbol data is immutable, so entries never go
	// stale.
	frameIDs map[frameKey]cct.FrameID
	// leafIDs memoizes IP -> statement-frame resolution. Unlike frameIDs
	// it can go stale (module load/unload changes what an IP resolves to),
	// so it is revalidated against the load map's generation.
	leafIDs map[uint64]leafEntry
	leafGen uint64

	// Last-node cache: consecutive samples at the same (class, variable
	// prefix, calling context, leaf) skip InsertPath entirely.
	lastNode   *cct.Node
	lastClass  cct.Class
	lastLeaf   cct.FrameID
	lastEpoch  uint64
	lastPrefix []cct.FrameID

	// blockCache is the thread's 1-entry heap-map cache (sample locality:
	// consecutive samples usually land in the same block).
	blockCache heapmap.Cache[*heapBlock]

	// rec buckets samples into sim-time windows (nil when
	// Config.TemporalWindow is zero). Thread-local, zero-alloc in steady
	// state; its output becomes profile.Temporal at collection time.
	rec *temporal.Recorder

	// pathBuf is scratch for building sample paths without allocating.
	pathBuf []cct.FrameID
}

// frameKey identifies a converted call frame: the function symbol is
// canonical per load, and the call line completes the CCT identity.
type frameKey struct {
	fn   *loadmap.Function
	line int
}

// leafEntry caches one IP resolution, including the negative case
// (unloaded module) so repeatedly-sampled dead IPs stay cheap.
type leafEntry struct {
	id cct.FrameID
	ok bool
}

// Attach wraps the process's runtime events with profiler instrumentation.
// Call before Process.Start / World.Run.
func Attach(p *sim.Process, cfg Config) *Profiler {
	if cfg.Period == 0 {
		cfg.Period = DefaultConfig().Period
	}
	prof := &Profiler{
		cfg:    cfg,
		proc:   p,
		states: make(map[*sim.Thread]*tstate),
		tel:    newInstruments(cfg.Telemetry),
	}
	for _, k := range []sim.AllocKind{sim.AllocMalloc, sim.AllocCalloc, sim.AllocRealloc} {
		prof.allocKindIDs[k] = cct.InternFrame(cct.Frame{
			Kind: cct.KindCall, Module: "libc", Name: k.String(), File: "stdlib.h",
		})
	}
	prof.plainHeapMark = cct.InternFrame(cct.Frame{Kind: cct.KindHeapData})
	p.SetHooks(prof)
	return prof
}

// charge bills profiler-induced cycles to the thread and mirrors them into
// the overhead counter, keeping the simulated and telemetry views of
// measurement cost in lockstep.
func (p *Profiler) charge(t *sim.Thread, cycles uint64) {
	t.ChargeOverhead(cycles)
	p.tel.overheadCycles.Add(cycles)
}

// Config returns the profiler's configuration.
func (p *Profiler) Config() Config { return p.cfg }

// ThreadStart implements sim.Hooks: it programs the thread's PMU and
// creates its CCTs.
func (p *Profiler) ThreadStart(t *sim.Thread) {
	ts := &tstate{
		prof:     p,
		t:        t,
		profile:  cct.NewProfile(p.proc.Rank, t.ID, p.cfg.EventString()),
		frameIDs: make(map[frameKey]cct.FrameID),
		leafIDs:  make(map[uint64]leafEntry),
		leafGen:  t.Proc.LoadMap.Gen(),
	}
	if p.cfg.TemporalWindow > 0 {
		ts.rec = temporal.NewRecorder(p.cfg.TemporalWindow)
	}
	var sampler pmu.Sampler
	if p.cfg.Mode == ModeMarked {
		sampler = pmu.NewMarked(p.cfg.Marked, p.cfg.Period, ts.handle)
	} else {
		sampler = pmu.NewIBS(p.cfg.Period, ts.handle)
	}
	t.SetSampler(sampler)
	p.charge(t, p.cfg.ThreadSetupCycles)

	p.statesMu.Lock()
	p.states[t] = ts
	p.statesMu.Unlock()
}

// ThreadEnd implements sim.Hooks.
func (p *Profiler) ThreadEnd(t *sim.Thread) {}

// state returns the thread's profiler state.
func (p *Profiler) state(t *sim.Thread) *tstate {
	p.statesMu.Lock()
	ts := p.states[t]
	p.statesMu.Unlock()
	if ts == nil {
		panic("profiler: event from thread without ThreadStart")
	}
	return ts
}

// Label names the calling thread's *next* allocation; views display it
// beside the allocation call path (standing in for the paper's manual
// source annotation of figures).
func (p *Profiler) Label(t *sim.Thread, name string) {
	p.state(t).pendingLabel = name
}

// frameIDFor converts one live stack frame to its interned CCT identity,
// memoized per thread.
func (ts *tstate) frameIDFor(f sim.Frame) cct.FrameID {
	k := frameKey{fn: f.Fn, line: f.CallLine}
	if id, ok := ts.frameIDs[k]; ok {
		return id
	}
	id := cct.InternFrame(cct.Frame{
		Kind:   cct.KindCall,
		Module: f.Fn.Module.Name,
		Name:   f.Fn.Name,
		File:   f.Fn.File,
		Line:   f.CallLine,
	})
	ts.frameIDs[k] = id
	ts.prof.tel.internerFrames.Set(int64(cct.DefaultInterner().Len()))
	return id
}

// syncStack refreshes stackIDs to mirror the live stack, converting only
// the frames above the unchanged bottom prefix, and reports whether the
// calling context is byte-identical to the last synced one.
func (ts *tstate) syncStack(frames []sim.Frame) {
	known := ts.t.ConvCacheDepth()
	if known > len(ts.stackIDs) {
		known = len(ts.stackIDs)
	}
	if known == len(frames) && known == len(ts.stackIDs) {
		return // unchanged since last sync: epoch stays put
	}
	ts.stackEpoch++
	ts.stackIDs = ts.stackIDs[:known]
	for i := known; i < len(frames); i++ {
		ts.stackIDs = append(ts.stackIDs, ts.frameIDFor(frames[i]))
	}
	ts.t.SetConvCacheDepth(len(frames))
}

// OnAlloc implements sim.Hooks: the malloc-family wrapper.
func (p *Profiler) OnAlloc(t *sim.Thread, addr mem.Addr, size uint64, kind sim.AllocKind) {
	p.charge(t, p.cfg.WrapCycles)
	ts := p.state(t)
	label := ts.pendingLabel
	ts.pendingLabel = ""
	if !p.cfg.TrackAllocations {
		return
	}
	if p.cfg.SizeThreshold > 0 && size < p.cfg.SizeThreshold && !p.trackSmallAlloc() {
		p.skippedAllocs.Add(1)
		p.tel.allocSkipped.Inc()
		return
	}

	// Unwind the allocation calling context. With the trampoline, only the
	// suffix above the marked frame must be walked; without it, the whole
	// stack is unwound every time. The charge models the simulated unwind;
	// the host-side conversion reuse is tracked separately by syncStack.
	frames := t.Frames()
	depth := len(frames)
	known := 0
	if p.cfg.UseTrampoline {
		known = t.TrampolineDepth()
		if known > 0 {
			p.tel.trampHits.Inc()
			p.tel.trampFramesSaved.Add(uint64(known))
		} else {
			p.tel.trampMisses.Inc()
		}
	}
	p.charge(t, p.cfg.contextCost()+p.cfg.AllocUnwindBase+
		p.cfg.UnwindFrameCycles*uint64(depth-known))
	ts.syncStack(frames)
	t.SetTrampolineDepth(depth)

	// Allocation context = stack + allocation statement + allocator entry
	// + heap-data mark. Copied so it stays immutable.
	stmtID, okStmt := ts.leafID(t.IP())
	if !okStmt {
		// Allocating from a function that resolves to no module cannot
		// happen while the function executes; keep a defensive identity.
		stmtID = cct.InternFrame(stmtFrameAt(t))
	}
	mark := p.plainHeapMark
	if label != "" {
		mark = cct.InternFrame(cct.Frame{Kind: cct.KindHeapData, Name: label})
	}
	prefix := make([]cct.FrameID, 0, depth+3)
	prefix = append(prefix, ts.stackIDs...)
	prefix = append(prefix, stmtID, p.allocKindIDs[kind], mark)

	blk := &heapBlock{prefix: prefix, size: size}
	// A racing free of an overlapping stale range cannot happen (allocator
	// hands out disjoint live ranges), so Insert only fails on profiler
	// bookkeeping bugs.
	if err := p.blocks.Insert(uint64(addr), uint64(addr)+size, blk); err != nil {
		panic("profiler: heap map corrupt: " + err.Error())
	}
	p.trackedAllocs.Add(1)
	p.tel.allocTracked.Inc()
	p.tel.liveBlocks.Add(1)
	p.tel.heapRebuilds.Inc()
	p.tel.internerFrames.Set(int64(cct.DefaultInterner().Len()))
}

// OnFree implements sim.Hooks: frees are always wrapped (cheaply — no
// calling context is collected for them) so stale ranges never
// mis-attribute later samples. Removing the block republishes the heap-map
// snapshot, which atomically invalidates every thread's last-block cache —
// address reuse after free/realloc cannot hit a stale entry.
func (p *Profiler) OnFree(t *sim.Thread, addr mem.Addr, size uint64) {
	p.charge(t, p.cfg.WrapCycles)
	_, tracked := p.blocks.RemoveAt(uint64(addr))
	if tracked {
		p.tel.liveBlocks.Add(-1)
		p.tel.heapRebuilds.Inc()
	}
}

// handle is the PMU interrupt handler, running on the sampled thread.
func (ts *tstate) handle(s *pmu.Sample) {
	t := ts.t
	prof := ts.prof
	cfg := &prof.cfg
	frames := t.Frames()
	depth := len(frames)
	prof.charge(t, cfg.SampleBaseCycles+cfg.UnwindFrameCycles*uint64(depth))
	prof.tel.samplesTaken.Inc()
	prof.tel.unwindDepth.Observe(uint64(depth))

	ts.recordTrace(s)

	ip := s.PreciseIP
	if cfg.UseSkidIP {
		ip = s.SkidIP
	} else if s.SkidIP != s.PreciseIP {
		prof.tel.samplesSkid.Inc()
	}
	leaf, ok := ts.leafID(ip)
	if !ok {
		prof.tel.samplesDropped.Inc()
		return // IP in unloaded module; drop, as the real tool must
	}
	ts.syncStack(frames)

	var v metric.Vector
	v[metric.Samples] = 1
	if !s.IsMem {
		ts.record(cct.ClassNonMem, nil, leaf, &v)
		return
	}
	mi := &s.Mem
	v[metric.Latency] = mi.Latency
	v[sourceMetric(mi)] = 1
	if mi.TLBMiss {
		v[metric.TLBMiss] = 1
	}
	if mi.Write {
		v[metric.Stores] = 1
	}

	class, varPrefix := prof.classify(mi.EA, &ts.blockCache)
	if class == cct.ClassUnknown {
		if prefix, ok := ts.stackVarPrefix(mi.EA); ok {
			varPrefix = prefix
		}
	}
	ts.record(class, varPrefix, leaf, &v)
}

// samePrefix reports whether two immutable prefix slices are the same
// slice (variable prefixes are shared, never rebuilt, so identity implies
// equality).
func samePrefix(a, b []cct.FrameID) bool {
	if len(a) != len(b) {
		return false
	}
	return len(a) == 0 || &a[0] == &b[0]
}

// record attributes the vector at prefix ++ stack ++ leaf in the class's
// tree. Steady state — same storage class, same variable, same calling
// context, same statement as the previous sample — adds the vector to the
// cached node directly, skipping path insertion.
func (ts *tstate) record(class cct.Class, prefix []cct.FrameID, leaf cct.FrameID, v *metric.Vector) {
	if n := ts.lastNode; n != nil && class == ts.lastClass && leaf == ts.lastLeaf &&
		ts.stackEpoch == ts.lastEpoch && samePrefix(prefix, ts.lastPrefix) {
		ts.prof.tel.lastNodeHits.Inc()
		if ts.rec != nil {
			// Before the add: the recorder snapshots cumulative metrics
			// at a node's first touch per window.
			ts.rec.Record(ts.t.Clock(), class, n)
		}
		n.Metrics.Add(v)
		return
	}
	ts.prof.tel.lastNodeMisses.Inc()
	buf := ts.pathBuf[:0]
	buf = append(buf, prefix...)
	buf = append(buf, ts.stackIDs...)
	buf = append(buf, leaf)
	ts.pathBuf = buf
	n := ts.profile.Trees[class].InsertPathIDs(buf)
	if ts.rec != nil {
		ts.rec.Record(ts.t.Clock(), class, n)
	}
	n.Metrics.Add(v)
	ts.lastNode, ts.lastClass, ts.lastLeaf = n, class, leaf
	ts.lastEpoch, ts.lastPrefix = ts.stackEpoch, prefix
}

// classify resolves an effective address to its storage class and, for heap
// and static data, the interned variable prefix to hang the access path
// under. The heap lookup is lock-free; cache is the calling thread's
// 1-entry locality cache (pass a scratch Cache when classifying outside a
// sampling thread).
func (p *Profiler) classify(ea mem.Addr, cache *heapmap.Cache[*heapBlock]) (cct.Class, []cct.FrameID) {
	blk, ok, cached := p.blocks.LookupCached(uint64(ea), cache)
	p.tel.heapLookups.Inc()
	if ok {
		if cached {
			p.tel.blockCacheHits.Inc()
		}
		p.tel.heapHits.Inc()
		return cct.ClassHeap, blk.prefix
	}
	if sv, found := p.proc.LoadMap.FindStatic(ea); found {
		if fr, ok := p.staticPrefix.Load(sv); ok {
			return cct.ClassStatic, fr.([]cct.FrameID)
		}
		fr := []cct.FrameID{cct.InternFrame(cct.Frame{
			Kind: cct.KindStaticVar, Module: sv.Module.Name, Name: sv.Name,
		})}
		actual, _ := p.staticPrefix.LoadOrStore(sv, fr)
		return cct.ClassStatic, actual.([]cct.FrameID)
	}
	return cct.ClassUnknown, nil
}

// leafID resolves a sampled IP to its interned statement frame, memoized
// per thread and revalidated against the load map generation (an unload
// makes cached resolutions stale; a load can make negative entries stale).
func (ts *tstate) leafID(ip uint64) (cct.FrameID, bool) {
	lm := ts.t.Proc.LoadMap
	if g := lm.Gen(); g != ts.leafGen {
		clear(ts.leafIDs)
		ts.leafGen = g
	}
	if e, ok := ts.leafIDs[ip]; ok {
		return e.id, e.ok
	}
	mod, fn, line, ok := lm.ResolveIP(ip)
	var id cct.FrameID
	if ok {
		id = cct.InternFrame(cct.Frame{
			Kind: cct.KindStmt, Module: mod.Name, Name: fn.Name, File: fn.File, Line: line,
		})
	}
	ts.leafIDs[ip] = leafEntry{id: id, ok: ok}
	return id, ok
}

// stmtFrameAt is the statement frame for the thread's current position
// (used as the allocation point in allocation contexts).
func stmtFrameAt(t *sim.Thread) cct.Frame {
	fn := t.Func()
	return cct.Frame{Kind: cct.KindStmt, Module: fn.Module.Name, Name: fn.Name, File: fn.File, Line: t.Line()}
}

// sourceMetric maps a data source to its metric id.
func sourceMetric(mi *pmu.MemInfo) metric.ID {
	switch mi.Source {
	case cache.SrcL1:
		return metric.FromL1
	case cache.SrcL2:
		return metric.FromL2
	case cache.SrcL3:
		return metric.FromL3
	case cache.SrcRemoteL3:
		return metric.FromRL3
	case cache.SrcLocalDRAM:
		return metric.FromLMEM
	default:
		return metric.FromRMEM
	}
}

// Profiles returns the per-thread profiles collected so far, ordered by
// thread id. Call after the process finished.
func (p *Profiler) Profiles() []*cct.Profile {
	p.statesMu.Lock()
	defer p.statesMu.Unlock()
	out := make([]*cct.Profile, 0, len(p.states))
	for _, ts := range p.states {
		if ts.rec != nil {
			ts.profile.Temporal = ts.rec.Series()
		}
		out = append(out, ts.profile)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Thread < out[j].Thread })
	return out
}

// Stats reports allocation-tracking decisions.
func (p *Profiler) Stats() (tracked, skipped uint64, liveTracked int) {
	return p.trackedAllocs.Load(), p.skippedAllocs.Load(), p.blocks.Len()
}
