package profiler

import (
	"sort"
	"sync"

	"dcprof/internal/cache"
	"dcprof/internal/cct"
	"dcprof/internal/ivmap"
	"dcprof/internal/loadmap"
	"dcprof/internal/mem"
	"dcprof/internal/metric"
	"dcprof/internal/pmu"
	"dcprof/internal/sim"
)

// heapBlock is the tracked state of one live heap allocation: its
// allocation call path (ending in the allocation statement, the allocator
// entry point, and the "heap data accesses" mark), precomputed so the
// sample hot path can prepend it with a single slice reference.
type heapBlock struct {
	prefix []cct.Frame // immutable once created
	size   uint64
}

// Profiler attaches data-centric measurement to one simulated process.
type Profiler struct {
	cfg  Config
	proc *sim.Process

	// blocks maps live tracked heap ranges to their allocation contexts.
	// Written by allocating threads, read by every sampling thread.
	blocksMu sync.RWMutex
	blocks   ivmap.Map[*heapBlock]

	// states holds per-thread profiler state (thread-local CCTs; no locks
	// on the sample path, as in the paper).
	statesMu sync.Mutex
	states   map[*sim.Thread]*tstate

	// staticPrefix caches the one-frame variable prefix per static symbol.
	staticPrefixMu sync.Mutex
	staticPrefix   map[*loadmap.StaticVar][]cct.Frame

	// trackedAllocs / skippedAllocs count tracking decisions (stats).
	trackedAllocs uint64
	skippedAllocs uint64
	// smallAllocSeen counts below-threshold allocations for the sampling
	// extension.
	smallAllocSeen uint64

	// trace, when non-nil, records every memory sample MemProf-style (see
	// EnableTrace and the tracecmp experiment).
	trace *Trace

	// tel holds the self-observability instruments (all nil when
	// Config.Telemetry is nil — every update degrades to one branch).
	tel instruments
}

// tstate is the per-thread measurement state.
type tstate struct {
	prof    *Profiler
	t       *sim.Thread
	profile *cct.Profile

	pendingLabel string
	// stackVars maps registered stack-variable ranges to their dummy-node
	// prefixes (§7 extension). Thread-local: no locking.
	stackVars ivmap.Map[[]cct.Frame]
	// cache holds the converted frames of the stack prefix covered by the
	// trampoline, so consecutive allocation unwinds reuse it.
	cache []cct.Frame
	// pathBuf is scratch for building sample paths without allocating.
	pathBuf []cct.Frame
}

// Attach wraps the process's runtime events with profiler instrumentation.
// Call before Process.Start / World.Run.
func Attach(p *sim.Process, cfg Config) *Profiler {
	if cfg.Period == 0 {
		cfg.Period = DefaultConfig().Period
	}
	prof := &Profiler{
		cfg:          cfg,
		proc:         p,
		states:       make(map[*sim.Thread]*tstate),
		staticPrefix: make(map[*loadmap.StaticVar][]cct.Frame),
		tel:          newInstruments(cfg.Telemetry),
	}
	p.SetHooks(prof)
	return prof
}

// charge bills profiler-induced cycles to the thread and mirrors them into
// the overhead counter, keeping the simulated and telemetry views of
// measurement cost in lockstep.
func (p *Profiler) charge(t *sim.Thread, cycles uint64) {
	t.ChargeOverhead(cycles)
	p.tel.overheadCycles.Add(cycles)
}

// Config returns the profiler's configuration.
func (p *Profiler) Config() Config { return p.cfg }

// ThreadStart implements sim.Hooks: it programs the thread's PMU and
// creates its CCTs.
func (p *Profiler) ThreadStart(t *sim.Thread) {
	ts := &tstate{
		prof:    p,
		t:       t,
		profile: cct.NewProfile(p.proc.Rank, t.ID, p.cfg.EventString()),
	}
	var sampler pmu.Sampler
	if p.cfg.Mode == ModeMarked {
		sampler = pmu.NewMarked(p.cfg.Marked, p.cfg.Period, ts.handle)
	} else {
		sampler = pmu.NewIBS(p.cfg.Period, ts.handle)
	}
	t.SetSampler(sampler)
	p.charge(t, p.cfg.ThreadSetupCycles)

	p.statesMu.Lock()
	p.states[t] = ts
	p.statesMu.Unlock()
}

// ThreadEnd implements sim.Hooks.
func (p *Profiler) ThreadEnd(t *sim.Thread) {}

// state returns the thread's profiler state.
func (p *Profiler) state(t *sim.Thread) *tstate {
	p.statesMu.Lock()
	ts := p.states[t]
	p.statesMu.Unlock()
	if ts == nil {
		panic("profiler: event from thread without ThreadStart")
	}
	return ts
}

// Label names the calling thread's *next* allocation; views display it
// beside the allocation call path (standing in for the paper's manual
// source annotation of figures).
func (p *Profiler) Label(t *sim.Thread, name string) {
	p.state(t).pendingLabel = name
}

// OnAlloc implements sim.Hooks: the malloc-family wrapper.
func (p *Profiler) OnAlloc(t *sim.Thread, addr mem.Addr, size uint64, kind sim.AllocKind) {
	p.charge(t, p.cfg.WrapCycles)
	ts := p.state(t)
	label := ts.pendingLabel
	ts.pendingLabel = ""
	if !p.cfg.TrackAllocations {
		return
	}
	if p.cfg.SizeThreshold > 0 && size < p.cfg.SizeThreshold && !p.trackSmallAlloc() {
		p.statesMu.Lock()
		p.skippedAllocs++
		p.statesMu.Unlock()
		p.tel.allocSkipped.Inc()
		return
	}

	// Unwind the allocation calling context. With the trampoline, only the
	// suffix above the marked frame must be walked; without it, the whole
	// stack is unwound every time.
	frames := t.Frames()
	depth := len(frames)
	known := 0
	if p.cfg.UseTrampoline {
		known = t.TrampolineDepth()
		if known > len(ts.cache) {
			known = len(ts.cache)
		}
		if known > 0 {
			p.tel.trampHits.Inc()
			p.tel.trampFramesSaved.Add(uint64(known))
		} else {
			p.tel.trampMisses.Inc()
		}
	}
	p.charge(t, p.cfg.contextCost()+p.cfg.AllocUnwindBase+
		p.cfg.UnwindFrameCycles*uint64(depth-known))

	// Rebuild the cached converted stack: reuse the known prefix, convert
	// the suffix.
	ts.cache = ts.cache[:known]
	for i := known; i < depth; i++ {
		ts.cache = append(ts.cache, callFrame(frames[i]))
	}
	t.SetTrampolineDepth(depth)

	// Allocation context = stack + allocation statement + allocator entry
	// + heap-data mark. Copied so it stays immutable.
	prefix := make([]cct.Frame, 0, depth+3)
	prefix = append(prefix, ts.cache...)
	prefix = append(prefix, stmtFrameAt(t))
	prefix = append(prefix, cct.Frame{Kind: cct.KindCall, Module: "libc", Name: kind.String(), File: "stdlib.h"})
	prefix = append(prefix, cct.Frame{Kind: cct.KindHeapData, Name: label})

	blk := &heapBlock{prefix: prefix, size: size}
	p.blocksMu.Lock()
	// A racing free of an overlapping stale range cannot happen (allocator
	// hands out disjoint live ranges), so Insert only fails on profiler
	// bookkeeping bugs.
	if err := p.blocks.Insert(uint64(addr), uint64(addr)+size, blk); err != nil {
		p.blocksMu.Unlock()
		panic("profiler: heap map corrupt: " + err.Error())
	}
	p.trackedAllocs++
	p.blocksMu.Unlock()
	p.tel.allocTracked.Inc()
	p.tel.liveBlocks.Add(1)
}

// OnFree implements sim.Hooks: frees are always wrapped (cheaply — no
// calling context is collected for them) so stale ranges never
// mis-attribute later samples.
func (p *Profiler) OnFree(t *sim.Thread, addr mem.Addr, size uint64) {
	p.charge(t, p.cfg.WrapCycles)
	p.blocksMu.Lock()
	_, tracked := p.blocks.RemoveAt(uint64(addr))
	p.blocksMu.Unlock()
	if tracked {
		p.tel.liveBlocks.Add(-1)
	}
}

// handle is the PMU interrupt handler, running on the sampled thread.
func (ts *tstate) handle(s *pmu.Sample) {
	t := ts.t
	prof := ts.prof
	cfg := &prof.cfg
	frames := t.Frames()
	depth := len(frames)
	prof.charge(t, cfg.SampleBaseCycles+cfg.UnwindFrameCycles*uint64(depth))
	prof.tel.samplesTaken.Inc()
	prof.tel.unwindDepth.Observe(uint64(depth))

	ts.recordTrace(s)

	ip := s.PreciseIP
	if cfg.UseSkidIP {
		ip = s.SkidIP
	} else if s.SkidIP != s.PreciseIP {
		prof.tel.samplesSkid.Inc()
	}
	leaf, ok := ts.leafFor(ip)
	if !ok {
		prof.tel.samplesDropped.Inc()
		return // IP in unloaded module; drop, as the real tool must
	}

	var v metric.Vector
	v[metric.Samples] = 1
	if !s.IsMem {
		ts.record(cct.ClassNonMem, nil, frames, leaf, &v)
		return
	}
	mi := &s.Mem
	v[metric.Latency] = mi.Latency
	v[sourceMetric(mi)] = 1
	if mi.TLBMiss {
		v[metric.TLBMiss] = 1
	}
	if mi.Write {
		v[metric.Stores] = 1
	}

	class, varPrefix := ts.prof.classify(mi.EA)
	if class == cct.ClassUnknown {
		if prefix, ok := ts.stackVarPrefix(mi.EA); ok {
			varPrefix = prefix
		}
	}
	ts.record(class, varPrefix, frames, leaf, &v)
}

// record builds prefix ++ stack ++ leaf in the thread's scratch buffer and
// attributes the vector in the class's tree.
func (ts *tstate) record(class cct.Class, prefix []cct.Frame, frames []sim.Frame, leaf cct.Frame, v *metric.Vector) {
	buf := ts.pathBuf[:0]
	buf = append(buf, prefix...)
	for _, f := range frames {
		buf = append(buf, callFrame(f))
	}
	buf = append(buf, leaf)
	ts.pathBuf = buf
	ts.profile.Trees[class].AddSample(buf, v)
}

// classify resolves an effective address to its storage class and, for heap
// and static data, the variable prefix to hang the access path under.
func (p *Profiler) classify(ea mem.Addr) (cct.Class, []cct.Frame) {
	p.blocksMu.RLock()
	blk, ok := p.blocks.Lookup(uint64(ea))
	p.blocksMu.RUnlock()
	p.tel.heapLookups.Inc()
	if ok {
		p.tel.heapHits.Inc()
		return cct.ClassHeap, blk.prefix
	}
	if sv, found := p.proc.LoadMap.FindStatic(ea); found {
		p.staticPrefixMu.Lock()
		fr, cached := p.staticPrefix[sv]
		if !cached {
			fr = []cct.Frame{{Kind: cct.KindStaticVar, Module: sv.Module.Name, Name: sv.Name}}
			p.staticPrefix[sv] = fr
		}
		p.staticPrefixMu.Unlock()
		return cct.ClassStatic, fr
	}
	return cct.ClassUnknown, nil
}

// leafFor resolves a sampled IP to its statement frame. The unwinder's leaf
// is adjusted to the PMU's precise IP (or deliberately the skid IP under
// the ablation flag); an IP that no longer resolves (module unloaded)
// reports false.
func (ts *tstate) leafFor(ip uint64) (cct.Frame, bool) {
	mod, fn, line, ok := ts.t.Proc.LoadMap.ResolveIP(ip)
	if !ok {
		return cct.Frame{}, false
	}
	return cct.Frame{Kind: cct.KindStmt, Module: mod.Name, Name: fn.Name, File: fn.File, Line: line}, true
}

// callFrame converts a live stack frame to its CCT identity.
func callFrame(f sim.Frame) cct.Frame {
	return cct.Frame{
		Kind:   cct.KindCall,
		Module: f.Fn.Module.Name,
		Name:   f.Fn.Name,
		File:   f.Fn.File,
		Line:   f.CallLine,
	}
}

// stmtFrameAt is the statement frame for the thread's current position
// (used as the allocation point in allocation contexts).
func stmtFrameAt(t *sim.Thread) cct.Frame {
	fn := t.Func()
	return cct.Frame{Kind: cct.KindStmt, Module: fn.Module.Name, Name: fn.Name, File: fn.File, Line: t.Line()}
}

// sourceMetric maps a data source to its metric id.
func sourceMetric(mi *pmu.MemInfo) metric.ID {
	switch mi.Source {
	case cache.SrcL1:
		return metric.FromL1
	case cache.SrcL2:
		return metric.FromL2
	case cache.SrcL3:
		return metric.FromL3
	case cache.SrcRemoteL3:
		return metric.FromRL3
	case cache.SrcLocalDRAM:
		return metric.FromLMEM
	default:
		return metric.FromRMEM
	}
}

// Profiles returns the per-thread profiles collected so far, ordered by
// thread id. Call after the process finished.
func (p *Profiler) Profiles() []*cct.Profile {
	p.statesMu.Lock()
	defer p.statesMu.Unlock()
	out := make([]*cct.Profile, 0, len(p.states))
	for _, ts := range p.states {
		out = append(out, ts.profile)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Thread < out[j].Thread })
	return out
}

// Stats reports allocation-tracking decisions.
func (p *Profiler) Stats() (tracked, skipped uint64, liveTracked int) {
	p.blocksMu.RLock()
	live := p.blocks.Len()
	p.blocksMu.RUnlock()
	p.statesMu.Lock()
	defer p.statesMu.Unlock()
	return p.trackedAllocs, p.skippedAllocs, live
}
