package profiler

// Self-observability instruments (ISSUE: the paper claims <3% time and
// ~7% space overhead; these are the numbers that let the reproduction
// check that claim against itself). Every instrument is resolved once at
// Attach; with Config.Telemetry nil each field stays nil and every update
// is a single branch, so an uninstrumented profiler's hot path is
// unchanged within noise.

import "dcprof/internal/telemetry"

// instruments bundles the profiler's registry handles.
type instruments struct {
	// samplesTaken counts PMU interrupts handled; samplesDropped those
	// whose IP resolved to no loaded module; samplesSkid those where the
	// precise-IP correction actually moved the attribution.
	samplesTaken   *telemetry.Counter
	samplesDropped *telemetry.Counter
	samplesSkid    *telemetry.Counter
	// unwindDepth is the distribution of stack depths unwound per sample —
	// the direct driver of per-sample cost (UnwindFrameCycles × depth).
	unwindDepth *telemetry.Histogram
	// trampHits counts allocation unwinds shortened by the trampoline,
	// trampMisses full unwinds, trampFramesSaved the frames not re-walked.
	trampHits        *telemetry.Counter
	trampMisses      *telemetry.Counter
	trampFramesSaved *telemetry.Counter
	// heapLookups counts effective-address classifications against the
	// heap map; heapHits those that landed in a tracked block.
	heapLookups *telemetry.Counter
	heapHits    *telemetry.Counter
	// allocTracked / allocSkipped count allocation-tracking decisions;
	// allocSkipped is the 4 KiB-threshold fast path.
	allocTracked *telemetry.Counter
	allocSkipped *telemetry.Counter
	// overheadCycles mirrors every simulated cycle the profiler charges to
	// an application thread — the numerator of the paper's overhead table.
	overheadCycles *telemetry.Counter
	// liveBlocks is the tracked-heap-block level (and peak).
	liveBlocks *telemetry.Gauge
}

// newInstruments resolves the bundle against reg; with reg nil every field
// is nil and updates no-op.
func newInstruments(reg *telemetry.Registry) instruments {
	return instruments{
		samplesTaken:     reg.Counter("profiler.samples.taken"),
		samplesDropped:   reg.Counter("profiler.samples.dropped"),
		samplesSkid:      reg.Counter("profiler.samples.skid_corrected"),
		unwindDepth:      reg.Histogram("profiler.unwind.depth", telemetry.Pow2Bounds(8)),
		trampHits:        reg.Counter("profiler.trampoline.hits"),
		trampMisses:      reg.Counter("profiler.trampoline.misses"),
		trampFramesSaved: reg.Counter("profiler.trampoline.frames_saved"),
		heapLookups:      reg.Counter("profiler.heapmap.lookups"),
		heapHits:         reg.Counter("profiler.heapmap.hits"),
		allocTracked:     reg.Counter("profiler.alloc.tracked"),
		allocSkipped:     reg.Counter("profiler.alloc.skipped_small"),
		overheadCycles:   reg.Counter("profiler.overhead.cycles"),
		liveBlocks:       reg.Gauge("profiler.heapmap.live_blocks"),
	}
}
