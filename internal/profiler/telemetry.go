package profiler

// Self-observability instruments (ISSUE: the paper claims <3% time and
// ~7% space overhead; these are the numbers that let the reproduction
// check that claim against itself). Every instrument is resolved once at
// Attach; with Config.Telemetry nil each field stays nil and every update
// is a single branch, so an uninstrumented profiler's hot path is
// unchanged within noise.

import "dcprof/internal/telemetry"

// instruments bundles the profiler's registry handles.
type instruments struct {
	// samplesTaken counts PMU interrupts handled; samplesDropped those
	// whose IP resolved to no loaded module; samplesSkid those where the
	// precise-IP correction actually moved the attribution.
	samplesTaken   *telemetry.Counter
	samplesDropped *telemetry.Counter
	samplesSkid    *telemetry.Counter
	// unwindDepth is the distribution of stack depths unwound per sample —
	// the direct driver of per-sample cost (UnwindFrameCycles × depth).
	unwindDepth *telemetry.Histogram
	// trampHits counts allocation unwinds shortened by the trampoline,
	// trampMisses full unwinds, trampFramesSaved the frames not re-walked.
	trampHits        *telemetry.Counter
	trampMisses      *telemetry.Counter
	trampFramesSaved *telemetry.Counter
	// heapLookups counts effective-address classifications against the
	// heap map; heapHits those that landed in a tracked block;
	// blockCacheHits the hits served by the thread's 1-entry last-block
	// cache without touching the shared snapshot's search.
	heapLookups    *telemetry.Counter
	heapHits       *telemetry.Counter
	blockCacheHits *telemetry.Counter
	// heapRebuilds counts heap-map snapshot rebuilds (one per tracked
	// alloc/free) — the copy-on-write cost that buys lock-free lookups.
	heapRebuilds *telemetry.Counter
	// lastNodeHits counts samples attributed by the last-node cache
	// without any CCT descent; lastNodeMisses those that walked the tree.
	lastNodeHits   *telemetry.Counter
	lastNodeMisses *telemetry.Counter
	// internerFrames is the size of the process-global frame interner.
	internerFrames *telemetry.Gauge
	// allocTracked / allocSkipped count allocation-tracking decisions;
	// allocSkipped is the 4 KiB-threshold fast path.
	allocTracked *telemetry.Counter
	allocSkipped *telemetry.Counter
	// overheadCycles mirrors every simulated cycle the profiler charges to
	// an application thread — the numerator of the paper's overhead table.
	overheadCycles *telemetry.Counter
	// liveBlocks is the tracked-heap-block level (and peak).
	liveBlocks *telemetry.Gauge
}

// newInstruments resolves the bundle against reg; with reg nil every field
// is nil and updates no-op.
func newInstruments(reg *telemetry.Registry) instruments {
	return instruments{
		samplesTaken:     reg.Counter("profiler.samples.taken"),
		samplesDropped:   reg.Counter("profiler.samples.dropped"),
		samplesSkid:      reg.Counter("profiler.samples.skid_corrected"),
		unwindDepth:      reg.Histogram("profiler.unwind.depth", telemetry.Pow2Bounds(8)),
		trampHits:        reg.Counter("profiler.trampoline.hits"),
		trampMisses:      reg.Counter("profiler.trampoline.misses"),
		trampFramesSaved: reg.Counter("profiler.trampoline.frames_saved"),
		heapLookups:      reg.Counter("profiler.heapmap.lookups"),
		heapHits:         reg.Counter("profiler.heapmap.hits"),
		blockCacheHits:   reg.Counter("profiler.heapmap.cache_hits"),
		heapRebuilds:     reg.Counter("profiler.heapmap.snapshot_rebuilds"),
		lastNodeHits:     reg.Counter("profiler.sample.lastnode_hits"),
		lastNodeMisses:   reg.Counter("profiler.sample.lastnode_misses"),
		internerFrames:   reg.Gauge("profiler.cct.interner_frames"),
		allocTracked:     reg.Counter("profiler.alloc.tracked"),
		allocSkipped:     reg.Counter("profiler.alloc.skipped_small"),
		overheadCycles:   reg.Counter("profiler.overhead.cycles"),
		liveBlocks:       reg.Gauge("profiler.heapmap.live_blocks"),
	}
}
