package profiler

// Optional per-sample tracing, in the style of the trace-based tools the
// paper compares against (§2.2, §6: MemProf records every IBS sample and
// allocation event). It exists to make the paper's space argument
// measurable: trace volume grows linearly with execution length and thread
// count, while the CCT profile's size tracks only the number of distinct
// contexts. See the `tracecmp` experiment.

import (
	"bufio"
	"encoding/binary"
	"io"
	"sync"

	"dcprof/internal/mem"
	"dcprof/internal/pmu"
)

// TraceRecord is one traced sample, shaped like MemProf's per-sample event.
type TraceRecord struct {
	// Thread is the recording thread id; Time its clock at the sample.
	Thread int
	Time   uint64
	// PreciseIP and EA identify the instruction and data address.
	PreciseIP uint64
	EA        mem.Addr
	// Latency and Source are the hardware measurements.
	Latency uint64
	Source  uint8
	// Write flags stores.
	Write bool
}

// TraceRecordBytes is the encoded size of one record.
const TraceRecordBytes = 4 + 8 + 8 + 8 + 8 + 1 + 1

// Trace accumulates records from all threads of one profiler.
type Trace struct {
	mu      sync.Mutex
	records []TraceRecord
}

// Len returns the number of records.
func (tr *Trace) Len() int {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return len(tr.records)
}

// Bytes returns the encoded size of the trace.
func (tr *Trace) Bytes() int64 { return int64(tr.Len()) * TraceRecordBytes }

// Records returns a copy of the trace.
func (tr *Trace) Records() []TraceRecord {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	out := make([]TraceRecord, len(tr.records))
	copy(out, tr.records)
	return out
}

func (tr *Trace) append(r TraceRecord) {
	tr.mu.Lock()
	tr.records = append(tr.records, r)
	tr.mu.Unlock()
}

// WriteTo streams the trace in a flat binary format, returning the bytes
// written.
func (tr *Trace) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	recs := tr.Records()
	var buf [TraceRecordBytes]byte
	for _, r := range recs {
		binary.LittleEndian.PutUint32(buf[0:], uint32(r.Thread))
		binary.LittleEndian.PutUint64(buf[4:], r.Time)
		binary.LittleEndian.PutUint64(buf[12:], r.PreciseIP)
		binary.LittleEndian.PutUint64(buf[20:], uint64(r.EA))
		binary.LittleEndian.PutUint64(buf[28:], r.Latency)
		buf[36] = r.Source
		buf[37] = 0
		if r.Write {
			buf[37] = 1
		}
		if _, err := bw.Write(buf[:]); err != nil {
			return 0, err
		}
	}
	if err := bw.Flush(); err != nil {
		return 0, err
	}
	return int64(len(recs)) * TraceRecordBytes, nil
}

// EnableTrace turns on per-sample trace recording (in addition to CCT
// profiling) and returns the trace. Call before the workload runs.
func (p *Profiler) EnableTrace() *Trace {
	p.statesMu.Lock()
	defer p.statesMu.Unlock()
	if p.trace == nil {
		p.trace = &Trace{}
	}
	return p.trace
}

// recordTrace appends a sample to the trace if tracing is enabled.
func (ts *tstate) recordTrace(s *pmu.Sample) {
	tr := ts.prof.trace
	if tr == nil || !s.IsMem {
		return
	}
	tr.append(TraceRecord{
		Thread:    ts.t.ID,
		Time:      ts.t.Clock(),
		PreciseIP: s.PreciseIP,
		EA:        s.Mem.EA,
		Latency:   s.Mem.Latency,
		Source:    uint8(s.Mem.Source),
		Write:     s.Mem.Write,
	})
}
