package cct

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"dcprof/internal/metric"
)

func TestInternDenseIDsAndRoundTrip(t *testing.T) {
	in := NewInterner()
	frames := []Frame{
		{Kind: KindRoot},
		call("main", 0),
		call("solve", 10),
		stmt("solve", 12),
		{Kind: KindHeapData},
		{Kind: KindStaticVar, Module: "exe", Name: "grid"},
	}
	for i, f := range frames {
		if id := in.Intern(f); id != FrameID(i) {
			t.Fatalf("Intern(%v) = %d, want dense id %d", f, id, i)
		}
	}
	if in.Len() != len(frames) {
		t.Fatalf("Len = %d, want %d", in.Len(), len(frames))
	}
	// Re-interning is idempotent and allocates no new IDs.
	for i, f := range frames {
		if id := in.Intern(f); id != FrameID(i) {
			t.Fatalf("re-Intern(%v) = %d, want %d", f, id, i)
		}
		if id, ok := in.LookupID(f); !ok || id != FrameID(i) {
			t.Fatalf("LookupID(%v) = %d,%v, want %d,true", f, id, ok, i)
		}
		if got := in.Resolve(FrameID(i)); got != f {
			t.Fatalf("Resolve(%d) = %v, want %v", i, got, f)
		}
	}
	if in.Len() != len(frames) {
		t.Fatalf("Len after re-intern = %d, want %d", in.Len(), len(frames))
	}
	if _, ok := in.LookupID(call("never", 99)); ok {
		t.Fatal("LookupID of never-interned frame reported ok")
	}
}

func TestInternResolveUnknownPanics(t *testing.T) {
	in := NewInterner()
	in.Intern(call("main", 0))
	defer func() {
		if recover() == nil {
			t.Fatal("Resolve of out-of-range id did not panic")
		}
	}()
	in.Resolve(7)
}

// TestInternConcurrent hammers one interner from many goroutines over an
// overlapping frame set: every goroutine must observe the same frame→ID
// assignment, and resolution must round-trip (run under -race).
func TestInternConcurrent(t *testing.T) {
	const goroutines, distinct = 8, 200
	in := NewInterner()
	got := make([][]FrameID, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ids := make([]FrameID, distinct)
			for i := 0; i < distinct; i++ {
				// Interleave orders so goroutines race on first-intern.
				k := (i*7 + g*13) % distinct
				f := call(fmt.Sprintf("fn%d", k), k)
				ids[k] = in.Intern(f)
				if r := in.Resolve(ids[k]); r.Name != fmt.Sprintf("fn%d", k) {
					panic("resolve mismatch under concurrency")
				}
			}
			got[g] = ids
		}(g)
	}
	wg.Wait()
	if in.Len() != distinct {
		t.Fatalf("Len = %d, want %d distinct", in.Len(), distinct)
	}
	for g := 1; g < goroutines; g++ {
		for k := range got[g] {
			if got[g][k] != got[0][k] {
				t.Fatalf("goroutine %d saw id %d for frame %d, goroutine 0 saw %d",
					g, got[g][k], k, got[0][k])
			}
		}
	}
}

// walkSeq flattens a tree's deterministic pre-order into comparable rows.
func walkSeq(tr *Tree) []string {
	var out []string
	tr.Walk(func(n *Node, depth int) bool {
		out = append(out, fmt.Sprintf("%d|%v|%v", depth, n.Frame, n.Metrics))
		return true
	})
	return out
}

// Property: building a tree through the string-keyed API (AddSample) and
// through pre-interned IDs (AddSampleIDs) yields identical trees — same
// walk order, frames, metrics, node counts. This is the equivalence the
// interning refactor must preserve.
func TestQuickStringAndIDPathsEquivalent(t *testing.T) {
	f := func(seed int64) bool {
		a := randomTree(seed, 30)

		// Rebuild the same random paths through the ID pipeline.
		b := New()
		ref := randomTree(seed, 30) // same sequence; walk it to recover paths
		ref.Walk(func(n *Node, _ int) bool {
			if n.Frame.Kind == KindRoot {
				return true
			}
			var ids []FrameID
			for _, f := range n.Path() {
				ids = append(ids, InternFrame(f))
			}
			v := n.Metrics
			b.InsertPathIDs(ids).Metrics.Add(&v)
			return true
		})

		as, bs := walkSeq(a), walkSeq(b)
		if len(as) != len(bs) {
			return false
		}
		for i := range as {
			if as[i] != bs[i] {
				return false
			}
		}
		return a.Total() == b.Total() && a.NumNodes() == b.NumNodes()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestInlineSpill exercises fanouts past the inline array: children must
// spill to the map, stay findable through both key forms, and keep the
// deterministic Children ordering.
func TestInlineSpill(t *testing.T) {
	tr := New()
	const fanout = nodeInline*3 + 1
	var frames []Frame
	for i := 0; i < fanout; i++ {
		f := call(fmt.Sprintf("f%02d", i), i)
		frames = append(frames, f)
		tr.Root.Child(f).Metrics[metric.Samples] = uint64(i + 1)
	}
	if got := tr.Root.NumChildren(); got != fanout {
		t.Fatalf("NumChildren = %d, want %d", got, fanout)
	}
	for i, f := range frames {
		n, ok := tr.Root.Lookup(f)
		if !ok {
			t.Fatalf("Lookup(%v) missed after spill", f)
		}
		if n.Metrics[metric.Samples] != uint64(i+1) {
			t.Fatalf("child %d metrics clobbered", i)
		}
		if n2 := tr.Root.ChildID(n.ID()); n2 != n {
			t.Fatalf("ChildID(%d) returned a different node", n.ID())
		}
	}
	kids := tr.Root.Children()
	if len(kids) != fanout {
		t.Fatalf("Children returned %d, want %d", len(kids), fanout)
	}
	for i := 1; i < len(kids); i++ {
		if !frameLess(kids[i-1].Frame, kids[i].Frame) {
			t.Fatalf("Children not sorted at %d: %v !< %v", i, kids[i-1].Frame, kids[i].Frame)
		}
	}

	// Merging a spilled node preserves totals and structure.
	cp := tr.Clone()
	cp.Merge(tr)
	if cp.NumNodes() != tr.NumNodes() {
		t.Fatalf("merge changed node count: %d vs %d", cp.NumNodes(), tr.NumNodes())
	}
	want, got := tr.Total(), cp.Total()
	if got[metric.Samples] != 2*want[metric.Samples] {
		t.Fatalf("merge totals: got %d, want %d", got[metric.Samples], 2*want[metric.Samples])
	}
}

// BenchmarkAddSampleHotPathIDs is the profiler's actual attribution path:
// frames interned once, every subsequent sample descends by integer
// comparison. Compare against BenchmarkAddSampleHotPath (string frames) for
// the cost interning removes from the per-sample loop.
func BenchmarkAddSampleHotPathIDs(b *testing.B) {
	tr := New()
	path := []Frame{call("main", 0), call("solve", 10), call("kernel", 20), stmt("kernel", 25)}
	ids := make([]FrameID, len(path))
	for i, f := range path {
		ids[i] = InternFrame(f)
	}
	v := sampleVec(100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.AddSampleIDs(ids, v)
	}
}
