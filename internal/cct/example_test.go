package cct_test

import (
	"fmt"

	"dcprof/internal/cct"
	"dcprof/internal/metric"
)

// Example shows the structural-identity property at the heart of the
// paper's scalability: two threads' profiles with the same allocation call
// path merge into one variable subtree.
func Example() {
	path := []cct.Frame{
		{Kind: cct.KindCall, Module: "exe", Name: "main", File: "main.c"},
		{Kind: cct.KindStmt, Module: "exe", Name: "main", File: "main.c", Line: 7},
		{Kind: cct.KindCall, Module: "libc", Name: "malloc", File: "stdlib.h"},
		{Kind: cct.KindHeapData, Name: "grid"},
		{Kind: cct.KindStmt, Module: "exe", Name: "stencil", File: "stencil.c", Line: 41},
	}
	mk := func(thread int, samples uint64) *cct.Profile {
		p := cct.NewProfile(0, thread, "IBS@4096")
		var v metric.Vector
		v[metric.Samples] = samples
		p.Trees[cct.ClassHeap].AddSample(path, &v)
		return p
	}
	a, b := mk(0, 10), mk(1, 32)
	before := a.NumNodes()
	a.Merge(b)
	total := a.Total()
	fmt.Printf("nodes before merge: %d, after: %d\n", before, a.NumNodes())
	fmt.Printf("samples: %d\n", total[metric.Samples])
	// Output:
	// nodes before merge: 9, after: 9
	// samples: 42
}
