package cct

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"dcprof/internal/metric"
)

func call(name string, line int) Frame {
	return Frame{Kind: KindCall, Module: "exe", Name: name, File: name + ".c", Line: line}
}

func stmt(fn string, line int) Frame {
	return Frame{Kind: KindStmt, Module: "exe", Name: fn, File: fn + ".c", Line: line}
}

func sampleVec(lat uint64) *metric.Vector {
	var v metric.Vector
	v[metric.Samples] = 1
	v[metric.Latency] = lat
	return &v
}

func TestInsertCoalescesPrefixes(t *testing.T) {
	tr := New()
	pathA := []Frame{call("main", 0), call("solve", 10), stmt("solve", 12)}
	pathB := []Frame{call("main", 0), call("solve", 10), stmt("solve", 15)}
	tr.AddSample(pathA, sampleVec(100))
	tr.AddSample(pathB, sampleVec(200))
	// root + main + solve + two leaves = 5 nodes.
	if got := tr.NumNodes(); got != 5 {
		t.Errorf("NumNodes = %d, want 5", got)
	}
	// Same path again adds metrics, not nodes.
	tr.AddSample(pathA, sampleVec(50))
	if got := tr.NumNodes(); got != 5 {
		t.Errorf("NumNodes after re-add = %d, want 5", got)
	}
	total := tr.Total()
	if total[metric.Samples] != 3 || total[metric.Latency] != 350 {
		t.Errorf("total = %v", total.String())
	}
}

func TestInclusiveExclusive(t *testing.T) {
	tr := New()
	leafA := tr.AddSample([]Frame{call("main", 0), call("a", 5), stmt("a", 6)}, sampleVec(10))
	tr.AddSample([]Frame{call("main", 0), call("b", 7), stmt("b", 8)}, sampleVec(20))
	mainNode, ok := tr.Root.Lookup(call("main", 0))
	if !ok {
		t.Fatal("main node missing")
	}
	inc := mainNode.Inclusive()
	if inc[metric.Latency] != 30 || inc[metric.Samples] != 2 {
		t.Errorf("main inclusive = %v", inc.String())
	}
	if mainNode.Metrics[metric.Latency] != 0 {
		t.Error("internal node has exclusive metrics")
	}
	if leafA.Metrics[metric.Latency] != 10 {
		t.Error("leaf exclusive wrong")
	}
}

func TestPath(t *testing.T) {
	tr := New()
	frames := []Frame{call("main", 0), call("a", 5), stmt("a", 6)}
	n := tr.InsertPath(frames)
	got := n.Path()
	if len(got) != 3 {
		t.Fatalf("path length %d", len(got))
	}
	for i := range frames {
		if got[i] != frames[i] {
			t.Errorf("path[%d] = %v, want %v", i, got[i], frames[i])
		}
	}
	if len(tr.Root.Path()) != 0 {
		t.Error("root path should be empty")
	}
}

func TestMergePreservesTotals(t *testing.T) {
	a, b := New(), New()
	a.AddSample([]Frame{call("main", 0), stmt("main", 3)}, sampleVec(100))
	b.AddSample([]Frame{call("main", 0), stmt("main", 3)}, sampleVec(50)) // same path
	b.AddSample([]Frame{call("main", 0), call("x", 9), stmt("x", 10)}, sampleVec(25))

	at, bt := a.Total(), b.Total()
	a.Merge(b)
	got := a.Total()
	if got[metric.Latency] != at[metric.Latency]+bt[metric.Latency] {
		t.Errorf("merged latency %d, want %d", got[metric.Latency], at[metric.Latency]+bt[metric.Latency])
	}
	// Shared path merged into one leaf.
	n, _ := a.Root.Lookup(call("main", 0))
	leaf, ok := n.Lookup(stmt("main", 3))
	if !ok || leaf.Metrics[metric.Latency] != 150 {
		t.Error("shared leaf not coalesced")
	}
	// b is untouched.
	if bt2 := b.Total(); bt2 != bt {
		t.Error("merge mutated the source tree")
	}
}

func TestHeapVariableStructuralIdentity(t *testing.T) {
	// Two threads sample the same heap variable: same allocation path, so
	// merging coalesces them under one variable subtree (the Figure 2
	// scenario: many allocations at one call path = one logical variable).
	allocPath := []Frame{call("main", 0), call("hypre_CAlloc", 170), stmt("hypre_CAlloc", 175)}
	mark := Frame{Kind: KindHeapData, Name: "S_diag_j"}

	t1, t2 := New(), New()
	access1 := append(append(append([]Frame{}, allocPath...), mark), call("main", 0), stmt("spmv", 480))
	access2 := append(append(append([]Frame{}, allocPath...), mark), call("main", 0), stmt("spmv", 482))
	t1.AddSample(access1, sampleVec(300))
	t2.AddSample(access2, sampleVec(400))

	t1.Merge(t2)
	// Walk down the alloc path to the mark node.
	n := t1.Root
	for _, f := range allocPath {
		var ok bool
		n, ok = n.Lookup(f)
		if !ok {
			t.Fatalf("alloc path frame %v missing after merge", f)
		}
	}
	markNode, ok := n.Lookup(mark)
	if !ok {
		t.Fatal("heap-data mark missing")
	}
	inc := markNode.Inclusive()
	if inc[metric.Latency] != 700 {
		t.Errorf("variable inclusive latency = %d, want 700", inc[metric.Latency])
	}
	if markNode.NumChildren() != 1 {
		t.Errorf("access roots under mark = %d, want 1 (coalesced main)", markNode.NumChildren())
	}
}

func TestWalkOrderDeterministic(t *testing.T) {
	build := func() []string {
		tr := New()
		tr.AddSample([]Frame{call("zeta", 1), stmt("zeta", 2)}, sampleVec(1))
		tr.AddSample([]Frame{call("alpha", 1), stmt("alpha", 2)}, sampleVec(1))
		tr.AddSample([]Frame{call("mid", 1), stmt("mid", 2)}, sampleVec(1))
		var names []string
		tr.Walk(func(n *Node, _ int) bool {
			names = append(names, n.Frame.Name)
			return true
		})
		return names
	}
	a, b := build(), build()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("walk order not deterministic: %v vs %v", a, b)
		}
	}
	// Children sorted by name: alpha before mid before zeta.
	if a[1] != "alpha" {
		t.Errorf("first child %q, want alpha", a[1])
	}
}

func TestWalkPrune(t *testing.T) {
	tr := New()
	tr.AddSample([]Frame{call("main", 0), call("deep", 1), stmt("deep", 2)}, sampleVec(1))
	visited := 0
	tr.Walk(func(n *Node, depth int) bool {
		visited++
		return depth < 1 // prune below main
	})
	if visited != 2 { // root + main
		t.Errorf("visited %d nodes, want 2", visited)
	}
}

func TestProfileMergeAndTotals(t *testing.T) {
	p1 := NewProfile(0, 0, "IBS@4096")
	p2 := NewProfile(0, 1, "IBS@4096")
	p1.Trees[ClassHeap].AddSample([]Frame{call("m", 0), stmt("m", 1)}, sampleVec(10))
	p2.Trees[ClassHeap].AddSample([]Frame{call("m", 0), stmt("m", 1)}, sampleVec(20))
	p2.Trees[ClassStatic].AddSample([]Frame{{Kind: KindStaticVar, Module: "exe", Name: "g"}, stmt("m", 2)}, sampleVec(5))

	p1.Merge(p2)
	total := p1.Total()
	if total[metric.Latency] != 35 {
		t.Errorf("total latency = %d, want 35", total[metric.Latency])
	}
	if p1.Trees[ClassHeap].Total()[metric.Latency] != 30 {
		t.Error("heap class total wrong")
	}
	if p1.Trees[ClassStatic].Total()[metric.Latency] != 5 {
		t.Error("static class total wrong")
	}
	if p1.NumNodes() == 0 {
		t.Error("NumNodes = 0")
	}
}

func TestClassAndKindStrings(t *testing.T) {
	if ClassHeap.String() != "heap data" || ClassNonMem.String() != "no memory access" {
		t.Error("class names wrong")
	}
	if KindHeapData.String() != "heap-data" || KindStaticVar.String() != "static-var" {
		t.Error("kind names wrong")
	}
}

// randomTree builds a tree from a seeded set of random paths.
func randomTree(seed int64, paths int) *Tree {
	rng := rand.New(rand.NewSource(seed))
	tr := New()
	fns := []string{"main", "a", "b", "c", "d"}
	for i := 0; i < paths; i++ {
		depth := rng.Intn(4) + 1
		var path []Frame
		for d := 0; d < depth; d++ {
			path = append(path, call(fns[rng.Intn(len(fns))], rng.Intn(5)))
		}
		path = append(path, stmt(fns[rng.Intn(len(fns))], rng.Intn(50)))
		tr.AddSample(path, sampleVec(uint64(rng.Intn(1000))))
	}
	return tr
}

// Property: merge is commutative and associative in totals and node counts.
func TestQuickMergeCommutesAssociates(t *testing.T) {
	f := func(s1, s2, s3 int64) bool {
		a1, b1, c1 := randomTree(s1, 20), randomTree(s2, 20), randomTree(s3, 20)
		a2, b2, c2 := randomTree(s1, 20), randomTree(s2, 20), randomTree(s3, 20)

		// (a+b)+c
		a1.Merge(b1)
		a1.Merge(c1)
		// a+(c+b)
		c2.Merge(b2)
		a2.Merge(c2)

		if a1.Total() != a2.Total() {
			return false
		}
		return a1.NumNodes() == a2.NumNodes()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: total metrics equal the sum of inserted vectors regardless of
// path structure.
func TestQuickTotalsConserved(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := New()
		var wantLat, wantSamples uint64
		for i := 0; i < int(n%50)+1; i++ {
			lat := uint64(rng.Intn(500))
			path := []Frame{call("main", 0), stmt("main", rng.Intn(10))}
			tr.AddSample(path, sampleVec(lat))
			wantLat += lat
			wantSamples++
		}
		tot := tr.Total()
		return tot[metric.Latency] == wantLat && tot[metric.Samples] == wantSamples
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkAddSampleHotPath(b *testing.B) {
	tr := New()
	path := []Frame{call("main", 0), call("solve", 10), call("kernel", 20), stmt("kernel", 25)}
	v := sampleVec(100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.AddSample(path, v)
	}
}

func BenchmarkMergeLargeTrees(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		a := randomTree(1, 2000)
		c := randomTree(2, 2000)
		b.StartTimer()
		a.Merge(c)
	}
}

// treeFingerprint flattens a tree to a deterministic (path, metrics) map so
// structurally equal trees compare equal regardless of how they were built.
func treeFingerprint(tr *Tree) map[string]metric.Vector {
	fp := make(map[string]metric.Vector)
	tr.Walk(func(n *Node, _ int) bool {
		key := fmt.Sprintf("%v", n.Path())
		v := fp[key]
		v.Add(&n.Metrics)
		fp[key] = v
		return true
	})
	return fp
}

// Property: Absorb (destructive, adoption-based) must produce exactly the
// tree Merge (copying) produces, for any pair of random trees.
func TestQuickAbsorbMatchesMerge(t *testing.T) {
	f := func(s1, s2 int64) bool {
		merged := randomTree(s1, 25)
		merged.Merge(randomTree(s2, 25))

		absorbed := randomTree(s1, 25)
		absorbed.Absorb(randomTree(s2, 25))

		return reflect.DeepEqual(treeFingerprint(merged), treeFingerprint(absorbed))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestAbsorbAdoptsDisjoint: absorbing a tree with a disjoint root subtree
// must move the nodes, not copy them, and leave parent pointers correct.
func TestAbsorbAdoptsDisjoint(t *testing.T) {
	a, b := New(), New()
	a.AddSample([]Frame{call("left", 1), stmt("left", 10)}, sampleVec(3))
	b.AddSample([]Frame{call("right", 2), stmt("right", 20)}, sampleVec(4))
	moved := b.Root.Children()[0]

	a.Absorb(b)
	got, ok := a.Root.Lookup(call("right", 2))
	if !ok {
		t.Fatal("absorbed subtree not reachable")
	}
	if got != moved {
		t.Error("disjoint subtree was copied, not adopted")
	}
	if got.Parent() != a.Root {
		t.Error("adopted subtree's parent not re-pointed")
	}
	if a.Total()[metric.Latency] != 7 {
		t.Errorf("total = %d, want 7", a.Total()[metric.Latency])
	}
}

// TestMergeChildOverlap: merging into an existing child must fold metrics
// recursively rather than attach a duplicate child.
func TestMergeChildOverlap(t *testing.T) {
	a, b := New(), New()
	a.AddSample([]Frame{call("f", 1), stmt("f", 10)}, sampleVec(5))
	b.AddSample([]Frame{call("f", 1), stmt("f", 10)}, sampleVec(6))
	b.Root.EachChild(func(c *Node) { a.Root.MergeChild(c) })
	if n := a.Root.NumChildren(); n != 1 {
		t.Fatalf("root has %d children, want 1", n)
	}
	if a.Total()[metric.Latency] != 11 {
		t.Errorf("total = %d, want 11", a.Total()[metric.Latency])
	}
}

// TestAttachSpillsToMap: adoption through MergeChild must follow the same
// inline-then-map layout as ChildID so lookups keep working past the
// inline fanout.
func TestAttachSpillsToMap(t *testing.T) {
	a, b := New(), New()
	for i := 0; i < nodeInline+3; i++ {
		b.AddSample([]Frame{call("f", i)}, sampleVec(1))
	}
	b.Root.EachChild(func(c *Node) { a.Root.MergeChild(c) })
	if n := a.Root.NumChildren(); n != nodeInline+3 {
		t.Fatalf("root has %d children, want %d", n, nodeInline+3)
	}
	for i := 0; i < nodeInline+3; i++ {
		if _, ok := a.Root.Lookup(call("f", i)); !ok {
			t.Errorf("child %d unreachable after adoption", i)
		}
	}
}
