package cct

// Time-windowed metric deltas: the temporal sidecar's in-memory form.
//
// The cumulative CCT answers "where did the metric go over the whole
// run"; the TimeSeries answers "when". The profiler buckets each sample's
// metric vector by the thread's sim-clock window in addition to adding it
// to the CCT node, so a per-node time series rides alongside the profile
// without duplicating the tree: a TimeDelta points at the node it
// annotates, and the windows hold only the per-window increments.
//
// The types live here rather than in internal/temporal because they are
// part of the Profile itself (Profile.Temporal) — the writer, reader, and
// every app that plumbs []*Profile around carries them for free, and the
// temporal package (recorder, merge index, phase detection) can import
// cct without a cycle.

import "dcprof/internal/metric"

// TimeDelta is one node's metric increment within one time window.
type TimeDelta struct {
	// Class is the storage class of the tree Node belongs to.
	Class Class
	// Node is the CCT node the metrics were attributed to. It is a node
	// of the owning Profile's Trees[Class]; the on-disk encoding refers
	// to it by its deterministic pre-order index in that tree.
	Node *Node
	// Metrics is the increment recorded during the window (not a
	// cumulative total).
	Metrics metric.Vector
}

// TimeWindow is the set of metric deltas recorded during one fixed-width
// window of sim time.
type TimeWindow struct {
	// Index is the window number: the window covers sim cycles
	// [Index*Width, (Index+1)*Width).
	Index uint64
	// Deltas holds the per-node increments. Order is unspecified in
	// memory; the encoder sorts by (class, node pre-order index).
	Deltas []TimeDelta
}

// TimeSeries is one profile's temporal sidecar: fixed-width windows of
// per-node metric deltas. Windows are stored in ascending Index order
// with gaps where no samples landed (idle windows cost nothing).
type TimeSeries struct {
	// Width is the window width in sim cycles.
	Width uint64
	// Windows holds the non-empty windows in ascending Index order.
	Windows []TimeWindow
}

// Span returns the series' covered sim-time range [start, end) in cycles,
// from the first window's start to the last window's end. Zero for an
// empty series.
func (ts *TimeSeries) Span() (start, end uint64) {
	if ts == nil || len(ts.Windows) == 0 {
		return 0, 0
	}
	first := ts.Windows[0].Index
	last := ts.Windows[len(ts.Windows)-1].Index
	return first * ts.Width, (last + 1) * ts.Width
}

// NumDeltas counts delta records across all windows.
func (ts *TimeSeries) NumDeltas() int {
	if ts == nil {
		return 0
	}
	n := 0
	for i := range ts.Windows {
		n += len(ts.Windows[i].Deltas)
	}
	return n
}
