package cct

// Frame interning: the sample hot path must not hash three strings per
// stack frame per sample (ISSUE 5). An Interner assigns each distinct
// Frame a dense uint32 FrameID once; everything downstream — CCT child
// lookup, path insertion, tree merge — compares and hashes integers.
//
// One process-global interner (DefaultInterner) backs every tree, so
// FrameIDs are directly comparable across threads, profiles, and decoded
// files: merge never needs to translate between ID spaces.

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// FrameID is the dense identifier of an interned Frame. IDs are assigned
// in first-intern order starting at 0 and are stable for the life of the
// process.
type FrameID uint32

// Interner is a concurrency-safe Frame → FrameID map with lock-free reads
// on both directions of the mapping. Interning a frame already seen takes
// one sync.Map load; resolving an ID takes one atomic pointer load and an
// index — neither blocks, so samplers on every thread share one interner
// without contention.
type Interner struct {
	ids sync.Map // Frame -> FrameID

	mu     sync.Mutex
	frames []Frame                 // append-only; guarded by mu
	snap   atomic.Pointer[[]Frame] // published prefix of frames for readers
}

// NewInterner creates an empty interner.
func NewInterner() *Interner { return &Interner{} }

// Intern returns the frame's ID, assigning the next dense ID on first
// sight. Safe for concurrent use.
func (in *Interner) Intern(f Frame) FrameID {
	if id, ok := in.ids.Load(f); ok {
		return id.(FrameID)
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	// Re-check: another thread may have interned f while we waited.
	if id, ok := in.ids.Load(f); ok {
		return id.(FrameID)
	}
	id := FrameID(len(in.frames))
	in.frames = append(in.frames, f)
	// Publish the new length *before* the id becomes loadable, so any
	// reader that obtains id can resolve it. In-place append is safe:
	// previously published slice headers have smaller lengths and never
	// index the new element.
	snap := in.frames
	in.snap.Store(&snap)
	in.ids.Store(f, id)
	return id
}

// LookupID returns the frame's ID without interning it.
func (in *Interner) LookupID(f Frame) (FrameID, bool) {
	if id, ok := in.ids.Load(f); ok {
		return id.(FrameID), true
	}
	return 0, false
}

// Resolve returns the frame for an ID previously returned by Intern.
func (in *Interner) Resolve(id FrameID) Frame {
	s := in.snap.Load()
	if s == nil || int(id) >= len(*s) {
		panic(fmt.Sprintf("cct: resolve of unknown FrameID %d", id))
	}
	return (*s)[id]
}

// Len returns the number of distinct frames interned so far.
func (in *Interner) Len() int {
	s := in.snap.Load()
	if s == nil {
		return 0
	}
	return len(*s)
}

// defaultInterner is the process-wide ID space every Tree uses, so trees
// built by different threads (or decoded from different files) merge by
// integer comparison alone.
var defaultInterner = NewInterner()

// DefaultInterner returns the process-global interner.
func DefaultInterner() *Interner { return defaultInterner }

// InternFrame interns f in the default interner.
func InternFrame(f Frame) FrameID { return defaultInterner.Intern(f) }

// FrameByID resolves an ID from the default interner.
func FrameByID(id FrameID) Frame { return defaultInterner.Resolve(id) }
