// Package cct implements calling context trees (CCTs), the compact profile
// representation at the heart of the paper's scalability story.
//
// A CCT coalesces common call-path prefixes: the root is the thread start,
// internal nodes are call sites, and leaves are statements where samples
// were taken. The data-centric extension adds two node kinds: a per-variable
// dummy node for statics, and — for heap data — the allocation call path
// prepended to every access path, separated by a "heap data accesses" mark.
// Because the variable identity is *structural* (the allocation path itself,
// or the static symbol), merging profiles across threads and processes is a
// plain recursive tree merge that adds metric vectors.
package cct

import (
	"fmt"
	"sort"

	"dcprof/internal/metric"
)

// Kind discriminates CCT node frames.
type Kind uint8

const (
	// KindRoot is the tree root (thread start / storage-class root).
	KindRoot Kind = iota
	// KindCall is a procedure frame entered from a call site.
	KindCall
	// KindStmt is a leaf statement (a sampled instruction or an allocation
	// point).
	KindStmt
	// KindStaticVar is the dummy node naming a static variable; all access
	// paths to that variable hang beneath it.
	KindStaticVar
	// KindHeapData is the "heap data accesses" separator between a heap
	// variable's allocation path and the access paths to it.
	KindHeapData
	// KindStackVar is the dummy node naming a registered stack variable
	// (the paper's §7 extension: stack-allocated data attribution).
	KindStackVar
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindRoot:
		return "root"
	case KindCall:
		return "call"
	case KindStmt:
		return "stmt"
	case KindStaticVar:
		return "static-var"
	case KindHeapData:
		return "heap-data"
	case KindStackVar:
		return "stack-var"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Frame identifies a CCT node within its parent. Frames are comparable and
// name symbols by strings, so identical paths from different threads,
// processes, or profile files merge structurally.
type Frame struct {
	// Kind tags the node.
	Kind Kind
	// Module is the load module name (calls, statements, static vars).
	Module string
	// Name is the function name (calls/statements), the variable name
	// (static vars), or the optional heap variable label (heap-data marks).
	Name string
	// File is the source file for calls and statements.
	File string
	// Line is the call-site line (KindCall), the statement line (KindStmt),
	// or zero.
	Line int
}

// String renders the frame for views and debugging.
func (f Frame) String() string {
	switch f.Kind {
	case KindRoot:
		return "<root>"
	case KindCall:
		if f.Line == 0 {
			return f.Name
		}
		return fmt.Sprintf("%s (called from line %d)", f.Name, f.Line)
	case KindStmt:
		return fmt.Sprintf("%s:%d [%s]", f.File, f.Line, f.Name)
	case KindStaticVar:
		return fmt.Sprintf("static %s [%s]", f.Name, f.Module)
	case KindStackVar:
		return fmt.Sprintf("stack %s [%s]", f.Name, f.Module)
	case KindHeapData:
		if f.Name != "" {
			return fmt.Sprintf("heap data accesses <%s>", f.Name)
		}
		return "heap data accesses"
	default:
		return fmt.Sprintf("?%d", f.Kind)
	}
}

// nodeInline is the fanout kept in the node itself before falling back to
// a map. Most CCT interior nodes have a handful of children (call sites of
// one function), so child lookup on the sample hot path is usually a short
// integer scan with no hashing at all.
const nodeInline = 4

// Node is one CCT node. Children are keyed by interned FrameID — path
// insertion and merge compare integers, never strings. The resolved Frame
// is kept on the node too, so display and deterministic ordering
// (Children, Walk, the on-disk encoding) are unchanged by interning.
type Node struct {
	// Frame identifies the node within its parent.
	Frame Frame
	// Metrics holds the node's exclusive metric values (samples attributed
	// directly to this node; usually only leaves have nonzero metrics).
	Metrics metric.Vector

	parent *Node
	id     FrameID

	// scratch is single-owner bookkeeping space for whichever component
	// animates the node's tree; the temporal recorder uses it as a
	// current-window stamp so the per-sample "already seen this window"
	// check is one field compare instead of a map lookup. Trees are
	// per-thread while samples flow, so there is exactly one writer.
	scratch uint64

	// First nodeInline children live inline; the rest spill to a map.
	nInline   uint8
	inlineIDs [nodeInline]FrameID
	inline    [nodeInline]*Node
	children  map[FrameID]*Node
}

// Parent returns the node's parent (nil at the root).
func (n *Node) Parent() *Node { return n.parent }

// Scratch returns the node's scratch word (see the field doc).
func (n *Node) Scratch() uint64 { return n.scratch }

// SetScratch stores the node's scratch word (see the field doc).
func (n *Node) SetScratch(s uint64) { n.scratch = s }

// ID returns the node's interned frame ID (in the default interner).
func (n *Node) ID() FrameID { return n.id }

// Child returns the child with the given frame, creating it if absent.
func (n *Node) Child(f Frame) *Node {
	return n.ChildID(InternFrame(f))
}

// ChildID returns the child with the given interned frame, creating it if
// absent — the allocation-free hot path of InsertPathIDs.
func (n *Node) ChildID(id FrameID) *Node {
	for i := uint8(0); i < n.nInline; i++ {
		if n.inlineIDs[i] == id {
			return n.inline[i]
		}
	}
	if c, ok := n.children[id]; ok {
		return c
	}
	c := &Node{Frame: FrameByID(id), parent: n, id: id}
	n.attach(c)
	return c
}

// attach links c — whose id must not already key a child of n — into n's
// child set: inline slots first, map spill after.
func (n *Node) attach(c *Node) {
	if n.nInline < nodeInline {
		n.inlineIDs[n.nInline] = c.id
		n.inline[n.nInline] = c
		n.nInline++
		return
	}
	if n.children == nil {
		n.children = make(map[FrameID]*Node)
	}
	n.children[c.id] = c
}

// lookupID returns the child with the given interned frame if it exists.
func (n *Node) lookupID(id FrameID) (*Node, bool) {
	for i := uint8(0); i < n.nInline; i++ {
		if n.inlineIDs[i] == id {
			return n.inline[i], true
		}
	}
	c, ok := n.children[id]
	return c, ok
}

// Lookup returns the child with the given frame if it exists.
func (n *Node) Lookup(f Frame) (*Node, bool) {
	id, ok := DefaultInterner().LookupID(f)
	if !ok {
		return nil, false // a frame never interned keys no node anywhere
	}
	return n.lookupID(id)
}

// Children returns the node's children sorted deterministically (by kind,
// module, name, file, line).
func (n *Node) Children() []*Node {
	out := make([]*Node, 0, n.NumChildren())
	for i := uint8(0); i < n.nInline; i++ {
		out = append(out, n.inline[i])
	}
	for _, c := range n.children {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return frameLess(out[i].Frame, out[j].Frame) })
	return out
}

func frameLess(a, b Frame) bool {
	switch {
	case a.Kind != b.Kind:
		return a.Kind < b.Kind
	case a.Module != b.Module:
		return a.Module < b.Module
	case a.Name != b.Name:
		return a.Name < b.Name
	case a.File != b.File:
		return a.File < b.File
	default:
		return a.Line < b.Line
	}
}

// NumChildren returns the number of children.
func (n *Node) NumChildren() int { return int(n.nInline) + len(n.children) }

// eachChild calls fn on every child in unspecified order, without the sort
// (or allocation) Children pays for determinism.
func (n *Node) eachChild(fn func(*Node)) {
	for i := uint8(0); i < n.nInline; i++ {
		fn(n.inline[i])
	}
	for _, c := range n.children {
		fn(c)
	}
}

// EachChild calls fn on every child in unspecified order — the
// allocation-free traversal for callers that don't need the deterministic
// sort Children pays for.
func (n *Node) EachChild(fn func(*Node)) { n.eachChild(fn) }

// Path returns the frames from the root (exclusive) down to n.
func (n *Node) Path() []Frame {
	var rev []Frame
	for cur := n; cur != nil && cur.Frame.Kind != KindRoot; cur = cur.parent {
		rev = append(rev, cur.Frame)
	}
	out := make([]Frame, len(rev))
	for i := range rev {
		out[i] = rev[len(rev)-1-i]
	}
	return out
}

// Tree is one calling context tree.
type Tree struct {
	// Root is the tree root; its frame has KindRoot.
	Root *Node
}

// New creates an empty tree.
func New() *Tree {
	root := Frame{Kind: KindRoot}
	return &Tree{Root: &Node{Frame: root, id: InternFrame(root)}}
}

// InsertPath walks (creating as needed) the path of frames from the root
// and returns the final node.
func (t *Tree) InsertPath(path []Frame) *Node {
	n := t.Root
	for _, f := range path {
		n = n.Child(f)
	}
	return n
}

// InsertPathIDs is InsertPath over pre-interned frames — the profiler's
// sample path, which converts each live stack frame to its FrameID once
// and reuses the IDs across samples.
func (t *Tree) InsertPathIDs(path []FrameID) *Node {
	n := t.Root
	for _, id := range path {
		n = n.ChildID(id)
	}
	return n
}

// AddSample attributes a metric vector to the node at the given path.
func (t *Tree) AddSample(path []Frame, v *metric.Vector) *Node {
	n := t.InsertPath(path)
	n.Metrics.Add(v)
	return n
}

// AddSampleIDs attributes a metric vector to the node at the given
// pre-interned path.
func (t *Tree) AddSampleIDs(path []FrameID, v *metric.Vector) *Node {
	n := t.InsertPathIDs(path)
	n.Metrics.Add(v)
	return n
}

// Merge adds the other tree's structure and metrics into t. The other tree
// is left untouched.
func (t *Tree) Merge(o *Tree) {
	mergeNode(t.Root, o.Root)
}

func mergeNode(dst, src *Node) {
	dst.Metrics.Add(&src.Metrics)
	// Integer-keyed descent: both trees share the process-global interner,
	// so a child's FrameID addresses the same frame in either tree.
	for i := uint8(0); i < src.nInline; i++ {
		mergeNode(dst.ChildID(src.inlineIDs[i]), src.inline[i])
	}
	for id, sc := range src.children {
		mergeNode(dst.ChildID(id), sc)
	}
}

// MergeFrom adds src's subtree (structure and metrics) into n, the
// incremental analogue of Tree.Merge: a streaming analyzer can graft
// partially-built subtrees into an accumulator as they are decoded. src is
// left untouched.
func (n *Node) MergeFrom(src *Node) {
	mergeNode(n, src)
}

// MergeChild folds src — a child-level subtree from another tree over the
// same interner — into n, consuming it. When n already has a child with
// src's frame the two subtrees merge recursively; otherwise src is adopted
// wholesale, re-parented under n with no copying. Adoption is what makes
// the sharded merge's reduce cheap: shards partition root subtrees, so
// most reduce steps move a pointer instead of walking a tree. Either way
// src belongs to n's tree afterwards and must not be used by the caller.
func (n *Node) MergeChild(src *Node) {
	if dst, ok := n.lookupID(src.id); ok {
		mergeNode(dst, src)
		return
	}
	src.parent = n
	n.attach(src)
}

// Absorb moves o's structure and metrics into t, consuming o. Overlapping
// subtrees merge; disjoint ones re-parent into t without copying. Use
// Merge when the source must survive.
func (t *Tree) Absorb(o *Tree) {
	t.Root.Metrics.Add(&o.Root.Metrics)
	o.Root.eachChild(func(c *Node) { t.Root.MergeChild(c) })
}

// Clone returns a deep copy of the tree.
func (t *Tree) Clone() *Tree {
	c := New()
	c.Merge(t)
	return c
}

// Walk visits every node in deterministic pre-order. Returning false from
// fn prunes the subtree below that node.
func (t *Tree) Walk(fn func(n *Node, depth int) bool) {
	walk(t.Root, 0, fn)
}

func walk(n *Node, depth int, fn func(*Node, int) bool) {
	if !fn(n, depth) {
		return
	}
	for _, c := range n.Children() {
		walk(c, depth+1, fn)
	}
}

// NumNodes counts the tree's nodes, root included.
func (t *Tree) NumNodes() int {
	count := 0
	t.Walk(func(*Node, int) bool { count++; return true })
	return count
}

// Total sums metric values over the whole tree (since samples are recorded
// exclusively at their nodes, this is the tree's inclusive total).
func (t *Tree) Total() metric.Vector {
	var v metric.Vector
	t.Walk(func(n *Node, _ int) bool { v.Add(&n.Metrics); return true })
	return v
}

// Inclusive computes the inclusive metric vector of a node: its own plus
// all descendants'.
func (n *Node) Inclusive() metric.Vector {
	v := n.Metrics
	n.eachChild(func(c *Node) {
		cv := c.Inclusive()
		v.Add(&cv)
	})
	return v
}

// Class is the storage class that separates per-thread CCTs (§4.1.4): the
// profiler files each sample into the tree matching what its effective
// address resolved to, plus one tree for samples with no memory operand.
type Class uint8

const (
	// ClassStatic holds samples on static variables.
	ClassStatic Class = iota
	// ClassHeap holds samples on tracked heap allocations.
	ClassHeap
	// ClassUnknown holds memory samples on anything else (stack, brk,
	// untracked small allocations).
	ClassUnknown
	// ClassNonMem holds samples whose instruction had no memory operand.
	ClassNonMem
	// NumClasses is the number of storage classes.
	NumClasses = int(ClassNonMem) + 1
)

// String names the class as the views label it.
func (c Class) String() string {
	switch c {
	case ClassStatic:
		return "static data"
	case ClassHeap:
		return "heap data"
	case ClassUnknown:
		return "unknown data"
	case ClassNonMem:
		return "no memory access"
	default:
		return fmt.Sprintf("Class(%d)", uint8(c))
	}
}

// Profile is one thread's measurement output: one CCT per storage class
// plus identification.
type Profile struct {
	// Rank and Thread identify the producing MPI rank and thread.
	Rank, Thread int
	// Event describes the monitored PMU configuration (e.g.
	// "PM_MRK_DATA_FROM_RMEM@1000" or "IBS@4096").
	Event string
	// Trees holds the per-storage-class CCTs.
	Trees [NumClasses]*Tree
	// Temporal, when non-nil, is the time-windowed sidecar: per-node
	// metric deltas bucketed by fixed-width sim-time windows (see
	// timeseries.go). Nil when temporal profiling was off or the sidecar
	// was damaged; everything cumulative works identically either way.
	Temporal *TimeSeries
}

// NewProfile creates an empty profile.
func NewProfile(rank, thread int, event string) *Profile {
	p := &Profile{Rank: rank, Thread: thread, Event: event}
	for i := range p.Trees {
		p.Trees[i] = New()
	}
	return p
}

// Merge folds o's trees into p's (identification fields keep p's values).
func (p *Profile) Merge(o *Profile) {
	for i := range p.Trees {
		p.Trees[i].Merge(o.Trees[i])
	}
}

// MergeClass folds a single storage-class tree into p — the unit of work of
// the streaming analyzer, which receives class trees individually as
// profiles are decoded. t is left untouched.
func (p *Profile) MergeClass(c Class, t *Tree) {
	p.Trees[c].Merge(t)
}

// Total sums metrics across all storage classes.
func (p *Profile) Total() metric.Vector {
	var v metric.Vector
	for _, t := range p.Trees {
		tv := t.Total()
		v.Add(&tv)
	}
	return v
}

// NumNodes counts nodes across all trees.
func (p *Profile) NumNodes() int {
	n := 0
	for _, t := range p.Trees {
		n += t.NumNodes()
	}
	return n
}
