// Package cache simulates the memory hierarchy of a multi-socket NUMA node:
// per-core L1D and L2 caches and D-TLB, a per-socket shared L3, a next-line
// prefetcher, and one DRAM controller per NUMA domain with a queueing model
// of bandwidth contention.
//
// The simulator's contract with the profiler mirrors what IBS / POWER7
// marked-event hardware reports per sampled access: the total latency and
// the data source (which level, local or remote memory) plus a TLB-miss
// flag. The paper's three locality pathologies emerge naturally:
//
//   - poor spatial locality (large strides, indirection) defeats the line
//     granularity, the prefetcher and the TLB;
//   - poor temporal locality evicts lines before reuse;
//   - poor NUMA locality (first-touch by one thread) turns worker accesses
//     remote and serializes them on a single DRAM controller.
package cache

import "fmt"

// LineSize is the cache-line granularity in bytes, shared by all levels.
const LineSize = 64

// Config sets the geometry and timing of the hierarchy. All latencies are in
// core cycles. The defaults (DefaultConfig) approximate the paper's AMD
// Magny-Cours and POWER7 platforms closely enough for shape-level studies.
type Config struct {
	// L1 data cache, private per core.
	L1Sets, L1Ways int
	// L2 unified cache, private per core.
	L2Sets, L2Ways int
	// L3 cache, shared per socket.
	L3Sets, L3Ways int
	// D-TLB, private per core (entries = TLBSets*TLBWays pages).
	TLBSets, TLBWays int

	// Load-to-use latencies per serving level.
	L1Lat, L2Lat, L3Lat uint64
	// DRAM access latency (row access etc.), before queueing.
	MemLat uint64
	// Extra cycles for crossing the socket interconnect to a remote
	// controller (HyperTransport / QPI hop).
	RemoteHop uint64
	// Page-walk penalty charged on a TLB miss.
	TLBMissLat uint64

	// DRAMService is the controller occupancy per line fetch: the inverse
	// bandwidth of one memory controller. Concurrent accesses to one
	// controller queue behind each other in simulated time.
	DRAMService uint64

	// PrefetchDegree is how many sequential next lines the L1-miss
	// prefetcher pulls into L2 (0 disables prefetching). Prefetches never
	// cross a page boundary.
	PrefetchDegree int

	// PrefetchThrottle stops prefetch issue while the target DRAM
	// controller's backlog exceeds this many cycles — modelling finite
	// miss queues: under bandwidth saturation the prefetcher cannot run
	// ahead and demand misses surface with their true memory sources.
	// Zero disables throttling.
	PrefetchThrottle uint64
}

// DefaultConfig returns the standard simulation parameters: 32 KiB 8-way L1,
// 256 KiB 8-way L2, 8 MiB 16-way L3 per socket, 64-entry 4-way DTLB.
func DefaultConfig() Config {
	return Config{
		L1Sets: 64, L1Ways: 8, // 32 KiB
		L2Sets: 512, L2Ways: 8, // 256 KiB
		L3Sets: 8192, L3Ways: 16, // 8 MiB
		TLBSets: 16, TLBWays: 4, // 64 entries
		L1Lat: 4, L2Lat: 12, L3Lat: 40,
		MemLat: 180, RemoteHop: 150, TLBMissLat: 40,
		DRAMService:      8,
		PrefetchDegree:   1,
		PrefetchThrottle: 1500,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	pow2 := func(name string, v int) error {
		if v <= 0 || v&(v-1) != 0 {
			return fmt.Errorf("cache: %s must be a positive power of two, got %d", name, v)
		}
		return nil
	}
	for _, p := range []struct {
		name string
		v    int
	}{
		{"L1Sets", c.L1Sets}, {"L2Sets", c.L2Sets}, {"L3Sets", c.L3Sets}, {"TLBSets", c.TLBSets},
	} {
		if err := pow2(p.name, p.v); err != nil {
			return err
		}
	}
	for _, p := range []struct {
		name string
		v    int
	}{
		{"L1Ways", c.L1Ways}, {"L2Ways", c.L2Ways}, {"L3Ways", c.L3Ways}, {"TLBWays", c.TLBWays},
	} {
		if p.v <= 0 {
			return fmt.Errorf("cache: %s must be positive, got %d", p.name, p.v)
		}
	}
	if c.PrefetchDegree < 0 {
		return fmt.Errorf("cache: PrefetchDegree must be non-negative, got %d", c.PrefetchDegree)
	}
	return nil
}

// DataSource identifies which level of the hierarchy served an access — the
// information IBS encodes in its load/store response and POWER7 exposes as
// PM_MRK_DATA_FROM_* marked events.
type DataSource uint8

const (
	// SrcL1 — served by the core's L1 data cache.
	SrcL1 DataSource = iota
	// SrcL2 — served by the core's private L2.
	SrcL2
	// SrcL3 — served by the socket's shared L3.
	SrcL3
	// SrcRemoteL3 — served by another socket's L3 via a cache-to-cache
	// intervention across the interconnect (the line was recently used by a
	// core on that socket).
	SrcRemoteL3
	// SrcLocalDRAM — served by the accessor's own NUMA domain's memory.
	SrcLocalDRAM
	// SrcRemoteDRAM — served by another NUMA domain's memory across the
	// interconnect.
	SrcRemoteDRAM
	// NumSources is the number of DataSource values.
	NumSources = int(SrcRemoteDRAM) + 1
)

// String returns the conventional name for the source.
func (s DataSource) String() string {
	switch s {
	case SrcL1:
		return "L1"
	case SrcL2:
		return "L2"
	case SrcL3:
		return "L3"
	case SrcRemoteL3:
		return "RL3"
	case SrcLocalDRAM:
		return "LMEM"
	case SrcRemoteDRAM:
		return "RMEM"
	default:
		return fmt.Sprintf("DataSource(%d)", uint8(s))
	}
}

// AccessResult is what the PMU sees for one memory access.
type AccessResult struct {
	// Latency is the total load-to-use cycles, including TLB walk, level
	// latency, interconnect hop and controller queueing.
	Latency uint64
	// Source is the serving level.
	Source DataSource
	// TLBMiss reports whether the access missed the D-TLB.
	TLBMiss bool
	// HomeDomain is the NUMA domain the data's page is homed in.
	HomeDomain int
	// Remote reports whether HomeDomain differs from the accessor's domain.
	Remote bool
	// QueueDelay is the portion of Latency spent waiting for the DRAM
	// controller (bandwidth contention); zero for cache hits.
	QueueDelay uint64
}
