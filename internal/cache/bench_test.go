package cache

import (
	"testing"

	"dcprof/internal/machine"
	"dcprof/internal/mem"
)

func benchHierarchy(cfg Config) (*Hierarchy, *mem.PageTable) {
	topo := machine.MagnyCours48()
	return NewHierarchy(topo, cfg), mem.NewPageTable(topo.NUMADomains, mem.FirstTouch{})
}

func BenchmarkAccessL1Hit(b *testing.B) {
	h, pt := benchHierarchy(DefaultConfig())
	h.Access(0, 0, mem.HeapBase, false, pt, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Access(0, 0, mem.HeapBase, false, pt, uint64(i))
	}
}

func BenchmarkAccessStreaming(b *testing.B) {
	h, pt := benchHierarchy(DefaultConfig())
	b.ResetTimer()
	var now uint64
	for i := 0; i < b.N; i++ {
		r := h.Access(0, 0, mem.HeapBase+mem.Addr((i%(1<<20))*8), false, pt, now)
		now += r.Latency
	}
}

func BenchmarkAccessRandom(b *testing.B) {
	h, pt := benchHierarchy(DefaultConfig())
	b.ResetTimer()
	var now uint64
	for i := 0; i < b.N; i++ {
		addr := mem.HeapBase + mem.Addr(((i*2654435761)%(1<<22))*8)
		r := h.Access(0, 0, addr, false, pt, now)
		now += r.Latency
	}
}

// BenchmarkAblationPrefetcher reports the simulated-cycle cost of a fixed
// streaming workload with and without the prefetcher — the design-choice
// ablation DESIGN.md calls out.
func BenchmarkAblationPrefetcher(b *testing.B) {
	run := func(degree int) uint64 {
		cfg := DefaultConfig()
		cfg.PrefetchDegree = degree
		h, pt := benchHierarchy(cfg)
		var now uint64
		for i := 0; i < 1<<16; i++ {
			r := h.Access(0, 0, mem.HeapBase+mem.Addr(i*8), false, pt, now)
			now += r.Latency
		}
		return now
	}
	var with, without uint64
	for i := 0; i < b.N; i++ {
		with = run(1)
		without = run(0)
	}
	b.ReportMetric(float64(without)/float64(with), "speedup-from-prefetch")
}

// BenchmarkAblationIntervention reports how much of a shared read-mostly
// working set is served by cross-socket L3 intervention vs remote DRAM.
func BenchmarkAblationIntervention(b *testing.B) {
	h, pt := benchHierarchy(DefaultConfig())
	// Socket 0 (core 0) warms the lines.
	for i := 0; i < 1<<12; i++ {
		h.Access(0, 0, mem.HeapBase+mem.Addr(i*64), true, pt, 0)
	}
	b.ResetTimer()
	var rl3, rmem int
	for i := 0; i < b.N; i++ {
		r := h.Access(47, 0, mem.HeapBase+mem.Addr((i%(1<<12))*64), false, pt, 0)
		switch r.Source {
		case SrcRemoteL3:
			rl3++
		case SrcRemoteDRAM:
			rmem++
		}
	}
	if rl3+rmem > 0 {
		b.ReportMetric(100*float64(rl3)/float64(rl3+rmem), "intervention-%")
	}
}

func BenchmarkControllerFetch(b *testing.B) {
	var c controller
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.fetch(uint64(i)*4, 8)
	}
}
