package cache

import (
	"fmt"
	"sync"
	"sync/atomic"

	"dcprof/internal/machine"
	"dcprof/internal/mem"
)

// l3Shards is the number of independently locked shards each socket's
// shared L3 is split into; the low bits of the line key select the shard and
// the remaining bits the set within it, so concurrent accesses to different
// shards proceed in parallel.
const l3Shards = 64

// Hierarchy is the memory system of one node: per-core private caches and
// TLB, per-socket shared L3, and per-NUMA-domain DRAM controllers. It is
// safe for concurrent use by goroutines simulating hardware threads.
type Hierarchy struct {
	topo machine.Topology
	cfg  Config

	cores   []coreState
	l3      []l3State
	l3Shift uint // log2(shards): low key bits consumed by shard selection
	dram    []controller

	// Aggregate statistics (atomics; exact under concurrency).
	srcCount  [NumSources]atomic.Uint64
	tlbMisses atomic.Uint64
	accesses  atomic.Uint64
}

type coreState struct {
	mu  sync.Mutex
	l1  *setAssoc
	l2  *setAssoc
	tlb *setAssoc
	_   [32]byte // reduce false sharing between adjacent cores
}

type l3Shard struct {
	mu  sync.Mutex
	arr *setAssoc
	_   [32]byte // reduce false sharing between shards
}

type l3State struct {
	shards []l3Shard
}

// NewHierarchy builds the memory system for the given topology.
func NewHierarchy(topo machine.Topology, cfg Config) *Hierarchy {
	if err := topo.Validate(); err != nil {
		panic(err)
	}
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	h := &Hierarchy{
		topo:  topo,
		cfg:   cfg,
		cores: make([]coreState, topo.NumCores()),
		l3:    make([]l3State, topo.Sockets),
		dram:  make([]controller, topo.NUMADomains),
	}
	for i := range h.cores {
		h.cores[i].l1 = newSetAssoc(cfg.L1Sets, cfg.L1Ways)
		h.cores[i].l2 = newSetAssoc(cfg.L2Sets, cfg.L2Ways)
		h.cores[i].tlb = newSetAssoc(cfg.TLBSets, cfg.TLBWays)
	}
	shards := l3Shards
	setsPerShard := cfg.L3Sets / shards
	if setsPerShard == 0 {
		shards = cfg.L3Sets // tiny L3 in tests: one set per shard
		setsPerShard = 1
	}
	for s := shards; s > 1; s >>= 1 {
		h.l3Shift++
	}
	for i := range h.l3 {
		h.l3[i].shards = make([]l3Shard, shards)
		for j := range h.l3[i].shards {
			h.l3[i].shards[j].arr = newSetAssoc(setsPerShard, cfg.L3Ways)
		}
	}
	return h
}

// Topology returns the node topology the hierarchy was built for.
func (h *Hierarchy) Topology() machine.Topology { return h.topo }

// Config returns the hierarchy's configuration.
func (h *Hierarchy) Config() Config { return h.cfg }

// lineKey salts a line number with the address-space id so distinct
// processes never alias in shared caches. Keys are always nonzero.
func lineKey(asid int, addr mem.Addr) uint64 {
	return uint64(asid+1)<<45 | uint64(addr)>>6
}

func pageKey(asid int, addr mem.Addr) uint64 {
	return uint64(asid+1)<<45 | uint64(addr)>>mem.PageShift
}

// Access simulates one load or store issued by `core` in address space
// `asid` at thread-local time `now`, resolving NUMA placement through pt.
// It returns the latency and the hardware-visible characterization of the
// access. A multi-byte access is treated as touching its first line (the
// sim layer splits accesses that cross lines).
func (h *Hierarchy) Access(core, asid int, addr mem.Addr, write bool, pt *mem.PageTable, now uint64) AccessResult {
	if core < 0 || core >= len(h.cores) {
		panic(fmt.Sprintf("cache: core %d out of range [0,%d)", core, len(h.cores)))
	}
	h.accesses.Add(1)
	cs := &h.cores[core]
	lk := lineKey(asid, addr)
	pk := pageKey(asid, addr)
	myDomain := h.topo.DomainOfCore(core)

	var res AccessResult

	cs.mu.Lock()
	if _, ok := cs.tlb.lookup(pk); !ok {
		res.TLBMiss = true
		res.Latency += h.cfg.TLBMissLat
		cs.tlb.insert(pk)
		h.tlbMisses.Add(1)
	}
	t := now + res.Latency // issue time after translation

	if _, ok := cs.l1.lookup(lk); ok {
		cs.mu.Unlock()
		res.Latency += h.cfg.L1Lat
		res.Source = SrcL1
		h.finishHit(&res, addr, pt)
		return res
	}
	if i, ok := cs.l2.lookup(lk); ok {
		if residual, origin, home, late := cs.l2.pending(i, t); late {
			// Late prefetch: the line's background fill is still in
			// flight. The access pays the residual latency and is
			// classified by the fill's memory source — this is how
			// bandwidth-saturated streams stay visible to the PMU.
			cs.l1.insert(lk)
			h.prefetch(cs, core, asid, addr, pt, t)
			cs.mu.Unlock()
			res.Latency += residual + h.cfg.L2Lat
			res.QueueDelay = residual
			res.Source = origin
			res.HomeDomain = home
			res.Remote = home != myDomain
			h.srcCount[origin].Add(1)
			return res
		}
		cs.l1.insert(lk)
		h.prefetch(cs, core, asid, addr, pt, t)
		cs.mu.Unlock()
		res.Latency += h.cfg.L2Lat
		res.Source = SrcL2
		h.finishHit(&res, addr, pt)
		return res
	}
	// Probe the socket's shared L3.
	socket := h.topo.SocketOfCore(core)
	if hit, residual, origin, home, late := h.l3Lookup(socket, lk, t); hit {
		cs.l2.insert(lk)
		cs.l1.insert(lk)
		h.prefetch(cs, core, asid, addr, pt, t)
		cs.mu.Unlock()
		if late {
			res.Latency += residual + h.cfg.L3Lat
			res.QueueDelay = residual
			res.Source = origin
			res.HomeDomain = home
			res.Remote = home != myDomain
			h.srcCount[origin].Add(1)
			return res
		}
		res.Latency += h.cfg.L3Lat
		res.Source = SrcL3
		h.finishHit(&res, addr, pt)
		return res
	}

	// Cross-socket intervention: a line recently used on another socket is
	// served from that socket's L3 across the interconnect instead of from
	// memory (SMP coherence, as on POWER7 / HyperTransport probes).
	for s := 0; s < h.topo.Sockets; s++ {
		if s == socket || !h.l3Present(s, lk) {
			continue
		}
		cs.l2.insert(lk)
		cs.l1.insert(lk)
		h.l3Insert(socket, lk)
		h.prefetch(cs, core, asid, addr, pt, t)
		cs.mu.Unlock()
		res.Latency += h.cfg.L3Lat + h.cfg.RemoteHop
		res.Source = SrcRemoteL3
		h.finishHit(&res, addr, pt)
		if res.HomeDomain >= 0 {
			res.Remote = res.HomeDomain != myDomain
		}
		return res
	}

	// Full miss: fetch from the home domain's DRAM controller.
	home := pt.Resolve(addr, myDomain)
	res.HomeDomain = home
	res.Remote = home != myDomain

	lat := h.cfg.MemLat
	if res.Remote {
		// RemoteHop is calibrated for a cross-package (2-hop) access;
		// on-package die-to-die links (Magny-Cours) cost one hop.
		lat += h.cfg.RemoteHop * uint64(h.topo.DomainDistance(myDomain, home)) / 2
		res.Source = SrcRemoteDRAM
	} else {
		res.Source = SrcLocalDRAM
	}
	res.QueueDelay = h.dram[home].fetch(t, h.cfg.DRAMService)
	lat += res.QueueDelay + h.cfg.DRAMService
	res.Latency += lat

	h.l3Insert(socket, lk)
	cs.l2.insert(lk)
	cs.l1.insert(lk)
	h.prefetch(cs, core, asid, addr, pt, t+lat)
	cs.mu.Unlock()

	h.srcCount[res.Source].Add(1)
	return res
}

// finishHit fills in NUMA fields for cache hits (the home is whatever the
// page table already records; unplaced means the line was installed by a
// prefetch in this domain — treat as local).
func (h *Hierarchy) finishHit(res *AccessResult, addr mem.Addr, pt *mem.PageTable) {
	h.srcCount[res.Source].Add(1)
	if home, ok := pt.Home(addr); ok {
		res.HomeDomain = home
	} else {
		res.HomeDomain = -1
	}
}

// prefetch implements a next-line prefetcher: on an L1 miss it pulls the
// following PrefetchDegree lines into L2 and L3 as background fills, never
// crossing a page boundary. A fill from memory consumes DRAM controller
// bandwidth at the home domain and completes at a future time; a demand
// access that arrives before then pays the residual (see setAssoc.pending).
// Caller holds cs.mu.
func (h *Hierarchy) prefetch(cs *coreState, core, asid int, addr mem.Addr, pt *mem.PageTable, now uint64) {
	for d := 1; d <= h.cfg.PrefetchDegree; d++ {
		next := addr + mem.Addr(d*LineSize)
		if mem.PageOf(next) != mem.PageOf(addr) {
			return
		}
		lk := lineKey(asid, next)
		if cs.l2.present(lk) {
			continue
		}
		socket := h.topo.SocketOfCore(core)
		if h.l3Present(socket, lk) {
			// On-socket already: cheap L3->L2 fill, effectively ready.
			cs.l2.insert(lk)
			continue
		}
		// Fill from memory in the background — unless the home controller
		// is backed up past the throttle point (finite miss queues).
		myDomain := h.topo.DomainOfCore(core)
		home := pt.Resolve(next, myDomain)
		if h.cfg.PrefetchThrottle > 0 && h.dram[home].saturated(now, h.cfg.DRAMService) {
			continue
		}
		qd := h.dram[home].fetch(now, h.cfg.DRAMService)
		lat := h.cfg.MemLat + qd + h.cfg.DRAMService
		src := SrcLocalDRAM
		if home != myDomain {
			lat += h.cfg.RemoteHop * uint64(h.topo.DomainDistance(myDomain, home)) / 2
			src = SrcRemoteDRAM
		}
		ready := now + lat
		h.l3InsertPending(socket, lk, ready, lat, src, home)
		way, _ := cs.l2.insert(lk)
		cs.l2.setPending(way, ready, lat, src, home)
	}
}

// l3shard picks the shard for a key; the shard index consumes the key's low
// bits, and the shard's internal set index uses the bits above them (the
// setAssoc masks them itself since shard arrays are power-of-two sized).
func (h *Hierarchy) l3shard(socket int, key uint64) *l3Shard {
	shards := h.l3[socket].shards
	return &shards[key%uint64(len(shards))]
}

func (h *Hierarchy) l3Lookup(socket int, key uint64, now uint64) (hit bool, residual uint64, origin DataSource, home int, late bool) {
	sh := h.l3shard(socket, key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	i, ok := sh.arr.lookup(key >> h.l3Shift) // drop shard-selection bits
	if !ok {
		return false, 0, 0, 0, false
	}
	residual, origin, home, late = sh.arr.pending(i, now)
	return true, residual, origin, home, late
}

func (h *Hierarchy) l3Present(socket int, key uint64) bool {
	sh := h.l3shard(socket, key)
	sh.mu.Lock()
	ok := sh.arr.present(key >> h.l3Shift)
	sh.mu.Unlock()
	return ok
}

func (h *Hierarchy) l3Insert(socket int, key uint64) {
	sh := h.l3shard(socket, key)
	sh.mu.Lock()
	sh.arr.insert(key >> h.l3Shift)
	sh.mu.Unlock()
}

func (h *Hierarchy) l3InsertPending(socket int, key uint64, ready, cost uint64, origin DataSource, home int) {
	sh := h.l3shard(socket, key)
	sh.mu.Lock()
	way, _ := sh.arr.insert(key >> h.l3Shift)
	sh.arr.setPending(way, ready, cost, origin, home)
	sh.mu.Unlock()
}

// Stats is a snapshot of hierarchy-wide counters.
type Stats struct {
	Accesses  uint64
	TLBMisses uint64
	BySource  [NumSources]uint64
	// DRAM per-domain: fetches served and busy cycles.
	DRAMAccesses []uint64
	DRAMBusy     []uint64
}

// Snapshot returns current aggregate counters.
func (h *Hierarchy) Snapshot() Stats {
	s := Stats{
		Accesses:     h.accesses.Load(),
		TLBMisses:    h.tlbMisses.Load(),
		DRAMAccesses: make([]uint64, len(h.dram)),
		DRAMBusy:     make([]uint64, len(h.dram)),
	}
	for i := range h.srcCount {
		s.BySource[i] = h.srcCount[i].Load()
	}
	for i := range h.dram {
		s.DRAMAccesses[i], s.DRAMBusy[i] = h.dram[i].stats()
	}
	return s
}
