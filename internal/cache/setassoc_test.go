package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func has(s *setAssoc, key uint64) bool {
	_, ok := s.lookup(key)
	return ok
}

func TestSetAssocHitMiss(t *testing.T) {
	s := newSetAssoc(4, 2)
	if _, ok := s.lookup(0x100); ok {
		t.Error("cold lookup hit")
	}
	if _, ev := s.insert(0x100); ev != 0 {
		t.Errorf("insert into empty set evicted %#x", ev)
	}
	if _, ok := s.lookup(0x100); !ok {
		t.Error("lookup after insert missed")
	}
}

func TestSetAssocLRUEviction(t *testing.T) {
	s := newSetAssoc(1, 2) // single set, 2 ways
	s.insert(1)
	s.insert(2)
	s.lookup(1) // 1 is now MRU; 2 is LRU
	if _, ev := s.insert(3); ev != 2 {
		t.Errorf("evicted %#x, want 2 (the LRU)", ev)
	}
	if !has(s, 1) || !has(s, 3) || has(s, 2) {
		t.Error("post-eviction contents wrong")
	}
}

func TestSetAssocSetIsolation(t *testing.T) {
	s := newSetAssoc(4, 1)
	// Keys 0..3 map to different sets; none should evict another.
	for k := uint64(1); k <= 4; k++ {
		key := k<<10 | (k - 1) // distinct set index bits 0..1
		if _, ev := s.insert(key); ev != 0 {
			t.Errorf("cross-set eviction of %#x", ev)
		}
	}
}

func TestSetAssocConflictWithinSet(t *testing.T) {
	s := newSetAssoc(4, 2)
	// Three keys with identical low bits collide in one 2-way set.
	k1, k2, k3 := uint64(0x10), uint64(0x50), uint64(0x90)
	s.insert(k1)
	s.insert(k2)
	_, ev := s.insert(k3)
	if ev != k1 {
		t.Errorf("evicted %#x, want LRU %#x", ev, k1)
	}
}

func TestSetAssocReinsertRefreshes(t *testing.T) {
	s := newSetAssoc(1, 2)
	s.insert(1)
	s.insert(2)
	s.insert(1) // refresh 1; 2 becomes LRU
	if _, ev := s.insert(3); ev != 2 {
		t.Errorf("evicted %#x, want 2", ev)
	}
}

func TestSetAssocPresentDoesNotTouchLRU(t *testing.T) {
	s := newSetAssoc(1, 2)
	s.insert(1)
	s.insert(2) // LRU order: 1, 2
	if !s.present(1) {
		t.Fatal("present(1) = false")
	}
	// present must not have refreshed 1, so 1 is still LRU.
	if _, ev := s.insert(3); ev != 1 {
		t.Errorf("evicted %#x, want 1 (present leaked an LRU touch)", ev)
	}
}

func TestSetAssocInvalidate(t *testing.T) {
	s := newSetAssoc(2, 2)
	s.insert(4)
	s.invalidate(4)
	if _, ok := s.lookup(4); ok {
		t.Error("lookup hit after invalidate")
	}
	s.invalidate(12345) // no-op on absent key
}

// Property: a set-assoc array with one set and W ways behaves exactly like
// an LRU list of capacity W.
func TestQuickLRUModel(t *testing.T) {
	f := func(seed int64, ways8 uint8) bool {
		ways := int(ways8%6) + 1
		s := newSetAssoc(1, ways)
		var model []uint64 // MRU at end
		rng := rand.New(rand.NewSource(seed))
		touch := func(k uint64) {
			for i, v := range model {
				if v == k {
					model = append(model[:i], model[i+1:]...)
					break
				}
			}
			model = append(model, k)
			if len(model) > ways {
				model = model[1:]
			}
		}
		contains := func(k uint64) bool {
			for _, v := range model {
				if v == k {
					return true
				}
			}
			return false
		}
		for op := 0; op < 500; op++ {
			k := uint64(rng.Intn(3*ways) + 1)
			if rng.Intn(2) == 0 {
				_, got := s.lookup(k)
				want := contains(k)
				if got != want {
					return false
				}
				if want {
					touch(k)
				}
			} else {
				s.insert(k)
				touch(k)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
