package cache

import "sync"

// windowCycles is the booking granularity of a DRAM controller's schedule.
const windowCycles = 2048

// controller models one NUMA domain's memory controller as a time-windowed
// capacity: each window of windowCycles simulated cycles can serve at most
// windowCycles/service line fetches. A fetch arriving in a full window is
// pushed to the next window with space, and the displacement is its
// queueing delay.
//
// Windowed booking (rather than a single next-free frontier) matters
// because simulated threads carry loosely synchronized local clocks: a
// thread that is further along in simulated time must not make the
// controller appear busy to a thread whose clock is earlier — capacity is
// per *interval* of simulated time. Saturation behaviour is what the
// paper's NUMA stories need: when many threads funnel fetches into one
// controller in the same time interval, windows fill and queueing delay
// grows until throughput is capped at the controller's service rate.
type controller struct {
	mu       sync.Mutex
	counts   map[uint64]uint32 // window index -> fetches booked
	accesses uint64
	busy     uint64 // total service cycles granted
}

// fetch books one line fetch arriving at local time `now`, returning the
// queueing delay experienced.
func (c *controller) fetch(now, service uint64) (queueDelay uint64) {
	if service == 0 {
		service = 1
	}
	cap := uint64(windowCycles / service)
	if cap == 0 {
		cap = 1
	}
	c.mu.Lock()
	if c.counts == nil {
		c.counts = make(map[uint64]uint32)
	}
	w := now / windowCycles
	for uint64(c.counts[w]) >= cap {
		w++
	}
	slot := uint64(c.counts[w])
	c.counts[w]++
	c.accesses++
	c.busy += service
	c.mu.Unlock()

	start := w*windowCycles + slot*service
	if start <= now {
		return 0
	}
	return start - now
}

// saturated reports whether the window containing `now` is fully booked —
// the signal the prefetcher uses to yield bandwidth to demand fetches.
func (c *controller) saturated(now, service uint64) bool {
	if service == 0 {
		service = 1
	}
	cap := uint64(windowCycles / service)
	if cap == 0 {
		cap = 1
	}
	c.mu.Lock()
	n := uint64(c.counts[now/windowCycles])
	c.mu.Unlock()
	return n >= cap
}

// stats returns the number of fetches served and total busy cycles.
func (c *controller) stats() (accesses, busy uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.accesses, c.busy
}
