package cache

// setAssoc is a set-associative array with per-set LRU replacement, used for
// every cache level and the TLB. Keys are line or page numbers already
// salted with the address-space id. The zero tag is reserved as "invalid",
// which is safe because salting keeps real keys nonzero.
//
// setAssoc does no locking; each instance is guarded by its owner (private
// caches by the per-core lock, the shared L3 by stripe locks).
type setAssoc struct {
	ways    int
	setMask uint64
	tags    []uint64 // sets*ways, 0 = invalid
	stamps  []uint64 // LRU timestamps, parallel to tags

	// Prefetch payload, parallel to tags: the simulated time the line's
	// background fill completes, the fill's total cost, and its memory
	// source. A demand access before `ready` is a late prefetch: it pays
	// the residual latency (capped at the fill cost, since per-thread
	// clocks are only loosely synchronized) and is classified by the
	// fill's origin.
	ready  []uint64
	cost   []uint64
	origin []uint8 // DataSource of the fill
	home   []int32 // NUMA home domain of the line's page

	clock uint64
}

func newSetAssoc(sets, ways int) *setAssoc {
	n := sets * ways
	return &setAssoc{
		ways:    ways,
		setMask: uint64(sets - 1),
		tags:    make([]uint64, n),
		stamps:  make([]uint64, n),
		ready:   make([]uint64, n),
		cost:    make([]uint64, n),
		origin:  make([]uint8, n),
		home:    make([]int32, n),
	}
}

func (s *setAssoc) setBase(key uint64) int {
	return int(key&s.setMask) * s.ways
}

// lookup probes for key, refreshing its LRU stamp on hit, and returns the
// way index for payload access.
func (s *setAssoc) lookup(key uint64) (int, bool) {
	base := s.setBase(key)
	for i := base; i < base+s.ways; i++ {
		if s.tags[i] == key {
			s.clock++
			s.stamps[i] = s.clock
			return i, true
		}
	}
	return -1, false
}

// pending returns the line's in-flight fill information (and clears it, so
// subsequent hits are plain hits). ok reports a fill still outstanding at
// `now`.
func (s *setAssoc) pending(i int, now uint64) (residual uint64, origin DataSource, home int, ok bool) {
	if s.ready[i] == 0 || s.ready[i] <= now {
		s.ready[i] = 0
		return 0, 0, 0, false
	}
	residual = s.ready[i] - now
	if residual > s.cost[i] {
		residual = s.cost[i]
	}
	origin, home = DataSource(s.origin[i]), int(s.home[i])
	s.ready[i] = 0
	return residual, origin, home, true
}

// setPending records an in-flight background fill for the line at way i.
func (s *setAssoc) setPending(i int, ready, cost uint64, origin DataSource, home int) {
	s.ready[i] = ready
	s.cost[i] = cost
	s.origin[i] = uint8(origin)
	s.home[i] = int32(home)
}

// present probes for key without touching LRU state (used by prefetch
// checks so a prefetch probe doesn't distort replacement).
func (s *setAssoc) present(key uint64) bool {
	base := s.setBase(key)
	for i := base; i < base+s.ways; i++ {
		if s.tags[i] == key {
			return true
		}
	}
	return false
}

// insert installs key, evicting the set's LRU way if needed. It returns the
// installed way index and the evicted key (0 if an invalid way was used).
// Inserting an already-present key refreshes it without clearing payload.
func (s *setAssoc) insert(key uint64) (way int, evicted uint64) {
	base := s.setBase(key)
	victim := base
	s.clock++
	for i := base; i < base+s.ways; i++ {
		switch {
		case s.tags[i] == key:
			s.stamps[i] = s.clock
			return i, 0
		case s.tags[i] == 0:
			s.tags[i] = key
			s.stamps[i] = s.clock
			s.ready[i] = 0
			return i, 0
		case s.stamps[i] < s.stamps[victim]:
			victim = i
		}
	}
	evicted = s.tags[victim]
	s.tags[victim] = key
	s.stamps[victim] = s.clock
	s.ready[victim] = 0
	return victim, evicted
}

// invalidate removes key if present.
func (s *setAssoc) invalidate(key uint64) {
	base := s.setBase(key)
	for i := base; i < base+s.ways; i++ {
		if s.tags[i] == key {
			s.tags[i] = 0
			s.stamps[i] = 0
			s.ready[i] = 0
			return
		}
	}
}
