package cache

import (
	"testing"

	"dcprof/internal/machine"
	"dcprof/internal/mem"
)

func testHierarchy() (*Hierarchy, *mem.PageTable) {
	topo := machine.Tiny() // 2 sockets x 2 cores, 2 domains
	h := NewHierarchy(topo, DefaultConfig())
	pt := mem.NewPageTable(topo.NUMADomains, mem.FirstTouch{})
	return h, pt
}

func TestColdMissThenHit(t *testing.T) {
	h, pt := testHierarchy()
	a := mem.HeapBase

	r1 := h.Access(0, 0, a, false, pt, 0)
	if r1.Source != SrcLocalDRAM {
		t.Errorf("cold access source = %v, want LMEM", r1.Source)
	}
	if !r1.TLBMiss {
		t.Error("cold access should miss TLB")
	}
	if r1.Remote {
		t.Error("first touch from core 0 must be local")
	}
	if r1.HomeDomain != 0 {
		t.Errorf("home = %d, want 0", r1.HomeDomain)
	}

	r2 := h.Access(0, 0, a, false, pt, r1.Latency)
	if r2.Source != SrcL1 {
		t.Errorf("second access source = %v, want L1", r2.Source)
	}
	if r2.TLBMiss {
		t.Error("second access should hit TLB")
	}
	if r2.Latency >= r1.Latency {
		t.Errorf("L1 hit latency %d not below DRAM latency %d", r2.Latency, r1.Latency)
	}
}

func TestRemoteClassification(t *testing.T) {
	h, pt := testHierarchy()
	a := mem.HeapBase
	// Core 0 (domain 0) touches first.
	h.Access(0, 0, a, true, pt, 0)
	// Core 3 (domain 1) accesses a different line in the same page that is
	// not yet cached on its socket.
	b := a + 8*LineSize
	r := h.Access(3, 0, b, false, pt, 0)
	if r.Source != SrcRemoteDRAM {
		t.Errorf("source = %v, want RMEM", r.Source)
	}
	if !r.Remote || r.HomeDomain != 0 {
		t.Errorf("remote=%v home=%d, want true,0", r.Remote, r.HomeDomain)
	}
	// Remote DRAM costs more than local DRAM.
	c := b + 8*LineSize
	local := h.Access(0, 0, c, false, pt, 0)
	d := c + 8*LineSize
	h.Access(0, 0, d, true, pt, 0) // place page... same page actually
	remote := h.Access(3, 0, d+LineSize, false, pt, 0)
	if remote.Source == SrcRemoteDRAM && local.Source == SrcLocalDRAM &&
		remote.Latency <= local.Latency {
		t.Errorf("remote latency %d not above local %d", remote.Latency, local.Latency)
	}
}

func TestSameSocketL3Sharing(t *testing.T) {
	h, pt := testHierarchy()
	a := mem.HeapBase
	h.Access(0, 0, a, false, pt, 0) // core 0 fills socket 0's L3
	r := h.Access(1, 0, a, false, pt, 0)
	if r.Source != SrcL3 {
		t.Errorf("same-socket neighbour source = %v, want L3", r.Source)
	}
	// A core on the other socket does not share that L3.
	r2 := h.Access(2, 0, a, false, pt, 0)
	if r2.Source == SrcL1 || r2.Source == SrcL2 || r2.Source == SrcL3 {
		t.Errorf("cross-socket access served by cache (%v) without fetch", r2.Source)
	}
}

func TestASIDIsolation(t *testing.T) {
	h, pt := testHierarchy()
	a := mem.HeapBase
	h.Access(0, 0, a, false, pt, 0)
	// Same virtual address, different address space: must not hit.
	pt2 := mem.NewPageTable(2, mem.FirstTouch{})
	r := h.Access(0, 1, a, false, pt2, 0)
	if r.Source == SrcL1 || r.Source == SrcL2 {
		t.Errorf("cross-ASID alias hit in %v", r.Source)
	}
}

func TestL1CapacityEviction(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PrefetchDegree = 0
	topo := machine.Tiny()
	h := NewHierarchy(topo, cfg)
	pt := mem.NewPageTable(2, mem.FirstTouch{})

	// Touch L1Ways+1 lines mapping to the same L1 set, then re-touch the
	// first: it must have been evicted from L1 (though L2 may hold it).
	setSpan := mem.Addr(cfg.L1Sets * LineSize)
	base := mem.HeapBase
	for i := 0; i <= cfg.L1Ways; i++ {
		h.Access(0, 0, base+mem.Addr(i)*setSpan, false, pt, 0)
	}
	r := h.Access(0, 0, base, false, pt, 0)
	if r.Source == SrcL1 {
		t.Error("line survived in L1 past associativity limit")
	}
	if r.Source != SrcL2 {
		t.Errorf("evicted L1 line should hit L2, got %v", r.Source)
	}
}

func TestPrefetcherHelpsSequentialStreams(t *testing.T) {
	run := func(degree int) uint64 {
		cfg := DefaultConfig()
		cfg.PrefetchDegree = degree
		h := NewHierarchy(machine.Tiny(), cfg)
		pt := mem.NewPageTable(2, mem.FirstTouch{})
		var total uint64
		for i := 0; i < 256; i++ { // sequential 8-byte loads
			r := h.Access(0, 0, mem.HeapBase+mem.Addr(i*8), false, pt, total)
			total += r.Latency
		}
		return total
	}
	with := run(2)
	without := run(0)
	if with >= without {
		t.Errorf("prefetching did not help: with=%d without=%d", with, without)
	}
}

func TestLargeStrideDefeatsPrefetchAndTLB(t *testing.T) {
	cfg := DefaultConfig()
	h := NewHierarchy(machine.Tiny(), cfg)
	pt := mem.NewPageTable(2, mem.FirstTouch{})
	var unit, strided uint64
	// 128 unit-stride accesses within few pages.
	for i := 0; i < 128; i++ {
		r := h.Access(0, 0, mem.HeapBase+mem.Addr(i*8), false, pt, unit)
		unit += r.Latency
	}
	// 128 page-stride accesses: every one a TLB+cache miss.
	for i := 0; i < 128; i++ {
		r := h.Access(1, 0, mem.HeapBase+0x100000+mem.Addr(i*mem.PageSize), false, pt, strided)
		strided += r.Latency
	}
	if strided < 3*unit {
		t.Errorf("page-stride stream (%d cy) not clearly slower than unit stride (%d cy)", strided, unit)
	}
}

func TestDRAMQueueingContention(t *testing.T) {
	// A window holds windowCycles/service fetches; once full, further
	// fetches in that window spill to the next and pay queueing delay.
	var c controller
	const service = 8
	capacity := windowCycles / service
	for i := 0; i < capacity; i++ {
		if d := c.fetch(0, service); d > windowCycles {
			t.Fatalf("in-window fetch %d queued %d cycles", i, d)
		}
	}
	if !c.saturated(0, service) {
		t.Error("window not reported saturated at capacity")
	}
	d := c.fetch(0, service)
	if d < windowCycles-1 {
		t.Errorf("overflow fetch queued only %d cycles, want ~window", d)
	}
	// A fetch far in the future sees an empty window.
	if d := c.fetch(100*windowCycles, service); d != 0 {
		t.Errorf("future fetch queued %d cycles", d)
	}
	if c.saturated(100*windowCycles+1, service) {
		t.Error("future window reported saturated")
	}
	acc, busy := c.stats()
	if acc != uint64(capacity)+2 || busy != (uint64(capacity)+2)*service {
		t.Errorf("stats = %d accesses, %d busy", acc, busy)
	}
}

func TestSnapshotCounters(t *testing.T) {
	h, pt := testHierarchy()
	h.Access(0, 0, mem.HeapBase, false, pt, 0)            // LMEM
	h.Access(0, 0, mem.HeapBase, false, pt, 0)            // L1
	h.Access(3, 0, mem.HeapBase+4*LineSize, false, pt, 0) // RMEM (page homed at 0)
	s := h.Snapshot()
	if s.Accesses != 3 {
		t.Errorf("accesses = %d, want 3", s.Accesses)
	}
	if s.BySource[SrcL1] != 1 || s.BySource[SrcLocalDRAM] != 1 || s.BySource[SrcRemoteDRAM] != 1 {
		t.Errorf("source counts = %v", s.BySource)
	}
	if s.TLBMisses == 0 {
		t.Error("no TLB misses recorded")
	}
	var dramTotal uint64
	for _, n := range s.DRAMAccesses {
		dramTotal += n
	}
	if dramTotal < 2 {
		t.Errorf("DRAM accesses = %d, want >= 2", dramTotal)
	}
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.L1Sets = 3
	if err := bad.Validate(); err == nil {
		t.Error("non-power-of-two sets accepted")
	}
	bad = good
	bad.L3Ways = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero ways accepted")
	}
	bad = good
	bad.PrefetchDegree = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative prefetch degree accepted")
	}
}

func TestDataSourceStrings(t *testing.T) {
	want := map[DataSource]string{
		SrcL1: "L1", SrcL2: "L2", SrcL3: "L3",
		SrcLocalDRAM: "LMEM", SrcRemoteDRAM: "RMEM",
	}
	for src, name := range want {
		if got := src.String(); got != name {
			t.Errorf("%d.String() = %q, want %q", src, got, name)
		}
	}
}

func TestConcurrentAccessesRaceFree(t *testing.T) {
	topo := machine.MagnyCours48()
	h := NewHierarchy(topo, DefaultConfig())
	pt := mem.NewPageTable(topo.NUMADomains, mem.FirstTouch{})
	done := make(chan struct{}, topo.NumCores())
	for core := 0; core < topo.NumCores(); core++ {
		go func(core int) {
			defer func() { done <- struct{}{} }()
			var now uint64
			base := mem.HeapBase + mem.Addr(core*4096*16)
			for i := 0; i < 2000; i++ {
				r := h.Access(core, 0, base+mem.Addr(i*32), i%3 == 0, pt, now)
				now += r.Latency
			}
		}(core)
	}
	for i := 0; i < topo.NumCores(); i++ {
		<-done
	}
	s := h.Snapshot()
	if s.Accesses != uint64(topo.NumCores())*2000 {
		t.Errorf("accesses = %d, want %d", s.Accesses, topo.NumCores()*2000)
	}
}
