package view

import (
	"strings"
	"testing"

	"dcprof/internal/cct"
	"dcprof/internal/metric"
)

func derivedProfile(l1, l3, rmem, tlb, stores, latency uint64) *cct.Profile {
	p := cct.NewProfile(0, 0, "IBS@64")
	var v metric.Vector
	v[metric.Samples] = l1 + l3 + rmem
	v[metric.Latency] = latency
	v[metric.FromL1] = l1
	v[metric.FromL3] = l3
	v[metric.FromRMEM] = rmem
	v[metric.TLBMiss] = tlb
	v[metric.Stores] = stores
	p.Trees[cct.ClassHeap].AddSample([]cct.Frame{
		{Kind: cct.KindHeapData, Name: "x"},
		{Kind: cct.KindStmt, Module: "exe", Name: "k", File: "k.c", Line: 1},
	}, &v)
	return p
}

func TestDeriveMetrics(t *testing.T) {
	p := derivedProfile(60, 20, 20, 10, 25, 50_000)
	d := DeriveMetrics(p)
	if d.MemSamples != 100 {
		t.Fatalf("mem samples = %d", d.MemSamples)
	}
	if d.AvgLatency != 500 {
		t.Errorf("avg latency = %v", d.AvgLatency)
	}
	if d.MemoryBound != 0.4 { // (20 L3 + 20 RMEM) / 100
		t.Errorf("memory bound = %v", d.MemoryBound)
	}
	if d.RemoteRatio != 0.2 || d.TLBMissRatio != 0.1 || d.StoreRatio != 0.25 {
		t.Errorf("ratios = %+v", d)
	}
	if !d.WorthDataCentricAnalysis() {
		t.Error("memory-bound profile not flagged for analysis")
	}
}

func TestDeriveMetricsCacheFriendly(t *testing.T) {
	// Everything L1: not memory-bound.
	p := derivedProfile(1000, 0, 0, 0, 0, 4000)
	d := DeriveMetrics(p)
	if d.WorthDataCentricAnalysis() {
		t.Error("L1-resident profile flagged as memory-bound")
	}
}

func TestDeriveMetricsEmpty(t *testing.T) {
	d := DeriveMetrics(cct.NewProfile(0, 0, "x"))
	if d.WorthDataCentricAnalysis() {
		t.Error("empty profile flagged")
	}
	out := RenderDerived(cct.NewProfile(0, 0, "x"))
	if !strings.Contains(out, "no memory samples") {
		t.Errorf("empty render:\n%s", out)
	}
}

func TestRenderDerived(t *testing.T) {
	out := RenderDerived(derivedProfile(60, 20, 20, 10, 25, 50_000))
	for _, want := range []string{"derived metrics", "avg access latency", "recommended"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}
