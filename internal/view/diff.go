package view

// Profile diffing: the workflow of the paper's case studies is
// measure → optimize → measure again; the diff view shows, per variable,
// how a metric moved between the two runs, normalizing by sample totals so
// runs of different lengths compare sensibly.

import (
	"fmt"
	"sort"
	"strings"

	"dcprof/internal/cct"
	"dcprof/internal/metric"
)

// VarDelta is one variable's change between two profiles.
type VarDelta struct {
	// Variable names the data (label, symbol, or allocation site).
	Variable string
	// Class is the variable's storage class.
	Class cct.Class
	// BeforeShare and AfterShare are the variable's share of the metric's
	// profile-wide total in each run.
	BeforeShare, AfterShare float64
	// BeforeValue and AfterValue are the raw metric values.
	BeforeValue, AfterValue uint64
}

// DeltaShare returns the share change (negative = improved placement /
// fewer events on this variable).
func (d VarDelta) DeltaShare() float64 { return d.AfterShare - d.BeforeShare }

// DiffVariables compares two merged profiles on a metric, returning one
// row per variable present in either, sorted by |share change| descending.
func DiffVariables(before, after *cct.Profile, m metric.ID) []VarDelta {
	type side struct {
		share float64
		value uint64
		class cct.Class
	}
	collect := func(p *cct.Profile) map[string]side {
		out := map[string]side{}
		for _, v := range RankVariables(p, m) {
			out[v.Name] = side{share: v.Share, value: v.Value, class: v.Class}
		}
		return out
	}
	b, a := collect(before), collect(after)
	names := map[string]bool{}
	for n := range b {
		names[n] = true
	}
	for n := range a {
		names[n] = true
	}
	var out []VarDelta
	for n := range names {
		d := VarDelta{Variable: n}
		if s, ok := b[n]; ok {
			d.BeforeShare, d.BeforeValue, d.Class = s.share, s.value, s.class
		}
		if s, ok := a[n]; ok {
			d.AfterShare, d.AfterValue, d.Class = s.share, s.value, s.class
		}
		out = append(out, d)
	}
	sort.SliceStable(out, func(i, j int) bool {
		di, dj := out[i].DeltaShare(), out[j].DeltaShare()
		if di < 0 {
			di = -di
		}
		if dj < 0 {
			dj = -dj
		}
		if di != dj {
			return di > dj
		}
		return out[i].Variable < out[j].Variable
	})
	return out
}

// RenderDiff formats the per-variable comparison.
func RenderDiff(before, after *cct.Profile, m metric.ID, maxRows int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "profile diff — metric %s (before: %d total, after: %d total)\n",
		m.Name(), MetricTotal(before, m), MetricTotal(after, m))
	rows := 0
	for _, d := range DiffVariables(before, after, m) {
		if maxRows > 0 && rows >= maxRows {
			break
		}
		arrow := "="
		switch {
		case d.DeltaShare() < -0.005:
			arrow = "improved"
		case d.DeltaShare() > 0.005:
			arrow = "worsened"
		}
		fmt.Fprintf(&b, "%6.1f%% -> %5.1f%%  %-24s %s\n",
			100*d.BeforeShare, 100*d.AfterShare, d.Variable, arrow)
		rows++
	}
	return b.String()
}
