package view

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"dcprof/internal/cct"
	"dcprof/internal/metric"
)

func jsonTestProfile() *cct.Profile {
	p := cct.NewProfile(0, 0, "IBS@4096")
	var v metric.Vector
	v[metric.Samples] = 4
	v[metric.Latency] = 400
	heapPath := []cct.Frame{
		{Kind: cct.KindCall, Module: "exe", Name: "main", File: "main.c"},
		{Kind: cct.KindStmt, Module: "exe", Name: "main", File: "main.c", Line: 10},
		{Kind: cct.KindCall, Module: "libc", Name: "malloc"},
		{Kind: cct.KindHeapData, Name: "grid"},
		{Kind: cct.KindStmt, Module: "exe", Name: "smooth", File: "sm.c", Line: 42},
	}
	p.Trees[cct.ClassHeap].AddSample(heapPath, &v)
	p.Trees[cct.ClassStatic].AddSample([]cct.Frame{
		{Kind: cct.KindStaticVar, Module: "exe", Name: "lut", File: "main.c"},
		{Kind: cct.KindStmt, Module: "exe", Name: "init", File: "main.c", Line: 3},
	}, &v)
	return p
}

func TestTopDownJSONShape(t *testing.T) {
	p := jsonTestProfile()
	o := Options{Metric: metric.Latency, MaxDepth: DefaultMaxDepth, MinShare: 0}
	rep := TopDownJSON(p, o)
	if rep.Total != 800 {
		t.Errorf("total = %d, want 800", rep.Total)
	}
	if len(rep.Classes) != 2 {
		t.Fatalf("classes = %d, want 2", len(rep.Classes))
	}
	var shares float64
	for _, c := range rep.Classes {
		shares += c.Share
		if len(c.Children) == 0 {
			t.Errorf("class %s has no children", c.Class)
		}
	}
	if shares < 0.999 || shares > 1.001 {
		t.Errorf("class shares sum to %f", shares)
	}

	// Depth pruning: MaxDepth 1 keeps only the class roots' direct children.
	shallow := TopDownJSON(p, Options{Metric: metric.Latency, MaxDepth: 1})
	for _, c := range shallow.Classes {
		for _, n := range c.Children {
			if len(n.Children) != 0 {
				t.Errorf("MaxDepth=1 left grandchildren under %s", n.Name)
			}
		}
	}
}

// The report must render deterministically and with stable snake_case
// keys — consumers (and the byte-identical serving contract) depend on it.
func TestTopDownJSONDeterministic(t *testing.T) {
	o := Options{Metric: metric.Latency}
	var a, b bytes.Buffer
	if err := WriteTopDownJSON(&a, jsonTestProfile(), o); err != nil {
		t.Fatal(err)
	}
	if err := WriteTopDownJSON(&b, jsonTestProfile(), o); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two renders of equal profiles differ")
	}
	for _, key := range []string{`"event"`, `"metric"`, `"total"`, `"classes"`, `"share"`, `"value"`} {
		if !strings.Contains(a.String(), key) {
			t.Errorf("report missing key %s:\n%s", key, a.String())
		}
	}
}

func TestTopDownJSONEmptyProfile(t *testing.T) {
	p := cct.NewProfile(0, 0, "IBS@4096")
	var buf bytes.Buffer
	if err := WriteTopDownJSON(&buf, p, Options{Metric: metric.Latency}); err != nil {
		t.Fatal(err)
	}
	// Classes must be [], not null.
	if !strings.Contains(buf.String(), `"classes": []`) {
		t.Errorf("empty profile classes not []:\n%s", buf.String())
	}
}

func TestBottomUpJSON(t *testing.T) {
	p := jsonTestProfile()
	rep := BottomUpJSON(p, Options{Metric: metric.Latency, MaxRows: DefaultMaxRows})
	if len(rep.Sites) != 1 {
		t.Fatalf("sites = %d, want 1", len(rep.Sites))
	}
	s := rep.Sites[0]
	if s.Allocator != "malloc" || s.Func != "main" || s.Variables != 1 {
		t.Errorf("site = %+v", s)
	}
	if s.Value != 400 {
		t.Errorf("site value = %d, want 400 (heap tree only)", s.Value)
	}

	// MaxRows bounds the table.
	if got := BottomUpJSON(p, Options{Metric: metric.Latency, MaxRows: 0}); len(got.Sites) != 1 {
		t.Errorf("unlimited rows = %d", len(got.Sites))
	}

	var buf bytes.Buffer
	if err := WriteBottomUpJSON(&buf, cct.NewProfile(0, 0, "x"), Options{Metric: metric.Latency}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"sites": []`) {
		t.Errorf("empty bottom-up sites not []:\n%s", buf.String())
	}
}

func TestDiffJSON(t *testing.T) {
	before, after := jsonTestProfile(), jsonTestProfile()
	var v metric.Vector
	v[metric.Latency] = 1200
	after.Trees[cct.ClassStatic].AddSample([]cct.Frame{
		{Kind: cct.KindStaticVar, Module: "exe", Name: "lut", File: "main.c"},
		{Kind: cct.KindStmt, Module: "exe", Name: "init", File: "main.c", Line: 3},
	}, &v)

	rep := DiffJSON(before, after, metric.Latency, 0)
	if rep.BeforeTotal != 800 || rep.AfterTotal != 2000 {
		t.Errorf("totals = %d -> %d", rep.BeforeTotal, rep.AfterTotal)
	}
	if len(rep.Rows) == 0 {
		t.Fatal("no rows")
	}
	// lut moved most: it must sort first, and delta must be consistent.
	if rep.Rows[0].Variable != "lut" {
		t.Errorf("top row = %q, want lut", rep.Rows[0].Variable)
	}
	for _, r := range rep.Rows {
		if got := r.AfterShare - r.BeforeShare; got != r.DeltaShare {
			t.Errorf("row %s delta %f != after-before %f", r.Variable, r.DeltaShare, got)
		}
	}

	// Round-trips through encoding/json without loss of the row shape.
	var buf bytes.Buffer
	if err := WriteDiffJSON(&buf, before, after, metric.Latency, 1); err != nil {
		t.Fatal(err)
	}
	var back DiffReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Rows) != 1 || back.Rows[0].Variable != "lut" {
		t.Errorf("round-trip rows = %+v", back.Rows)
	}
}
