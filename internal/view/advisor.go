package view

// The advisor implements the guidance the paper's §7 proposes as future
// work: from the data-centric profile alone, classify each hot variable's
// pathology and suggest the transformation family the paper's case studies
// applied (interleaved allocation / parallel first touch for NUMA problems;
// layout transposes or loop interchange for spatial-locality problems).

import (
	"fmt"
	"sort"
	"strings"

	"dcprof/internal/cct"
	"dcprof/internal/metric"
)

// Pathology classifies what the samples say about a variable.
type Pathology uint8

const (
	// PathologyNone: the variable's accesses look healthy.
	PathologyNone Pathology = iota
	// PathologyNUMA: most sampled loads are served by remote memory or a
	// remote cache — the placement is wrong for the access pattern.
	PathologyNUMA
	// PathologySpatial: accesses miss the TLB at a high rate — large
	// strides or indirection defeating spatial locality.
	PathologySpatial
	// PathologyLatency: latency is concentrated here without a NUMA or TLB
	// signature — capacity/temporal locality problems.
	PathologyLatency
)

// String names the pathology.
func (p Pathology) String() string {
	switch p {
	case PathologyNUMA:
		return "NUMA placement"
	case PathologySpatial:
		return "spatial locality"
	case PathologyLatency:
		return "temporal locality / capacity"
	default:
		return "none"
	}
}

// Advice is the advisor's verdict for one variable.
type Advice struct {
	// Variable and Class identify the data.
	Variable string
	Class    cct.Class
	// Pathology is the diagnosed problem.
	Pathology Pathology
	// RemoteShare is the fraction of the variable's memory-serving samples
	// that came from remote memory or a remote cache.
	RemoteShare float64
	// TLBMissShare is the fraction of its samples that missed the TLB.
	TLBMissShare float64
	// LatencyShare is its share of the profile's total sampled latency.
	LatencyShare float64
	// Suggestion is the recommended transformation.
	Suggestion string
}

// adviceThresholds tune the classifier.
const (
	adviceMinLatencyShare = 0.02
	adviceNUMAShare       = 0.5
	adviceTLBShare        = 0.3
)

// Advise inspects every variable in the profile and returns suggestions for
// the ones whose samples exhibit a recognizable pathology, ordered by
// latency share.
func Advise(p *cct.Profile) []Advice {
	grandLatency := MetricTotal(p, metric.Latency)
	var out []Advice
	for _, v := range RankVariables(p, metric.Latency) {
		inc := v.Node.Inclusive()
		mem := inc[metric.FromLMEM] + inc[metric.FromRMEM] + inc[metric.FromRL3]
		samples := inc[metric.Samples]
		if samples == 0 {
			continue
		}
		a := Advice{Variable: v.Name, Class: v.Class}
		if grandLatency > 0 {
			a.LatencyShare = float64(inc[metric.Latency]) / float64(grandLatency)
		}
		if mem > 0 {
			a.RemoteShare = float64(inc[metric.FromRMEM]+inc[metric.FromRL3]) / float64(mem)
		}
		a.TLBMissShare = float64(inc[metric.TLBMiss]) / float64(samples)

		if a.LatencyShare < adviceMinLatencyShare {
			continue
		}
		switch {
		case mem > 0 && a.RemoteShare >= adviceNUMAShare:
			a.Pathology = PathologyNUMA
			if v.Class == cct.ClassHeap {
				a.Suggestion = "allocate with numa_alloc_interleaved (libnuma), or switch calloc to malloc and initialize in parallel so first touch distributes pages"
			} else {
				a.Suggestion = "distribute the pages across NUMA domains (interleave) or restructure so each thread initializes the part it uses"
			}
		case a.TLBMissShare >= adviceTLBShare:
			a.Pathology = PathologySpatial
			a.Suggestion = "large access strides: transpose the array's dimensions or interchange loops so the innermost loop is unit-stride"
		default:
			a.Pathology = PathologyLatency
			a.Suggestion = "poor reuse: consider blocking/tiling, fusing the loops that touch this data, or regrouping hot fields"
		}
		out = append(out, a)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].LatencyShare > out[j].LatencyShare })
	return out
}

// RenderAdvice formats the advisor's output.
func RenderAdvice(p *cct.Profile, maxRows int) string {
	var b strings.Builder
	b.WriteString("optimization guidance (per-variable diagnosis)\n")
	advice := Advise(p)
	if len(advice) == 0 {
		b.WriteString("  (no variable exceeds the reporting threshold)\n")
		return b.String()
	}
	for i, a := range advice {
		if maxRows > 0 && i >= maxRows {
			break
		}
		fmt.Fprintf(&b, "%6.1f%%  %-20s %-28s remote=%.0f%% tlbmiss=%.0f%%\n",
			100*a.LatencyShare, a.Variable, "["+a.Pathology.String()+"]",
			100*a.RemoteShare, 100*a.TLBMissShare)
		fmt.Fprintf(&b, "         -> %s\n", a.Suggestion)
	}
	return b.String()
}
