package view

import (
	"strings"
	"testing"

	"dcprof/internal/cct"
	"dcprof/internal/metric"
)

// buildProfile constructs a profile shaped like the paper's AMG figure:
// two heap variables and one static variable with known remote-access
// weights, so share computations can be checked exactly.
func buildProfile() *cct.Profile {
	p := cct.NewProfile(0, 0, "PM_MRK_DATA_FROM_RMEM@1000")

	call := func(name string, line int) cct.Frame {
		return cct.Frame{Kind: cct.KindCall, Module: "exe", Name: name, File: name + ".c", Line: line}
	}
	stmt := func(name string, line int) cct.Frame {
		return cct.Frame{Kind: cct.KindStmt, Module: "exe", Name: name, File: name + ".c", Line: line}
	}
	vec := func(rmem uint64) *metric.Vector {
		var v metric.Vector
		v[metric.Samples] = rmem
		v[metric.FromRMEM] = rmem
		v[metric.Latency] = rmem * 300
		return &v
	}

	// Heap variable "S_diag_j": allocated at hypre_CAlloc@hypre_CAlloc.c:175
	// via calloc; two access statements with weights 60 and 10.
	allocPath := []cct.Frame{
		call("main", 0), call("hypre_CAlloc", 120), stmt("hypre_CAlloc", 175),
		{Kind: cct.KindCall, Module: "libc", Name: "calloc", File: "stdlib.h"},
		{Kind: cct.KindHeapData, Name: "S_diag_j"},
	}
	acc1 := append(append([]cct.Frame{}, allocPath...), call("main", 0), call("omp_fn.0", 300), stmt("omp_fn.0", 310))
	acc2 := append(append([]cct.Frame{}, allocPath...), call("main", 0), call("omp_fn.1", 400), stmt("omp_fn.1", 410))
	p.Trees[cct.ClassHeap].AddSample(acc1, vec(60))
	p.Trees[cct.ClassHeap].AddSample(acc2, vec(10))

	// Heap variable "A_offd": different allocation line in the same func.
	alloc2 := []cct.Frame{
		call("main", 0), call("hypre_CAlloc", 120), stmt("hypre_CAlloc", 180),
		{Kind: cct.KindCall, Module: "libc", Name: "calloc", File: "stdlib.h"},
		{Kind: cct.KindHeapData, Name: "A_offd"},
	}
	acc3 := append(append([]cct.Frame{}, alloc2...), call("main", 0), stmt("relax", 90))
	p.Trees[cct.ClassHeap].AddSample(acc3, vec(20))

	// Static variable "f_elem" with weight 10.
	p.Trees[cct.ClassStatic].AddSample([]cct.Frame{
		{Kind: cct.KindStaticVar, Module: "exe", Name: "f_elem"},
		call("main", 0), stmt("kernel", 801),
	}, vec(10))

	return p
}

func TestClassShares(t *testing.T) {
	p := buildProfile()
	shares := ClassShares(p, metric.FromRMEM)
	// Heap 90/100, static 10/100.
	if got := shares[cct.ClassHeap]; got < 0.899 || got > 0.901 {
		t.Errorf("heap share = %v, want 0.9", got)
	}
	if got := shares[cct.ClassStatic]; got < 0.099 || got > 0.101 {
		t.Errorf("static share = %v, want 0.1", got)
	}
	if shares[cct.ClassUnknown] != 0 || shares[cct.ClassNonMem] != 0 {
		t.Error("empty classes should have zero share")
	}
}

func TestClassSharesEmptyProfile(t *testing.T) {
	p := cct.NewProfile(0, 0, "x")
	shares := ClassShares(p, metric.FromRMEM)
	for _, s := range shares {
		if s != 0 {
			t.Error("empty profile should have zero shares")
		}
	}
}

func TestRankVariables(t *testing.T) {
	p := buildProfile()
	vars := RankVariables(p, metric.FromRMEM)
	if len(vars) != 3 {
		t.Fatalf("found %d variables, want 3", len(vars))
	}
	// Sorted: S_diag_j (70), A_offd (20), f_elem (10).
	if vars[0].Name != "S_diag_j" || vars[0].Value != 70 {
		t.Errorf("top variable = %s/%d", vars[0].Name, vars[0].Value)
	}
	if s := vars[0].Share; s < 0.699 || s > 0.701 {
		t.Errorf("top share = %v, want 0.7", s)
	}
	if vars[1].Name != "A_offd" || vars[2].Name != "f_elem" {
		t.Errorf("order: %s, %s", vars[1].Name, vars[2].Name)
	}
	if vars[2].Class != cct.ClassStatic {
		t.Error("f_elem should be static")
	}
	if !strings.Contains(vars[0].AllocSite, "hypre_CAlloc") || !strings.Contains(vars[0].AllocSite, "175") {
		t.Errorf("alloc site = %q", vars[0].AllocSite)
	}
}

func TestTopAccesses(t *testing.T) {
	p := buildProfile()
	vars := RankVariables(p, metric.FromRMEM)
	grand := MetricTotal(p, metric.FromRMEM)
	if grand != 100 {
		t.Fatalf("grand total = %d, want 100", grand)
	}
	accs := TopAccesses(vars[0].Node, metric.FromRMEM, grand)
	if len(accs) != 2 {
		t.Fatalf("accesses = %d, want 2", len(accs))
	}
	if accs[0].Value != 60 || accs[0].Line != 310 {
		t.Errorf("top access = %d@%d", accs[0].Value, accs[0].Line)
	}
	if accs[0].Share < 0.599 || accs[0].Share > 0.601 {
		t.Errorf("top access share = %v, want 0.6", accs[0].Share)
	}
	if accs[1].Value != 10 || accs[1].Line != 410 {
		t.Errorf("second access = %d@%d", accs[1].Value, accs[1].Line)
	}
}

func TestBottomUpAggregatesSites(t *testing.T) {
	p := buildProfile()
	sites := BottomUp(p, metric.FromRMEM)
	if len(sites) != 2 {
		t.Fatalf("sites = %d, want 2 (lines 175 and 180)", len(sites))
	}
	if sites[0].Line != 175 || sites[0].Value != 70 {
		t.Errorf("top site = line %d value %d", sites[0].Line, sites[0].Value)
	}
	if sites[0].Allocator != "calloc" || sites[0].Variables != 1 {
		t.Errorf("site meta = %s/%d", sites[0].Allocator, sites[0].Variables)
	}
	if sites[1].Line != 180 || sites[1].Value != 20 {
		t.Errorf("second site = line %d value %d", sites[1].Line, sites[1].Value)
	}
}

func TestBottomUpMergesSameSiteAcrossContexts(t *testing.T) {
	// Two variables allocated at the SAME statement from different calling
	// contexts must aggregate into one bottom-up row.
	p := cct.NewProfile(0, 0, "e")
	mk := func(ctx string, w uint64) {
		var v metric.Vector
		v[metric.FromRMEM] = w
		path := []cct.Frame{
			{Kind: cct.KindCall, Module: "exe", Name: ctx, File: ctx + ".c"},
			{Kind: cct.KindCall, Module: "exe", Name: "alloc_helper", File: "h.c", Line: 9},
			{Kind: cct.KindStmt, Module: "exe", Name: "alloc_helper", File: "h.c", Line: 12},
			{Kind: cct.KindCall, Module: "libc", Name: "malloc", File: "stdlib.h"},
			{Kind: cct.KindHeapData},
			{Kind: cct.KindStmt, Module: "exe", Name: ctx, File: ctx + ".c", Line: 50},
		}
		p.Trees[cct.ClassHeap].AddSample(path, &v)
	}
	mk("phase1", 30)
	mk("phase2", 20)
	sites := BottomUp(p, metric.FromRMEM)
	if len(sites) != 1 {
		t.Fatalf("sites = %d, want 1", len(sites))
	}
	if sites[0].Value != 50 || sites[0].Variables != 2 {
		t.Errorf("aggregated site = value %d, vars %d; want 50, 2", sites[0].Value, sites[0].Variables)
	}
}

func TestRenderTopDown(t *testing.T) {
	p := buildProfile()
	out := RenderTopDown(p, Options{Metric: metric.FromRMEM})
	for _, want := range []string{
		"90.0%", "[heap data]", "10.0%", "[static data]",
		"S_diag_j", "hypre_CAlloc", "calloc", "static f_elem",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("top-down output missing %q\n%s", want, out)
		}
	}
}

func TestRenderTopDownDepthAndShareFilters(t *testing.T) {
	p := buildProfile()
	full := RenderTopDown(p, Options{Metric: metric.FromRMEM})
	shallow := RenderTopDown(p, Options{Metric: metric.FromRMEM, MaxDepth: 2})
	if len(shallow) >= len(full) {
		t.Error("MaxDepth did not prune")
	}
	filtered := RenderTopDown(p, Options{Metric: metric.FromRMEM, MinShare: 0.5})
	if strings.Contains(filtered, "A_offd") {
		t.Error("MinShare did not hide the 20% variable")
	}
	if !strings.Contains(filtered, "S_diag_j") {
		t.Error("MinShare hid the 70% variable")
	}
}

func TestRenderVariablesAndBottomUp(t *testing.T) {
	p := buildProfile()
	vo := RenderVariables(p, Options{Metric: metric.FromRMEM})
	if !strings.Contains(vo, "S_diag_j") || !strings.Contains(vo, "70.0%") {
		t.Errorf("variables render:\n%s", vo)
	}
	limited := RenderVariables(p, Options{Metric: metric.FromRMEM, MaxRows: 1})
	if strings.Contains(limited, "A_offd") {
		t.Error("MaxRows did not limit")
	}
	bo := RenderBottomUp(p, Options{Metric: metric.FromRMEM})
	if !strings.Contains(bo, "hypre_CAlloc.c:175") {
		t.Errorf("bottom-up render:\n%s", bo)
	}
}

func TestRenderEmptyProfile(t *testing.T) {
	p := cct.NewProfile(0, 0, "e")
	out := RenderTopDown(p, Options{Metric: metric.FromRMEM})
	if !strings.Contains(out, "no samples") {
		t.Errorf("empty render:\n%s", out)
	}
}
