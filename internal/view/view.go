// Package view is the presentation layer — the text analogue of
// HPCToolkit's GUI panes. It computes the same aggregations the paper's
// figures show:
//
//   - storage-class shares (e.g. "94.9% of remote accesses are in heap
//     data"),
//   - ranked variables, each a static symbol or a heap allocation path,
//     with its share of a chosen metric,
//   - per-variable top access statements ("one access accounts for 19.3%"),
//   - the top-down contextual tree, and
//   - the bottom-up aggregation by allocation call site (Figure 5).
package view

import (
	"fmt"
	"sort"
	"strings"

	"dcprof/internal/cct"
	"dcprof/internal/metric"
)

// ClassShares returns each storage class's share of the metric's total
// across all classes.
func ClassShares(p *cct.Profile, m metric.ID) [cct.NumClasses]float64 {
	var shares [cct.NumClasses]float64
	var totals [cct.NumClasses]uint64
	var grand uint64
	for c := range p.Trees {
		totals[c] = p.Trees[c].Total()[m]
		grand += totals[c]
	}
	if grand == 0 {
		return shares
	}
	for c := range shares {
		shares[c] = float64(totals[c]) / float64(grand)
	}
	return shares
}

// VarStat describes one variable's aggregate cost.
type VarStat struct {
	// Name is the display name: the allocation label, the static symbol, or
	// a synthesized "site" name.
	Name string
	// Class is ClassHeap or ClassStatic.
	Class cct.Class
	// AllocSite locates the allocation statement ("func@file:line") for
	// heap variables; empty for statics.
	AllocSite string
	// Value is the variable's inclusive metric value.
	Value uint64
	// Share is Value over the metric total across all storage classes.
	Share float64
	// Node is the variable's anchor node (the heap-data mark or the static
	// dummy node).
	Node *cct.Node
}

// RankVariables lists every variable (heap and static) sorted by descending
// metric value. Shares are fractions of the profile-wide metric total.
func RankVariables(p *cct.Profile, m metric.ID) []VarStat {
	var grand uint64
	for _, t := range p.Trees {
		grand += t.Total()[m]
	}
	var out []VarStat

	p.Trees[cct.ClassHeap].Walk(func(n *cct.Node, _ int) bool {
		if n.Frame.Kind != cct.KindHeapData {
			return true
		}
		inc := n.Inclusive()
		st := VarStat{
			Name:      n.Frame.Name,
			Class:     cct.ClassHeap,
			AllocSite: allocSiteOf(n),
			Value:     inc[m],
			Node:      n,
		}
		if st.Name == "" {
			st.Name = st.AllocSite
		}
		out = append(out, st)
		return false // don't descend into access paths
	})
	p.Trees[cct.ClassStatic].Walk(func(n *cct.Node, _ int) bool {
		if n.Frame.Kind != cct.KindStaticVar {
			return true
		}
		inc := n.Inclusive()
		out = append(out, VarStat{
			Name:  n.Frame.Name,
			Class: cct.ClassStatic,
			Value: inc[m],
			Node:  n,
		})
		return false
	})
	// Registered stack variables (§7 extension) live in the unknown tree
	// under their own dummy nodes.
	p.Trees[cct.ClassUnknown].Walk(func(n *cct.Node, _ int) bool {
		if n.Frame.Kind != cct.KindStackVar {
			return true
		}
		inc := n.Inclusive()
		out = append(out, VarStat{
			Name:  n.Frame.Name,
			Class: cct.ClassUnknown,
			Value: inc[m],
			Node:  n,
		})
		return false
	})

	if grand > 0 {
		for i := range out {
			out[i].Share = float64(out[i].Value) / float64(grand)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Value != out[j].Value {
			return out[i].Value > out[j].Value
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// allocSiteOf walks up from a heap-data mark to its allocation statement:
// mark -> allocator call (calloc/malloc) -> allocation statement.
func allocSiteOf(mark *cct.Node) string {
	alloc := mark.Parent() // the calloc/malloc frame
	if alloc == nil {
		return "?"
	}
	stmt := alloc.Parent()
	if stmt == nil || stmt.Frame.Kind != cct.KindStmt {
		return alloc.Frame.Name
	}
	return fmt.Sprintf("%s@%s:%d (%s)", stmt.Frame.Name, stmt.Frame.File, stmt.Frame.Line, alloc.Frame.Name)
}

// AccessStat is one statement accessing a variable.
type AccessStat struct {
	// Func, File, Line locate the access.
	Func, File string
	Line       int
	// Value is the statement's metric value for this variable.
	Value uint64
	// Share is Value over the profile-wide metric total (as the paper
	// reports: "this access accounts for 19.3% of total remote accesses").
	Share float64
}

// TopAccesses ranks the statements below a variable's anchor node. The
// grand total used for shares is passed in (profile-wide metric total).
// Aggregation keys on interned FrameIDs (a FrameID and its Frame are in
// bijection), so grouping hashes integers instead of string tuples.
func TopAccesses(anchor *cct.Node, m metric.ID, grand uint64) []AccessStat {
	agg := map[cct.FrameID]uint64{}
	var walk func(n *cct.Node)
	walk = func(n *cct.Node) {
		if n.Frame.Kind == cct.KindStmt && n.Metrics[m] > 0 {
			agg[n.ID()] += n.Metrics[m]
		}
		for _, c := range n.Children() {
			walk(c)
		}
	}
	for _, c := range anchor.Children() {
		walk(c)
	}
	out := make([]AccessStat, 0, len(agg))
	for id, v := range agg {
		f := cct.FrameByID(id)
		s := AccessStat{Func: f.Name, File: f.File, Line: f.Line, Value: v}
		if grand > 0 {
			s.Share = float64(v) / float64(grand)
		}
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Value != out[j].Value {
			return out[i].Value > out[j].Value
		}
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		return out[i].Line < out[j].Line
	})
	return out
}

// MetricTotal returns the metric's total across all storage classes.
func MetricTotal(p *cct.Profile, m metric.ID) uint64 {
	var grand uint64
	for _, t := range p.Trees {
		grand += t.Total()[m]
	}
	return grand
}

// AllocSiteStat is the bottom-up view's unit: one allocation call site with
// every cost of every variable allocated there, across all calling contexts
// that reach it.
type AllocSiteStat struct {
	// Func, File, Line locate the allocation statement.
	Func, File string
	Line       int
	// Allocator is the entry point used (malloc/calloc/realloc).
	Allocator string
	// Variables counts distinct variables (allocation paths) through this
	// site.
	Variables int
	// Value and Share aggregate the metric over those variables.
	Value uint64
	Share float64
}

// BottomUp aggregates heap variables by their allocation statement,
// regardless of the calling context above it — the paper's bottom-up view,
// which exposes "the same malloc called from different contexts" as one row.
func BottomUp(p *cct.Profile, m metric.ID) []AllocSiteStat {
	grand := MetricTotal(p, m)
	type key struct {
		fn, file  string
		line      int
		allocator string
	}
	agg := map[key]*AllocSiteStat{}
	p.Trees[cct.ClassHeap].Walk(func(n *cct.Node, _ int) bool {
		if n.Frame.Kind != cct.KindHeapData {
			return true
		}
		alloc := n.Parent()
		stmt := alloc.Parent()
		k := key{allocator: alloc.Frame.Name}
		if stmt != nil && stmt.Frame.Kind == cct.KindStmt {
			k.fn, k.file, k.line = stmt.Frame.Name, stmt.Frame.File, stmt.Frame.Line
		}
		st := agg[k]
		if st == nil {
			st = &AllocSiteStat{Func: k.fn, File: k.file, Line: k.line, Allocator: k.allocator}
			agg[k] = st
		}
		st.Variables++
		st.Value += n.Inclusive()[m]
		return false
	})
	out := make([]AllocSiteStat, 0, len(agg))
	for _, st := range agg {
		if grand > 0 {
			st.Share = float64(st.Value) / float64(grand)
		}
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Value != out[j].Value {
			return out[i].Value > out[j].Value
		}
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		return out[i].Line < out[j].Line
	})
	return out
}

// CallerSiteStat is one row of the caller-level bottom-up view: a call site
// that invokes an allocating wrapper (e.g. every `hypre_CAlloc(...)` call in
// AMG2006), aggregated over all variables allocated through it.
type CallerSiteStat struct {
	// Caller is the function containing the call; Line is the call line.
	Caller, File string
	Line         int
	// Wrapper is the allocating function that was called (e.g. hypre_CAlloc).
	Wrapper string
	// Variables counts distinct variables allocated through this site.
	Variables int
	// Value and Share aggregate the metric.
	Value uint64
	Share float64
	// Names lists the labels of the variables (when labelled).
	Names []string
}

// BottomUpCallers aggregates heap variables one level higher than BottomUp:
// by the call site that invoked the allocating wrapper function — the
// paper's Figure 5, where each row is a distinct `hypre_CAlloc` invocation.
func BottomUpCallers(p *cct.Profile, m metric.ID) []CallerSiteStat {
	grand := MetricTotal(p, m)
	type key struct {
		caller, file string
		line         int
		wrapper      string
	}
	agg := map[key]*CallerSiteStat{}
	p.Trees[cct.ClassHeap].Walk(func(n *cct.Node, _ int) bool {
		if n.Frame.Kind != cct.KindHeapData {
			return true
		}
		alloc := n.Parent() // malloc/calloc frame
		stmt := alloc.Parent()
		var k key
		if stmt != nil && stmt.Frame.Kind == cct.KindStmt {
			k.wrapper = stmt.Frame.Name
			if wrapCall := stmt.Parent(); wrapCall != nil && wrapCall.Frame.Kind == cct.KindCall {
				k.line = wrapCall.Frame.Line
				if callerFrame := wrapCall.Parent(); callerFrame != nil && callerFrame.Frame.Kind == cct.KindCall {
					k.caller = callerFrame.Frame.Name
					k.file = callerFrame.Frame.File
				}
			}
		} else {
			k.wrapper = alloc.Frame.Name
		}
		st := agg[k]
		if st == nil {
			st = &CallerSiteStat{Caller: k.caller, File: k.file, Line: k.line, Wrapper: k.wrapper}
			agg[k] = st
		}
		st.Variables++
		st.Value += n.Inclusive()[m]
		if n.Frame.Name != "" {
			st.Names = append(st.Names, n.Frame.Name)
		}
		return false
	})
	out := make([]CallerSiteStat, 0, len(agg))
	for _, st := range agg {
		if grand > 0 {
			st.Share = float64(st.Value) / float64(grand)
		}
		sort.Strings(st.Names)
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Value != out[j].Value {
			return out[i].Value > out[j].Value
		}
		if out[i].Caller != out[j].Caller {
			return out[i].Caller < out[j].Caller
		}
		return out[i].Line < out[j].Line
	})
	return out
}

// Options controls text rendering.
type Options struct {
	// Metric selects the ranking metric.
	Metric metric.ID
	// MaxDepth prunes the top-down tree (0 = unlimited).
	MaxDepth int
	// MinShare hides nodes below this fraction of the total (e.g. 0.01).
	MinShare float64
	// MaxRows limits table-style sections (0 = unlimited).
	MaxRows int
}

// RenderTopDown renders the classic top-down pane: storage-class roots with
// their trees beneath, annotated with inclusive shares of Options.Metric.
func RenderTopDown(p *cct.Profile, o Options) string {
	grand := MetricTotal(p, o.Metric)
	var b strings.Builder
	fmt.Fprintf(&b, "top-down view — metric %s, total %d, event %s\n", o.Metric.Name(), grand, p.Event)
	if grand == 0 {
		b.WriteString("  (no samples)\n")
		return b.String()
	}
	for c, tree := range p.Trees {
		classTotal := tree.Total()[o.Metric]
		if classTotal == 0 {
			continue
		}
		fmt.Fprintf(&b, "%6.1f%%  [%s]\n", pct(classTotal, grand), cct.Class(c))
		renderNode(&b, tree.Root, 1, grand, o)
	}
	return b.String()
}

func renderNode(b *strings.Builder, n *cct.Node, depth int, grand uint64, o Options) {
	if o.MaxDepth > 0 && depth > o.MaxDepth {
		return
	}
	for _, c := range n.Children() {
		inc := c.Inclusive()[o.Metric]
		if inc == 0 {
			continue
		}
		share := float64(inc) / float64(grand)
		if share < o.MinShare {
			continue
		}
		fmt.Fprintf(b, "%6.1f%%  %s%s\n", 100*share, strings.Repeat("  ", depth), c.Frame)
		renderNode(b, c, depth+1, grand, o)
	}
}

// RenderVariables renders the ranked-variable table.
func RenderVariables(p *cct.Profile, o Options) string {
	vars := RankVariables(p, o.Metric)
	var b strings.Builder
	fmt.Fprintf(&b, "variables by %s (total %d)\n", o.Metric.Name(), MetricTotal(p, o.Metric))
	rows := 0
	for _, v := range vars {
		if v.Value == 0 {
			continue
		}
		if o.MaxRows > 0 && rows >= o.MaxRows {
			break
		}
		loc := v.AllocSite
		if v.Class == cct.ClassStatic {
			loc = "static [" + v.Node.Frame.Module + "]"
		}
		fmt.Fprintf(&b, "%6.1f%%  %-24s %s\n", 100*v.Share, v.Name, loc)
		rows++
	}
	return b.String()
}

// RenderBottomUp renders the allocation-call-site table.
func RenderBottomUp(p *cct.Profile, o Options) string {
	sites := BottomUp(p, o.Metric)
	var b strings.Builder
	fmt.Fprintf(&b, "bottom-up view — allocation sites by %s\n", o.Metric.Name())
	rows := 0
	for _, s := range sites {
		if s.Value == 0 {
			continue
		}
		if o.MaxRows > 0 && rows >= o.MaxRows {
			break
		}
		fmt.Fprintf(&b, "%6.1f%%  %s@%s:%d (%s, %d variable(s))\n",
			100*s.Share, s.Func, s.File, s.Line, s.Allocator, s.Variables)
		rows++
	}
	return b.String()
}

func pct(v, total uint64) float64 {
	if total == 0 {
		return 0
	}
	return 100 * float64(v) / float64(total)
}
