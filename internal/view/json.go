package view

// Machine-readable report forms of the data-centric views. These are the
// single JSON serialization for each view: `dcview -json -view topdown`
// and the profiling service's GET /collections/{name}/topdown both render
// through WriteTopDownJSON (likewise bottomup and diff), so the offline
// and served surfaces are byte-identical by construction and cannot
// drift. Field names are stable snake_case; values that are durations or
// counts stay integers so consumers never parse formatted strings.

import (
	"encoding/json"
	"io"

	"dcprof/internal/cct"
	"dcprof/internal/metric"
)

// Default rendering bounds, shared by the dcview flag defaults and the
// serving layer's query-parameter defaults so the two surfaces agree when
// the caller does not say otherwise.
const (
	DefaultMaxRows  = 20
	DefaultMaxDepth = 12
	DefaultMinShare = 0.005
)

// TopDownReport is the JSON form of the top-down contextual view.
type TopDownReport struct {
	Event  string `json:"event"`
	Metric string `json:"metric"`
	// Total is the metric's profile-wide total across all storage classes.
	Total uint64 `json:"total"`
	// Classes lists each storage class with a non-zero total, in class
	// order, with its pruned context tree beneath.
	Classes []TopDownClass `json:"classes"`
}

// TopDownClass is one storage class's subtree in the report.
type TopDownClass struct {
	Class string  `json:"class"`
	Value uint64  `json:"value"`
	Share float64 `json:"share"`
	// Children is the pruned context tree under the class root; always an
	// array (possibly empty), never null.
	Children []*TopDownNode `json:"children"`
}

// TopDownNode is one CCT node in the report.
type TopDownNode struct {
	Kind   string `json:"kind"`
	Name   string `json:"name,omitempty"`
	Module string `json:"module,omitempty"`
	File   string `json:"file,omitempty"`
	Line   int    `json:"line,omitempty"`
	// Value is the node's inclusive metric value; Share is Value over the
	// profile-wide total.
	Value    uint64         `json:"value"`
	Share    float64        `json:"share"`
	Children []*TopDownNode `json:"children,omitempty"`
}

// TopDownJSON builds the top-down report, pruned by the same MaxDepth and
// MinShare rules RenderTopDown applies. Node order matches Children()'s
// deterministic frame order, so two merges of the same inputs — in any
// arrival order — serialize identically.
func TopDownJSON(p *cct.Profile, o Options) *TopDownReport {
	grand := MetricTotal(p, o.Metric)
	rep := &TopDownReport{
		Event:   p.Event,
		Metric:  o.Metric.Name(),
		Total:   grand,
		Classes: []TopDownClass{},
	}
	if grand == 0 {
		return rep
	}
	for c, tree := range p.Trees {
		classTotal := tree.Total()[o.Metric]
		if classTotal == 0 {
			continue
		}
		cls := TopDownClass{
			Class:    cct.Class(c).String(),
			Value:    classTotal,
			Share:    float64(classTotal) / float64(grand),
			Children: []*TopDownNode{},
		}
		cls.Children = topDownChildren(tree.Root, 1, grand, o)
		rep.Classes = append(rep.Classes, cls)
	}
	return rep
}

func topDownChildren(n *cct.Node, depth int, grand uint64, o Options) []*TopDownNode {
	out := []*TopDownNode{}
	if o.MaxDepth > 0 && depth > o.MaxDepth {
		return out
	}
	for _, c := range n.Children() {
		inc := c.Inclusive()[o.Metric]
		if inc == 0 {
			continue
		}
		share := float64(inc) / float64(grand)
		if share < o.MinShare {
			continue
		}
		out = append(out, &TopDownNode{
			Kind:     c.Frame.Kind.String(),
			Name:     c.Frame.Name,
			Module:   c.Frame.Module,
			File:     c.Frame.File,
			Line:     c.Frame.Line,
			Value:    inc,
			Share:    share,
			Children: topDownChildren(c, depth+1, grand, o),
		})
	}
	return out
}

// BottomUpReport is the JSON form of the bottom-up (allocation-site) view.
type BottomUpReport struct {
	Event  string `json:"event"`
	Metric string `json:"metric"`
	Total  uint64 `json:"total"`
	// Sites lists allocation call sites by descending value, bounded by
	// Options.MaxRows; always an array, never null.
	Sites []BottomUpSite `json:"sites"`
}

// BottomUpSite is one allocation call site in the report.
type BottomUpSite struct {
	Func      string  `json:"func,omitempty"`
	File      string  `json:"file,omitempty"`
	Line      int     `json:"line,omitempty"`
	Allocator string  `json:"allocator"`
	Variables int     `json:"variables"`
	Value     uint64  `json:"value"`
	Share     float64 `json:"share"`
}

// BottomUpJSON builds the bottom-up report over the same aggregation
// BottomUp computes, bounded by Options.MaxRows (0 = unlimited) and
// skipping zero-valued sites like the text renderer does.
func BottomUpJSON(p *cct.Profile, o Options) *BottomUpReport {
	rep := &BottomUpReport{
		Event:  p.Event,
		Metric: o.Metric.Name(),
		Total:  MetricTotal(p, o.Metric),
		Sites:  []BottomUpSite{},
	}
	for _, s := range BottomUp(p, o.Metric) {
		if s.Value == 0 {
			continue
		}
		if o.MaxRows > 0 && len(rep.Sites) >= o.MaxRows {
			break
		}
		rep.Sites = append(rep.Sites, BottomUpSite{
			Func: s.Func, File: s.File, Line: s.Line, Allocator: s.Allocator,
			Variables: s.Variables, Value: s.Value, Share: s.Share,
		})
	}
	return rep
}

// DiffReport is the JSON form of the per-variable profile comparison.
type DiffReport struct {
	Metric      string `json:"metric"`
	BeforeTotal uint64 `json:"before_total"`
	AfterTotal  uint64 `json:"after_total"`
	// Rows is sorted by |share change| descending, bounded by MaxRows;
	// always an array, never null.
	Rows []DiffRow `json:"rows"`
}

// DiffRow is one variable's movement between the two profiles.
type DiffRow struct {
	Variable    string  `json:"variable"`
	Class       string  `json:"class"`
	BeforeValue uint64  `json:"before_value"`
	AfterValue  uint64  `json:"after_value"`
	BeforeShare float64 `json:"before_share"`
	AfterShare  float64 `json:"after_share"`
	DeltaShare  float64 `json:"delta_share"`
}

// DiffJSON builds the diff report (before -> after), bounded by maxRows
// (0 = unlimited).
func DiffJSON(before, after *cct.Profile, m metric.ID, maxRows int) *DiffReport {
	rep := &DiffReport{
		Metric:      m.Name(),
		BeforeTotal: MetricTotal(before, m),
		AfterTotal:  MetricTotal(after, m),
		Rows:        []DiffRow{},
	}
	for _, d := range DiffVariables(before, after, m) {
		if maxRows > 0 && len(rep.Rows) >= maxRows {
			break
		}
		rep.Rows = append(rep.Rows, DiffRow{
			Variable:    d.Variable,
			Class:       d.Class.String(),
			BeforeValue: d.BeforeValue,
			AfterValue:  d.AfterValue,
			BeforeShare: d.BeforeShare,
			AfterShare:  d.AfterShare,
			DeltaShare:  d.DeltaShare(),
		})
	}
	return rep
}

// WriteTopDownJSON writes the top-down report as indented JSON.
func WriteTopDownJSON(w io.Writer, p *cct.Profile, o Options) error {
	return writeJSON(w, TopDownJSON(p, o))
}

// WriteBottomUpJSON writes the bottom-up report as indented JSON.
func WriteBottomUpJSON(w io.Writer, p *cct.Profile, o Options) error {
	return writeJSON(w, BottomUpJSON(p, o))
}

// WriteDiffJSON writes the diff report as indented JSON.
func WriteDiffJSON(w io.Writer, before, after *cct.Profile, m metric.ID, maxRows int) error {
	return writeJSON(w, DiffJSON(before, after, m, maxRows))
}

func writeJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}
