package view

// Temporal presentation: the detected-phase view. Like the other views,
// the JSON writer here is the single serializer — `dcview -phases -json`
// and dcprofd's GET /collections/{name}/phases both render through
// WritePhasesJSON, so offline and served output stay byte-identical.
// Window-restricted profiles (dcview -window, server ?window=) need no
// serializer of their own: a clipped profile is an ordinary cct.Profile
// and flows through the top-down/bottom-up writers above.

import (
	"fmt"
	"io"
	"strings"

	"dcprof/internal/temporal"
)

// PhasesReport is the JSON form of the detected-phase view.
type PhasesReport struct {
	Event string `json:"event"`
	// Width is the window width in sim cycles — phase boundaries are
	// multiples of it.
	Width uint64 `json:"window_width"`
	// Phases tile the sampled span in time order; always an array,
	// never null.
	Phases []temporal.Phase `json:"phases"`
}

// PhasesJSON builds the phase report.
func PhasesJSON(event string, width uint64, phases []temporal.Phase) *PhasesReport {
	if phases == nil {
		phases = []temporal.Phase{}
	}
	return &PhasesReport{Event: event, Width: width, Phases: phases}
}

// WritePhasesJSON writes the phase report as indented JSON.
func WritePhasesJSON(w io.Writer, event string, width uint64, phases []temporal.Phase) error {
	return writeJSON(w, PhasesJSON(event, width, phases))
}

// RenderPhases formats the detected phases as a table.
func RenderPhases(event string, width uint64, phases []temporal.Phase) string {
	var b strings.Builder
	fmt.Fprintf(&b, "execution phases — event %s, window %d cycles\n", event, width)
	if len(phases) == 0 {
		b.WriteString("(no phases detected)\n")
		return b.String()
	}
	for i, ph := range phases {
		fmt.Fprintf(&b, "%2d. cycles [%d, %d)  windows %d-%d  %-12s %d samples\n",
			i+1, ph.Start, ph.End, ph.StartWindow, ph.EndWindow, ph.Label, ph.Samples)
	}
	return b.String()
}
