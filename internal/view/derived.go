package view

// Derived metrics (§5): the paper first computes derived metrics to decide
// whether a program is memory-bound enough to justify data-centric
// analysis, and only then samples data-centric events. These are the
// profile-wide indicators that gate that decision.

import (
	"fmt"
	"strings"

	"dcprof/internal/cct"
	"dcprof/internal/metric"
)

// Derived summarizes a profile's memory behaviour.
type Derived struct {
	// Samples is the total sample count, MemSamples those on memory ops.
	Samples, MemSamples uint64
	// AvgLatency is average sampled access latency in cycles.
	AvgLatency float64
	// MemoryBound estimates the fraction of sampled latency beyond L1/L2
	// service — the "is this worth data-centric analysis?" gate.
	MemoryBound float64
	// RemoteRatio is the fraction of memory-serving samples that crossed
	// the interconnect (remote DRAM or remote cache).
	RemoteRatio float64
	// DRAMRatio is the fraction of memory samples served by any DRAM.
	DRAMRatio float64
	// TLBMissRatio is the fraction of memory samples missing the D-TLB.
	TLBMissRatio float64
	// StoreRatio is the fraction of memory samples that were writes.
	StoreRatio float64
}

// DeriveMetrics computes the profile-wide indicators.
func DeriveMetrics(p *cct.Profile) Derived {
	var total metric.Vector
	for _, t := range p.Trees {
		tv := t.Total()
		total.Add(&tv)
	}
	var d Derived
	d.Samples = total[metric.Samples]
	mem := total[metric.FromL1] + total[metric.FromL2] + total[metric.FromL3] +
		total[metric.FromRL3] + total[metric.FromLMEM] + total[metric.FromRMEM]
	d.MemSamples = mem
	if mem == 0 {
		return d
	}
	d.AvgLatency = float64(total[metric.Latency]) / float64(mem)
	beyondL2 := total[metric.FromL3] + total[metric.FromRL3] + total[metric.FromLMEM] + total[metric.FromRMEM]
	d.MemoryBound = float64(beyondL2) / float64(mem)
	d.RemoteRatio = float64(total[metric.FromRMEM]+total[metric.FromRL3]) / float64(mem)
	d.DRAMRatio = float64(total[metric.FromLMEM]+total[metric.FromRMEM]) / float64(mem)
	d.TLBMissRatio = float64(total[metric.TLBMiss]) / float64(mem)
	d.StoreRatio = float64(total[metric.Stores]) / float64(mem)
	return d
}

// memoryBoundGate is the threshold above which the paper would proceed
// with data-centric analysis.
const memoryBoundGate = 0.05

// WorthDataCentricAnalysis applies the paper's gating rule: only
// memory-bound programs are analyzed data-centrically.
func (d Derived) WorthDataCentricAnalysis() bool {
	return d.MemSamples > 0 && (d.MemoryBound >= memoryBoundGate || d.RemoteRatio >= memoryBoundGate)
}

// RenderDerived formats the summary.
func RenderDerived(p *cct.Profile) string {
	d := DeriveMetrics(p)
	var b strings.Builder
	b.WriteString("derived metrics\n")
	fmt.Fprintf(&b, "  samples            %d (%d on memory operations)\n", d.Samples, d.MemSamples)
	if d.MemSamples == 0 {
		b.WriteString("  (no memory samples)\n")
		return b.String()
	}
	fmt.Fprintf(&b, "  avg access latency %.1f cycles\n", d.AvgLatency)
	fmt.Fprintf(&b, "  beyond-L2 share    %.1f%%\n", 100*d.MemoryBound)
	fmt.Fprintf(&b, "  DRAM share         %.1f%%\n", 100*d.DRAMRatio)
	fmt.Fprintf(&b, "  remote share       %.1f%%\n", 100*d.RemoteRatio)
	fmt.Fprintf(&b, "  TLB miss share     %.1f%%\n", 100*d.TLBMissRatio)
	fmt.Fprintf(&b, "  store share        %.1f%%\n", 100*d.StoreRatio)
	verdict := "memory-bound: data-centric analysis recommended"
	if !d.WorthDataCentricAnalysis() {
		verdict = "not memory-bound: data-centric analysis unlikely to help"
	}
	fmt.Fprintf(&b, "  => %s\n", verdict)
	return b.String()
}
