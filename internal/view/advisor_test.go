package view

import (
	"strings"
	"testing"

	"dcprof/internal/cct"
	"dcprof/internal/metric"
)

// adviceProfile builds a profile with three pathological variables: a
// NUMA-remote heap array, a TLB-thrashing static, and a plain
// latency-heavy heap array.
func adviceProfile() *cct.Profile {
	p := cct.NewProfile(0, 0, "IBS@64")
	stmt := func(line int) cct.Frame {
		return cct.Frame{Kind: cct.KindStmt, Module: "exe", Name: "k", File: "k.c", Line: line}
	}
	add := func(class cct.Class, prefix cct.Frame, samples, lat, rmem, lmem, tlb uint64) {
		var v metric.Vector
		v[metric.Samples] = samples
		v[metric.Latency] = lat
		v[metric.FromRMEM] = rmem
		v[metric.FromLMEM] = lmem
		v[metric.TLBMiss] = tlb
		p.Trees[class].AddSample([]cct.Frame{prefix, stmt(10)}, &v)
	}
	heapMark := func(name string) cct.Frame { return cct.Frame{Kind: cct.KindHeapData, Name: name} }

	// numa_victim: 90% of its memory samples are remote.
	add(cct.ClassHeap, heapMark("numa_victim"), 100, 40_000, 90, 10, 5)
	// strided: half its samples miss the TLB, few remote.
	add(cct.ClassStatic, cct.Frame{Kind: cct.KindStaticVar, Module: "exe", Name: "strided"},
		100, 30_000, 2, 60, 50)
	// churner: high latency, no NUMA or TLB signature.
	add(cct.ClassHeap, heapMark("churner"), 100, 20_000, 5, 80, 2)
	// tiny: below the reporting threshold.
	add(cct.ClassHeap, heapMark("tiny"), 5, 100, 1, 1, 0)
	return p
}

func TestAdviseClassifiesPathologies(t *testing.T) {
	advice := Advise(adviceProfile())
	byName := map[string]Advice{}
	for _, a := range advice {
		byName[a.Variable] = a
	}
	if a, ok := byName["numa_victim"]; !ok || a.Pathology != PathologyNUMA {
		t.Errorf("numa_victim = %+v, want NUMA pathology", a)
	}
	if a, ok := byName["strided"]; !ok || a.Pathology != PathologySpatial {
		t.Errorf("strided = %+v, want spatial pathology", a)
	}
	if a, ok := byName["churner"]; !ok || a.Pathology != PathologyLatency {
		t.Errorf("churner = %+v, want latency pathology", a)
	}
	if _, ok := byName["tiny"]; ok {
		t.Error("tiny variable should be below the reporting threshold")
	}
	// Ordered by latency share.
	if len(advice) >= 2 && advice[0].Variable != "numa_victim" {
		t.Errorf("first advice = %s, want the biggest latency share", advice[0].Variable)
	}
}

func TestAdviseSuggestionsMentionFixFamilies(t *testing.T) {
	advice := Advise(adviceProfile())
	for _, a := range advice {
		switch a.Pathology {
		case PathologyNUMA:
			if !strings.Contains(a.Suggestion, "interleave") && !strings.Contains(a.Suggestion, "first touch") {
				t.Errorf("NUMA suggestion %q lacks placement advice", a.Suggestion)
			}
		case PathologySpatial:
			if !strings.Contains(a.Suggestion, "transpose") {
				t.Errorf("spatial suggestion %q lacks transpose advice", a.Suggestion)
			}
		}
	}
}

func TestRenderAdvice(t *testing.T) {
	out := RenderAdvice(adviceProfile(), 10)
	for _, want := range []string{"numa_victim", "NUMA placement", "strided", "spatial locality"} {
		if !strings.Contains(out, want) {
			t.Errorf("advice output missing %q:\n%s", want, out)
		}
	}
	empty := RenderAdvice(cct.NewProfile(0, 0, "x"), 5)
	if !strings.Contains(empty, "no variable") {
		t.Error("empty-profile advice not handled")
	}
}

func TestPathologyStrings(t *testing.T) {
	if PathologyNUMA.String() != "NUMA placement" || PathologyNone.String() != "none" {
		t.Error("pathology names wrong")
	}
}
