package view_test

import (
	"fmt"

	"dcprof/internal/cct"
	"dcprof/internal/metric"
	"dcprof/internal/view"
)

// Example demonstrates the paper's central output: a ranked variable table
// built from a merged profile, with the allocation site of each heap
// variable beside its metric share.
func Example() {
	p := cct.NewProfile(0, 0, "PM_MRK_DATA_FROM_RMEM@1000")
	var v metric.Vector
	v[metric.Samples] = 80
	v[metric.FromRMEM] = 80
	p.Trees[cct.ClassHeap].AddSample([]cct.Frame{
		{Kind: cct.KindCall, Module: "exe", Name: "main", File: "main.c"},
		{Kind: cct.KindStmt, Module: "exe", Name: "main", File: "main.c", Line: 12},
		{Kind: cct.KindCall, Module: "libc", Name: "calloc", File: "stdlib.h"},
		{Kind: cct.KindHeapData, Name: "matrix"},
		{Kind: cct.KindStmt, Module: "exe", Name: "spmv", File: "spmv.c", Line: 88},
	}, &v)
	var w metric.Vector
	w[metric.Samples] = 20
	w[metric.FromRMEM] = 20
	p.Trees[cct.ClassStatic].AddSample([]cct.Frame{
		{Kind: cct.KindStaticVar, Module: "exe", Name: "table"},
		{Kind: cct.KindStmt, Module: "exe", Name: "spmv", File: "spmv.c", Line: 90},
	}, &w)

	for _, vs := range view.RankVariables(p, metric.FromRMEM) {
		fmt.Printf("%5.1f%% %s\n", 100*vs.Share, vs.Name)
	}
	// Output:
	//  80.0% matrix
	//  20.0% table
}

// ExampleTopAccesses shows per-variable access ranking: which statements
// touch a variable and how much of the cost each carries.
func ExampleTopAccesses() {
	p := cct.NewProfile(0, 0, "IBS@4096")
	add := func(line int, lat uint64) {
		var v metric.Vector
		v[metric.Samples] = 1
		v[metric.Latency] = lat
		p.Trees[cct.ClassHeap].AddSample([]cct.Frame{
			{Kind: cct.KindCall, Module: "exe", Name: "main", File: "main.c"},
			{Kind: cct.KindStmt, Module: "exe", Name: "main", File: "main.c", Line: 3},
			{Kind: cct.KindCall, Module: "libc", Name: "malloc", File: "stdlib.h"},
			{Kind: cct.KindHeapData, Name: "Flux"},
			{Kind: cct.KindStmt, Module: "exe", Name: "sweep", File: "sweep.f", Line: line},
		}, &v)
	}
	add(480, 700)
	add(482, 300)

	vars := view.RankVariables(p, metric.Latency)
	total := view.MetricTotal(p, metric.Latency)
	for _, acc := range view.TopAccesses(vars[0].Node, metric.Latency, total) {
		fmt.Printf("%s:%d %4.0f%%\n", acc.File, acc.Line, 100*acc.Share)
	}
	// Output:
	// sweep.f:480   70%
	// sweep.f:482   30%
}
