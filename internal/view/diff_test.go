package view

import (
	"strings"
	"testing"

	"dcprof/internal/cct"
	"dcprof/internal/metric"
)

func diffFixture() (*cct.Profile, *cct.Profile) {
	mk := func(shares map[string]uint64) *cct.Profile {
		p := cct.NewProfile(0, 0, "e")
		for name, rmem := range shares {
			var v metric.Vector
			v[metric.Samples] = rmem
			v[metric.FromRMEM] = rmem
			p.Trees[cct.ClassHeap].AddSample([]cct.Frame{
				{Kind: cct.KindHeapData, Name: name},
				{Kind: cct.KindStmt, Module: "exe", Name: "k", File: "k.c", Line: 9},
			}, &v)
		}
		return p
	}
	before := mk(map[string]uint64{"block": 90, "weights": 10})
	after := mk(map[string]uint64{"block": 5, "weights": 10, "newcomer": 5})
	return before, after
}

func TestDiffVariables(t *testing.T) {
	before, after := diffFixture()
	deltas := DiffVariables(before, after, metric.FromRMEM)
	byName := map[string]VarDelta{}
	for _, d := range deltas {
		byName[d.Variable] = d
	}
	blk := byName["block"]
	if blk.BeforeShare < 0.89 || blk.BeforeShare > 0.91 {
		t.Errorf("block before = %v", blk.BeforeShare)
	}
	if blk.AfterShare > 0.3 {
		t.Errorf("block after = %v", blk.AfterShare)
	}
	if blk.DeltaShare() >= 0 {
		t.Error("block should have improved")
	}
	// Largest |delta| first.
	if deltas[0].Variable != "block" {
		t.Errorf("first delta = %s", deltas[0].Variable)
	}
	nc := byName["newcomer"]
	if nc.BeforeValue != 0 || nc.AfterValue != 5 {
		t.Errorf("newcomer = %+v", nc)
	}
}

func TestRenderDiff(t *testing.T) {
	before, after := diffFixture()
	out := RenderDiff(before, after, metric.FromRMEM, 10)
	if !strings.Contains(out, "block") || !strings.Contains(out, "improved") {
		t.Errorf("diff render:\n%s", out)
	}
	if !strings.Contains(out, "worsened") {
		t.Errorf("weights' share grew; expected a worsened row:\n%s", out)
	}
}
