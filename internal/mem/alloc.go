package mem

import (
	"fmt"
	"sort"
	"sync"
)

// Alignment of every block the allocator hands out.
const allocAlign = 16

// Allocator is a first-fit heap allocator with address-ordered free-list
// coalescing, managing the [HeapBase, HeapLimit) arena of one process.
// It plays the role of the C library's malloc family, which the profiler
// wraps; the allocator itself is measurement-free.
//
// Allocator is safe for concurrent use by the simulated threads of one
// process.
type Allocator struct {
	base, limit Addr

	mu     sync.Mutex
	brk    Addr            // bump frontier; everything above is virgin
	free   []span          // address-ordered free spans below brk
	live   map[Addr]uint64 // block start -> usable size
	nLive  int
	nAlloc uint64 // cumulative allocations (stats)
	bLive  uint64 // bytes currently allocated
	peak   uint64 // high-water mark of bLive
}

type span struct{ lo, hi Addr }

// NewAllocator creates an allocator over [base, limit).
func NewAllocator(base, limit Addr) *Allocator {
	if base >= limit || base%allocAlign != 0 {
		panic(fmt.Sprintf("mem: bad allocator arena [%#x, %#x)", base, limit))
	}
	return &Allocator{base: base, limit: limit, brk: base, live: make(map[Addr]uint64)}
}

// NewHeap creates an allocator over the standard heap segment.
func NewHeap() *Allocator { return NewAllocator(HeapBase, HeapLimit) }

func roundUp(n uint64) uint64 {
	if n == 0 {
		n = 1
	}
	return (n + allocAlign - 1) &^ (allocAlign - 1)
}

// Alloc reserves size usable bytes and returns the block's base address.
func (a *Allocator) Alloc(size uint64) (Addr, error) {
	need := roundUp(size)
	a.mu.Lock()
	defer a.mu.Unlock()

	// First fit over the free list.
	for i, s := range a.free {
		if uint64(s.hi-s.lo) >= need {
			addr := s.lo
			rest := span{s.lo + Addr(need), s.hi}
			if rest.lo == rest.hi {
				a.free = append(a.free[:i], a.free[i+1:]...)
			} else {
				a.free[i] = rest
			}
			a.commit(addr, size)
			return addr, nil
		}
	}
	// Bump the frontier.
	if uint64(a.limit-a.brk) < need {
		return 0, fmt.Errorf("mem: out of heap: need %d bytes, %d available", need, a.limit-a.brk)
	}
	addr := a.brk
	a.brk += Addr(need)
	a.commit(addr, size)
	return addr, nil
}

func (a *Allocator) commit(addr Addr, size uint64) {
	a.live[addr] = size
	a.nLive++
	a.nAlloc++
	a.bLive += roundUp(size)
	if a.bLive > a.peak {
		a.peak = a.bLive
	}
}

// Free releases the block starting at addr, returning its usable size.
// Freeing an address that is not a live block start is an error (the paper's
// profiler wraps every free precisely to keep this map exact).
func (a *Allocator) Free(addr Addr) (uint64, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	size, ok := a.live[addr]
	if !ok {
		return 0, fmt.Errorf("mem: free of non-allocated address %#x", addr)
	}
	delete(a.live, addr)
	a.nLive--
	a.bLive -= roundUp(size)
	a.insertFree(span{addr, addr + Addr(roundUp(size))})
	return size, nil
}

// insertFree adds s to the address-ordered free list, coalescing neighbours.
func (a *Allocator) insertFree(s span) {
	i := sort.Search(len(a.free), func(i int) bool { return a.free[i].lo >= s.lo })
	// Coalesce with predecessor.
	if i > 0 && a.free[i-1].hi == s.lo {
		s.lo = a.free[i-1].lo
		a.free = append(a.free[:i-1], a.free[i:]...)
		i--
	}
	// Coalesce with successor.
	if i < len(a.free) && s.hi == a.free[i].lo {
		s.hi = a.free[i].hi
		a.free = append(a.free[:i], a.free[i+1:]...)
	}
	// Retreat the frontier if the span abuts it.
	if s.hi == a.brk {
		a.brk = s.lo
		return
	}
	a.free = append(a.free, span{})
	copy(a.free[i+1:], a.free[i:])
	a.free[i] = s
}

// SizeOf returns the usable size of the live block starting at addr.
func (a *Allocator) SizeOf(addr Addr) (uint64, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	s, ok := a.live[addr]
	return s, ok
}

// Stats reports allocator counters: live blocks, live bytes, peak live
// bytes, and cumulative allocation count.
func (a *Allocator) Stats() (liveBlocks int, liveBytes, peakBytes, totalAllocs uint64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.nLive, a.bLive, a.peak, a.nAlloc
}

// CheckInvariants verifies internal consistency (free list sorted, disjoint,
// coalesced, inside the arena, and disjoint from live blocks). Intended for
// tests.
func (a *Allocator) CheckInvariants() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	for i, s := range a.free {
		if s.lo >= s.hi {
			return fmt.Errorf("free span %d empty: [%#x,%#x)", i, s.lo, s.hi)
		}
		if s.lo < a.base || s.hi > a.brk {
			return fmt.Errorf("free span %d outside used arena: [%#x,%#x) brk=%#x", i, s.lo, s.hi, a.brk)
		}
		if i > 0 && a.free[i-1].hi >= s.lo {
			return fmt.Errorf("free spans %d,%d not disjoint/coalesced", i-1, i)
		}
	}
	for addr, size := range a.live {
		lo, hi := addr, addr+Addr(roundUp(size))
		if lo < a.base || hi > a.brk {
			return fmt.Errorf("live block [%#x,%#x) outside used arena", lo, hi)
		}
		for _, s := range a.free {
			if lo < s.hi && s.lo < hi {
				return fmt.Errorf("live block [%#x,%#x) overlaps free span [%#x,%#x)", lo, hi, s.lo, s.hi)
			}
		}
	}
	return nil
}
