package mem

import "testing"

func TestSegmentClassification(t *testing.T) {
	cases := []struct {
		addr Addr
		want Segment
	}{
		{StaticBase, SegStatic},
		{ModuleBase(3) + 100, SegStatic},
		{HeapBase, SegHeap},
		{HeapBase + 12345, SegHeap},
		{BrkBase + 1, SegBrk},
		{StackTop - 64, SegStack},
		{StackBase(100) - 100, SegStack},
		{0, SegUnmapped},
		{0x9000_0000_0000, SegUnmapped},
	}
	for _, c := range cases {
		if got := SegmentOf(c.addr); got != c.want {
			t.Errorf("SegmentOf(%#x) = %v, want %v", c.addr, got, c.want)
		}
	}
}

func TestSegmentNames(t *testing.T) {
	names := map[Segment]string{
		SegStatic: "static", SegHeap: "heap", SegBrk: "brk",
		SegStack: "stack", SegUnmapped: "unmapped",
	}
	for seg, want := range names {
		if got := seg.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", seg, got, want)
		}
	}
}

func TestModuleBasesDisjoint(t *testing.T) {
	for i := 0; i < 8; i++ {
		lo := ModuleBase(i)
		hi := lo + StaticModuleSpan
		if SegmentOf(lo) != SegStatic || SegmentOf(hi-1) != SegStatic {
			t.Errorf("module %d span leaves the static segment", i)
		}
		if i > 0 && lo != ModuleBase(i-1)+StaticModuleSpan {
			t.Errorf("module %d not adjacent to module %d", i, i-1)
		}
	}
}

func TestStackBasesDescendDisjoint(t *testing.T) {
	for tid := 1; tid < 64; tid++ {
		if StackBase(tid) != StackBase(tid-1)-StackSpan {
			t.Errorf("stack %d not %d bytes below stack %d", tid, StackSpan, tid-1)
		}
	}
}

func TestSpaceMallocFreeRecyclesPlacement(t *testing.T) {
	s := NewSpace(2, FirstTouch{})
	p, err := s.Malloc(2 * PageSize)
	if err != nil {
		t.Fatal(err)
	}
	// Touch from domain 1.
	s.PT.Resolve(p, 1)
	if d, ok := s.PT.Home(p); !ok || d != 1 {
		t.Fatalf("home = %d,%v", d, ok)
	}
	if _, err := s.Free(p); err != nil {
		t.Fatal(err)
	}
	// After free+realloc, pages are unplaced again.
	p2, err := s.Malloc(2 * PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if p2 != p {
		t.Fatalf("allocator did not recycle: %#x vs %#x", p2, p)
	}
	if _, ok := s.PT.Home(p2); ok {
		t.Error("recycled pages kept stale placement")
	}
	if d := s.PT.Resolve(p2, 0); d != 0 {
		t.Errorf("recycled page homed in %d, want 0", d)
	}
}

func TestSpaceInterleaveRange(t *testing.T) {
	s := NewSpace(4, FirstTouch{})
	p, err := s.Malloc(16 * PageSize)
	if err != nil {
		t.Fatal(err)
	}
	s.InterleaveRange(p, 16*PageSize)
	counts := make([]int, 4)
	for i := 0; i < 16; i++ {
		counts[s.PT.Resolve(p+Addr(i*PageSize), 0)]++
	}
	for d, c := range counts {
		if c != 4 {
			t.Errorf("domain %d got %d pages, want 4", d, c)
		}
	}
	// Freeing clears the override.
	if _, err := s.Free(p); err != nil {
		t.Fatal(err)
	}
	p2, _ := s.Malloc(16 * PageSize)
	if d := s.PT.Resolve(p2, 2); d != 2 {
		t.Errorf("stale interleave override survived free: placed in %d", d)
	}
}

func TestSpaceBindRange(t *testing.T) {
	s := NewSpace(4, FirstTouch{})
	p, err := s.Malloc(4 * PageSize)
	if err != nil {
		t.Fatal(err)
	}
	s.BindRange(p, 4*PageSize, 2)
	for i := 0; i < 4; i++ {
		if d := s.PT.Resolve(p+Addr(i*PageSize), 0); d != 2 {
			t.Errorf("bound page placed in %d, want 2", d)
		}
	}
}

func TestSbrk(t *testing.T) {
	s := NewSpace(2, nil)
	p1, err := s.Sbrk(100)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := s.Sbrk(100)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != BrkBase {
		t.Errorf("first sbrk at %#x, want %#x", p1, BrkBase)
	}
	if p2 <= p1 {
		t.Error("sbrk did not advance")
	}
	if SegmentOf(p1) != SegBrk || SegmentOf(p2) != SegBrk {
		t.Error("sbrk result outside brk segment")
	}
}
