package mem

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestFirstTouchPlacement(t *testing.T) {
	pt := NewPageTable(4, FirstTouch{})
	addr := HeapBase
	if d := pt.Resolve(addr, 2); d != 2 {
		t.Errorf("first touch from domain 2 homed page in %d", d)
	}
	// A later access from another domain sees the established home.
	if d := pt.Resolve(addr+8, 0); d != 2 {
		t.Errorf("second touch moved page to %d", d)
	}
	if d, ok := pt.Home(addr); !ok || d != 2 {
		t.Errorf("Home = %d,%v", d, ok)
	}
}

func TestInterleavePlacement(t *testing.T) {
	pt := NewPageTable(4, Interleave{})
	counts := make([]int, 4)
	for i := 0; i < 64; i++ {
		a := HeapBase + Addr(i*PageSize)
		counts[pt.Resolve(a, 0)]++
	}
	for d, c := range counts {
		if c != 16 {
			t.Errorf("domain %d homed %d pages, want 16", d, c)
		}
	}
}

func TestBindPlacement(t *testing.T) {
	pt := NewPageTable(4, Bind{Domain: 3})
	for i := 0; i < 8; i++ {
		if d := pt.Resolve(HeapBase+Addr(i*PageSize), 1); d != 3 {
			t.Errorf("bind placed page in %d", d)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("out-of-range Bind should panic on placement")
		}
	}()
	NewPageTable(2, Bind{Domain: 5}).Resolve(HeapBase, 0)
}

func TestRangePolicyOverride(t *testing.T) {
	pt := NewPageTable(4, FirstTouch{})
	lo := HeapBase
	hi := lo + 8*PageSize
	pt.SetRangePolicy(lo, hi, Interleave{})

	// Pages inside the range interleave regardless of accessor.
	for i := 0; i < 8; i++ {
		a := lo + Addr(i*PageSize)
		want := int(uint64(PageOf(a)) % 4)
		if d := pt.Resolve(a, 1); d != want {
			t.Errorf("page %d placed in %d, want %d", i, d, want)
		}
	}
	// Pages outside still first-touch.
	if d := pt.Resolve(hi, 1); d != 1 {
		t.Errorf("page outside override placed in %d, want 1", d)
	}
}

func TestRangePolicyReplacement(t *testing.T) {
	pt := NewPageTable(4, FirstTouch{})
	lo := HeapBase
	pt.SetRangePolicy(lo, lo+16*PageSize, Bind{Domain: 0})
	// Replace the middle of the range; the flanks keep the old policy.
	pt.SetRangePolicy(lo+4*PageSize, lo+8*PageSize, Bind{Domain: 3})

	if d := pt.Resolve(lo, 2); d != 0 {
		t.Errorf("left flank placed in %d, want 0", d)
	}
	if d := pt.Resolve(lo+5*PageSize, 2); d != 3 {
		t.Errorf("replaced middle placed in %d, want 3", d)
	}
	if d := pt.Resolve(lo+12*PageSize, 2); d != 0 {
		t.Errorf("right flank placed in %d, want 0", d)
	}
}

func TestClearRangePolicy(t *testing.T) {
	pt := NewPageTable(4, FirstTouch{})
	lo := HeapBase
	pt.SetRangePolicy(lo, lo+4*PageSize, Bind{Domain: 3})
	pt.ClearRangePolicy(lo, lo+4*PageSize)
	if d := pt.Resolve(lo, 1); d != 1 {
		t.Errorf("cleared range placed in %d, want first-touch 1", d)
	}
}

func TestDiscardAndRecount(t *testing.T) {
	pt := NewPageTable(2, FirstTouch{})
	a := HeapBase
	pt.Resolve(a, 0)
	pt.Resolve(a+PageSize, 1)
	if got := pt.MappedPages(); got != 2 {
		t.Fatalf("MappedPages = %d", got)
	}
	counts := pt.DomainCounts()
	if counts[0] != 1 || counts[1] != 1 {
		t.Fatalf("DomainCounts = %v", counts)
	}
	pt.Discard(a, a+2*PageSize)
	if got := pt.MappedPages(); got != 0 {
		t.Fatalf("MappedPages after discard = %d", got)
	}
	// Re-touch from the other domain: placement starts over.
	if d := pt.Resolve(a, 1); d != 1 {
		t.Errorf("re-touch placed in %d, want 1", d)
	}
}

func TestConcurrentResolveSingleHome(t *testing.T) {
	pt := NewPageTable(8, FirstTouch{})
	const workers = 16
	addr := HeapBase
	var wg sync.WaitGroup
	homes := make([]int, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			homes[w] = pt.Resolve(addr, w%8)
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		if homes[w] != homes[0] {
			t.Fatalf("racing first-touchers got different homes: %v", homes)
		}
	}
	if pt.MappedPages() != 1 {
		t.Errorf("MappedPages = %d, want 1", pt.MappedPages())
	}
}

// Property: interleave spreads any contiguous run of pages within one page
// of perfectly even.
func TestQuickInterleaveEven(t *testing.T) {
	f := func(npages uint16, domains uint8) bool {
		d := int(domains%7) + 2
		n := int(npages%512) + d
		pt := NewPageTable(d, Interleave{})
		for i := 0; i < n; i++ {
			pt.Resolve(HeapBase+Addr(i*PageSize), 0)
		}
		counts := pt.DomainCounts()
		min, max := counts[0], counts[0]
		for _, c := range counts {
			if c < min {
				min = c
			}
			if c > max {
				max = c
			}
		}
		return max-min <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
