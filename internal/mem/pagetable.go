package mem

import (
	"sync"

	"dcprof/internal/ivmap"
)

// PageTable tracks, per virtual page, the NUMA domain the page's physical
// frame is homed in. Placement is lazy: a page is homed on its first access
// (first touch), using the policy in effect for its address — a per-range
// override installed by SetRangePolicy (the libnuma path) if one covers the
// page, otherwise the process-wide default (the numactl path).
//
// PageTable is safe for concurrent use; the resolved-page read path takes
// only a read lock.
type PageTable struct {
	domains int

	mu        sync.RWMutex
	home      map[PageID]int32
	overrides ivmap.Map[Policy] // keyed by page id
	defaultP  Policy
	perDomain []uint64 // pages homed per domain
}

// NewPageTable creates a page table for a node with the given number of NUMA
// domains and a process-wide default policy.
func NewPageTable(domains int, def Policy) *PageTable {
	if domains <= 0 {
		panic("mem: page table needs at least one domain")
	}
	if def == nil {
		def = FirstTouch{}
	}
	return &PageTable{
		domains:   domains,
		home:      make(map[PageID]int32),
		defaultP:  def,
		perDomain: make([]uint64, domains),
	}
}

// Domains returns the number of NUMA domains.
func (pt *PageTable) Domains() int { return pt.domains }

// DefaultPolicy returns the process-wide placement policy.
func (pt *PageTable) DefaultPolicy() Policy {
	pt.mu.RLock()
	defer pt.mu.RUnlock()
	return pt.defaultP
}

// SetDefaultPolicy replaces the process-wide policy for pages touched from
// now on. Already-homed pages do not move (no page migration, as on the
// paper's systems).
func (pt *PageTable) SetDefaultPolicy(p Policy) {
	pt.mu.Lock()
	defer pt.mu.Unlock()
	pt.defaultP = p
}

// SetRangePolicy installs a placement policy for all not-yet-touched pages
// overlapping [lo, hi) — the analogue of allocating a specific block with
// libnuma's numa_alloc_interleaved. Overlapping older overrides in the range
// are replaced.
func (pt *PageTable) SetRangePolicy(lo, hi Addr, p Policy) {
	if lo >= hi {
		return
	}
	first, last := uint64(PageOf(lo)), uint64(PageOf(hi-1))
	pt.mu.Lock()
	defer pt.mu.Unlock()
	// Drop any override intersecting the new range, trimming partial overlap.
	for {
		var hit ivmap.Interval[Policy]
		found := false
		pt.overrides.Each(func(iv ivmap.Interval[Policy]) bool {
			if iv.Lo <= last && first <= iv.Hi-1 {
				hit, found = iv, true
				return false
			}
			return true
		})
		if !found {
			break
		}
		pt.overrides.RemoveAt(hit.Lo)
		if hit.Lo < first {
			pt.mustInsertOverride(hit.Lo, first, hit.Value)
		}
		if hit.Hi > last+1 {
			pt.mustInsertOverride(last+1, hit.Hi, hit.Value)
		}
	}
	pt.mustInsertOverride(first, last+1, p)
}

func (pt *PageTable) mustInsertOverride(lo, hi uint64, p Policy) {
	if err := pt.overrides.Insert(lo, hi, p); err != nil {
		panic("mem: override bookkeeping violated disjointness: " + err.Error())
	}
}

// ClearRangePolicy removes any override whose start page falls inside
// [lo, hi), reverting those pages to the default policy. Used when freed
// heap ranges are recycled.
func (pt *PageTable) ClearRangePolicy(lo, hi Addr) {
	if lo >= hi {
		return
	}
	first, last := uint64(PageOf(lo)), uint64(PageOf(hi-1))
	pt.mu.Lock()
	defer pt.mu.Unlock()
	for {
		removed := false
		pt.overrides.Each(func(iv ivmap.Interval[Policy]) bool {
			if iv.Lo >= first && iv.Lo <= last {
				pt.overrides.RemoveAt(iv.Lo)
				removed = true
				return false
			}
			return true
		})
		if !removed {
			return
		}
	}
}

// Resolve returns the home domain of the page containing addr, homing the
// page first if this is its first touch. accessorDomain is the NUMA domain
// of the accessing hardware thread.
func (pt *PageTable) Resolve(addr Addr, accessorDomain int) int {
	page := PageOf(addr)
	pt.mu.RLock()
	if d, ok := pt.home[page]; ok {
		pt.mu.RUnlock()
		return int(d)
	}
	pt.mu.RUnlock()

	pt.mu.Lock()
	defer pt.mu.Unlock()
	if d, ok := pt.home[page]; ok { // raced with another first toucher
		return int(d)
	}
	pol := pt.defaultP
	if p, ok := pt.overrides.Lookup(uint64(page)); ok {
		pol = p
	}
	d := pol.Place(page, accessorDomain, pt.domains)
	if d < 0 || d >= pt.domains {
		panic("mem: policy placed page outside domain range")
	}
	pt.home[page] = int32(d)
	pt.perDomain[d]++
	return d
}

// Home reports the page's home domain without placing it.
func (pt *PageTable) Home(addr Addr) (int, bool) {
	pt.mu.RLock()
	defer pt.mu.RUnlock()
	d, ok := pt.home[PageOf(addr)]
	return int(d), ok
}

// Discard forgets placements for all pages overlapping [lo, hi); the next
// touch re-places them. Models returning memory to the OS on free.
func (pt *PageTable) Discard(lo, hi Addr) {
	if lo >= hi {
		return
	}
	first, last := PageOf(lo), PageOf(hi-1)
	pt.mu.Lock()
	defer pt.mu.Unlock()
	for p := first; p <= last; p++ {
		if d, ok := pt.home[p]; ok {
			pt.perDomain[d]--
			delete(pt.home, p)
		}
	}
}

// DomainCounts returns a copy of the number of pages currently homed in each
// domain.
func (pt *PageTable) DomainCounts() []uint64 {
	pt.mu.RLock()
	defer pt.mu.RUnlock()
	out := make([]uint64, len(pt.perDomain))
	copy(out, pt.perDomain)
	return out
}

// MappedPages returns the number of pages that have been homed.
func (pt *PageTable) MappedPages() int {
	pt.mu.RLock()
	defer pt.mu.RUnlock()
	return len(pt.home)
}
