package mem

import "testing"

func TestPolicyNames(t *testing.T) {
	if (FirstTouch{}).String() != "first-touch" {
		t.Error("first-touch name")
	}
	if (Interleave{}).String() != "interleave" {
		t.Error("interleave name")
	}
	if (Bind{Domain: 3}).String() != "bind(3)" {
		t.Error("bind name")
	}
}

func TestPolicyPlacement(t *testing.T) {
	if d := (FirstTouch{}).Place(5, 2, 4); d != 2 {
		t.Errorf("first touch placed in %d", d)
	}
	if d := (Interleave{}).Place(10, 0, 4); d != 2 {
		t.Errorf("interleave placed page 10 in %d, want 2", d)
	}
	if d := (Bind{Domain: 1}).Place(99, 3, 4); d != 1 {
		t.Errorf("bind placed in %d", d)
	}
}

func TestBindOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	(Bind{Domain: 9}).Place(0, 0, 4)
}

func TestDefaultPolicySwitch(t *testing.T) {
	pt := NewPageTable(4, FirstTouch{})
	a := HeapBase
	if d := pt.Resolve(a, 3); d != 3 {
		t.Fatalf("first touch placed in %d", d)
	}
	// Switch the process-wide policy: already-homed pages do not move, new
	// pages follow the new policy.
	pt.SetDefaultPolicy(Bind{Domain: 0})
	if d := pt.Resolve(a, 1); d != 3 {
		t.Error("existing page moved after policy switch")
	}
	if d := pt.Resolve(a+PageSize, 1); d != 0 {
		t.Errorf("new page placed in %d, want bound 0", d)
	}
	if pt.DefaultPolicy().String() != "bind(0)" {
		t.Error("DefaultPolicy not updated")
	}
}
