package mem

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAllocBasic(t *testing.T) {
	a := NewHeap()
	p1, err := a.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := a.Alloc(200)
	if err != nil {
		t.Fatal(err)
	}
	if p1 == p2 {
		t.Fatal("two allocations returned the same address")
	}
	if p1%allocAlign != 0 || p2%allocAlign != 0 {
		t.Errorf("unaligned blocks: %#x %#x", p1, p2)
	}
	if s, ok := a.SizeOf(p1); !ok || s != 100 {
		t.Errorf("SizeOf(p1) = %d,%v want 100,true", s, ok)
	}
	// Blocks must not overlap.
	if p2 < p1+Addr(roundUp(100)) && p1 < p2+Addr(roundUp(200)) {
		if p1 < p2 && p1+Addr(roundUp(100)) > p2 {
			t.Error("blocks overlap")
		}
	}
	if err := a.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestAllocZeroSize(t *testing.T) {
	a := NewHeap()
	p, err := a.Alloc(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Free(p); err != nil {
		t.Fatal(err)
	}
}

func TestFreeErrors(t *testing.T) {
	a := NewHeap()
	p, err := a.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Free(p + 8); err == nil {
		t.Error("interior free accepted")
	}
	if _, err := a.Free(p); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Free(p); err == nil {
		t.Error("double free accepted")
	}
}

func TestFreeListReuseAndCoalesce(t *testing.T) {
	a := NewHeap()
	var ptrs []Addr
	for i := 0; i < 4; i++ {
		p, err := a.Alloc(64)
		if err != nil {
			t.Fatal(err)
		}
		ptrs = append(ptrs, p)
	}
	frontierAfter := ptrs[3] + Addr(roundUp(64))
	// Free middle two blocks; they should coalesce into one 128-byte span.
	if _, err := a.Free(ptrs[1]); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Free(ptrs[2]); err != nil {
		t.Fatal(err)
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// A 128-byte allocation must fit in the coalesced hole, not the frontier.
	p, err := a.Alloc(128)
	if err != nil {
		t.Fatal(err)
	}
	if p != ptrs[1] {
		t.Errorf("128-byte alloc at %#x, want reuse of coalesced hole at %#x", p, ptrs[1])
	}
	if p >= frontierAfter {
		t.Error("allocation extended the frontier instead of reusing the hole")
	}
}

func TestFrontierRetreat(t *testing.T) {
	a := NewHeap()
	p1, _ := a.Alloc(64)
	p2, _ := a.Alloc(64)
	// Free the top block: the frontier retreats and the free list stays empty.
	if _, err := a.Free(p2); err != nil {
		t.Fatal(err)
	}
	p3, _ := a.Alloc(64)
	if p3 != p2 {
		t.Errorf("frontier did not retreat: got %#x want %#x", p3, p2)
	}
	_ = p1
	if err := a.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestStats(t *testing.T) {
	a := NewHeap()
	p1, _ := a.Alloc(100)
	p2, _ := a.Alloc(50)
	live, bytes, peak, total := a.Stats()
	if live != 2 || total != 2 {
		t.Errorf("live=%d total=%d, want 2,2", live, total)
	}
	wantBytes := roundUp(100) + roundUp(50)
	if bytes != wantBytes || peak != wantBytes {
		t.Errorf("bytes=%d peak=%d, want %d", bytes, peak, wantBytes)
	}
	if _, err := a.Free(p1); err != nil {
		t.Fatal(err)
	}
	live, bytes, peak, _ = a.Stats()
	if live != 1 || bytes != roundUp(50) || peak != wantBytes {
		t.Errorf("after free: live=%d bytes=%d peak=%d", live, bytes, peak)
	}
	_ = p2
}

func TestOutOfHeap(t *testing.T) {
	a := NewAllocator(HeapBase, HeapBase+1024)
	if _, err := a.Alloc(2048); err == nil {
		t.Error("oversized allocation accepted")
	}
	p, err := a.Alloc(1024)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Alloc(1); err == nil {
		t.Error("allocation beyond arena accepted")
	}
	if _, err := a.Free(p); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Alloc(1024); err != nil {
		t.Error("arena not fully reusable after free")
	}
}

// Property: random alloc/free sequences never produce overlapping live
// blocks and always satisfy the allocator invariants.
func TestQuickAllocatorInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := NewHeap()
		type blk struct {
			addr Addr
			size uint64
		}
		var blocks []blk
		for op := 0; op < 400; op++ {
			if len(blocks) == 0 || rng.Intn(3) != 0 {
				size := uint64(rng.Intn(4096) + 1)
				p, err := a.Alloc(size)
				if err != nil {
					return false
				}
				for _, b := range blocks {
					bl, bh := b.addr, b.addr+Addr(roundUp(b.size))
					nl, nh := p, p+Addr(roundUp(size))
					if nl < bh && bl < nh {
						return false // overlap
					}
				}
				blocks = append(blocks, blk{p, size})
			} else {
				i := rng.Intn(len(blocks))
				got, err := a.Free(blocks[i].addr)
				if err != nil || got != blocks[i].size {
					return false
				}
				blocks = append(blocks[:i], blocks[i+1:]...)
			}
		}
		return a.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestConcurrentAllocFree(t *testing.T) {
	a := NewHeap()
	const workers = 8
	done := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			rng := rand.New(rand.NewSource(int64(w)))
			var mine []Addr
			for i := 0; i < 500; i++ {
				if len(mine) == 0 || rng.Intn(2) == 0 {
					p, err := a.Alloc(uint64(rng.Intn(512) + 1))
					if err != nil {
						done <- err
						return
					}
					mine = append(mine, p)
				} else {
					i := rng.Intn(len(mine))
					if _, err := a.Free(mine[i]); err != nil {
						done <- err
						return
					}
					mine = append(mine[:i], mine[i+1:]...)
				}
			}
			for _, p := range mine {
				if _, err := a.Free(p); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(w)
	}
	for w := 0; w < workers; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if err := a.CheckInvariants(); err != nil {
		t.Error(err)
	}
	if live, bytes, _, _ := a.Stats(); live != 0 || bytes != 0 {
		t.Errorf("leaked: live=%d bytes=%d", live, bytes)
	}
}
