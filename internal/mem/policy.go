package mem

import "fmt"

// Policy decides which NUMA domain a page is homed in when it is first
// touched. Policies are consulted exactly once per page.
type Policy interface {
	// Place returns the home domain for page, given the NUMA domain of the
	// thread performing the first touch and the number of domains.
	Place(page PageID, accessorDomain, domains int) int
	// String names the policy for reports.
	String() string
}

// FirstTouch homes each page in the domain of the first thread to touch it —
// the Linux default. Arrays initialized serially by a master thread end up
// entirely in the master's domain.
type FirstTouch struct{}

// Place implements Policy.
func (FirstTouch) Place(_ PageID, accessorDomain, _ int) int { return accessorDomain }

func (FirstTouch) String() string { return "first-touch" }

// Interleave homes pages round-robin across all domains, like
// `numactl --interleave=all` (process-wide) or libnuma's
// numa_alloc_interleaved (per allocation, via Space.SetRangePolicy).
type Interleave struct{}

// Place implements Policy.
func (Interleave) Place(page PageID, _, domains int) int { return int(uint64(page) % uint64(domains)) }

func (Interleave) String() string { return "interleave" }

// Bind homes every page in one fixed domain (numactl --membind).
type Bind struct{ Domain int }

// Place implements Policy.
func (b Bind) Place(_ PageID, _, domains int) int {
	if b.Domain < 0 || b.Domain >= domains {
		panic(fmt.Sprintf("mem: Bind domain %d out of range [0,%d)", b.Domain, domains))
	}
	return b.Domain
}

func (b Bind) String() string { return fmt.Sprintf("bind(%d)", b.Domain) }
