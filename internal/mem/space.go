package mem

import (
	"fmt"
	"sync"
)

// Space is one process's virtual address space: a page table with NUMA
// placement, a heap allocator, a brk bump region, and fixed static/stack
// segments. Each simulated MPI rank owns one Space.
type Space struct {
	PT   *PageTable
	Heap *Allocator

	mu  sync.Mutex
	brk Addr
}

// NewSpace creates an address space on a node with the given number of NUMA
// domains, using def as the process-wide placement policy (nil means
// first-touch, the Linux default).
func NewSpace(domains int, def Policy) *Space {
	return &Space{
		PT:   NewPageTable(domains, def),
		Heap: NewHeap(),
		brk:  BrkBase,
	}
}

// Malloc allocates size bytes on the heap without touching its pages: page
// placement happens on first access, so the first toucher's domain wins —
// this is why the paper's calloc→malloc change fixes first-touch placement
// for arrays that are initialized in parallel.
func (s *Space) Malloc(size uint64) (Addr, error) {
	return s.Heap.Alloc(size)
}

// Free releases a heap block, discarding page placements and any libnuma
// range policy so recycled address ranges start fresh.
func (s *Space) Free(addr Addr) (uint64, error) {
	size, err := s.Heap.Free(addr)
	if err != nil {
		return 0, err
	}
	s.PT.Discard(addr, addr+Addr(size))
	s.PT.ClearRangePolicy(addr, addr+Addr(size))
	return size, nil
}

// Sbrk extends the brk region (untracked "unknown data" allocations, like
// the paper's C++ template containers) and returns the old frontier.
func (s *Space) Sbrk(size uint64) (Addr, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	need := Addr(roundUp(size))
	if s.brk+need > BrkLimit {
		return 0, fmt.Errorf("mem: brk region exhausted")
	}
	addr := s.brk
	s.brk += need
	return addr, nil
}

// InterleaveRange installs libnuma-style interleaved placement for the
// not-yet-touched pages of [addr, addr+size).
func (s *Space) InterleaveRange(addr Addr, size uint64) {
	s.PT.SetRangePolicy(addr, addr+Addr(size), Interleave{})
}

// BindRange installs libnuma-style bound placement for [addr, addr+size).
func (s *Space) BindRange(addr Addr, size uint64, domain int) {
	s.PT.SetRangePolicy(addr, addr+Addr(size), Bind{Domain: domain})
}
