// Package mem models a process's memory: virtual address-space layout,
// page-granularity NUMA placement with pluggable policies (first-touch,
// interleaved, bound), and a heap allocator implementing the malloc family.
//
// The paper's NUMA findings all reduce to where pages get homed: Linux's
// default first-touch policy homes a page in the domain of the thread that
// first writes it, so arrays zeroed by a master thread (calloc + serial
// init) end up concentrated in one domain and every worker in another domain
// pays remote-access latency and queues on one memory controller. The two
// fixes studied in the paper — numactl's process-wide interleaving and
// libnuma's per-allocation interleaving — are Policy values here.
package mem

import "fmt"

// Addr is a virtual address in a simulated process address space.
type Addr uint64

// Page-granularity constants (4 KiB pages, matching the evaluated systems).
const (
	PageShift = 12
	PageSize  = 1 << PageShift
)

// PageID identifies one virtual page.
type PageID uint64

// PageOf returns the page containing a.
func PageOf(a Addr) PageID { return PageID(a >> PageShift) }

// Base returns the first address of the page.
func (p PageID) Base() Addr { return Addr(p) << PageShift }

// Address-space layout. Segments are fixed and widely separated so that
// classification by range is unambiguous.
const (
	// StaticBase is where the first load module's data segment is placed;
	// each subsequent module is spaced StaticModuleSpan higher.
	StaticBase       Addr = 0x0000_0040_0000
	StaticModuleSpan Addr = 0x0000_1000_0000 // 256 MiB per module
	StaticLimit      Addr = 0x0010_0000_0000

	// HeapBase..HeapLimit is the malloc arena.
	HeapBase  Addr = 0x1000_0000_0000
	HeapLimit Addr = 0x1800_0000_0000

	// BrkBase is the data-segment bump region used for allocations the
	// profiler deliberately does not track (the paper's example: C++
	// template containers allocating via brk).
	BrkBase  Addr = 0x2000_0000_0000
	BrkLimit Addr = 0x2100_0000_0000

	// StackTop is the top of the first thread's stack; each thread's stack
	// occupies StackSpan descending below the previous one.
	StackTop  Addr = 0x7FFF_FFFF_F000
	StackSpan Addr = 0x0000_0080_0000 // 8 MiB per thread
)

// Segment classifies an address by the region of the layout it falls in.
type Segment uint8

const (
	SegUnmapped Segment = iota
	SegStatic
	SegHeap
	SegBrk
	SegStack
)

// String returns the conventional name of the segment.
func (s Segment) String() string {
	switch s {
	case SegStatic:
		return "static"
	case SegHeap:
		return "heap"
	case SegBrk:
		return "brk"
	case SegStack:
		return "stack"
	default:
		return "unmapped"
	}
}

// SegmentOf classifies an address by layout range alone. It does not say
// whether the address is actually allocated.
func SegmentOf(a Addr) Segment {
	switch {
	case a >= StaticBase && a < StaticLimit:
		return SegStatic
	case a >= HeapBase && a < HeapLimit:
		return SegHeap
	case a >= BrkBase && a < BrkLimit:
		return SegBrk
	case a <= StackTop && a > StackTop-256*StackSpan:
		return SegStack
	default:
		return SegUnmapped
	}
}

// ModuleBase returns the static-data base address for the i-th load module.
func ModuleBase(i int) Addr {
	base := StaticBase + Addr(i)*StaticModuleSpan
	if base >= StaticLimit {
		panic(fmt.Sprintf("mem: module index %d exceeds static segment", i))
	}
	return base
}

// StackBase returns the (descending) stack top for thread tid.
func StackBase(tid int) Addr {
	base := StackTop - Addr(tid)*StackSpan
	if base <= StackTop-256*StackSpan {
		panic(fmt.Sprintf("mem: thread id %d exceeds stack region", tid))
	}
	return base
}
