package profio

import (
	"bufio"
	"bytes"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"dcprof/internal/cct"
	"dcprof/internal/metric"
	"dcprof/internal/telemetry"
)

// denseProfile approximates a real per-thread CCT: a bounded symbol set (40
// functions, a few call-site and statement lines each) reached through many
// distinct calling contexts — frames few, contexts many, which is exactly
// the redundancy the v3 frame table deduplicates away.
func denseProfile(seed int64, contexts int) *cct.Profile {
	p := cct.NewProfile(int(seed)%64, int(seed)%8, "IBS@4096")
	name := func(f int) string { return fmt.Sprintf("fn%02d", f) }
	file := func(f int) string { return fmt.Sprintf("src%d.c", f%10) }
	var v metric.Vector
	v[metric.Samples] = 5
	v[metric.Latency] = 1200
	for i := 0; i < contexts; i++ {
		fn := (i + int(seed)) % 40
		var path []cct.Frame
		for d := 0; d < 6; d++ {
			f := (fn + d*7 + 3) % 40
			path = append(path, cct.Frame{
				Kind: cct.KindCall, Module: "exe",
				Name: name(f), File: file(f),
				Line: 10 + 10*((i>>uint(d))%3),
			})
		}
		leaf := (fn + i/40) % 40
		path = append(path, cct.Frame{
			Kind: cct.KindStmt, Module: "exe",
			Name: name(leaf), File: file(leaf), Line: 100 + 10*(i%5),
		})
		p.Trees[cct.Class(i%cct.NumClasses)].AddSample(path, &v)
	}
	return p
}

// encodedSizeV2 is EncodedSize for the compatibility writer.
func encodedSizeV2(t *testing.T, p *cct.Profile) int64 {
	t.Helper()
	var cw countWriter
	if err := WriteProfileV2(&cw, p); err != nil {
		t.Fatal(err)
	}
	return cw.n
}

// TestV2CompatRoundTrip: v2 files written by previous releases (and the
// retained WriteProfileV2) must keep decoding bit-exact.
func TestV2CompatRoundTrip(t *testing.T) {
	p := sampleProfile(3, 17)
	var buf bytes.Buffer
	if err := WriteProfileV2(&buf, p); err != nil {
		t.Fatal(err)
	}
	d, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if d.Version() != Version2 {
		t.Errorf("version = %d, want %d", d.Version(), Version2)
	}
	got, err := d.ReadRest()
	if err != nil {
		t.Fatal(err)
	}
	profilesEqual(t, p, got)
}

// TestV3WritesCurrentVersion pins that WriteProfile emits v3.
func TestV3WritesCurrentVersion(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteProfile(&buf, sampleProfile(0, 0)); err != nil {
		t.Fatal(err)
	}
	d, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if d.Version() != Version {
		t.Errorf("version = %d, want %d", d.Version(), Version)
	}
}

// TestV3V2Equivalence: both encodings of the same profile must decode to
// identical trees, and a v3 re-encode of a v2 decode must be byte-stable —
// the migration path users take on existing measurement directories.
func TestV3V2Equivalence(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		p := randomProfile(seed)
		var b2, b3 bytes.Buffer
		if err := WriteProfileV2(&b2, p); err != nil {
			t.Fatal(err)
		}
		if err := WriteProfile(&b3, p); err != nil {
			t.Fatal(err)
		}
		from2, err := ReadProfile(bytes.NewReader(b2.Bytes()))
		if err != nil {
			t.Fatalf("seed %d: v2 decode: %v", seed, err)
		}
		from3, err := ReadProfile(bytes.NewReader(b3.Bytes()))
		if err != nil {
			t.Fatalf("seed %d: v3 decode: %v", seed, err)
		}
		profilesEqual(t, from2, from3)

		var re1, re2 bytes.Buffer
		if err := WriteProfile(&re1, from2); err != nil {
			t.Fatal(err)
		}
		if err := WriteProfile(&re2, from3); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(re1.Bytes(), re2.Bytes()) {
			t.Fatalf("seed %d: v3 re-encodes differ between v2- and v3-sourced decodes", seed)
		}
	}
}

// TestV3Compactness is the headline size claim: on a realistically dense
// CCT, v3 must be at least 2x smaller than the same profile as v2.
func TestV3Compactness(t *testing.T) {
	var v2, v3 int64
	for seed := int64(0); seed < 8; seed++ {
		p := denseProfile(seed, 400)
		v2 += encodedSizeV2(t, p)
		n, err := EncodedSize(p)
		if err != nil {
			t.Fatal(err)
		}
		v3 += n
	}
	ratio := float64(v2) / float64(v3)
	t.Logf("v2 %d bytes, v3 %d bytes, ratio %.2fx", v2, v3, ratio)
	if ratio < 2.0 {
		t.Errorf("v3 only %.2fx smaller than v2, want >= 2x", ratio)
	}
}

// TestV3SavedBytesTelemetry: the always-on counter must record the exact
// v2-minus-v3 difference for each profile written.
func TestV3SavedBytesTelemetry(t *testing.T) {
	p := denseProfile(1, 200)
	before := counterValue(t, "profio.write.v3_saved_bytes")
	v3, err := EncodedSize(p)
	if err != nil {
		t.Fatal(err)
	}
	after := counterValue(t, "profio.write.v3_saved_bytes")
	want := uint64(encodedSizeV2(t, p) - v3)
	if got := after - before; got != want {
		t.Errorf("v3_saved_bytes delta = %d, want %d", got, want)
	}
}

func counterValue(t *testing.T, name string) uint64 {
	t.Helper()
	v, ok := telemetry.Default().Snapshot().Counters[name]
	if !ok {
		return 0
	}
	return v
}

// TestV3TemporalSidecarParity: the temporal trailer references nodes by
// pre-order index, which v3 must assign identically to v2 — a sidecar
// written against either tree encoding decodes to the same series.
func TestV3TemporalSidecarParity(t *testing.T) {
	p := sampleProfile(2, 4)
	ts := &cct.TimeSeries{Width: 1 << 20}
	p.Trees[cct.ClassHeap].Walk(func(n *cct.Node, _ int) bool {
		if n.Metrics[metric.Samples] == 0 {
			return true
		}
		var d cct.TimeDelta
		d.Class = cct.ClassHeap
		d.Node = n
		d.Metrics[metric.Samples] = 1
		ts.Windows = append(ts.Windows, cct.TimeWindow{Index: 7, Deltas: []cct.TimeDelta{d}})
		return true
	})
	if len(ts.Windows) == 0 {
		t.Fatal("sample profile has no heap samples")
	}
	p.Temporal = ts

	for name, write := range map[string]func(*bytes.Buffer) error{
		"v2": func(b *bytes.Buffer) error { return WriteProfileV2(b, p) },
		"v3": func(b *bytes.Buffer) error { return WriteProfile(b, p) },
	} {
		var buf bytes.Buffer
		if err := write(&buf); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, err := ReadProfile(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got.Temporal == nil {
			t.Fatalf("%s: sidecar lost", name)
		}
		if len(got.Temporal.Windows) != len(ts.Windows) {
			t.Fatalf("%s: %d windows, want %d", name, len(got.Temporal.Windows), len(ts.Windows))
		}
		for i, w := range got.Temporal.Windows {
			if w.Index != ts.Windows[i].Index || len(w.Deltas) != len(ts.Windows[i].Deltas) {
				t.Errorf("%s: window %d = {%d, %d deltas}, want {%d, %d}", name, i,
					w.Index, len(w.Deltas), ts.Windows[i].Index, len(ts.Windows[i].Deltas))
			}
		}
	}
}

// TestMixedVersionDir: one measurement directory may hold files written by
// different releases; ReadDir must load all of them.
func TestMixedVersionDir(t *testing.T) {
	dir := t.TempDir()
	p2, p3 := sampleProfile(0, 0), sampleProfile(0, 1)
	writeRaw := func(p *cct.Profile, enc func(*bytes.Buffer) error) {
		var buf bytes.Buffer
		if err := enc(&buf); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, FileName(p.Rank, p.Thread)), buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	writeRaw(p2, func(b *bytes.Buffer) error { return WriteProfileV2(b, p2) })
	writeRaw(p3, func(b *bytes.Buffer) error { return WriteProfile(b, p3) })

	got, err := ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("read %d profiles, want 2", len(got))
	}
	profilesEqual(t, p2, got[0])
	profilesEqual(t, p3, got[1])
}

// TestV3FrameTableValidation: a frame-table entry with an out-of-range
// string index must be rejected at header parse (a valid CRC does not make
// the record trustworthy).
func TestV3FrameTableValidation(t *testing.T) {
	// Hand-encode a v3 header section whose one frame-table entry names a
	// string index past the table, with a valid CRC around it.
	var payload bytes.Buffer
	pw := bufio.NewWriter(&payload)
	writeUvarint(pw, 0) // rank
	writeUvarint(pw, 0) // thread
	writeUvarint(pw, 1) // one string
	writeUvarint(pw, 1)
	pw.WriteString("a")
	writeUvarint(pw, 0) // event
	writeUvarint(pw, 1) // one frame
	pw.WriteByte(byte(cct.KindCall))
	writeUvarint(pw, 99) // module string index out of range
	writeUvarint(pw, 0)
	writeUvarint(pw, 0)
	writeUvarint(pw, 0)
	pw.Flush()

	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	writeU32(w, Magic)
	writeU32(w, Version)
	writeUvarint(w, uint64(payload.Len()))
	w.Write(payload.Bytes())
	writeU32(w, crc32.ChecksumIEEE(payload.Bytes()))
	w.Flush()

	if _, err := NewReader(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("out-of-range frame-table string index accepted")
	}
}
