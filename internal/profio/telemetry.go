package profio

// Always-on I/O accounting. The reader and writer are free functions used
// from every layer, so their instruments live in the process-wide default
// registry rather than being threaded through each call: counter adds are
// striped atomics, far below the cost of the I/O they count, and a format
// layer that silently loses track of its CRC failures and salvage
// recoveries cannot support the paper's integrity claims.

import "dcprof/internal/telemetry"

var (
	telWriteBytes    = telemetry.Default().Counter("profio.write.bytes")
	telWriteSections = telemetry.Default().Counter("profio.write.sections")
	telWriteProfiles = telemetry.Default().Counter("profio.write.profiles")
	// telV3SavedBytes accumulates, per v3 profile written, the exact byte
	// difference against what the same profile would cost in v2 — the
	// always-on receipt for the compact encoding's claimed savings.
	telV3SavedBytes = telemetry.Default().Counter("profio.write.v3_saved_bytes")

	telReadBytes    = telemetry.Default().Counter("profio.read.bytes")
	telReadSections = telemetry.Default().Counter("profio.read.sections")
	telReadProfiles = telemetry.Default().Counter("profio.read.profiles")
	telReadNodes    = telemetry.Default().Counter("profio.read.nodes")

	telCRCFailures = telemetry.Default().Counter("profio.read.crc_failures")
	telTruncations = telemetry.Default().Counter("profio.read.truncations")

	telSalvageFiles     = telemetry.Default().Counter("profio.salvage.files")
	telSalvageRecovered = telemetry.Default().Counter("profio.salvage.recovered_trees")
	telSalvageLost      = telemetry.Default().Counter("profio.salvage.lost_trees")

	telTemporalRead   = telemetry.Default().Counter("profio.read.temporal_sidecars")
	telTrailerSkipped = telemetry.Default().Counter("profio.read.trailers_skipped")
)
