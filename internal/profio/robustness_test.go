package profio

import (
	"bufio"
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"time"

	"dcprof/internal/cct"
)

// TestCorruptionNeverPanics flips bytes all over a valid profile image and
// requires ReadProfile to either error out or return a structurally valid
// profile — never panic, never hang, never allocate absurdly.
func TestCorruptionNeverPanics(t *testing.T) {
	p := sampleProfile(1, 1)
	var buf bytes.Buffer
	if err := WriteProfile(&buf, p); err != nil {
		t.Fatal(err)
	}
	pristine := buf.Bytes()

	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 500; trial++ {
		img := append([]byte{}, pristine...)
		flips := rng.Intn(4) + 1
		for f := 0; f < flips; f++ {
			img[rng.Intn(len(img))] ^= byte(1 << rng.Intn(8))
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d: ReadProfile panicked: %v", trial, r)
				}
			}()
			got, err := ReadProfile(bytes.NewReader(img))
			if err == nil && got != nil {
				// Accidentally still parseable: must be well-formed.
				_ = got.NumNodes()
				_ = got.Total()
			}
		}()
	}
}

// TestTruncationSweep truncates at every prefix length of a small profile.
func TestTruncationSweep(t *testing.T) {
	p := cctSmall()
	var buf bytes.Buffer
	if err := WriteProfile(&buf, p); err != nil {
		t.Fatal(err)
	}
	img := buf.Bytes()
	for n := 0; n < len(img); n++ {
		if _, err := ReadProfile(bytes.NewReader(img[:n])); err == nil {
			t.Fatalf("prefix of %d/%d bytes accepted", n, len(img))
		}
	}
	if _, err := ReadProfile(bytes.NewReader(img)); err != nil {
		t.Fatalf("full image rejected: %v", err)
	}
}

func cctSmall() *cct.Profile {
	return sampleProfile(0, 0)
}

// imageHeader hand-encodes a minimal valid header with a one-entry string
// table, up to the point where the first tree begins.
func imageHeader() (*bytes.Buffer, *bufio.Writer) {
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	writeU32(w, Magic)
	writeU32(w, Version)
	writeUvarint(w, 0) // rank
	writeUvarint(w, 0) // thread
	writeUvarint(w, 1) // one string
	writeUvarint(w, 1)
	w.WriteString("a")
	writeUvarint(w, 0) // event index
	return &buf, w
}

// writeNode hand-encodes one node record with no metrics.
func writeNode(w *bufio.Writer, parent uint32, strIdx uint64) {
	writeU32(w, parent)
	w.WriteByte(byte(cct.KindCall))
	writeUvarint(w, strIdx) // module
	writeUvarint(w, strIdx) // name
	writeUvarint(w, strIdx) // file
	writeUvarint(w, 0)      // line
	w.WriteByte(0)          // no metrics
}

// imageWithBadStringIndex encodes a node whose name index points past the
// string table.
func imageWithBadStringIndex() []byte {
	buf, w := imageHeader()
	writeUvarint(w, 2) // two nodes
	writeNode(w, noParent, 0)
	writeNode(w, 0, 99) // string index out of range
	w.Flush()
	return buf.Bytes()
}

// imageWithCyclicParent encodes a node that names itself as its parent —
// the representative of the cyclic/forward parent-index corruption class.
func imageWithCyclicParent() []byte {
	buf, w := imageHeader()
	writeUvarint(w, 2)
	writeNode(w, noParent, 0)
	writeNode(w, 1, 0) // node 1's parent is node 1: a cycle
	w.Flush()
	return buf.Bytes()
}

// imageWithForwardParent encodes a node whose parent index points at a
// not-yet-decoded node.
func imageWithForwardParent() []byte {
	buf, w := imageHeader()
	writeUvarint(w, 3)
	writeNode(w, noParent, 0)
	writeNode(w, 2, 0) // parent decoded only later
	writeNode(w, 0, 0)
	w.Flush()
	return buf.Bytes()
}

// TestHugeClaimedCountFailsFast guards the fuzz-found DoS: a header
// claiming ~2^28 nodes (just under the sanity limit) must not trigger a
// gigabyte preallocation before the first record fails to decode.
func TestHugeClaimedCountFailsFast(t *testing.T) {
	buf, w := imageHeader()
	writeUvarint(w, 1<<28-1) // absurd node count, then nothing
	w.Flush()
	start := time.Now()
	if _, err := ReadProfile(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("truncated huge-count image accepted")
	}
	if d := time.Since(start); d > time.Second {
		t.Errorf("rejection took %s; claimed count caused a huge allocation", d)
	}
}

func TestCorruptStringIndexRejected(t *testing.T) {
	_, err := ReadProfile(bytes.NewReader(imageWithBadStringIndex()))
	if err == nil {
		t.Fatal("out-of-range string index accepted")
	}
	if !strings.Contains(err.Error(), "string index") {
		t.Errorf("error %q does not blame the string index", err)
	}
}

func TestCyclicParentRejected(t *testing.T) {
	for name, img := range map[string][]byte{
		"self-cycle": imageWithCyclicParent(),
		"forward":    imageWithForwardParent(),
	} {
		_, err := ReadProfile(bytes.NewReader(img))
		if err == nil {
			t.Fatalf("%s: cyclic/forward parent index accepted", name)
		}
		if !strings.Contains(err.Error(), "parent") {
			t.Errorf("%s: error %q does not blame the parent index", name, err)
		}
	}
}
