package profio

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"math/rand"
	"strings"
	"testing"
	"time"

	"dcprof/internal/cct"
)

// TestCorruptionNeverPanics flips bytes all over a valid profile image and
// requires ReadProfile to either error out or return a structurally valid
// profile — never panic, never hang, never allocate absurdly.
func TestCorruptionNeverPanics(t *testing.T) {
	p := sampleProfile(1, 1)
	var buf bytes.Buffer
	if err := WriteProfile(&buf, p); err != nil {
		t.Fatal(err)
	}
	pristine := buf.Bytes()

	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 500; trial++ {
		img := append([]byte{}, pristine...)
		flips := rng.Intn(4) + 1
		for f := 0; f < flips; f++ {
			img[rng.Intn(len(img))] ^= byte(1 << rng.Intn(8))
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d: ReadProfile panicked: %v", trial, r)
				}
			}()
			got, err := ReadProfile(bytes.NewReader(img))
			if err == nil && got != nil {
				// Accidentally still parseable: must be well-formed.
				_ = got.NumNodes()
				_ = got.Total()
			}
		}()
	}
}

// TestTruncationSweep truncates at every prefix length of a small profile.
func TestTruncationSweep(t *testing.T) {
	p := cctSmall()
	var buf bytes.Buffer
	if err := WriteProfile(&buf, p); err != nil {
		t.Fatal(err)
	}
	img := buf.Bytes()
	for n := 0; n < len(img); n++ {
		if _, err := ReadProfile(bytes.NewReader(img[:n])); err == nil {
			t.Fatalf("prefix of %d/%d bytes accepted", n, len(img))
		}
	}
	if _, err := ReadProfile(bytes.NewReader(img)); err != nil {
		t.Fatalf("full image rejected: %v", err)
	}
}

func cctSmall() *cct.Profile {
	return sampleProfile(0, 0)
}

// imageHeader hand-encodes a minimal valid v1 header with a one-entry
// string table, up to the point where the first tree begins. The tree
// record encoding is identical in v1 and v2 (v2 merely frames it in a
// checksummed section), so these images exercise the shared record-level
// validation through the simpler v1 path.
func imageHeader() (*bytes.Buffer, *bufio.Writer) {
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	writeU32(w, Magic)
	writeU32(w, Version1)
	writeUvarint(w, 0) // rank
	writeUvarint(w, 0) // thread
	writeUvarint(w, 1) // one string
	writeUvarint(w, 1)
	w.WriteString("a")
	writeUvarint(w, 0) // event index
	return &buf, w
}

// writeNode hand-encodes one node record with no metrics.
func writeNode(w *bufio.Writer, parent uint32, strIdx uint64) {
	writeU32(w, parent)
	w.WriteByte(byte(cct.KindCall))
	writeUvarint(w, strIdx) // module
	writeUvarint(w, strIdx) // name
	writeUvarint(w, strIdx) // file
	writeUvarint(w, 0)      // line
	w.WriteByte(0)          // no metrics
}

// imageWithBadStringIndex encodes a node whose name index points past the
// string table.
func imageWithBadStringIndex() []byte {
	buf, w := imageHeader()
	writeUvarint(w, 2) // two nodes
	writeNode(w, noParent, 0)
	writeNode(w, 0, 99) // string index out of range
	w.Flush()
	return buf.Bytes()
}

// imageWithCyclicParent encodes a node that names itself as its parent —
// the representative of the cyclic/forward parent-index corruption class.
func imageWithCyclicParent() []byte {
	buf, w := imageHeader()
	writeUvarint(w, 2)
	writeNode(w, noParent, 0)
	writeNode(w, 1, 0) // node 1's parent is node 1: a cycle
	w.Flush()
	return buf.Bytes()
}

// imageWithForwardParent encodes a node whose parent index points at a
// not-yet-decoded node.
func imageWithForwardParent() []byte {
	buf, w := imageHeader()
	writeUvarint(w, 3)
	writeNode(w, noParent, 0)
	writeNode(w, 2, 0) // parent decoded only later
	writeNode(w, 0, 0)
	w.Flush()
	return buf.Bytes()
}

// encodeV1 hand-encodes a profile in the legacy v1 layout (no sections,
// checksums, or footer) — the compatibility surface v2 must keep reading.
func encodeV1(t *testing.T, p *cct.Profile) []byte {
	t.Helper()
	strs := newStringTable()
	for _, tree := range p.Trees {
		tree.Walk(func(n *cct.Node, _ int) bool {
			strs.intern(n.Frame.Module)
			strs.intern(n.Frame.Name)
			strs.intern(n.Frame.File)
			return true
		})
	}
	strs.intern(p.Event)

	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	writeU32(w, Magic)
	writeU32(w, Version1)
	writeUvarint(w, uint64(p.Rank))
	writeUvarint(w, uint64(p.Thread))
	writeUvarint(w, uint64(len(strs.list)))
	for _, s := range strs.list {
		writeUvarint(w, uint64(len(s)))
		w.WriteString(s)
	}
	writeUvarint(w, uint64(strs.idx[p.Event]))
	for _, tree := range p.Trees {
		if _, err := writeTree(w, tree, strs); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestV1CompatRoundTrip: v1 files written by older profilers must keep
// decoding bit-exact under the v2 reader.
func TestV1CompatRoundTrip(t *testing.T) {
	p := sampleProfile(3, 17)
	img := encodeV1(t, p)
	d, err := NewReader(bytes.NewReader(img))
	if err != nil {
		t.Fatal(err)
	}
	if d.Version() != Version1 {
		t.Errorf("version = %d, want %d", d.Version(), Version1)
	}
	got, err := d.ReadRest()
	if err != nil {
		t.Fatal(err)
	}
	profilesEqual(t, p, got)
}

// sectionBoundaries parses a v2 image and returns the byte offset just
// past each section (header, then each tree) — the seams fault tests cut
// and corrupt at. The final entry is where the footer begins.
func sectionBoundaries(t *testing.T, img []byte) []int {
	t.Helper()
	pos := 8 // magic + version
	var out []int
	for s := 0; s < 1+cct.NumClasses; s++ {
		n, k := binary.Uvarint(img[pos:])
		if k <= 0 {
			t.Fatalf("section %d: bad length varint at %d", s, pos)
		}
		pos += k + int(n) + 4 // varint, payload, crc
		out = append(out, pos)
	}
	return out
}

// TestEveryBitFlipDetected is the integrity guarantee v1 could not make:
// flipping ANY single bit of a v2 image must produce a read error — magic
// and version are checked, every section payload and the footer count are
// checksummed, and the checksums themselves can only mismatch.
func TestEveryBitFlipDetected(t *testing.T) {
	p := sampleProfile(1, 1)
	var buf bytes.Buffer
	if err := WriteProfile(&buf, p); err != nil {
		t.Fatal(err)
	}
	pristine := buf.Bytes()
	for off := 0; off < len(pristine); off++ {
		for bit := 0; bit < 8; bit++ {
			img := append([]byte{}, pristine...)
			img[off] ^= 1 << bit
			if _, err := ReadProfile(bytes.NewReader(img)); err == nil {
				t.Fatalf("flip of byte %d bit %d went undetected", off, bit)
			}
		}
	}
}

// TestSalvageCorruptSection: damage confined to one checksummed tree
// section must cost exactly that class; the others salvage.
func TestSalvageCorruptSection(t *testing.T) {
	p := sampleProfile(2, 9)
	var buf bytes.Buffer
	if err := WriteProfile(&buf, p); err != nil {
		t.Fatal(err)
	}
	img := buf.Bytes()
	b := sectionBoundaries(t, img)

	for tree := 0; tree < cct.NumClasses; tree++ {
		damaged := append([]byte{}, img...)
		damaged[b[tree]+3] ^= 0x40 // inside tree section's payload
		s, err := SalvageProfile(bytes.NewReader(damaged), nil)
		if err != nil {
			t.Fatalf("tree %d: header should be salvageable: %v", tree, err)
		}
		if s.Trees != cct.NumClasses-1 || s.Lost != 1 {
			t.Errorf("tree %d: salvaged %d lost %d, want %d/1", tree, s.Trees, s.Lost, cct.NumClasses-1)
		}
		if len(s.Errs) != 1 || !strings.Contains(s.Errs[0].Error(), "checksum") {
			t.Errorf("tree %d: errs %v, want one checksum error", tree, s.Errs)
		}
		if s.Intact() {
			t.Errorf("tree %d: damaged file reported intact", tree)
		}
		// The salvaged classes must carry exactly the original data.
		for c := 0; c < cct.NumClasses; c++ {
			if c == tree {
				continue
			}
			if got, want := s.Profile.Trees[c].Total(), p.Trees[c].Total(); got != want {
				t.Errorf("tree %d: salvaged class %d total %v, want %v", tree, c, got, want)
			}
		}
	}
}

// TestSalvageTruncatedFile: a cut at a section seam keeps everything
// before the cut and loses everything after.
func TestSalvageTruncatedFile(t *testing.T) {
	p := sampleProfile(4, 2)
	var buf bytes.Buffer
	if err := WriteProfile(&buf, p); err != nil {
		t.Fatal(err)
	}
	img := buf.Bytes()
	b := sectionBoundaries(t, img)

	for keep := 0; keep <= cct.NumClasses; keep++ {
		// Cut right after `keep` tree sections (b[0] ends the header).
		s, err := SalvageProfile(bytes.NewReader(img[:b[keep]]), nil)
		if err != nil {
			t.Fatalf("keep=%d: %v", keep, err)
		}
		if s.Trees != keep || s.Lost != cct.NumClasses-keep {
			t.Errorf("keep=%d: salvaged %d lost %d", keep, s.Trees, s.Lost)
		}
		if len(s.Errs) == 0 {
			t.Errorf("keep=%d: truncation produced no error", keep)
		}
	}

	// Header destroyed: nothing salvageable, SalvageProfile must say so.
	if _, err := SalvageProfile(bytes.NewReader(img[:6]), nil); err == nil {
		t.Error("salvage of headerless file succeeded")
	}
}

// TestSalvageV1Partial: v1 has no framing, so salvage degrades to "trees
// before the first failure".
func TestSalvageV1Partial(t *testing.T) {
	p := sampleProfile(0, 1)
	img := encodeV1(t, p)
	s, err := SalvageProfile(bytes.NewReader(img[:len(img)-3]), nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.Trees+s.Lost != cct.NumClasses || s.Lost == 0 {
		t.Errorf("salvaged %d lost %d, want a partial split of %d", s.Trees, s.Lost, cct.NumClasses)
	}
	// Intact v1 file: salvage degenerates to a clean read.
	s, err = SalvageProfile(bytes.NewReader(img), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Intact() || s.Trees != cct.NumClasses {
		t.Errorf("intact v1: %d trees, errs %v", s.Trees, s.Errs)
	}
}

// TestFooterValidation: footer damage is detected even when every tree is
// fine, and salvage still recovers all trees while reporting it.
func TestFooterValidation(t *testing.T) {
	p := sampleProfile(5, 5)
	var buf bytes.Buffer
	if err := WriteProfile(&buf, p); err != nil {
		t.Fatal(err)
	}
	img := buf.Bytes()

	for name, mutate := range map[string]func([]byte) []byte{
		"missing":     func(b []byte) []byte { return b[:len(b)-9] },
		"bad magic":   func(b []byte) []byte { c := append([]byte{}, b...); c[len(c)-9] ^= 0xff; return c },
		"bad crc":     func(b []byte) []byte { c := append([]byte{}, b...); c[len(c)-1] ^= 0x01; return c },
		"wrong count": func(b []byte) []byte { c := append([]byte{}, b...); c[len(c)-5] ^= 0x07; return c },
		"trailing":    func(b []byte) []byte { return append(append([]byte{}, b...), 0xaa) },
	} {
		bad := mutate(img)
		if _, err := ReadProfile(bytes.NewReader(bad)); err == nil {
			t.Errorf("%s: accepted", name)
		}
		s, err := SalvageProfile(bytes.NewReader(bad), nil)
		if err != nil {
			t.Errorf("%s: salvage refused: %v", name, err)
			continue
		}
		if s.Trees != cct.NumClasses {
			t.Errorf("%s: salvaged %d trees, want all %d", name, s.Trees, cct.NumClasses)
		}
		if len(s.Errs) == 0 {
			t.Errorf("%s: no error recorded", name)
		}
	}
}

// TestHugeClaimedCountFailsFast guards the fuzz-found DoS: a header
// claiming ~2^28 nodes (just under the sanity limit) must not trigger a
// gigabyte preallocation before the first record fails to decode.
func TestHugeClaimedCountFailsFast(t *testing.T) {
	buf, w := imageHeader()
	writeUvarint(w, 1<<28-1) // absurd node count, then nothing
	w.Flush()
	start := time.Now()
	if _, err := ReadProfile(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("truncated huge-count image accepted")
	}
	if d := time.Since(start); d > time.Second {
		t.Errorf("rejection took %s; claimed count caused a huge allocation", d)
	}
}

func TestCorruptStringIndexRejected(t *testing.T) {
	_, err := ReadProfile(bytes.NewReader(imageWithBadStringIndex()))
	if err == nil {
		t.Fatal("out-of-range string index accepted")
	}
	if !strings.Contains(err.Error(), "string index") {
		t.Errorf("error %q does not blame the string index", err)
	}
}

func TestCyclicParentRejected(t *testing.T) {
	for name, img := range map[string][]byte{
		"self-cycle": imageWithCyclicParent(),
		"forward":    imageWithForwardParent(),
	} {
		_, err := ReadProfile(bytes.NewReader(img))
		if err == nil {
			t.Fatalf("%s: cyclic/forward parent index accepted", name)
		}
		if !strings.Contains(err.Error(), "parent") {
			t.Errorf("%s: error %q does not blame the parent index", name, err)
		}
	}
}
