package profio

import (
	"bytes"
	"math/rand"
	"testing"

	"dcprof/internal/cct"
)

// TestCorruptionNeverPanics flips bytes all over a valid profile image and
// requires ReadProfile to either error out or return a structurally valid
// profile — never panic, never hang, never allocate absurdly.
func TestCorruptionNeverPanics(t *testing.T) {
	p := sampleProfile(1, 1)
	var buf bytes.Buffer
	if err := WriteProfile(&buf, p); err != nil {
		t.Fatal(err)
	}
	pristine := buf.Bytes()

	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 500; trial++ {
		img := append([]byte{}, pristine...)
		flips := rng.Intn(4) + 1
		for f := 0; f < flips; f++ {
			img[rng.Intn(len(img))] ^= byte(1 << rng.Intn(8))
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d: ReadProfile panicked: %v", trial, r)
				}
			}()
			got, err := ReadProfile(bytes.NewReader(img))
			if err == nil && got != nil {
				// Accidentally still parseable: must be well-formed.
				_ = got.NumNodes()
				_ = got.Total()
			}
		}()
	}
}

// TestTruncationSweep truncates at every prefix length of a small profile.
func TestTruncationSweep(t *testing.T) {
	p := cctSmall()
	var buf bytes.Buffer
	if err := WriteProfile(&buf, p); err != nil {
		t.Fatal(err)
	}
	img := buf.Bytes()
	for n := 0; n < len(img); n++ {
		if _, err := ReadProfile(bytes.NewReader(img[:n])); err == nil {
			t.Fatalf("prefix of %d/%d bytes accepted", n, len(img))
		}
	}
	if _, err := ReadProfile(bytes.NewReader(img)); err != nil {
		t.Fatalf("full image rejected: %v", err)
	}
}

func cctSmall() *cct.Profile {
	return sampleProfile(0, 0)
}
