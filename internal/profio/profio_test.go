package profio

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"testing"
	"testing/quick"

	"dcprof/internal/cct"
	"dcprof/internal/metric"
)

func sampleProfile(rank, thread int) *cct.Profile {
	p := cct.NewProfile(rank, thread, "IBS@4096")
	call := func(name string, line int) cct.Frame {
		return cct.Frame{Kind: cct.KindCall, Module: "exe", Name: name, File: name + ".c", Line: line}
	}
	stmt := func(name string, line int) cct.Frame {
		return cct.Frame{Kind: cct.KindStmt, Module: "exe", Name: name, File: name + ".c", Line: line}
	}
	var v metric.Vector
	v[metric.Samples] = 3
	v[metric.Latency] = 900
	v[metric.FromRMEM] = 2
	p.Trees[cct.ClassHeap].AddSample([]cct.Frame{
		call("main", 0), stmt("main", 5),
		{Kind: cct.KindCall, Module: "libc", Name: "calloc", File: "stdlib.h"},
		{Kind: cct.KindHeapData, Name: "S_diag_j"},
		call("main", 0), stmt("spmv", 480),
	}, &v)
	var v2 metric.Vector
	v2[metric.Samples] = 1
	v2[metric.Latency] = 40
	p.Trees[cct.ClassStatic].AddSample([]cct.Frame{
		{Kind: cct.KindStaticVar, Module: "exe", Name: "f_elem"},
		call("main", 0), stmt("kernel", 801),
	}, &v2)
	var v3 metric.Vector
	v3[metric.Samples] = 7
	p.Trees[cct.ClassNonMem].AddSample([]cct.Frame{call("main", 0), stmt("main", 2)}, &v3)
	return p
}

func profilesEqual(t *testing.T, a, b *cct.Profile) {
	t.Helper()
	if a.Rank != b.Rank || a.Thread != b.Thread || a.Event != b.Event {
		t.Fatalf("headers differ: %d/%d/%s vs %d/%d/%s",
			a.Rank, a.Thread, a.Event, b.Rank, b.Thread, b.Event)
	}
	for c := 0; c < cct.NumClasses; c++ {
		ta, tb := a.Trees[c], b.Trees[c]
		if ta.NumNodes() != tb.NumNodes() {
			t.Fatalf("class %d node counts differ: %d vs %d", c, ta.NumNodes(), tb.NumNodes())
		}
		if ta.Total() != tb.Total() {
			t.Fatalf("class %d totals differ: %v vs %v", c, ta.Total(), tb.Total())
		}
		// Structural walk comparison.
		type rec struct {
			frame cct.Frame
			depth int
			mets  metric.Vector
		}
		collect := func(tr *cct.Tree) []rec {
			var out []rec
			tr.Walk(func(n *cct.Node, d int) bool {
				out = append(out, rec{n.Frame, d, n.Metrics})
				return true
			})
			return out
		}
		ra, rb := collect(ta), collect(tb)
		for i := range ra {
			if ra[i] != rb[i] {
				t.Fatalf("class %d node %d differs: %+v vs %+v", c, i, ra[i], rb[i])
			}
		}
	}
}

func TestRoundTrip(t *testing.T) {
	p := sampleProfile(3, 17)
	var buf bytes.Buffer
	if err := WriteProfile(&buf, p); err != nil {
		t.Fatal(err)
	}
	got, err := ReadProfile(&buf)
	if err != nil {
		t.Fatal(err)
	}
	profilesEqual(t, p, got)
}

func TestEmptyProfileRoundTrip(t *testing.T) {
	p := cct.NewProfile(0, 0, "PM_MRK_DATA_FROM_RMEM@1000")
	var buf bytes.Buffer
	if err := WriteProfile(&buf, p); err != nil {
		t.Fatal(err)
	}
	got, err := ReadProfile(&buf)
	if err != nil {
		t.Fatal(err)
	}
	profilesEqual(t, p, got)
}

func TestBadMagicRejected(t *testing.T) {
	if _, err := ReadProfile(bytes.NewReader([]byte{1, 2, 3, 4, 5, 6, 7, 8})); err == nil {
		t.Error("garbage accepted")
	}
}

func TestTruncatedRejected(t *testing.T) {
	p := sampleProfile(0, 0)
	var buf bytes.Buffer
	if err := WriteProfile(&buf, p); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{5, len(full) / 3, len(full) - 1} {
		if _, err := ReadProfile(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestEncodedSizeMatches(t *testing.T) {
	p := sampleProfile(1, 2)
	var buf bytes.Buffer
	if err := WriteProfile(&buf, p); err != nil {
		t.Fatal(err)
	}
	n, err := EncodedSize(p)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("EncodedSize = %d, actual %d", n, buf.Len())
	}
}

func TestCompactness(t *testing.T) {
	// A profile with thousands of samples into few contexts must stay small
	// — the format's reason for existing.
	p := cct.NewProfile(0, 0, "IBS@4096")
	var v metric.Vector
	v[metric.Samples] = 1
	v[metric.Latency] = 123
	path := []cct.Frame{
		{Kind: cct.KindCall, Module: "exe", Name: "main", File: "main.c"},
		{Kind: cct.KindStmt, Module: "exe", Name: "main", File: "main.c", Line: 42},
	}
	for i := 0; i < 100_000; i++ {
		p.Trees[cct.ClassHeap].AddSample(path, &v)
	}
	n, err := EncodedSize(p)
	if err != nil {
		t.Fatal(err)
	}
	if n > 4096 {
		t.Errorf("100k coalesced samples encoded to %d bytes; format not compact", n)
	}
}

func TestWriteReadDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "measurements")
	var ps []*cct.Profile
	for rank := 0; rank < 2; rank++ {
		for th := 0; th < 3; th++ {
			ps = append(ps, sampleProfile(rank, th))
		}
	}
	total, err := WriteDir(dir, ps)
	if err != nil {
		t.Fatal(err)
	}
	if total <= 0 {
		t.Error("WriteDir reported no bytes")
	}
	got, err := ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ps) {
		t.Fatalf("read %d profiles, want %d", len(got), len(ps))
	}
	for i := range ps {
		profilesEqual(t, ps[i], got[i])
	}
	// Sorted by (rank, thread).
	for i := 1; i < len(got); i++ {
		a, b := got[i-1], got[i]
		if a.Rank > b.Rank || (a.Rank == b.Rank && a.Thread >= b.Thread) {
			t.Error("ReadDir not sorted")
		}
	}
}

// randomProfile builds an arbitrary profile from a seed.
func randomProfile(seed int64) *cct.Profile {
	rng := rand.New(rand.NewSource(seed))
	p := cct.NewProfile(rng.Intn(100), rng.Intn(1000), "IBS@65536")
	names := []string{"main", "solve", "hypre_CAlloc", "omp_fn.0", "α-unicode"}
	for i := 0; i < rng.Intn(60); i++ {
		class := cct.Class(rng.Intn(cct.NumClasses))
		depth := rng.Intn(5) + 1
		var path []cct.Frame
		if class == cct.ClassStatic {
			path = append(path, cct.Frame{Kind: cct.KindStaticVar, Module: "exe", Name: names[rng.Intn(len(names))]})
		}
		for d := 0; d < depth; d++ {
			path = append(path, cct.Frame{
				Kind: cct.KindCall, Module: "exe",
				Name: names[rng.Intn(len(names))], File: "f.c", Line: rng.Intn(500),
			})
		}
		path = append(path, cct.Frame{Kind: cct.KindStmt, Module: "exe", Name: "leaf", File: "f.c", Line: rng.Intn(500)})
		var v metric.Vector
		for m := 0; m < int(metric.NumMetrics); m++ {
			if rng.Intn(3) == 0 {
				v[m] = rng.Uint64() % 1_000_000
			}
		}
		p.Trees[class].AddSample(path, &v)
	}
	return p
}

// Property: round-trip preserves totals and node counts for arbitrary
// profiles.
func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		p := randomProfile(seed)
		var buf bytes.Buffer
		if err := WriteProfile(&buf, p); err != nil {
			return false
		}
		got, err := ReadProfile(&buf)
		if err != nil {
			return false
		}
		if got.Total() != p.Total() {
			return false
		}
		return got.NumNodes() == p.NumNodes()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func BenchmarkWriteProfile(b *testing.B) {
	p := randomProfile(42)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EncodedSize(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadProfile(b *testing.B) {
	p := randomProfile(42)
	var buf bytes.Buffer
	if err := WriteProfile(&buf, p); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadProfile(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}
