package profio

import (
	"bytes"
	"testing"

	"dcprof/internal/cct"
)

// FuzzReadProfile requires the reader to reject arbitrary, truncated, and
// corrupted inputs with an error — never a panic, hang, or absurd
// allocation. The seed corpus covers the corruption classes we know about:
// truncation at interesting boundaries, out-of-range string-table indices,
// and cyclic/forward parent indices. Run `go test -fuzz=FuzzReadProfile
// ./internal/profio` to search beyond the corpus.
func FuzzReadProfile(f *testing.F) {
	var full bytes.Buffer
	if err := WriteProfile(&full, sampleProfile(3, 17)); err != nil {
		f.Fatal(err)
	}
	var empty bytes.Buffer
	if err := WriteProfile(&empty, cct.NewProfile(0, 0, "IBS@4096")); err != nil {
		f.Fatal(err)
	}

	f.Add(full.Bytes())
	f.Add(empty.Bytes())
	f.Add(full.Bytes()[:7])               // truncated inside the header
	f.Add(full.Bytes()[:full.Len()/2])    // truncated mid-tree
	f.Add(full.Bytes()[:full.Len()-1])    // truncated by one byte
	f.Add([]byte{})                       // empty input
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}) // bad magic
	f.Add(imageWithBadStringIndex())
	f.Add(imageWithCyclicParent())
	f.Add(imageWithForwardParent())

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := ReadProfile(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accidentally parseable inputs must yield structurally valid,
		// re-encodable profiles.
		_ = p.NumNodes()
		_ = p.Total()
		var out bytes.Buffer
		if err := WriteProfile(&out, p); err != nil {
			t.Fatalf("decoded profile failed to re-encode: %v", err)
		}
	})
}
