package profio

import (
	"bytes"
	"encoding/binary"
	"testing"

	"dcprof/internal/cct"
)

// fuzzSeeds builds the shared seed corpus: intact v1, v2, and v3 images
// plus every corruption class we know about — truncation at interesting
// boundaries (including every section seam), flipped section and
// footer checksums, footer-magic and record-count damage, and the
// record-level attacks (bad string index, cyclic/forward parents).
func fuzzSeeds(f *testing.F) {
	var full bytes.Buffer
	if err := WriteProfile(&full, sampleProfile(3, 17)); err != nil {
		f.Fatal(err)
	}
	var fullV2 bytes.Buffer
	if err := WriteProfileV2(&fullV2, sampleProfile(3, 17)); err != nil {
		f.Fatal(err)
	}
	var empty bytes.Buffer
	if err := WriteProfile(&empty, cct.NewProfile(0, 0, "IBS@4096")); err != nil {
		f.Fatal(err)
	}

	f.Add(full.Bytes())
	f.Add(fullV2.Bytes())
	f.Add(empty.Bytes())
	f.Add(full.Bytes()[:7])               // truncated inside the preamble
	f.Add(full.Bytes()[:full.Len()/2])    // truncated mid-tree
	f.Add(full.Bytes()[:full.Len()-1])    // truncated by one byte
	f.Add([]byte{})                       // empty input
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}) // bad magic
	f.Add(imageWithBadStringIndex())
	f.Add(imageWithCyclicParent())
	f.Add(imageWithForwardParent())

	// Framing mutations over both checksummed formats.
	addFramingSeeds(f, full.Bytes())
	addFramingSeeds(f, fullV2.Bytes())

	// A legacy v1 image keeps the fuzzer exercising the v1 decode path
	// (the v1/v2 record encoding is shared, so patching the v2 image's
	// version byte yields a plausibly-v1 byte stream).
	v1 := append([]byte{}, fullV2.Bytes()...)
	binary.LittleEndian.PutUint32(v1[4:], Version1)
	f.Add(v1)
}

// addFramingSeeds adds the section-framing corruption classes of one
// checksummed (v2/v3) image: cut at every section seam, flip each
// section's trailing CRC byte and a payload byte, and damage the footer
// three ways.
func addFramingSeeds(f *testing.F, img []byte) {
	pos := 8
	for s := 0; s < 1+cct.NumClasses; s++ {
		n, k := binary.Uvarint(img[pos:])
		if k <= 0 {
			f.Fatalf("seed image: bad section %d", s)
		}
		pos += k + int(n) + 4
		f.Add(append([]byte{}, img[:pos]...)) // truncated at section seam
		crcFlip := append([]byte{}, img...)
		crcFlip[pos-1] ^= 0x01 // section CRC byte
		f.Add(crcFlip)
		payloadFlip := append([]byte{}, img...)
		payloadFlip[pos-6] ^= 0x80 // inside section payload
		f.Add(payloadFlip)
	}
	footerMagic := append([]byte{}, img...)
	footerMagic[pos] ^= 0xff
	f.Add(footerMagic)
	footerCount := append([]byte{}, img...)
	footerCount[pos+4] ^= 0x07
	f.Add(footerCount)
	footerCRC := append([]byte{}, img...)
	footerCRC[len(footerCRC)-1] ^= 0x01
	f.Add(footerCRC)
	f.Add(append(append([]byte{}, img...), 0xaa)) // trailing garbage
}

// FuzzReadProfile requires the reader to reject arbitrary, truncated, and
// corrupted inputs with an error — never a panic, hang, or absurd
// allocation. Run `go test -fuzz=FuzzReadProfile ./internal/profio` to
// search beyond the corpus.
func FuzzReadProfile(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := ReadProfile(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accidentally parseable inputs must yield structurally valid,
		// re-encodable profiles.
		_ = p.NumNodes()
		_ = p.Total()
		var out bytes.Buffer
		if err := WriteProfile(&out, p); err != nil {
			t.Fatalf("decoded profile failed to re-encode: %v", err)
		}
	})
}

// FuzzReadV3Profile focuses the fuzzer on the v3 surface — the header
// frame table and the columnar tree sections — and additionally requires
// that anything that decodes survives a full re-encode/re-decode round
// trip with its totals intact (v3 is the write format, so a decodable
// input that could not round-trip would corrupt a rewrite pipeline).
func FuzzReadV3Profile(f *testing.F) {
	var full bytes.Buffer
	if err := WriteProfile(&full, sampleProfile(3, 17)); err != nil {
		f.Fatal(err)
	}
	var dense bytes.Buffer
	if err := WriteProfile(&dense, denseProfile(1, 64)); err != nil {
		f.Fatal(err)
	}
	var empty bytes.Buffer
	if err := WriteProfile(&empty, cct.NewProfile(0, 0, "IBS@4096")); err != nil {
		f.Fatal(err)
	}
	f.Add(full.Bytes())
	f.Add(dense.Bytes())
	f.Add(empty.Bytes())
	addFramingSeeds(f, full.Bytes())
	addFramingSeeds(f, dense.Bytes())
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := ReadProfile(bytes.NewReader(data))
		if err != nil {
			return
		}
		_ = p.NumNodes()
		_ = p.Total()
		var out bytes.Buffer
		if err := WriteProfile(&out, p); err != nil {
			t.Fatalf("decoded profile failed to re-encode: %v", err)
		}
		back, err := ReadProfile(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded profile failed to decode: %v", err)
		}
		if back.Total() != p.Total() || back.NumNodes() != p.NumNodes() {
			t.Fatalf("re-encode round trip drifted: %d/%v nodes/total vs %d/%v",
				back.NumNodes(), back.Total(), p.NumNodes(), p.Total())
		}
	})
}

// FuzzSalvageProfile holds the degraded path to the same bar as the happy
// path: whatever the input, salvage must not panic, must keep its
// tree accounting consistent, and anything it does recover must be a
// structurally valid, re-encodable profile.
func FuzzSalvageProfile(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := SalvageProfile(bytes.NewReader(data), nil)
		if err != nil {
			return // header unreadable — nothing salvageable
		}
		if s.Profile == nil {
			t.Fatal("nil profile without error")
		}
		if s.Trees+s.Lost != cct.NumClasses {
			t.Fatalf("tree accounting: %d salvaged + %d lost != %d", s.Trees, s.Lost, cct.NumClasses)
		}
		if s.Intact() != (s.Lost == 0 && len(s.Errs) == 0) {
			t.Fatal("Intact() disagrees with its definition")
		}
		_ = s.Profile.NumNodes()
		_ = s.Profile.Total()
		var out bytes.Buffer
		if err := WriteProfile(&out, s.Profile); err != nil {
			t.Fatalf("salvaged profile failed to re-encode: %v", err)
		}
	})
}
