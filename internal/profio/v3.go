package profio

// Format v3: the compact columnar encoding. The framing is exactly v2's —
// magic, `uvarint len · payload · u32 CRC32` sections, counting footer,
// tagged trailers — so every integrity and salvage property carries over
// unchanged. What changes is what the payloads hold:
//
//	u32 magic "DCPF"            u32 version (3)
//	section: header
//	  uvarint rank · uvarint thread
//	  uvarint nStrings · (uvarint len · bytes)×nStrings
//	  uvarint eventIdx
//	  uvarint nFrames · (byte kind · uvarint module · uvarint name ·
//	                     uvarint file · uvarint line)×nFrames
//	section: tree ×NumClasses (columnar)
//	  uvarint count
//	  parent column: (count−1) × uvarint(i − parent_i)        gap ≥ 1
//	  frame column:  count × zigzag(frame_i − frame_{i−1})    frame_{−1} = 0
//	  metric columns: byte nCols · nCols × (byte metricID ·
//	                  uvarint nEntries · nEntries ×
//	                  (uvarint nodeIdxDelta · uvarint value))
//	u32 footer magic "DCPE"     uvarint total node records   u32 CRC32(count)
//	trailer ×N (optional)       — identical to v2
//
// Why this wins 2–4x over v2: a CCT repeats few distinct frames over many
// nodes, so v3 writes each frame's strings-and-line tuple once into a
// header frame table and each node becomes two or three delta varints
// (parent gap, frame-index delta) instead of a 4-byte parent index plus a
// full frame record. Metrics move from per-node sparse maps to per-metric
// columns, so the (overwhelmingly common) metric-less interior node costs
// zero metric bytes. Decode becomes table-driven: the frame table is
// interned once per file and every node record resolves by one slice
// index — no per-node string handling at all (reader.go, readTreeV3).
//
// Node pre-order indices are identical to v2's (both follow the
// deterministic tree Walk), so the temporal sidecar trailer carries over
// byte-for-byte.

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"dcprof/internal/cct"
	"dcprof/internal/metric"
)

func writeProfileV3(w *bufio.Writer, p *cct.Profile) error {
	// Collect the string table (same walk order as v2, so both formats
	// build identical tables) and the deduplicated frame table.
	strs := newStringTable()
	frameIdx := make(map[cct.FrameID]uint32)
	var frames []cct.Frame
	for _, tree := range p.Trees {
		tree.Walk(func(n *cct.Node, _ int) bool {
			strs.intern(n.Frame.Module)
			strs.intern(n.Frame.Name)
			strs.intern(n.Frame.File)
			if _, ok := frameIdx[n.ID()]; !ok {
				frameIdx[n.ID()] = uint32(len(frames))
				frames = append(frames, n.Frame)
			}
			return true
		})
	}
	strs.intern(p.Event)

	writeU32(w, Magic)
	writeU32(w, Version)

	var payload bytes.Buffer
	sw := bufio.NewWriter(&payload)

	// v2Bytes/v3Bytes track what this profile costs in each encoding
	// (trailers excluded: they are byte-identical in both), feeding the
	// profio.write.v3_saved_bytes counter with exact savings instead of a
	// second full encode.
	v2Bytes, v3Bytes := int64(8), int64(8)
	track := func(v2PayloadLen int64) error {
		if err := sw.Flush(); err != nil {
			return err
		}
		n := int64(payload.Len())
		v3Bytes += uvlen(uint64(n)) + n + 4
		v2Bytes += uvlen(uint64(v2PayloadLen)) + v2PayloadLen + 4
		return flushSection(w, sw, &payload)
	}

	// Header section: identification + string table + event + frame table.
	writeUvarint(sw, uint64(p.Rank))
	writeUvarint(sw, uint64(p.Thread))
	writeUvarint(sw, uint64(len(strs.list)))
	for _, s := range strs.list {
		writeUvarint(sw, uint64(len(s)))
		if _, err := sw.WriteString(s); err != nil {
			return err
		}
	}
	writeUvarint(sw, uint64(strs.idx[p.Event]))
	writeUvarint(sw, uint64(len(frames)))
	frameTabBytes := uvlen(uint64(len(frames)))
	// rowCost[i] is what frame i's record costs inline in a v2 node row
	// (kind byte + string indices + line) — the per-node share of the v2
	// accounting below.
	rowCost := make([]int64, len(frames))
	for i, f := range frames {
		sw.WriteByte(byte(f.Kind))
		mi := uint64(strs.idx[f.Module])
		ni := uint64(strs.idx[f.Name])
		fi := uint64(strs.idx[f.File])
		line := uint64(int64(f.Line))
		writeUvarint(sw, mi)
		writeUvarint(sw, ni)
		writeUvarint(sw, fi)
		writeUvarint(sw, line)
		rowCost[i] = 1 + uvlen(mi) + uvlen(ni) + uvlen(fi) + uvlen(line)
		frameTabBytes += rowCost[i]
	}
	if err := sw.Flush(); err != nil {
		return err
	}
	if err := track(int64(payload.Len()) - frameTabBytes); err != nil {
		return err
	}

	// Tree sections.
	totalNodes := uint64(0)
	var indexes [cct.NumClasses]map[*cct.Node]uint32
	for ci, tree := range p.Trees {
		index, v2len, err := writeTreeV3(sw, tree, frameIdx, rowCost)
		if err != nil {
			return err
		}
		indexes[ci] = index
		totalNodes += uint64(len(index))
		if err := track(v2len); err != nil {
			return err
		}
	}

	// Footer: identical framing in both formats.
	writeU32(w, FooterMagic)
	var cnt [binary.MaxVarintLen64]byte
	cn := binary.PutUvarint(cnt[:], totalNodes)
	w.Write(cnt[:cn])
	writeU32(w, crc32.ChecksumIEEE(cnt[:cn]))

	if v2Bytes > v3Bytes {
		telV3SavedBytes.Add(uint64(v2Bytes - v3Bytes))
	}

	if ts := p.Temporal; ts != nil && len(ts.Windows) > 0 {
		if err := writeTemporalSection(w, sw, &payload, ts, &indexes); err != nil {
			return err
		}
	}
	return nil
}

// writeTreeV3 encodes one tree section columnar and returns the
// node→pre-order-index map it assigned (for the temporal trailer) plus the
// exact byte count the same tree would occupy as a v2 section payload.
func writeTreeV3(w *bufio.Writer, t *cct.Tree, frameIdx map[cct.FrameID]uint32, rowCost []int64) (map[*cct.Node]uint32, int64, error) {
	// Pre-order via the deterministic Walk — the same index assignment v2
	// makes, which is what keeps sidecar node references format-agnostic.
	index := map[*cct.Node]uint32{}
	var nodes []*cct.Node
	t.Walk(func(n *cct.Node, _ int) bool {
		index[n] = uint32(len(nodes))
		nodes = append(nodes, n)
		return true
	})
	count := len(nodes)
	writeUvarint(w, uint64(count))
	v2len := uvlen(uint64(count))

	// Parent column: pre-order guarantees parent(i) < i, so the gap is ≥ 1
	// and — along any call chain — exactly 1, a single byte.
	for i := 1; i < count; i++ {
		writeUvarint(w, uint64(i)-uint64(index[nodes[i].Parent()]))
	}
	// Frame column: local frame-table indices, delta-coded in visit order.
	// Siblings sort by frame fields, so runs of near-equal indices are
	// common and the zigzag deltas stay short.
	prev := int64(0)
	for _, n := range nodes {
		fi := int64(frameIdx[n.ID()])
		writeUvarint(w, zigzag(fi-prev))
		prev = fi
		v2len += 4 + rowCost[frameIdx[n.ID()]] + 1
	}
	// Metric columns: one sparse (node index, value) run per metric that
	// appears anywhere in the tree.
	var colIDs []int
	for m := 0; m < int(metric.NumMetrics); m++ {
		for _, n := range nodes {
			if n.Metrics[m] != 0 {
				colIDs = append(colIDs, m)
				break
			}
		}
	}
	w.WriteByte(byte(len(colIDs)))
	for _, m := range colIDs {
		w.WriteByte(byte(m))
		cnt := 0
		for _, n := range nodes {
			if n.Metrics[m] != 0 {
				cnt++
			}
		}
		writeUvarint(w, uint64(cnt))
		prevIdx, first := uint64(0), true
		for i, n := range nodes {
			v := n.Metrics[m]
			if v == 0 {
				continue
			}
			if first {
				writeUvarint(w, uint64(i))
				first = false
			} else {
				writeUvarint(w, uint64(i)-prevIdx)
			}
			prevIdx = uint64(i)
			writeUvarint(w, v)
			v2len += 1 + uvlen(v)
		}
	}
	return index, v2len, nil
}

// parseFrameTable decodes the v3 header's frame table, resolving every
// entry to an interned FrameID once — after this, node records decode by
// slice index with no per-node string handling at all.
func (d *Reader) parseFrameTable(br *bufio.Reader) error {
	n, err := readUvarint(br)
	if err != nil {
		return fmt.Errorf("profio: frame table: %w", wrapEOF(err))
	}
	if n > 1<<24 {
		return fmt.Errorf("profio: unreasonable frame table size %d", n)
	}
	// Grow incrementally: the claimed count must not drive the allocation.
	tab := make([]cct.FrameID, 0, min(n, 4096))
	for i := uint64(0); i < n; i++ {
		kind, err := br.ReadByte()
		if err != nil {
			return fmt.Errorf("profio: frame table entry %d: %w", i, wrapEOF(err))
		}
		modI, err := readUvarint(br)
		if err != nil {
			return fmt.Errorf("profio: frame table entry %d: %w", i, wrapEOF(err))
		}
		nameI, err := readUvarint(br)
		if err != nil {
			return fmt.Errorf("profio: frame table entry %d: %w", i, wrapEOF(err))
		}
		fileI, err := readUvarint(br)
		if err != nil {
			return fmt.Errorf("profio: frame table entry %d: %w", i, wrapEOF(err))
		}
		line, err := readUvarint(br)
		if err != nil {
			return fmt.Errorf("profio: frame table entry %d: %w", i, wrapEOF(err))
		}
		mod, err := d.dec.str(modI)
		if err != nil {
			return err
		}
		name, err := d.dec.str(nameI)
		if err != nil {
			return err
		}
		file, err := d.dec.str(fileI)
		if err != nil {
			return err
		}
		tab = append(tab, cct.InternFrame(cct.Frame{
			Kind:   cct.Kind(kind),
			Module: mod,
			Name:   name,
			File:   file,
			Line:   int(int64(line)),
		}))
	}
	d.dec.frameTab = tab
	return nil
}

// readTreeV3 decodes one columnar v3 tree body into t and returns the
// pre-order node array. It only touches td.frameTab (immutable after the
// header), so concurrent calls on distinct sections are safe.
func (td *treeDecoder) readTreeV3(br *bufio.Reader, t *cct.Tree) ([]*cct.Node, error) {
	count, err := readUvarint(br)
	if err != nil {
		return nil, err
	}
	if count == 0 {
		return nil, fmt.Errorf("empty node array (even the root must be present)")
	}
	if count > 1<<28 {
		return nil, fmt.Errorf("unreasonable node count %d", count)
	}
	// Parent column. Grown incrementally — a corrupt count must fail at the
	// first missing byte, not after a proportional allocation.
	parents := make([]uint32, 1, min(count, 4096))
	for i := uint64(1); i < count; i++ {
		gap, err := readUvarint(br)
		if err != nil {
			return nil, err
		}
		if gap == 0 || gap > i {
			return nil, fmt.Errorf("node %d: parent gap %d out of range", i, gap)
		}
		parents = append(parents, uint32(i-gap))
	}
	// Frame column: running delta over local frame-table indices; each node
	// attaches under its (already built) parent.
	nodes := make([]*cct.Node, 0, min(count, 4096))
	fi := int64(0)
	for i := uint64(0); i < count; i++ {
		u, err := readUvarint(br)
		if err != nil {
			return nil, err
		}
		fi += unzigzag(u)
		if fi < 0 || fi >= int64(len(td.frameTab)) {
			return nil, fmt.Errorf("node %d: frame index %d out of range", i, fi)
		}
		var node *cct.Node
		if i == 0 {
			// The root's own frame rides in the column for symmetry but the
			// decoded tree keeps its canonical root, exactly as v1/v2 ignore
			// the root record's frame fields.
			node = t.Root
		} else {
			node = nodes[parents[i]].ChildID(td.frameTab[fi])
		}
		nodes = append(nodes, node)
	}
	// Metric columns.
	ncols, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	if int(ncols) > int(metric.NumMetrics) {
		return nil, fmt.Errorf("metric column count %d out of range", ncols)
	}
	prevID := -1
	for c := 0; c < int(ncols); c++ {
		id, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		if int(id) >= int(metric.NumMetrics) {
			return nil, fmt.Errorf("metric id %d out of range", id)
		}
		if int(id) <= prevID {
			return nil, fmt.Errorf("metric columns out of order (%d after %d)", id, prevID)
		}
		prevID = int(id)
		n, err := readUvarint(br)
		if err != nil {
			return nil, err
		}
		if n > count {
			return nil, fmt.Errorf("metric column %d: %d entries for %d nodes", id, n, count)
		}
		idx := uint64(0)
		for e := uint64(0); e < n; e++ {
			delta, err := readUvarint(br)
			if err != nil {
				return nil, err
			}
			switch {
			case e == 0:
				idx = delta
			case delta == 0 || delta > count:
				return nil, fmt.Errorf("metric column %d: non-ascending node index", id)
			default:
				idx += delta
			}
			if idx >= count {
				return nil, fmt.Errorf("metric column %d: node index %d out of range", id, idx)
			}
			v, err := readUvarint(br)
			if err != nil {
				return nil, err
			}
			nodes[idx].Metrics[id] += v
		}
	}
	return nodes, nil
}

// uvlen returns the encoded length of v as an unsigned varint.
func uvlen(v uint64) int64 {
	n := int64(1)
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// zigzag maps a signed delta to the unsigned varint space (0, -1, 1, -2 →
// 0, 1, 2, 3) so small negative frame-index deltas stay one byte.
func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

// unzigzag inverts zigzag.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }
