package profio

// Ingest validation: the continuous-profiling service accepts profile
// uploads from the network, where "trust the writer" — the assumption the
// CLI loaders make about dcprof's own output — does not hold. An upload is
// admitted into a collection only after a full decode under the same CRC
// and structural checks the reader applies, so everything under a final
// name in a collection directory is known readable before any query ever
// touches it.

import (
	"fmt"
	"io"
)

// ValidateInfo summarizes a profile stream that passed validation.
type ValidateInfo struct {
	// Rank, Thread, and Event identify the producer, from the header.
	Rank, Thread int
	Event        string
	// Version is the format version (Version1, Version2, or Version).
	Version uint32
	// Nodes counts the CCT node records decoded across all class trees.
	Nodes int
	// Bytes is the total stream length consumed.
	Bytes int64
}

// ValidateProfile fully decodes one profile stream, discarding the trees,
// and reports what it found. It fails on anything the strict reader would
// fail on: bad magic or version, framing damage, checksum mismatches,
// truncation, record-level corruption, or trailing bytes — the exported
// seam the upload path of the profiling service rejects payloads through.
//
// Validation is a complete decode rather than a cheaper frame walk: a
// stream that validates is guaranteed mergeable, so an accepted upload can
// never later poison a collection's queries.
func ValidateProfile(r io.Reader) (ValidateInfo, error) {
	cr := &countReader{r: r}
	d, err := NewReader(cr)
	if err != nil {
		return ValidateInfo{}, err
	}
	info := ValidateInfo{
		Rank:    d.Rank(),
		Thread:  d.Thread(),
		Event:   d.Event(),
		Version: d.Version(),
	}
	for {
		_, _, err := d.ReadTree()
		if err == io.EOF {
			break
		}
		if err != nil {
			return info, err
		}
	}
	info.Nodes = d.NodesRead()
	info.Bytes = cr.n
	return info, nil
}

// ValidateV2Profile is ValidateProfile restricted to the checksummed
// formats (v2 and v3): a structurally valid v1 stream is rejected, because
// without per-section CRCs the service could not distinguish at-rest
// damage from writer output later. This is the validator network ingest
// uses; the name predates v3, which it accepts on the same grounds.
func ValidateV2Profile(r io.Reader) (ValidateInfo, error) {
	info, err := ValidateProfile(r)
	if err != nil {
		return info, err
	}
	if info.Version == Version1 {
		return info, fmt.Errorf("profio: version %d uploads not accepted (no integrity checksums); re-encode as v%d", info.Version, Version)
	}
	return info, nil
}

// countReader counts the bytes delivered from the underlying reader.
type countReader struct {
	r io.Reader
	n int64
}

func (c *countReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}
