package profio

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"dcprof/internal/cct"
	"dcprof/internal/metric"
)

// ErrChecksum reports a section whose payload does not match its stored
// CRC32 — the file is the right shape but its bytes were damaged (bit rot,
// torn write, transport corruption). For v2 files the reader's position is
// still at the next section boundary, so later sections remain readable.
var ErrChecksum = errors.New("checksum mismatch")

// ErrTruncated reports input that ended before a complete record — the
// classic killed-writer artifact. Nothing after the truncation point is
// recoverable.
var ErrTruncated = errors.New("truncated")

// wrapEOF converts the io-level end-of-input errors into ErrTruncated so
// callers can classify failures with errors.Is.
func wrapEOF(err error) error {
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		telTruncations.Inc()
		return fmt.Errorf("%w (%v)", ErrTruncated, err)
	}
	return err
}

// Intern is a concurrency-safe string cache shared across Readers. Thread
// profiles of one execution repeat the same module/function/file names in
// every file; interning makes all decoded profiles share one backing copy
// per distinct string instead of len(files) copies, which is what keeps a
// many-thousand-file ingest within memory budget.
type Intern struct {
	mu sync.Mutex
	m  map[string]string
}

// NewIntern creates an empty cache.
func NewIntern() *Intern { return &Intern{m: make(map[string]string)} }

// Intern returns the canonical copy of s, storing s itself on first sight.
func (in *Intern) Intern(s string) string {
	in.mu.Lock()
	defer in.mu.Unlock()
	if c, ok := in.m[s]; ok {
		return c
	}
	in.m[s] = s
	return s
}

// Len reports the number of distinct strings cached.
func (in *Intern) Len() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return len(in.m)
}

// Reader decodes one profile incrementally: the header and string table on
// construction, then one storage-class tree per ReadTree call. Nothing
// beyond the tree currently being decoded is buffered, so a consumer can
// merge each tree away as soon as it arrives instead of holding the whole
// profile — the unit of streaming the analyzer's pipeline is built on.
//
// For v2/v3 input every section's checksum is verified before its records
// are trusted. A checksum or decode failure inside one tree section is
// recoverable: the reader is already positioned at the next section, so
// further ReadTree calls continue with the following tree (the salvage
// path). A truncation or framing failure is terminal — Broken reports it —
// because the stream offset of later sections is unknowable.
type Reader struct {
	br           *bufio.Reader
	version      uint32
	rank, thread int
	event        string
	dec          treeDecoder
	next         int
	nodes        int
	treeErrs     int
	footerDone   bool
	terminal     error // sticky stream-level failure; nil if resync possible

	// classNodes retains each decoded tree's pre-order node array so the
	// temporal-sidecar trailer (whose entries reference nodes by pre-order
	// index) can be resolved after the footer. nil for a class whose
	// section was damaged.
	classNodes [cct.NumClasses][]*cct.Node
	// temporal is the decoded sidecar, nil when absent or damaged.
	temporal *cct.TimeSeries
	// trailerDamaged records that a trailer-region error was format-level
	// damage (bad checksum, truncation, undecodable sidecar) rather than
	// an I/O failure — the distinction salvage policies use to decide
	// whether a file is merely missing its sidecar or untrustworthy.
	trailerDamaged bool
}

// treeDecoder holds the per-file state tree-section decoding needs: the
// string table, the v3 frame table, and the v1/v2 frame memo. It is split
// out of Reader so the section-parallel path (parallel.go) can hand each
// goroutine its own decoder sharing the immutable strs/frameTab with a
// private memo.
type treeDecoder struct {
	strs []string
	// frameTab is the v3 header frame table, pre-resolved to interned
	// FrameIDs — immutable after the header parses, so concurrent tree
	// decodes may share it.
	frameTab []cct.FrameID
	// frameIDs memoizes v1/v2 string-table-index tuples to interned
	// FrameIDs, so each distinct frame in a file touches the process-global
	// interner once; every further node record with the same tuple resolves
	// by one integer-keyed map probe. Valid across trees of one file (the
	// string table is per-file).
	frameIDs map[frameRef]cct.FrameID
}

// frameRef is a frame as the wire encodes it: kind plus string-table
// indices. Two records with equal refs decode to the same frame.
type frameRef struct {
	kind            byte
	mod, name, file uint64
	line            uint64
}

// NewReader reads the header and string table and positions the reader at
// the first storage-class tree.
func NewReader(r io.Reader) (*Reader, error) { return NewReaderInterned(r, nil) }

// NewReaderInterned is NewReader with decoded strings canonicalized through
// the shared cache (nil behaves like NewReader).
func NewReaderInterned(r io.Reader, in *Intern) (*Reader, error) {
	br := bufio.NewReader(r)
	if m, err := readU32(br); err != nil || m != Magic {
		if err != nil {
			return nil, fmt.Errorf("profio: reading magic: %w", wrapEOF(err))
		}
		return nil, fmt.Errorf("profio: bad magic %#x", m)
	}
	v, err := readU32(br)
	if err != nil {
		return nil, fmt.Errorf("profio: reading version: %w", wrapEOF(err))
	}
	d := &Reader{br: br, version: v}
	switch v {
	case Version1:
		if err := d.parseHeader(br, in); err != nil {
			return nil, err
		}
	case Version2, Version:
		payload, err := readSection(br, "header")
		if err != nil {
			return nil, fmt.Errorf("profio: %w", err)
		}
		hr := bufio.NewReader(bytes.NewReader(payload))
		if err := d.parseHeader(hr, in); err != nil {
			return nil, err
		}
		if v == Version {
			// v3 appends the frame table to the header section.
			if err := d.parseFrameTable(hr); err != nil {
				return nil, err
			}
		}
		if _, err := hr.ReadByte(); err != io.EOF {
			return nil, fmt.Errorf("profio: header: trailing bytes in section")
		}
	default:
		return nil, fmt.Errorf("profio: unsupported version %d", v)
	}
	return d, nil
}

// parseHeader decodes rank, thread, string table, and event description.
func (d *Reader) parseHeader(br *bufio.Reader, in *Intern) error {
	rank, err := readUvarint(br)
	if err != nil {
		return wrapEOF(err)
	}
	thread, err := readUvarint(br)
	if err != nil {
		return wrapEOF(err)
	}
	nStrs, err := readUvarint(br)
	if err != nil {
		return wrapEOF(err)
	}
	if nStrs > 1<<24 {
		return fmt.Errorf("profio: unreasonable string table size %d", nStrs)
	}
	// Grow incrementally rather than trusting the claimed count: a corrupt
	// header must not be able to demand a huge upfront allocation.
	strs := make([]string, 0, min(nStrs, 4096))
	for i := uint64(0); i < nStrs; i++ {
		n, err := readUvarint(br)
		if err != nil {
			return wrapEOF(err)
		}
		if n > 1<<16 {
			return fmt.Errorf("profio: unreasonable string length %d", n)
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(br, buf); err != nil {
			return wrapEOF(err)
		}
		s := string(buf)
		if in != nil {
			s = in.Intern(s)
		}
		strs = append(strs, s)
	}
	d.rank, d.thread, d.dec.strs = int(rank), int(thread), strs

	eventIdx, err := readUvarint(br)
	if err != nil {
		return wrapEOF(err)
	}
	event, err := d.str(eventIdx)
	if err != nil {
		return err
	}
	d.event = event
	return nil
}

// readSection reads one `len · payload · crc` frame and verifies the
// checksum. The payload buffer grows with the bytes actually present, so a
// corrupt length claiming gigabytes costs nothing before the stream runs
// dry. On a checksum failure the stream position is past the section — the
// caller may resync; on any other failure the position is undefined.
func readSection(br *bufio.Reader, what string) ([]byte, error) {
	n, err := readUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("%s: reading section length: %w", what, wrapEOF(err))
	}
	if n > maxSection {
		return nil, fmt.Errorf("%s: unreasonable section size %d", what, n)
	}
	var buf bytes.Buffer
	if m, err := io.CopyN(&buf, br, int64(n)); err != nil {
		telReadBytes.Add(uint64(m))
		telTruncations.Inc()
		return nil, fmt.Errorf("%s: %w after %d/%d payload bytes", what, ErrTruncated, m, n)
	}
	telReadBytes.Add(n + 4) // payload + stored checksum
	stored, err := readU32(br)
	if err != nil {
		return nil, fmt.Errorf("%s: reading checksum: %w", what, wrapEOF(err))
	}
	if got := crc32.ChecksumIEEE(buf.Bytes()); got != stored {
		telCRCFailures.Inc()
		return nil, fmt.Errorf("%s: %w: computed %08x, stored %08x", what, ErrChecksum, got, stored)
	}
	telReadSections.Inc()
	return buf.Bytes(), nil
}

// Rank returns the producing MPI rank from the header.
func (d *Reader) Rank() int { return d.rank }

// Thread returns the producing thread id from the header.
func (d *Reader) Thread() int { return d.thread }

// Event returns the monitored-event description from the header.
func (d *Reader) Event() string { return d.event }

// NodesRead returns the number of CCT node records decoded so far.
func (d *Reader) NodesRead() int { return d.nodes }

// Version returns the format version being decoded (Version1, Version2,
// or Version).
func (d *Reader) Version() uint32 { return d.version }

// Broken reports whether the stream hit a terminal failure — truncation or
// framing damage past which no further section can be located. After a
// merely-corrupt v2 section (checksum or record-level failure) Broken stays
// false and ReadTree continues with the next tree.
func (d *Reader) Broken() bool { return d.terminal != nil }

func (d *Reader) str(i uint64) (string, error) { return d.dec.str(i) }

func (td *treeDecoder) str(i uint64) (string, error) {
	if i >= uint64(len(td.strs)) {
		return "", fmt.Errorf("profio: string index %d out of range", i)
	}
	return td.strs[i], nil
}

// ReadTree decodes the next storage-class tree, returning io.EOF once all
// cct.NumClasses trees have been read and (for v2/v3) the footer
// validated.
//
// A v2/v3 tree section that is present but damaged yields an error for
// that class only; the next ReadTree call proceeds to the following class.
// A v1 decode failure or a v2/v3 truncation is terminal: the same error is
// returned from every subsequent call.
func (d *Reader) ReadTree() (cct.Class, *cct.Tree, error) {
	if d.terminal != nil {
		return 0, nil, d.terminal
	}
	if d.next >= cct.NumClasses {
		if d.version != Version1 && !d.footerDone {
			d.footerDone = true
			if err := d.readFooter(); err != nil {
				return 0, nil, err
			}
		}
		return 0, nil, io.EOF
	}
	c := cct.Class(d.next)

	if d.version == Version1 {
		t := cct.New()
		nodes, err := d.dec.readTree(d.br, t)
		if err != nil {
			// v1 has no framing: the offset of the next tree is unknown.
			d.terminal = fmt.Errorf("profio: tree %d: %w", d.next, wrapEOF(err))
			return c, nil, d.terminal
		}
		d.next++
		d.nodes += len(nodes)
		telReadNodes.Add(uint64(len(nodes)))
		d.classNodes[c] = nodes
		return c, t, nil
	}

	payload, err := readSection(d.br, fmt.Sprintf("tree %d", d.next))
	if err != nil {
		if errors.Is(err, ErrChecksum) {
			// Position is at the next section: recoverable.
			d.next++
			d.treeErrs++
			return c, nil, fmt.Errorf("profio: %w", err)
		}
		d.terminal = fmt.Errorf("profio: %w", err)
		d.treeErrs++
		return c, nil, d.terminal
	}
	// The payload passed its checksum; decode it. A record-level failure
	// here means the writer produced it damaged (or a CRC collision) —
	// either way only this tree is lost.
	t := cct.New()
	pr := bufio.NewReader(bytes.NewReader(payload))
	var nodes []*cct.Node
	if d.version == Version {
		nodes, err = d.dec.readTreeV3(pr, t)
	} else {
		nodes, err = d.dec.readTree(pr, t)
	}
	if err == nil {
		if _, e := pr.ReadByte(); e != io.EOF {
			err = fmt.Errorf("trailing bytes in tree section")
		}
	}
	if err != nil {
		d.next++
		d.treeErrs++
		d.classNodes[c] = nil // a dropped tree must not anchor sidecar deltas
		return c, nil, fmt.Errorf("profio: tree %d: %w", int(c), err)
	}
	d.next++
	d.nodes += len(nodes)
	telReadNodes.Add(uint64(len(nodes)))
	// Retain the pre-order array: the temporal trailer refers to nodes by
	// these indices.
	d.classNodes[c] = nodes
	return c, t, nil
}

// readFooter validates the v2 end-of-file footer: magic, checksummed total
// node count, and absence of trailing bytes. The count is only compared to
// the decoded total when every tree section decoded cleanly — a salvaged
// file legitimately decodes fewer nodes than the writer recorded.
func (d *Reader) readFooter() error {
	m, err := readU32(d.br)
	if err != nil {
		return fmt.Errorf("profio: footer: reading magic: %w", wrapEOF(err))
	}
	if m != FooterMagic {
		return fmt.Errorf("profio: footer: bad magic %#x", m)
	}
	// Checksum covers the exact varint bytes of the count.
	var raw []byte
	count, err := func() (uint64, error) {
		var v uint64
		for shift := uint(0); ; shift += 7 {
			b, err := d.br.ReadByte()
			if err != nil {
				return 0, wrapEOF(err)
			}
			raw = append(raw, b)
			if shift >= 64 {
				return 0, fmt.Errorf("count varint overflows")
			}
			v |= uint64(b&0x7f) << shift
			if b < 0x80 {
				return v, nil
			}
		}
	}()
	if err != nil {
		return fmt.Errorf("profio: footer: %w", err)
	}
	stored, err := readU32(d.br)
	if err != nil {
		return fmt.Errorf("profio: footer: reading checksum: %w", wrapEOF(err))
	}
	if got := crc32.ChecksumIEEE(raw); got != stored {
		telCRCFailures.Inc()
		return fmt.Errorf("profio: footer: %w: computed %08x, stored %08x", ErrChecksum, got, stored)
	}
	if d.treeErrs == 0 && count != uint64(d.nodes) {
		return fmt.Errorf("profio: footer: record count %d, decoded %d", count, d.nodes)
	}
	return d.readTrailers()
}

// readTrailers scans the tagged sections that may follow the footer:
// `u32 magic · uvarint len · payload · u32 CRC`. Known magics decode;
// unknown ones are checksum-verified and skipped, which is how older
// readers of future formats (and this reader, for sidecars it doesn't
// know) coexist with newer writers. A clean EOF before any magic is the
// normal no-trailer case. Errors here are non-terminal in the salvage
// sense: the trees were already delivered, so a damaged trailer costs
// only the sidecar.
func (d *Reader) readTrailers() error {
	for {
		m, err := readU32(d.br)
		if errors.Is(err, io.EOF) {
			return nil // no (more) trailers
		}
		if err != nil {
			return d.trailerErr(fmt.Errorf("profio: trailer: reading magic: %w", wrapEOF(err)))
		}
		payload, err := readSection(d.br, fmt.Sprintf("trailer %#x", m))
		if err != nil {
			return d.trailerErr(fmt.Errorf("profio: %w", err))
		}
		switch m {
		case TemporalMagic:
			if d.temporal != nil {
				d.trailerDamaged = true
				return fmt.Errorf("profio: duplicate temporal trailer section")
			}
			ts, err := decodeTimeSeries(payload, &d.classNodes)
			if err != nil {
				d.trailerDamaged = true
				return fmt.Errorf("profio: temporal sidecar: %w", err)
			}
			d.temporal = ts
			telTemporalRead.Inc()
		default:
			// Unknown trailer: intact (the checksum held), just not ours.
			telTrailerSkipped.Inc()
		}
	}
}

// trailerErr classifies a trailer-region failure before returning it:
// checksum mismatches and truncation are format-level damage of the
// optional trailing sections, anything else (a raw I/O error, say) is
// not, so callers won't treat a flaky disk as "just a lost sidecar".
func (d *Reader) trailerErr(err error) error {
	if errors.Is(err, ErrChecksum) || errors.Is(err, ErrTruncated) {
		d.trailerDamaged = true
	}
	return err
}

// ReadRest decodes every remaining tree and returns the assembled profile,
// temporal sidecar (when present) attached.
func (d *Reader) ReadRest() (*cct.Profile, error) {
	p := cct.NewProfile(d.rank, d.thread, d.event)
	for {
		c, t, err := d.ReadTree()
		if err == io.EOF {
			telReadProfiles.Inc()
			p.Temporal = d.temporal
			return p, nil
		}
		if err != nil {
			return nil, err
		}
		p.Trees[c] = t
	}
}

// Temporal returns the decoded temporal sidecar, nil when the file had
// none (or its sidecar was damaged). Populated once ReadTree has hit EOF.
func (d *Reader) Temporal() *cct.TimeSeries { return d.temporal }

// ReadProfile decodes one thread profile.
func ReadProfile(r io.Reader) (*cct.Profile, error) {
	return ReadProfileInterned(r, nil)
}

// ReadProfileInterned is ReadProfile with strings canonicalized through the
// shared cache.
func ReadProfileInterned(r io.Reader, in *Intern) (*cct.Profile, error) {
	d, err := NewReaderInterned(r, in)
	if err != nil {
		return nil, err
	}
	return d.ReadRest()
}

// readTree decodes one v1/v2 row-oriented tree body into t and returns the
// pre-order node array (the temporal sidecar's reference space). The caller
// accounts nodes and retains or drops the array.
func (td *treeDecoder) readTree(br *bufio.Reader, t *cct.Tree) ([]*cct.Node, error) {
	str := td.str
	count, err := readUvarint(br)
	if err != nil {
		return nil, err
	}
	if count == 0 {
		return nil, fmt.Errorf("empty node array (even the root must be present)")
	}
	if count > 1<<28 {
		return nil, fmt.Errorf("unreasonable node count %d", count)
	}
	// As with the string table, never preallocate from an untrusted count:
	// a bogus header claiming 2^28 nodes would otherwise cost gigabytes
	// before the first record fails to decode.
	nodes := make([]*cct.Node, 0, min(count, 4096))
	for i := uint64(0); i < count; i++ {
		parent, err := readU32(br)
		if err != nil {
			return nil, err
		}
		kind, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		modI, err := readUvarint(br)
		if err != nil {
			return nil, err
		}
		nameI, err := readUvarint(br)
		if err != nil {
			return nil, err
		}
		fileI, err := readUvarint(br)
		if err != nil {
			return nil, err
		}
		line, err := readUvarint(br)
		if err != nil {
			return nil, err
		}
		// Intern each distinct (kind, indices, line) tuple once per file;
		// repeats — the overwhelmingly common case, since symbol frames
		// recur across the whole tree — skip string resolution entirely.
		ref := frameRef{kind: kind, mod: modI, name: nameI, file: fileI, line: line}
		id, known := td.frameIDs[ref]
		if !known {
			mod, err := str(modI)
			if err != nil {
				return nil, err
			}
			name, err := str(nameI)
			if err != nil {
				return nil, err
			}
			file, err := str(fileI)
			if err != nil {
				return nil, err
			}
			id = cct.InternFrame(cct.Frame{
				Kind:   cct.Kind(kind),
				Module: mod,
				Name:   name,
				File:   file,
				Line:   int(int64(line)),
			})
			if td.frameIDs == nil {
				td.frameIDs = make(map[frameRef]cct.FrameID)
			}
			td.frameIDs[ref] = id
		}

		var node *cct.Node
		switch {
		case parent == noParent:
			if i != 0 {
				return nil, fmt.Errorf("non-first node %d has no parent", i)
			}
			node = t.Root
		case uint64(parent) >= i:
			return nil, fmt.Errorf("node %d references later/self parent %d", i, parent)
		default:
			node = nodes[parent].ChildID(id)
		}

		nz, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		for k := 0; k < int(nz); k++ {
			id, err := br.ReadByte()
			if err != nil {
				return nil, err
			}
			if int(id) >= int(metric.NumMetrics) {
				return nil, fmt.Errorf("metric id %d out of range", id)
			}
			v, err := readUvarint(br)
			if err != nil {
				return nil, err
			}
			var vec metric.Vector
			vec[id] = v
			node.Metrics.Add(&vec)
		}
		nodes = append(nodes, node)
	}
	return nodes, nil
}

// Files returns the profile file paths in dir sorted by name (the canonical
// zero-padded names sort by rank, then thread). In-flight temp files from a
// killed writer carry TmpSuffix as their extension, so they are never
// listed.
func Files(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".dcprof" {
			continue
		}
		out = append(out, filepath.Join(dir, e.Name()))
	}
	sort.Strings(out)
	return out, nil
}

// ReadDir loads every profile file in dir, sorted by (rank, thread). All
// profiles share one interning cache, so duplicate symbol strings across
// files are stored once.
func ReadDir(dir string) ([]*cct.Profile, error) {
	files, err := Files(dir)
	if err != nil {
		return nil, err
	}
	in := NewIntern()
	var out []*cct.Profile
	for _, path := range files {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		p, err := ReadProfileInterned(f, in)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", filepath.Base(path), err)
		}
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Rank != out[j].Rank {
			return out[i].Rank < out[j].Rank
		}
		return out[i].Thread < out[j].Thread
	})
	return out, nil
}

func readU32(r *bufio.Reader) (uint32, error) {
	var buf [4]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(buf[:]), nil
}

func readUvarint(r *bufio.Reader) (uint64, error) {
	return binary.ReadUvarint(r)
}
