package profio

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"dcprof/internal/cct"
	"dcprof/internal/metric"
)

// Intern is a concurrency-safe string cache shared across Readers. Thread
// profiles of one execution repeat the same module/function/file names in
// every file; interning makes all decoded profiles share one backing copy
// per distinct string instead of len(files) copies, which is what keeps a
// many-thousand-file ingest within memory budget.
type Intern struct {
	mu sync.Mutex
	m  map[string]string
}

// NewIntern creates an empty cache.
func NewIntern() *Intern { return &Intern{m: make(map[string]string)} }

// Intern returns the canonical copy of s, storing s itself on first sight.
func (in *Intern) Intern(s string) string {
	in.mu.Lock()
	defer in.mu.Unlock()
	if c, ok := in.m[s]; ok {
		return c
	}
	in.m[s] = s
	return s
}

// Len reports the number of distinct strings cached.
func (in *Intern) Len() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return len(in.m)
}

// Reader decodes one profile incrementally: the header and string table on
// construction, then one storage-class tree per ReadTree call. Nothing
// beyond the tree currently being decoded is buffered, so a consumer can
// merge each tree away as soon as it arrives instead of holding the whole
// profile — the unit of streaming the analyzer's pipeline is built on.
type Reader struct {
	br           *bufio.Reader
	rank, thread int
	event        string
	strs         []string
	next         int
	nodes        int
}

// NewReader reads the header and string table and positions the reader at
// the first storage-class tree.
func NewReader(r io.Reader) (*Reader, error) { return NewReaderInterned(r, nil) }

// NewReaderInterned is NewReader with decoded strings canonicalized through
// the shared cache (nil behaves like NewReader).
func NewReaderInterned(r io.Reader, in *Intern) (*Reader, error) {
	br := bufio.NewReader(r)
	if m, err := readU32(br); err != nil || m != Magic {
		if err != nil {
			return nil, fmt.Errorf("profio: reading magic: %w", err)
		}
		return nil, fmt.Errorf("profio: bad magic %#x", m)
	}
	if v, err := readU32(br); err != nil || v != Version {
		if err != nil {
			return nil, fmt.Errorf("profio: reading version: %w", err)
		}
		return nil, fmt.Errorf("profio: unsupported version %d", v)
	}
	rank, err := readUvarint(br)
	if err != nil {
		return nil, err
	}
	thread, err := readUvarint(br)
	if err != nil {
		return nil, err
	}

	nStrs, err := readUvarint(br)
	if err != nil {
		return nil, err
	}
	if nStrs > 1<<24 {
		return nil, fmt.Errorf("profio: unreasonable string table size %d", nStrs)
	}
	// Grow incrementally rather than trusting the claimed count: a corrupt
	// header must not be able to demand a huge upfront allocation.
	strs := make([]string, 0, min(nStrs, 4096))
	for i := uint64(0); i < nStrs; i++ {
		n, err := readUvarint(br)
		if err != nil {
			return nil, err
		}
		if n > 1<<16 {
			return nil, fmt.Errorf("profio: unreasonable string length %d", n)
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, err
		}
		s := string(buf)
		if in != nil {
			s = in.Intern(s)
		}
		strs = append(strs, s)
	}
	d := &Reader{br: br, rank: int(rank), thread: int(thread), strs: strs}

	eventIdx, err := readUvarint(br)
	if err != nil {
		return nil, err
	}
	event, err := d.str(eventIdx)
	if err != nil {
		return nil, err
	}
	d.event = event
	return d, nil
}

// Rank returns the producing MPI rank from the header.
func (d *Reader) Rank() int { return d.rank }

// Thread returns the producing thread id from the header.
func (d *Reader) Thread() int { return d.thread }

// Event returns the monitored-event description from the header.
func (d *Reader) Event() string { return d.event }

// NodesRead returns the number of CCT node records decoded so far.
func (d *Reader) NodesRead() int { return d.nodes }

func (d *Reader) str(i uint64) (string, error) {
	if i >= uint64(len(d.strs)) {
		return "", fmt.Errorf("profio: string index %d out of range", i)
	}
	return d.strs[i], nil
}

// ReadTree decodes the next storage-class tree, returning io.EOF once all
// cct.NumClasses trees have been read.
func (d *Reader) ReadTree() (cct.Class, *cct.Tree, error) {
	if d.next >= cct.NumClasses {
		return 0, nil, io.EOF
	}
	c := cct.Class(d.next)
	t := cct.New()
	n, err := readTree(d.br, t, d.str)
	if err != nil {
		return c, nil, fmt.Errorf("profio: tree %d: %w", d.next, err)
	}
	d.next++
	d.nodes += n
	return c, t, nil
}

// ReadRest decodes every remaining tree and returns the assembled profile.
func (d *Reader) ReadRest() (*cct.Profile, error) {
	p := cct.NewProfile(d.rank, d.thread, d.event)
	for {
		c, t, err := d.ReadTree()
		if err == io.EOF {
			return p, nil
		}
		if err != nil {
			return nil, err
		}
		p.Trees[c] = t
	}
}

// ReadProfile decodes one thread profile.
func ReadProfile(r io.Reader) (*cct.Profile, error) {
	return ReadProfileInterned(r, nil)
}

// ReadProfileInterned is ReadProfile with strings canonicalized through the
// shared cache.
func ReadProfileInterned(r io.Reader, in *Intern) (*cct.Profile, error) {
	d, err := NewReaderInterned(r, in)
	if err != nil {
		return nil, err
	}
	return d.ReadRest()
}

func readTree(br *bufio.Reader, t *cct.Tree, str func(uint64) (string, error)) (int, error) {
	count, err := readUvarint(br)
	if err != nil {
		return 0, err
	}
	if count == 0 {
		return 0, fmt.Errorf("empty node array (even the root must be present)")
	}
	if count > 1<<28 {
		return 0, fmt.Errorf("unreasonable node count %d", count)
	}
	// As with the string table, never preallocate from an untrusted count:
	// a bogus header claiming 2^28 nodes would otherwise cost gigabytes
	// before the first record fails to decode.
	nodes := make([]*cct.Node, 0, min(count, 4096))
	for i := uint64(0); i < count; i++ {
		parent, err := readU32(br)
		if err != nil {
			return 0, err
		}
		kind, err := br.ReadByte()
		if err != nil {
			return 0, err
		}
		modI, err := readUvarint(br)
		if err != nil {
			return 0, err
		}
		nameI, err := readUvarint(br)
		if err != nil {
			return 0, err
		}
		fileI, err := readUvarint(br)
		if err != nil {
			return 0, err
		}
		line, err := readUvarint(br)
		if err != nil {
			return 0, err
		}
		mod, err := str(modI)
		if err != nil {
			return 0, err
		}
		name, err := str(nameI)
		if err != nil {
			return 0, err
		}
		file, err := str(fileI)
		if err != nil {
			return 0, err
		}
		frame := cct.Frame{
			Kind:   cct.Kind(kind),
			Module: mod,
			Name:   name,
			File:   file,
			Line:   int(int64(line)),
		}

		var node *cct.Node
		switch {
		case parent == noParent:
			if i != 0 {
				return 0, fmt.Errorf("non-first node %d has no parent", i)
			}
			node = t.Root
		case uint64(parent) >= i:
			return 0, fmt.Errorf("node %d references later/self parent %d", i, parent)
		default:
			node = nodes[parent].Child(frame)
		}

		nz, err := br.ReadByte()
		if err != nil {
			return 0, err
		}
		for k := 0; k < int(nz); k++ {
			id, err := br.ReadByte()
			if err != nil {
				return 0, err
			}
			if int(id) >= int(metric.NumMetrics) {
				return 0, fmt.Errorf("metric id %d out of range", id)
			}
			v, err := readUvarint(br)
			if err != nil {
				return 0, err
			}
			var vec metric.Vector
			vec[id] = v
			node.Metrics.Add(&vec)
		}
		nodes = append(nodes, node)
	}
	return int(count), nil
}

// Files returns the profile file paths in dir sorted by name (the canonical
// zero-padded names sort by rank, then thread).
func Files(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".dcprof" {
			continue
		}
		out = append(out, filepath.Join(dir, e.Name()))
	}
	sort.Strings(out)
	return out, nil
}

// ReadDir loads every profile file in dir, sorted by (rank, thread). All
// profiles share one interning cache, so duplicate symbol strings across
// files are stored once.
func ReadDir(dir string) ([]*cct.Profile, error) {
	files, err := Files(dir)
	if err != nil {
		return nil, err
	}
	in := NewIntern()
	var out []*cct.Profile
	for _, path := range files {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		p, err := ReadProfileInterned(f, in)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", filepath.Base(path), err)
		}
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Rank != out[j].Rank {
			return out[i].Rank < out[j].Rank
		}
		return out[i].Thread < out[j].Thread
	})
	return out, nil
}

func readU32(r *bufio.Reader) (uint32, error) {
	var buf [4]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(buf[:]), nil
}

func readUvarint(r *bufio.Reader) (uint64, error) {
	return binary.ReadUvarint(r)
}
