package profio

// Salvage: best-effort decoding of damaged profile files. A killed rank or
// a full filesystem at Sequoia scale routinely leaves truncated or
// bit-damaged per-thread files; rather than discard such a file outright,
// the analyzer can recover every storage-class tree that is complete and
// checksum-valid and fold just those into the merge (the PolicySalvage
// ingest mode in internal/analysis).

import (
	"io"

	"dcprof/internal/cct"
)

// Salvage is the outcome of a best-effort decode of one profile file.
type Salvage struct {
	// Profile holds the recovered data: salvaged class trees in their
	// slots, empty trees for the lost classes. Identification fields come
	// from the header, which must be intact for any salvage to happen.
	Profile *cct.Profile
	// Trees counts complete, integrity-checked class trees recovered.
	Trees int
	// Lost counts class trees that could not be recovered.
	Lost int
	// Errs holds one error per damaged section (plus the footer, when its
	// validation failed). Empty means the file was fully intact.
	Errs []error
	// NodesRead is the number of CCT node records decoded from the
	// salvaged trees.
	NodesRead int
	// SidecarOnly reports that every class tree was recovered and the
	// only damage was format-level corruption of the optional trailing
	// sidecar region (bad checksum, truncation, undecodable series). Such
	// a file is safe to merge windowless; an I/O error or footer failure
	// never sets this.
	SidecarOnly bool
}

// Intact reports whether the file decoded completely with every integrity
// check passing — i.e. salvage degenerated into a normal read.
func (s *Salvage) Intact() bool { return s.Lost == 0 && len(s.Errs) == 0 }

// SalvageProfile decodes as much of a possibly damaged profile as the
// format's integrity metadata can vouch for. It returns an error only when
// the header (identification + string table) is unreadable — without the
// string table no tree can be decoded, so nothing is salvageable.
//
// For v2 files each tree section is independently framed and checksummed,
// so a damaged section loses only its own class; later sections are still
// recovered. Truncation loses everything from the cut onward. For v1 files
// (no framing) the trees preceding the first failure are recovered and the
// rest counted lost; v1 trees carry no checksums, so "recovered" there
// means "decoded cleanly", a weaker guarantee.
func SalvageProfile(r io.Reader, in *Intern) (*Salvage, error) {
	d, err := NewReaderInterned(r, in)
	if err != nil {
		return nil, err
	}
	return d.Salvage()
}

// Salvage drains the reader's remaining trees in best-effort mode. It can
// be called instead of ReadRest after NewReader; mixing it with prior
// ReadTree calls salvages only the classes not yet read.
func (d *Reader) Salvage() (*Salvage, error) {
	s := &Salvage{Profile: cct.NewProfile(d.rank, d.thread, d.event)}
	for {
		before := d.next
		c, t, err := d.ReadTree()
		if err == io.EOF {
			break
		}
		if err != nil {
			s.Errs = append(s.Errs, err)
			if d.Broken() {
				// The stream is unframed or cut: d.next still names the
				// tree the failure surfaced on, and every class from it
				// onward is gone.
				s.Lost += cct.NumClasses - d.next
				break
			}
			if d.next > before {
				// A tree section was present but damaged; the reader
				// resynced past it, so only that class is lost.
				s.Lost++
			}
			// Otherwise the error was footer validation — trees already
			// accounted for; the next call returns io.EOF.
			continue
		}
		s.Profile.Trees[c] = t
		s.Trees++
	}
	s.NodesRead = d.nodes
	// A salvaged profile keeps its sidecar only if the trailer decoded
	// cleanly; a damaged sidecar is already in Errs and the profile loads
	// windowless.
	s.Profile.Temporal = d.temporal
	s.SidecarOnly = s.Lost == 0 && len(s.Errs) > 0 && d.trailerDamaged
	if !s.Intact() {
		telSalvageFiles.Inc()
		telSalvageRecovered.Add(uint64(s.Trees))
		telSalvageLost.Add(uint64(s.Lost))
	}
	return s, nil
}
