// Package profio implements the compact binary profile format the profiler
// writes per thread and the post-mortem analyzer reads back.
//
// Compactness is a scalability requirement (§2.2): with millions of threads,
// per-thread measurement data must stay in megabytes. The format therefore
// stores each CCT as a flat pre-order array of nodes with parent indices, a
// deduplicated string table for symbols, and sparse varint-encoded metric
// vectors (most nodes carry no metrics; leaves carry few distinct ones).
//
// Integrity is a scalability requirement too: at Sequoia-class scale (one
// file per thread per rank) killed ranks, full filesystems, and torn writes
// are routine, so format version 2 carries per-section CRC32 checksums and
// a record-counting footer. Every section — the header (identification +
// string table) and each storage-class tree — is length-prefixed and
// checksummed independently, which lets the reader detect corruption at
// section granularity and salvage the intact trees of a damaged file (see
// SalvageProfile in salvage.go). Version 1 files (no checksums, no
// sections) remain readable.
//
// Format v2 layout:
//
//	u32 magic "DCPF"            u32 version (2)
//	section: header             — rank, thread, string table, event index
//	section: tree ×NumClasses   — pre-order node records
//	u32 footer magic "DCPE"     uvarint total node records   u32 CRC32(count)
//	trailer ×N (optional)       — u32 section magic · section
//
// where every section is `uvarint payloadLen · payload · u32 CRC32(payload)`.
// Trailer sections after the footer are tagged by a magic ("DCPT" = the
// temporal sidecar, see temporal.go); unknown magics are checksum-verified
// and skipped, so older data survives newer writers and vice versa.
//
// Format v3 (the current write format, see v3.go) keeps v2's framing —
// magic, section/checksum layout, footer, trailers — but deduplicates
// frames into a header-resident frame table and encodes each tree section
// columnar (delta-varint parent gaps and frame references, sparse columnar
// metrics), which shrinks files 2–4x and makes tree decode table-driven.
// v1 and v2 files remain readable.
package profio

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"dcprof/internal/cct"
)

// Magic identifies profile files ("DCPF" = data-centric profile).
const Magic = 0x44435046

// FooterMagic identifies the end-of-file footer ("DCPE" = end).
const FooterMagic = 0x44435045

// Version is the current format version: v2's checksummed section framing
// with the compact columnar tree encoding and header frame table (v3.go).
const Version = 3

// Version2 is the row-oriented checksummed format: same section framing,
// footer, and trailers as v3, with self-contained per-node records. Still
// readable (and writable through WriteProfileV2, for fixtures and the
// compatibility surface); new files are written as v3.
const Version2 = 2

// Version1 is the legacy format: same record encoding as v2, but no
// section framing, checksums, or footer. Still readable, never written.
const Version1 = 1

// TmpSuffix is appended to a profile's final name while it is being
// written; the rename to the final name happens only after a successful
// fsync, so a file under a final name is always complete. Files carrying
// the suffix are ignored by Files and ReadDir.
const TmpSuffix = ".tmp"

const noParent = ^uint32(0)

// maxSection bounds a claimed section payload length; anything larger is
// rejected as corrupt before any proportional allocation happens.
const maxSection = 1 << 30

// WriteProfile encodes one thread profile in the current format (v3).
func WriteProfile(w io.Writer, p *cct.Profile) error {
	bw := bufio.NewWriter(w)
	if err := writeProfileV3(bw, p); err != nil {
		return err
	}
	return bw.Flush()
}

// WriteProfileV2 encodes one thread profile in format v2 — the
// compatibility writer behind version-migration tests and v2 fixtures.
// New files should use WriteProfile.
func WriteProfileV2(w io.Writer, p *cct.Profile) error {
	bw := bufio.NewWriter(w)
	if err := writeProfileV2(bw, p); err != nil {
		return err
	}
	return bw.Flush()
}

func writeProfileV2(w *bufio.Writer, p *cct.Profile) error {
	// Collect the string table.
	strs := newStringTable()
	for _, tree := range p.Trees {
		tree.Walk(func(n *cct.Node, _ int) bool {
			strs.intern(n.Frame.Module)
			strs.intern(n.Frame.Name)
			strs.intern(n.Frame.File)
			return true
		})
	}
	strs.intern(p.Event)

	writeU32(w, Magic)
	writeU32(w, Version2)

	// Each section is staged in memory so its length prefix and checksum
	// can be emitted; sections are one tree each, so staging cost is one
	// tree's encoding, not the profile's.
	var payload bytes.Buffer
	sw := bufio.NewWriter(&payload)

	// Header section: identification + string table + event.
	writeUvarint(sw, uint64(p.Rank))
	writeUvarint(sw, uint64(p.Thread))
	writeUvarint(sw, uint64(len(strs.list)))
	for _, s := range strs.list {
		writeUvarint(sw, uint64(len(s)))
		if _, err := sw.WriteString(s); err != nil {
			return err
		}
	}
	writeUvarint(sw, uint64(strs.idx[p.Event]))
	if err := flushSection(w, sw, &payload); err != nil {
		return err
	}

	// Tree sections.
	if len(p.Trees) != cct.NumClasses {
		return fmt.Errorf("profio: profile has %d trees, want %d", len(p.Trees), cct.NumClasses)
	}
	totalNodes := uint64(0)
	var indexes [cct.NumClasses]map[*cct.Node]uint32
	for ci, tree := range p.Trees {
		index, err := writeTree(sw, tree, strs)
		if err != nil {
			return err
		}
		indexes[ci] = index
		totalNodes += uint64(len(index))
		if err := flushSection(w, sw, &payload); err != nil {
			return err
		}
	}

	// Footer: magic, total node records, checksum of the count.
	writeU32(w, FooterMagic)
	var cnt [binary.MaxVarintLen64]byte
	cn := binary.PutUvarint(cnt[:], totalNodes)
	w.Write(cnt[:cn])
	writeU32(w, crc32.ChecksumIEEE(cnt[:cn]))

	// Optional trailer: the temporal sidecar, referencing nodes by the
	// pre-order indices the tree sections above were just written in.
	if ts := p.Temporal; ts != nil && len(ts.Windows) > 0 {
		if err := writeTemporalSection(w, sw, &payload, ts, &indexes); err != nil {
			return err
		}
	}
	return nil
}

// flushSection drains the staged payload into w as one framed, checksummed
// section and resets the staging buffer for the next section.
func flushSection(w *bufio.Writer, sw *bufio.Writer, payload *bytes.Buffer) error {
	if err := sw.Flush(); err != nil {
		return err
	}
	b := payload.Bytes()
	writeUvarint(w, uint64(len(b)))
	if _, err := w.Write(b); err != nil {
		return err
	}
	writeU32(w, crc32.ChecksumIEEE(b))
	payload.Reset()
	telWriteSections.Inc()
	return nil
}

// writeTree encodes one tree section and returns the node→pre-order-index
// map it assigned (also the section's node count) — the temporal sidecar
// trailer refers to nodes by these indices.
func writeTree(w *bufio.Writer, t *cct.Tree, strs *stringTable) (map[*cct.Node]uint32, error) {
	// Pre-order with parent indices. Walk is deterministic, so index
	// assignment is too.
	index := map[*cct.Node]uint32{}
	count := uint32(0)
	t.Walk(func(n *cct.Node, _ int) bool {
		index[n] = count
		count++
		return true
	})
	writeUvarint(w, uint64(count))
	t.Walk(func(n *cct.Node, _ int) bool {
		parent := noParent
		if n.Parent() != nil {
			parent = index[n.Parent()]
		}
		writeU32(w, parent)
		w.WriteByte(byte(n.Frame.Kind))
		writeUvarint(w, uint64(strs.idx[n.Frame.Module]))
		writeUvarint(w, uint64(strs.idx[n.Frame.Name]))
		writeUvarint(w, uint64(strs.idx[n.Frame.File]))
		writeUvarint(w, uint64(int64(n.Frame.Line)))
		// Sparse metrics.
		nz := 0
		for _, v := range n.Metrics {
			if v != 0 {
				nz++
			}
		}
		w.WriteByte(byte(nz))
		for i, v := range n.Metrics {
			if v != 0 {
				w.WriteByte(byte(i))
				writeUvarint(w, v)
			}
		}
		return true
	})
	return index, nil
}

// EncodedSize returns the number of bytes WriteProfile would produce.
func EncodedSize(p *cct.Profile) (int64, error) {
	var cw countWriter
	if err := WriteProfile(&cw, p); err != nil {
		return 0, err
	}
	return cw.n, nil
}

// countWriter counts bytes, forwarding to w when set (nil discards). The
// durable writer takes its byte accounting from this counter rather than
// re-stat-ing the file it just wrote.
type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(b []byte) (int, error) {
	if c.w == nil {
		c.n += int64(len(b))
		return len(b), nil
	}
	m, err := c.w.Write(b)
	c.n += int64(m)
	return m, err
}

// FileName returns the canonical per-thread profile file name.
func FileName(rank, thread int) string {
	return fmt.Sprintf("rank%05d-thread%05d.dcprof", rank, thread)
}

// FS abstracts the handful of filesystem operations the durable writer
// performs. Production code uses OSFS; fault-injection tests (see
// internal/faultio) interpose a wrapper that simulates crashes and full
// disks at scripted points.
type FS interface {
	MkdirAll(path string, perm os.FileMode) error
	Create(path string) (File, error)
	Rename(oldpath, newpath string) error
	Remove(path string) error
	// SyncDir fsyncs the directory itself, making completed renames
	// durable against power loss.
	SyncDir(path string) error
}

// File is the writable-file surface the durable writer needs.
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// OSFS is the real filesystem.
type OSFS struct{}

// MkdirAll implements FS.
func (OSFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

// Create implements FS.
func (OSFS) Create(path string) (File, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return f, nil
}

// Rename implements FS.
func (OSFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// Remove implements FS.
func (OSFS) Remove(path string) error { return os.Remove(path) }

// SyncDir implements FS.
func (OSFS) SyncDir(path string) error {
	d, err := os.Open(path)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// WriteDir writes one file per profile into dir (created if needed) and
// returns the total bytes written — the measurement's space overhead.
//
// Writes are durable and atomic per file: each profile is written to a
// TmpSuffix-named temp file, fsynced, then renamed to its final name, and
// the directory is fsynced once at the end. A writer killed at any point
// (including mid-write: full filesystem, dead rank) can therefore never
// leave a partial file under a final profile name — readers see either the
// complete file or nothing.
func WriteDir(dir string, profiles []*cct.Profile) (int64, error) {
	return WriteDirFS(OSFS{}, dir, profiles)
}

// WriteDirFS is WriteDir over an explicit filesystem.
func WriteDirFS(fsys FS, dir string, profiles []*cct.Profile) (int64, error) {
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return 0, err
	}
	var total int64
	for _, p := range profiles {
		n, err := writeOne(fsys, dir, p)
		total += n
		if err != nil {
			return total, err
		}
	}
	if err := fsys.SyncDir(dir); err != nil {
		return total, fmt.Errorf("profio: syncing %s: %w", dir, err)
	}
	return total, nil
}

func writeOne(fsys FS, dir string, p *cct.Profile) (int64, error) {
	final := filepath.Join(dir, FileName(p.Rank, p.Thread))
	tmp := final + TmpSuffix
	f, err := fsys.Create(tmp)
	if err != nil {
		return 0, err
	}
	cw := &countWriter{w: f}
	if err := WriteProfile(cw, p); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return 0, fmt.Errorf("profio: writing %s: %w", tmp, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return 0, fmt.Errorf("profio: syncing %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		fsys.Remove(tmp)
		return 0, fmt.Errorf("profio: closing %s: %w", tmp, err)
	}
	if err := fsys.Rename(tmp, final); err != nil {
		fsys.Remove(tmp)
		return 0, fmt.Errorf("profio: publishing %s: %w", final, err)
	}
	telWriteProfiles.Inc()
	telWriteBytes.Add(uint64(cw.n))
	return cw.n, nil
}

// stringTable interns strings for writing.
type stringTable struct {
	idx  map[string]int
	list []string
}

func newStringTable() *stringTable {
	return &stringTable{idx: map[string]int{}}
}

func (s *stringTable) intern(str string) int {
	if i, ok := s.idx[str]; ok {
		return i
	}
	i := len(s.list)
	s.idx[str] = i
	s.list = append(s.list, str)
	return i
}

func writeU32(w *bufio.Writer, v uint32) {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], v)
	w.Write(buf[:])
}

func writeUvarint(w *bufio.Writer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	w.Write(buf[:n])
}
