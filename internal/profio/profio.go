// Package profio implements the compact binary profile format the profiler
// writes per thread and the post-mortem analyzer reads back.
//
// Compactness is a scalability requirement (§2.2): with millions of threads,
// per-thread measurement data must stay in megabytes. The format therefore
// stores each CCT as a flat pre-order array of nodes with parent indices, a
// deduplicated string table for symbols, and sparse varint-encoded metric
// vectors (most nodes carry no metrics; leaves carry few distinct ones).
package profio

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"dcprof/internal/cct"
)

// Magic identifies profile files ("DCPF" = data-centric profile).
const Magic = 0x44435046

// Version is the current format version.
const Version = 1

const noParent = ^uint32(0)

// WriteProfile encodes one thread profile.
func WriteProfile(w io.Writer, p *cct.Profile) error {
	bw := bufio.NewWriter(w)
	if err := writeProfile(bw, p); err != nil {
		return err
	}
	return bw.Flush()
}

func writeProfile(w *bufio.Writer, p *cct.Profile) error {
	// Collect the string table.
	strs := newStringTable()
	for _, tree := range p.Trees {
		tree.Walk(func(n *cct.Node, _ int) bool {
			strs.intern(n.Frame.Module)
			strs.intern(n.Frame.Name)
			strs.intern(n.Frame.File)
			return true
		})
	}
	strs.intern(p.Event)

	writeU32(w, Magic)
	writeU32(w, Version)
	writeUvarint(w, uint64(p.Rank))
	writeUvarint(w, uint64(p.Thread))

	// String table.
	writeUvarint(w, uint64(len(strs.list)))
	for _, s := range strs.list {
		writeUvarint(w, uint64(len(s)))
		if _, err := w.WriteString(s); err != nil {
			return err
		}
	}
	writeUvarint(w, uint64(strs.idx[p.Event]))

	// Trees.
	if len(p.Trees) != cct.NumClasses {
		return fmt.Errorf("profio: profile has %d trees, want %d", len(p.Trees), cct.NumClasses)
	}
	for _, tree := range p.Trees {
		if err := writeTree(w, tree, strs); err != nil {
			return err
		}
	}
	return nil
}

func writeTree(w *bufio.Writer, t *cct.Tree, strs *stringTable) error {
	// Pre-order with parent indices. Walk is deterministic, so index
	// assignment is too.
	index := map[*cct.Node]uint32{}
	count := uint32(0)
	t.Walk(func(n *cct.Node, _ int) bool {
		index[n] = count
		count++
		return true
	})
	writeUvarint(w, uint64(count))
	var err error
	t.Walk(func(n *cct.Node, _ int) bool {
		parent := noParent
		if n.Parent() != nil {
			parent = index[n.Parent()]
		}
		writeU32(w, parent)
		w.WriteByte(byte(n.Frame.Kind))
		writeUvarint(w, uint64(strs.idx[n.Frame.Module]))
		writeUvarint(w, uint64(strs.idx[n.Frame.Name]))
		writeUvarint(w, uint64(strs.idx[n.Frame.File]))
		writeUvarint(w, uint64(int64(n.Frame.Line)))
		// Sparse metrics.
		nz := 0
		for _, v := range n.Metrics {
			if v != 0 {
				nz++
			}
		}
		w.WriteByte(byte(nz))
		for i, v := range n.Metrics {
			if v != 0 {
				w.WriteByte(byte(i))
				writeUvarint(w, v)
			}
		}
		return true
	})
	return err
}

// EncodedSize returns the number of bytes WriteProfile would produce.
func EncodedSize(p *cct.Profile) (int64, error) {
	var cw countWriter
	if err := WriteProfile(&cw, p); err != nil {
		return 0, err
	}
	return cw.n, nil
}

type countWriter struct{ n int64 }

func (c *countWriter) Write(b []byte) (int, error) {
	c.n += int64(len(b))
	return len(b), nil
}

// FileName returns the canonical per-thread profile file name.
func FileName(rank, thread int) string {
	return fmt.Sprintf("rank%05d-thread%05d.dcprof", rank, thread)
}

// WriteDir writes one file per profile into dir (created if needed) and
// returns the total bytes written — the measurement's space overhead.
func WriteDir(dir string, profiles []*cct.Profile) (int64, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, err
	}
	var total int64
	for _, p := range profiles {
		path := filepath.Join(dir, FileName(p.Rank, p.Thread))
		f, err := os.Create(path)
		if err != nil {
			return total, err
		}
		if err := WriteProfile(f, p); err != nil {
			f.Close()
			return total, err
		}
		if err := f.Close(); err != nil {
			return total, err
		}
		st, err := os.Stat(path)
		if err != nil {
			return total, err
		}
		total += st.Size()
	}
	return total, nil
}

// stringTable interns strings for writing.
type stringTable struct {
	idx  map[string]int
	list []string
}

func newStringTable() *stringTable {
	return &stringTable{idx: map[string]int{}}
}

func (s *stringTable) intern(str string) int {
	if i, ok := s.idx[str]; ok {
		return i
	}
	i := len(s.list)
	s.idx[str] = i
	s.list = append(s.list, str)
	return i
}

func writeU32(w *bufio.Writer, v uint32) {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], v)
	w.Write(buf[:])
}

func writeUvarint(w *bufio.Writer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	w.Write(buf[:n])
}
