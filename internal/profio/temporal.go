package profio

// Temporal sidecar codec: the optional trailing v2 section that persists a
// profile's cct.TimeSeries.
//
// The sidecar rides AFTER the footer as a tagged trailer section:
//
//	u32 section magic ("DCPT")   uvarint payloadLen · payload · u32 CRC32
//
// so a v2 file remains exactly its old self up to and including the
// footer. Readers that predate trailers stop at the footer; this reader
// scans trailers until EOF, decoding the magics it knows and skipping
// (after checksum verification) the ones it does not — the same
// forward-compatibility seam future sidecars can use.
//
// Payload layout (all varints unsigned LEB128):
//
//	uvarint width                      window width in sim cycles
//	uvarint numWindows
//	per window (ascending index):
//	  uvarint indexDelta               first window absolute, later ones
//	                                   delta from the previous (≥ 1)
//	  uvarint numEntries
//	  per entry (sorted by class, then node index):
//	    byte class
//	    uvarint nodeIdxDelta           absolute when the class changes,
//	                                   else delta from the previous entry
//	                                   in the same class (≥ 1)
//	    byte nnz · {byte metricID, uvarint value}×nnz
//
// Node references are the deterministic pre-order indices the tree
// sections themselves are written in, so the decoder resolves them
// against the nodes it just built and the sidecar stores no paths at all.

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"sort"

	"dcprof/internal/cct"
	"dcprof/internal/metric"
)

// TemporalMagic tags the temporal-sidecar trailer section ("DCPT").
const TemporalMagic = 0x44435054

// maxWindowSpan bounds the distance between a sidecar's first and last
// window index — a sanity cap on how sparse a corrupt-but-checksummed
// series may claim to be. Downstream consumers must not rely on it for
// memory safety: it is relative to each file's own first window, so the
// merged span across files is unbounded, and temporal.Index therefore
// works over the sparse window list, never a densified range.
const maxWindowSpan = 1 << 26

// encKey identifies one (class, node) slot during encoding.
type encKey struct {
	class cct.Class
	idx   uint32
}

// writeTemporalSection stages the encoded sidecar into sw and emits it as
// a tagged trailer section. indexes are the per-class node→pre-order-index
// maps the tree sections were written with.
func writeTemporalSection(w *bufio.Writer, sw *bufio.Writer, payload *bytes.Buffer, ts *cct.TimeSeries, indexes *[cct.NumClasses]map[*cct.Node]uint32) error {
	if ts.Width == 0 {
		return fmt.Errorf("profio: temporal sidecar has zero window width")
	}
	// Coalesce: the recorder may emit duplicate window indices (a window
	// re-opened after a mid-run flush) and the format wants one entry per
	// (window, class, node). Aggregate first, then sort for determinism.
	agg := make(map[uint64]map[encKey]*metric.Vector)
	for wi := range ts.Windows {
		win := &ts.Windows[wi]
		entries := agg[win.Index]
		if entries == nil {
			entries = make(map[encKey]*metric.Vector)
			agg[win.Index] = entries
		}
		for di := range win.Deltas {
			d := &win.Deltas[di]
			if int(d.Class) >= cct.NumClasses {
				return fmt.Errorf("profio: temporal delta class %d out of range", d.Class)
			}
			idx, ok := indexes[d.Class][d.Node]
			if !ok {
				return fmt.Errorf("profio: temporal delta references a node outside the %v tree", d.Class)
			}
			k := encKey{class: d.Class, idx: idx}
			if v := entries[k]; v != nil {
				v.Add(&d.Metrics)
			} else {
				cp := d.Metrics
				entries[k] = &cp
			}
		}
	}

	winIdxs := make([]uint64, 0, len(agg))
	for w := range agg {
		winIdxs = append(winIdxs, w)
	}
	sort.Slice(winIdxs, func(i, j int) bool { return winIdxs[i] < winIdxs[j] })

	writeUvarint(sw, ts.Width)
	writeUvarint(sw, uint64(len(winIdxs)))
	prevWin := uint64(0)
	for i, wi := range winIdxs {
		if i == 0 {
			writeUvarint(sw, wi)
		} else {
			writeUvarint(sw, wi-prevWin)
		}
		prevWin = wi

		entries := agg[wi]
		keys := make([]encKey, 0, len(entries))
		for k := range entries {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(a, b int) bool {
			if keys[a].class != keys[b].class {
				return keys[a].class < keys[b].class
			}
			return keys[a].idx < keys[b].idx
		})
		writeUvarint(sw, uint64(len(keys)))
		prevClass, prevIdx := cct.Class(0), uint32(0)
		for j, k := range keys {
			sw.WriteByte(byte(k.class))
			if j > 0 && k.class == prevClass {
				writeUvarint(sw, uint64(k.idx-prevIdx))
			} else {
				writeUvarint(sw, uint64(k.idx))
			}
			prevClass, prevIdx = k.class, k.idx
			v := entries[k]
			nz := 0
			for _, x := range v {
				if x != 0 {
					nz++
				}
			}
			sw.WriteByte(byte(nz))
			for m, x := range v {
				if x != 0 {
					sw.WriteByte(byte(m))
					writeUvarint(sw, x)
				}
			}
		}
	}

	writeU32(w, TemporalMagic)
	return flushSection(w, sw, payload)
}

// decodeTimeSeries parses a sidecar payload, resolving node references
// against the per-class node arrays retained from the tree sections. Every
// structural claim is validated; an error means the sidecar is dropped
// (the profile loads windowless), never that the reader panics or
// over-allocates.
func decodeTimeSeries(payload []byte, classNodes *[cct.NumClasses][]*cct.Node) (*cct.TimeSeries, error) {
	br := bufio.NewReader(bytes.NewReader(payload))
	width, err := readUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("reading width: %w", wrapEOF(err))
	}
	if width == 0 {
		return nil, fmt.Errorf("zero window width")
	}
	numWindows, err := readUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("reading window count: %w", wrapEOF(err))
	}
	if numWindows > maxWindowSpan {
		return nil, fmt.Errorf("unreasonable window count %d", numWindows)
	}
	ts := &cct.TimeSeries{Width: width}
	ts.Windows = make([]cct.TimeWindow, 0, min(numWindows, 4096))
	var firstIdx, prevIdx uint64
	for wi := uint64(0); wi < numWindows; wi++ {
		delta, err := readUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("window %d: reading index: %w", wi, wrapEOF(err))
		}
		var idx uint64
		if wi == 0 {
			idx = delta
			firstIdx = idx
		} else {
			if delta == 0 {
				return nil, fmt.Errorf("window %d: non-ascending index", wi)
			}
			idx = prevIdx + delta
			if idx < prevIdx {
				return nil, fmt.Errorf("window %d: index overflows", wi)
			}
		}
		prevIdx = idx
		if idx-firstIdx > maxWindowSpan {
			return nil, fmt.Errorf("window %d: unreasonable window span %d", wi, idx-firstIdx)
		}
		numEntries, err := readUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("window %d: reading entry count: %w", wi, wrapEOF(err))
		}
		if numEntries > maxSection {
			return nil, fmt.Errorf("window %d: unreasonable entry count %d", wi, numEntries)
		}
		win := cct.TimeWindow{Index: idx}
		win.Deltas = make([]cct.TimeDelta, 0, min(numEntries, 4096))
		var prevClass cct.Class
		var prevNodeIdx uint32
		for ei := uint64(0); ei < numEntries; ei++ {
			cb, err := br.ReadByte()
			if err != nil {
				return nil, fmt.Errorf("window %d entry %d: reading class: %w", wi, ei, wrapEOF(err))
			}
			class := cct.Class(cb)
			if int(class) >= cct.NumClasses {
				return nil, fmt.Errorf("window %d entry %d: class %d out of range", wi, ei, cb)
			}
			rawIdx, err := readUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("window %d entry %d: reading node index: %w", wi, ei, wrapEOF(err))
			}
			var nodeIdx uint64
			if ei > 0 && class == prevClass {
				if rawIdx == 0 {
					return nil, fmt.Errorf("window %d entry %d: non-ascending node index", wi, ei)
				}
				nodeIdx = uint64(prevNodeIdx) + rawIdx
				if nodeIdx < rawIdx {
					return nil, fmt.Errorf("window %d entry %d: node index overflows", wi, ei)
				}
			} else {
				if ei > 0 && class < prevClass {
					return nil, fmt.Errorf("window %d entry %d: class order violation", wi, ei)
				}
				nodeIdx = rawIdx
			}
			nodes := classNodes[class]
			if nodeIdx >= uint64(len(nodes)) {
				return nil, fmt.Errorf("window %d entry %d: node index %d out of range for %v tree (%d nodes)",
					wi, ei, nodeIdx, class, len(nodes))
			}
			prevClass, prevNodeIdx = class, uint32(nodeIdx)
			d := cct.TimeDelta{Class: class, Node: nodes[nodeIdx]}
			nz, err := br.ReadByte()
			if err != nil {
				return nil, fmt.Errorf("window %d entry %d: reading metric count: %w", wi, ei, wrapEOF(err))
			}
			if int(nz) > int(metric.NumMetrics) {
				return nil, fmt.Errorf("window %d entry %d: metric count %d out of range", wi, ei, nz)
			}
			for k := 0; k < int(nz); k++ {
				id, err := br.ReadByte()
				if err != nil {
					return nil, fmt.Errorf("window %d entry %d: reading metric id: %w", wi, ei, wrapEOF(err))
				}
				if int(id) >= int(metric.NumMetrics) {
					return nil, fmt.Errorf("window %d entry %d: metric id %d out of range", wi, ei, id)
				}
				v, err := readUvarint(br)
				if err != nil {
					return nil, fmt.Errorf("window %d entry %d: reading metric value: %w", wi, ei, wrapEOF(err))
				}
				d.Metrics[id] += v
			}
			win.Deltas = append(win.Deltas, d)
		}
		ts.Windows = append(ts.Windows, win)
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("trailing bytes in temporal section")
	}
	if len(ts.Windows) == 0 {
		return nil, nil // an empty sidecar decodes to no sidecar
	}
	return ts, nil
}
